module temco

go 1.22
