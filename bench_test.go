package temco

// Benchmarks regenerating the paper's evaluation figures. Each benchmark
// reports the figure's headline quantity as custom metrics (peak MB,
// overhead ratios, reduction percentages) alongside the usual ns/op.
//
//	go test -bench=Fig -benchmem          # all figure benches
//	go test -bench=Fig11 -res-time=32     # timing only
import (
	"fmt"
	"testing"

	"temco/internal/decompose"
	"temco/internal/exec"
	"temco/internal/experiments"
	"temco/internal/ir"
	"temco/internal/memplan"
	"temco/internal/models"
	"temco/internal/ops"
	"temco/internal/tensor"
)

func benchCfg() models.Config {
	c := models.DefaultConfig()
	c.H, c.W = 64, 64
	return c
}

func timeCfg() models.Config {
	c := models.DefaultConfig()
	c.H, c.W = 32, 32
	return c
}

// BenchmarkFig4Timeline regenerates the paper's Fig. 4 memory-usage
// curves: internal-tensor bytes over the layer schedule for UNet and
// VGG-16, Original vs Decomposed, batch 4.
func BenchmarkFig4Timeline(b *testing.B) {
	for _, name := range []string{"unet", "vgg16"} {
		for _, v := range []experiments.Variant{experiments.Original, experiments.Decomposed} {
			b.Run(fmt.Sprintf("%s/%s", name, v), func(b *testing.B) {
				var s experiments.TimelineSeries
				var err error
				for i := 0; i < b.N; i++ {
					s, err = experiments.Timeline(name, v, benchCfg(), decompose.DefaultOptions(), 4)
					if err != nil {
						b.Fatal(err)
					}
				}
				var peak int64
				for _, p := range s.Points {
					if p.LiveBytes > peak {
						peak = p.LiveBytes
					}
				}
				b.ReportMetric(float64(peak)/(1<<20), "peakMB")
				b.ReportMetric(s.PeakSkipShare*100, "skipShare%")
			})
		}
	}
}

// BenchmarkFig10Peak regenerates the paper's Fig. 10: peak memory usage of
// all ten models across the paper's variants at batch 4, reporting the
// geomean internal-tensor reduction (paper headline: 75.7%).
func BenchmarkFig10Peak(b *testing.B) {
	var res experiments.PeakResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.PeakMemory(models.Names(), benchCfg(), decompose.DefaultOptions(), 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.GeomeanReduction*100, "geomeanReduction%")
}

// BenchmarkFig11Infer regenerates the paper's Fig. 11: end-to-end
// inference wall time, Decomposed vs TeMCO-optimized, per model and batch.
// The metric of interest is the overhead ratio (paper: 1.08× at batch 4
// rising to 1.70× at batch 32).
func BenchmarkFig11Infer(b *testing.B) {
	for _, name := range []string{"alexnet", "vgg11", "resnet18", "densenet40", "unet-s"} {
		for _, batch := range []int{4, 32} {
			b.Run(fmt.Sprintf("%s/batch%d", name, batch), func(b *testing.B) {
				spec, err := models.Get(name)
				if err != nil {
					b.Fatal(err)
				}
				opt := experiments.Fusion
				if spec.HasSkips {
					opt = experiments.SkipOptFusion
				}
				dg, err := experiments.BuildVariant(spec, experiments.Decomposed, timeCfg(), decompose.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				og, err := experiments.BuildVariant(spec, opt, timeCfg(), decompose.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				x := tensor.New(batch, 3, 32, 32)
				x.FillNormal(tensor.NewRNG(1), 0, 1)
				var dN, oN int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := exec.Run(dg, x); err != nil {
						b.Fatal(err)
					}
					dN++
					if _, err := exec.Run(og, x); err != nil {
						b.Fatal(err)
					}
					oN++
				}
				_ = dN
				_ = oN
			})
		}
	}
}

// BenchmarkFig11Overhead computes the paper's Fig. 11 summary ratios
// directly (median-of-3, geomean across a model subset).
func BenchmarkFig11Overhead(b *testing.B) {
	names := []string{"alexnet", "vgg11", "unet-s"}
	for i := 0; i < b.N; i++ {
		res, err := experiments.InferenceTime(names, timeCfg(), decompose.DefaultOptions(), []int{4}, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OverheadGeomean[4], "overhead@4x")
	}
}

// BenchmarkFig12Accuracy regenerates the paper's Fig. 12 check: the TeMCO
// variants must agree with the decomposed baseline on every prediction.
func BenchmarkFig12Accuracy(b *testing.B) {
	cfg := timeCfg()
	var res experiments.AccuracyResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.AgreementAll([]string{"alexnet", "vgg11", "resnet18", "densenet40", "unet-s"}, cfg, decompose.DefaultOptions(), 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	agr := 1.0
	for _, r := range res.Rows {
		if r.Top1Agreement < agr {
			agr = r.Top1Agreement
		}
	}
	b.ReportMetric(agr, "minAgreement")
}

// BenchmarkEq4Microbench exercises the §2.2 analysis: the simulator's peak
// for the decomposed two-conv + activation microbenchmark equals paper
// Eq. (4)'s closed form.
func BenchmarkEq4Microbench(b *testing.B) {
	bld := ir.NewBuilder("eq4", 1)
	in := bld.Input(64, 32, 32)
	f1 := bld.ConvNamed("f1", in, 6, 1, 1, 1, 1, 0, 0, 1)
	k1 := bld.ConvNamed("k1", f1, 6, 3, 3, 1, 1, 1, 1, 1)
	l1 := bld.ConvNamed("l1", k1, 64, 1, 1, 1, 1, 0, 0, 1)
	r := bld.ReLU(l1)
	f2 := bld.ConvNamed("f2", r, 6, 1, 1, 1, 1, 0, 0, 1)
	k2 := bld.ConvNamed("k2", f2, 6, 3, 3, 1, 1, 1, 1, 1)
	l2 := bld.ConvNamed("l2", k2, 64, 1, 1, 1, 1, 0, 0, 1)
	bld.Output(l2)
	var p memplan.Profile
	for i := 0; i < b.N; i++ {
		p = memplan.Simulate(bld.G, 4, 0)
	}
	b.ReportMetric(float64(p.PeakInternal)/(1<<20), "peakMB")
}

// BenchmarkDecompose measures the three decomposition rewrites on VGG-11
// (Tucker is the paper's baseline; CP and TT cover §2.1's other types).
func BenchmarkDecompose(b *testing.B) {
	for _, m := range []decompose.Method{decompose.Tucker, decompose.CPD, decompose.TensorTrain} {
		b.Run(m.String(), func(b *testing.B) {
			g, err := models.Build("vgg11", timeCfg())
			if err != nil {
				b.Fatal(err)
			}
			opts := decompose.DefaultOptions()
			opts.Method = m
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, rep := decompose.Decompose(g, opts); len(rep.Layers) == 0 {
					b.Fatal("nothing decomposed")
				}
			}
		})
	}
}

// BenchmarkAblationGate measures A1: skip-opt FLOPs cost with and without
// the Overhead gate on ResNet-18 (paper §4.2's ResNet discussion).
func BenchmarkAblationGate(b *testing.B) {
	var res experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.AblateOverheadGate([]string{"resnet18"}, timeCfg(), decompose.DefaultOptions(), 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(res.Rows) == 2 && res.Rows[0].FLOPs > 0 {
		b.ReportMetric(float64(res.Rows[1].FLOPs)/float64(res.Rows[0].FLOPs), "gateOffFLOPsRatio")
	}
}

// BenchmarkAblationTransforms measures A2: fusion coverage with and
// without the §3.3 layer transformations on UNet.
func BenchmarkAblationTransforms(b *testing.B) {
	var res experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.AblateTransforms([]string{"unet-s"}, timeCfg(), decompose.DefaultOptions(), 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(res.Rows) == 2 {
		b.ReportMetric(float64(res.Rows[0].FusedKernels), "fusedWith")
		b.ReportMetric(float64(res.Rows[1].FusedKernels), "fusedWithout")
	}
}

// BenchmarkFusedKernel compares the fused lconv-relu-pool-fconv kernel
// against the unfused four-kernel sequence (paper Listing 1): same math,
// no full-size intermediates.
func BenchmarkFusedKernel(b *testing.B) {
	r := tensor.NewRNG(3)
	attrs := &ir.FusedAttrs{
		InC: 6, MidC: 64, OutC: 6, Act: ir.KindReLU,
		Pool: &ir.PoolAttrs{KH: 2, KW: 2, SH: 2, SW: 2}, PoolKind: ir.KindMaxPool,
		LW: tensor.New(64, 6, 1, 1), LB: tensor.New(64),
		FW: tensor.New(6, 64, 1, 1), FB: tensor.New(6),
	}
	attrs.LW.FillNormal(r, 0, 1)
	attrs.FW.FillNormal(r, 0, 1)
	in := tensor.New(4, 6, 64, 64)
	in.FillNormal(r, 0, 1)
	out := tensor.New(4, 6, 32, 32)
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ops.Fused(out, in, attrs)
		}
		b.ReportMetric(float64(ops.FusedWorkspaceBytes(attrs))/1024, "workspaceKB")
	})
	b.Run("unfused", func(b *testing.B) {
		lattrs := &ir.ConvAttrs{InC: 6, OutC: 64, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1}
		fattrs := &ir.ConvAttrs{InC: 64, OutC: 6, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1}
		mid := tensor.New(4, 64, 64, 64)
		act := tensor.New(4, 64, 64, 64)
		pooled := tensor.New(4, 64, 32, 32)
		for i := 0; i < b.N; i++ {
			ops.Conv2D(mid, in, attrs.LW, attrs.LB, lattrs)
			ops.ReLU(act, mid)
			ops.MaxPool(pooled, act, attrs.Pool)
			ops.Conv2D(out, pooled, attrs.FW, attrs.FB, fattrs)
		}
		b.ReportMetric(float64(mid.Bytes()+act.Bytes()+pooled.Bytes())/1024, "intermediateKB")
	})
}

// BenchmarkConv2D tracks the direct convolution kernel itself.
func BenchmarkConv2D(b *testing.B) {
	r := tensor.NewRNG(5)
	a := &ir.ConvAttrs{InC: 32, OutC: 64, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, Groups: 1}
	in := tensor.New(4, 32, 32, 32)
	in.FillNormal(r, 0, 1)
	w := tensor.New(64, 32, 3, 3)
	w.FillNormal(r, 0, 0.1)
	bias := tensor.New(64)
	out := tensor.New(4, 64, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops.Conv2D(out, in, w, bias, a)
	}
	flops := int64(4*64*32*32) * 32 * 9 * 2
	b.SetBytes(in.Bytes() + out.Bytes())
	b.ReportMetric(float64(flops)/1e9, "GFLOP/op")
}
