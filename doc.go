// Package temco is a from-scratch Go reproduction of "TeMCO: Tensor Memory
// Compiler Optimization across Tensor Decompositions in Deep Learning
// Inference" (Song et al., ICPP 2024).
//
// The library decomposes convolution layers of CNN inference graphs with
// Tucker-2 / CP / Tensor-Train decompositions and then applies TeMCO's two
// compiler optimizations — skip-connection optimization and activation
// layer fusion, extended by concat/add layer transformations — so that
// only the small reduced tensors produced inside decomposed convolution
// sequences stay live during inference, cutting peak internal-tensor
// memory (the paper reports 75.7% geomean over ten models).
//
// Layout:
//
//	internal/tensor      dense float32 NCHW tensors + deterministic RNG
//	internal/linalg      Jacobi SVD, randomized truncated SVD, solvers
//	internal/ir          SSA layer-graph IR, shape inference, PDG, DCE
//	internal/ops         CPU kernels incl. the fused lconv-act-[pool]-fconv
//	internal/decompose   Tucker-2 / CP-ALS / TT-SVD conv rewrites
//	internal/memplan     liveness analysis + peak-memory simulator
//	internal/core        the TeMCO passes (paper Alg. 1/2, §3.2, §3.3)
//	internal/models      AlexNet/VGG/ResNet/DenseNet/UNet (10 models)
//	internal/exec        graph executor
//	internal/train       reverse-mode autodiff + SGD
//	internal/data        synthetic ILSVRC/Carvana stand-ins + metrics
//	internal/experiments evaluation harness (paper Figs. 4, 10, 11, 12)
//	cmd/temco            compiler driver CLI
//	cmd/experiments      regenerates every evaluation table
//	cmd/memprofile       Fig. 4 timelines as plots or CSV
//
// The benchmarks in bench_test.go regenerate each figure's measurement;
// see DESIGN.md for the experiment index and EXPERIMENTS.md for measured
// results.
package temco
