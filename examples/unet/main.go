// UNet reproduces the paper's image-segmentation scenario at laptop scale:
// a Tucker-decomposed hourglass network is trained on the synthetic
// Carvana-style car-mask dataset, then TeMCO's skip-connection
// optimization and fusion are applied — the case where the paper reports
// its largest internal-tensor reductions (79.3% for UNet, §4.2).
package main

import (
	"fmt"
	"log"

	"temco/internal/core"
	"temco/internal/data"
	"temco/internal/decompose"
	"temco/internal/exec"
	"temco/internal/ir"
	"temco/internal/memplan"
	"temco/internal/train"
)

func main() {
	const h, w = 32, 32

	// A compact UNet: two encoder levels, bottleneck, two decoder levels
	// with concat skip connections.
	b := ir.NewBuilder("unet-example", 42)
	in := b.Input(3, h, w)
	d1 := b.ReLU(b.Conv(in, 16, 3, 1, 1))
	p1 := b.MaxPool(d1, 2, 2)
	d2 := b.ReLU(b.Conv(p1, 32, 3, 1, 1))
	p2 := b.MaxPool(d2, 2, 2)
	mid := b.ReLU(b.Conv(p2, 64, 3, 1, 1))
	u2 := b.Upsample(mid, 2)
	c2 := b.Concat(u2, d2)
	x := b.ReLU(b.Conv(c2, 32, 3, 1, 1))
	u1 := b.Upsample(x, 2)
	c1 := b.Concat(u1, d1)
	x = b.ReLU(b.Conv(c1, 16, 3, 1, 1))
	x = b.ConvNamed("head", x, 1, 1, 1, 1, 1, 0, 0, 1)
	x = b.Sigmoid(x)
	b.Output(x)

	dopts := decompose.DefaultOptions()
	dopts.Ratio = 0.3
	dg, _ := decompose.Decompose(b.G, dopts)

	trainSet := data.Segmentation(1, 32, h, w)
	testSet := data.Segmentation(2, 16, h, w)
	tr := train.New(dg, 0.5, 0.9)
	for epoch := 0; epoch < 50; epoch++ {
		loss, err := tr.StepBCE(trainSet.Images, trainSet.Masks)
		if err != nil {
			log.Fatal(err)
		}
		if epoch%10 == 0 {
			fmt.Printf("epoch %2d  bce %.4f\n", epoch, loss)
		}
	}

	og, st := core.Optimize(dg, core.DefaultConfig())
	fmt.Printf("\nTeMCO: %d skip connections optimized, %d fused kernels, %d merged lconvs, %d concat splits\n",
		st.SkipConnectionsOptimized, st.FusedKernels, st.MergedLConvs, st.ConcatSplits)

	rd, err := exec.Run(dg, testSet.Images)
	if err != nil {
		log.Fatal(err)
	}
	ro, err := exec.Run(og, testSet.Images)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dice: decomposed %.4f, TeMCO %.4f\n",
		data.Dice(rd.Outputs[0], testSet.Masks), data.Dice(ro.Outputs[0], testSet.Masks))

	pd := memplan.Simulate(dg, 4, 0)
	po := memplan.Simulate(og, 4, 0)
	fmt.Printf("peak internal tensors (batch 4): %.2f MB → %.2f MB (%.1f%% reduction)\n",
		float64(pd.PeakInternal)/(1<<20), float64(po.PeakInternal)/(1<<20),
		100*(1-float64(po.PeakInternal)/float64(pd.PeakInternal)))
}
