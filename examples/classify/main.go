// Classify reproduces the paper's image-classification scenario at laptop
// scale: a Tucker-decomposed CNN is trained on the synthetic
// ImageNet-stand-in dataset, TeMCO-optimized, and evaluated — showing that
// the optimization changes memory, not accuracy (paper Fig. 12).
package main

import (
	"fmt"
	"log"

	"temco/internal/core"
	"temco/internal/data"
	"temco/internal/decompose"
	"temco/internal/exec"
	"temco/internal/ir"
	"temco/internal/memplan"
	"temco/internal/train"
)

func main() {
	const classes, h, w = 5, 16, 16

	// A small AlexNet-flavoured classifier.
	b := ir.NewBuilder("classify", 42)
	in := b.Input(3, h, w)
	x := b.ReLU(b.Conv(in, 24, 3, 1, 1))
	x = b.MaxPool(x, 2, 2)
	x = b.ReLU(b.Conv(x, 48, 3, 1, 1))
	x = b.MaxPool(x, 2, 2)
	x = b.ReLU(b.Conv(x, 48, 3, 1, 1))
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Linear(x, classes)
	b.Output(x)

	// Decompose, then train the decomposed model directly (paper §4.4).
	dopts := decompose.DefaultOptions()
	dopts.Ratio = 0.3
	dg, _ := decompose.Decompose(b.G, dopts)

	trainSet := data.Classification(1, 256, classes, h, w)
	testSet := data.Classification(2, 128, classes, h, w)
	tr := train.New(dg, 0.05, 0.9)
	for epoch := 0; epoch < 30; epoch++ {
		loss, err := tr.StepCE(trainSet.Images, trainSet.Labels)
		if err != nil {
			log.Fatal(err)
		}
		if epoch%10 == 0 {
			fmt.Printf("epoch %2d  loss %.4f\n", epoch, loss)
		}
	}

	// Optimize the trained decomposed model with TeMCO.
	og, st := core.Optimize(dg, core.FusionOnly())
	fmt.Printf("\nTeMCO fused %d kernels\n", st.FusedKernels)

	rd, err := exec.Run(dg, testSet.Images)
	if err != nil {
		log.Fatal(err)
	}
	ro, err := exec.Run(og, testSet.Images)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decomposed: top-1 %.3f  top-5 %.3f\n",
		data.TopK(rd.Outputs[0], testSet.Labels, 1), data.TopK(rd.Outputs[0], testSet.Labels, 5))
	fmt.Printf("TeMCO:      top-1 %.3f  top-5 %.3f  (agreement %.3f)\n",
		data.TopK(ro.Outputs[0], testSet.Labels, 1), data.TopK(ro.Outputs[0], testSet.Labels, 5),
		data.TopKAgreement(rd.Outputs[0], ro.Outputs[0], 1))

	pd := memplan.Simulate(dg, 4, 0)
	po := memplan.Simulate(og, 4, 0)
	fmt.Printf("peak internal tensors: %.2f MB → %.2f MB\n",
		float64(pd.PeakInternal)/(1<<20), float64(po.PeakInternal)/(1<<20))
}
