// Quickstart: build a small CNN, Tucker-decompose it, run the TeMCO
// optimization pipeline, and verify that the optimized graph computes the
// same function with a lower internal-tensor peak.
package main

import (
	"fmt"
	"log"

	"temco/internal/core"
	"temco/internal/decompose"
	"temco/internal/exec"
	"temco/internal/ir"
	"temco/internal/memplan"
	"temco/internal/tensor"
)

func main() {
	// 1. Build a VGG-ish stack with the graph builder.
	b := ir.NewBuilder("quickstart", 42)
	in := b.Input(3, 32, 32)
	x := b.ReLU(b.Conv(in, 32, 3, 1, 1))
	x = b.MaxPool(x, 2, 2)
	x = b.ReLU(b.Conv(x, 64, 3, 1, 1))
	x = b.MaxPool(x, 2, 2)
	x = b.ReLU(b.Conv(x, 64, 3, 1, 1))
	x = b.Flatten(x)
	x = b.Linear(x, 10)
	b.Output(x)
	g := b.G

	// 2. Tucker-decompose every eligible convolution (paper §2.1).
	dopts := decompose.DefaultOptions()
	dopts.Ratio = 0.25
	dg, rep := decompose.Decompose(g, dopts)
	for _, l := range rep.Layers {
		fmt.Printf("decomposed %-8s ranks=%v relerr=%.3f weights %.1f→%.1f KB\n",
			l.Name, l.Ranks, l.RelErr, float64(l.OrigWeightBytes)/1024, float64(l.NewWeightBytes)/1024)
	}

	// 3. Run TeMCO: skip-connection optimization + activation layer fusion.
	og, st := core.Optimize(dg, core.DefaultConfig())
	fmt.Printf("\nTeMCO fused %d kernels\n", st.FusedKernels)

	// 4. Compare peak internal-tensor memory (batch 4).
	pd := memplan.Simulate(dg, 4, 0)
	po := memplan.Simulate(og, 4, 0)
	fmt.Printf("peak internal tensors: decomposed %.2f MB → TeMCO %.2f MB (%.1f%% reduction)\n",
		float64(pd.PeakInternal)/(1<<20), float64(po.PeakInternal)/(1<<20),
		100*(1-float64(po.PeakInternal)/float64(pd.PeakInternal)))

	// 5. Verify the optimization preserved semantics.
	xIn := tensor.New(4, 3, 32, 32)
	xIn.FillNormal(tensor.NewRNG(7), 0, 1)
	rd, err := exec.Run(dg, xIn)
	if err != nil {
		log.Fatal(err)
	}
	ro, err := exec.Run(og, xIn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max |decomposed − optimized| = %.2e (semantics preserved)\n",
		tensor.MaxAbsDiff(rd.Outputs[0], ro.Outputs[0]))
}
