// Timeline renders the paper's Fig. 4: internal-tensor memory usage over
// the layer schedule for UNet and VGG-16, Original vs Decomposed, showing
// why tensor decomposition alone does not reduce peak memory — skip
// connections (UNet) and non-decomposed activations (VGG) pin the peak.
package main

import (
	"fmt"
	"log"

	"temco/internal/decompose"
	"temco/internal/experiments"
	"temco/internal/models"
)

func main() {
	mcfg := models.DefaultConfig()
	mcfg.H, mcfg.W = 64, 64
	dopts := decompose.DefaultOptions()

	for _, name := range []string{"unet", "vgg16"} {
		for _, v := range []experiments.Variant{
			experiments.Original, experiments.Decomposed, experiments.SkipOptFusion, experiments.Fusion,
		} {
			// Match the paper's variant sets per architecture.
			spec, err := models.Get(name)
			if err != nil {
				log.Fatal(err)
			}
			if (v == experiments.SkipOptFusion && !spec.HasSkips) ||
				(v == experiments.Fusion && spec.HasSkips) {
				continue
			}
			s, err := experiments.Timeline(name, v, mcfg, dopts, 4)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(s.Sparkline(60))
		}
	}
}
