// Command experiments regenerates the paper's evaluation (§4) as text
// tables: Fig. 4 (memory timelines), Fig. 10 (peak memory), Fig. 11
// (inference time), Fig. 12 (accuracy preservation), and the A1/A2
// ablations from DESIGN.md.
//
// Usage:
//
//	experiments -exp peak -res 64 -batch 4
//	experiments -exp timeline -res 64 -batch 4
//	experiments -exp time -res 32 -batches 4,32 -reps 3
//	experiments -exp accuracy
//	experiments -exp ablation
//	experiments -exp aliasing -time-res 32 -batches 1,8 -reps 50
//	experiments -exp all
//
// The TEMCO_WORKERS environment variable overrides kernel parallelism
// (default: GOMAXPROCS). Kernels are deterministic across worker counts.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"temco/internal/decompose"
	"temco/internal/experiments"
	"temco/internal/guard"
	"temco/internal/models"
	"temco/internal/ops"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: peak|timeline|time|accuracy|ablation|aliasing|all")
		res     = flag.Int("res", 64, "input resolution for memory experiments")
		timeRes = flag.Int("time-res", 32, "input resolution for timing experiments")
		batch   = flag.Int("batch", 4, "batch size for memory experiments")
		batches = flag.String("batches", "4,32", "comma-separated batch sizes for timing")
		reps    = flag.Int("reps", 3, "timing repetitions (median reported)")
		ratio   = flag.Float64("ratio", 0.1, "decomposition ratio")
		only    = flag.String("models", "", "comma-separated model subset (default: all 10)")
		epochs  = flag.Int("epochs", 25, "training epochs for the accuracy case studies")
	)
	flag.Parse()
	if _, err := ops.WorkersFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(guard.ExitCode(err))
	}
	if err := run(*exp, *res, *timeRes, *batch, *batches, *reps, *ratio, *only, *epochs); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(exp string, res, timeRes, batch int, batchesCSV string, reps int, ratio float64, only string, epochs int) error {
	names := models.Names()
	if only != "" {
		names = strings.Split(only, ",")
	}
	mcfg := models.DefaultConfig()
	mcfg.H, mcfg.W = res, res
	dopts := decompose.DefaultOptions()
	dopts.Ratio = ratio

	all := exp == "all"
	if all || exp == "timeline" {
		if err := timeline(mcfg, dopts, batch); err != nil {
			return err
		}
	}
	if all || exp == "peak" {
		r, err := experiments.PeakMemory(names, mcfg, dopts, batch)
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	if all || exp == "time" {
		var bs []int
		for _, s := range strings.Split(batchesCSV, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return fmt.Errorf("bad -batches: %w", err)
			}
			bs = append(bs, v)
		}
		tcfg := mcfg
		tcfg.H, tcfg.W = timeRes, timeRes
		r, err := experiments.InferenceTime(names, tcfg, dopts, bs, reps)
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	if all || exp == "accuracy" {
		acfg := mcfg
		acfg.H, acfg.W = 32, 32
		r, err := experiments.AgreementAll(names, acfg, dopts, 16)
		if err != nil {
			return err
		}
		cls, err := experiments.TrainedClassifierCaseStudy(epochs)
		if err != nil {
			return err
		}
		seg, err := experiments.TrainedUNetCaseStudy(epochs * 2)
		if err != nil {
			return err
		}
		r.Rows = append(r.Rows, cls, seg)
		fmt.Println(r)
	}
	if all || exp == "ablation" {
		var skipModels []string
		for _, n := range names {
			if s, err := models.Get(n); err == nil && s.HasSkips {
				skipModels = append(skipModels, n)
			}
		}
		if len(skipModels) == 0 {
			skipModels = []string{"resnet18", "unet-s"}
		}
		a1, err := experiments.AblateOverheadGate(skipModels, mcfg, dopts, batch)
		if err != nil {
			return err
		}
		fmt.Println("A1: Overhead gate (paper §4.2 ResNet discussion)")
		fmt.Println(a1)
		a2, err := experiments.AblateTransforms(skipModels, mcfg, dopts, batch)
		if err != nil {
			return err
		}
		fmt.Println("A2: layer transformations (paper §3.3)")
		fmt.Println(a2)
	}
	if all || exp == "aliasing" {
		var bs []int
		for _, s := range strings.Split(batchesCSV, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return fmt.Errorf("bad -batches: %w", err)
			}
			bs = append(bs, v)
		}
		acfg := mcfg
		acfg.H, acfg.W = timeRes, timeRes
		r, err := experiments.Aliasing(names, acfg, dopts, bs, reps)
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	return nil
}

func timeline(mcfg models.Config, dopts decompose.Options, batch int) error {
	fmt.Println("Memory usage by internal tensors (paper Fig. 4)")
	for _, name := range []string{"unet", "vgg16"} {
		for _, v := range []experiments.Variant{experiments.Original, experiments.Decomposed} {
			s, err := experiments.Timeline(name, v, mcfg, dopts, batch)
			if err != nil {
				return err
			}
			fmt.Println(s.Sparkline(60))
		}
	}
	return nil
}
