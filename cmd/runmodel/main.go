// Command runmodel loads a compiled graph written by `temco -save` and
// runs inference inside a single planned memory arena — the deploy half of
// the compile-once/run-anywhere story. It reports the arena size (the
// process's entire internal-tensor allocation) and basic timing. The graph
// file is treated as untrusted input: malformed or adversarial envelopes
// are rejected with an error, never a crash.
//
// Usage:
//
//	temco -model unet-s -res 32 -save unet-s.temco
//	runmodel -graph unet-s.temco -batch 4 -reps 5
//	runmodel -graph unet-s.temco -timeout 10s -membudget 64
//
// Exit codes:
//
//	0  success
//	1  internal error (recovered kernel panic, unexpected failure)
//	2  invalid model (missing/corrupt graph file, bad flags)
//	3  resource limit hit (-timeout elapsed or -membudget exceeded)
//
// The TEMCO_WORKERS environment variable overrides kernel parallelism
// (default: GOMAXPROCS). Kernels are deterministic across worker counts.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"temco/internal/exec"
	"temco/internal/graphio"
	"temco/internal/guard"
	"temco/internal/memplan"
	"temco/internal/ops"
	"temco/internal/tensor"
)

func main() {
	var (
		path      = flag.String("graph", "", "graph file written by temco -save")
		batch     = flag.Int("batch", 4, "batch size")
		reps      = flag.Int("reps", 3, "timed repetitions")
		seed      = flag.Uint64("seed", 7, "input seed")
		timeout   = flag.Duration("timeout", 0, "abort execution after this duration (0 = none)")
		membudget = flag.Int64("membudget", 0, "arena memory budget in MB (0 = unlimited)")
	)
	flag.Parse()
	if _, err := ops.WorkersFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "runmodel:", err)
		os.Exit(guard.ExitCode(err))
	}
	if err := run(*path, *batch, *reps, *seed, *timeout, *membudget); err != nil {
		fmt.Fprintln(os.Stderr, "runmodel:", err)
		os.Exit(guard.ExitCode(err))
	}
}

func run(path string, batch, reps int, seed uint64, timeout time.Duration, budgetMB int64) error {
	if path == "" {
		return guard.Errorf(guard.ErrInvalidModel, "flags", "-graph is required")
	}
	if batch < 1 || reps < 1 {
		return guard.Errorf(guard.ErrInvalidModel, "flags", "batch and reps must be positive (got %d, %d)", batch, reps)
	}
	if timeout < 0 || budgetMB < 0 {
		return guard.Errorf(guard.ErrInvalidModel, "flags", "timeout and membudget must be non-negative")
	}
	f, err := os.Open(path)
	if err != nil {
		return guard.New(guard.ErrInvalidModel, "graph", err)
	}
	defer f.Close()
	g, err := graphio.Load(f)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %s: %d layers, %.2f MB weights\n", g.Name, len(g.Nodes),
		float64(g.WeightBytes())/(1<<20))

	asg := memplan.AssignOffsets(g, batch)
	if err := asg.Check(); err != nil {
		return err
	}
	fmt.Printf("arena: %.2f MB for batch %d (live peak %.2f MB, fragmentation %.1f%%)\n",
		float64(asg.ArenaBytes)/(1<<20), batch,
		float64(asg.PeakInternal)/(1<<20), asg.Fragmentation()*100)

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	budget := budgetMB * (1 << 20)

	inputs := make([]*tensor.Tensor, len(g.Inputs))
	rng := tensor.NewRNG(seed)
	for i, in := range g.Inputs {
		t := tensor.New(append([]int{batch}, in.Shape...)...)
		t.FillNormal(rng, 0, 1)
		inputs[i] = t
	}
	var best time.Duration
	for i := 0; i < reps; i++ {
		start := time.Now()
		res, err := exec.RunArenaCtx(ctx, g, asg, budget, inputs...)
		if err != nil {
			return err
		}
		el := time.Since(start)
		if best == 0 || el < best {
			best = el
		}
		if i == 0 {
			for j, o := range res.Outputs {
				fmt.Printf("output %d: shape %v\n", j, o.Shape)
			}
		}
	}
	fmt.Printf("best of %d runs: %v\n", reps, best.Round(time.Microsecond))
	return nil
}
