package main

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"temco/internal/graphio"
	"temco/internal/guard"
	"temco/internal/ir"
)

func saveTinyGraph(t *testing.T) string {
	t.Helper()
	b := ir.NewBuilder("deploy", 3)
	in := b.Input(3, 8, 8)
	x := b.ReLU(b.Conv(in, 8, 3, 1, 1))
	b.Output(x)
	path := filepath.Join(t.TempDir(), "m.temco")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphio.Save(f, b.G); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

func TestRunModelRoundTrip(t *testing.T) {
	// Build and save a tiny graph, then drive the deploy path.
	if err := run(saveTinyGraph(t), 2, 1, 7, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunModelErrors(t *testing.T) {
	if err := run("", 1, 1, 1, 0, 0); !errors.Is(err, guard.ErrInvalidModel) {
		t.Fatalf("missing -graph: want ErrInvalidModel, got %v", err)
	}
	if err := run("/nonexistent/file", 1, 1, 1, 0, 0); !errors.Is(err, guard.ErrInvalidModel) {
		t.Fatalf("missing file: want ErrInvalidModel, got %v", err)
	}
	if err := run(saveTinyGraph(t), 0, 1, 1, 0, 0); !errors.Is(err, guard.ErrInvalidModel) {
		t.Fatalf("zero batch: want ErrInvalidModel, got %v", err)
	}
}

// A corrupt graph file must map to exit code 2, never a panic.
func TestRunModelCorruptGraph(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.temco")
	if err := os.WriteFile(path, []byte(`{"version":1,"nodes":[{"id":0,"kind":"relu","inputs":[7],"shape":[1,2,2]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(path, 1, 1, 1, 0, 0)
	if !errors.Is(err, guard.ErrInvalidModel) {
		t.Fatalf("want ErrInvalidModel, got %v", err)
	}
	if guard.ExitCode(err) != guard.ExitInvalid {
		t.Fatalf("exit code %d, want %d", guard.ExitCode(err), guard.ExitInvalid)
	}
}

func TestRunModelTimeout(t *testing.T) {
	err := run(saveTinyGraph(t), 1, 1, 7, time.Nanosecond, 0)
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if guard.ExitCode(err) != guard.ExitResource {
		t.Fatalf("exit code %d, want %d", guard.ExitCode(err), guard.ExitResource)
	}
}

func TestRunModelBudgetExceeded(t *testing.T) {
	// A 32-channel 64×64 feature map at batch 4 needs a ~4 MB arena,
	// safely above the 1 MB budget.
	b := ir.NewBuilder("wide", 3)
	in := b.Input(3, 64, 64)
	b.Output(b.ReLU(b.Conv(in, 32, 3, 1, 1)))
	path := filepath.Join(t.TempDir(), "wide.temco")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphio.Save(f, b.G); err != nil {
		t.Fatal(err)
	}
	f.Close()

	err = run(path, 4, 1, 7, 0, 1)
	if !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	if guard.ExitCode(err) != guard.ExitResource {
		t.Fatalf("exit code %d, want %d", guard.ExitCode(err), guard.ExitResource)
	}
}
