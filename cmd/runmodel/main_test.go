package main

import (
	"os"
	"path/filepath"
	"testing"

	"temco/internal/graphio"
	"temco/internal/ir"
)

func TestRunModelRoundTrip(t *testing.T) {
	// Build and save a tiny graph, then drive the deploy path.
	b := ir.NewBuilder("deploy", 3)
	in := b.Input(3, 8, 8)
	x := b.ReLU(b.Conv(in, 8, 3, 1, 1))
	b.Output(x)
	dir := t.TempDir()
	path := filepath.Join(dir, "m.temco")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphio.Save(f, b.G); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run(path, 2, 1, 7); err != nil {
		t.Fatal(err)
	}
}

func TestRunModelErrors(t *testing.T) {
	if err := run("", 1, 1, 1); err == nil {
		t.Fatal("missing -graph must error")
	}
	if err := run("/nonexistent/file", 1, 1, 1); err == nil {
		t.Fatal("missing file must error")
	}
}
