package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunWritesChromeTrace runs -verify with -trace and checks the output
// is valid Chrome trace_event JSON carrying one complete event per
// executed step, with the live-byte accounting in args.
func TestRunWritesChromeTrace(t *testing.T) {
	o := testOptions(t, "alexnet", "tucker")
	o.verify, o.engine, o.seed = true, true, 1
	o.traceOut = filepath.Join(t.TempDir(), "trace.json")
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(o.traceOut)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	cats := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		cats[ev.Cat] = true
		if ev.Ph != "X" {
			t.Fatalf("event %s: phase %q, want complete event X", ev.Name, ev.Ph)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Fatalf("event %s: negative ts/dur (%v, %v)", ev.Name, ev.Ts, ev.Dur)
		}
		if _, ok := ev.Args["live_bytes"]; !ok {
			t.Fatalf("event %s: args missing live_bytes: %v", ev.Name, ev.Args)
		}
	}
	// -verify runs the interpreter on both graphs and the compiled engine:
	// the unscoped trace must carry spans from both executors.
	if !cats["exec"] || !cats["engine"] {
		t.Fatalf("trace categories %v, want both exec and engine", cats)
	}
}
