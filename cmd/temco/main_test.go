package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSmallModelEndToEnd(t *testing.T) {
	dir := t.TempDir()
	dot := filepath.Join(dir, "g.dot")
	save := filepath.Join(dir, "g.temco")
	err := run("unet-s", 16, 10, 2, 0.2, "tucker", true, true, true, true, dot, save, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{dot, save} {
		st, err := os.Stat(p)
		if err != nil || st.Size() == 0 {
			t.Fatalf("%s missing or empty: %v", p, err)
		}
	}
}

func TestRunAllMethods(t *testing.T) {
	for _, m := range []string{"tucker", "cp", "tt"} {
		if err := run("alexnet", 32, 10, 1, 0.2, m, false, true, false, true, "", "", 1); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
	if err := run("alexnet", 32, 10, 1, 0.2, "bogus", false, true, false, false, "", "", 1); err == nil {
		t.Fatal("unknown method must error")
	}
	if err := run("nope", 32, 10, 1, 0.2, "tucker", false, true, false, false, "", "", 1); err == nil {
		t.Fatal("unknown model must error")
	}
}
