package main

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"temco/internal/guard"
)

func testOptions(t *testing.T, model, method string) options {
	t.Helper()
	o, err := validate(model, 32, 10, 1, 0.2, method, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestRunSmallModelEndToEnd(t *testing.T) {
	dir := t.TempDir()
	o, err := validate("unet-s", 16, 10, 2, 0.2, "tucker", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	o.skipOpt, o.fusion, o.trans, o.verify = true, true, true, true
	o.dot = filepath.Join(dir, "g.dot")
	o.save = filepath.Join(dir, "g.temco")
	o.seed = 42
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{o.dot, o.save} {
		st, err := os.Stat(p)
		if err != nil || st.Size() == 0 {
			t.Fatalf("%s missing or empty: %v", p, err)
		}
	}
}

func TestRunAllMethods(t *testing.T) {
	for _, m := range []string{"tucker", "cp", "tt"} {
		o := testOptions(t, "alexnet", m)
		o.fusion, o.verify, o.seed = true, true, 1
		if err := run(o); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
}

// Flag validation must reject bad inputs before any model is built, with
// errors that map to exit code 2 (invalid model).
func TestValidateRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		fn   func() (options, error)
	}{
		{"unknown method", func() (options, error) { return validate("alexnet", 32, 10, 1, 0.2, "bogus", 0, 0) }},
		{"unknown model", func() (options, error) { return validate("nope", 32, 10, 1, 0.2, "tucker", 0, 0) }},
		{"zero res", func() (options, error) { return validate("alexnet", 0, 10, 1, 0.2, "tucker", 0, 0) }},
		{"bad ratio", func() (options, error) { return validate("alexnet", 32, 10, 1, -0.5, "tucker", 0, 0) }},
		{"negative timeout", func() (options, error) { return validate("alexnet", 32, 10, 1, 0.2, "tucker", -time.Second, 0) }},
		{"negative budget", func() (options, error) { return validate("alexnet", 32, 10, 1, 0.2, "tucker", 0, -1) }},
	}
	for _, c := range cases {
		_, err := c.fn()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !errors.Is(err, guard.ErrInvalidModel) {
			t.Errorf("%s: not an invalid-model error: %v", c.name, err)
		}
		if guard.ExitCode(err) != guard.ExitInvalid {
			t.Errorf("%s: exit code %d, want %d", c.name, guard.ExitCode(err), guard.ExitInvalid)
		}
	}
}

// A tiny memory budget must surface as ErrBudgetExceeded (exit code 3),
// not an OOM crash.
func TestRunBudgetExceeded(t *testing.T) {
	// At 224×224 the verify input alone is ~1.2 MB, above the 1 MB budget.
	o, err2 := validate("alexnet", 224, 10, 1, 0.2, "tucker", 0, 1)
	if err2 != nil {
		t.Fatal(err2)
	}
	o.fusion, o.verify, o.seed = true, true, 1
	err := run(o)
	if !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	if guard.ExitCode(err) != guard.ExitResource {
		t.Fatalf("exit code %d, want %d", guard.ExitCode(err), guard.ExitResource)
	}
}

// An immediately-expiring timeout must surface as ErrCanceled (exit code 3).
func TestRunTimeout(t *testing.T) {
	o := testOptions(t, "alexnet", "tucker")
	o.fusion, o.verify, o.seed = true, true, 1
	o.timeout = time.Nanosecond
	err := run(o)
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if guard.ExitCode(err) != guard.ExitResource {
		t.Fatalf("exit code %d, want %d", guard.ExitCode(err), guard.ExitResource)
	}
}
