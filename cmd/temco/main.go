// Command temco is the TeMCO compiler driver: it builds one of the
// evaluation models, applies tensor decomposition, runs the TeMCO
// optimization pipeline, and reports peak memory, FLOPs, pass statistics,
// and (optionally) a numerical equivalence check against the decomposed
// baseline.
//
// Usage:
//
//	temco -model vgg16 -res 64 -batch 4 -ratio 0.1 -method tucker -verify
//	temco -model unet -dot out.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"temco/internal/core"
	"temco/internal/decompose"
	"temco/internal/exec"
	"temco/internal/graphio"
	"temco/internal/ir"
	"temco/internal/memplan"
	"temco/internal/models"
	"temco/internal/tensor"
)

func main() {
	var (
		model   = flag.String("model", "vgg16", "model name (see -list)")
		list    = flag.Bool("list", false, "list available models and exit")
		res     = flag.Int("res", 64, "input resolution")
		classes = flag.Int("classes", 100, "classifier output width")
		batch   = flag.Int("batch", 4, "batch size for memory accounting")
		ratio   = flag.Float64("ratio", 0.1, "decomposition ratio")
		method  = flag.String("method", "tucker", "decomposition method: tucker|cp|tt")
		skipOpt = flag.Bool("skipopt", true, "enable skip connection optimization")
		fusion  = flag.Bool("fusion", true, "enable activation layer fusion")
		trans   = flag.Bool("transforms", true, "enable layer transformations")
		verify  = flag.Bool("verify", false, "run both graphs on random data and compare outputs")
		dot     = flag.String("dot", "", "write the optimized graph in DOT format to this file")
		save    = flag.String("save", "", "write the optimized graph (weights included) to this file")
		seed    = flag.Uint64("seed", 42, "weight initialization seed")
	)
	flag.Parse()
	if *list {
		for _, n := range models.Names() {
			s, _ := models.Get(n)
			fmt.Printf("%-12s arch=%-9s skips=%v\n", n, s.Arch, s.HasSkips)
		}
		return
	}
	if err := run(*model, *res, *classes, *batch, *ratio, *method, *skipOpt, *fusion, *trans, *verify, *dot, *save, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "temco:", err)
		os.Exit(1)
	}
}

func run(model string, res, classes, batch int, ratio float64, method string,
	skipOpt, fusion, trans, verify bool, dot, save string, seed uint64) error {
	mcfg := models.Config{H: res, W: res, Classes: classes, Seed: seed}
	g, err := models.Build(model, mcfg)
	if err != nil {
		return err
	}
	core.FoldBatchNorm(g)

	dopts := decompose.DefaultOptions()
	dopts.Ratio = ratio
	switch method {
	case "tucker":
		dopts.Method = decompose.Tucker
	case "cp":
		dopts.Method = decompose.CPD
	case "tt":
		dopts.Method = decompose.TensorTrain
	default:
		return fmt.Errorf("unknown method %q", method)
	}

	fmt.Printf("model %s @ %dx%d, batch %d, %s ratio %.2f\n\n", model, res, res, batch, method, ratio)
	report(fmt.Sprintf("original (%d layers)", len(g.Nodes)), g, batch)

	dg, rep := decompose.Decompose(g, dopts)
	ow, nw := rep.TotalWeightBytes()
	report(fmt.Sprintf("decomposed (%d layers, %d convs decomposed, weights %.2f→%.2f MB)",
		len(dg.Nodes), len(rep.Layers), mbf(ow), mbf(nw)), dg, batch)

	cfg := core.DefaultConfig()
	cfg.SkipOpt = skipOpt
	cfg.Fusion = fusion
	cfg.Transforms = trans
	og, st := core.Optimize(dg, cfg)
	report(fmt.Sprintf("TeMCO (%d layers)", len(og.Nodes)), og, batch)
	fmt.Printf("\npasses: %d/%d skip connections optimized (%d rejected by gate), "+
		"%d restore layers copied, %d fused kernels, %d concat splits, %d merged lconvs, %d add merges\n",
		st.SkipConnectionsOptimized, st.SkipConnectionsFound, st.SkipConnectionsRejected,
		st.RestoreLayersCopied, st.FusedKernels, st.ConcatSplits, st.MergedLConvs, st.AddMerges)

	if verify {
		x := tensor.New(2, 3, res, res)
		x.FillNormal(tensor.NewRNG(7), 0, 1)
		rd, err := exec.Run(dg, x)
		if err != nil {
			return err
		}
		ro, err := exec.Run(og, x)
		if err != nil {
			return err
		}
		d := tensor.MaxAbsDiff(rd.Outputs[0], ro.Outputs[0])
		fmt.Printf("\nverify: max |decomposed − optimized| = %.3e over %d outputs\n", d, rd.Outputs[0].Len())
		if d > 0.05 {
			return fmt.Errorf("verification failed: outputs deviate by %v", d)
		}
	}
	if dot != "" {
		if err := os.WriteFile(dot, []byte(og.DOT()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", dot)
	}
	if save != "" {
		f, err := os.Create(save)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := graphio.Save(f, og); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", save)
	}
	return nil
}

func report(label string, g *ir.Graph, batch int) {
	p := memplan.Simulate(g, batch, 0)
	fmt.Printf("%-72s internal %8.2f MB  weights %8.2f MB  %8.3f GFLOPs\n",
		label, mbf(p.PeakInternal), mbf(p.WeightBytes), float64(ir.GraphFLOPs(g))/1e9)
}

func mbf(b int64) float64 { return float64(b) / (1 << 20) }
