// Command temco is the TeMCO compiler driver: it builds one of the
// evaluation models, applies tensor decomposition, runs the TeMCO
// optimization pipeline, and reports peak memory, FLOPs, pass statistics,
// and (optionally) a numerical equivalence check against the decomposed
// baseline.
//
// Usage:
//
//	temco -model vgg16 -res 64 -batch 4 -ratio 0.1 -method tucker -verify
//	temco -model unet -dot out.dot
//	temco -model resnet18 -verify -timeout 30s -membudget 256
//	temco -model unet -verify -trace out.json   # per-step Chrome trace
//
// Exit codes:
//
//	0  success
//	1  internal error (recovered pass/kernel panic, unexpected failure)
//	2  invalid model or flags (unknown model/method, bad parameter)
//	3  resource limit hit (-timeout elapsed or -membudget exceeded)
//
// The TEMCO_WORKERS environment variable overrides kernel parallelism
// (default: GOMAXPROCS). Kernels are deterministic across worker counts.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"flag"
	"math"

	"temco/internal/core"
	"temco/internal/decompose"
	"temco/internal/engine"
	"temco/internal/exec"
	"temco/internal/graphio"
	"temco/internal/guard"
	"temco/internal/ir"
	"temco/internal/memplan"
	"temco/internal/models"
	"temco/internal/obs"
	"temco/internal/ops"
	"temco/internal/tensor"
)

// options carries the validated CLI configuration.
type options struct {
	model    string
	res      int
	classes  int
	batch    int
	ratio    float64
	method   decompose.Method
	skipOpt  bool
	fusion   bool
	trans    bool
	verify   bool
	engine   bool
	dot      string
	save     string
	seed     uint64
	timeout  time.Duration
	budgetMB int64
	traceOut string
}

func main() {
	var (
		model     = flag.String("model", "vgg16", "model name (see -list)")
		list      = flag.Bool("list", false, "list available models and exit")
		res       = flag.Int("res", 64, "input resolution")
		classes   = flag.Int("classes", 100, "classifier output width")
		batch     = flag.Int("batch", 4, "batch size for memory accounting")
		ratio     = flag.Float64("ratio", 0.1, "decomposition ratio")
		method    = flag.String("method", "tucker", "decomposition method: tucker|cp|tt")
		skipOpt   = flag.Bool("skipopt", true, "enable skip connection optimization")
		fusion    = flag.Bool("fusion", true, "enable activation layer fusion")
		trans     = flag.Bool("transforms", true, "enable layer transformations")
		verify    = flag.Bool("verify", false, "run both graphs on random data and compare outputs")
		engineOn  = flag.Bool("engine", true, "with -verify, also run the compiled engine and require bit-identical outputs")
		dot       = flag.String("dot", "", "write the optimized graph in DOT format to this file")
		save      = flag.String("save", "", "write the optimized graph (weights included) to this file")
		seed      = flag.Uint64("seed", 42, "weight initialization seed")
		timeout   = flag.Duration("timeout", 0, "abort -verify execution after this duration (0 = none)")
		membudget = flag.Int64("membudget", 0, "peak internal-tensor memory budget for -verify execution, in MB (0 = unlimited)")
		traceOut  = flag.String("trace", "", "with -verify, record per-step spans and write Chrome trace_event JSON to this file")
	)
	flag.Parse()
	if _, err := ops.WorkersFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "temco:", err)
		os.Exit(guard.ExitCode(err))
	}
	if *list {
		for _, n := range models.Names() {
			s, _ := models.Get(n)
			fmt.Printf("%-12s arch=%-9s skips=%v\n", n, s.Arch, s.HasSkips)
		}
		return
	}
	o, err := validate(*model, *res, *classes, *batch, *ratio, *method, *timeout, *membudget)
	if err == nil {
		o.skipOpt, o.fusion, o.trans, o.verify = *skipOpt, *fusion, *trans, *verify
		o.engine = *engineOn
		o.dot, o.save, o.seed = *dot, *save, *seed
		o.traceOut = *traceOut
		err = run(o)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "temco:", err)
		os.Exit(guard.ExitCode(err))
	}
}

// validate rejects bad flag combinations before any graph is built, so an
// unknown method or model fails in microseconds rather than after model
// construction. All failures wrap guard.ErrInvalidModel (exit code 2).
func validate(model string, res, classes, batch int, ratio float64, method string,
	timeout time.Duration, budgetMB int64) (options, error) {
	o := options{model: model, res: res, classes: classes, batch: batch,
		ratio: ratio, timeout: timeout, budgetMB: budgetMB}
	bad := func(format string, args ...any) (options, error) {
		return o, guard.Errorf(guard.ErrInvalidModel, "flags", format, args...)
	}
	switch method {
	case "tucker":
		o.method = decompose.Tucker
	case "cp":
		o.method = decompose.CPD
	case "tt":
		o.method = decompose.TensorTrain
	default:
		return bad("unknown method %q (want tucker|cp|tt)", method)
	}
	if _, err := models.Get(model); err != nil {
		return bad("%v", err)
	}
	if res < 1 || classes < 1 || batch < 1 {
		return bad("res, classes, and batch must be positive (got %d, %d, %d)", res, classes, batch)
	}
	if ratio <= 0 || ratio > 1 {
		return bad("ratio %v out of range (0, 1]", ratio)
	}
	if timeout < 0 || budgetMB < 0 {
		return bad("timeout and membudget must be non-negative")
	}
	return o, nil
}

func run(o options) error {
	mcfg := models.Config{H: o.res, W: o.res, Classes: o.classes, Seed: o.seed}
	g, err := models.Build(o.model, mcfg)
	if err != nil {
		return guard.New(guard.ErrInvalidModel, "build", err)
	}
	core.FoldBatchNorm(g)

	dopts := decompose.DefaultOptions()
	dopts.Ratio = o.ratio
	dopts.Method = o.method

	fmt.Printf("model %s @ %dx%d, batch %d, %s ratio %.2f\n\n", o.model, o.res, o.res, o.batch, o.method, o.ratio)
	report(fmt.Sprintf("original (%d layers)", len(g.Nodes)), g, o.batch)

	dg, rep := decompose.Decompose(g, dopts)
	ow, nw := rep.TotalWeightBytes()
	report(fmt.Sprintf("decomposed (%d layers, %d convs decomposed, weights %.2f→%.2f MB)",
		len(dg.Nodes), len(rep.Layers), mbf(ow), mbf(nw)), dg, o.batch)

	cfg := core.DefaultConfig()
	cfg.SkipOpt = o.skipOpt
	cfg.Fusion = o.fusion
	cfg.Transforms = o.trans
	og, st := core.Optimize(dg, cfg)
	report(fmt.Sprintf("TeMCO (%d layers)", len(og.Nodes)), og, o.batch)
	fmt.Printf("\npasses: %d/%d skip connections optimized (%d rejected by gate), "+
		"%d restore layers copied, %d fused kernels, %d concat splits, %d merged lconvs, %d add merges\n",
		st.SkipConnectionsOptimized, st.SkipConnectionsFound, st.SkipConnectionsRejected,
		st.RestoreLayersCopied, st.FusedKernels, st.ConcatSplits, st.MergedLConvs, st.AddMerges)
	for _, pf := range st.PassFailures {
		fmt.Fprintf(os.Stderr, "temco: warning: pass %s rolled back: %s\n", pf.Pass, pf.Reason)
	}

	if o.verify {
		ctx := context.Background()
		if o.timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, o.timeout)
			defer cancel()
		}
		var tracer *obs.Tracer
		if o.traceOut != "" {
			// Unscoped: spans from the decomposed, optimized, and engine runs
			// all land in one trace, on separate lanes.
			tracer = obs.EnableTrace(obs.TraceConfig{})
			defer obs.DisableTrace()
		}
		budget := o.budgetMB * (1 << 20)
		x := tensor.New(2, 3, o.res, o.res)
		x.FillNormal(tensor.NewRNG(7), 0, 1)
		rd, err := exec.RunCtx(ctx, dg, budget, x)
		if err != nil {
			return err
		}
		ro, err := exec.RunCtx(ctx, og, budget, x)
		if err != nil {
			return err
		}
		d := tensor.MaxAbsDiff(rd.Outputs[0], ro.Outputs[0])
		fmt.Printf("\nverify: max |decomposed − optimized| = %.3e over %d outputs\n", d, rd.Outputs[0].Len())
		if d > 0.05 {
			return fmt.Errorf("verification failed: outputs deviate by %v", d)
		}
		if o.engine {
			// The interpreter result above is the reference; the compiled
			// engine must reproduce it bit for bit (budget enforcement
			// already happened on the interpreter run).
			eng, err := engine.Compile(og, engine.Options{Batch: x.Dim(0)})
			if err != nil {
				return err
			}
			re, err := eng.Run(ctx, x)
			if err != nil {
				return err
			}
			for i, w := range ro.Outputs {
				if !bitIdentical(re.Outputs[i], w) {
					return fmt.Errorf("verification failed: compiled engine output %d differs from interpreter", i)
				}
			}
			fmt.Printf("verify: compiled engine bit-identical to interpreter (%d outputs)\n", len(ro.Outputs))
		}
		if tracer != nil {
			f, err := os.Create(o.traceOut)
			if err != nil {
				return err
			}
			if err := tracer.WriteChromeTrace(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %d spans to %s\n", len(tracer.Spans()), o.traceOut)
		}
	}
	if o.dot != "" {
		if err := os.WriteFile(o.dot, []byte(og.DOT()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.dot)
	}
	if o.save != "" {
		f, err := os.Create(o.save)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := graphio.Save(f, og); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.save)
	}
	return nil
}

func bitIdentical(a, b *tensor.Tensor) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			return false
		}
	}
	return true
}

func report(label string, g *ir.Graph, batch int) {
	p := memplan.Simulate(g, batch, 0)
	fmt.Printf("%-72s internal %8.2f MB  weights %8.2f MB  %8.3f GFLOPs\n",
		label, mbf(p.PeakInternal), mbf(p.WeightBytes), float64(ir.GraphFLOPs(g))/1e9)
}

func mbf(b int64) float64 { return float64(b) / (1 << 20) }
