// Command memprofile prints the internal-tensor memory timeline of one
// model variant (paper Fig. 4) either as a textual plot or as CSV suitable
// for external plotting. With -measured it additionally *runs* the graph
// with the interpreter's memory recorder enabled and compares the measured
// live-byte curve against the static prediction, exiting nonzero when the
// two diverge beyond -tol.
//
// Usage:
//
//	memprofile -model unet -variant Decomposed -batch 4
//	memprofile -model vgg16 -variant Original -csv > vgg16.csv
//	memprofile -model unet -variant Decomposed -measured -tol 0.1
//
// The TEMCO_WORKERS environment variable overrides kernel parallelism
// (default: GOMAXPROCS). Kernels are deterministic across worker counts.
package main

import (
	"flag"
	"fmt"
	"os"

	"temco/internal/decompose"
	"temco/internal/experiments"
	"temco/internal/guard"
	"temco/internal/models"
	"temco/internal/ops"
)

func main() {
	var (
		model    = flag.String("model", "unet", "model name")
		variant  = flag.String("variant", "Decomposed", "Original|Decomposed|Fusion|Skip-Opt|Skip-Opt+Fusion")
		res      = flag.Int("res", 64, "input resolution")
		batch    = flag.Int("batch", 4, "batch size")
		ratio    = flag.Float64("ratio", 0.1, "decomposition ratio")
		csv      = flag.Bool("csv", false, "emit CSV instead of a plot")
		width    = flag.Int("width", 60, "plot width")
		measured = flag.Bool("measured", false, "run the graph and compare the measured memory curve against the prediction")
		tol      = flag.Float64("tol", 0.10, "with -measured, max allowed relative peak divergence before a nonzero exit")
	)
	flag.Parse()
	if _, err := ops.WorkersFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
		os.Exit(guard.ExitCode(err))
	}
	mcfg := models.DefaultConfig()
	mcfg.H, mcfg.W = *res, *res
	dopts := decompose.DefaultOptions()
	dopts.Ratio = *ratio
	s, err := experiments.Timeline(*model, experiments.Variant(*variant), mcfg, dopts, *batch)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
		os.Exit(1)
	}
	if *measured {
		if err := runMeasured(s, *model, *variant, mcfg, dopts, *batch, *tol, *csv); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			os.Exit(guard.ExitCode(err))
		}
		return
	}
	if *csv {
		fmt.Println("index,layer,live_bytes,skip_bytes")
		for _, p := range s.Points {
			fmt.Printf("%d,%s,%d,%d\n", p.Index, p.Layer, p.LiveBytes, p.SkipBytes)
		}
		return
	}
	fmt.Print(s.Sparkline(*width))
}

// runMeasured executes the graph with the memory recorder armed, prints the
// predicted and measured curves side by side, and enforces -tol on the peak
// divergence. Divergence beyond tolerance means the interpreter's live-set
// accounting and the static planner disagree — a bug in one of the two —
// and maps to guard.ErrInternal (exit code 1), following the guard table.
func runMeasured(pred experiments.TimelineSeries, model, variant string,
	mcfg models.Config, dopts decompose.Options, batch int, tol float64, csv bool) error {
	meas, err := experiments.MeasuredTimeline(model, experiments.Variant(variant), mcfg, dopts, batch)
	if err != nil {
		return err
	}
	c, err := experiments.Compare(pred, meas)
	if err != nil {
		return err
	}
	if csv {
		byStep := make(map[int]int64, len(meas.Points))
		for _, p := range meas.Points {
			byStep[p.Index] = p.LiveBytes
		}
		fmt.Println("index,layer,predicted_bytes,measured_bytes")
		for _, p := range pred.Points {
			fmt.Printf("%d,%s,%d,%d\n", p.Index, p.Layer, p.LiveBytes, byStep[p.Index])
		}
	} else {
		fmt.Printf("%s / %s, batch %d — predicted vs measured internal-tensor memory\n",
			c.Model, c.Variant, c.Batch)
		fmt.Printf("  predicted peak  %12d bytes (%.2f MB)\n", c.PredictedPeak, mb(c.PredictedPeak))
		fmt.Printf("  measured peak   %12d bytes (%.2f MB)\n", c.MeasuredPeak, mb(c.MeasuredPeak))
		fmt.Printf("  peak divergence %11.3f%%   worst point %8.3f%%   (%d points, tolerance %.1f%%)\n",
			c.PeakRelDiff*100, c.MaxPointRelDiff*100, c.Points, tol*100)
	}
	if c.PeakRelDiff > tol {
		return guard.Errorf(guard.ErrInternal, "memprofile",
			"measured peak diverges from prediction by %.2f%% (tolerance %.1f%%)",
			c.PeakRelDiff*100, tol*100)
	}
	return nil
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }
