// Command memprofile prints the internal-tensor memory timeline of one
// model variant (paper Fig. 4) either as a textual plot or as CSV suitable
// for external plotting.
//
// Usage:
//
//	memprofile -model unet -variant Decomposed -batch 4
//	memprofile -model vgg16 -variant Original -csv > vgg16.csv
//
// The TEMCO_WORKERS environment variable overrides kernel parallelism
// (default: GOMAXPROCS). Kernels are deterministic across worker counts.
package main

import (
	"flag"
	"fmt"
	"os"

	"temco/internal/decompose"
	"temco/internal/experiments"
	"temco/internal/guard"
	"temco/internal/models"
	"temco/internal/ops"
)

func main() {
	var (
		model   = flag.String("model", "unet", "model name")
		variant = flag.String("variant", "Decomposed", "Original|Decomposed|Fusion|Skip-Opt|Skip-Opt+Fusion")
		res     = flag.Int("res", 64, "input resolution")
		batch   = flag.Int("batch", 4, "batch size")
		ratio   = flag.Float64("ratio", 0.1, "decomposition ratio")
		csv     = flag.Bool("csv", false, "emit CSV instead of a plot")
		width   = flag.Int("width", 60, "plot width")
	)
	flag.Parse()
	if _, err := ops.WorkersFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
		os.Exit(guard.ExitCode(err))
	}
	mcfg := models.DefaultConfig()
	mcfg.H, mcfg.W = *res, *res
	dopts := decompose.DefaultOptions()
	dopts.Ratio = *ratio
	s, err := experiments.Timeline(*model, experiments.Variant(*variant), mcfg, dopts, *batch)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
		os.Exit(1)
	}
	if *csv {
		fmt.Println("index,layer,live_bytes,skip_bytes")
		for _, p := range s.Points {
			fmt.Printf("%d,%s,%d,%d\n", p.Index, p.Layer, p.LiveBytes, p.SkipBytes)
		}
		return
	}
	fmt.Print(s.Sparkline(*width))
}
