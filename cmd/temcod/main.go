// Command temcod serves TeMCO-optimized inference over HTTP with the
// fault-tolerance stack from internal/serve: bounded admission, per-request
// deadlines and priorities, retry with backoff, and a circuit breaker that
// degrades to the unoptimized (decomposed) graph when the optimized graph
// keeps failing. A deterministic fault-injection harness can be armed from
// the command line for soak testing.
//
// Usage:
//
//	temcod -model vgg16 -res 64 -ratio 0.1 -addr :8080
//	temcod -model resnet18 -faults "seed=42,scope=optimized,panic=0.05,budget=0.02"
//	temcod -model alexnet -batch-max 8 -batch-window 2ms
//
// -batch-max N (with N > 1) turns on dynamic request batching: concurrent
// /infer requests coalesce for up to -batch-window into one engine run at
// a compiled batch bucket, multiplying throughput under concurrent load at
// the cost of up to one window of added latency. Outputs are bit-identical
// to solo runs.
//
// Endpoints:
//
//	POST /infer   {"batch":1,"seed":7} or {"data":[...]} — run inference
//	GET  /healthz liveness (200 while the process runs)
//	GET  /readyz  readiness (503 while draining); the ready body carries
//	              queue depth, breaker state, and the degraded flag for the
//	              temcor routing tier
//	POST /drainz  flip the session into draining: admission sheds, queued
//	              and in-flight work completes, /readyz turns into a drain
//	              progress report (queue depth, in-flight); the process
//	              keeps running until SIGTERM
//	POST /quitz   exit the process immediately (only with -quitz armed)
//	GET  /statsz  serving counters + injected-fault counters (JSON)
//	GET  /metrics the same counters in Prometheus text format
//	GET  /debug/pprof/ net/http/pprof profiles
//
// /statsz and /metrics render the same obs.Registry instruments, so the two
// views cannot drift. -trace FILE records per-step execution spans for the
// process lifetime and writes Chrome trace_event JSON (chrome://tracing,
// Perfetto) at shutdown.
//
// SIGINT/SIGTERM triggers graceful shutdown: the listener closes, in-flight
// requests drain (bounded by -draintimeout), then the process exits.
//
// Exit codes follow the guard table: 0 success, 1 internal, 2 invalid
// flags/model, 3 resource limit, 4 overloaded, 5 degraded.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"temco/internal/cluster"
	"temco/internal/core"
	"temco/internal/decompose"
	"temco/internal/engine"
	"temco/internal/faultinject"
	"temco/internal/gemm"
	"temco/internal/guard"
	"temco/internal/ir"
	"temco/internal/models"
	"temco/internal/obs"
	"temco/internal/ops"
	"temco/internal/serve"
	"temco/internal/tensor"
)

func main() {
	var (
		model     = flag.String("model", "vgg16", "model name (see temco -list)")
		res       = flag.Int("res", 64, "input resolution")
		classes   = flag.Int("classes", 100, "classifier output width")
		ratio     = flag.Float64("ratio", 0.1, "decomposition ratio")
		method    = flag.String("method", "tucker", "decomposition method: tucker|cp|tt")
		seed      = flag.Uint64("seed", 42, "weight initialization seed")
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		queueSize = flag.Int("queue", 64, "admission queue capacity")
		workers   = flag.Int("serveworkers", 2, "concurrent executor goroutines")
		deadline  = flag.Duration("deadline", 30*time.Second, "default per-request deadline")
		retries   = flag.Int("retries", 2, "max retries for retryable failures (-1 disables)")
		membudget = flag.Int64("membudget", 0, "per-request peak-memory budget in MB (0 = unlimited)")
		breaker   = flag.Int("breaker", 3, "consecutive failures that trip the circuit breaker")
		probe     = flag.Duration("probe", 1*time.Second, "breaker recovery probe interval")
		drain     = flag.Duration("draintimeout", 30*time.Second, "graceful shutdown drain budget")
		engineOn  = flag.Bool("engine", true, "serve through the compiled plan-once/run-many engine (off = exec interpreter)")
		batchMax  = flag.Int("batch-max", 0, "coalesce concurrent /infer requests into batches of up to this many sample rows (0 or 1 = off)")
		batchWin  = flag.Duration("batch-window", 2*time.Millisecond, "how long an open batch accumulates before dispatching partially full")
		faults    = flag.String("faults", "", `fault injection spec, e.g. "seed=42,scope=optimized,panic=0.05,budget=0.02,slow=0.01:5ms,alloc=0.01,blackhole=0.05,httpdelay=0.1:20ms"`)
		traceOut  = flag.String("trace", "", "record per-step spans and write Chrome trace_event JSON to this file at shutdown")
		quitz     = flag.Bool("quitz", false, "expose POST /quitz, which exits the process immediately (soak-test kill hook)")
		flight    = flag.Bool("flight", true, "arm the tail-sampled request flight recorder behind GET /debugz/requests")
		flightN   = flag.Int("flightsample", 16, "flight recorder keeps 1-in-N plain OK requests (errors, sheds, and the slow tail are always kept)")
	)
	flag.Parse()
	if err := run(options{
		model: *model, res: *res, classes: *classes, ratio: *ratio,
		method: *method, seed: *seed, addr: *addr, queueSize: *queueSize,
		workers: *workers, deadline: *deadline, retries: *retries,
		membudgetMB: *membudget, breaker: *breaker, probe: *probe,
		drain: *drain, noEngine: !*engineOn, batchMax: *batchMax,
		batchWindow: *batchWin, faults: *faults,
		traceOut: *traceOut, quitz: *quitz,
		flight: *flight, flightSample: *flightN,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "temcod:", err)
		os.Exit(guard.ExitCode(err))
	}
}

type options struct {
	model        string
	res          int
	classes      int
	ratio        float64
	method       string
	seed         uint64
	addr         string
	queueSize    int
	workers      int
	deadline     time.Duration
	retries      int
	membudgetMB  int64
	breaker      int
	probe        time.Duration
	drain        time.Duration
	noEngine     bool
	batchMax     int
	batchWindow  time.Duration
	faults       string
	traceOut     string
	quitz        bool
	flight       bool
	flightSample int
}

// logx is the daemon's structured logger: JSON lines on stderr, rate
// limited, carrying trace_id/request_id when the context has a trace.
var logx = obs.NewLogger(nil, "temcod")

func run(o options) error {
	kernelWorkers, err := ops.WorkersFromEnv()
	if err != nil {
		return err
	}
	// Process-wide collectors on the default registry: runtime gauges plus
	// the gemm pool and fault-injection counters the serving layer perturbs.
	// The session's own instruments live on its per-session registry; the
	// /metrics handler renders both.
	obs.RegisterProcessMetrics(obs.Default())
	gemm.RegisterMetrics(obs.Default())
	faultinject.RegisterMetrics(obs.Default())
	obs.RegisterCopyMetrics(obs.Default())
	obs.RegisterBuildInfo(obs.Default(), buildInfo(kernelWorkers))
	obs.RegisterFlightMetrics(obs.Default())
	if o.flight {
		obs.EnableFlightRecorder(obs.FlightConfig{SampleRate: o.flightSample})
		defer obs.DisableFlightRecorder()
	}
	if o.traceOut != "" {
		tracer := obs.EnableTrace(obs.TraceConfig{Capacity: 1 << 18})
		defer func() {
			obs.DisableTrace()
			if err := writeTraceFile(tracer, o.traceOut); err != nil {
				fmt.Fprintln(os.Stderr, "temcod: writing trace:", err)
				return
			}
			fmt.Printf("temcod: wrote %d spans (%d dropped) to %s\n",
				len(tracer.Spans()), tracer.Dropped(), o.traceOut)
		}()
	}
	sess, inputShape, err := buildSession(o)
	if err != nil {
		return err
	}
	// Probe the engine's steady-state allocation count once at startup,
	// before any fault injection is armed, so /statsz can report it.
	steadyAllocs := measureSteadyAllocs(sess)
	if o.faults != "" {
		fcfg, err := parseFaults(o.faults)
		if err != nil {
			return err
		}
		faultinject.Enable(fcfg)
		fmt.Printf("temcod: fault injection armed: %s\n", o.faults)
		defer faultinject.Disable()
	}

	srv := &http.Server{Addr: o.addr, Handler: newHandler(sess, inputShape, steadyAllocs, o.quitz)}
	if o.quitz {
		fmt.Println("temcod: /quitz kill hook armed")
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("temcod: serving %s (%dx%d, %s ratio %.2f) on %s\n",
			o.model, o.res, o.res, o.method, o.ratio, o.addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		// The listener died before any shutdown signal: stop the session's
		// background goroutines (workers, batch coalescer) before exiting so
		// the failure path leaks nothing.
		logx.Error("listener failed", "err", err.Error())
		cctx, cancel := context.WithTimeout(context.Background(), o.drain)
		sess.Close(cctx)
		cancel()
		return guard.New(guard.ErrInternal, "temcod.listen", err)
	case <-ctx.Done():
	}
	fmt.Println("temcod: shutting down, draining in-flight requests")
	sdctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	if err := srv.Shutdown(sdctx); err != nil {
		sess.Close(sdctx)
		return guard.New(guard.ErrCanceled, "temcod.shutdown", err)
	}
	if err := sess.Close(sdctx); err != nil {
		return err
	}
	fmt.Println("temcod: drained cleanly")
	return nil
}

// buildSession compiles the model twice — the decomposed fallback and its
// TeMCO-optimized form — and wraps both in a serve.Session. The graph names
// "optimized" and "fallback" double as fault-injection scopes.
func buildSession(o options) (*serve.Session, []int, error) {
	var m decompose.Method
	switch o.method {
	case "tucker":
		m = decompose.Tucker
	case "cp":
		m = decompose.CPD
	case "tt":
		m = decompose.TensorTrain
	default:
		return nil, nil, guard.Errorf(guard.ErrInvalidModel, "flags", "unknown method %q (want tucker|cp|tt)", o.method)
	}
	if o.res < 1 || o.classes < 1 {
		return nil, nil, guard.Errorf(guard.ErrInvalidModel, "flags", "res and classes must be positive (got %d, %d)", o.res, o.classes)
	}
	if o.ratio <= 0 || o.ratio > 1 {
		return nil, nil, guard.Errorf(guard.ErrInvalidModel, "flags", "ratio %v out of range (0, 1]", o.ratio)
	}
	if o.membudgetMB < 0 {
		return nil, nil, guard.Errorf(guard.ErrInvalidModel, "flags", "membudget must be non-negative")
	}
	if o.batchMax < 0 {
		return nil, nil, guard.Errorf(guard.ErrInvalidModel, "flags", "batch-max must be non-negative")
	}
	opt, fb, err := buildGraphs(o, m)
	if err != nil {
		return nil, nil, err
	}
	sess, err := serve.New(opt, fb, serve.Config{
		QueueSize:        o.queueSize,
		Workers:          o.workers,
		DefaultTimeout:   o.deadline,
		MaxRetries:       o.retries,
		BudgetBytes:      o.membudgetMB * (1 << 20),
		BreakerThreshold: o.breaker,
		ProbeInterval:    o.probe,
		NoEngine:         o.noEngine,
		MaxBatchSize:     o.batchMax,
		MaxBatchLatency:  o.batchWindow,
	})
	if err != nil {
		return nil, nil, err
	}
	return sess, opt.Inputs[0].Shape, nil
}

// buildGraphs compiles the decomposed fallback graph and its TeMCO-optimized
// form. Graphs are read-only at execution time, so callers may share them
// across sessions.
func buildGraphs(o options, m decompose.Method) (opt, fb *ir.Graph, err error) {
	g, err := models.Build(o.model, models.Config{H: o.res, W: o.res, Classes: o.classes, Seed: o.seed})
	if err != nil {
		return nil, nil, guard.New(guard.ErrInvalidModel, "build", err)
	}
	core.FoldBatchNorm(g)
	dopts := decompose.DefaultOptions()
	dopts.Ratio = o.ratio
	dopts.Method = m
	fb, _ = decompose.Decompose(g, dopts)
	opt, _ = core.Optimize(fb, core.DefaultConfig())
	opt.Name, fb.Name = "optimized", "fallback"
	return opt, fb, nil
}

// parseFaults parses the -faults spec: comma-separated key=value pairs.
// Keys: seed=<uint>, scope=<name>, panic=<rate>, budget=<rate>,
// alloc=<rate>, slow=<rate>[:<delay>] (delay defaults to 5ms),
// blackhole=<rate>, httpdelay=<rate>[:<delay>] (delay defaults to 5ms).
// The kernel-level faults (panic/budget/alloc/slow) match graph-name
// scopes; the HTTP-level faults (blackhole/httpdelay) fire when the scope
// is empty or "http".
func parseFaults(spec string) (faultinject.Config, error) {
	var cfg faultinject.Config
	bad := func(format string, args ...any) (faultinject.Config, error) {
		return cfg, guard.Errorf(guard.ErrInvalidModel, "flags", "-faults: "+format, args...)
	}
	rate := func(k, v string) (float64, error) {
		r, err := strconv.ParseFloat(v, 64)
		if err != nil || r < 0 || r > 1 {
			return 0, fmt.Errorf("%s=%q: want a rate in [0, 1]", k, v)
		}
		return r, nil
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || v == "" {
			return bad("malformed entry %q (want key=value)", part)
		}
		switch k {
		case "seed":
			s, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return bad("seed=%q: want an unsigned integer", v)
			}
			cfg.Seed = s
		case "scope":
			cfg.Scope = v
		case "panic":
			r, err := rate(k, v)
			if err != nil {
				return bad("%v", err)
			}
			cfg.KernelPanicRate = r
		case "budget":
			r, err := rate(k, v)
			if err != nil {
				return bad("%v", err)
			}
			cfg.BudgetRate = r
		case "alloc":
			r, err := rate(k, v)
			if err != nil {
				return bad("%v", err)
			}
			cfg.AllocRate = r
		case "slow":
			rv, delay, hasDelay := strings.Cut(v, ":")
			r, err := rate(k, rv)
			if err != nil {
				return bad("%v", err)
			}
			cfg.SlowRate = r
			cfg.SlowDelay = 5 * time.Millisecond
			if hasDelay {
				d, err := time.ParseDuration(delay)
				if err != nil || d <= 0 {
					return bad("slow=%q: want rate[:positive duration]", v)
				}
				cfg.SlowDelay = d
			}
		case "blackhole":
			r, err := rate(k, v)
			if err != nil {
				return bad("%v", err)
			}
			cfg.HTTPBlackholeRate = r
		case "httpdelay":
			rv, delay, hasDelay := strings.Cut(v, ":")
			r, err := rate(k, rv)
			if err != nil {
				return bad("%v", err)
			}
			cfg.HTTPDelayRate = r
			cfg.HTTPDelay = 5 * time.Millisecond
			if hasDelay {
				d, err := time.ParseDuration(delay)
				if err != nil || d <= 0 {
					return bad("httpdelay=%q: want rate[:positive duration]", v)
				}
				cfg.HTTPDelay = d
			}
		default:
			return bad("unknown key %q", k)
		}
	}
	return cfg, nil
}

// inferRequest is the POST /infer body. Either Data carries a flattened
// input tensor (batch inferred from its length) or Batch/Seed ask the
// server to fill a random input — handy for soak drivers.
type inferRequest struct {
	Data       []float32 `json:"data,omitempty"`
	Batch      int       `json:"batch,omitempty"`
	Seed       uint64    `json:"seed,omitempty"`
	Priority   string    `json:"priority,omitempty"` // low|normal|high
	DeadlineMS int64     `json:"deadline_ms,omitempty"`
}

type inferResponse struct {
	Shape    []int   `json:"shape"`
	Argmax   []int   `json:"argmax"`
	Degraded bool    `json:"degraded"`
	Retries  int     `json:"retries"`
	QueuedMS float64 `json:"queued_ms"`
	ExecMS   float64 `json:"exec_ms"`
}

// engineStatsz is the /statsz engine section: per-graph compiled-engine
// snapshots plus the steady-state allocation probe taken at startup.
type engineStatsz struct {
	Enabled   bool          `json:"enabled"`
	Optimized *engine.Stats `json:"optimized,omitempty"`
	Fallback  *engine.Stats `json:"fallback,omitempty"`
	// SteadyAllocsPerRun is heap allocations per steady-state engine run,
	// measured once at startup (-1 when the engine is disabled). Zero only
	// at TEMCO_WORKERS=1; the parallel kernel fan-out allocates.
	SteadyAllocsPerRun float64 `json:"steady_allocs_per_run"`
}

// batchingStatsz is the /statsz batching section: the coalescer's knobs
// and the compiled bucket ladder, next to the live counters already in the
// serve section (batched_runs, padded_slots, batch_pending, ...).
type batchingStatsz struct {
	Enabled  bool    `json:"enabled"`
	MaxBatch int     `json:"max_batch,omitempty"`
	WindowMS float64 `json:"window_ms,omitempty"`
	// Buckets is the runtime ladder batched runs pad to; every entry has
	// an arena layout planned at session start.
	Buckets []int `json:"buckets"`
}

type statsResponse struct {
	Serve    serve.Stats    `json:"serve"`
	GemmPool gemm.PoolStats `json:"gemm_pool"`
	// Copies is the process-wide data-movement ledger: bytes the executors
	// moved with plain copies vs copies the alias plans eliminated
	// (DESIGN.md §14).
	Copies     obs.CopyStats        `json:"copies"`
	Engine     engineStatsz         `json:"engine"`
	Batching   batchingStatsz       `json:"batching"`
	Faults     faultinject.Counters `json:"faults"`
	Goroutines int                  `json:"goroutines"`
	Build      obs.BuildInfo        `json:"build"`
	// Flight is the flight recorder's admission ledger; nil while recording
	// is disabled (then GET /debugz/requests answers 503 too).
	Flight        *obs.FlightStats `json:"flight,omitempty"`
	UptimeSeconds float64          `json:"uptime_seconds"`
}

// buildInfo assembles the identity published on temco_build_info and
// /statsz: the linked version, toolchain, SIMD state, kernel worker count.
func buildInfo(workers int) obs.BuildInfo {
	return obs.BuildInfo{
		Version:   obs.Version,
		GoVersion: runtime.Version(),
		SIMD:      gemm.SIMD(),
		Workers:   workers,
	}
}

// measureSteadyAllocs probes the optimized engine's per-run allocation
// count; -1 when the session serves through the interpreter.
func measureSteadyAllocs(sess *serve.Session) float64 {
	opt, _ := sess.Engines()
	if opt == nil {
		return -1
	}
	v, err := engine.MeasureSteadyAllocs(opt, 5)
	if err != nil {
		return -1
	}
	return v
}

// exitProcess is swapped out in tests of the /quitz kill hook.
var exitProcess = os.Exit

// newHandler builds the temcod HTTP API over sess. inputShape is the
// per-sample input shape (no batch dimension); steadyAllocs is the
// startup allocation probe surfaced verbatim in /statsz; quitz arms the
// POST /quitz kill hook. All routes pass through the HTTP fault layer
// (faultinject scope "http"): injected latency and connection blackholes
// exercise the cluster tier's probe and retry paths.
func newHandler(sess *serve.Session, inputShape []int, steadyAllocs float64, quitz bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	// /readyz serializes cluster.Health, the exact struct the temcor prober
	// decodes, so the replica's encoder and the router's decoder cannot
	// drift. Queue depth, breaker state, and in-flight feed the router's
	// least-loaded placement; a non-closed breaker marks the replica
	// degraded and the fleet routes around it.
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		st := sess.Stats()
		h := cluster.Health{
			Ready:        sess.Ready(),
			Degraded:     sess.Degraded(),
			QueueDepth:   st.QueueDepth,
			QueueCap:     st.QueueCap,
			InFlight:     st.InFlight,
			BatchPending: st.BatchPending,
			BreakerState: st.Breaker,
			// Autoscale signal inputs: the temcor autoscaler differences
			// RunSecondsTotal and BreakerTransitions between probes and
			// compares the p95 queue wait against its target.
			Workers:            st.Workers,
			RunSecondsTotal:    st.RunSecondsTotal,
			QueueWaitP95MS:     float64(sess.QueueWaitQuantile(0.95)) / float64(time.Millisecond),
			BreakerTransitions: st.BreakerTransitions,
		}
		if !h.Ready {
			// Draining: the 503 body doubles as the drain progress report —
			// queue depth and in-flight count down to zero as the session
			// empties.
			h.Reason = "draining"
			writeJSON(w, http.StatusServiceUnavailable, h)
			return
		}
		writeJSON(w, http.StatusOK, h)
	})
	// /drainz flips the session's draining state: admission sheds from this
	// instant (the temcor router retries those requests elsewhere), queued
	// and in-flight work runs to completion on the live workers, and
	// /readyz reports progress until the process is told to exit. Part of
	// the cluster drain protocol — cluster.Table.Drain posts here — but
	// also usable directly for a manual rolling restart.
	mux.HandleFunc("/drainz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		sess.Drain()
		st := sess.Stats()
		writeJSON(w, http.StatusOK, map[string]any{
			"draining":      true,
			"queue_depth":   st.QueueDepth,
			"in_flight":     st.InFlight,
			"batch_pending": st.BatchPending,
		})
	})
	if quitz {
		mux.HandleFunc("/quitz", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				writeError(w, http.StatusMethodNotAllowed, "POST only")
				return
			}
			writeJSON(w, http.StatusOK, map[string]bool{"quitting": true})
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			// Exit off the handler goroutine after the response flushes: the
			// point is an abrupt process death (no drain), not a shutdown.
			go func() {
				time.Sleep(10 * time.Millisecond)
				exitProcess(1)
			}()
		})
	}
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		es := engineStatsz{SteadyAllocsPerRun: steadyAllocs}
		if opt, fb, optOK, fbOK := sess.EngineStats(); optOK || fbOK {
			es.Enabled = true
			if optOK {
				es.Optimized = &opt
			}
			if fbOK {
				es.Fallback = &fb
			}
		}
		bs := batchingStatsz{Buckets: sess.BatchBuckets()}
		var window time.Duration
		if bs.Enabled, bs.MaxBatch, window = sess.BatchConfig(); bs.Enabled {
			bs.WindowMS = float64(window) / float64(time.Millisecond)
		} else {
			bs.MaxBatch = 0
		}
		resp := statsResponse{
			Serve:         sess.Stats(),
			GemmPool:      gemm.PoolStatsSnapshot(),
			Copies:        obs.CopyStatsSnapshot(),
			Engine:        es,
			Batching:      bs,
			Faults:        faultinject.CountersSnapshot(),
			Goroutines:    runtime.NumGoroutine(),
			Build:         buildInfo(ops.Workers),
			UptimeSeconds: obs.Uptime().Seconds(),
		}
		if fr := obs.Flight(); fr != nil {
			fs := fr.Stats()
			resp.Flight = &fs
		}
		writeJSON(w, http.StatusOK, resp)
	})
	// The flight-recorder API: retained request timelines with per-request
	// Chrome trace export (see obs.FlightPath docs).
	mux.Handle(obs.FlightPath, obs.FlightHandler())
	mux.Handle(obs.FlightPath+"/", obs.FlightHandler())
	// /metrics renders the session's registry next to the process-wide
	// default registry (runtime, gemm pool, fault counters) in Prometheus
	// text format — the same instruments /statsz serializes as JSON.
	mux.Handle("/metrics", obs.Handler(sess.Metrics(), obs.Default()))
	// net/http/pprof registers on DefaultServeMux; mirror its routes onto
	// this private mux so profiles ship with the daemon.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/infer", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req inferRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad JSON body: "+err.Error())
			return
		}
		x, err := buildInput(req, inputShape)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		sreq := serve.Request{Inputs: []*tensor.Tensor{x}}
		switch req.Priority {
		case "", "normal":
			sreq.Priority = serve.PriorityNormal
		case "low":
			sreq.Priority = serve.PriorityLow
		case "high":
			sreq.Priority = serve.PriorityHigh
		default:
			writeError(w, http.StatusBadRequest, fmt.Sprintf("priority %q: want low|normal|high", req.Priority))
			return
		}
		if req.DeadlineMS < 0 {
			writeError(w, http.StatusBadRequest, "deadline_ms must be non-negative")
			return
		}
		sreq.Timeout = time.Duration(req.DeadlineMS) * time.Millisecond
		resp, err := sess.Infer(r.Context(), sreq)
		if err != nil {
			status := statusFor(err)
			if rt := obs.RequestFrom(r.Context()); rt != nil {
				rt.SetError(err.Error())
			}
			logx.ErrorCtx(r.Context(), "infer failed", "status", status, "err", err.Error())
			// Backpressure statuses tell well-behaved clients (and the temcor
			// router) when trying again is worthwhile.
			if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
				w.Header().Set("Retry-After", "1")
			}
			writeError(w, status, err.Error())
			return
		}
		out := resp.Outputs[0]
		writeJSON(w, http.StatusOK, inferResponse{
			Shape:    out.Shape,
			Argmax:   argmaxPerSample(out),
			Degraded: resp.Degraded,
			Retries:  resp.Retries,
			QueuedMS: float64(resp.Queued) / float64(time.Millisecond),
			ExecMS:   float64(resp.Exec) / float64(time.Millisecond),
		})
	})
	// Tracing wraps the fault layer so every response — including injected
	// blackholes' would-be responses and real sheds — carries the request id,
	// and /infer timelines reach the flight recorder even on fault paths.
	return obs.TraceHTTP(withHTTPFaults(mux), "/infer")
}

// withHTTPFaults is the replica-level fault layer: when an injector with
// the "http" scope (or no scope) is armed, requests may be delayed or
// blackholed — the connection closes without any response bytes, exactly
// what a process crash mid-accept looks like to the temcor router.
func withHTTPFaults(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		delay, blackhole := faultinject.HTTPFault(faultinject.HTTPScope)
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return
			}
		}
		if blackhole {
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			// No hijack support (HTTP/2): abort the response stream instead.
			panic(http.ErrAbortHandler)
		}
		h.ServeHTTP(w, r)
	})
}

// statusFor maps the guard failure taxonomy onto HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, guard.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, guard.ErrCanceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, guard.ErrDegraded):
		return http.StatusServiceUnavailable
	case errors.Is(err, guard.ErrInvalidModel):
		return http.StatusBadRequest
	case errors.Is(err, guard.ErrBudgetExceeded):
		return http.StatusInsufficientStorage
	default:
		return http.StatusInternalServerError
	}
}

// buildInput materializes the request's input tensor: explicit data (its
// length fixing the batch) or a seeded random fill of `batch` samples.
func buildInput(req inferRequest, shape []int) (*tensor.Tensor, error) {
	elems := 1
	for _, d := range shape {
		elems *= d
	}
	if len(req.Data) > 0 {
		if req.Batch != 0 && req.Batch*elems != len(req.Data) {
			return nil, fmt.Errorf("data length %d does not match batch %d x %v", len(req.Data), req.Batch, shape)
		}
		if len(req.Data)%elems != 0 {
			return nil, fmt.Errorf("data length %d is not a multiple of the sample size %d (%v)", len(req.Data), elems, shape)
		}
		x := tensor.New(append([]int{len(req.Data) / elems}, shape...)...)
		copy(x.Data, req.Data)
		return x, nil
	}
	batch := req.Batch
	if batch == 0 {
		batch = 1
	}
	if batch < 1 || batch > 64 {
		return nil, fmt.Errorf("batch %d out of range [1, 64]", batch)
	}
	x := tensor.New(append([]int{batch}, shape...)...)
	x.FillNormal(tensor.NewRNG(req.Seed+1), 0, 1)
	return x, nil
}

// argmaxPerSample computes the argmax over each leading-dimension sample
// of a [batch, ...] output — the predicted class for classifier heads.
func argmaxPerSample(t *tensor.Tensor) []int {
	batch := t.Dim(0)
	if batch <= 0 || t.Len() == 0 {
		return nil
	}
	per := t.Len() / batch
	out := make([]int, batch)
	for b := 0; b < batch; b++ {
		best, bestV := 0, math.Inf(-1)
		for i := 0; i < per; i++ {
			if v := float64(t.Data[b*per+i]); v > bestV {
				best, bestV = i, v
			}
		}
		out[b] = best
	}
	return out
}

// writeTraceFile dumps the tracer's spans as Chrome trace_event JSON.
func writeTraceFile(tr *obs.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]any{"error": msg, "status": status})
}
