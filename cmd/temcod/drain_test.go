package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"temco/internal/cluster"
)

// decodeBody decodes a JSON response body, failing the test on garbage.
func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	if err := decodeInto(resp, v); err != nil {
		t.Fatalf("non-JSON response (status %d): %v", resp.StatusCode, err)
	}
}

func decodeInto(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// TestDrainzEndpoint drives the full drain protocol against one real
// session and leak-checks the teardown: POST /drainz flips the session
// into draining, /readyz becomes a 503 drain progress report, admission
// sheds retryably, and closing the drained session releases every
// background goroutine (the shutdown-ordering guarantee).
func TestDrainzEndpoint(t *testing.T) {
	// Warm the memoized graphs before counting goroutines so the build
	// does not pollute the leak baseline.
	if _, _, err := testSession(testOptions()); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	o := testOptions()
	sess, shape, err := testSession(o)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newHandler(sess, shape, -1, false))

	// Non-POST is refused without touching the session.
	resp, err := http.Get(ts.URL + "/drainz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /drainz: status %d", resp.StatusCode)
	}
	if sess.Ready() != true {
		t.Fatal("GET /drainz must not drain the session")
	}

	// POST flips draining and reports the work still in the pipeline.
	dresp, err := http.Post(ts.URL+"/drainz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var dout map[string]any
	decodeBody(t, dresp, &dout)
	if dresp.StatusCode != http.StatusOK || dout["draining"] != true {
		t.Fatalf("POST /drainz: status %d body %v", dresp.StatusCode, dout)
	}
	for _, k := range []string{"queue_depth", "in_flight", "batch_pending"} {
		if _, ok := dout[k]; !ok {
			t.Errorf("/drainz body missing progress field %q: %v", k, dout)
		}
	}

	// /readyz is now the drain progress report: 503, reason "draining",
	// with the same countdown fields the prober decodes.
	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var h cluster.Health
	decodeBody(t, rresp, &h)
	if rresp.StatusCode != http.StatusServiceUnavailable || h.Ready || h.Reason != "draining" {
		t.Fatalf("draining /readyz: status %d body %+v", rresp.StatusCode, h)
	}

	// Admission sheds retryably — the router's cue to place elsewhere.
	iresp, iout := postInfer(t, ts.URL, inferRequest{Batch: 1})
	if iresp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("draining infer: status %d body %v", iresp.StatusCode, iout)
	}
	if iresp.Header.Get("Retry-After") == "" {
		t.Fatal("draining shed must carry Retry-After")
	}

	// Drain is idempotent.
	dresp2, err := http.Post(ts.URL+"/drainz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, dresp2, &dout)
	if dresp2.StatusCode != http.StatusOK || dout["draining"] != true {
		t.Fatalf("second POST /drainz: status %d body %v", dresp2.StatusCode, dout)
	}

	// Teardown in shutdown order — server first, then the session — and
	// verify nothing leaks.
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := sess.Close(ctx); err != nil {
		t.Fatalf("closing drained session: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak after drained-session close: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestReadyzAutoscaleFields: /readyz carries the autoscaler's inputs —
// worker count, cumulative run seconds, and the p95 queue wait — once the
// session has served work.
func TestReadyzAutoscaleFields(t *testing.T) {
	ts, _ := newTestServer(t, testOptions())
	if resp, out := postInfer(t, ts.URL, inferRequest{Batch: 2}); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup infer: status %d body %v", resp.StatusCode, out)
	}

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var h cluster.Health
	decodeBody(t, resp, &h)
	if h.Workers != testOptions().workers {
		t.Fatalf("readyz workers: want %d, got %+v", testOptions().workers, h)
	}
	if h.RunSecondsTotal <= 0 {
		t.Fatalf("readyz run_seconds_total must grow after an infer: %+v", h)
	}
	if h.QueueWaitP95MS < 0 {
		t.Fatalf("readyz queue_wait_p95_ms negative: %+v", h)
	}
}

// TestMembershipChurnSoak is the in-process membership churn soak: 8
// clients at full load against a probed fleet while replicas join (with
// probation), drain (real /drainz protocol), die abruptly, and rejoin.
// Every response must be well-formed, a graceful drain must lose zero
// requests (no partial aborts before the crash phase, drained session
// idle when Drain returns), and nothing may leak. CI runs the race-built
// variant on every push and a longer TEMCO_SOAK variant on the soak job.
func TestMembershipChurnSoak(t *testing.T) {
	before := runtime.NumGoroutine()
	o := testOptions()
	o.queueSize = 4

	sess0, shape, err := testSession(o) // warm the memoized graphs first
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	sess0.Close(wctx)
	wcancel()

	// Three real replicas: two seeded, one held back to join mid-run.
	reps := []*soakReplica{newSoakReplica(t, o), newSoakReplica(t, o), newSoakReplica(t, o)}
	table, err := cluster.NewTable([]string{reps[0].url(), reps[1].url()}, cluster.Config{
		ProbeInterval:   25 * time.Millisecond,
		FailThreshold:   2,
		MaxProbeBackoff: 200 * time.Millisecond,
		ProbationProbes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	router := cluster.NewRouter(table, cluster.RouterConfig{})
	table.Start()
	front := httptest.NewServer(http.HandlerFunc(router.ServeInfer))

	healthyCount := func() int {
		n := 0
		for _, r := range table.Replicas() {
			if r.State() == cluster.StateHealthy {
				n++
			}
		}
		return n
	}
	deadline := time.Now().Add(10 * time.Second)
	for healthyCount() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("seed fleet never became healthy")
		}
		time.Sleep(5 * time.Millisecond)
	}

	dur := 2 * time.Second
	if s := os.Getenv("TEMCO_SOAK"); s != "" {
		if d, err := time.ParseDuration(s); err == nil && d > 0 {
			dur = d
		}
	}

	// The orchestrator walks the membership timeline off the client path;
	// it reports via channel because t.Fatal is test-goroutine-only.
	type gracefulReport struct {
		partialAborts uint64 // router partial aborts after the graceful phase
		drainedDepth  int    // drained session's queue depth when Drain returned
		drainedFlight int64
	}
	orchErr := make(chan error, 1)
	report := make(chan gracefulReport, 1)
	go func() {
		orchErr <- func() error {
			// Phase A1 — join: the third replica enters on probation and
			// must pass consecutive probes before taking traffic.
			time.Sleep(dur / 8)
			added, err := table.Add(reps[2].url())
			if err != nil {
				return fmt.Errorf("live add: %v", err)
			}
			joinBy := time.Now().Add(dur/4 + 10*time.Second)
			for added.State() != cluster.StateHealthy {
				if time.Now().After(joinBy) {
					return fmt.Errorf("added replica never passed probation: %v", added.State())
				}
				time.Sleep(5 * time.Millisecond)
			}

			// Phase A2 — graceful drain of a seed replica under load: new
			// placements stop, the replica's own queue runs dry, and Drain
			// returns only once the router sees zero in-flight there.
			time.Sleep(dur / 4)
			dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer dcancel()
			if err := table.Drain(dctx, reps[1].url()); err != nil {
				return fmt.Errorf("graceful drain: %v", err)
			}
			st := reps[1].sess.Stats()
			report <- gracefulReport{
				partialAborts: router.Stats().PartialAborts,
				drainedDepth:  st.QueueDepth,
				drainedFlight: st.InFlight,
			}

			// Phase B — crash churn: abrupt kill and same-address restart.
			time.Sleep(dur / 8)
			reps[0].kill()
			time.Sleep(dur / 8)
			return reps[0].restart(shape)
		}()
	}()

	allowed := map[int]bool{
		http.StatusOK:                  true,
		http.StatusTooManyRequests:     true,
		http.StatusServiceUnavailable:  true,
		http.StatusInternalServerError: true,
		http.StatusInsufficientStorage: true,
		http.StatusGatewayTimeout:      true,
		http.StatusBadGateway:          true,
	}
	end := time.Now().Add(dur)
	var ok, malformed atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := 0; time.Now().Before(end); i++ {
				body := fmt.Sprintf(`{"batch":1,"seed":%d}`, c*100000+i)
				resp, err := client.Post(front.URL+"/infer", "application/json", strings.NewReader(body))
				if err != nil {
					malformed.Add(1)
					continue
				}
				var out map[string]any
				derr := decodeInto(resp, &out)
				if derr != nil || !allowed[resp.StatusCode] {
					t.Logf("malformed: status %d err %v body %v", resp.StatusCode, derr, out)
					malformed.Add(1)
					continue
				}
				if resp.StatusCode == http.StatusOK {
					ok.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	if err := <-orchErr; err != nil {
		t.Fatal(err)
	}
	grace := <-report

	st := router.Stats()
	mem := table.Membership()
	t.Logf("churn soak: ok=%d router=%+v membership=%+v", ok.Load(), st, mem)
	if n := malformed.Load(); n != 0 {
		t.Fatalf("%d malformed responses under membership churn", n)
	}
	if ok.Load() == 0 {
		t.Fatal("soak served nothing")
	}

	// Zero requests lost to the graceful phase: no partial aborts before
	// the crash churn began, and the drained session was idle the moment
	// Drain returned.
	if grace.partialAborts != 0 {
		t.Fatalf("graceful join+drain aborted %d in-flight requests", grace.partialAborts)
	}
	if grace.drainedDepth != 0 || grace.drainedFlight != 0 {
		t.Fatalf("drained session not idle when Drain returned: depth=%d in-flight=%d",
			grace.drainedDepth, grace.drainedFlight)
	}
	if mem.Adds != 1 || mem.Drains != 1 || mem.Removes != 1 {
		t.Fatalf("membership counters after churn: %+v", mem)
	}

	// The fleet converges: the drained replica is gone, the joined and
	// restarted replicas are healthy.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if len(table.Replicas()) == 2 && healthyCount() == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never converged after churn: %+v", table.Status())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Teardown and leak check — including the drained-but-running session.
	front.Close()
	table.Close()
	for _, r := range reps {
		r.kill()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		if err := r.sess.Close(ctx); err != nil {
			t.Errorf("closing replica session: %v", err)
		}
		cancel()
	}
	leakBy := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(leakBy) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
