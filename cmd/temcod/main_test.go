package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"temco/internal/cluster"
	"temco/internal/decompose"
	"temco/internal/faultinject"
	"temco/internal/ir"
	"temco/internal/serve"
)

// testOptions is a small cheap model so handler tests stay fast.
func testOptions() options {
	return options{
		model: "alexnet", res: 32, classes: 10, ratio: 0.25,
		method: "tucker", seed: 1, queueSize: 8, workers: 2,
		deadline: 10 * time.Second, retries: 1, breaker: 3,
		probe: 50 * time.Millisecond, drain: 10 * time.Second,
	}
}

// testGraphs memoizes the compiled graph pair: the model build + Tucker
// decomposition dominates test time (especially under -race), and graphs
// are read-only at execution time, so every test can share one pair.
var testGraphs = struct {
	once    sync.Once
	opt, fb *ir.Graph
	err     error
}{}

func testSession(o options) (*serve.Session, []int, error) {
	testGraphs.once.Do(func() {
		testGraphs.opt, testGraphs.fb, testGraphs.err = buildGraphs(o, decompose.Tucker)
	})
	if testGraphs.err != nil {
		return nil, nil, testGraphs.err
	}
	sess, err := serve.New(testGraphs.opt, testGraphs.fb, serve.Config{
		QueueSize:        o.queueSize,
		Workers:          o.workers,
		DefaultTimeout:   o.deadline,
		MaxRetries:       o.retries,
		BreakerThreshold: o.breaker,
		ProbeInterval:    o.probe,
		MaxBatchSize:     o.batchMax,
		MaxBatchLatency:  o.batchWindow,
	})
	if err != nil {
		return nil, nil, err
	}
	return sess, testGraphs.opt.Inputs[0].Shape, nil
}

func newTestServer(t *testing.T, o options) (*httptest.Server, *serve.Session) {
	t.Helper()
	sess, shape, err := testSession(o)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newHandler(sess, shape, measureSteadyAllocs(sess), false))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		sess.Close(ctx)
	})
	return ts, sess
}

func postInfer(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/infer", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("non-JSON response (status %d): %v", resp.StatusCode, err)
	}
	return resp, out
}

func TestHTTPInferAndProbes(t *testing.T) {
	ts, _ := newTestServer(t, testOptions())

	for _, ep := range []string{"/healthz", "/readyz", "/statsz"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", ep, resp.StatusCode)
		}
	}

	resp, out := postInfer(t, ts.URL, inferRequest{Batch: 2, Seed: 7})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer: status %d body %v", resp.StatusCode, out)
	}
	if am, ok := out["argmax"].([]any); !ok || len(am) != 2 {
		t.Fatalf("want 2 argmax entries, got %v", out["argmax"])
	}
	if out["degraded"] != false {
		t.Fatalf("healthy server must not be degraded: %v", out)
	}

	// Determinism across the HTTP boundary: same seed, same prediction.
	_, again := postInfer(t, ts.URL, inferRequest{Batch: 2, Seed: 7})
	if fmt.Sprint(again["argmax"]) != fmt.Sprint(out["argmax"]) {
		t.Fatalf("same seed must predict the same classes: %v vs %v", again["argmax"], out["argmax"])
	}
}

func TestHTTPBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, testOptions())
	cases := []struct {
		name string
		body any
		want int
	}{
		{"bad priority", inferRequest{Batch: 1, Priority: "urgent"}, http.StatusBadRequest},
		{"negative deadline", inferRequest{Batch: 1, DeadlineMS: -5}, http.StatusBadRequest},
		{"batch too large", inferRequest{Batch: 1000}, http.StatusBadRequest},
		{"ragged data", inferRequest{Data: []float32{1, 2, 3}}, http.StatusBadRequest},
		{"data/batch mismatch", inferRequest{Data: make([]float32, 3*32*32), Batch: 2}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, out := postInfer(t, ts.URL, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d (want %d), body %v", c.name, resp.StatusCode, c.want, out)
		}
		if _, ok := out["error"]; !ok {
			t.Errorf("%s: error body must carry an error message: %v", c.name, out)
		}
	}
	// GET on /infer is rejected.
	resp, err := http.Get(ts.URL + "/infer")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /infer: status %d", resp.StatusCode)
	}
}

func TestHTTPDeadlineMapsToGatewayTimeout(t *testing.T) {
	ts, _ := newTestServer(t, testOptions())
	faultinject.Enable(faultinject.Config{Seed: 9, Scope: "optimized", SlowRate: 1, SlowDelay: 300 * time.Millisecond})
	defer faultinject.Disable()
	resp, out := postInfer(t, ts.URL, inferRequest{Batch: 1, DeadlineMS: 30})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: status %d body %v", resp.StatusCode, out)
	}
}

func TestParseFaults(t *testing.T) {
	cfg, err := parseFaults("seed=7,scope=optimized,panic=0.1,budget=0.05,slow=0.02:3ms,alloc=0.01")
	if err != nil {
		t.Fatal(err)
	}
	want := faultinject.Config{Seed: 7, Scope: "optimized", KernelPanicRate: 0.1,
		BudgetRate: 0.05, SlowRate: 0.02, SlowDelay: 3 * time.Millisecond, AllocRate: 0.01}
	if cfg != want {
		t.Fatalf("got %+v want %+v", cfg, want)
	}
	if cfg, err := parseFaults("slow=0.5"); err != nil || cfg.SlowDelay != 5*time.Millisecond {
		t.Fatalf("bare slow rate must default the delay: %+v, %v", cfg, err)
	}
	for _, bad := range []string{"panic=2", "panic=x", "seed=-1", "nope=1", "panic", "slow=0.1:-3ms"} {
		if _, err := parseFaults(bad); err == nil {
			t.Errorf("spec %q must be rejected", bad)
		}
	}
}

// TestHTTPSoak hammers the HTTP API with concurrent clients and injected
// faults, asserting no malformed responses (every status is one of the
// documented mappings with a JSON body) and no goroutine leaks after the
// session drains. CI runs this with TEMCO_SOAK=30s.
func TestHTTPSoak(t *testing.T) {
	before := runtime.NumGoroutine()
	o := testOptions()
	o.queueSize = 2
	sess, shape, err := testSession(o)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newHandler(sess, shape, measureSteadyAllocs(sess), false))

	faultinject.Enable(faultinject.Config{
		Seed: 42, Scope: "optimized",
		KernelPanicRate: 0.08, BudgetRate: 0.05,
	})
	defer faultinject.Disable()

	dur := 1500 * time.Millisecond
	if s := os.Getenv("TEMCO_SOAK"); s != "" {
		if d, err := time.ParseDuration(s); err == nil && d > 0 {
			dur = d
		}
	}
	deadline := time.Now().Add(dur)
	var ok, shed, degraded, failed, malformed atomic.Uint64
	allowed := map[int]bool{
		http.StatusOK:                  true,
		http.StatusTooManyRequests:     true,
		http.StatusServiceUnavailable:  true,
		http.StatusInternalServerError: true,
		http.StatusInsufficientStorage: true,
		http.StatusGatewayTimeout:      true,
	}
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			prio := [...]string{"low", "normal", "high"}
			for i := 0; time.Now().Before(deadline); i++ {
				body, _ := json.Marshal(inferRequest{Batch: 1, Seed: uint64(c*1000 + i), Priority: prio[i%3]})
				resp, err := client.Post(ts.URL+"/infer", "application/json", bytes.NewReader(body))
				if err != nil {
					malformed.Add(1)
					continue
				}
				var out map[string]any
				derr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if derr != nil || !allowed[resp.StatusCode] {
					malformed.Add(1)
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
					if out["degraded"] == true {
						degraded.Add(1)
					}
				case http.StatusTooManyRequests:
					shed.Add(1)
				default:
					failed.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()

	st := sess.Stats()
	cnt := faultinject.CountersSnapshot()
	t.Logf("http soak: ok=%d degraded=%d shed=%d failed=%d stats=%+v injected=%+v",
		ok.Load(), degraded.Load(), shed.Load(), failed.Load(), st, cnt)
	if n := malformed.Load(); n != 0 {
		t.Fatalf("%d malformed HTTP responses", n)
	}
	if ok.Load() == 0 {
		t.Fatal("soak served nothing")
	}
	if cnt.KernelPanics == 0 && cnt.BudgetFailures == 0 {
		t.Fatalf("injection never fired: %+v", cnt)
	}

	// Drain; readiness must flip to 503 and goroutines must settle.
	faultinject.Disable()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := sess.Close(ctx); err != nil {
		t.Fatalf("drain close: %v", err)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz: status %d", resp.StatusCode)
	}
	ts.Close()
	leakBy := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(leakBy) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestStatszEngineSections checks that /statsz carries the compiled-engine
// and gemm-pool sections alongside the serving counters.
func TestStatszEngineSections(t *testing.T) {
	ts, _ := newTestServer(t, testOptions())
	if _, out := postInfer(t, ts.URL, inferRequest{Batch: 1, Seed: 3}); out["error"] != nil {
		t.Fatalf("infer failed: %v", out["error"])
	}
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Serve.EngineOptimized || !st.Serve.EngineFallback {
		t.Fatalf("engine should serve both graphs by default: %+v", st.Serve)
	}
	if st.Serve.EngineRuns == 0 {
		t.Fatalf("engine runs = 0 after a served request")
	}
	if !st.Engine.Enabled || st.Engine.Optimized == nil || st.Engine.Optimized.ArenaBytes <= 0 {
		t.Fatalf("engine section missing or empty: %+v", st.Engine)
	}
	if st.Engine.Optimized.PrePackedBytes <= 0 {
		t.Fatalf("optimized engine reports no pre-packed weights: %+v", st.Engine.Optimized)
	}
	if st.GemmPool.Hits+st.GemmPool.Misses == 0 {
		t.Fatalf("gemm pool counters untouched after inference: %+v", st.GemmPool)
	}
}

// TestReadyzHealthBody: the ready path serializes cluster.Health — queue
// depth, breaker state, and the degraded flag the temcor prober consumes.
func TestReadyzHealthBody(t *testing.T) {
	ts, _ := newTestServer(t, testOptions())
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h cluster.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.Ready || h.Degraded || h.BreakerState != "closed" {
		t.Fatalf("healthy readyz body: %+v", h)
	}
	if h.QueueCap == 0 {
		t.Fatalf("readyz must report the queue capacity: %+v", h)
	}
}

// TestRetryAfterOnShed: backpressure responses carry Retry-After so the
// router (and well-behaved clients) know a later retry can help.
func TestRetryAfterOnShed(t *testing.T) {
	o := testOptions()
	sess, shape, err := testSession(o)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newHandler(sess, shape, -1, false))
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// A drained session sheds every new request with guard.ErrOverloaded.
	resp, out := postInfer(t, ts.URL, inferRequest{Batch: 1})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("drained infer: status %d body %v", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response must carry Retry-After")
	}
}

// TestQuitzHook: POST /quitz answers, flushes, and then kills the process;
// the route does not exist unless armed.
func TestQuitzHook(t *testing.T) {
	o := testOptions()
	sess, shape, err := testSession(o)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		sess.Close(ctx)
	}()

	exited := make(chan int, 1)
	old := exitProcess
	exitProcess = func(code int) { exited <- code }
	defer func() { exitProcess = old }()

	armed := httptest.NewServer(newHandler(sess, shape, -1, true))
	defer armed.Close()
	resp, err := http.Get(armed.URL + "/quitz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /quitz: status %d", resp.StatusCode)
	}
	resp, err = http.Post(armed.URL+"/quitz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out["quitting"] != true {
		t.Fatalf("POST /quitz: %d %v", resp.StatusCode, out)
	}
	select {
	case code := <-exited:
		if code != 1 {
			t.Fatalf("quitz exit code %d, want 1", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("quitz never exited the process")
	}

	unarmed := httptest.NewServer(newHandler(sess, shape, -1, false))
	defer unarmed.Close()
	resp, err = http.Post(unarmed.URL+"/quitz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unarmed /quitz: status %d, want 404", resp.StatusCode)
	}
}

// TestHTTPFaultLayer: blackholes close the connection with no response
// bytes; injected delays stall but still answer.
func TestHTTPFaultLayer(t *testing.T) {
	ts, _ := newTestServer(t, testOptions())

	faultinject.Enable(faultinject.Config{Seed: 3, Scope: faultinject.HTTPScope, HTTPBlackholeRate: 1})
	if _, err := http.Get(ts.URL + "/healthz"); err == nil {
		t.Fatal("blackholed request must fail at the connection level")
	}
	faultinject.Disable()

	faultinject.Enable(faultinject.Config{Seed: 3, Scope: faultinject.HTTPScope,
		HTTPDelayRate: 1, HTTPDelay: 80 * time.Millisecond})
	defer faultinject.Disable()
	start := time.Now()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if el := time.Since(start); el < 80*time.Millisecond {
		t.Fatalf("injected delay not applied: %v", el)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delayed request: status %d", resp.StatusCode)
	}
}

func TestParseFaultsHTTPKeys(t *testing.T) {
	cfg, err := parseFaults("seed=7,scope=http,blackhole=0.2,httpdelay=0.1:20ms")
	if err != nil {
		t.Fatal(err)
	}
	want := faultinject.Config{Seed: 7, Scope: "http",
		HTTPBlackholeRate: 0.2, HTTPDelayRate: 0.1, HTTPDelay: 20 * time.Millisecond}
	if cfg != want {
		t.Fatalf("got %+v want %+v", cfg, want)
	}
	if cfg, err := parseFaults("httpdelay=0.5"); err != nil || cfg.HTTPDelay != 5*time.Millisecond {
		t.Fatalf("bare httpdelay rate must default the delay: %+v, %v", cfg, err)
	}
	for _, bad := range []string{"blackhole=2", "httpdelay=0.1:-1ms", "httpdelay=x"} {
		if _, err := parseFaults(bad); err == nil {
			t.Errorf("spec %q must be rejected", bad)
		}
	}
}

// TestHTTPBatchedInfer: with -batch-max armed, concurrent /infer requests
// coalesce into batched engine runs, every response stays well-formed, and
// each request's argmax is identical to what a batching-off server returns
// for the same seed.
func TestHTTPBatchedInfer(t *testing.T) {
	solo := testOptions()
	soloTS, _ := newTestServer(t, solo)
	batched := testOptions()
	batched.batchMax, batched.batchWindow = 4, 50*time.Millisecond
	batchTS, batchSess := newTestServer(t, batched)

	const n = 8
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		resp, out := postInfer(t, soloTS.URL, inferRequest{Batch: 1, Seed: uint64(i)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solo request %d: status %d body %v", i, resp.StatusCode, out)
		}
		want[i] = out["argmax"].([]any)[0].(float64)
	}

	got := make([]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, out := postInfer(t, batchTS.URL, inferRequest{Batch: 1, Seed: uint64(i)})
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d body %v", resp.StatusCode, out)
				return
			}
			got[i] = out["argmax"].([]any)[0].(float64)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("batched request %d: %v", i, errs[i])
		}
		if got[i] != want[i] {
			t.Fatalf("request %d: batched argmax %v != solo %v", i, got[i], want[i])
		}
	}
	st := batchSess.Stats()
	if !st.Batching {
		t.Fatalf("session must report batching on: %+v", st)
	}
	if st.BatchedRuns == 0 || st.BatchedRequests == 0 {
		t.Fatalf("no coalesced runs under concurrent load: %+v", st)
	}
}

// TestStatszBatchingSection: /statsz carries the batching knobs and the
// compiled bucket ladder, off and on.
func TestStatszBatchingSection(t *testing.T) {
	readStats := func(url string) statsResponse {
		t.Helper()
		resp, err := http.Get(url + "/statsz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st statsResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	offTS, _ := newTestServer(t, testOptions())
	st := readStats(offTS.URL)
	if st.Batching.Enabled || st.Serve.Batching {
		t.Fatalf("batching must default off: %+v", st.Batching)
	}
	if len(st.Batching.Buckets) != 1 || st.Batching.Buckets[0] != 1 {
		t.Fatalf("batching-off ladder should be [1]: %v", st.Batching.Buckets)
	}

	o := testOptions()
	o.batchMax, o.batchWindow = 8, 3*time.Millisecond
	onTS, _ := newTestServer(t, o)
	st = readStats(onTS.URL)
	if !st.Batching.Enabled || !st.Serve.Batching {
		t.Fatalf("batching section must report enabled: %+v", st.Batching)
	}
	if st.Batching.MaxBatch != 8 || st.Batching.WindowMS != 3 {
		t.Fatalf("knobs not surfaced: %+v", st.Batching)
	}
	wantBuckets := []int{1, 4, 8}
	if len(st.Batching.Buckets) != len(wantBuckets) {
		t.Fatalf("runtime ladder %v, want %v", st.Batching.Buckets, wantBuckets)
	}
	for i, b := range wantBuckets {
		if st.Batching.Buckets[i] != b {
			t.Fatalf("runtime ladder %v, want %v", st.Batching.Buckets, wantBuckets)
		}
	}
}
