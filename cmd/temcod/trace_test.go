package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"temco/internal/obs"
)

// TestRequestIDEchoedOnEveryStatus: every response out of the daemon —
// success, client error, method error, unknown path, and the draining
// shed — carries X-Temco-Request-Id, so any status code can be chased
// into logs and the flight recorder.
func TestRequestIDEchoedOnEveryStatus(t *testing.T) {
	ts, _ := newTestServer(t, testOptions())

	do := func(method, path, body string) *http.Response {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
	}{
		{"infer ok", "POST", "/infer", `{"batch":1,"seed":3}`, 200},
		{"bad body", "POST", "/infer", `{"batch":`, 400},
		{"bad method", "GET", "/infer", "", 405},
		{"unknown path", "GET", "/nosuch", "", 404},
	}
	for _, c := range cases {
		resp := do(c.method, c.path, c.body)
		if resp.StatusCode != c.wantStatus {
			t.Fatalf("%s: status %d, want %d", c.name, resp.StatusCode, c.wantStatus)
		}
		if rid := resp.Header.Get(obs.RequestIDHeader); !strings.HasPrefix(rid, "req-") {
			t.Errorf("%s (%d): %s = %q", c.name, resp.StatusCode, obs.RequestIDHeader, rid)
		}
	}

	// Drain the session: the retryable shed must still carry the id.
	if resp := do("POST", "/drainz", ""); resp.StatusCode != 200 {
		t.Fatalf("drainz: status %d", resp.StatusCode)
	}
	resp := do("POST", "/infer", `{"batch":1}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("draining infer: status %d, want 429", resp.StatusCode)
	}
	if rid := resp.Header.Get(obs.RequestIDHeader); !strings.HasPrefix(rid, "req-") {
		t.Errorf("draining shed lost the request id: %q", rid)
	}
}

// TestInferTraceEndToEnd: one /infer with an inherited traceparent lands
// in the flight recorder as a single timeline whose spans cover the
// serving tier and the per-step engine work, retrievable over
// /debugz/requests in both JSON and Chrome trace form.
func TestInferTraceEndToEnd(t *testing.T) {
	obs.EnableFlightRecorder(obs.FlightConfig{SampleRate: 1})
	defer obs.DisableFlightRecorder()
	ts, _ := newTestServer(t, testOptions())

	parent := obs.NewTraceContext()
	req, err := http.NewRequest("POST", ts.URL+"/infer", bytes.NewReader([]byte(`{"batch":1,"seed":5}`)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, parent.Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("infer: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Temco-Trace-Id"); got != parent.TraceID {
		t.Fatalf("trace id not inherited across the hop: %q vs %q", got, parent.TraceID)
	}
	rid := resp.Header.Get(obs.RequestIDHeader)

	tl, found := obs.Flight().Get(parent.TraceID)
	if !found {
		t.Fatalf("no retained timeline for trace %s", parent.TraceID)
	}
	if tl.RequestID != rid || tl.Status != "ok" {
		t.Fatalf("timeline identity wrong: %+v", tl)
	}
	stages := map[string]bool{}
	for _, sp := range tl.Spans {
		stages[sp.Stage] = true
	}
	for _, want := range []string{"serve.admit", "serve.queue", "serve.run", "engine.step"} {
		if !stages[want] {
			t.Errorf("timeline missing %s span (have %v)", want, stages)
		}
	}

	// The same timeline over the HTTP surface.
	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, b
	}

	lresp, lbody := get(obs.FlightPath)
	if lresp.StatusCode != 200 || !strings.Contains(string(lbody), rid) {
		t.Fatalf("%s (status %d) does not list %s", obs.FlightPath, lresp.StatusCode, rid)
	}
	dresp, dbody := get(obs.FlightPath + "/" + rid)
	if dresp.StatusCode != 200 {
		t.Fatalf("detail: status %d", dresp.StatusCode)
	}
	var full obs.ReqTimeline
	if err := json.Unmarshal(dbody, &full); err != nil {
		t.Fatalf("detail is not a timeline: %v", err)
	}
	if full.TraceID != parent.TraceID || len(full.Spans) == 0 {
		t.Fatalf("detail content wrong: %+v", full)
	}
	cresp, cbody := get(obs.FlightPath + "/" + rid + "?format=chrome")
	if cresp.StatusCode != 200 || !json.Valid(cbody) {
		t.Fatalf("chrome export: status %d valid=%v", cresp.StatusCode, json.Valid(cbody))
	}
	for _, want := range []string{`"serving"`, `"kernels"`} {
		if !strings.Contains(string(cbody), want) {
			t.Errorf("chrome export missing the %s lane", want)
		}
	}
}

// TestStatszBuildAndFlightSections: /statsz surfaces the build info
// gauge's source data, process uptime, and — while recording is armed —
// the flight recorder's ledger.
func TestStatszBuildAndFlightSections(t *testing.T) {
	obs.EnableFlightRecorder(obs.FlightConfig{})
	defer obs.DisableFlightRecorder()
	ts, _ := newTestServer(t, testOptions())

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Build         obs.BuildInfo    `json:"build"`
		Flight        *obs.FlightStats `json:"flight"`
		UptimeSeconds float64          `json:"uptime_seconds"`
	}
	decodeBody(t, resp, &out)
	if out.Build.Version == "" || out.Build.GoVersion == "" {
		t.Fatalf("build info incomplete: %+v", out.Build)
	}
	if out.Build.Workers <= 0 {
		t.Fatalf("build.workers = %d", out.Build.Workers)
	}
	if out.UptimeSeconds <= 0 {
		t.Fatalf("uptime_seconds = %v", out.UptimeSeconds)
	}
	if out.Flight == nil {
		t.Fatal("armed recorder missing from /statsz")
	}
}

// TestMetricsExemplarsPassLint: after a traced request the /metrics
// exposition carries trace_id exemplars on histogram buckets and still
// passes the OpenMetrics-shape lint the CI smoke runs.
func TestMetricsExemplarsPassLint(t *testing.T) {
	// Mirror run()'s registrations (idempotent) so the test exposition
	// carries the same build/flight/process families the daemon serves.
	obs.RegisterProcessMetrics(obs.Default())
	obs.RegisterBuildInfo(obs.Default(), buildInfo(1))
	obs.RegisterFlightMetrics(obs.Default())
	obs.EnableFlightRecorder(obs.FlightConfig{SampleRate: 1})
	defer obs.DisableFlightRecorder()
	ts, _ := newTestServer(t, testOptions())

	// A traced infer stamps the latency histograms' exemplars.
	if resp, _ := postInfer(t, ts.URL, inferRequest{Batch: 1, Seed: 11}); resp.StatusCode != 200 {
		t.Fatalf("infer: status %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte(` # {trace_id="`)) {
		t.Fatal("exposition has no trace_id exemplar after a traced request")
	}
	if err := obs.CheckExposition(body); err != nil {
		t.Fatalf("exemplar-bearing exposition fails lint: %v", err)
	}
	for _, name := range []string{"temco_build_info{", "temco_flight_seen_total", "temco_process_uptime_seconds"} {
		if !bytes.Contains(body, []byte(name)) {
			t.Errorf("/metrics missing %s", name)
		}
	}
}
