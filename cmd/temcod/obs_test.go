package main

// Telemetry surface of the daemon: /metrics must emit well-formed
// Prometheus text that agrees with the /statsz JSON (both render the same
// obs.Registry instruments), pprof must be mounted, and concurrent scrapes
// against live inference traffic must be race-clean (CI runs this file
// under -race).

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"temco/internal/obs"
)

func getBody(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(b)
}

// metricValue extracts the value of an unlabeled sample from an exposition.
func metricValue(t *testing.T, expo, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(expo, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
		if err != nil {
			t.Fatalf("metric %s: bad value in %q: %v", name, line, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in exposition", name)
	return 0
}

func TestHTTPMetricsExposition(t *testing.T) {
	ts, _ := newTestServer(t, testOptions())
	const runs = 3
	for i := 0; i < runs; i++ {
		if _, out := postInfer(t, ts.URL, inferRequest{Batch: 1, Seed: uint64(i)}); out["error"] != nil {
			t.Fatalf("infer failed: %v", out["error"])
		}
	}
	status, ctype, expo := getBody(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics: status %d", status)
	}
	if !strings.HasPrefix(ctype, "text/plain") || !strings.Contains(ctype, "version=0.0.4") {
		t.Fatalf("/metrics content type %q, want Prometheus text 0.0.4", ctype)
	}
	if err := obs.CheckExposition([]byte(expo)); err != nil {
		t.Fatalf("malformed exposition: %v\n%s", err, expo)
	}
	if v := metricValue(t, expo, "temco_serve_accepted_total"); v != runs {
		t.Errorf("accepted_total = %v, want %d", v, runs)
	}
	if v := metricValue(t, expo, "temco_serve_completed_total"); v != runs {
		t.Errorf("completed_total = %v, want %d", v, runs)
	}
	if v := metricValue(t, expo, "temco_serve_queue_wait_seconds_count"); v != runs {
		t.Errorf("queue_wait count = %v, want %d", v, runs)
	}
	for _, name := range []string{
		"temco_serve_queue_depth", "temco_serve_queue_capacity",
		"temco_serve_breaker_state", "temco_serve_engine_runs_total",
		"temco_serve_run_seconds_sum",
	} {
		if !strings.Contains(expo, name) {
			t.Errorf("exposition missing %s", name)
		}
	}
}

// TestStatszAgreesWithMetrics is the regression test for the /statsz
// rebuild: both endpoints render the same registry instruments, so a quiet
// session must report identical counters through either view.
func TestStatszAgreesWithMetrics(t *testing.T) {
	ts, _ := newTestServer(t, testOptions())
	const runs = 2
	for i := 0; i < runs; i++ {
		if _, out := postInfer(t, ts.URL, inferRequest{Batch: 1, Seed: uint64(i)}); out["error"] != nil {
			t.Fatalf("infer failed: %v", out["error"])
		}
	}
	var st statsResponse
	status, _, body := getBody(t, ts.URL+"/statsz")
	if status != http.StatusOK {
		t.Fatalf("/statsz: status %d", status)
	}
	if err := json.NewDecoder(bytes.NewReader([]byte(body))).Decode(&st); err != nil {
		t.Fatal(err)
	}
	_, _, expo := getBody(t, ts.URL+"/metrics")
	if got := metricValue(t, expo, "temco_serve_accepted_total"); got != float64(st.Serve.Accepted) {
		t.Errorf("accepted: metrics %v vs statsz %d", got, st.Serve.Accepted)
	}
	if got := metricValue(t, expo, "temco_serve_completed_total"); got != float64(st.Serve.Completed) {
		t.Errorf("completed: metrics %v vs statsz %d", got, st.Serve.Completed)
	}
	if st.Serve.QueueWaitCount != uint64(st.Serve.Accepted) {
		t.Errorf("queue wait count %d, want one observation per accepted request (%d)",
			st.Serve.QueueWaitCount, st.Serve.Accepted)
	}
	if st.Serve.RunSecondsTotal <= 0 {
		t.Errorf("run_seconds_total = %v after %d runs", st.Serve.RunSecondsTotal, runs)
	}
}

// TestConcurrentScrapes races /statsz and /metrics scrapes against live
// inference traffic. The assertion is the race detector: CI runs this
// package with -race, so any unsynchronized read between the serving hot
// path and a scrape fails the build.
func TestConcurrentScrapes(t *testing.T) {
	ts, _ := newTestServer(t, testOptions())
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				b, _ := json.Marshal(inferRequest{Batch: 1, Seed: uint64(c*100 + i)})
				resp, err := http.Post(ts.URL+"/infer", "application/json", bytes.NewReader(b))
				if err != nil {
					t.Errorf("infer: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(c)
	}
	for _, ep := range []string{"/statsz", "/metrics"} {
		wg.Add(1)
		go func(ep string) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := http.Get(ts.URL + ep)
				if err != nil {
					t.Errorf("%s: %v", ep, err)
					return
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("%s: status %d, read err %v", ep, resp.StatusCode, rerr)
					return
				}
				if ep == "/metrics" {
					if err := obs.CheckExposition(body); err != nil {
						t.Errorf("%s mid-traffic: %v", ep, err)
						return
					}
				}
			}
		}(ep)
	}
	wg.Wait()
}

func TestPprofMounted(t *testing.T) {
	ts, _ := newTestServer(t, testOptions())
	status, _, body := getBody(t, ts.URL+"/debug/pprof/cmdline")
	if status != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline: status %d, %d bytes", status, len(body))
	}
	status, _, _ = getBody(t, ts.URL+"/debug/pprof/")
	if status != http.StatusOK {
		t.Fatalf("/debug/pprof/: status %d", status)
	}
}
