package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"temco/internal/cluster"
	"temco/internal/serve"
)

// soakReplica is a real temcod handler (real serve.Session, real /readyz
// and /infer) on a fixed port, so the process can be "killed" abruptly and
// restarted at the same address — exactly what the cluster prober sees
// when a replica crashes and comes back.
type soakReplica struct {
	t    *testing.T
	sess *serve.Session
	addr string

	mu  sync.Mutex
	srv *http.Server
}

func newSoakReplica(t *testing.T, o options) *soakReplica {
	t.Helper()
	sess, shape, err := testSession(o)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := &soakReplica{t: t, sess: sess, addr: ln.Addr().String()}
	r.serveOn(ln, shape)
	return r
}

func (r *soakReplica) serveOn(ln net.Listener, shape []int) {
	srv := &http.Server{Handler: newHandler(r.sess, shape, -1, false)}
	r.mu.Lock()
	r.srv = srv
	r.mu.Unlock()
	go srv.Serve(ln)
}

func (r *soakReplica) url() string { return "http://" + r.addr }

// kill closes the listener and every active connection — an abrupt
// process death, not a drain.
func (r *soakReplica) kill() {
	r.mu.Lock()
	srv := r.srv
	r.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
}

// restart re-listens on the same address.
func (r *soakReplica) restart(shape []int) error {
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		if ln, err = net.Listen("tcp", r.addr); err == nil {
			r.serveOn(ln, shape)
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("rebinding %s: %v", r.addr, err)
}

// TestClusterSoak runs 3 real replicas behind a cluster.Router, hammers
// the front with concurrent clients, kills one whole replica mid-run, and
// restarts it: every client must receive a well-formed response or a
// typed retryable error, the fleet must return to all-healthy within the
// re-probe window, and nothing may leak. CI runs this with TEMCO_SOAK.
func TestClusterSoak(t *testing.T) {
	before := runtime.NumGoroutine()
	o := testOptions()
	o.queueSize = 4

	sess0, shape, err := testSession(o) // warm the memoized graphs first
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	sess0.Close(ctx)
	cancel()

	reps := []*soakReplica{newSoakReplica(t, o), newSoakReplica(t, o), newSoakReplica(t, o)}
	urls := make([]string, len(reps))
	for i, r := range reps {
		urls[i] = r.url()
	}
	probeInterval := 25 * time.Millisecond
	table, err := cluster.NewTable(urls, cluster.Config{
		ProbeInterval:   probeInterval,
		FailThreshold:   2,
		MaxProbeBackoff: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	router := cluster.NewRouter(table, cluster.RouterConfig{})
	table.Start()
	front := httptest.NewServer(http.HandlerFunc(router.ServeInfer))

	allHealthy := func() bool {
		for _, r := range table.Replicas() {
			if r.State() != cluster.StateHealthy {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(10 * time.Second)
	for !allHealthy() {
		if time.Now().After(deadline) {
			t.Fatal("fleet never became healthy")
		}
		time.Sleep(5 * time.Millisecond)
	}

	dur := 2 * time.Second
	if s := os.Getenv("TEMCO_SOAK"); s != "" {
		if d, err := time.ParseDuration(s); err == nil && d > 0 {
			dur = d
		}
	}

	// Kill replica 0 a third of the way in; restart it at two thirds.
	killAt := time.AfterFunc(dur/3, func() { reps[0].kill() })
	defer killAt.Stop()
	restartErr := make(chan error, 1)
	restartAt := time.AfterFunc(2*dur/3, func() { restartErr <- reps[0].restart(shape) })
	defer restartAt.Stop()

	// Every status the stack can legitimately produce, each with a JSON
	// body: temcod's guard mapping, plus the router's typed 502s (partial
	// response mid-kill, or every attempt refused) and 503 (no replica).
	allowed := map[int]bool{
		http.StatusOK:                  true,
		http.StatusTooManyRequests:     true,
		http.StatusServiceUnavailable:  true,
		http.StatusInternalServerError: true,
		http.StatusInsufficientStorage: true,
		http.StatusGatewayTimeout:      true,
		http.StatusBadGateway:          true,
	}
	end := time.Now().Add(dur)
	var ok, shed, routerErr, malformed atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := 0; time.Now().Before(end); i++ {
				body, _ := json.Marshal(inferRequest{Batch: 1, Seed: uint64(c*10000 + i)})
				resp, err := client.Post(front.URL+"/infer", "application/json", bytes.NewReader(body))
				if err != nil {
					malformed.Add(1)
					continue
				}
				var out map[string]any
				derr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if derr != nil || !allowed[resp.StatusCode] {
					t.Logf("malformed: status %d err %v body %v", resp.StatusCode, derr, out)
					malformed.Add(1)
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusTooManyRequests:
					shed.Add(1)
				case http.StatusBadGateway, http.StatusServiceUnavailable:
					// The router's typed errors must say whether retrying helps.
					if _, has := out["retryable"]; !has && out["error"] == nil {
						malformed.Add(1)
					}
					routerErr.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	if err := <-restartErr; err != nil {
		t.Fatal(err)
	}

	st := router.Stats()
	t.Logf("cluster soak: ok=%d shed=%d routerErr=%d stats=%+v", ok.Load(), shed.Load(), routerErr.Load(), st)
	if n := malformed.Load(); n != 0 {
		t.Fatalf("%d malformed responses under replica kill/restart", n)
	}
	if ok.Load() == 0 {
		t.Fatal("soak served nothing")
	}
	if st.Ejections == 0 {
		t.Fatal("killed replica was never ejected")
	}

	// Recovery: the restarted replica must return to healthy within the
	// re-probe window (backoff cap + one probe round, with slack).
	deadline = time.Now().Add(5 * time.Second)
	for !allHealthy() {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never recovered after restart: %+v", table.Status())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := router.Stats(); st.Revivals == 0 {
		t.Fatalf("restart must count a revival: %+v", st)
	}

	// Teardown and leak check.
	front.Close()
	table.Close()
	for _, r := range reps {
		r.kill()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		if err := r.sess.Close(ctx); err != nil {
			t.Errorf("closing replica session: %v", err)
		}
		cancel()
	}
	leakBy := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(leakBy) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
