package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// freePort reserves a TCP port by binding and releasing it. Mildly racy
// (another process could grab it), but standard for multi-process tests.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port
}

// daemon is one spawned temcod/temcor process.
type daemon struct {
	cmd  *exec.Cmd
	done chan error
}

func spawn(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", bin, err)
	}
	d := &daemon{cmd: cmd, done: make(chan error, 1)}
	go func() { d.done <- cmd.Wait() }()
	return d
}

// exitCode waits for the process and returns its exit code.
func (d *daemon) exitCode(t *testing.T, within time.Duration) int {
	t.Helper()
	select {
	case err := <-d.done:
		if err == nil {
			return 0
		}
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			return ee.ExitCode()
		}
		t.Fatalf("waiting for process: %v", err)
	case <-time.After(within):
		d.cmd.Process.Kill()
		t.Fatalf("process %d did not exit within %v", d.cmd.Process.Pid, within)
	}
	return -1
}

func waitReady(t *testing.T, url string, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			ok := resp.StatusCode == http.StatusOK
			resp.Body.Close()
			if ok {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never became ready: %v", url, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestProcessClusterSoak is the full-fidelity cluster soak: real temcod
// and temcor binaries as separate processes, one replica killed through
// its /quitz hook mid-load and restarted, recovery and exit codes
// asserted. Gated by TEMCO_SOAK because it builds two binaries and
// initializes three models.
func TestProcessClusterSoak(t *testing.T) {
	soak := os.Getenv("TEMCO_SOAK")
	if soak == "" {
		t.Skip("set TEMCO_SOAK (e.g. 30s) to run the process-level cluster soak")
	}
	dur := 10 * time.Second
	if d, err := time.ParseDuration(soak); err == nil && d > 0 {
		dur = d
	}

	bindir := t.TempDir()
	temcod := filepath.Join(bindir, "temcod")
	temcor := filepath.Join(bindir, "temcor")
	for _, b := range [][2]string{{temcod, "temco/cmd/temcod"}, {temcor, "temco/cmd/temcor"}} {
		out, err := exec.Command("go", "build", "-o", b[0], b[1]).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", b[1], err, out)
		}
	}

	// Three replicas with the /quitz kill hook armed.
	replicaArgs := func(port int) []string {
		return []string{
			"-model", "alexnet", "-res", "32", "-classes", "10", "-ratio", "0.25",
			"-queue", "8", "-addr", fmt.Sprintf("127.0.0.1:%d", port), "-quitz",
		}
	}
	ports := []int{freePort(t), freePort(t), freePort(t)}
	urls := make([]string, 3)
	replicas := make([]*daemon, 3)
	for i, p := range ports {
		replicas[i] = spawn(t, temcod, replicaArgs(p)...)
		urls[i] = fmt.Sprintf("http://127.0.0.1:%d", p)
	}
	t.Cleanup(func() {
		for _, d := range replicas {
			if d != nil && d.cmd.ProcessState == nil {
				d.cmd.Process.Kill()
			}
		}
	})
	for _, u := range urls {
		waitReady(t, u, 60*time.Second)
	}

	routerPort := freePort(t)
	routerURL := fmt.Sprintf("http://127.0.0.1:%d", routerPort)
	router := spawn(t, temcor,
		"-replicas", urls[0]+","+urls[1]+","+urls[2],
		"-addr", fmt.Sprintf("127.0.0.1:%d", routerPort),
		"-probeinterval", "50ms", "-failthreshold", "2", "-maxprobebackoff", "400ms")
	t.Cleanup(func() {
		if router.cmd.ProcessState == nil {
			router.cmd.Process.Kill()
		}
	})
	waitReady(t, routerURL, 30*time.Second)

	// Load: 8 concurrent clients for the whole soak window.
	allowed := map[int]bool{
		http.StatusOK: true, http.StatusTooManyRequests: true,
		http.StatusServiceUnavailable: true, http.StatusBadGateway: true,
		http.StatusGatewayTimeout: true, http.StatusInternalServerError: true,
		http.StatusInsufficientStorage: true,
	}
	end := time.Now().Add(dur)
	var ok, malformed atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := 0; time.Now().Before(end); i++ {
				body, _ := json.Marshal(map[string]any{"batch": 1, "seed": c*100000 + i})
				resp, err := client.Post(routerURL+"/infer", "application/json", bytes.NewReader(body))
				if err != nil {
					malformed.Add(1)
					continue
				}
				var out map[string]any
				derr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if derr != nil || !allowed[resp.StatusCode] {
					t.Logf("malformed: status %d err %v body %v", resp.StatusCode, derr, out)
					malformed.Add(1)
					continue
				}
				if resp.StatusCode == http.StatusOK {
					ok.Add(1)
				}
			}
		}(c)
	}

	// Kill replica 0 via /quitz a third in; it must exit with the
	// documented kill code 1. Restart it at the same address two thirds in.
	time.Sleep(dur / 3)
	resp, err := http.Post(urls[0]+"/quitz", "application/json", nil)
	if err != nil {
		t.Fatalf("POST /quitz: %v", err)
	}
	resp.Body.Close()
	if code := replicas[0].exitCode(t, 10*time.Second); code != 1 {
		t.Fatalf("quitz-killed replica exit code %d, want 1", code)
	}
	time.Sleep(dur / 3)
	replicas[0] = spawn(t, temcod, replicaArgs(ports[0])...)
	waitReady(t, urls[0], 60*time.Second)

	wg.Wait()
	if n := malformed.Load(); n != 0 {
		t.Fatalf("%d malformed responses during process-level soak", n)
	}
	if ok.Load() == 0 {
		t.Fatal("soak served nothing")
	}

	// Recovery: temcor must report the whole fleet healthy, with the kill
	// visible as >=1 ejection and >=1 revival.
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(routerURL + "/statsz")
		if err != nil {
			t.Fatal(err)
		}
		var st statsResponse
		jerr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if jerr != nil {
			t.Fatal(jerr)
		}
		healthy := 0
		for _, r := range st.Replicas {
			if r.State == "healthy" {
				healthy++
			}
		}
		if healthy == 3 {
			if st.Router.Ejections == 0 || st.Router.Revivals == 0 {
				t.Fatalf("kill must register as ejection+revival: %+v", st.Router)
			}
			t.Logf("process soak: ok=%d router=%+v", ok.Load(), st.Router)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never recovered: %+v", st.Replicas)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Graceful shutdown all around: SIGTERM, exit code 0.
	router.cmd.Process.Signal(syscall.SIGTERM)
	if code := router.exitCode(t, 45*time.Second); code != 0 {
		t.Fatalf("temcor exit code %d, want 0", code)
	}
	for i, d := range replicas {
		d.cmd.Process.Signal(syscall.SIGTERM)
		if code := d.exitCode(t, 45*time.Second); code != 0 {
			t.Fatalf("replica %d exit code %d, want 0", i, code)
		}
	}
}

// TestProcessMembershipChurnSoak is the membership churn soak at full
// process fidelity: real binaries, a replica admin-added mid-load (joins
// on probation), another gracefully drained through /admin/drain and then
// SIGTERMed (must exit 0 — shutdown ordering), a third /quitz-killed and
// restarted. Every response well-formed, the autoscale signal published,
// the fleet converged. Gated by TEMCO_SOAK.
func TestProcessMembershipChurnSoak(t *testing.T) {
	soak := os.Getenv("TEMCO_SOAK")
	if soak == "" {
		t.Skip("set TEMCO_SOAK (e.g. 30s) to run the process-level membership churn soak")
	}
	dur := 10 * time.Second
	if d, err := time.ParseDuration(soak); err == nil && d > 0 {
		dur = d
	}

	bindir := t.TempDir()
	temcod := filepath.Join(bindir, "temcod")
	temcor := filepath.Join(bindir, "temcor")
	for _, b := range [][2]string{{temcod, "temco/cmd/temcod"}, {temcor, "temco/cmd/temcor"}} {
		out, err := exec.Command("go", "build", "-o", b[0], b[1]).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", b[1], err, out)
		}
	}

	replicaArgs := func(port int) []string {
		return []string{
			"-model", "alexnet", "-res", "32", "-classes", "10", "-ratio", "0.25",
			"-queue", "8", "-addr", fmt.Sprintf("127.0.0.1:%d", port), "-quitz",
		}
	}
	// Three temcod processes; only the first two are seeded into temcor —
	// the third joins live through the admin API.
	ports := []int{freePort(t), freePort(t), freePort(t)}
	urls := make([]string, 3)
	replicas := make([]*daemon, 3)
	for i, p := range ports {
		replicas[i] = spawn(t, temcod, replicaArgs(p)...)
		urls[i] = fmt.Sprintf("http://127.0.0.1:%d", p)
	}
	t.Cleanup(func() {
		for _, d := range replicas {
			if d != nil && d.cmd.ProcessState == nil {
				d.cmd.Process.Kill()
			}
		}
	})
	for _, u := range urls {
		waitReady(t, u, 60*time.Second)
	}

	routerPort := freePort(t)
	routerURL := fmt.Sprintf("http://127.0.0.1:%d", routerPort)
	router := spawn(t, temcor,
		"-replicas", urls[0]+","+urls[1],
		"-addr", fmt.Sprintf("127.0.0.1:%d", routerPort),
		"-probeinterval", "50ms", "-failthreshold", "2", "-maxprobebackoff", "400ms",
		"-probation", "2", "-scaleinterval", "250ms")
	t.Cleanup(func() {
		if router.cmd.ProcessState == nil {
			router.cmd.Process.Kill()
		}
	})
	waitReady(t, routerURL, 30*time.Second)

	admin := &http.Client{Timeout: 60 * time.Second}
	adminPost := func(path, url string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := admin.Post(routerURL+path, "application/json",
			bytes.NewReader([]byte(fmt.Sprintf(`{"url":%q}`, url))))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("non-JSON admin response (status %d): %v", resp.StatusCode, err)
		}
		return resp, out
	}
	stateOf := func(url string) string {
		t.Helper()
		resp, err := http.Get(routerURL + "/statsz")
		if err != nil {
			t.Fatal(err)
		}
		var st statsResponse
		jerr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if jerr != nil {
			t.Fatal(jerr)
		}
		for _, r := range st.Replicas {
			if r.URL == url {
				return r.State
			}
		}
		return "absent"
	}

	allowed := map[int]bool{
		http.StatusOK: true, http.StatusTooManyRequests: true,
		http.StatusServiceUnavailable: true, http.StatusBadGateway: true,
		http.StatusGatewayTimeout: true, http.StatusInternalServerError: true,
		http.StatusInsufficientStorage: true,
	}
	end := time.Now().Add(dur)
	var ok, malformed atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := 0; time.Now().Before(end); i++ {
				body, _ := json.Marshal(map[string]any{"batch": 1, "seed": c*100000 + i})
				resp, err := client.Post(routerURL+"/infer", "application/json", bytes.NewReader(body))
				if err != nil {
					malformed.Add(1)
					continue
				}
				var out map[string]any
				derr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if derr != nil || !allowed[resp.StatusCode] {
					t.Logf("malformed: status %d err %v body %v", resp.StatusCode, derr, out)
					malformed.Add(1)
					continue
				}
				if resp.StatusCode == http.StatusOK {
					ok.Add(1)
				}
			}
		}(c)
	}

	// Join: the third replica enters on probation and must reach healthy.
	time.Sleep(dur / 5)
	if resp, out := adminPost("/admin/replicas", urls[2]); resp.StatusCode != http.StatusOK || out["state"] != "joining" {
		t.Fatalf("live add: %d %v", resp.StatusCode, out)
	}
	joinBy := time.Now().Add(15 * time.Second)
	for stateOf(urls[2]) != "healthy" {
		if time.Now().After(joinBy) {
			t.Fatalf("added replica never promoted: %s", stateOf(urls[2]))
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Graceful drain under load, then SIGTERM the drained process: it must
	// exit 0 with its background goroutines stopped (shutdown ordering).
	time.Sleep(dur / 5)
	if resp, out := adminPost("/admin/drain", urls[1]); resp.StatusCode != http.StatusOK || out["drained"] == nil {
		t.Fatalf("admin drain: %d %v", resp.StatusCode, out)
	}
	if st := stateOf(urls[1]); st != "absent" {
		t.Fatalf("drained replica still in the table: %s", st)
	}
	replicas[1].cmd.Process.Signal(syscall.SIGTERM)
	if code := replicas[1].exitCode(t, 45*time.Second); code != 0 {
		t.Fatalf("drained replica exit code %d, want 0", code)
	}

	// Crash churn: /quitz kill and same-address restart.
	time.Sleep(dur / 5)
	resp, err := http.Post(urls[0]+"/quitz", "application/json", nil)
	if err != nil {
		t.Fatalf("POST /quitz: %v", err)
	}
	resp.Body.Close()
	if code := replicas[0].exitCode(t, 10*time.Second); code != 1 {
		t.Fatalf("quitz-killed replica exit code %d, want 1", code)
	}
	time.Sleep(dur / 5)
	replicas[0] = spawn(t, temcod, replicaArgs(ports[0])...)
	waitReady(t, urls[0], 60*time.Second)

	wg.Wait()
	if n := malformed.Load(); n != 0 {
		t.Fatalf("%d malformed responses during membership churn", n)
	}
	if ok.Load() == 0 {
		t.Fatal("soak served nothing")
	}

	// Convergence: the fleet is the restarted seed + the joined replica,
	// both healthy, with the membership counters and the autoscale signal
	// published on /statsz.
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(routerURL + "/statsz")
		if err != nil {
			t.Fatal(err)
		}
		var st statsResponse
		jerr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if jerr != nil {
			t.Fatal(jerr)
		}
		healthy := 0
		for _, r := range st.Replicas {
			if r.State == "healthy" {
				healthy++
			}
		}
		if healthy == 2 && len(st.Replicas) == 2 {
			if st.Membership.Adds != 1 || st.Membership.Drains != 1 {
				t.Fatalf("membership counters: %+v", st.Membership)
			}
			if st.Autoscale.DesiredReplicas < 1 || st.Autoscale.Evals == 0 {
				t.Fatalf("autoscale signal never published: %+v", st.Autoscale)
			}
			t.Logf("membership churn soak: ok=%d router=%+v membership=%+v autoscale=%+v",
				ok.Load(), st.Router, st.Membership, st.Autoscale)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never converged: %+v", st.Replicas)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Graceful shutdown all around.
	router.cmd.Process.Signal(syscall.SIGTERM)
	if code := router.exitCode(t, 45*time.Second); code != 0 {
		t.Fatalf("temcor exit code %d, want 0", code)
	}
	for _, i := range []int{0, 2} {
		replicas[i].cmd.Process.Signal(syscall.SIGTERM)
		if code := replicas[i].exitCode(t, 45*time.Second); code != 0 {
			t.Fatalf("replica %d exit code %d, want 0", i, code)
		}
	}
}
