package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"temco/internal/cluster"
)

func adminDo(t *testing.T, method, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("non-JSON admin response from %s %s (status %d): %v", method, url, resp.StatusCode, err)
	}
	return resp, out
}

// waitState polls the table until the named replica reaches the wanted
// state.
func waitState(t *testing.T, table *cluster.Table, url string, want cluster.State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, r := range table.Replicas() {
			if r.URL() == url && r.State() == want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica %s never reached %s: %+v", url, want, table.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestAdminReplicaLifecycle walks a replica through the admin API: added
// on probation, promoted by passing probes, listed, refused as a
// duplicate, and removed.
func TestAdminReplicaLifecycle(t *testing.T) {
	front, table, _ := newTestCluster(t, 1)
	extra := newFakeReplica("extra")
	defer extra.srv.Close()

	// GET lists the current membership.
	resp, out := adminDo(t, http.MethodGet, front.URL+"/admin/replicas", "")
	if resp.StatusCode != http.StatusOK || out["membership"] == nil {
		t.Fatalf("GET /admin/replicas: %d %v", resp.StatusCode, out)
	}
	if reps, ok := out["replicas"].([]any); !ok || len(reps) != 1 {
		t.Fatalf("GET /admin/replicas table: %v", out["replicas"])
	}

	// POST adds the replica in the joining state — no traffic yet.
	resp, out = adminDo(t, http.MethodPost, front.URL+"/admin/replicas", fmt.Sprintf(`{"url":%q}`, extra.srv.URL))
	if resp.StatusCode != http.StatusOK || out["state"] != "joining" {
		t.Fatalf("POST /admin/replicas: %d %v", resp.StatusCode, out)
	}
	// Probation passes (probe interval 10ms) and the replica joins service.
	waitState(t, table, extra.srv.URL, cluster.StateHealthy)

	// A duplicate add conflicts; garbage is a bad request; a missing URL too.
	if resp, _ = adminDo(t, http.MethodPost, front.URL+"/admin/replicas", fmt.Sprintf(`{"url":%q}`, extra.srv.URL)); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate add: status %d", resp.StatusCode)
	}
	if resp, _ = adminDo(t, http.MethodPost, front.URL+"/admin/replicas", `{"url":"not-a-url"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid add: status %d", resp.StatusCode)
	}
	if resp, _ = adminDo(t, http.MethodPost, front.URL+"/admin/replicas", `{}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bodyless add: status %d", resp.StatusCode)
	}

	// DELETE removes immediately; a second delete is a 404.
	resp, out = adminDo(t, http.MethodDelete, front.URL+"/admin/replicas?url="+extra.srv.URL, "")
	if resp.StatusCode != http.StatusOK || out["removed"] == nil {
		t.Fatalf("DELETE /admin/replicas: %d %v", resp.StatusCode, out)
	}
	if len(table.Replicas()) != 1 {
		t.Fatalf("table after delete: %+v", table.Status())
	}
	if resp, _ = adminDo(t, http.MethodDelete, front.URL+"/admin/replicas?url="+extra.srv.URL, ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: status %d", resp.StatusCode)
	}
}

// TestAdminDrain: the synchronous drain endpoint notifies the replica's
// /drainz, waits it idle, and removes it; unknown replicas 404, non-POST
// is refused.
func TestAdminDrain(t *testing.T) {
	front, table, reps := newTestCluster(t, 2)

	resp, out := adminDo(t, http.MethodPost, front.URL+"/admin/drain", fmt.Sprintf(`{"url":%q}`, reps[1].srv.URL))
	if resp.StatusCode != http.StatusOK || out["drained"] == nil {
		t.Fatalf("POST /admin/drain: %d %v", resp.StatusCode, out)
	}
	if reps[1].drainzCalls() == 0 {
		t.Fatal("drained replica never told to shed (/drainz)")
	}
	if len(table.Replicas()) != 1 {
		t.Fatalf("drained replica still in the table: %+v", table.Status())
	}
	// Traffic keeps flowing on the survivor.
	presp, err := http.Post(front.URL+"/infer", "application/json", strings.NewReader(`{"batch":1}`))
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("infer after drain: status %d", presp.StatusCode)
	}

	if resp, _ = adminDo(t, http.MethodPost, front.URL+"/admin/drain", `{"url":"http://127.0.0.1:1"}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("drain of unknown replica: status %d", resp.StatusCode)
	}
	if resp, _ = adminDo(t, http.MethodGet, front.URL+"/admin/drain", ""); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /admin/drain: status %d", resp.StatusCode)
	}
}

func TestReadReplicasFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "replicas.txt")
	content := "# fleet\nhttp://a:1, http://b:2\n\nhttp://c:3 # trailing comment\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	urls, err := readReplicasFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a:1", "http://b:2", "http://c:3"}
	if !reflect.DeepEqual(urls, want) {
		t.Fatalf("parsed %v, want %v", urls, want)
	}
	if _, err := readReplicasFile(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Fatal("missing file must error")
	}
}

// TestReconcile drives the file-reload path directly: new URLs join,
// missing URLs drain away, and an empty list is refused outright.
func TestReconcile(t *testing.T) {
	_, table, reps, p := newTestProxy(t, 2)
	extra := newFakeReplica("extra")
	defer extra.srv.Close()

	added, draining, err := p.reconcile([]string{reps[0].srv.URL, extra.srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(added, []string{extra.srv.URL}) {
		t.Fatalf("reconcile added %v", added)
	}
	if !reflect.DeepEqual(draining, []string{reps[1].srv.URL}) {
		t.Fatalf("reconcile draining %v", draining)
	}
	// The drain runs asynchronously; the table converges to the new set.
	deadline := time.Now().Add(5 * time.Second)
	for {
		urls := map[string]bool{}
		for _, r := range table.Replicas() {
			urls[r.URL()] = true
		}
		if len(urls) == 2 && urls[reps[0].srv.URL] && urls[extra.srv.URL] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("table never converged on the reconciled set: %+v", table.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitState(t, table, extra.srv.URL, cluster.StateHealthy)

	if _, _, err := p.reconcile(nil); err == nil {
		t.Fatal("empty reconcile must refuse to drain the fleet")
	}
}

// TestStatszMembershipAutoscale: the new /statsz sections are live — the
// membership table counts the fleet and the autoscale signal publishes a
// desired size.
func TestStatszMembershipAutoscale(t *testing.T) {
	front, _, _ := newTestCluster(t, 2)
	resp, err := http.Get(front.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Membership.Replicas != 2 {
		t.Fatalf("statsz membership: %+v", st.Membership)
	}
	if st.Autoscale.DesiredReplicas != 2 {
		t.Fatalf("statsz autoscale signal: %+v", st.Autoscale)
	}
}
