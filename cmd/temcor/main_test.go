package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"temco/internal/cluster"
	"temco/internal/guard"
	"temco/internal/obs"
)

// fakeReplica is a stub temcod: scriptable /readyz health plus an /infer
// endpoint that answers with its own name, and a /drainz endpoint that
// flips it not-ready the way a draining temcod would.
type fakeReplica struct {
	name string
	srv  *httptest.Server

	mu     sync.Mutex
	health cluster.Health
	status int
	drainz int
}

func newFakeReplica(name string) *fakeReplica {
	f := &fakeReplica{
		name:   name,
		health: cluster.Health{Ready: true, BreakerState: "closed"},
		status: http.StatusOK,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		h, st := f.health, f.status
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(st)
		json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/infer", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"argmax":[1],"served_by":%q}`, f.name)
	})
	mux.HandleFunc("/drainz", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.drainz++
		f.health = cluster.Health{Ready: false, Reason: "draining"}
		f.status = http.StatusServiceUnavailable
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"draining":true}`)
	})
	f.srv = httptest.NewServer(mux)
	return f
}

func (f *fakeReplica) set(h cluster.Health, status int) {
	f.mu.Lock()
	f.health, f.status = h, status
	f.mu.Unlock()
}

func (f *fakeReplica) drainzCalls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.drainz
}

// newTestCluster wires n fake replicas behind a probing table, a router,
// an autoscaler, and the temcor handler, waiting until every replica is
// classified.
func newTestCluster(t *testing.T, n int) (*httptest.Server, *cluster.Table, []*fakeReplica) {
	front, table, reps, _ := newTestProxy(t, n)
	return front, table, reps
}

// newTestProxy is newTestCluster plus the proxy itself, for tests that
// drive the admin API or the reconciler directly.
func newTestProxy(t *testing.T, n int) (*httptest.Server, *cluster.Table, []*fakeReplica, *proxy) {
	t.Helper()
	reps := make([]*fakeReplica, n)
	urls := make([]string, n)
	for i := range reps {
		reps[i] = newFakeReplica(fmt.Sprintf("replica-%d", i))
		urls[i] = reps[i].srv.URL
	}
	table, err := cluster.NewTable(urls, cluster.Config{ProbeInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	router := cluster.NewRouter(table, cluster.RouterConfig{})
	scaler := cluster.NewAutoscaler(table, cluster.AutoscaleConfig{})
	table.Start()
	p := &proxy{table: table, router: router, scaler: scaler, drain: 5 * time.Second}
	front := httptest.NewServer(newHandler(p))
	t.Cleanup(func() {
		front.Close()
		table.Close()
		for _, r := range reps {
			r.srv.Close()
		}
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		healthy := 0
		for _, r := range table.Replicas() {
			if r.State() == cluster.StateHealthy {
				healthy++
			}
		}
		if healthy == n {
			return front, table, reps, p
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never became healthy: %d/%d", healthy, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("non-JSON response from %s (status %d): %v", url, resp.StatusCode, err)
	}
	return resp, out
}

func TestRunRejectsEmptyReplicas(t *testing.T) {
	err := run(options{replicas: " , "})
	if err == nil || guard.ExitCode(err) != 2 {
		t.Fatalf("empty -replicas must fail with the invalid-flags exit code, got %v", err)
	}
}

func TestTemcorEndpoints(t *testing.T) {
	front, _, reps := newTestCluster(t, 3)

	resp, out := getJSON(t, front.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || out["ok"] != true {
		t.Fatalf("healthz: %d %v", resp.StatusCode, out)
	}

	resp, out = getJSON(t, front.URL+"/readyz")
	if resp.StatusCode != http.StatusOK || out["ready"] != true || out["routable"] != float64(3) {
		t.Fatalf("readyz: %d %v", resp.StatusCode, out)
	}

	// Proxied inference lands on some replica and names it in the header.
	preq, _ := http.NewRequest(http.MethodPost, front.URL+"/infer", strings.NewReader(`{"batch":1}`))
	preq.Header.Set("Content-Type", "application/json")
	presp, err := http.DefaultClient.Do(preq)
	if err != nil {
		t.Fatal(err)
	}
	var pout map[string]any
	if err := json.NewDecoder(presp.Body).Decode(&pout); err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK || pout["served_by"] == nil {
		t.Fatalf("proxied infer: %d %v", presp.StatusCode, pout)
	}
	if presp.Header.Get(cluster.ReplicaHeader) == "" {
		t.Fatalf("proxied response must name its replica")
	}

	resp, err = http.Get(front.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Routable != 3 || len(st.Replicas) != 3 {
		t.Fatalf("statsz replica table: %+v", st)
	}
	if st.Router.Placements == 0 || st.Router.Probes == 0 {
		t.Fatalf("statsz router counters untouched: %+v", st.Router)
	}
	for _, r := range st.Replicas {
		if r.State != "healthy" {
			t.Fatalf("replica %s: state %q", r.URL, r.State)
		}
	}

	// All replicas down: readiness flips to 503.
	for _, r := range reps {
		r.set(cluster.Health{Ready: false, Reason: "draining"}, http.StatusServiceUnavailable)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, out = getJSON(t, front.URL+"/readyz")
		if resp.StatusCode == http.StatusServiceUnavailable && out["ready"] == false {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz never flipped after fleet drain: %d %v", resp.StatusCode, out)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTemcorMetricsExposition validates the acceptance criterion: temcor's
// /metrics serves the cluster registry (per-replica health state,
// placements, retries, hedges, ejections) and the output passes the
// exposition lint.
func TestTemcorMetricsExposition(t *testing.T) {
	front, _, _ := newTestCluster(t, 2)

	// Drive one proxied request so the counters move.
	resp, err := http.Post(front.URL+"/infer", "application/json", strings.NewReader(`{"batch":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mresp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckExposition(body); err != nil {
		t.Fatalf("/metrics fails the exposition lint: %v\n%s", err, body)
	}
	for _, want := range []string{
		"temco_cluster_replica_state{replica=",
		"temco_cluster_replica_placements_total{replica=",
		"temco_cluster_placements_total",
		"temco_cluster_retries_total",
		"temco_cluster_hedges_total",
		"temco_cluster_ejections_total",
		"temco_cluster_probes_total",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestTemcorRoutesAroundTrippedBreaker: a replica reporting its breaker
// open is shed cluster-wide while healthy capacity remains.
func TestTemcorRoutesAroundTrippedBreaker(t *testing.T) {
	front, table, reps := newTestCluster(t, 2)

	reps[0].set(cluster.Health{Ready: true, Degraded: true, BreakerState: "open"}, http.StatusOK)
	deadline := time.Now().Add(5 * time.Second)
	for table.Replicas()[0].State() != cluster.StateDegraded {
		if time.Now().After(deadline) {
			t.Fatal("breaker-open replica never classified degraded")
		}
		time.Sleep(2 * time.Millisecond)
	}

	for i := 0; i < 5; i++ {
		resp, err := http.Post(front.URL+"/infer", "application/json", strings.NewReader(`{"batch":1}`))
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if out["served_by"] != "replica-1" {
			t.Fatalf("request %d landed on the breaker-tripped replica: %v", i, out)
		}
	}
}
