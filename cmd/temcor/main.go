// Command temcor fronts a fleet of temcod replicas: an active health
// prober maintains a replica table from each replica's /readyz and the
// router places every inference request on the least-loaded healthy
// replica, falling back to rendezvous hashing for keyed affinity
// (X-Temco-Shard-Key). Connection errors and complete 429/503 responses
// are retried on another replica; a response that dies mid-body is never
// retried, because the replica already executed the request. A replica
// whose local circuit breaker has tripped reports itself degraded on
// /readyz and the whole fleet routes around it while anything healthy
// remains — the breaker sheds traffic cluster-wide. Optional hedged
// requests (-hedge) duplicate an attempt that outlives the observed
// latency percentile.
//
// Usage:
//
//	temcor -replicas http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083
//	temcor -replicas ... -hedge -hedgequantile 0.95
//
// Endpoints:
//
//	POST /infer   proxied inference; response carries X-Temco-Replica
//	GET  /healthz liveness (200 while the process runs)
//	GET  /readyz  readiness (503 until at least one replica is routable)
//	GET  /statsz  router counters + per-replica health table (JSON)
//	GET  /metrics cluster registry in Prometheus text format
//
// /statsz and /metrics render the same cluster registry, so the two views
// cannot drift. SIGINT/SIGTERM triggers graceful shutdown: the listener
// closes, in-flight proxied requests drain (bounded by -draintimeout),
// then the prober stops and the process exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"temco/internal/cluster"
	"temco/internal/guard"
	"temco/internal/obs"
)

func main() {
	var (
		replicas  = flag.String("replicas", "", "comma-separated temcod base URLs (required)")
		addr      = flag.String("addr", ":8090", "HTTP listen address")
		probeIvl  = flag.Duration("probeinterval", 250*time.Millisecond, "health probe interval per replica")
		probeTO   = flag.Duration("probetimeout", 1*time.Second, "health probe timeout")
		failThr   = flag.Int("failthreshold", 3, "consecutive probe failures that eject a replica")
		maxProbe  = flag.Duration("maxprobebackoff", 8*time.Second, "re-probe backoff cap for ejected replicas")
		retries   = flag.Int("retries", 2, "max additional replicas to try after a connection error or shed (-1 disables)")
		attemptTO = flag.Duration("attempttimeout", 30*time.Second, "per-attempt proxy timeout")
		hedge     = flag.Bool("hedge", false, "hedge slow attempts on a second replica (presumes idempotent inference)")
		hedgeQ    = flag.Float64("hedgequantile", 0.95, "latency quantile that arms the hedge timer")
		hedgeMin  = flag.Duration("minhedgedelay", 10*time.Millisecond, "floor on the hedge delay")
		drain     = flag.Duration("draintimeout", 30*time.Second, "graceful shutdown drain budget")
	)
	flag.Parse()
	if err := run(options{
		replicas: *replicas, addr: *addr,
		probeInterval: *probeIvl, probeTimeout: *probeTO,
		failThreshold: *failThr, maxProbeBackoff: *maxProbe,
		retries: *retries, attemptTimeout: *attemptTO,
		hedge: *hedge, hedgeQuantile: *hedgeQ, minHedgeDelay: *hedgeMin,
		drain: *drain,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "temcor:", err)
		os.Exit(guard.ExitCode(err))
	}
}

type options struct {
	replicas        string
	addr            string
	probeInterval   time.Duration
	probeTimeout    time.Duration
	failThreshold   int
	maxProbeBackoff time.Duration
	retries         int
	attemptTimeout  time.Duration
	hedge           bool
	hedgeQuantile   float64
	minHedgeDelay   time.Duration
	drain           time.Duration
}

func run(o options) error {
	var urls []string
	for _, u := range strings.Split(o.replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		return guard.Errorf(guard.ErrInvalidModel, "flags", "-replicas is required (comma-separated temcod base URLs)")
	}
	// Process-wide collectors on the default registry; the cluster tier's
	// instruments live on the table's own registry and /metrics renders both.
	obs.RegisterProcessMetrics(obs.Default())
	table, err := cluster.NewTable(urls, cluster.Config{
		ProbeInterval:   o.probeInterval,
		ProbeTimeout:    o.probeTimeout,
		FailThreshold:   o.failThreshold,
		MaxProbeBackoff: o.maxProbeBackoff,
	})
	if err != nil {
		return err
	}
	router := cluster.NewRouter(table, cluster.RouterConfig{
		MaxRetries:     o.retries,
		AttemptTimeout: o.attemptTimeout,
		Hedge:          o.hedge,
		HedgeQuantile:  o.hedgeQuantile,
		MinHedgeDelay:  o.minHedgeDelay,
	})
	table.Start()
	defer table.Close()

	srv := &http.Server{Addr: o.addr, Handler: newHandler(table, router)}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("temcor: routing %d replicas on %s\n", len(urls), o.addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return guard.New(guard.ErrInternal, "temcor.listen", err)
	case <-ctx.Done():
	}
	fmt.Println("temcor: shutting down, draining proxied requests")
	sdctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	if err := srv.Shutdown(sdctx); err != nil {
		return guard.New(guard.ErrCanceled, "temcor.shutdown", err)
	}
	fmt.Println("temcor: drained cleanly")
	return nil
}

// statsResponse is the /statsz body: router counters next to the live
// per-replica health table.
type statsResponse struct {
	Router     cluster.RouterStats     `json:"router"`
	Replicas   []cluster.ReplicaStatus `json:"replicas"`
	Routable   int                     `json:"routable"`
	Goroutines int                     `json:"goroutines"`
}

// newHandler builds the temcor HTTP API over the table and router.
func newHandler(table *cluster.Table, router *cluster.Router) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		routable := table.Routable()
		if routable == 0 {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"ready": false, "reason": "no routable replica", "routable": 0,
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"ready": true, "routable": routable, "replicas": len(table.Replicas()),
		})
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, statsResponse{
			Router:     router.Stats(),
			Replicas:   table.Status(),
			Routable:   table.Routable(),
			Goroutines: runtime.NumGoroutine(),
		})
	})
	// /metrics renders the cluster registry (replica states, placements,
	// retries, hedges, ejections) next to the process-wide default registry.
	mux.Handle("/metrics", obs.Handler(table.Metrics(), obs.Default()))
	mux.HandleFunc("/infer", router.ServeInfer)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
