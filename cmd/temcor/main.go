// Command temcor fronts a fleet of temcod replicas: an active health
// prober maintains a replica table from each replica's /readyz and the
// router places every inference request on the least-loaded healthy
// replica, falling back to rendezvous hashing for keyed affinity
// (X-Temco-Shard-Key). Connection errors and complete 429/503 responses
// are retried on another replica; a response that dies mid-body is never
// retried, because the replica already executed the request. A replica
// whose local circuit breaker has tripped reports itself degraded on
// /readyz and the whole fleet routes around it while anything healthy
// remains — the breaker sheds traffic cluster-wide. Optional hedged
// requests (-hedge) duplicate an attempt that outlives the observed
// latency percentile.
//
// Membership is live: the admin API adds, drains, and removes replicas on
// the running table. An added replica joins on probation (no traffic until
// it passes -probation consecutive probes); a drained replica stops taking
// placements immediately, is told to shed its own admission (POST
// /drainz), and is removed only after the router-observed in-flight count
// reaches zero. With -replicasfile the file is the membership source:
// SIGHUP or an mtime change reconciles the table against it (new URLs
// join, missing URLs drain). An autoscaler derives a desired-replicas
// signal from probed health (run-seconds utilization, queue depth +
// batch-pending, p95 queue wait, breaker transitions) with hysteresis and
// publishes it on /statsz and /metrics — advisory only, for an external
// operator or controller.
//
// Usage:
//
//	temcor -replicas http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083
//	temcor -replicasfile /etc/temco/replicas.txt
//	temcor -replicas ... -hedge -hedgequantile 0.95
//
// Endpoints:
//
//	POST /infer           proxied inference; response carries X-Temco-Replica
//	GET  /healthz         liveness (200 while the process runs)
//	GET  /readyz          readiness (503 until at least one replica is routable)
//	GET  /statsz          router counters + per-replica health table +
//	                      membership + autoscale signal (JSON)
//	GET  /metrics         cluster registry in Prometheus text format
//	GET  /admin/replicas  the live membership table
//	POST /admin/replicas  {"url": "..."} — add a replica (joins on probation)
//	DELETE /admin/replicas?url=... — remove a replica immediately (no drain)
//	POST /admin/drain     {"url": "..."} — graceful drain, synchronous:
//	                      returns once the replica is idle and removed, or
//	                      504 when -draintimeout expires first (the replica
//	                      stays in the table, still draining)
//
// /statsz and /metrics render the same cluster registry, so the two views
// cannot drift. SIGINT/SIGTERM triggers graceful shutdown: the listener
// closes, in-flight proxied requests drain (bounded by -draintimeout),
// then the prober stops and the process exits. SIGHUP reloads
// -replicasfile.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"temco/internal/cluster"
	"temco/internal/guard"
	"temco/internal/obs"
)

func main() {
	var (
		replicas  = flag.String("replicas", "", "comma-separated temcod base URLs")
		repFile   = flag.String("replicasfile", "", "file of temcod base URLs (one per line, # comments); reloaded on SIGHUP and on file change")
		addr      = flag.String("addr", ":8090", "HTTP listen address")
		probeIvl  = flag.Duration("probeinterval", 250*time.Millisecond, "health probe interval per replica")
		probeTO   = flag.Duration("probetimeout", 1*time.Second, "health probe timeout")
		failThr   = flag.Int("failthreshold", 3, "consecutive probe failures that eject a replica")
		maxProbe  = flag.Duration("maxprobebackoff", 8*time.Second, "re-probe backoff cap for ejected replicas")
		probation = flag.Int("probation", 2, "consecutive successful probes an added replica needs before taking traffic")
		retries   = flag.Int("retries", 2, "max additional replicas to try after a connection error or shed (-1 disables)")
		attemptTO = flag.Duration("attempttimeout", 30*time.Second, "per-attempt proxy timeout")
		hedge     = flag.Bool("hedge", false, "hedge slow attempts on a second replica (presumes idempotent inference)")
		hedgeQ    = flag.Float64("hedgequantile", 0.95, "latency quantile that arms the hedge timer")
		hedgeMin  = flag.Duration("minhedgedelay", 10*time.Millisecond, "floor on the hedge delay")
		drain     = flag.Duration("draintimeout", 30*time.Second, "graceful drain budget (shutdown and /admin/drain)")
		scaleTgt  = flag.Float64("scaletarget", 0.7, "autoscale target worker utilization")
		scaleMin  = flag.Int("scalemin", 1, "autoscale floor for desired replicas")
		scaleMax  = flag.Int("scalemax", 16, "autoscale ceiling for desired replicas")
		scaleIvl  = flag.Duration("scaleinterval", time.Second, "autoscale evaluation period")
		flight    = flag.Bool("flight", true, "arm the tail-sampled request flight recorder behind GET /debugz/requests")
		flightN   = flag.Int("flightsample", 16, "flight recorder keeps 1-in-N plain OK requests (errors, sheds, and the slow tail are always kept)")
	)
	flag.Parse()
	if err := run(options{
		replicas: *replicas, replicasFile: *repFile, addr: *addr,
		probeInterval: *probeIvl, probeTimeout: *probeTO,
		failThreshold: *failThr, maxProbeBackoff: *maxProbe,
		probation: *probation,
		retries:   *retries, attemptTimeout: *attemptTO,
		hedge: *hedge, hedgeQuantile: *hedgeQ, minHedgeDelay: *hedgeMin,
		drain:    *drain,
		scaleTgt: *scaleTgt, scaleMin: *scaleMin, scaleMax: *scaleMax,
		scaleIvl: *scaleIvl,
		flight:   *flight, flightSample: *flightN,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "temcor:", err)
		os.Exit(guard.ExitCode(err))
	}
}

type options struct {
	replicas        string
	replicasFile    string
	addr            string
	probeInterval   time.Duration
	probeTimeout    time.Duration
	failThreshold   int
	maxProbeBackoff time.Duration
	probation       int
	retries         int
	attemptTimeout  time.Duration
	hedge           bool
	hedgeQuantile   float64
	minHedgeDelay   time.Duration
	drain           time.Duration
	scaleTgt        float64
	scaleMin        int
	scaleMax        int
	scaleIvl        time.Duration
	flight          bool
	flightSample    int
}

// logx is the router's structured logger: JSON lines on stderr, rate
// limited, carrying trace_id/request_id when the context has a trace.
var logx = obs.NewLogger(nil, "temcor")

func run(o options) error {
	if o.replicas != "" && o.replicasFile != "" {
		return guard.Errorf(guard.ErrInvalidModel, "flags", "-replicas and -replicasfile are mutually exclusive (the file is the membership source)")
	}
	var urls []string
	if o.replicasFile != "" {
		fileURLs, err := readReplicasFile(o.replicasFile)
		if err != nil {
			return err
		}
		urls = fileURLs
	} else {
		for _, u := range strings.Split(o.replicas, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
	}
	if len(urls) == 0 {
		return guard.Errorf(guard.ErrInvalidModel, "flags", "-replicas or -replicasfile is required (temcod base URLs)")
	}
	// Process-wide collectors on the default registry; the cluster tier's
	// instruments live on the table's own registry and /metrics renders both.
	obs.RegisterProcessMetrics(obs.Default())
	obs.RegisterBuildInfo(obs.Default(), obs.BuildInfo{
		Version:   obs.Version,
		GoVersion: runtime.Version(),
	})
	obs.RegisterFlightMetrics(obs.Default())
	if o.flight {
		obs.EnableFlightRecorder(obs.FlightConfig{SampleRate: o.flightSample})
		defer obs.DisableFlightRecorder()
	}
	table, err := cluster.NewTable(urls, cluster.Config{
		ProbeInterval:   o.probeInterval,
		ProbeTimeout:    o.probeTimeout,
		FailThreshold:   o.failThreshold,
		MaxProbeBackoff: o.maxProbeBackoff,
		ProbationProbes: o.probation,
	})
	if err != nil {
		return err
	}
	router := cluster.NewRouter(table, cluster.RouterConfig{
		MaxRetries:     o.retries,
		AttemptTimeout: o.attemptTimeout,
		Hedge:          o.hedge,
		HedgeQuantile:  o.hedgeQuantile,
		MinHedgeDelay:  o.minHedgeDelay,
	})
	scaler := cluster.NewAutoscaler(table, cluster.AutoscaleConfig{
		TargetUtilization: o.scaleTgt,
		Min:               o.scaleMin,
		Max:               o.scaleMax,
		Interval:          o.scaleIvl,
	})
	table.Start()
	defer table.Close()
	scaler.Start()
	defer scaler.Close()

	p := &proxy{
		table:  table,
		router: router,
		scaler: scaler,
		drain:  o.drain,
		file:   o.replicasFile,
	}

	srv := &http.Server{Addr: o.addr, Handler: newHandler(p)}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if o.replicasFile != "" {
		// SIGHUP and an mtime poll both reconcile against the file; either
		// path alone suffices, together they cover "kill -HUP forgotten".
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for range hup {
				fmt.Println("temcor: SIGHUP, reloading", o.replicasFile)
				p.reloadFromFile()
			}
		}()
		go p.watchFile(ctx, 2*time.Second)
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("temcor: routing %d replicas on %s\n", len(urls), o.addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		logx.Error("listener failed", "err", err.Error())
		return guard.New(guard.ErrInternal, "temcor.listen", err)
	case <-ctx.Done():
	}
	fmt.Println("temcor: shutting down, draining proxied requests")
	sdctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	if err := srv.Shutdown(sdctx); err != nil {
		return guard.New(guard.ErrCanceled, "temcor.shutdown", err)
	}
	fmt.Println("temcor: drained cleanly")
	return nil
}

// proxy bundles the routing tier's live components for the HTTP handlers
// and the replicas-file reconciler.
type proxy struct {
	table  *cluster.Table
	router *cluster.Router
	scaler *cluster.Autoscaler
	drain  time.Duration
	file   string

	reloadMu sync.Mutex // serializes file reloads (SIGHUP vs mtime poll)
	lastMod  time.Time
}

// readReplicasFile parses a replicas file: one URL per line (commas also
// accepted), blank lines and #-comments ignored.
func readReplicasFile(path string) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, guard.New(guard.ErrInvalidModel, "temcor.replicasfile", err)
	}
	var urls []string
	for _, line := range strings.Split(string(raw), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, u := range strings.Split(line, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
	}
	return urls, nil
}

// reloadFromFile re-reads the replicas file and reconciles the table.
func (p *proxy) reloadFromFile() {
	p.reloadMu.Lock()
	defer p.reloadMu.Unlock()
	urls, err := readReplicasFile(p.file)
	if err != nil {
		logx.Error("replicas reload failed", "file", p.file, "err", err.Error())
		return
	}
	added, draining, err := p.reconcile(urls)
	if err != nil {
		logx.Error("replicas reconcile failed", "file", p.file, "err", err.Error())
		return
	}
	if len(added) > 0 || len(draining) > 0 {
		fmt.Printf("temcor: reload: added %v, draining %v\n", added, draining)
	}
}

// watchFile polls the replicas file's mtime and reloads on change, so a
// config-management push takes effect without a signal.
func (p *proxy) watchFile(ctx context.Context, interval time.Duration) {
	if fi, err := os.Stat(p.file); err == nil {
		p.lastMod = fi.ModTime()
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			fi, err := os.Stat(p.file)
			if err != nil {
				continue
			}
			if mod := fi.ModTime(); mod.After(p.lastMod) {
				p.lastMod = mod
				p.reloadFromFile()
			}
		}
	}
}

// reconcile drives the table toward the given membership: URLs not yet in
// the table are added (joining on probation), table members missing from
// the list are drained asynchronously (bounded by the drain budget; a
// timed-out drain leaves the replica in the table, still draining, for the
// next reconcile or a manual remove). An empty list is refused — a
// truncated config push must not drain the whole fleet.
func (p *proxy) reconcile(urls []string) (added, draining []string, err error) {
	want := map[string]bool{}
	for _, u := range urls {
		n, err := cluster.NormalizeURL(u)
		if err != nil {
			return nil, nil, err
		}
		want[n] = true
	}
	if len(want) == 0 {
		return nil, nil, guard.Errorf(guard.ErrInvalidModel, "temcor.reconcile", "replica list is empty; refusing to drain the whole fleet")
	}
	have := map[string]bool{}
	for _, r := range p.table.Replicas() {
		have[r.URL()] = true
	}
	for u := range want {
		if !have[u] {
			if _, err := p.table.Add(u); err == nil {
				added = append(added, u)
			}
		}
	}
	for u := range have {
		if !want[u] {
			draining = append(draining, u)
			go func(u string) {
				ctx, cancel := context.WithTimeout(context.Background(), p.drain)
				defer cancel()
				if err := p.table.Drain(ctx, u); err != nil {
					logx.Error("drain failed", "replica", u, "err", err.Error())
				}
			}(u)
		}
	}
	sort.Strings(added)
	sort.Strings(draining)
	return added, draining, nil
}

// statsResponse is the /statsz body: router counters next to the live
// per-replica health table, membership activity, and the autoscale signal.
type statsResponse struct {
	Router     cluster.RouterStats     `json:"router"`
	Replicas   []cluster.ReplicaStatus `json:"replicas"`
	Membership cluster.MembershipStats `json:"membership"`
	Autoscale  cluster.AutoscaleStats  `json:"autoscale"`
	Routable   int                     `json:"routable"`
	Goroutines int                     `json:"goroutines"`
	Build      obs.BuildInfo           `json:"build"`
	// Flight is the flight recorder's admission ledger; nil while recording
	// is disabled (then GET /debugz/requests answers 503 too).
	Flight        *obs.FlightStats `json:"flight,omitempty"`
	UptimeSeconds float64          `json:"uptime_seconds"`
}

// adminReplicaRequest is the POST /admin/replicas and /admin/drain body.
type adminReplicaRequest struct {
	URL string `json:"url"`
}

// newHandler builds the temcor HTTP API over the proxy's components.
func newHandler(p *proxy) http.Handler {
	table, router := p.table, p.router
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		routable := table.Routable()
		if routable == 0 {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"ready": false, "reason": "no routable replica", "routable": 0,
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"ready": true, "routable": routable, "replicas": len(table.Replicas()),
		})
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		resp := statsResponse{
			Router:        router.Stats(),
			Replicas:      table.Status(),
			Membership:    table.Membership(),
			Autoscale:     p.scaler.Stats(),
			Routable:      table.Routable(),
			Goroutines:    runtime.NumGoroutine(),
			Build:         obs.BuildInfo{Version: obs.Version, GoVersion: runtime.Version()},
			UptimeSeconds: obs.Uptime().Seconds(),
		}
		if fr := obs.Flight(); fr != nil {
			fs := fr.Stats()
			resp.Flight = &fs
		}
		writeJSON(w, http.StatusOK, resp)
	})
	// The flight-recorder API: retained request timelines with per-request
	// Chrome trace export. The router's timelines show placement, retries,
	// hedges, and per-attempt outcomes; the replica's own /debugz/requests
	// holds the serving-side half of the same trace id.
	mux.Handle(obs.FlightPath, obs.FlightHandler())
	mux.Handle(obs.FlightPath+"/", obs.FlightHandler())
	// /metrics renders the cluster registry (replica states, placements,
	// retries, hedges, ejections, membership, desired replicas) next to the
	// process-wide default registry.
	mux.Handle("/metrics", obs.Handler(table.Metrics(), obs.Default()))
	mux.HandleFunc("/infer", router.ServeInfer)
	// Admin API: live membership. GET lists, POST adds (the replica joins
	// on probation and takes no traffic until its probes pass), DELETE
	// removes immediately with no drain — the graceful path is
	// /admin/drain.
	mux.HandleFunc("/admin/replicas", p.handleAdminReplicas)
	mux.HandleFunc("/admin/drain", p.handleAdminDrain)
	// Tracing is the outermost layer: every response (including relayed
	// sheds and router-level 502/503s) echoes X-Temco-Request-Id, and each
	// /infer gets a live ReqTrace the router annotates with its placement
	// ladder before the sealed timeline reaches the flight recorder.
	return obs.TraceHTTP(mux, "/infer")
}

func (p *proxy) handleAdminReplicas(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]any{
			"replicas":   p.table.Status(),
			"membership": p.table.Membership(),
		})
	case http.MethodPost:
		url, ok := adminURL(w, r)
		if !ok {
			return
		}
		rep, err := p.table.Add(url)
		if err != nil {
			status := http.StatusBadRequest
			if strings.Contains(err.Error(), "already present") {
				status = http.StatusConflict
			}
			writeError(w, status, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"url": rep.URL(), "state": rep.State().String()})
	case http.MethodDelete:
		url, ok := adminURL(w, r)
		if !ok {
			return
		}
		if err := p.table.Remove(url); err != nil {
			status := http.StatusNotFound
			if _, nerr := cluster.NormalizeURL(url); nerr != nil {
				status = http.StatusBadRequest
			}
			writeError(w, status, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"removed": url})
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET, POST, or DELETE")
	}
}

// handleAdminDrain runs the drain protocol synchronously: mark the replica
// draining (placements stop at once), tell it to shed its own admission,
// wait for router-observed in-flight to hit zero, remove. Bounded by the
// request context and the -draintimeout budget; on timeout the replica
// stays in the table, still draining, and the call may be retried.
func (p *proxy) handleAdminDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	url, ok := adminURL(w, r)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), p.drain)
	defer cancel()
	if err := p.table.Drain(ctx, url); err != nil {
		switch {
		case errors.Is(err, guard.ErrCanceled):
			writeError(w, http.StatusGatewayTimeout, err.Error())
		case strings.Contains(err.Error(), "not in the table"):
			writeError(w, http.StatusNotFound, err.Error())
		default:
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"drained": url})
}

// adminURL extracts the target replica URL from the JSON body or the ?url=
// query parameter, writing a 400 when absent.
func adminURL(w http.ResponseWriter, r *http.Request) (string, bool) {
	if u := r.URL.Query().Get("url"); u != "" {
		return u, true
	}
	var req adminReplicaRequest
	if r.Body != nil {
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err == nil && req.URL != "" {
			return req.URL, true
		}
	}
	writeError(w, http.StatusBadRequest, `want {"url": "..."} or ?url=`)
	return "", false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]any{"error": msg, "status": status})
}
