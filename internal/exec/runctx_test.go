package exec

import (
	"context"
	"errors"
	"testing"

	"temco/internal/guard"
	"temco/internal/ir"
	"temco/internal/memplan"
	"temco/internal/tensor"
)

func guardModel(t *testing.T) *ir.Graph {
	t.Helper()
	b := ir.NewBuilder("guarded", 13)
	in := b.Input(4, 12, 12)
	x := b.ReLU(b.Conv(in, 16, 3, 1, 1))
	x = b.MaxPool(x, 2, 2)
	x = b.ReLU(b.Conv(x, 8, 3, 1, 1))
	b.Output(x)
	return b.G
}

func guardInput(g *ir.Graph, batch int) *tensor.Tensor {
	x := tensor.New(append([]int{batch}, g.Inputs[0].Shape...)...)
	x.FillNormal(tensor.NewRNG(3), 0, 1)
	return x
}

func TestRunCtxCanceled(t *testing.T) {
	g := guardModel(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCtx(ctx, g, 0, guardInput(g, 1))
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cause must still expose context.Canceled: %v", err)
	}
}

func TestRunCtxBudget(t *testing.T) {
	g := guardModel(t)
	x := guardInput(g, 2)
	p := memplan.Simulate(g, 2, 0)

	// A budget below the simulated peak must trip the guard, not OOM.
	_, err := RunCtx(context.Background(), g, p.PeakInternal-1, x)
	if !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	// The simulator's peak (with workspace) is always enough.
	res, err := RunCtx(context.Background(), g, p.PeakWithWorkspace, x)
	if err != nil {
		t.Fatalf("budget at peak must succeed: %v", err)
	}
	// Outputs must match the unguarded path exactly.
	want, err := Run(g, x)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(want.Outputs[0], res.Outputs[0]); d != 0 {
		t.Fatalf("budgeted run deviates by %v", d)
	}
}

// A kernel that panics (here: a conv node with corrupt attrs) must surface
// as a typed internal error, not a process crash.
func TestRunCtxIsolatesKernelPanic(t *testing.T) {
	g := ir.NewGraph("broken")
	in := g.Input("x", 2, 4, 4)
	bad := &ir.Node{ID: g.NewID(), Name: "badconv", Kind: ir.KindConv2D,
		Inputs: []*ir.Node{in}, Shape: []int{2, 4, 4}} // Attrs nil: n.Conv() panics
	g.Nodes = append(g.Nodes, bad)
	g.MarkOutput(bad)

	_, err := RunCtx(context.Background(), g, 0, guardInput(g, 1))
	if !errors.Is(err, guard.ErrInternal) {
		t.Fatalf("want ErrInternal, got %v", err)
	}
}

func TestRunArenaCtxGuards(t *testing.T) {
	g := guardModel(t)
	asg := memplan.AssignOffsets(g, 2)
	if err := asg.Check(); err != nil {
		t.Fatal(err)
	}
	x := guardInput(g, 2)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunArenaCtx(ctx, g, asg, 0, x)
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}

	_, err = RunArenaCtx(context.Background(), g, asg, asg.ArenaBytes-1, x)
	if !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}

	res, err := RunArenaCtx(context.Background(), g, asg, 0, x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(g, x)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(want.Outputs[0], res.Outputs[0]); d != 0 {
		t.Fatalf("arena run deviates by %v", d)
	}
}
