package exec

import (
	"testing"

	"temco/internal/ir"
	"temco/internal/memplan"
	"temco/internal/obs"
	"temco/internal/tensor"
)

func withAliasing(t *testing.T, on bool, f func()) {
	t.Helper()
	prev := memplan.SetAliasing(on)
	defer memplan.SetAliasing(prev)
	f()
}

// TestArenaBorrowsSafeInput: when nothing aliases or mutates the graph
// input's region, RunArena must use the caller's buffer directly instead
// of copying it into the arena — visible as an eliminated copy (and no
// input-sized copy) on the process-wide ledger.
func TestArenaBorrowsSafeInput(t *testing.T) {
	withAliasing(t, true, func() {
		b := ir.NewBuilder("borrow", 21)
		in := b.Input(3, 8, 8)
		b.Output(b.Conv(in, 4, 3, 1, 1))
		g := b.G
		asg := memplan.AssignOffsets(g, 1)
		if err := asg.Check(); err != nil {
			t.Fatal(err)
		}
		if !asg.Alias.BorrowableInput(in) {
			t.Fatal("conv-only consumer: input should be borrowable")
		}
		x := randIn(7, 1, 3, 8, 8)
		before := obs.CopyStatsSnapshot()
		got, err := RunArena(g, asg, x)
		if err != nil {
			t.Fatal(err)
		}
		after := obs.CopyStatsSnapshot()
		if d := after.CopiesEliminated - before.CopiesEliminated; d < 1 {
			t.Fatalf("borrow not counted: copies_eliminated delta %d", d)
		}
		inBytes := uint64(in.OutBytes(1))
		if d := after.EliminatedBytes - before.EliminatedBytes; d < inBytes {
			t.Fatalf("eliminated_bytes delta %d, want >= %d", d, inBytes)
		}
		if d := after.CopyBytes - before.CopyBytes; d != 0 {
			t.Fatalf("borrowed run still copied %d bytes", d)
		}
		want, err := Run(g, x)
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(got.Outputs[0], want.Outputs[0]); d != 0 {
			t.Fatalf("borrowed-input run deviates by %v", d)
		}
	})
}

// TestArenaInputMutationFallsBackToCopy is the regression test for the
// input-borrowing hazard: here the plan runs the relu in place on the
// input's storage, so the input must be copied into the arena (not
// borrowed) and the caller's buffer must come back untouched.
func TestArenaInputMutationFallsBackToCopy(t *testing.T) {
	withAliasing(t, true, func() {
		b := ir.NewBuilder("mutate", 22)
		in := b.Input(3, 8, 8)
		b.Output(b.ReLU(in))
		g := b.G
		asg := memplan.AssignOffsets(g, 1)
		if err := asg.Check(); err != nil {
			t.Fatal(err)
		}
		p := asg.Alias
		if r, _ := p.Root(g.Nodes[1]); r != in {
			t.Fatalf("precondition: relu should run in place on the input, roots at %s", r)
		}
		if p.BorrowableInput(in) {
			t.Fatal("input with an in-place overwriter must not be borrowable")
		}
		x := randIn(9, 1, 3, 8, 8)
		orig := x.Clone()
		got, err := RunArena(g, asg, x)
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(x, orig); d != 0 {
			t.Fatalf("caller's input buffer mutated by %v", d)
		}
		want, err := Run(g, x)
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(got.Outputs[0], want.Outputs[0]); d != 0 {
			t.Fatalf("in-place-on-copied-input run deviates by %v", d)
		}
	})
}

// aliasStressGraph exercises every aliasing mechanism at once: concat
// views, an in-place chain on the concat region, a flatten view, and a
// second use of a concat input that forces the copy fallback.
func aliasStressGraph() *ir.Graph {
	b := ir.NewBuilder("aliasmix", 23)
	in := b.Input(3, 8, 8)
	x := b.Conv(in, 4, 3, 1, 1)
	y := b.Conv(in, 4, 3, 1, 1)
	cat := b.Concat(x, y) // x aliases; y is read again below, still aliases (reads stay valid)
	r := b.ReLU(cat)
	a := b.Add(r, b.Concat(y, y)) // second concat must copy y's rows
	f := b.Flatten(a)
	b.Output(b.Linear(f, 5))
	return b.G
}

// TestArenaAliasBitIdentical: with aliasing on, the arena executor must
// reproduce the pooled interpreter bit-for-bit — and match its own
// aliasing-off output — at batch 1 (concat views active) and batch 3
// (concat copy fallback).
func TestArenaAliasBitIdentical(t *testing.T) {
	g := aliasStressGraph()
	for _, batch := range []int{1, 3} {
		x := randIn(31, batch, 3, 8, 8)
		want, err := Run(g, x)
		if err != nil {
			t.Fatal(err)
		}
		var on, off *Result
		withAliasing(t, true, func() {
			asg := memplan.AssignOffsets(g, batch)
			if err := asg.Check(); err != nil {
				t.Fatalf("batch %d: %v", batch, err)
			}
			if on, err = RunArena(g, asg, x); err != nil {
				t.Fatalf("batch %d: %v", batch, err)
			}
		})
		withAliasing(t, false, func() {
			asg := memplan.AssignOffsets(g, batch)
			if err := asg.Check(); err != nil {
				t.Fatalf("batch %d: %v", batch, err)
			}
			if off, err = RunArena(g, asg, x); err != nil {
				t.Fatalf("batch %d: %v", batch, err)
			}
		})
		for i := range want.Outputs {
			if d := tensor.MaxAbsDiff(on.Outputs[i], want.Outputs[i]); d != 0 {
				t.Fatalf("batch %d: aliased arena deviates from interpreter by %v", batch, d)
			}
			if d := tensor.MaxAbsDiff(on.Outputs[i], off.Outputs[i]); d != 0 {
				t.Fatalf("batch %d: aliasing on vs off differ by %v", batch, d)
			}
		}
	}
}
