package exec

import (
	"context"
	"fmt"

	"temco/internal/faultinject"
	"temco/internal/guard"
	"temco/internal/ir"
	"temco/internal/memplan"
	"temco/internal/obs"
	"temco/internal/ops"
	"temco/internal/tensor"
)

// RunArena executes g inside a single preallocated arena laid out by
// memplan.AssignOffsets: every internal tensor is a slice of the arena at
// its assigned offset, so the real allocation of the whole inference is
// exactly Assignment.ArenaBytes (plus fused-kernel scratch). This both
// demonstrates the memory plan end-to-end and cross-validates the
// simulator: outputs must match Run exactly.
//
// Alias-aware plans (DESIGN.md §14) place concat inputs inside the concat
// output's region (the concat step skips them), make flatten a zero-copy
// view, run dying elementwise inputs in place, and let the executor borrow
// a caller's input buffer outright when the plan proves nothing aliases or
// mutates it. All of it is plan-driven: with TEMCO_NOALIAS=1 the layout
// degrades to one region per tensor and this function behaves exactly as
// before.
//
// Outputs are copied out of the arena before returning, since their
// storage is recycled across calls.
func RunArena(g *ir.Graph, a memplan.Assignment, inputs ...*tensor.Tensor) (*Result, error) {
	return RunArenaCtx(context.Background(), g, a, 0, inputs...)
}

// copyAcct accumulates one run's copy accounting; published to the obs
// counters once at the end of the run.
type copyAcct struct {
	copied    int64
	elim      uint64
	elimBytes int64
}

func (c *copyAcct) eliminate(bytes int64) {
	c.elim++
	c.elimBytes += bytes
}

// RunArenaCtx is RunArena with resource guards: ctx is checked between
// layers (cancellation returns an error wrapping guard.ErrCanceled), and
// when budgetBytes > 0 the arena's total footprint — the single allocation
// this mode makes — plus the largest kernel workspace must fit the budget,
// otherwise guard.ErrBudgetExceeded is returned before anything is
// allocated. Kernel panics are recovered into guard.ErrInternal errors.
func RunArenaCtx(ctx context.Context, g *ir.Graph, a memplan.Assignment, budgetBytes int64, inputs ...*tensor.Tensor) (*Result, error) {
	if a.Graph != g {
		return nil, fmt.Errorf("exec: assignment was computed for a different graph")
	}
	if len(inputs) != len(g.Inputs) {
		return nil, fmt.Errorf("exec: graph %s takes %d inputs, got %d", g.Name, len(g.Inputs), len(inputs))
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("exec: graph %s has no inputs", g.Name)
	}
	batch := inputs[0].Dim(0)
	if batch != a.Batch {
		return nil, fmt.Errorf("exec: assignment planned for batch %d, inputs have %d", a.Batch, batch)
	}
	if budgetBytes > 0 {
		var maxWS int64
		for _, n := range g.Nodes {
			if ws := memplan.Workspace(n, batch); ws > maxWS {
				maxWS = ws
			}
		}
		if a.ArenaBytes+maxWS > budgetBytes {
			return nil, guard.Errorf(guard.ErrBudgetExceeded, "exec.RunArenaCtx",
				"arena needs %d bytes (+%d workspace), budget is %d",
				a.ArenaBytes, maxWS, budgetBytes)
		}
	}
	arena := make([]float32, a.ArenaBytes/4)
	view := func(n *ir.Node) (*tensor.Tensor, error) {
		off, ok := a.Offsets[n]
		if !ok {
			return nil, fmt.Errorf("exec: node %s has no arena offset", n)
		}
		shape := append([]int{batch}, n.Shape...)
		elems := int64(tensor.NumElems(shape))
		if off%4 != 0 || off/4+elems > int64(len(arena)) {
			return nil, fmt.Errorf("exec: node %s offset %d out of arena", n, off)
		}
		return tensor.FromSlice(arena[off/4:off/4+elems], shape...), nil
	}
	var acct copyAcct
	vals := make(map[*ir.Node]*tensor.Tensor, len(g.Nodes))
	for i, in := range g.Inputs {
		want := append([]int{batch}, in.Shape...)
		if !shapeEq(inputs[i].Shape, want) {
			return nil, fmt.Errorf("exec: input %d has shape %v, want %v", i, inputs[i].Shape, want)
		}
		// Borrow the caller's buffer when the plan proves it safe: nothing
		// views the input's region (a view would read the arena bytes the
		// borrow leaves unwritten) and nothing mutates it in place. The
		// plan forbids in-place on borrowable inputs by construction, so a
		// borrowed caller tensor is never written. Otherwise copy into the
		// arena — possibly at a view offset inside a concat output.
		if a.Alias.BorrowableInput(in) {
			vals[in] = inputs[i]
			acct.eliminate(in.OutBytes(batch))
			continue
		}
		dst, err := view(in)
		if err != nil {
			return nil, err
		}
		copy(dst.Data, inputs[i].Data)
		acct.copied += in.OutBytes(batch)
		vals[in] = dst
	}
	res := &Result{}
	for _, n := range g.Nodes {
		if err := ctx.Err(); err != nil {
			return nil, guard.New(guard.ErrCanceled, "exec.RunArenaCtx", err)
		}
		if n.Kind == ir.KindInput {
			continue
		}
		if faultinject.Budget(g.Name) {
			return nil, guard.Errorf(guard.ErrBudgetExceeded, "exec.RunArenaCtx",
				"injected budget failure at node %s", n)
		}
		out, err := view(n)
		if err != nil {
			return nil, err
		}
		in := make([]*tensor.Tensor, len(n.Inputs))
		for i, p := range n.Inputs {
			in[i] = vals[p]
		}
		var skip []bool
		if a.Alias != nil {
			skip = a.Alias.ConcatSkip[n]
		}
		flatView := n.Kind == ir.KindFlatten && a.Alias != nil &&
			a.Alias.StorageOf(n).Class == memplan.StorageView
		if err := guard.Safe("exec.compute", func() error {
			return compute(ctx, g.Name, n, in, out, skip, flatView, &acct)
		}); err != nil {
			return nil, fmt.Errorf("exec: node %s: %w", n, err)
		}
		vals[n] = out
		res.LayerCalls++
	}
	for _, o := range g.Outputs {
		res.Outputs = append(res.Outputs, vals[o].Clone())
	}
	obs.CountCopies(acct.copied, acct.elim, acct.elimBytes)
	return res, nil
}

// compute runs node n's kernel writing into the caller-provided output
// tensor. Concat copies only the inputs the alias plan left owned (skip
// flags mark the views already resident in out); Flatten copies unless the
// plan made it a view. The context reaches the long-running conv/fused
// kernels, which bail out mid-node when it is canceled. The elementwise
// kernels are in-place safe: when the plan put out on its input's storage
// they read each element before overwriting it.
func compute(ctx context.Context, scope string, n *ir.Node, in []*tensor.Tensor, out *tensor.Tensor, skip []bool, flatView bool, acct *copyAcct) error {
	faultinject.Kernel(scope)
	switch n.Kind {
	case ir.KindConv2D:
		if err := ops.ConvAutoCtx(ctx, out, in[0], n.W, n.B, n.Conv()); err != nil {
			return guard.New(guard.ErrCanceled, "exec.compute", err)
		}
	case ir.KindLinear:
		if err := ops.LinearCtx(ctx, out, in[0], n.W, n.B, n.Attrs.(*ir.LinearAttrs)); err != nil {
			return guard.New(guard.ErrCanceled, "exec.compute", err)
		}
	case ir.KindReLU:
		ops.ReLU(out, in[0])
	case ir.KindSiLU:
		ops.SiLU(out, in[0])
	case ir.KindSigmoid:
		ops.Sigmoid(out, in[0])
	case ir.KindBatchNorm:
		ops.BatchNorm(out, in[0], n.W, n.B)
	case ir.KindMaxPool:
		ops.MaxPool(out, in[0], n.Pool())
	case ir.KindAvgPool:
		ops.AvgPool(out, in[0], n.Pool())
	case ir.KindGlobalAvgPool:
		ops.GlobalAvgPool(out, in[0])
	case ir.KindUpsample:
		ops.Upsample(out, in[0], n.Attrs.(*ir.UpsampleAttrs).Scale)
	case ir.KindAdd:
		ops.Add(out, in[0], in[1])
	case ir.KindConcat:
		if skip != nil {
			acct.copied += ops.ConcatPartial(out, in, skip)
			for j, t := range in {
				if skip[j] {
					acct.eliminate(int64(t.Len()) * 4)
				}
			}
		} else {
			ops.Concat(out, in)
			for _, t := range in {
				acct.copied += int64(t.Len()) * 4
			}
		}
	case ir.KindFlatten:
		if flatView {
			// The plan placed out on in[0]'s storage: same bytes, same
			// order — nothing to move.
			acct.eliminate(int64(out.Len()) * 4)
		} else {
			copy(out.Data, in[0].Data)
			acct.copied += int64(out.Len()) * 4
		}
	case ir.KindSoftmax:
		ops.Softmax(out, in[0])
	case ir.KindFused:
		if err := ops.FusedCtx(ctx, out, in[0], n.Fused()); err != nil {
			return guard.New(guard.ErrCanceled, "exec.compute", err)
		}
	default:
		return fmt.Errorf("unsupported kind %v", n.Kind)
	}
	return nil
}
