package exec

import (
	"context"
	"fmt"

	"temco/internal/faultinject"
	"temco/internal/guard"
	"temco/internal/ir"
	"temco/internal/memplan"
	"temco/internal/ops"
	"temco/internal/tensor"
)

// RunArena executes g inside a single preallocated arena laid out by
// memplan.AssignOffsets: every internal tensor is a slice of the arena at
// its assigned offset, so the real allocation of the whole inference is
// exactly Assignment.ArenaBytes (plus fused-kernel scratch). This both
// demonstrates the memory plan end-to-end and cross-validates the
// simulator: outputs must match Run exactly.
//
// Outputs are copied out of the arena before returning, since their
// storage is recycled across calls.
func RunArena(g *ir.Graph, a memplan.Assignment, inputs ...*tensor.Tensor) (*Result, error) {
	return RunArenaCtx(context.Background(), g, a, 0, inputs...)
}

// RunArenaCtx is RunArena with resource guards: ctx is checked between
// layers (cancellation returns an error wrapping guard.ErrCanceled), and
// when budgetBytes > 0 the arena's total footprint — the single allocation
// this mode makes — plus the largest kernel workspace must fit the budget,
// otherwise guard.ErrBudgetExceeded is returned before anything is
// allocated. Kernel panics are recovered into guard.ErrInternal errors.
func RunArenaCtx(ctx context.Context, g *ir.Graph, a memplan.Assignment, budgetBytes int64, inputs ...*tensor.Tensor) (*Result, error) {
	if a.Graph != g {
		return nil, fmt.Errorf("exec: assignment was computed for a different graph")
	}
	if len(inputs) != len(g.Inputs) {
		return nil, fmt.Errorf("exec: graph %s takes %d inputs, got %d", g.Name, len(g.Inputs), len(inputs))
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("exec: graph %s has no inputs", g.Name)
	}
	batch := inputs[0].Dim(0)
	if batch != a.Batch {
		return nil, fmt.Errorf("exec: assignment planned for batch %d, inputs have %d", a.Batch, batch)
	}
	if budgetBytes > 0 {
		var maxWS int64
		for _, n := range g.Nodes {
			if ws := memplan.Workspace(n, batch); ws > maxWS {
				maxWS = ws
			}
		}
		if a.ArenaBytes+maxWS > budgetBytes {
			return nil, guard.Errorf(guard.ErrBudgetExceeded, "exec.RunArenaCtx",
				"arena needs %d bytes (+%d workspace), budget is %d",
				a.ArenaBytes, maxWS, budgetBytes)
		}
	}
	arena := make([]float32, a.ArenaBytes/4)
	view := func(n *ir.Node) (*tensor.Tensor, error) {
		off, ok := a.Offsets[n]
		if !ok {
			return nil, fmt.Errorf("exec: node %s has no arena offset", n)
		}
		shape := append([]int{batch}, n.Shape...)
		elems := int64(tensor.NumElems(shape))
		if off%4 != 0 || off/4+elems > int64(len(arena)) {
			return nil, fmt.Errorf("exec: node %s offset %d out of arena", n, off)
		}
		return tensor.FromSlice(arena[off/4:off/4+elems], shape...), nil
	}
	vals := make(map[*ir.Node]*tensor.Tensor, len(g.Nodes))
	for i, in := range g.Inputs {
		want := append([]int{batch}, in.Shape...)
		if !shapeEq(inputs[i].Shape, want) {
			return nil, fmt.Errorf("exec: input %d has shape %v, want %v", i, inputs[i].Shape, want)
		}
		dst, err := view(in)
		if err != nil {
			return nil, err
		}
		copy(dst.Data, inputs[i].Data)
		vals[in] = dst
	}
	res := &Result{}
	for _, n := range g.Nodes {
		if err := ctx.Err(); err != nil {
			return nil, guard.New(guard.ErrCanceled, "exec.RunArenaCtx", err)
		}
		if n.Kind == ir.KindInput {
			continue
		}
		if faultinject.Budget(g.Name) {
			return nil, guard.Errorf(guard.ErrBudgetExceeded, "exec.RunArenaCtx",
				"injected budget failure at node %s", n)
		}
		out, err := view(n)
		if err != nil {
			return nil, err
		}
		in := make([]*tensor.Tensor, len(n.Inputs))
		for i, p := range n.Inputs {
			in[i] = vals[p]
		}
		if err := guard.Safe("exec.compute", func() error { return compute(ctx, g.Name, n, in, out) }); err != nil {
			return nil, fmt.Errorf("exec: node %s: %w", n, err)
		}
		vals[n] = out
		res.LayerCalls++
	}
	for _, o := range g.Outputs {
		res.Outputs = append(res.Outputs, vals[o].Clone())
	}
	return res, nil
}

// compute runs node n's kernel writing into the caller-provided output
// tensor. Unlike the pooled Run path, Flatten copies (no aliasing inside
// an arena). The context reaches the long-running conv/fused kernels,
// which bail out mid-node when it is canceled.
func compute(ctx context.Context, scope string, n *ir.Node, in []*tensor.Tensor, out *tensor.Tensor) error {
	faultinject.Kernel(scope)
	switch n.Kind {
	case ir.KindConv2D:
		if err := ops.ConvAutoCtx(ctx, out, in[0], n.W, n.B, n.Conv()); err != nil {
			return guard.New(guard.ErrCanceled, "exec.compute", err)
		}
	case ir.KindLinear:
		if err := ops.LinearCtx(ctx, out, in[0], n.W, n.B, n.Attrs.(*ir.LinearAttrs)); err != nil {
			return guard.New(guard.ErrCanceled, "exec.compute", err)
		}
	case ir.KindReLU:
		ops.ReLU(out, in[0])
	case ir.KindSiLU:
		ops.SiLU(out, in[0])
	case ir.KindSigmoid:
		ops.Sigmoid(out, in[0])
	case ir.KindBatchNorm:
		ops.BatchNorm(out, in[0], n.W, n.B)
	case ir.KindMaxPool:
		ops.MaxPool(out, in[0], n.Pool())
	case ir.KindAvgPool:
		ops.AvgPool(out, in[0], n.Pool())
	case ir.KindGlobalAvgPool:
		ops.GlobalAvgPool(out, in[0])
	case ir.KindUpsample:
		ops.Upsample(out, in[0], n.Attrs.(*ir.UpsampleAttrs).Scale)
	case ir.KindAdd:
		ops.Add(out, in[0], in[1])
	case ir.KindConcat:
		ops.Concat(out, in)
	case ir.KindFlatten:
		copy(out.Data, in[0].Data)
	case ir.KindSoftmax:
		ops.Softmax(out, in[0])
	case ir.KindFused:
		if err := ops.FusedCtx(ctx, out, in[0], n.Fused()); err != nil {
			return guard.New(guard.ErrCanceled, "exec.compute", err)
		}
	default:
		return fmt.Errorf("unsupported kind %v", n.Kind)
	}
	return nil
}
