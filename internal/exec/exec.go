// Package exec runs layer graphs on real data. It walks the schedule,adds
// one batched NCHW tensor per node, dispatches the matching kernel from
// internal/ops, and releases tensors after their last use (mirroring the
// allocate/free discipline the memory planner simulates).
package exec

import (
	"context"
	"fmt"
	"time"

	"temco/internal/faultinject"
	"temco/internal/gemm"
	"temco/internal/guard"
	"temco/internal/ir"
	"temco/internal/memplan"
	"temco/internal/obs"
	"temco/internal/ops"
	"temco/internal/tensor"
)

// Result holds the outputs of one inference plus execution statistics.
type Result struct {
	// Outputs are the graph outputs, in graph order.
	Outputs []*tensor.Tensor
	// LayerCalls counts dispatched kernels (the paper's CPU-side layer
	// call overhead is proportional to this).
	LayerCalls int
}

// Run executes g on the given inputs (one batched [N,...] tensor per graph
// input, in graph-input order). All inputs must share the batch size.
func Run(g *ir.Graph, inputs ...*tensor.Tensor) (*Result, error) {
	return RunCtx(context.Background(), g, 0, inputs...)
}

// RunCtx is Run with resource guards: it checks ctx between layers
// (returning an error wrapping guard.ErrCanceled on cancellation or
// deadline expiry) and, when budgetBytes > 0, accounts live internal
// tensor bytes plus kernel workspace against that peak-memory budget,
// returning guard.ErrBudgetExceeded before an allocation would cross it
// instead of OOMing. The accounting mirrors memplan.Simulate, so a budget
// of Simulate(g, batch, 0).PeakWithWorkspace always suffices. A panicking
// kernel is recovered into an error wrapping guard.ErrInternal.
func RunCtx(ctx context.Context, g *ir.Graph, budgetBytes int64, inputs ...*tensor.Tensor) (*Result, error) {
	if len(inputs) != len(g.Inputs) {
		return nil, fmt.Errorf("exec: graph %s takes %d inputs, got %d", g.Name, len(g.Inputs), len(inputs))
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("exec: graph %s has no inputs", g.Name)
	}
	batch := inputs[0].Dim(0)
	vals := make(map[*ir.Node]*tensor.Tensor, len(g.Nodes))
	for i, in := range g.Inputs {
		want := append([]int{batch}, in.Shape...)
		if !shapeEq(inputs[i].Shape, want) {
			return nil, fmt.Errorf("exec: input %d has shape %v, want %v", i, inputs[i].Shape, want)
		}
		vals[in] = inputs[i]
	}
	live := memplan.Analyze(g)
	// freeAt[i] lists the nodes whose last use is schedule slot i, built
	// once so the per-step release is O(released) rather than a scan of
	// every earlier node. Outputs have End == len(Nodes): never released.
	freeAt := make([][]*ir.Node, len(g.Nodes)+1)
	for _, n := range g.Nodes {
		e := live.End[n]
		if e > len(g.Nodes) {
			e = len(g.Nodes)
		}
		freeAt[e] = append(freeAt[e], n)
	}
	// Telemetry hooks resolve once per run: one atomic load each, nil when
	// disabled (the common case, which then costs nothing per step). The
	// memory recorder tracks *measured* live bytes — summed from the actual
	// tensors held in vals, not the planner's OutBytes model — so
	// cmd/memprofile can check the static Fig. 4 prediction against what
	// this executor really keeps live.
	tr := obs.TraceFor(g.Name)
	mr := obs.MemRecorderFor(g.Name)
	// rt links per-step spans onto the owning request's timeline when the
	// serving tier attached one; nil on a plain context.
	rt := obs.RequestFrom(ctx)
	var lane uint64
	if tr != nil {
		lane = tr.Lane()
	}
	var measuredLive int64
	var liveBytes int64
	var acct copyAcct
	res := &Result{}
	for i, n := range g.Nodes {
		if err := ctx.Err(); err != nil {
			return nil, guard.New(guard.ErrCanceled, "exec.RunCtx", err)
		}
		need := n.OutBytes(batch)
		ws := memplan.Workspace(n, batch)
		if budgetBytes > 0 && liveBytes+need+ws > budgetBytes {
			return nil, guard.Errorf(guard.ErrBudgetExceeded, "exec.RunCtx",
				"node %s needs %d live bytes (+%d workspace), budget is %d",
				n, liveBytes+need, ws, budgetBytes)
		}
		if faultinject.Budget(g.Name) {
			return nil, guard.Errorf(guard.ErrBudgetExceeded, "exec.RunCtx",
				"injected budget failure at node %s", n)
		}
		liveBytes += need
		var t0 obsStart
		if tr != nil {
			t0 = beginSpan(tr)
		}
		var r0 time.Duration
		if rt != nil {
			r0 = rt.Since()
		}
		if n.Kind != ir.KindInput {
			out, err := guard.SafeValue("exec.dispatch", func() (*tensor.Tensor, error) {
				return dispatch(ctx, g.Name, n, vals, batch)
			})
			if err != nil {
				return nil, fmt.Errorf("exec: node %s: %w", n, err)
			}
			vals[n] = out
			res.LayerCalls++
			// This path materializes concat with a copy but always aliases
			// flatten (the reshape above shares storage).
			var stepCopy int64
			switch n.Kind {
			case ir.KindConcat:
				stepCopy = int64(out.Len()) * 4
				acct.copied += stepCopy
			case ir.KindFlatten:
				acct.eliminate(n.OutBytes(batch))
			}
			if tr != nil {
				endSpan(tr, t0, n, lane, i, liveBytes, -1, stepCopy)
			}
			if rt != nil {
				rt.SpanAt("exec.step", n.Name, i, r0, rt.Since()-r0)
			}
		}
		if mr != nil {
			// Count the tensor actually held for n (aliased Flatten views
			// count at their aliased size, matching the planner's model).
			measuredLive += int64(vals[n].Len()) * 4
			mr.Record(i, n.Name, measuredLive)
		}
		for _, m := range freeAt[i] {
			liveBytes -= m.OutBytes(batch)
			if mr != nil {
				measuredLive -= int64(vals[m].Len()) * 4
			}
			delete(vals, m)
		}
	}
	for _, o := range g.Outputs {
		t, ok := vals[o]
		if !ok {
			return nil, fmt.Errorf("exec: output %s was released or never computed", o)
		}
		res.Outputs = append(res.Outputs, t)
	}
	obs.CountCopies(acct.copied, acct.elim, acct.elimBytes)
	return res, nil
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// obsStart captures the tracer clock and the gemm workspace-pool counters
// at step entry, so the step's span can report its duration and how much
// kernel scratch came from the pool versus fresh allocation.
type obsStart struct {
	at   time.Duration
	pool gemm.PoolStats
}

func beginSpan(tr *obs.Tracer) obsStart {
	return obsStart{at: tr.Since(), pool: gemm.PoolStatsSnapshot()}
}

// endSpan records one per-step span. All arguments are scalars and
// interned strings; recording never allocates (see obs.Tracer.Record).
func endSpan(tr *obs.Tracer, t0 obsStart, n *ir.Node, lane uint64, step int, live, arenaOff, copyBytes int64) {
	p1 := gemm.PoolStatsSnapshot()
	tr.Record(obs.Span{
		Name: n.Name, Cat: "exec", Kind: n.Kind.String(), Lane: lane, Step: step,
		Start: t0.at, Dur: tr.Since() - t0.at,
		LiveBytes: live, ArenaOff: arenaOff,
		PackHits: p1.Hits - t0.pool.Hits, PackMisses: p1.Misses - t0.pool.Misses,
		CopyBytes: copyBytes,
	})
}

// dispatch runs node n's kernel. The context reaches the long-running
// conv/fused kernels, which check it periodically and bail out mid-node;
// a cancellation there is wrapped as guard.ErrCanceled. The faultinject
// hook may panic (recovered by the guard.SafeValue wrapper around this
// call) or sleep, simulating kernel faults and slow nodes.
func dispatch(ctx context.Context, scope string, n *ir.Node, vals map[*ir.Node]*tensor.Tensor, batch int) (*tensor.Tensor, error) {
	faultinject.Kernel(scope)
	in := make([]*tensor.Tensor, len(n.Inputs))
	for i, p := range n.Inputs {
		t, ok := vals[p]
		if !ok {
			return nil, fmt.Errorf("input %s released too early", p)
		}
		in[i] = t
	}
	outShape := append([]int{batch}, n.Shape...)
	switch n.Kind {
	case ir.KindConv2D:
		out := tensor.New(outShape...)
		if err := ops.ConvAutoCtx(ctx, out, in[0], n.W, n.B, n.Conv()); err != nil {
			return nil, guard.New(guard.ErrCanceled, "exec.dispatch", err)
		}
		return out, nil
	case ir.KindLinear:
		out := tensor.New(outShape...)
		if err := ops.LinearCtx(ctx, out, in[0], n.W, n.B, n.Attrs.(*ir.LinearAttrs)); err != nil {
			return nil, guard.New(guard.ErrCanceled, "exec.dispatch", err)
		}
		return out, nil
	case ir.KindReLU:
		out := tensor.New(outShape...)
		ops.ReLU(out, in[0])
		return out, nil
	case ir.KindSiLU:
		out := tensor.New(outShape...)
		ops.SiLU(out, in[0])
		return out, nil
	case ir.KindSigmoid:
		out := tensor.New(outShape...)
		ops.Sigmoid(out, in[0])
		return out, nil
	case ir.KindBatchNorm:
		out := tensor.New(outShape...)
		ops.BatchNorm(out, in[0], n.W, n.B)
		return out, nil
	case ir.KindMaxPool:
		out := tensor.New(outShape...)
		ops.MaxPool(out, in[0], n.Pool())
		return out, nil
	case ir.KindAvgPool:
		out := tensor.New(outShape...)
		ops.AvgPool(out, in[0], n.Pool())
		return out, nil
	case ir.KindGlobalAvgPool:
		out := tensor.New(outShape...)
		ops.GlobalAvgPool(out, in[0])
		return out, nil
	case ir.KindUpsample:
		out := tensor.New(outShape...)
		ops.Upsample(out, in[0], n.Attrs.(*ir.UpsampleAttrs).Scale)
		return out, nil
	case ir.KindAdd:
		out := tensor.New(outShape...)
		ops.Add(out, in[0], in[1])
		return out, nil
	case ir.KindConcat:
		out := tensor.New(outShape...)
		ops.Concat(out, in)
		return out, nil
	case ir.KindFlatten:
		// Pure reshape; shares the input's storage.
		return in[0].Reshape(outShape...), nil
	case ir.KindSoftmax:
		out := tensor.New(outShape...)
		ops.Softmax(out, in[0])
		return out, nil
	case ir.KindFused:
		out := tensor.New(outShape...)
		if err := ops.FusedCtx(ctx, out, in[0], n.Fused()); err != nil {
			return nil, guard.New(guard.ErrCanceled, "exec.dispatch", err)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("unsupported kind %v", n.Kind)
	}
}
