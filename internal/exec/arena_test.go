package exec

import (
	"testing"
	"testing/quick"

	"temco/internal/core"
	"temco/internal/decompose"
	"temco/internal/ir"
	"temco/internal/memplan"
	"temco/internal/tensor"
)

func TestRunArenaMatchesRun(t *testing.T) {
	b := ir.NewBuilder("arena", 5)
	in := b.Input(3, 12, 12)
	c1 := b.Conv(in, 16, 3, 1, 1)
	r1 := b.ReLU(c1)
	p := b.MaxPool(r1, 2, 2)
	c2 := b.Conv(p, 8, 3, 1, 1)
	a := b.Add(c2, b.Sigmoid(c2))
	f := b.Flatten(a)
	fc := b.Linear(f, 5)
	b.Output(fc)
	g := b.G

	x := randIn(3, 2, 3, 12, 12)
	want, err := Run(g, x)
	if err != nil {
		t.Fatal(err)
	}
	asg := memplan.AssignOffsets(g, 2)
	if err := asg.Check(); err != nil {
		t.Fatal(err)
	}
	got, err := RunArena(g, asg, x)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(got.Outputs[0], want.Outputs[0]); d != 0 {
		t.Fatalf("arena execution deviates by %v", d)
	}
}

func TestRunArenaRejectsMismatch(t *testing.T) {
	b := ir.NewBuilder("am", 1)
	in := b.Input(2, 4, 4)
	b.Output(b.ReLU(in))
	g := b.G
	asg := memplan.AssignOffsets(g, 2)
	if _, err := RunArena(g, asg, randIn(1, 3, 2, 4, 4)); err == nil {
		t.Fatal("expected batch-mismatch error")
	}
	other := b.G.Clone()
	if _, err := RunArena(other, asg, randIn(1, 2, 2, 4, 4)); err == nil {
		t.Fatal("expected graph-mismatch error")
	}
}

// TestArenaValidatesOptimizedGraphs is the end-to-end memory story: the
// TeMCO-optimized graph runs inside an arena sized by the planner, and the
// arena is much smaller than the decomposed baseline's.
func TestArenaValidatesOptimizedGraphs(t *testing.T) {
	b := ir.NewBuilder("arena2", 9)
	in := b.Input(8, 16, 16)
	x := b.ReLU(b.Conv(in, 32, 3, 1, 1))
	x = b.MaxPool(x, 2, 2)
	x = b.ReLU(b.Conv(x, 32, 3, 1, 1))
	b.Output(x)
	dg, _ := decompose.Decompose(b.G, decompose.DefaultOptions())
	og, _ := core.Optimize(dg, core.FusionOnly())

	xin := randIn(11, 2, 8, 16, 16)
	want, err := Run(og, xin)
	if err != nil {
		t.Fatal(err)
	}
	asgD := memplan.AssignOffsets(dg, 2)
	asgO := memplan.AssignOffsets(og, 2)
	if asgO.ArenaBytes >= asgD.ArenaBytes {
		t.Fatalf("optimized arena %d not smaller than decomposed %d", asgO.ArenaBytes, asgD.ArenaBytes)
	}
	got, err := RunArena(og, asgO, xin)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(got.Outputs[0], want.Outputs[0]); d != 0 {
		t.Fatalf("optimized arena execution deviates by %v", d)
	}
}

// Property: arena execution equals pooled execution on random chains.
func TestQuickArenaEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		b := ir.NewBuilder("qa", seed)
		n := b.Input(1+r.Intn(4), 8, 8)
		nodes := []*ir.Node{n}
		for i := 0; i < 2+r.Intn(6); i++ {
			switch r.Intn(4) {
			case 0:
				nodes = append(nodes, b.ReLU(nodes[r.Intn(len(nodes))]))
			case 1:
				nodes = append(nodes, b.Conv(nodes[r.Intn(len(nodes))], 1+r.Intn(6), 3, 1, 1))
			case 2:
				nodes = append(nodes, b.Sigmoid(nodes[r.Intn(len(nodes))]))
			case 3:
				a := nodes[r.Intn(len(nodes))]
				nodes = append(nodes, b.Concat(a, a))
			}
		}
		b.Output(nodes[len(nodes)-1])
		g := b.G
		batch := 1 + r.Intn(2)
		x := tensor.New(batch, g.Inputs[0].Shape[0], 8, 8)
		x.FillNormal(r, 0, 1)
		want, err := Run(g, x)
		if err != nil {
			return false
		}
		asg := memplan.AssignOffsets(g, batch)
		if asg.Check() != nil {
			return false
		}
		got, err := RunArena(g, asg, x)
		if err != nil {
			return false
		}
		return tensor.MaxAbsDiff(got.Outputs[0], want.Outputs[0]) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
