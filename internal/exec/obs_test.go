package exec

// Telemetry contract of the interpreter: RunCtx's measured memory samples
// (actual live tensor bytes per step) must reproduce memplan.Simulate's
// predicted timeline, and per-step spans must cover every dispatched
// kernel with the executor's live-byte accounting attached.

import (
	"context"
	"testing"

	"temco/internal/memplan"
	"temco/internal/obs"
)

func TestRunCtxMeasuredTimelineMatchesSimulate(t *testing.T) {
	g := guardModel(t)
	batch := 2
	x := guardInput(g, batch)

	mr := obs.EnableMemRecord(g.Name, len(g.Nodes))
	defer obs.DisableMemRecord()
	if _, err := RunCtx(context.Background(), g, 0, x); err != nil {
		t.Fatal(err)
	}
	samples := mr.Samples()
	if len(samples) != len(g.Nodes) {
		t.Fatalf("recorded %d samples, want one per node (%d)", len(samples), len(g.Nodes))
	}

	p := memplan.Simulate(g, batch, 0)
	if len(p.Events) != len(samples) {
		t.Fatalf("prediction has %d events, measurement has %d", len(p.Events), len(samples))
	}
	for i, ev := range p.Events {
		if samples[i].Step != ev.Index {
			t.Fatalf("step %d: sample index %d != event index %d", i, samples[i].Step, ev.Index)
		}
		if samples[i].LiveBytes != ev.LiveBytes {
			t.Errorf("step %d (%s): measured %d bytes, predicted %d",
				i, ev.Name, samples[i].LiveBytes, ev.LiveBytes)
		}
	}
	peak, _ := mr.Peak()
	if peak != p.PeakInternal {
		t.Errorf("measured peak %d != predicted peak %d", peak, p.PeakInternal)
	}
}

func TestRunCtxSpans(t *testing.T) {
	g := guardModel(t)
	x := guardInput(g, 1)

	tr := obs.EnableTrace(obs.TraceConfig{Scope: g.Name})
	defer obs.DisableTrace()
	res, err := RunCtx(context.Background(), g, 0, x)
	if err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	if len(spans) != res.LayerCalls {
		t.Fatalf("recorded %d spans, want one per layer call (%d)", len(spans), res.LayerCalls)
	}
	for _, sp := range spans {
		if sp.Cat != "exec" {
			t.Fatalf("span cat %q, want exec", sp.Cat)
		}
		if sp.ArenaOff != -1 {
			t.Fatalf("interpreter span %s claims arena offset %d", sp.Name, sp.ArenaOff)
		}
		if sp.LiveBytes <= 0 {
			t.Fatalf("span %s has live bytes %d, want > 0", sp.Name, sp.LiveBytes)
		}
		if sp.Dur < 0 {
			t.Fatalf("span %s has negative duration", sp.Name)
		}
	}
	// A scoped tracer must ignore runs of other graphs.
	other := obs.EnableTrace(obs.TraceConfig{Scope: "someone-else"})
	if _, err := RunCtx(context.Background(), g, 0, x); err != nil {
		t.Fatal(err)
	}
	if got := len(other.Spans()); got != 0 {
		t.Fatalf("scoped tracer recorded %d spans from a foreign graph", got)
	}
}
