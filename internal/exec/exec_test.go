package exec

import (
	"math"
	"testing"

	"temco/internal/decompose"
	"temco/internal/ir"
	"temco/internal/tensor"
)

func randIn(seed uint64, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	t.FillNormal(tensor.NewRNG(seed), 0, 1)
	return t
}

func TestRunSmallCNN(t *testing.T) {
	b := ir.NewBuilder("cnn", 1)
	in := b.Input(3, 8, 8)
	c1 := b.Conv(in, 8, 3, 1, 1)
	r1 := b.ReLU(c1)
	p := b.MaxPool(r1, 2, 2)
	f := b.Flatten(p)
	fc := b.Linear(f, 10)
	b.Output(b.Softmax(fc))

	x := randIn(2, 4, 3, 8, 8)
	res, err := Run(b.G, x)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 1 {
		t.Fatalf("outputs = %d", len(res.Outputs))
	}
	out := res.Outputs[0]
	if out.Dim(0) != 4 || out.Dim(1) != 10 {
		t.Fatalf("output shape %v", out.Shape)
	}
	// Softmax rows sum to 1.
	for bi := 0; bi < 4; bi++ {
		var s float64
		for j := 0; j < 10; j++ {
			s += float64(out.At(bi, j))
		}
		if math.Abs(s-1) > 1e-4 {
			t.Fatalf("row %d sums to %v", bi, s)
		}
	}
	if res.LayerCalls != 6 {
		t.Fatalf("layer calls = %d, want 6", res.LayerCalls)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	b := ir.NewBuilder("bad", 1)
	in := b.Input(3, 8, 8)
	b.Output(b.ReLU(in))
	if _, err := Run(b.G); err == nil {
		t.Fatal("expected error for missing input")
	}
	if _, err := Run(b.G, randIn(1, 2, 4, 8, 8)); err == nil {
		t.Fatal("expected error for wrong input shape")
	}
}

func TestRunDeterministic(t *testing.T) {
	b := ir.NewBuilder("det", 3)
	in := b.Input(4, 8, 8)
	c := b.Conv(in, 8, 3, 1, 1)
	b.Output(b.SiLU(c))
	x := randIn(5, 2, 4, 8, 8)
	r1, err := Run(b.G, x)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(b.G, x)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(r1.Outputs[0], r2.Outputs[0]) != 0 {
		t.Fatal("two runs of the same graph must agree exactly")
	}
}

func TestSkipConnectionValueFlow(t *testing.T) {
	// out = relu(x) + x must equal hand computation.
	b := ir.NewBuilder("skipval", 1)
	in := b.Input(1, 1, 2)
	r := b.ReLU(in)
	b.Output(b.Add(r, in))
	x := tensor.FromSlice([]float32{-3, 5}, 1, 1, 1, 2)
	res, err := Run(b.G, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0].Data[0] != -3 || res.Outputs[0].Data[1] != 10 {
		t.Fatalf("got %v, want [-3 10]", res.Outputs[0].Data)
	}
}

func TestMultiOutputGraph(t *testing.T) {
	b := ir.NewBuilder("multi", 1)
	in := b.Input(2, 4, 4)
	r := b.ReLU(in)
	s := b.Sigmoid(in)
	b.Output(r)
	b.Output(s)
	res, err := Run(b.G, randIn(7, 1, 2, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 2 {
		t.Fatalf("outputs = %d, want 2", len(res.Outputs))
	}
}

// TestDecomposedGraphRuns ties decompose + exec together: the decomposed
// graph must run and approximate the original output (moderate rank keeps
// the approximation meaningful).
func TestDecomposedGraphRuns(t *testing.T) {
	b := ir.NewBuilder("dec", 11)
	in := b.Input(16, 12, 12)
	c1 := b.Conv(in, 32, 3, 1, 1)
	r1 := b.ReLU(c1)
	c2 := b.Conv(r1, 16, 3, 1, 1)
	b.Output(c2)

	opts := decompose.DefaultOptions()
	opts.Ratio = 1.0 // full rank → the decomposition is exact
	dg, _ := decompose.Decompose(b.G, opts)

	x := randIn(13, 2, 16, 12, 12)
	orig, err := Run(b.G, x)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Run(dg, x)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.RelErr(dec.Outputs[0], orig.Outputs[0]); d > 1e-3 {
		t.Fatalf("full-rank decomposed output deviates by rel err %v", d)
	}
	// Low rank still runs, just less accurately.
	opts.Ratio = 0.1
	dg2, _ := decompose.Decompose(b.G, opts)
	if _, err := Run(dg2, x); err != nil {
		t.Fatal(err)
	}
}
