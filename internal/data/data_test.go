package data

import (
	"math"
	"testing"

	"temco/internal/tensor"
)

func TestClassificationDeterministic(t *testing.T) {
	a := Classification(1, 8, 10, 16, 16)
	b := Classification(1, 8, 10, 16, 16)
	if tensor.MaxAbsDiff(a.Images, b.Images) != 0 {
		t.Fatal("same seed must give identical data")
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels must be deterministic")
		}
	}
	c := Classification(2, 8, 10, 16, 16)
	if tensor.MaxAbsDiff(a.Images, c.Images) == 0 {
		t.Fatal("different seeds should differ")
	}
}

func TestClassificationShapesAndLabels(t *testing.T) {
	b := Classification(3, 12, 7, 8, 8)
	if b.Images.Dim(0) != 12 || b.Images.Dim(1) != 3 || b.Images.Dim(2) != 8 {
		t.Fatalf("image shape %v", b.Images.Shape)
	}
	for _, l := range b.Labels {
		if l < 0 || l >= 7 {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestClassSignaturesAreDistinct(t *testing.T) {
	// Same class twice should be more similar than different classes on
	// average (noise aside): check the class signature machinery works by
	// regenerating noise-free-ish means.
	b := Classification(5, 200, 4, 8, 8)
	// Per-class channel mean energy must differ across classes.
	var m [4]float64
	var n [4]int
	for i := 0; i < 200; i++ {
		c := b.Labels[i]
		for x := 0; x < 8*8*3; x++ {
			v := float64(b.Images.Data[i*8*8*3+x])
			m[c] += v * v
		}
		n[c]++
	}
	distinct := false
	for c := 1; c < 4; c++ {
		if n[c] == 0 || n[0] == 0 {
			continue
		}
		if math.Abs(m[c]/float64(n[c])-m[0]/float64(n[0])) > 1 {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("class signatures look identical; generator is broken")
	}
}

func TestSegmentationMaskConsistent(t *testing.T) {
	b := Segmentation(7, 4, 32, 32)
	if b.Masks.Dim(1) != 1 {
		t.Fatalf("mask shape %v", b.Masks.Shape)
	}
	// Mask must be binary and non-trivial (some fg, some bg).
	var fg, total int
	for _, v := range b.Masks.Data {
		if v != 0 && v != 1 {
			t.Fatalf("mask value %v not binary", v)
		}
		if v == 1 {
			fg++
		}
		total++
	}
	if fg == 0 || fg == total {
		t.Fatalf("degenerate masks: %d/%d foreground", fg, total)
	}
	// Foreground pixels must be brighter than background on average.
	var fgSum, bgSum float64
	var fgN, bgN int
	for i := 0; i < 4; i++ {
		for p := 0; p < 32*32; p++ {
			v := float64(b.Images.Data[i*3*32*32+p]) // channel 0
			if b.Masks.Data[i*32*32+p] == 1 {
				fgSum += v
				fgN++
			} else {
				bgSum += v
				bgN++
			}
		}
	}
	if fgSum/float64(fgN) <= bgSum/float64(bgN) {
		t.Fatal("foreground not distinguishable from background")
	}
}

func TestTopK(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		0.1, 0.9, 0.5, // argmax 1
		0.9, 0.1, 0.5, // argmax 0
	}, 2, 3)
	if got := TopK(logits, []int{1, 1}, 1); got != 0.5 {
		t.Fatalf("top-1 = %v, want 0.5", got)
	}
	if got := TopK(logits, []int{1, 1}, 3); got != 1.0 {
		t.Fatalf("top-3 = %v, want 1.0", got)
	}
	if got := TopK(logits, []int{1, 2}, 2); got != 1.0 {
		t.Fatalf("top-2 = %v, want 1.0", got)
	}
}

func TestTopKAgreement(t *testing.T) {
	a := tensor.FromSlice([]float32{0, 1, 0, 1, 0, 0}, 2, 3)
	if got := TopKAgreement(a, a, 1); got != 1.0 {
		t.Fatalf("self agreement = %v", got)
	}
	b := tensor.FromSlice([]float32{1, 0, 0, 0, 0, 1}, 2, 3)
	if got := TopKAgreement(a, b, 1); got != 0.0 {
		t.Fatalf("disagreement = %v", got)
	}
}

func TestDice(t *testing.T) {
	p := tensor.FromSlice([]float32{1, 1, 0, 0}, 4)
	q := tensor.FromSlice([]float32{1, 0, 1, 0}, 4)
	if got := Dice(p, q); got != 0.5 {
		t.Fatalf("dice = %v, want 0.5", got)
	}
	if got := Dice(p, p); got != 1.0 {
		t.Fatalf("self dice = %v", got)
	}
	z := tensor.New(4)
	if got := Dice(z, z); got != 1.0 {
		t.Fatalf("empty dice = %v, want 1 by convention", got)
	}
	// Soft predictions threshold at 0.5.
	soft := tensor.FromSlice([]float32{0.9, 0.6, 0.4, 0.1}, 4)
	if got := Dice(soft, p); got != 1.0 {
		t.Fatalf("thresholded dice = %v", got)
	}
}

func TestArgmax(t *testing.T) {
	l := tensor.FromSlice([]float32{0, 2, 1, 5, 0, 0}, 2, 3)
	if Argmax(l, 0) != 1 || Argmax(l, 1) != 0 {
		t.Fatal("argmax wrong")
	}
}
