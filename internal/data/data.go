// Package data provides deterministic synthetic datasets standing in for
// the paper's ILSVRC-2012 (classification) and Carvana (segmentation)
// workloads, plus the metrics the paper reports (top-5 accuracy, dice
// score). See DESIGN.md for the substitution argument: the accuracy
// experiment only needs identical inputs presented to the baseline and
// optimized models, so any deterministic, class-structured source works.
package data

import (
	"math"

	"temco/internal/tensor"
)

// ClassificationBatch is a batch of labeled images.
type ClassificationBatch struct {
	Images *tensor.Tensor // [N,3,H,W]
	Labels []int          // [N]
}

// Classification generates n labeled images over the given class count.
// Each class has a characteristic frequency/phase signature (a "texture")
// plus per-sample noise, so classes are separable but not trivially so.
func Classification(seed uint64, n, classes, h, w int) ClassificationBatch {
	r := tensor.NewRNG(seed)
	img := tensor.New(n, 3, h, w)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := r.Intn(classes)
		labels[i] = c
		// Class signature: channel-specific frequencies and phases.
		cr := tensor.NewRNG(uint64(c)*0x9e37 + 0xabcd)
		for ch := 0; ch < 3; ch++ {
			fx := 1 + cr.Float64()*3
			fy := 1 + cr.Float64()*3
			ph := cr.Float64() * 2 * math.Pi
			amp := 0.5 + cr.Float64()
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					v := amp * math.Sin(fx*float64(x)/float64(w)*2*math.Pi+ph) *
						math.Cos(fy*float64(y)/float64(h)*2*math.Pi)
					v += 0.3 * r.NormFloat64() // per-sample noise
					img.Set(float32(v), i, ch, y, x)
				}
			}
		}
	}
	return ClassificationBatch{Images: img, Labels: labels}
}

// SegmentationBatch is a batch of images with binary masks.
type SegmentationBatch struct {
	Images *tensor.Tensor // [N,3,H,W]
	Masks  *tensor.Tensor // [N,1,H,W] with {0,1} values
}

// Segmentation generates n car-silhouette-style samples: each image holds
// a randomly placed, rounded rectangular "vehicle" whose pixels differ in
// intensity from the background; the mask marks the vehicle.
func Segmentation(seed uint64, n, h, w int) SegmentationBatch {
	r := tensor.NewRNG(seed)
	img := tensor.New(n, 3, h, w)
	mask := tensor.New(n, 1, h, w)
	for i := 0; i < n; i++ {
		cy := h/4 + r.Intn(h/2)
		cx := w/4 + r.Intn(w/2)
		ry := float64(h/6 + r.Intn(h/6))
		rx := float64(w/5 + r.Intn(w/4))
		fg := 0.8 + 0.4*r.Float64()
		bg := -0.8 - 0.4*r.Float64()
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				dy := float64(y-cy) / ry
				dx := float64(x-cx) / rx
				inside := dx*dx*dx*dx+dy*dy*dy*dy <= 1 // superellipse ≈ car body
				base := bg
				if inside {
					base = fg
					mask.Set(1, i, 0, y, x)
				}
				for ch := 0; ch < 3; ch++ {
					img.Set(float32(base+0.2*r.NormFloat64()), i, ch, y, x)
				}
			}
		}
	}
	return SegmentationBatch{Images: img, Masks: mask}
}

// TopK returns the fraction of rows of logits [N,C] whose true label is
// among the k largest entries (top-1 / top-5 accuracy).
func TopK(logits *tensor.Tensor, labels []int, k int) float64 {
	n, c := logits.Dim(0), logits.Dim(1)
	hits := 0
	for i := 0; i < n; i++ {
		row := logits.Data[i*c : (i+1)*c]
		target := row[labels[i]]
		better := 0
		for _, v := range row {
			if v > target {
				better++
			}
		}
		if better < k {
			hits++
		}
	}
	return float64(hits) / float64(n)
}

// TopKAgreement returns the fraction of rows whose argmax under a is among
// the top-k of b: the paper's "optimizations do not change accuracy" check
// reduces to perfect agreement between decomposed and optimized outputs.
func TopKAgreement(a, b *tensor.Tensor, k int) float64 {
	n, c := a.Dim(0), a.Dim(1)
	hits := 0
	for i := 0; i < n; i++ {
		ra := a.Data[i*c : (i+1)*c]
		rb := b.Data[i*c : (i+1)*c]
		arg := 0
		for j, v := range ra {
			if v > ra[arg] {
				arg = j
			}
		}
		target := rb[arg]
		better := 0
		for _, v := range rb {
			if v > target {
				better++
			}
		}
		if better < k {
			hits++
		}
	}
	return float64(hits) / float64(n)
}

// Dice returns the Sørensen-Dice coefficient between a predicted mask
// (values in [0,1], thresholded at 0.5) and the ground-truth binary mask.
func Dice(pred, truth *tensor.Tensor) float64 {
	var inter, a, b float64
	for i := range pred.Data {
		p := 0.0
		if pred.Data[i] >= 0.5 {
			p = 1
		}
		t := float64(truth.Data[i])
		inter += p * t
		a += p
		b += t
	}
	if a+b == 0 {
		return 1
	}
	return 2 * inter / (a + b)
}

// Argmax returns the index of the largest element of row i in a [N,C]
// tensor.
func Argmax(logits *tensor.Tensor, i int) int {
	c := logits.Dim(1)
	row := logits.Data[i*c : (i+1)*c]
	arg := 0
	for j, v := range row {
		if v > row[arg] {
			arg = j
		}
	}
	return arg
}
