package serve

// The session's counters live on its obs.Registry and nowhere else:
// Stats() and a /metrics render must agree by construction. These tests
// pin the new Stats fields (queue wait, run time, breaker transitions),
// the exposition's validity, and the transition callback's bookkeeping.

import (
	"context"
	"strings"
	"testing"
	"time"

	"temco/internal/faultinject"
	"temco/internal/obs"
	"temco/internal/tensor"
)

func TestStatsSourcedFromRegistry(t *testing.T) {
	s, opt, _ := newTestSession(t, Config{Workers: 1})
	const runs = 3
	for i := 0; i < runs; i++ {
		if _, err := s.Infer(context.Background(), Request{Inputs: []*tensor.Tensor{serveInput(opt, uint64(i))}}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Accepted != runs || st.Completed != runs || st.Failed != 0 {
		t.Fatalf("counters after %d clean runs: %+v", runs, st)
	}
	if st.QueueWaitCount != runs {
		t.Fatalf("queue wait count %d, want one observation per request (%d)", st.QueueWaitCount, runs)
	}
	if st.QueueWaitSecondsTotal < 0 {
		t.Fatalf("negative cumulative queue wait %v", st.QueueWaitSecondsTotal)
	}
	if st.RunSecondsTotal <= 0 {
		t.Fatalf("run seconds total %v after %d runs, want > 0", st.RunSecondsTotal, runs)
	}
	if st.InFlight != 0 {
		t.Fatalf("in flight %d while idle", st.InFlight)
	}

	var b strings.Builder
	if err := s.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	expo := b.String()
	if err := obs.CheckExposition([]byte(expo)); err != nil {
		t.Fatalf("session registry renders malformed exposition: %v\n%s", err, expo)
	}
	for _, name := range []string{
		"temco_serve_accepted_total 3", "temco_serve_completed_total 3",
		"temco_serve_queue_wait_seconds_count 3", "temco_serve_engine_runs_total",
	} {
		if !strings.Contains(expo, name) {
			t.Errorf("exposition missing %q", name)
		}
	}
}

// Breaker transitions are counted in every direction: closed→open on the
// trip, open→half-open on the probe grant, half-open→closed on recovery.
func TestStatsBreakerTransitions(t *testing.T) {
	faultinject.Enable(faultinject.Config{Seed: 9, Scope: "opt-graph", KernelPanicRate: 1})
	s, opt, _ := newTestSession(t, Config{
		Workers: 1, MaxRetries: 2, RetryBackoff: time.Millisecond,
		BreakerThreshold: 2, ProbeInterval: 20 * time.Millisecond,
	})
	x := []*tensor.Tensor{serveInput(opt, 3)}
	if _, err := s.Infer(context.Background(), Request{Inputs: x}); err != nil {
		t.Fatalf("request must degrade to fallback, got %v", err)
	}
	if st := s.Stats(); st.BreakerTransitions != 1 || st.Breaker != "open" {
		t.Fatalf("after the trip: transitions=%d breaker=%s", st.BreakerTransitions, st.Breaker)
	}
	faultinject.Disable()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := s.Infer(context.Background(), Request{Inputs: x})
		if err == nil && !resp.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no recovery: err=%v stats=%+v", err, s.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// closed→open, open→half-open, half-open→closed: at least 3 (a failed
	// probe would add re-open/re-grant pairs, never break the count).
	if st := s.Stats(); st.BreakerTransitions < 3 || st.Breaker != "closed" {
		t.Fatalf("after recovery: transitions=%d breaker=%s", st.BreakerTransitions, st.Breaker)
	}
}
