package serve

// BenchmarkBatchedServe measures end-to-end serving throughput and tail
// latency through the full Session path — queue, coalescer, breaker,
// worker — under concurrent closed-loop clients, with dynamic batching off
// (the batch-1 baseline) and on at several (MaxBatchSize, window) points.
// The req/s and p99_ms metrics are the acceptance numbers recorded in
// results/batching.txt: batching at 8+ clients must deliver >=2x the
// batch-1 throughput on alexnet and vgg11 with p99 bounded by the window
// plus the batched run time.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"temco/internal/tensor"
)

func BenchmarkBatchedServe(b *testing.B) {
	type knobs struct {
		name   string
		max    int
		window time.Duration
	}
	configs := []knobs{
		{"batch1", 0, 0}, // batching off: the per-request baseline
		{"batch8_w1ms", 8, time.Millisecond},
		{"batch16_w2ms", 16, 2 * time.Millisecond},
		{"batch32_w5ms", 32, 5 * time.Millisecond},
	}
	for _, model := range []string{"alexnet", "vgg11"} {
		opt, fb := benchGraphs(b, model)
		for _, k := range configs {
			for _, clients := range []int{8, 16} {
				b.Run(fmt.Sprintf("%s/%s/clients=%d", model, k.name, clients), func(b *testing.B) {
					s, err := New(opt, fb, Config{
						Workers: 2, QueueSize: 256,
						MaxBatchSize: k.max, MaxBatchLatency: k.window,
						DefaultTimeout: 60 * time.Second,
					})
					if err != nil {
						b.Fatal(err)
					}
					ctx := context.Background()
					inputs := make([]*tensor.Tensor, clients)
					for c := range inputs {
						x := tensor.New(append([]int{1}, opt.Inputs[0].Shape...)...)
						x.FillNormal(tensor.NewRNG(uint64(17+c)), 0, 1)
						inputs[c] = x
					}
					// Warm the engines' per-bucket buffers and the client
					// rendezvous out of the timed loop.
					var warm sync.WaitGroup
					for c := 0; c < clients; c++ {
						warm.Add(1)
						go func(c int) {
							defer warm.Done()
							if _, err := s.Infer(ctx, Request{Inputs: []*tensor.Tensor{inputs[c]}}); err != nil {
								b.Error(err)
							}
						}(c)
					}
					warm.Wait()
					if b.Failed() {
						b.FailNow()
					}

					var next atomic.Int64
					lat := make([][]time.Duration, clients)
					b.ResetTimer()
					var wg sync.WaitGroup
					for c := 0; c < clients; c++ {
						wg.Add(1)
						go func(c int) {
							defer wg.Done()
							req := Request{Inputs: []*tensor.Tensor{inputs[c]}}
							for next.Add(1) <= int64(b.N) {
								t0 := time.Now()
								if _, err := s.Infer(ctx, req); err != nil {
									b.Error(err)
									return
								}
								lat[c] = append(lat[c], time.Since(t0))
							}
						}(c)
					}
					wg.Wait()
					b.StopTimer()
					if b.Failed() {
						b.FailNow()
					}

					var all []time.Duration
					for _, l := range lat {
						all = append(all, l...)
					}
					sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
					b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
					if len(all) > 0 {
						idx := (99 * len(all)) / 100
						if idx >= len(all) {
							idx = len(all) - 1
						}
						b.ReportMetric(float64(all[idx].Microseconds())/1000, "p99_ms")
					}
					if st := s.Stats(); st.BatchedRuns > 0 {
						b.ReportMetric(float64(st.BatchedRequests)/float64(st.BatchedRuns), "rows/run")
					}
					if err := s.Close(ctx); err != nil {
						b.Fatal(err)
					}
				})
			}
		}
	}
}
