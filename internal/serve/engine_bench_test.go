package serve

// BenchmarkEngineServe measures end-to-end serving throughput through the
// full Session path (queue, breaker, worker) with the compiled engine on
// vs off, on Fig. 11 models. The req/s metric is the acceptance number
// recorded in results/engine.txt.

import (
	"context"
	"fmt"
	"testing"

	"temco/internal/decompose"
	"temco/internal/experiments"
	"temco/internal/ir"
	"temco/internal/models"
	"temco/internal/tensor"
)

func benchGraphs(tb testing.TB, name string) (opt, fb *ir.Graph) {
	tb.Helper()
	spec, err := models.Get(name)
	if err != nil {
		tb.Fatal(err)
	}
	cfg := models.DefaultConfig()
	cfg.H, cfg.W = 32, 32
	v := experiments.Fusion
	if spec.HasSkips {
		v = experiments.SkipOptFusion
	}
	opt, err = experiments.BuildVariant(spec, v, cfg, decompose.DefaultOptions())
	if err != nil {
		tb.Fatal(err)
	}
	fb, err = experiments.BuildVariant(spec, experiments.Decomposed, cfg, decompose.DefaultOptions())
	if err != nil {
		tb.Fatal(err)
	}
	return opt, fb
}

func BenchmarkEngineServe(b *testing.B) {
	for _, name := range []string{"alexnet", "vgg11", "resnet18"} {
		opt, fb := benchGraphs(b, name)
		for _, engineOn := range []bool{true, false} {
			b.Run(fmt.Sprintf("%s/engine=%v", name, engineOn), func(b *testing.B) {
				s, err := New(opt, fb, Config{Workers: 1, NoEngine: !engineOn})
				if err != nil {
					b.Fatal(err)
				}
				x := tensor.New(append([]int{1}, opt.Inputs[0].Shape...)...)
				x.FillNormal(tensor.NewRNG(17), 0, 1)
				ctx := context.Background()
				req := Request{Inputs: []*tensor.Tensor{x}}
				// Warm the engine's per-batch buffers out of the timed loop.
				if _, err := s.Infer(ctx, req); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.Infer(ctx, req); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
				if err := s.Close(ctx); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}
