package serve

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed: the optimized graph is healthy and serving.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the optimized graph tripped; everything runs on the
	// fallback until the probe interval elapses.
	BreakerOpen
	// BreakerHalfOpen: the probe interval elapsed; exactly one request is
	// allowed through on the optimized graph to test recovery.
	BreakerHalfOpen
)

// String renders the state for stats endpoints and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker is the classic closed → open → half-open → closed circuit
// breaker guarding the TeMCO-optimized graph. Threshold consecutive
// failures trip it open; after probeInterval one probe request is let
// through on the optimized graph, and its outcome decides between closing
// the breaker and re-opening it for another interval. Safe for concurrent
// use: concurrent trippers and probers serialize on the mutex, and at most
// one probe is in flight at a time.
type breaker struct {
	threshold     int
	probeInterval time.Duration
	now           func() time.Time // injectable clock for deterministic tests

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive optimized-graph failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight

	trips      uint64
	probes     uint64
	probeFails uint64

	// onTransition, when set, is called on every state change while b.mu is
	// held: it must be cheap and must not re-enter the breaker. The session
	// uses it to count transitions on its metrics registry.
	onTransition func(from, to BreakerState)
}

func newBreaker(threshold int, probeInterval time.Duration) *breaker {
	return &breaker{threshold: threshold, probeInterval: probeInterval, now: time.Now}
}

// setState moves the breaker to a new state, firing onTransition. Callers
// hold b.mu.
func (b *breaker) setState(to BreakerState) {
	from := b.state
	b.state = to
	if from != to && b.onTransition != nil {
		b.onTransition(from, to)
	}
}

// allow decides the graph for the next request: useOptimized reports
// whether to run the optimized graph, and probe whether this request is the
// recovery probe (its outcome must be reported via record with probe=true).
func (b *breaker) allow() (useOptimized, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.probeInterval {
			return false, false
		}
		b.setState(BreakerHalfOpen)
		b.probing = true
		b.probes++
		return true, true
	default: // BreakerHalfOpen
		if b.probing {
			return false, false
		}
		b.probing = true
		b.probes++
		return true, true
	}
}

// record reports the outcome of a request that ran on the optimized graph.
// Requests served by the fallback never call record: fallback failures are
// the caller's to classify and must not move the breaker.
func (b *breaker) record(probe, success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
		if success {
			b.setState(BreakerClosed)
			b.fails = 0
		} else {
			b.setState(BreakerOpen)
			b.openedAt = b.now()
			b.probeFails++
		}
		return
	}
	if b.state != BreakerClosed {
		// A non-probe optimized run raced with the trip: its outcome is
		// stale, the breaker has already decided.
		return
	}
	if success {
		b.fails = 0
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		b.setState(BreakerOpen)
		b.openedAt = b.now()
		b.trips++
		b.fails = 0
	}
}

// snapshot returns the current state and counters.
func (b *breaker) snapshot() (state BreakerState, trips, probes, probeFails uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips, b.probes, b.probeFails
}
