package serve

// Request-tracing coverage of the serving tier: coalesced batches must
// link sibling request ids and land the batch/engine spans on member
// timelines, and under fault injection the flight recorder must retain
// 100% of error-classed requests (the tail-sampling policy invariant).

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"temco/internal/faultinject"
	"temco/internal/guard"
	"temco/internal/obs"
	"temco/internal/tensor"
)

// TestBatchTraceSiblingsAndSpans: concurrent traced requests that coalesce
// into one batched run each carry the window/bucket/run/scatter spans,
// link the other riders as siblings, and exactly one member per run (the
// primary) carries the engine's per-step spans.
func TestBatchTraceSiblingsAndSpans(t *testing.T) {
	opt, fb := servePair()
	s, err := New(opt, fb, Config{
		Workers: 2, MaxBatchSize: 8, MaxBatchLatency: 300 * time.Millisecond,
		DefaultTimeout: 60 * time.Second, BatchBuckets: []int{4, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	const n = 3
	tls := make([]obs.ReqTimeline, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rt := obs.NewReqTrace(obs.NewTraceContext())
			ctx := obs.ContextWithRequest(context.Background(), rt)
			_, err := s.Infer(ctx, Request{Inputs: []*tensor.Tensor{serveInput(opt, uint64(i+1))}})
			if err != nil {
				t.Errorf("request %d: %v", i, err)
			}
			tls[i] = rt.Finish(200)
		}(i)
	}
	wg.Wait()

	st := s.Stats()
	if st.BatchedRequests != n {
		t.Fatalf("requests never coalesced: %+v", st)
	}
	withEngine := 0
	for i, tl := range tls {
		stages := map[string]int{}
		for _, sp := range tl.Spans {
			stages[sp.Stage]++
		}
		for _, want := range []string{"serve.admit", "serve.queue", "batch.window", "batch.bucket", "batch.run", "batch.scatter"} {
			if stages[want] == 0 {
				t.Errorf("request %d timeline missing %s (have %v)", i, want, stages)
			}
		}
		if stages["engine.step"] > 0 {
			withEngine++
		}
		for _, sib := range tl.Siblings {
			if sib == tl.RequestID {
				t.Errorf("request %d lists itself as a sibling", i)
			}
		}
	}
	// The engine annotates the batch's primary trace: one member per run.
	if withEngine != int(st.BatchedRuns) {
		t.Fatalf("%d timelines carry engine.step spans, want one per batched run (%d)",
			withEngine, st.BatchedRuns)
	}
	if st.BatchedRuns == 1 {
		for i, tl := range tls {
			if len(tl.Siblings) != n-1 {
				t.Errorf("request %d has %d siblings, want %d: %v", i, len(tl.Siblings), n-1, tl.Siblings)
			}
		}
	}
}

// TestSoakTraceCapturesAllErrors: with fault injection on, every request
// that fails is sealed into the flight recorder — ErrorsKept equals
// ErrorsSeen and each failed request id is retrievable afterwards.
func TestSoakTraceCapturesAllErrors(t *testing.T) {
	opt, fb := servePair()
	s, err := New(opt, fb, Config{
		QueueSize: 2, Workers: 2,
		MaxRetries: 1, RetryBackoff: 500 * time.Microsecond,
		BreakerThreshold: 3, ProbeInterval: 50 * time.Millisecond,
		DefaultTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	faultinject.Enable(faultinject.Config{
		Seed:            42,
		Scope:           "opt-graph",
		KernelPanicRate: 0.08,
		BudgetRate:      0.05,
	})
	defer faultinject.Disable()

	fr := obs.EnableFlightRecorder(obs.FlightConfig{Capacity: 4096, SampleRate: 16})
	defer obs.DisableFlightRecorder()

	var (
		mu       sync.Mutex
		errIDs   []string
		shedIDs  []string
		degraded int
	)
	const clients = 6
	deadline := time.Now().Add(10 * time.Second)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				mu.Lock()
				enough := len(errIDs) >= 10 && len(shedIDs) >= 1
				mu.Unlock()
				if enough {
					return
				}
				rt := obs.NewReqTrace(obs.NewTraceContext())
				ctx := obs.ContextWithRequest(context.Background(), rt)
				resp, err := s.Infer(ctx, Request{Inputs: []*tensor.Tensor{serveInput(opt, uint64(c*100003+i))}})
				var tl obs.ReqTimeline
				switch {
				case err == nil:
					// A fallback-served response is classed "degraded" by the
					// serving tier itself and lands in the error ring.
					tl = rt.Finish(200)
					if resp.Degraded {
						mu.Lock()
						degraded++
						mu.Unlock()
					}
				case errors.Is(err, guard.ErrOverloaded):
					rt.SetStatus("shed")
					tl = rt.Finish(429)
					mu.Lock()
					shedIDs = append(shedIDs, tl.RequestID)
					mu.Unlock()
				default:
					rt.SetError(err.Error())
					tl = rt.Finish(500)
					mu.Lock()
					errIDs = append(errIDs, tl.RequestID)
					mu.Unlock()
				}
				fr.Record(tl)
			}
		}(c)
	}
	wg.Wait()

	st := fr.Stats()
	t.Logf("flight: %+v (%d error ids, %d shed ids)", st, len(errIDs), len(shedIDs))
	if len(errIDs) == 0 {
		t.Fatal("injection produced no error requests; nothing validated")
	}
	if st.ErrorsKept != st.ErrorsSeen {
		t.Fatalf("error retention broken: kept %d of %d", st.ErrorsKept, st.ErrorsSeen)
	}
	if st.ShedKept != st.ShedSeen {
		t.Fatalf("shed retention broken: kept %d of %d", st.ShedKept, st.ShedSeen)
	}
	// The error ring holds both hard failures and degraded-but-served
	// requests (the serving tier classes fallback responses non-ok).
	if st.ErrorsSeen != uint64(len(errIDs)+degraded) || st.ShedSeen != uint64(len(shedIDs)) {
		t.Fatalf("ledger disagrees with the client: %+v vs err=%d degraded=%d shed=%d",
			st, len(errIDs), degraded, len(shedIDs))
	}
	for _, id := range errIDs {
		if _, found := fr.Get(id); !found {
			t.Fatalf("error request %s not retrievable from the recorder", id)
		}
	}
}
