package serve

import (
	"context"
	"errors"
	"runtime"

	"sync"
	"temco/internal/faultinject"
	"temco/internal/guard"
	"temco/internal/tensor"
	"testing"
	"time"
)

// fakeClock is an adjustable clock for deterministic breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testBreaker(threshold int, probe time.Duration) (*breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(threshold, probe)
	b.now = clk.now
	return b, clk
}

func TestBreakerFullCycle(t *testing.T) {
	b, clk := testBreaker(3, time.Second)

	// Closed: everything runs optimized; sub-threshold failures stay closed.
	for i := 0; i < 2; i++ {
		useOpt, probe := b.allow()
		if !useOpt || probe {
			t.Fatalf("closed breaker must allow optimized, got useOpt=%v probe=%v", useOpt, probe)
		}
		b.record(false, false)
	}
	if st, _, _, _ := b.snapshot(); st != BreakerClosed {
		t.Fatalf("2/3 failures must stay closed, got %v", st)
	}

	// Third consecutive failure trips it open.
	b.allow()
	b.record(false, false)
	st, trips, _, _ := b.snapshot()
	if st != BreakerOpen || trips != 1 {
		t.Fatalf("want open after threshold, got %v trips=%d", st, trips)
	}

	// Open: requests are routed to the fallback until the interval elapses.
	if useOpt, _ := b.allow(); useOpt {
		t.Fatal("open breaker must route to fallback")
	}

	// After the probe interval, exactly one probe goes through.
	clk.advance(time.Second + time.Millisecond)
	useOpt, probe := b.allow()
	if !useOpt || !probe {
		t.Fatalf("want a probe after the interval, got useOpt=%v probe=%v", useOpt, probe)
	}
	if useOpt2, probe2 := b.allow(); useOpt2 || probe2 {
		t.Fatal("only one probe may be in flight; concurrent requests must use the fallback")
	}

	// Failed probe: back to open for another interval.
	b.record(true, false)
	st, _, probes, probeFails := b.snapshot()
	if st != BreakerOpen || probes != 1 || probeFails != 1 {
		t.Fatalf("failed probe must re-open: %v probes=%d fails=%d", st, probes, probeFails)
	}
	if useOpt, _ := b.allow(); useOpt {
		t.Fatal("must stay on fallback right after a failed probe")
	}

	// Next interval: successful probe closes the breaker.
	clk.advance(time.Second + time.Millisecond)
	if useOpt, probe := b.allow(); !useOpt || !probe {
		t.Fatalf("want second probe, got useOpt=%v probe=%v", useOpt, probe)
	}
	b.record(true, true)
	if st, _, _, _ := b.snapshot(); st != BreakerClosed {
		t.Fatalf("successful probe must close, got %v", st)
	}
	if useOpt, probe := b.allow(); !useOpt || probe {
		t.Fatal("closed again: optimized, no probe")
	}
	// A success resets the consecutive-failure count.
	b.record(false, true)
	b.allow()
	b.record(false, false)
	if st, _, _, _ := b.snapshot(); st != BreakerClosed {
		t.Fatal("one failure after reset must not trip")
	}
}

// Concurrent trippers: many goroutines reporting failures at once must trip
// the breaker exactly once and leave consistent state. Run under -race.
func TestBreakerConcurrentTrippers(t *testing.T) {
	b, _ := testBreaker(3, time.Hour)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				useOpt, probe := b.allow()
				if useOpt {
					b.record(probe, false)
				}
			}
		}()
	}
	wg.Wait()
	st, trips, _, _ := b.snapshot()
	if st != BreakerOpen {
		t.Fatalf("want open, got %v", st)
	}
	if trips != 1 {
		t.Fatalf("concurrent failures must trip exactly once, got %d", trips)
	}
}

// Stale results from optimized runs that raced with the trip must not
// disturb the open breaker.
func TestBreakerIgnoresStaleRecords(t *testing.T) {
	b, _ := testBreaker(1, time.Hour)
	b.allow()
	b.record(false, false) // trips
	b.record(false, true)  // stale success from a racing request
	if st, _, _, _ := b.snapshot(); st != BreakerOpen {
		t.Fatalf("stale non-probe success must not close the breaker, got %v", st)
	}
}

// TestCloseRacesHalfOpenProbe covers Session.Close racing an in-flight
// half-open breaker probe: the drain must complete without deadlock or
// goroutine leaks, and the breaker must land in a consistent state (the
// probing flag released, the state fully resolved by the probe's outcome —
// never stuck half-open with a phantom probe). Both drain flavors are
// exercised: graceful (the probe finishes and closes the breaker) and
// forced (the drain deadline expires, the probe is canceled mid-kernel and
// the canceled probe keeps the breaker open).
func TestCloseRacesHalfOpenProbe(t *testing.T) {
	for _, forced := range []bool{false, true} {
		name := "graceful"
		if forced {
			name = "forced"
		}
		t.Run(name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			opt, fb := servePair()
			s, err := New(opt, fb, Config{
				QueueSize: 8, Workers: 2, MaxRetries: -1,
				BreakerThreshold: 1, ProbeInterval: time.Millisecond,
				DefaultTimeout: 30 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}

			// Trip the breaker: one deterministic optimized-graph failure.
			faultinject.Enable(faultinject.Config{Seed: 1, Scope: "opt-graph", KernelPanicRate: 1})
			if _, err := s.Infer(context.Background(), Request{Inputs: []*tensor.Tensor{serveInput(opt, 1)}}); err == nil {
				t.Fatal("injected failure must surface")
			}
			if st, _, _, _ := s.br.snapshot(); st != BreakerOpen {
				t.Fatalf("breaker must be open after threshold-1 failure, got %v", st)
			}

			// Re-arm: the optimized graph now runs slowly but succeeds, so
			// the recovery probe is reliably in flight when Close lands.
			faultinject.Enable(faultinject.Config{Seed: 2, Scope: "opt-graph", SlowRate: 1, SlowDelay: 50 * time.Millisecond})
			defer faultinject.Disable()
			time.Sleep(2 * time.Millisecond) // let the probe interval elapse

			var wg sync.WaitGroup
			wg.Add(1)
			probeErrc := make(chan error, 1)
			go func() {
				defer wg.Done()
				_, err := s.Infer(context.Background(), Request{Inputs: []*tensor.Tensor{serveInput(opt, 2)}})
				probeErrc <- err
			}()
			time.Sleep(10 * time.Millisecond) // probe admitted and running

			ctx := context.Background()
			if forced {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, 5*time.Millisecond)
				defer cancel()
			} else {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, 10*time.Second)
				defer cancel()
			}
			closeErr := s.Close(ctx)
			wg.Wait()
			probeErr := <-probeErrc

			if forced {
				if closeErr == nil || !errors.Is(closeErr, guard.ErrCanceled) {
					t.Fatalf("forced drain must report ErrCanceled, got %v", closeErr)
				}
			} else if closeErr != nil {
				t.Fatalf("graceful drain: %v", closeErr)
			}

			// State consistency: no phantom probe may survive Close, and the
			// state must reflect the probe's real outcome.
			s.br.mu.Lock()
			state, probing := s.br.state, s.br.probing
			s.br.mu.Unlock()
			if probing {
				t.Fatalf("%s: probing flag stuck after Close (state %v)", name, state)
			}
			switch {
			case probeErr == nil:
				if state != BreakerClosed {
					t.Fatalf("successful probe must close the breaker, got %v", state)
				}
			case errors.Is(probeErr, guard.ErrCanceled):
				if state != BreakerOpen {
					t.Fatalf("canceled probe proves nothing and must re-open, got %v", state)
				}
			default:
				t.Fatalf("probe failed with unexpected error: %v", probeErr)
			}

			// No goroutine may outlive the drain.
			leakBy := time.Now().Add(5 * time.Second)
			for {
				runtime.GC()
				if n := runtime.NumGoroutine(); n <= before {
					break
				}
				if time.Now().After(leakBy) {
					buf := make([]byte, 1<<16)
					t.Fatalf("goroutine leak: %d before, %d after\n%s",
						before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
				}
				time.Sleep(5 * time.Millisecond)
			}
		})
	}
}
