//go:build race

package serve

// raceEnabled reports whether the race detector is active; its
// instrumentation slows the heavier model sweeps, so they subset under it.
const raceEnabled = true
