package serve

import (
	"context"
	"errors"
	"math"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"temco/internal/faultinject"
	"temco/internal/guard"
	"temco/internal/tensor"
)

// soakDuration is how long the fault-injection phase hammers the session.
// CI sets TEMCO_SOAK=30s; the default keeps local `go test` fast.
func soakDuration() time.Duration {
	if s := os.Getenv("TEMCO_SOAK"); s != "" {
		if d, err := time.ParseDuration(s); err == nil && d > 0 {
			return d
		}
	}
	return 1500 * time.Millisecond
}

// TestSoakFaultInjection is the acceptance soak: 8 concurrent clients
// hammer a session whose optimized graph suffers seeded kernel panics and
// memory-budget failures at a combined ~13% per-node rate. The session must
// return zero malformed responses, never crash, shed load with
// ErrOverloaded when the queue is full, degrade to the fallback graph after
// the breaker trips, recover within one probe interval after injection
// stops, and leak no goroutines. Run under -race in CI.
func TestSoakFaultInjection(t *testing.T) {
	before := runtime.NumGoroutine()

	opt, fb := servePair()
	probeInterval := 50 * time.Millisecond
	s, err := New(opt, fb, Config{
		QueueSize: 2, Workers: 2,
		MaxRetries: 1, RetryBackoff: 500 * time.Microsecond,
		BreakerThreshold: 3, ProbeInterval: probeInterval,
		DefaultTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	inj := faultinject.Enable(faultinject.Config{
		Seed:            42,
		Scope:           "opt-graph",
		KernelPanicRate: 0.08,
		BudgetRate:      0.05,
	})
	defer faultinject.Disable()

	const clients = 8
	var (
		ok, shed, degradedOK       atomic.Uint64
		failInternal, failBudget   atomic.Uint64
		failDegraded, failCanceled atomic.Uint64
		malformed                  atomic.Uint64
		firstMalformed             sync.Once
		malformedDesc              string
	)
	outElems := 1
	for _, d := range opt.Outputs[0].Shape {
		outElems *= d
	}

	deadline := time.Now().Add(soakDuration())
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			i := 0
			for time.Now().Before(deadline) {
				i++
				x := serveInput(opt, uint64(c*100003+i))
				resp, err := s.Infer(context.Background(), Request{
					Inputs:   []*tensor.Tensor{x},
					Priority: Priority(i%3 - 1),
				})
				if err == nil {
					// A well-formed response: one output of the right size,
					// every element finite.
					bad := ""
					if len(resp.Outputs) != 1 {
						bad = "wrong output count"
					} else if resp.Outputs[0].Len() != outElems {
						bad = "wrong output size"
					} else {
						for _, v := range resp.Outputs[0].Data {
							if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
								bad = "non-finite output"
								break
							}
						}
					}
					if bad != "" {
						malformed.Add(1)
						firstMalformed.Do(func() { malformedDesc = bad })
						continue
					}
					ok.Add(1)
					if resp.Degraded {
						degradedOK.Add(1)
					}
					continue
				}
				// Every failure must carry exactly one well-defined serving
				// classification.
				switch {
				case errors.Is(err, guard.ErrOverloaded):
					shed.Add(1)
				case errors.Is(err, guard.ErrDegraded):
					failDegraded.Add(1)
				case errors.Is(err, guard.ErrCanceled):
					failCanceled.Add(1)
				case errors.Is(err, guard.ErrBudgetExceeded):
					failBudget.Add(1)
				case errors.Is(err, guard.ErrInternal):
					failInternal.Add(1)
				default:
					malformed.Add(1)
					firstMalformed.Do(func() { malformedDesc = "untyped error: " + err.Error() })
				}
			}
		}(c)
	}
	wg.Wait()

	st := s.Stats()
	cnt := inj.Snapshot()
	t.Logf("soak: ok=%d (degraded=%d) shed=%d failInternal=%d failBudget=%d failDegraded=%d failCanceled=%d",
		ok.Load(), degradedOK.Load(), shed.Load(), failInternal.Load(), failBudget.Load(), failDegraded.Load(), failCanceled.Load())
	t.Logf("soak: stats=%+v injected=%+v", st, cnt)

	if n := malformed.Load(); n != 0 {
		t.Fatalf("%d malformed responses (first: %s)", n, malformedDesc)
	}
	if ok.Load() == 0 {
		t.Fatal("soak served nothing")
	}
	if cnt.KernelPanics == 0 || cnt.BudgetFailures == 0 {
		t.Fatalf("injection never fired: %+v", cnt)
	}
	// 8 clients vs 2 workers + 2 queue slots: shedding must have occurred.
	if shed.Load() == 0 || st.Shed == 0 {
		t.Fatal("overload must shed with ErrOverloaded")
	}
	// The faulting optimized graph must have tripped the breaker and the
	// fallback must have carried traffic.
	if st.BreakerTrips == 0 {
		t.Fatalf("breaker never tripped: %+v", st)
	}
	if degradedOK.Load() == 0 && st.DegradedServed == 0 {
		t.Fatalf("fallback never served: %+v", st)
	}
	if failCanceled.Load() != 0 {
		t.Fatalf("no deadlines configured to expire, yet %d canceled", failCanceled.Load())
	}

	// Recovery: injection stops; the breaker must close via a probe within
	// one probe interval (plus scheduling slack) and serve non-degraded.
	faultinject.Disable()
	recoverBy := time.Now().Add(probeInterval + 2*time.Second)
	recovered := false
	for time.Now().Before(recoverBy) {
		resp, err := s.Infer(context.Background(), Request{Inputs: []*tensor.Tensor{serveInput(opt, 1)}})
		if err == nil && !resp.Degraded {
			recovered = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !recovered {
		t.Fatalf("no recovery after injection stopped: %+v", s.Stats())
	}
	if st := s.Stats(); st.Breaker != "closed" || st.Probes == 0 {
		t.Fatalf("breaker must be closed via a probe after recovery: %+v", st)
	}

	// Drain and verify zero goroutine leaks.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("drain close: %v", err)
	}
	leakBy := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(leakBy) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
