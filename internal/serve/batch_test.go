package serve

// Tests for the dynamic-batching stage: bit-identity of coalesced runs
// against solo batch-1 serving (including pad-to-bucket ragged tails),
// cancellation and deadline semantics inside the accumulation window,
// priority-class separation, fault degradation and budget splitting on the
// batched path, drain behavior, the new instruments' exposition, and the
// batching soak. The batching-off passthrough is pinned as behaviorally
// unchanged.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"temco/internal/exec"
	"temco/internal/faultinject"
	"temco/internal/guard"
	"temco/internal/ir"
	"temco/internal/memplan"
	"temco/internal/obs"
	"temco/internal/tensor"
)

// raggedInput builds a [rows, sample...] input for g's first graph input.
func raggedInput(g *ir.Graph, rows int, seed uint64) *tensor.Tensor {
	x := tensor.New(append([]int{rows}, g.Inputs[0].Shape...)...)
	x.FillNormal(tensor.NewRNG(seed), 0, 1)
	return x
}

// rowOf extracts sample row k of a batched tensor as a batch-1 tensor.
func rowOf(x *tensor.Tensor, k int) *tensor.Tensor {
	per := x.Len() / x.Dim(0)
	r := tensor.New(append([]int{1}, x.Shape[1:]...)...)
	copy(r.Data, x.Data[k*per:(k+1)*per])
	return r
}

// requireBitEqual fails unless got and want agree in shape and in the exact
// bit pattern of every element. Batched serving must not perturb results
// even in the last ulp.
func requireBitEqual(t *testing.T, label string, got, want *tensor.Tensor) {
	t.Helper()
	if fmt.Sprint(got.Shape) != fmt.Sprint(want.Shape) {
		t.Fatalf("%s: shape %v, want %v", label, got.Shape, want.Shape)
	}
	for i := range got.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("%s: element %d: %v != %v (bit mismatch)", label, i, got.Data[i], want.Data[i])
		}
	}
}

// waitForStat polls the session's stats until cond holds.
func waitForStat(t *testing.T, s *Session, desc string, cond func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond(s.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s: %+v", desc, s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatchedBitIdenticalFig11 is the acceptance bit-identity sweep: on the
// Fig. 11 models, concurrent ragged requests (1–3 rows each) coalesced into
// padded batched runs must return exactly the bits a batch-1 solo session
// returns for every individual sample row.
func TestBatchedBitIdenticalFig11(t *testing.T) {
	names := []string{"alexnet", "vgg11", "resnet18", "densenet40", "unet-s"}
	if raceEnabled {
		// The detector slows the larger models ~10x; two architectures
		// (one plain, one skip-heavy) keep the race signal without the wait.
		names = []string{"alexnet", "resnet18"}
	}
	rows := []int{1, 3, 1, 2, 1}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			opt, fb := benchGraphs(t, name)
			batched, err := New(opt, fb, Config{
				Workers: 2, MaxBatchSize: 8, MaxBatchLatency: 300 * time.Millisecond,
				DefaultTimeout: 60 * time.Second, BatchBuckets: []int{4, 8},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer batched.Close(context.Background())
			solo, err := New(opt, fb, Config{
				Workers: 1, DefaultTimeout: 60 * time.Second, BatchBuckets: []int{1},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer solo.Close(context.Background())

			inputs := make([]*tensor.Tensor, len(rows))
			for i, r := range rows {
				inputs[i] = raggedInput(opt, r, uint64(1000*i+7))
			}
			resps := make([]*Response, len(rows))
			errs := make([]error, len(rows))
			var wg sync.WaitGroup
			for i := range rows {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					resps[i], errs[i] = batched.Infer(context.Background(),
						Request{Inputs: []*tensor.Tensor{inputs[i]}})
				}(i)
			}
			wg.Wait()

			for i, r := range rows {
				if errs[i] != nil {
					t.Fatalf("request %d: %v", i, errs[i])
				}
				if got := resps[i].Outputs[0].Dim(0); got != r {
					t.Fatalf("request %d: %d output rows, want %d", i, got, r)
				}
				for k := 0; k < r; k++ {
					ref, err := solo.Infer(context.Background(),
						Request{Inputs: []*tensor.Tensor{rowOf(inputs[i], k)}})
					if err != nil {
						t.Fatalf("solo reference %d/%d: %v", i, k, err)
					}
					for j := range resps[i].Outputs {
						requireBitEqual(t, fmt.Sprintf("request %d row %d output %d", i, k, j),
							rowOf(resps[i].Outputs[j], k), ref.Outputs[j])
					}
				}
			}
			st := batched.Stats()
			if st.BatchedRuns == 0 || st.BatchedRequests != uint64(len(rows)) {
				t.Fatalf("requests never coalesced: %+v", st)
			}
		})
	}
}

// A lone 3-row request pads up to the 4-bucket: the run is still
// bit-identical and the padding is visible in PaddedSlots.
func TestBatchPadsRaggedTail(t *testing.T) {
	s, opt, _ := newTestSession(t, Config{
		Workers: 1, MaxBatchSize: 8, MaxBatchLatency: 50 * time.Millisecond,
		DefaultTimeout: 30 * time.Second,
	})
	x := raggedInput(opt, 3, 11)
	resp, err := s.Infer(context.Background(), Request{Inputs: []*tensor.Tensor{x}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := exec.Run(opt, x)
	if err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, "padded ragged run", resp.Outputs[0], want.Outputs[0])
	st := s.Stats()
	if st.BatchedRuns != 1 || st.BatchedRequests != 1 {
		t.Fatalf("want one coalesced run: %+v", st)
	}
	if st.PaddedSlots != 1 {
		t.Fatalf("3 rows at bucket 4: PaddedSlots = %d, want 1", st.PaddedSlots)
	}
}

// Canceling one member mid-window must fail only that member: its
// batchmates still run and return exactly the bits an unperturbed run
// returns.
func TestCancelMidWindowSparesBatchmates(t *testing.T) {
	s, opt, _ := newTestSession(t, Config{
		Workers: 1, MaxBatchSize: 8, MaxBatchLatency: 1500 * time.Millisecond,
		DefaultTimeout: 30 * time.Second,
	})
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	var errA error
	var respB *Response
	var errB error
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		_, errA = s.Infer(ctxA, Request{Inputs: []*tensor.Tensor{serveInput(opt, 1)}})
	}()
	waitForStat(t, s, "first member in window", func(st Stats) bool { return st.BatchPending == 1 })

	xB := serveInput(opt, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		respB, errB = s.Infer(context.Background(), Request{Inputs: []*tensor.Tensor{xB}})
	}()
	waitForStat(t, s, "second member in window", func(st Stats) bool { return st.BatchPending == 2 })

	cancelA()
	wg.Wait()

	if !errors.Is(errA, guard.ErrCanceled) {
		t.Fatalf("canceled member: want ErrCanceled, got %v", errA)
	}
	if errB != nil {
		t.Fatalf("batchmate of a canceled member failed: %v", errB)
	}
	if respB.Degraded {
		t.Fatal("batchmate degraded with no faults")
	}
	want, err := exec.Run(opt, xB)
	if err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, "surviving batchmate", respB.Outputs[0], want.Outputs[0])
	st := s.Stats()
	if st.BatchPending != 0 {
		t.Fatalf("window drained but BatchPending = %d", st.BatchPending)
	}
	if st.BatchedRuns != 1 {
		t.Fatalf("survivor must run batched: %+v", st)
	}
}

// A deadline that cannot survive the accumulation window bypasses batching:
// the request succeeds solo instead of dying in the window.
func TestTightDeadlineBypassesBatching(t *testing.T) {
	s, opt, _ := newTestSession(t, Config{
		Workers: 1, MaxBatchSize: 8, MaxBatchLatency: 300 * time.Millisecond,
		DefaultTimeout: 60 * time.Second,
	})
	resp, err := s.Infer(context.Background(), Request{
		Inputs:  []*tensor.Tensor{serveInput(opt, 5)},
		Timeout: 100 * time.Millisecond, // < the 300ms window: must not wait
	})
	if err != nil {
		t.Fatalf("tight-deadline request: %v", err)
	}
	if resp.Degraded {
		t.Fatal("unexpected degradation")
	}
	st := s.Stats()
	if st.BatchBypass != 1 {
		t.Fatalf("BatchBypass = %d, want 1", st.BatchBypass)
	}
	if st.BatchedRuns != 0 {
		t.Fatalf("tight-deadline request must not run batched: %+v", st)
	}
	// A deadline that fits the window still batches.
	if _, err := s.Infer(context.Background(), Request{Inputs: []*tensor.Tensor{serveInput(opt, 6)}}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.BatchedRuns != 1 {
		t.Fatalf("roomy-deadline request must batch: %+v", st)
	}
}

// With batching off (the default), the pipeline is behaviorally unchanged:
// no coalescer instruments move, and the full bucket ladder is still
// planned at session start so multi-row requests never hit lazy layout
// planning.
func TestBatchingDisabledUnchanged(t *testing.T) {
	s, opt, _ := newTestSession(t, Config{Workers: 1})
	// The default ladder is planned eagerly at session start even with
	// batching off — asserted before any request can lazily add layouts.
	optEng, fbEng := s.Engines()
	if optEng == nil || fbEng == nil {
		t.Fatal("engines must compile for the test graphs")
	}
	for _, got := range []string{
		fmt.Sprint(optEng.Stats().PlannedBatches),
		fmt.Sprint(fbEng.Stats().PlannedBatches),
	} {
		if got != "[1 4 8 16 32]" {
			t.Fatalf("planned ladder %s, want [1 4 8 16 32]", got)
		}
	}
	for i := 0; i < 3; i++ {
		x := raggedInput(opt, i+1, uint64(i)) // mixed row counts, all solo
		resp, err := s.Infer(context.Background(), Request{Inputs: []*tensor.Tensor{x}})
		if err != nil {
			t.Fatal(err)
		}
		want, err := exec.Run(opt, x)
		if err != nil {
			t.Fatal(err)
		}
		requireBitEqual(t, fmt.Sprintf("solo rows=%d", i+1), resp.Outputs[0], want.Outputs[0])
	}
	st := s.Stats()
	if st.Batching {
		t.Fatal("batching reported on for a default config")
	}
	if st.BatchedRuns != 0 || st.BatchedRequests != 0 || st.PaddedSlots != 0 ||
		st.BatchBypass != 0 || st.BatchSplits != 0 || st.BatchPending != 0 || st.BatchWaitCount != 0 {
		t.Fatalf("batching off, yet coalescer instruments moved: %+v", st)
	}
	if got := fmt.Sprint(s.BatchBuckets()); got != "[1]" {
		t.Fatalf("runtime buckets %s, want [1] with batching off", got)
	}
}

// A request whose inputs do not look like [N, sample...] cannot batch: it
// bypasses the coalescer and fails (or runs) with exactly the solo path's
// classification.
func TestUnbatchableShapeRunsSolo(t *testing.T) {
	s, opt, _ := newTestSession(t, Config{
		Workers: 1, MaxBatchSize: 4, MaxBatchLatency: 50 * time.Millisecond,
	})
	x := tensor.New(opt.Inputs[0].Shape...) // sample shape with no batch dim
	x.FillNormal(tensor.NewRNG(3), 0, 1)
	_, err := s.Infer(context.Background(), Request{Inputs: []*tensor.Tensor{x}})
	if !errors.Is(err, guard.ErrInvalidModel) {
		t.Fatalf("want the executor's ErrInvalidModel, got %v", err)
	}
	st := s.Stats()
	if st.BatchBypass != 1 || st.BatchedRuns != 0 {
		t.Fatalf("unbatchable request must bypass: %+v", st)
	}
}

// A single request already at or beyond the batch cap gains nothing from
// coalescing: it bypasses the window and runs solo, correctly.
func TestOversizedRequestBypassesBatching(t *testing.T) {
	s, opt, _ := newTestSession(t, Config{
		Workers: 1, MaxBatchSize: 4, MaxBatchLatency: 50 * time.Millisecond,
	})
	x := raggedInput(opt, 6, 9)
	resp, err := s.Infer(context.Background(), Request{Inputs: []*tensor.Tensor{x}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := exec.Run(opt, x)
	if err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, "oversized solo run", resp.Outputs[0], want.Outputs[0])
	st := s.Stats()
	if st.BatchBypass != 1 || st.BatchedRuns != 0 {
		t.Fatalf("oversized request must bypass: %+v", st)
	}
}

// Requests of different priority classes never share a batch.
func TestBatchPriorityClassesSeparate(t *testing.T) {
	s, opt, _ := newTestSession(t, Config{
		Workers: 1, MaxBatchSize: 8, MaxBatchLatency: 250 * time.Millisecond,
		DefaultTimeout: 30 * time.Second,
	})
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, p := range []Priority{PriorityHigh, PriorityLow} {
		wg.Add(1)
		go func(i int, p Priority) {
			defer wg.Done()
			_, errs[i] = s.Infer(context.Background(), Request{
				Inputs: []*tensor.Tensor{serveInput(opt, uint64(i))}, Priority: p,
			})
		}(i, p)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.BatchedRuns != 2 || st.BatchedRequests != 2 {
		t.Fatalf("distinct priorities must dispatch as distinct batches: %+v", st)
	}
}

// A faulting optimized graph degrades a batched run exactly like a solo
// run: the batch retries as a unit, trips the breaker once, and every
// member gets the fallback's (bit-identical) outputs flagged Degraded.
func TestBatchedFaultDegradesLikeSolo(t *testing.T) {
	faultinject.Enable(faultinject.Config{Seed: 5, Scope: "opt-graph", KernelPanicRate: 1})
	defer faultinject.Disable()
	s, opt, fb := newTestSession(t, Config{
		Workers: 1, MaxBatchSize: 8, MaxBatchLatency: 200 * time.Millisecond,
		MaxRetries: 2, RetryBackoff: time.Millisecond,
		BreakerThreshold: 1, ProbeInterval: 10 * time.Second,
		DefaultTimeout: 30 * time.Second,
	})
	_ = opt
	const n = 3
	inputs := make([]*tensor.Tensor, n)
	resps := make([]*Response, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		inputs[i] = serveInput(fb, uint64(40+i))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = s.Infer(context.Background(), Request{Inputs: []*tensor.Tensor{inputs[i]}})
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d must degrade, not fail: %v", i, errs[i])
		}
		if !resps[i].Degraded {
			t.Fatalf("request %d served by the faulting optimized graph?", i)
		}
		// The fallback pair is built with identical weights, so the degraded
		// outputs are bit-identical to a direct fallback run.
		want, err := exec.Run(fb, inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		requireBitEqual(t, fmt.Sprintf("degraded member %d", i), resps[i].Outputs[0], want.Outputs[0])
	}
	st := s.Stats()
	if st.BreakerTrips == 0 {
		t.Fatalf("breaker never tripped: %+v", st)
	}
	if st.DegradedServed != n {
		t.Fatalf("DegradedServed = %d, want %d", st.DegradedServed, n)
	}
	if st.BatchedRuns < 2 {
		t.Fatalf("want at least a failed and a fallback batched attempt: %+v", st)
	}
	if st.Failed != 0 {
		t.Fatalf("no request may fail: %+v", st)
	}
}

// arenaCost is the engine's budget charge for g at a batch size: the
// planned arena slab plus the largest kernel workspace.
func arenaCost(g *ir.Graph, batch int) int64 {
	cost := memplan.AssignOffsets(g, batch).ArenaBytes
	var ws int64
	for _, n := range g.Nodes {
		if w := memplan.Workspace(n, batch); w > ws {
			ws = w
		}
	}
	return cost + ws
}

// A batch whose padded bucket exceeds the memory budget the members would
// individually fit under splits back to solo runs — every member still
// succeeds.
func TestBatchBudgetSplitsToSolo(t *testing.T) {
	opt, fb := servePair()
	budget := arenaCost(opt, 4) - 1
	if solo := arenaCost(opt, 1); solo >= budget {
		t.Fatalf("test invariant: solo cost %d must fit under budget %d", solo, budget)
	}
	s, err := New(opt, fb, Config{
		Workers: 1, MaxBatchSize: 4, MaxBatchLatency: 400 * time.Millisecond,
		BudgetBytes: budget, BreakerThreshold: 100,
		DefaultTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	const n = 3
	inputs := make([]*tensor.Tensor, n)
	resps := make([]*Response, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	launch := func(i int) {
		inputs[i] = serveInput(opt, uint64(60+i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			resps[i], errs[i] = s.Infer(context.Background(), Request{Inputs: []*tensor.Tensor{inputs[i]}})
		}()
	}
	launch(0)
	waitForStat(t, s, "window open", func(st Stats) bool { return st.BatchPending >= 1 })
	launch(1)
	launch(2)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d must succeed solo after the split: %v", i, errs[i])
		}
		want, err := exec.Run(opt, inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		requireBitEqual(t, fmt.Sprintf("split member %d", i), resps[i].Outputs[0], want.Outputs[0])
	}
	st := s.Stats()
	if st.BatchSplits == 0 {
		t.Fatalf("padded bucket over budget must split: %+v", st)
	}
	if st.Failed != 0 {
		t.Fatalf("no request may fail: %+v", st)
	}
}

// Close during an open accumulation window dispatches the held batch
// immediately: the request completes and the drain does not wait out the
// window.
func TestCloseMidWindowCompletesHeldRequest(t *testing.T) {
	opt, fb := servePair()
	window := 2 * time.Second
	s, err := New(opt, fb, Config{
		Workers: 1, MaxBatchSize: 8, MaxBatchLatency: window,
		DefaultTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	var resp *Response
	var inferErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, inferErr = s.Infer(context.Background(), Request{Inputs: []*tensor.Tensor{serveInput(opt, 21)}})
	}()
	waitForStat(t, s, "request held in window", func(st Stats) bool { return st.BatchPending == 1 })

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("drain close: %v", err)
	}
	<-done
	if inferErr != nil {
		t.Fatalf("held request must complete on drain: %v", inferErr)
	}
	if len(resp.Outputs) != 1 {
		t.Fatalf("malformed response: %+v", resp)
	}
	if elapsed := time.Since(start); elapsed >= window {
		t.Fatalf("drain waited out the %v window (%v): close must dispatch early", window, elapsed)
	}
}

// The coalescer's instruments render as valid Prometheus exposition on the
// session registry, alongside the solo-path families.
func TestBatchMetricsExposition(t *testing.T) {
	s, opt, _ := newTestSession(t, Config{
		Workers: 1, MaxBatchSize: 8, MaxBatchLatency: 50 * time.Millisecond,
		DefaultTimeout: 30 * time.Second,
	})
	if _, err := s.Infer(context.Background(), Request{Inputs: []*tensor.Tensor{raggedInput(opt, 3, 8)}}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := s.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	expo := b.String()
	if err := obs.CheckExposition([]byte(expo)); err != nil {
		t.Fatalf("malformed exposition: %v\n%s", err, expo)
	}
	for _, want := range []string{
		"temco_serve_batched_runs_total 1",
		"temco_serve_batched_requests_total 1",
		"temco_serve_padded_slots_total 1",
		"temco_serve_batch_bypass_total 0",
		"temco_serve_batch_splits_total 0",
		"temco_serve_batch_pending 0",
		"temco_serve_batch_wait_seconds_count 1",
		"temco_serve_batch_occupancy_count 1",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestSoakBatching hammers a batching session with concurrent mixed-priority
// clients under seeded kernel and budget faults: zero malformed responses,
// every failure typed, real coalescing throughout, recovery after the
// faults stop, and no goroutine leaks. CI runs it under -race with
// TEMCO_SOAK extending the duration.
func TestSoakBatching(t *testing.T) {
	before := runtime.NumGoroutine()

	opt, fb := servePair()
	probeInterval := 50 * time.Millisecond
	s, err := New(opt, fb, Config{
		QueueSize: 32, Workers: 2,
		MaxBatchSize: 8, MaxBatchLatency: 500 * time.Microsecond,
		MaxRetries: 1, RetryBackoff: 500 * time.Microsecond,
		BreakerThreshold: 3, ProbeInterval: probeInterval,
		DefaultTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	inj := faultinject.Enable(faultinject.Config{
		Seed:            43,
		Scope:           "opt-graph",
		KernelPanicRate: 0.05,
		BudgetRate:      0.03,
	})
	defer faultinject.Disable()

	const clients = 8
	var (
		ok, shed, typedFail atomic.Uint64
		malformed           atomic.Uint64
		firstMalformed      sync.Once
		malformedDesc       string
	)
	outElems := 1
	for _, d := range opt.Outputs[0].Shape {
		outElems *= d
	}

	deadline := time.Now().Add(soakDuration())
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			i := 0
			for time.Now().Before(deadline) {
				i++
				x := serveInput(opt, uint64(c*200003+i))
				resp, err := s.Infer(context.Background(), Request{
					Inputs:   []*tensor.Tensor{x},
					Priority: Priority(i%3 - 1),
				})
				if err == nil {
					bad := ""
					if len(resp.Outputs) != 1 {
						bad = "wrong output count"
					} else if resp.Outputs[0].Len() != outElems {
						bad = "wrong output size"
					} else {
						for _, v := range resp.Outputs[0].Data {
							if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
								bad = "non-finite output"
								break
							}
						}
					}
					if bad != "" {
						malformed.Add(1)
						firstMalformed.Do(func() { malformedDesc = bad })
						continue
					}
					ok.Add(1)
					continue
				}
				switch {
				case errors.Is(err, guard.ErrOverloaded):
					shed.Add(1)
				case errors.Is(err, guard.ErrDegraded),
					errors.Is(err, guard.ErrBudgetExceeded),
					errors.Is(err, guard.ErrInternal):
					typedFail.Add(1)
				case errors.Is(err, guard.ErrCanceled):
					malformed.Add(1)
					firstMalformed.Do(func() { malformedDesc = "canceled with no expiring deadline: " + err.Error() })
				default:
					malformed.Add(1)
					firstMalformed.Do(func() { malformedDesc = "untyped error: " + err.Error() })
				}
			}
		}(c)
	}
	wg.Wait()

	st := s.Stats()
	cnt := inj.Snapshot()
	t.Logf("soak: ok=%d shed=%d typedFail=%d stats=%+v injected=%+v",
		ok.Load(), shed.Load(), typedFail.Load(), st, cnt)

	if n := malformed.Load(); n != 0 {
		t.Fatalf("%d malformed responses (first: %s)", n, malformedDesc)
	}
	if ok.Load() == 0 {
		t.Fatal("soak served nothing")
	}
	if cnt.KernelPanics == 0 {
		t.Fatalf("injection never fired: %+v", cnt)
	}
	// 8 clients against a sub-millisecond window must actually coalesce.
	if st.BatchedRuns == 0 || st.BatchedRequests <= st.BatchedRuns {
		t.Fatalf("soak never coalesced more than one request per run: %+v", st)
	}
	if st.BatchPending != 0 {
		t.Fatalf("idle session holds %d pending batch members", st.BatchPending)
	}

	// Recovery: with injection off, the breaker must close via a probe and
	// serve non-degraded within a few intervals.
	faultinject.Disable()
	recoverBy := time.Now().Add(probeInterval + 2*time.Second)
	recovered := false
	for time.Now().Before(recoverBy) {
		resp, err := s.Infer(context.Background(), Request{Inputs: []*tensor.Tensor{serveInput(opt, 1)}})
		if err == nil && !resp.Degraded {
			recovered = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !recovered {
		t.Fatalf("no recovery after injection stopped: %+v", s.Stats())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("drain close: %v", err)
	}
	leakBy := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(leakBy) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
