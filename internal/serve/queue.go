package serve

import (
	"container/heap"
	"context"
	"sync"
	"time"

	"temco/internal/obs"
)

// Priority orders queued requests: higher priorities are dequeued first;
// within a priority, FIFO by admission order.
type Priority int

const (
	PriorityLow    Priority = -1
	PriorityNormal Priority = 0
	PriorityHigh   Priority = 1
)

// item is one admitted request waiting for (or being run by) a worker.
type item struct {
	ctx  context.Context
	req  *Request
	enq  time.Time
	seq  uint64      // admission order, for FIFO within a priority
	done chan result // buffered(1); the worker delivers exactly once
	idx  int         // heap index

	// queued is the time from admission until a worker started on the
	// request (for batched requests: until the microbatch dispatched to a
	// worker, so the accumulation window counts as queueing). Set exactly
	// once, before any processing.
	queued time.Duration
	// rows is the request's sample-row count, cached by the coalescer
	// (0 until classified; -1 when the inputs are not batchable).
	rows int
	// rt is the request's trace, resolved once at admission from the
	// caller context (nil when the caller attached none).
	rt *obs.ReqTrace
}

type result struct {
	resp *Response
	err  error
}

// queue is a bounded priority queue with blocking pop. Admission beyond the
// capacity fails immediately (the caller sheds load); pop blocks until an
// item arrives or the queue is closed.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  itemHeap
	cap    int
	seq    uint64
	closed bool
}

func newQueue(capacity int) *queue {
	q := &queue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push admits it, returning false when the queue is full or closed.
func (q *queue) push(it *item) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.items) >= q.cap {
		return false
	}
	q.seq++
	it.seq = q.seq
	heap.Push(&q.items, it)
	q.cond.Signal()
	return true
}

// pop blocks until an item is available or the queue is closed and drained;
// the second return is false only in the latter case.
func (q *queue) pop() (*item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	return heap.Pop(&q.items).(*item), true
}

// popUntil is pop with a deadline: it blocks until an item arrives, the
// deadline passes, or the queue is closed and drained. It returns
// (item, true) on arrival, (nil, true) when the deadline expired with the
// queue still open (the coalescer's accumulation window ran out), and
// (nil, false) once the queue is closed and empty.
func (q *queue) popUntil(deadline time.Time) (*item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var wake *time.Timer
	defer func() {
		if wake != nil {
			wake.Stop()
		}
	}()
	for len(q.items) == 0 && !q.closed {
		d := time.Until(deadline)
		if d <= 0 {
			return nil, true
		}
		if wake == nil {
			// cond.Wait cannot time out; a one-shot broadcast at the
			// deadline bounds the wait without polling.
			wake = time.AfterFunc(d, q.cond.Broadcast)
		}
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	return heap.Pop(&q.items).(*item), true
}

// close stops admission. Queued items remain poppable so workers can drain
// them; once empty, pops return false.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// depth reports the number of queued (not yet popped) items.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// itemHeap orders by (priority desc, seq asc).
type itemHeap []*item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].req.Priority != h[j].req.Priority {
		return h[i].req.Priority > h[j].req.Priority
	}
	return h[i].seq < h[j].seq
}
func (h itemHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *itemHeap) Push(x any) {
	it := x.(*item)
	it.idx = len(*h)
	*h = append(*h, it)
}
func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}
