package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"temco/internal/exec"
	"temco/internal/faultinject"
	"temco/internal/guard"
	"temco/internal/ir"
	"temco/internal/tensor"
)

// buildGraph builds a small conv model under the given name. Identical
// seeds give the optimized/fallback pair identical weights, so outputs are
// numerically interchangeable — only the graph names (the fault-injection
// scopes) differ.
func buildGraph(name string) *ir.Graph {
	b := ir.NewBuilder(name, 13)
	in := b.Input(3, 16, 16)
	x := b.ReLU(b.Conv(in, 8, 3, 1, 1))
	x = b.MaxPool(x, 2, 2)
	x = b.ReLU(b.Conv(x, 8, 3, 1, 1))
	b.Output(x)
	return b.G
}

func servePair() (opt, fb *ir.Graph) {
	return buildGraph("opt-graph"), buildGraph("fb-graph")
}

func serveInput(g *ir.Graph, seed uint64) *tensor.Tensor {
	x := tensor.New(append([]int{1}, g.Inputs[0].Shape...)...)
	x.FillNormal(tensor.NewRNG(seed), 0, 1)
	return x
}

func newTestSession(t *testing.T, cfg Config) (*Session, *ir.Graph, *ir.Graph) {
	t.Helper()
	opt, fb := servePair()
	s, err := New(opt, fb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return s, opt, fb
}

func TestInferMatchesDirectRun(t *testing.T) {
	s, opt, _ := newTestSession(t, Config{})
	x := serveInput(opt, 7)
	resp, err := s.Infer(context.Background(), Request{Inputs: []*tensor.Tensor{x}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Degraded || resp.Retries != 0 {
		t.Fatalf("healthy session: degraded=%v retries=%d", resp.Degraded, resp.Retries)
	}
	want, err := exec.Run(opt, x)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(want.Outputs[0], resp.Outputs[0]); d != 0 {
		t.Fatalf("served output deviates from direct run by %v", d)
	}
}

func TestInferRejectsEmptyRequest(t *testing.T) {
	s, _, _ := newTestSession(t, Config{})
	_, err := s.Infer(context.Background(), Request{})
	if !errors.Is(err, guard.ErrInvalidModel) {
		t.Fatalf("want ErrInvalidModel, got %v", err)
	}
}

func TestNewRejectsMismatchedFallback(t *testing.T) {
	opt := buildGraph("a")
	b := ir.NewBuilder("b", 13)
	in := b.Input(3, 16, 16)
	b.Output(b.ReLU(in))
	b.Output(b.Sigmoid(in))
	if _, err := New(opt, b.G, Config{}); !errors.Is(err, guard.ErrInvalidModel) {
		t.Fatalf("want ErrInvalidModel for mismatched arity, got %v", err)
	}
}

// A full admission queue must shed load immediately with ErrOverloaded.
func TestOverloadShedding(t *testing.T) {
	faultinject.Enable(faultinject.Config{
		Seed: 1, Scope: "opt-graph", SlowRate: 1, SlowDelay: 50 * time.Millisecond,
	})
	defer faultinject.Disable()
	s, opt, _ := newTestSession(t, Config{Workers: 1, QueueSize: 1})

	type out struct{ err error }
	results := make(chan out, 6)
	for i := 0; i < 6; i++ {
		go func(seed uint64) {
			_, err := s.Infer(context.Background(), Request{Inputs: []*tensor.Tensor{serveInput(opt, seed)}})
			results <- out{err}
		}(uint64(i))
	}
	var ok, shed int
	for i := 0; i < 6; i++ {
		r := <-results
		switch {
		case r.err == nil:
			ok++
		case errors.Is(r.err, guard.ErrOverloaded):
			shed++
		default:
			t.Fatalf("unexpected error: %v", r.err)
		}
	}
	// 1 worker + 1 queue slot: at least 4 of 6 concurrent requests shed
	// (5 when all pushes land before the worker wakes).
	if shed < 4 || ok < 1 {
		t.Fatalf("want >=4 shed and >=1 served, got shed=%d ok=%d", shed, ok)
	}
	if st := s.Stats(); st.Shed == 0 || st.Accepted == 0 {
		t.Fatalf("stats must count sheds and admissions: %+v", st)
	}
}

// A request deadline must cancel execution (mid-node via the kernel
// cancellation checks) and surface as ErrCanceled.
func TestRequestDeadline(t *testing.T) {
	faultinject.Enable(faultinject.Config{
		Seed: 1, Scope: "opt-graph", SlowRate: 1, SlowDelay: 60 * time.Millisecond,
	})
	defer faultinject.Disable()
	s, opt, _ := newTestSession(t, Config{Workers: 1})
	_, err := s.Infer(context.Background(), Request{
		Inputs:  []*tensor.Tensor{serveInput(opt, 1)},
		Timeout: 20 * time.Millisecond,
	})
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

// High-priority requests must jump the queue.
func TestQueuePriorityOrdering(t *testing.T) {
	q := newQueue(8)
	mk := func(p Priority) *item {
		return &item{req: &Request{Priority: p}, done: make(chan result, 1)}
	}
	low, norm1, norm2, high := mk(PriorityLow), mk(PriorityNormal), mk(PriorityNormal), mk(PriorityHigh)
	for _, it := range []*item{low, norm1, norm2, high} {
		if !q.push(it) {
			t.Fatal("push into non-full queue failed")
		}
	}
	wantOrder := []*item{high, norm1, norm2, low}
	for i, want := range wantOrder {
		got, ok := q.pop()
		if !ok || got != want {
			t.Fatalf("pop %d: got %v (ok=%v), want item with priority %d", i, got, ok, want.req.Priority)
		}
	}
}

// Retryable faults on the optimized graph: the request retries, trips the
// breaker, falls back, and succeeds degraded. After injection stops, a
// probe closes the breaker within one interval.
func TestDegradationAndRecovery(t *testing.T) {
	faultinject.Enable(faultinject.Config{Seed: 9, Scope: "opt-graph", KernelPanicRate: 1})
	s, opt, _ := newTestSession(t, Config{
		Workers: 1, MaxRetries: 2, RetryBackoff: time.Millisecond,
		BreakerThreshold: 2, ProbeInterval: 50 * time.Millisecond,
	})
	x := []*tensor.Tensor{serveInput(opt, 3)}

	// Attempt 1 and 2 fail on the optimized graph (trips at threshold 2);
	// the second retry runs on the fallback and succeeds.
	resp, err := s.Infer(context.Background(), Request{Inputs: x})
	if err != nil {
		t.Fatalf("request must degrade to fallback, got %v", err)
	}
	if !resp.Degraded || resp.Retries != 2 {
		t.Fatalf("want degraded response after 2 retries, got degraded=%v retries=%d", resp.Degraded, resp.Retries)
	}
	st := s.Stats()
	if st.BreakerTrips != 1 || st.Breaker != "open" || st.DegradedServed != 1 {
		t.Fatalf("breaker must be open after the trip: %+v", st)
	}

	// While open, requests go straight to the fallback: no retries burned.
	resp, err = s.Infer(context.Background(), Request{Inputs: x})
	if err != nil || !resp.Degraded || resp.Retries != 0 {
		t.Fatalf("open breaker must serve fallback directly: %v %+v", err, resp)
	}

	// Injection stops; within one probe interval a probe must close the
	// breaker and serving returns to the optimized graph.
	faultinject.Disable()
	deadline := time.Now().Add(s.cfg.ProbeInterval + 2*time.Second)
	for {
		resp, err = s.Infer(context.Background(), Request{Inputs: x})
		if err == nil && !resp.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no recovery within %v: err=%v stats=%+v", s.cfg.ProbeInterval, err, s.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := s.Stats(); st.Breaker != "closed" || st.Probes == 0 {
		t.Fatalf("breaker must close via a probe: %+v", st)
	}
}

// When the breaker is open and the fallback fails too, the error must wrap
// ErrDegraded (and keep the underlying kind visible).
func TestFallbackFailureIsDegraded(t *testing.T) {
	faultinject.Enable(faultinject.Config{Seed: 4, KernelPanicRate: 1}) // unscoped: both graphs fault
	defer faultinject.Disable()
	s, opt, _ := newTestSession(t, Config{
		Workers: 1, MaxRetries: -1, BreakerThreshold: 1, ProbeInterval: time.Hour,
	})
	x := []*tensor.Tensor{serveInput(opt, 5)}

	// First request fails on the optimized graph and trips the breaker.
	_, err := s.Infer(context.Background(), Request{Inputs: x})
	if !errors.Is(err, guard.ErrInternal) || errors.Is(err, guard.ErrDegraded) {
		t.Fatalf("first failure ran on optimized: want bare ErrInternal, got %v", err)
	}
	// Second request runs on the (also faulting) fallback: degraded.
	_, err = s.Infer(context.Background(), Request{Inputs: x})
	if !errors.Is(err, guard.ErrDegraded) {
		t.Fatalf("want ErrDegraded, got %v", err)
	}
	if !errors.Is(err, guard.ErrInternal) {
		t.Fatalf("underlying kind must stay visible through ErrDegraded: %v", err)
	}
	if guard.ExitCode(err) != guard.ExitDegraded {
		t.Fatalf("exit code must classify as degraded, got %d", guard.ExitCode(err))
	}
}

// Close drains queued work, sheds new work, and is idempotent.
func TestCloseDrainsAndSheds(t *testing.T) {
	opt, fb := servePair()
	s, err := New(opt, fb, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	x := []*tensor.Tensor{serveInput(opt, 2)}
	done := make(chan error, 1)
	go func() {
		_, err := s.Infer(context.Background(), Request{Inputs: x})
		done <- err
	}()
	// Give the request a chance to be admitted before draining.
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("drain close: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("in-flight request must complete during drain: %v", err)
	}
	if _, err := s.Infer(context.Background(), Request{Inputs: x}); !errors.Is(err, guard.ErrOverloaded) {
		t.Fatalf("post-close Infer must shed, got %v", err)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close must be idempotent: %v", err)
	}
}

func TestJitterBackoff(t *testing.T) {
	base := 2 * time.Millisecond
	for attempt := 0; attempt < 6; attempt++ {
		exp := base << uint(attempt)
		lo := jitterBackoff(base, attempt, 0)
		hi := jitterBackoff(base, attempt, 0.999999)
		if lo != exp/2 {
			t.Fatalf("attempt %d: u=0 must give exp/2 = %v, got %v", attempt, exp/2, lo)
		}
		if hi < lo || hi > exp {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, hi, lo, exp)
		}
	}
	// Distinct uniform samples must decorrelate: that is the whole point of
	// the jitter (synchronized workers thundering-herd the fallback path).
	if a, b := jitterBackoff(base, 3, 0.1), jitterBackoff(base, 3, 0.9); a == b {
		t.Fatalf("distinct u must give distinct backoffs, both %v", a)
	}
	// The shift is capped: absurd attempt counts must not overflow into
	// negative or zero durations.
	if d := jitterBackoff(base, 1<<20, 0.5); d < base<<(maxBackoffShift-1) || d > base<<maxBackoffShift {
		t.Fatalf("capped backoff out of range: %v", d)
	}
}
