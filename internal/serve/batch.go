package serve

import (
	"context"
	"errors"
	"math/rand/v2"
	"strconv"
	"time"

	"temco/internal/engine"
	"temco/internal/exec"
	"temco/internal/guard"
	"temco/internal/ir"
	"temco/internal/obs"
	"temco/internal/tensor"
)

// This file is the dynamic-batching stage: a coalescer goroutine between
// the admission queue and the worker pool accumulates compatible requests
// (same graph input shapes, same priority class) up to Config.MaxBatchSize
// rows or until the Config.MaxBatchLatency window expires, packs them into
// one batched input tensor padded to the nearest bucket of the compiled
// ladder, runs a single engine pass, and scatters per-request output
// slices back over each request's fan-back channel. Requests that cannot
// batch — deadline too tight for the window, non-batchable input shapes,
// more rows than the batch cap — bypass the coalescer and run solo through
// the unchanged per-request path.

// microbatch is one unit of work handed from the coalescer to a worker:
// either a coalesced batch of compatible members, or (solo=true) a single
// request that bypassed batching.
type microbatch struct {
	members []*item
	rows    int      // total sample rows across members
	prio    Priority // all members share one priority class
	opened  time.Time
	// deadline is when the accumulation window expires and the batch
	// dispatches regardless of occupancy.
	deadline time.Time
	solo     bool
}

// coalesce drains the admission queue into microbatches until the session
// closes. It is the only consumer of the queue when batching is enabled;
// workers consume s.batchCh instead. On close the queue drains fully (pop
// keeps returning queued items), the open batch dispatches, and closing
// batchCh releases the workers.
func (s *Session) coalesce() {
	defer s.workers.Done()
	defer close(s.batchCh)
	var open *microbatch
	for {
		var it *item
		if open == nil {
			popped, ok := s.q.pop()
			if !ok {
				return
			}
			it = popped
		} else {
			popped, ok := s.q.popUntil(open.deadline)
			if !ok {
				s.dispatch(open)
				return
			}
			if popped == nil {
				// Window expired: ship what accumulated.
				s.dispatch(open)
				open = nil
				continue
			}
			it = popped
		}

		it.rows = s.rowsFor(it)
		now := time.Now()
		if it.rows < 0 || it.rows >= s.cfg.MaxBatchSize {
			// Not batchable (shape mismatch) or already a full batch on
			// its own: no coalescing win, run it solo.
			s.met.batchBypass.Inc()
			s.batchCh <- &microbatch{members: []*item{it}, solo: true}
			continue
		}
		windowEnd := now.Add(s.cfg.MaxBatchLatency)
		if open != nil {
			windowEnd = open.deadline
		}
		if dl, ok := it.ctx.Deadline(); ok && dl.Before(windowEnd) {
			// The deadline cannot survive the accumulation window: waiting
			// would cancel the request, so it bypasses batching.
			s.met.batchBypass.Inc()
			s.batchCh <- &microbatch{members: []*item{it}, solo: true}
			continue
		}
		if open != nil && (it.req.Priority != open.prio || open.rows+it.rows > s.cfg.MaxBatchSize) {
			// Incompatible with the open batch (different priority class,
			// or it would overflow the cap): ship the open batch first.
			s.dispatch(open)
			open = nil
		}
		if open == nil {
			open = &microbatch{
				prio:     it.req.Priority,
				opened:   now,
				deadline: now.Add(s.cfg.MaxBatchLatency),
			}
		}
		open.members = append(open.members, it)
		open.rows += it.rows
		s.met.batchPending.Add(1)
		if open.rows >= s.cfg.MaxBatchSize {
			s.dispatch(open)
			open = nil
		}
	}
}

// dispatch hands a coalesced batch to a worker, closing its window
// accounting.
func (s *Session) dispatch(b *microbatch) {
	s.met.batchPending.Add(-int64(len(b.members)))
	s.met.batchWait.Observe(time.Since(b.opened).Seconds())
	s.batchCh <- b
}

// rowsFor classifies a request for batching: it returns the request's
// sample-row count when every input is a batched [N, sample...] tensor
// matching the optimized graph's input shapes (with one shared N), and -1
// when the request is not batchable. A -1 request still runs — solo, where
// the executor applies its own (identical) shape validation.
func (s *Session) rowsFor(it *item) int {
	ins := it.req.Inputs
	if len(ins) != len(s.opt.Inputs) {
		return -1
	}
	rows := 0
	for i, t := range ins {
		want := s.opt.Inputs[i].Shape
		if len(t.Shape) != len(want)+1 || t.Dim(0) < 1 {
			return -1
		}
		for j, d := range want {
			if t.Shape[j+1] != d {
				return -1
			}
		}
		if i == 0 {
			rows = t.Dim(0)
		} else if t.Dim(0) != rows {
			return -1
		}
	}
	return rows
}

// bucketFor returns the smallest compiled batch bucket holding rows, or
// rows itself beyond the top of the ladder (the engine then plans that
// layout lazily — only reachable for oversized solo requests).
func (s *Session) bucketFor(rows int) int {
	for _, b := range s.buckets {
		if b >= rows {
			return b
		}
	}
	return rows
}

// packBuf is a worker-owned set of reusable batched input tensors, one set
// per bucket, so the steady-state pack step allocates nothing.
type packBuf struct {
	byBucket map[int][]*tensor.Tensor
}

// inputsFor returns the bucket-shaped input tensors, building them on
// first use of that bucket.
func (pk *packBuf) inputsFor(g *ir.Graph, bucket int) []*tensor.Tensor {
	if pk.byBucket == nil {
		pk.byBucket = make(map[int][]*tensor.Tensor)
	}
	ins, ok := pk.byBucket[bucket]
	if !ok {
		ins = make([]*tensor.Tensor, len(g.Inputs))
		for i, n := range g.Inputs {
			ins[i] = tensor.New(append([]int{bucket}, n.Shape...)...)
		}
		pk.byBucket[bucket] = ins
	}
	return ins
}

// packBatch gathers the members' rows contiguously into the bucket-shaped
// inputs and zeroes the padded tail, so a padded run is deterministic
// regardless of what the reused buffer last held.
func packBatch(ins []*tensor.Tensor, members []*item, bucket int) {
	for i, dst := range ins {
		per := dst.Len() / bucket
		row := 0
		for _, m := range members {
			copy(dst.Data[row*per:], m.req.Inputs[i].Data)
			row += m.rows
		}
		tail := dst.Data[row*per:]
		for x := range tail {
			tail[x] = 0
		}
	}
}

// processBatch executes one coalesced batch with the same layered failure
// semantics as the solo path: breaker-routed graph choice, bounded retries
// with jittered backoff, degradation classification — applied to the batch
// as a unit (one breaker event per attempt). A member canceled before or
// between attempts is delivered guard.ErrCanceled and dropped; the
// survivors re-batch, possibly at a smaller bucket. A batch that exceeds
// the memory budget at its bucket splits back to solo runs, which may
// individually fit.
func (s *Session) processBatch(b *microbatch, optInst, fbInst *engine.Instance, pk *packBuf) {
	now := time.Now()
	live := make([]*item, 0, len(b.members))
	for _, it := range b.members {
		it.queued = now.Sub(it.enq)
		if it.rt != nil {
			it.rt.Span("serve.queue", "", it.enq, it.queued)
			s.met.queueWait.ObserveWithExemplar(it.queued.Seconds(), it.rt.Context().TraceID)
		} else {
			s.met.queueWait.Observe(it.queued.Seconds())
		}
		if err := it.ctx.Err(); err != nil {
			s.deliver(it, nil, guard.New(guard.ErrCanceled, "serve.batch", err))
			continue
		}
		live = append(live, it)
	}
	if len(live) == 0 {
		return
	}
	// Traced members record the accumulation window they sat in and link
	// every batch mate's request id, so /debugz/requests/{id} shows who
	// shared the engine run. Done once per batch — survivor re-batches after
	// a retry do not duplicate the links.
	for _, it := range live {
		if it.rt == nil {
			continue
		}
		it.rt.Span("batch.window", "", b.opened, now.Sub(b.opened))
		for _, other := range live {
			if other != it && other.rt != nil {
				it.rt.AddSibling(other.rt.Context().RequestID)
			}
		}
	}
	s.met.batchedRequests.Add(uint64(len(live)))
	s.met.inFlight.Add(int64(len(live)))
	start := time.Now()
	// finishAll delivers one shared outcome to every live member and
	// closes the batch's in-flight/latency accounting.
	finishAll := func(outs [][]*tensor.Tensor, degraded bool, retries int, err error) {
		exec := time.Since(start)
		s.met.inFlight.Add(-int64(len(live)))
		for i, it := range live {
			s.met.runLatency.Observe(exec.Seconds())
			if err != nil {
				s.deliver(it, nil, err)
				continue
			}
			s.deliver(it, &Response{
				Outputs:  outs[i],
				Degraded: degraded,
				Retries:  retries,
				Queued:   it.queued,
				Exec:     exec,
			}, nil)
		}
	}
	retries := 0
	for attempt := 0; ; attempt++ {
		useOpt, probe := s.br.allow()
		g, inst := s.opt, optInst
		if !useOpt {
			g, inst = s.fb, fbInst
		}
		outs, err := s.runBatched(live, g, inst, pk)
		canceled := err != nil && errors.Is(err, guard.ErrCanceled)
		if useOpt {
			if probe {
				s.br.record(true, err == nil)
			} else if !canceled {
				s.br.record(false, err == nil)
			}
		}
		if err == nil {
			if !useOpt {
				s.met.degradedServed.Add(uint64(len(live)))
				for _, it := range live {
					if it.rt != nil {
						it.rt.Event("serve.degraded", "fallback")
						it.rt.SetStatus("degraded")
					}
				}
			}
			finishAll(outs, !useOpt, retries, nil)
			return
		}
		if canceled {
			// The batch context only cancels on forced shutdown or when
			// the last member deadline passes — individual member cancels
			// never abort the shared run.
			finishAll(nil, false, retries, err)
			return
		}
		if errors.Is(err, guard.ErrBudgetExceeded) && len(live) > 1 {
			// The padded bucket's arena exceeds the budget the members
			// would individually fit under (or a transient budget fault
			// hit the shared run): fall back to solo runs, which carry
			// their own retry budget.
			s.met.batchSplits.Inc()
			s.met.inFlight.Add(-int64(len(live)))
			for _, it := range live {
				s.finish(it, optInst, fbInst)
			}
			return
		}
		if !retryable(err) || attempt >= s.cfg.MaxRetries {
			if !useOpt {
				// Degraded mode and the fallback failed too.
				err = guard.New(guard.ErrDegraded, "serve.fallback", err)
			}
			finishAll(nil, false, retries, err)
			return
		}
		retries++
		s.met.retries.Add(uint64(len(live)))
		for _, it := range live {
			if it.rt != nil {
				it.rt.Event("serve.retry", "batch")
			}
		}
		t := time.NewTimer(jitterBackoff(s.cfg.RetryBackoff, attempt, rand.Float64()))
		select {
		case <-s.baseCtx.Done():
			t.Stop()
			finishAll(nil, false, retries, guard.New(guard.ErrCanceled, "serve.batch", s.baseCtx.Err()))
			return
		case <-t.C:
		}
		// Drop members canceled during the backoff; survivors re-batch
		// (a smaller row count may land on a smaller bucket).
		kept := live[:0]
		for _, it := range live {
			if cerr := it.ctx.Err(); cerr != nil {
				s.met.inFlight.Add(-1)
				s.met.runLatency.Observe(time.Since(start).Seconds())
				s.deliver(it, nil, guard.New(guard.ErrCanceled, "serve.batch", cerr))
				continue
			}
			kept = append(kept, it)
		}
		live = kept
		if len(live) == 0 {
			return
		}
	}
}

// runBatched executes one attempt of a coalesced batch: pack the members'
// rows into the bucket-shaped inputs, run the graph once at the bucket
// size, and scatter each member's row range of every output into tensors
// the member owns. The run context derives from the session's baseCtx
// (forced shutdown still cancels mid-kernel) bounded by the latest member
// deadline, so one member's cancellation cannot corrupt its batchmates.
func (s *Session) runBatched(live []*item, g *ir.Graph, inst *engine.Instance, pk *packBuf) ([][]*tensor.Tensor, error) {
	rows := 0
	var latest time.Time
	bounded := true
	for _, it := range live {
		rows += it.rows
		dl, ok := it.ctx.Deadline()
		if !ok {
			bounded = false
		} else if dl.After(latest) {
			latest = dl
		}
	}
	bucket := s.bucketFor(rows)
	ins := pk.inputsFor(s.opt, bucket)
	packBatch(ins, live, bucket)
	var ctx context.Context
	var cancel context.CancelFunc
	if bounded {
		ctx, cancel = context.WithDeadline(s.baseCtx, latest)
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	defer cancel()
	s.met.batchedRuns.Inc()
	s.met.paddedSlots.Add(uint64(bucket - rows))
	s.met.batchOccupancy.Observe(float64(rows))
	// Every traced member learns which bucket this attempt padded to; the
	// first traced member is the batch's primary trace — the run context
	// derives from baseCtx (not the members' contexts), so the engine's
	// per-step spans need an explicit carrier to land on a timeline.
	var primary *obs.ReqTrace
	for _, it := range live {
		if it.rt != nil {
			if primary == nil {
				primary = it.rt
			}
			it.rt.Event("batch.bucket", strconv.Itoa(bucket))
		}
	}
	if primary != nil {
		ctx = obs.ContextWithRequest(ctx, primary)
	}
	runStart := time.Now()
	var res *exec.Result
	var err error
	if inst == nil {
		res, err = exec.RunCtx(ctx, g, s.cfg.BudgetBytes, ins...)
	} else {
		res, err = inst.Run(ctx, ins...)
	}
	for _, it := range live {
		if it.rt != nil {
			it.rt.Span("batch.run", g.Name, runStart, time.Since(runStart))
		}
	}
	if err != nil {
		return nil, err
	}
	scStart := time.Now()
	outs := make([][]*tensor.Tensor, len(live))
	row := 0
	for i, it := range live {
		outs[i] = make([]*tensor.Tensor, len(res.Outputs))
		for j, o := range res.Outputs {
			per := o.Len() / bucket
			slice := tensor.New(append([]int{it.rows}, o.Shape[1:]...)...)
			copy(slice.Data, o.Data[row*per:(row+it.rows)*per])
			outs[i][j] = slice
		}
		row += it.rows
	}
	for _, it := range live {
		if it.rt != nil {
			it.rt.Span("batch.scatter", "", scStart, time.Since(scStart))
		}
	}
	return outs, nil
}
