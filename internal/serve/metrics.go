package serve

import (
	"temco/internal/obs"
)

// sessionMetrics is the session's instrument set, registered on a
// per-session obs.Registry. The session's counters live here and nowhere
// else: Stats() reads these same instruments, so the /statsz JSON view and
// the /metrics Prometheus view can never drift. Sampled values (queue
// depth, breaker state, engine runs) are GaugeFunc/CounterFunc closures
// over the owning structures, again a single source of truth.
type sessionMetrics struct {
	reg *obs.Registry

	accepted, shed, completed, failed *obs.Counter
	retries, degradedServed           *obs.Counter
	breakerTransitions                *obs.Counter
	inFlight                          *obs.Gauge
	queueWait, runLatency             *obs.Histogram
}

// newSessionMetrics builds and registers the session's instruments. Called
// after the queue, breaker, and engines exist: the sampled closures read
// them at scrape time.
func newSessionMetrics(s *Session) *sessionMetrics {
	reg := obs.NewRegistry()
	m := &sessionMetrics{reg: reg}
	m.accepted = reg.Counter("temco_serve_accepted_total",
		"Requests admitted to the queue.")
	m.shed = reg.Counter("temco_serve_shed_total",
		"Requests shed at admission (queue full or draining).")
	m.completed = reg.Counter("temco_serve_completed_total",
		"Requests completed successfully.")
	m.failed = reg.Counter("temco_serve_failed_total",
		"Requests that exhausted retries or failed terminally.")
	m.retries = reg.Counter("temco_serve_retries_total",
		"Retry attempts across all requests.")
	m.degradedServed = reg.Counter("temco_serve_degraded_total",
		"Requests served by the fallback graph while the breaker was not closed.")
	m.breakerTransitions = reg.Counter("temco_serve_breaker_transitions_total",
		"Circuit breaker state transitions (any direction).")
	m.inFlight = reg.Gauge("temco_serve_in_flight",
		"Requests currently executing on a worker.")
	m.queueWait = reg.Histogram("temco_serve_queue_wait_seconds",
		"Time from admission to a worker picking the request up.", nil)
	m.runLatency = reg.Histogram("temco_serve_run_seconds",
		"Worker execution time per request, including retries and backoff.", nil)

	reg.GaugeFunc("temco_serve_queue_depth",
		"Requests waiting in the admission queue.",
		func() float64 { return float64(s.q.depth()) })
	reg.GaugeFunc("temco_serve_queue_capacity",
		"Admission queue capacity.",
		func() float64 { return float64(s.cfg.QueueSize) })
	reg.GaugeFunc("temco_serve_workers",
		"Executor goroutines.",
		func() float64 { return float64(s.cfg.Workers) })
	reg.GaugeFunc("temco_serve_breaker_state",
		"Circuit breaker state: 0 closed, 1 open, 2 half-open.",
		func() float64 {
			state, _, _, _ := s.br.snapshot()
			return float64(state)
		})
	reg.CounterFunc("temco_serve_breaker_trips_total",
		"Closed-to-open breaker trips.",
		func() float64 {
			_, trips, _, _ := s.br.snapshot()
			return float64(trips)
		})
	reg.CounterFunc("temco_serve_probes_total",
		"Half-open recovery probes attempted.",
		func() float64 {
			_, _, probes, _ := s.br.snapshot()
			return float64(probes)
		})
	reg.CounterFunc("temco_serve_probe_failures_total",
		"Recovery probes that failed (breaker re-opened).",
		func() float64 {
			_, _, _, fails := s.br.snapshot()
			return float64(fails)
		})
	reg.CounterFunc("temco_serve_engine_runs_total",
		"Completed compiled-engine runs across both graphs.",
		func() float64 {
			var runs uint64
			if s.optEng != nil {
				runs += s.optEng.Stats().Runs
			}
			if s.fbEng != nil {
				runs += s.fbEng.Stats().Runs
			}
			return float64(runs)
		})
	return m
}

// Metrics returns the session's metrics registry, ready to be served next
// to obs.Default() on a /metrics endpoint. The registry is per-session, so
// several sessions in one process never collide on instrument names.
func (s *Session) Metrics() *obs.Registry { return s.met.reg }
