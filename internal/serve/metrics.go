package serve

import (
	"temco/internal/obs"
)

// sessionMetrics is the session's instrument set, registered on a
// per-session obs.Registry. The session's counters live here and nowhere
// else: Stats() reads these same instruments, so the /statsz JSON view and
// the /metrics Prometheus view can never drift. Sampled values (queue
// depth, breaker state, engine runs) are GaugeFunc/CounterFunc closures
// over the owning structures, again a single source of truth.
type sessionMetrics struct {
	reg *obs.Registry

	accepted, shed, completed, failed *obs.Counter
	retries, degradedServed           *obs.Counter
	breakerTransitions                *obs.Counter
	inFlight                          *obs.Gauge
	queueWait, runLatency             *obs.Histogram

	// Batching-stage instruments. Registered unconditionally (they just
	// stay zero with batching off) so the exposition surface is stable.
	batchedRuns, batchedRequests *obs.Counter
	paddedSlots, batchBypass     *obs.Counter
	batchSplits                  *obs.Counter
	batchPending                 *obs.Gauge
	batchWait, batchOccupancy    *obs.Histogram
}

// newSessionMetrics builds and registers the session's instruments. Called
// after the queue, breaker, and engines exist: the sampled closures read
// them at scrape time.
func newSessionMetrics(s *Session) *sessionMetrics {
	reg := obs.NewRegistry()
	m := &sessionMetrics{reg: reg}
	m.accepted = reg.Counter("temco_serve_accepted_total",
		"Requests admitted to the queue.")
	m.shed = reg.Counter("temco_serve_shed_total",
		"Requests shed at admission (queue full or draining).")
	m.completed = reg.Counter("temco_serve_completed_total",
		"Requests completed successfully.")
	m.failed = reg.Counter("temco_serve_failed_total",
		"Requests that exhausted retries or failed terminally.")
	m.retries = reg.Counter("temco_serve_retries_total",
		"Retry attempts across all requests.")
	m.degradedServed = reg.Counter("temco_serve_degraded_total",
		"Requests served by the fallback graph while the breaker was not closed.")
	m.breakerTransitions = reg.Counter("temco_serve_breaker_transitions_total",
		"Circuit breaker state transitions (any direction).")
	m.inFlight = reg.Gauge("temco_serve_in_flight",
		"Requests currently executing on a worker.")
	m.queueWait = reg.Histogram("temco_serve_queue_wait_seconds",
		"Time from admission to a worker picking the request up.", nil)
	m.runLatency = reg.Histogram("temco_serve_run_seconds",
		"Worker execution time per request, including retries and backoff.", nil)
	m.batchedRuns = reg.Counter("temco_serve_batched_runs_total",
		"Coalesced engine runs executed at a batch bucket.")
	m.batchedRequests = reg.Counter("temco_serve_batched_requests_total",
		"Requests served through a coalesced batch run.")
	m.paddedSlots = reg.Counter("temco_serve_padded_slots_total",
		"Padding rows added to reach the nearest batch bucket, across all batched runs.")
	m.batchBypass = reg.Counter("temco_serve_batch_bypass_total",
		"Requests that bypassed coalescing (tight deadline, unbatchable shape, or at/over the batch cap) and ran solo.")
	m.batchSplits = reg.Counter("temco_serve_batch_splits_total",
		"Batches split back into solo runs after a budget failure at their bucket.")
	m.batchPending = reg.Gauge("temco_serve_batch_pending",
		"Requests currently waiting in an open accumulation window.")
	m.batchWait = reg.Histogram("temco_serve_batch_wait_seconds",
		"Time a coalesced batch spent accumulating before dispatch.",
		[]float64{0.00025, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.025, 0.1})
	m.batchOccupancy = reg.Histogram("temco_serve_batch_occupancy",
		"Sample rows per batched run, before padding to the bucket.",
		[]float64{1, 2, 4, 8, 16, 32, 64})

	reg.GaugeFunc("temco_serve_queue_depth",
		"Requests waiting in the admission queue.",
		func() float64 { return float64(s.q.depth()) })
	reg.GaugeFunc("temco_serve_queue_capacity",
		"Admission queue capacity.",
		func() float64 { return float64(s.cfg.QueueSize) })
	reg.GaugeFunc("temco_serve_workers",
		"Executor goroutines.",
		func() float64 { return float64(s.cfg.Workers) })
	reg.GaugeFunc("temco_serve_breaker_state",
		"Circuit breaker state: 0 closed, 1 open, 2 half-open.",
		func() float64 {
			state, _, _, _ := s.br.snapshot()
			return float64(state)
		})
	reg.CounterFunc("temco_serve_breaker_trips_total",
		"Closed-to-open breaker trips.",
		func() float64 {
			_, trips, _, _ := s.br.snapshot()
			return float64(trips)
		})
	reg.CounterFunc("temco_serve_probes_total",
		"Half-open recovery probes attempted.",
		func() float64 {
			_, _, probes, _ := s.br.snapshot()
			return float64(probes)
		})
	reg.CounterFunc("temco_serve_probe_failures_total",
		"Recovery probes that failed (breaker re-opened).",
		func() float64 {
			_, _, _, fails := s.br.snapshot()
			return float64(fails)
		})
	reg.CounterFunc("temco_serve_engine_runs_total",
		"Completed compiled-engine runs across both graphs.",
		func() float64 {
			var runs uint64
			if s.optEng != nil {
				runs += s.optEng.Stats().Runs
			}
			if s.fbEng != nil {
				runs += s.fbEng.Stats().Runs
			}
			return float64(runs)
		})
	return m
}

// Metrics returns the session's metrics registry, ready to be served next
// to obs.Default() on a /metrics endpoint. The registry is per-session, so
// several sessions in one process never collide on instrument names.
func (s *Session) Metrics() *obs.Registry { return s.met.reg }
