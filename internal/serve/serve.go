// Package serve is the fault-tolerant inference serving tier. A Session
// wraps a compiled graph pair — the TeMCO-optimized graph and its
// unoptimized fallback — behind a bounded priority admission queue and a
// worker pool with per-request deadlines. Each worker owns a compiled
// engine.Instance per graph (plan-once/run-many: pre-packed weights and a
// private arena slab, so the steady-state hot path allocates nothing and
// workers never contend on buffers); when the engine is disabled or a
// graph fails to compile, the worker falls back to the exec.RunCtx
// interpreter, which is bit-identical. Failures are absorbed in layers:
//
//   - admission control: a full queue sheds load immediately with
//     guard.ErrOverloaded instead of growing latency without bound;
//   - retries: retryable failures (memory budget pressure, transient
//     kernel panics) are retried with exponential backoff inside the
//     request's deadline;
//   - degradation: when the optimized graph keeps faulting, a circuit
//     breaker trips and traffic falls back to the unoptimized graph, with
//     periodic probes deciding when to switch back;
//   - cancellation: deadlines propagate into the kernels themselves, so a
//     canceled request stops mid-conv rather than finishing the node.
package serve

import (
	"context"
	"errors"
	"math/rand/v2"
	"time"

	"sync"
	"sync/atomic"

	"temco/internal/engine"
	"temco/internal/exec"
	"temco/internal/guard"
	"temco/internal/ir"
	"temco/internal/obs"
	"temco/internal/tensor"
)

// Config tunes a Session. Zero values take the documented defaults.
type Config struct {
	// QueueSize bounds the admission queue; a full queue sheds load with
	// guard.ErrOverloaded. Default 64.
	QueueSize int
	// Workers is the number of concurrent executor goroutines. Default 2.
	Workers int
	// DefaultTimeout applies to requests that carry no deadline of their
	// own. Default 30s.
	DefaultTimeout time.Duration
	// MaxRetries is how many times a retryable failure (budget exceeded,
	// transient kernel panic) is retried before the request fails.
	// Default 2; a negative value disables retries.
	MaxRetries int
	// RetryBackoff is the first retry's backoff base; the base doubles per
	// attempt and each delay is equal-jittered to [base/2, base] so
	// simultaneous failures across workers do not retry in lockstep.
	// Default 2ms.
	RetryBackoff time.Duration
	// BudgetBytes is the per-request peak-memory budget handed to
	// exec.RunCtx (0 = unlimited).
	BudgetBytes int64
	// BreakerThreshold is how many consecutive optimized-graph failures
	// trip the circuit breaker. Default 3.
	BreakerThreshold int
	// ProbeInterval is how long the breaker stays open before letting one
	// probe request test the optimized graph again. Default 1s.
	ProbeInterval time.Duration
	// NoEngine disables the compiled engine and serves every request
	// through the exec.RunCtx interpreter. The zero value keeps the engine
	// on; it also stays on when compilation fails (the session silently
	// serves that graph interpreted — outputs are identical either way).
	// With the engine on, the memory budget is accounted the arena way
	// (slab + largest kernel workspace, as exec.RunArenaCtx does) rather
	// than by live-tensor tracking.
	NoEngine bool
	// MaxBatchSize enables dynamic request batching when > 1: a coalescer
	// between the admission queue and the worker pool packs up to this
	// many compatible sample rows (same graph inputs, same priority class)
	// into one engine run at a bucket of the BatchBuckets ladder, and
	// scatters per-request output slices back. 0 or 1 keeps today's
	// batch-1 passthrough: each request runs alone, behaviorally unchanged.
	MaxBatchSize int
	// MaxBatchLatency is the accumulation window: how long the coalescer
	// holds an open batch waiting for more rows before dispatching it
	// partially full. A request whose deadline cannot survive the window
	// bypasses batching and runs solo. Default 2ms when batching is on.
	MaxBatchLatency time.Duration
	// BatchBuckets is the compiled batch-size ladder: batched runs are
	// padded up to the nearest bucket so every batched run hits an arena
	// layout planned at session start (never the lazy O(n²) planning
	// path). Must be strictly increasing and positive. The ladder is
	// planned even with batching off, so direct multi-sample requests
	// at a bucket size skip lazy planning too. Default 1, 4, 8, 16, 32.
	BatchBuckets []int
}

func (c *Config) applyDefaults() {
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.MaxBatchSize > 1 && c.MaxBatchLatency <= 0 {
		c.MaxBatchLatency = 2 * time.Millisecond
	}
	if len(c.BatchBuckets) == 0 {
		c.BatchBuckets = []int{1, 4, 8, 16, 32}
	}
}

// batching reports whether the coalescer stage is enabled.
func (c *Config) batching() bool { return c.MaxBatchSize > 1 }

// Request is one inference call.
type Request struct {
	// Inputs are the graph inputs (one batched tensor per graph input).
	Inputs []*tensor.Tensor
	// Priority orders the request in the admission queue.
	Priority Priority
	// Timeout is the per-request deadline measured from admission;
	// zero takes Config.DefaultTimeout. The caller context's own deadline
	// applies on top.
	Timeout time.Duration
}

// Response is a completed inference.
type Response struct {
	// Outputs are the graph outputs, in graph order.
	Outputs []*tensor.Tensor
	// Degraded reports that the fallback (unoptimized) graph served this
	// request because the optimized graph's breaker was open.
	Degraded bool
	// Retries is how many failed attempts preceded the successful one.
	Retries int
	// Queued and Exec split the request's latency into time waiting for a
	// worker and time executing (including retries and backoff).
	Queued, Exec time.Duration
}

// Stats is a point-in-time snapshot of a Session's counters. Every field
// is read from the session's obs.Registry instruments — the same ones a
// /metrics scrape renders — so the JSON and Prometheus views of a session
// can never disagree.
type Stats struct {
	Accepted       uint64 `json:"accepted"`
	Shed           uint64 `json:"shed"`
	Completed      uint64 `json:"completed"`
	Failed         uint64 `json:"failed"`
	Retries        uint64 `json:"retries"`
	DegradedServed uint64 `json:"degraded_served"`
	QueueDepth     int    `json:"queue_depth"`
	QueueCap       int    `json:"queue_cap"`
	InFlight       int64  `json:"in_flight"`
	Workers        int    `json:"workers"`
	Breaker        string `json:"breaker"`
	BreakerTrips   uint64 `json:"breaker_trips"`
	Probes         uint64 `json:"probes"`
	ProbeFailures  uint64 `json:"probe_failures"`
	Draining       bool   `json:"draining"`
	// BreakerTransitions counts breaker state changes in any direction
	// (trips, probe grants, closes, re-opens).
	BreakerTransitions uint64 `json:"breaker_transitions"`
	// QueueWaitSecondsTotal is the cumulative time requests spent waiting
	// for a worker; QueueWaitCount the number of waits observed. Their
	// ratio is the mean queue wait; the full distribution is the
	// temco_serve_queue_wait_seconds histogram on /metrics.
	QueueWaitSecondsTotal float64 `json:"queue_wait_seconds_total"`
	QueueWaitCount        uint64  `json:"queue_wait_count"`
	// RunSecondsTotal is the cumulative worker execution time (including
	// retries and backoff), the _sum of temco_serve_run_seconds.
	RunSecondsTotal float64 `json:"run_seconds_total"`
	// EngineOptimized / EngineFallback report whether the respective graph
	// serves through a compiled engine (false = interpreter path).
	EngineOptimized bool `json:"engine_optimized"`
	EngineFallback  bool `json:"engine_fallback"`
	// EngineRuns counts completed compiled-engine runs across both graphs.
	EngineRuns uint64 `json:"engine_runs"`
	// Batching reports whether the coalescer stage is enabled; the fields
	// below mirror the temco_serve_batch* instruments either way (all zero
	// with batching off).
	Batching bool `json:"batching"`
	// BatchedRuns counts coalesced engine runs; BatchedRequests the
	// requests they served (their ratio is the realized mean batch size).
	BatchedRuns     uint64 `json:"batched_runs"`
	BatchedRequests uint64 `json:"batched_requests"`
	// PaddedSlots counts padding rows added to reach a bucket;
	// BatchBypass requests that skipped coalescing and ran solo;
	// BatchSplits batches split to solo runs after a budget failure.
	PaddedSlots uint64 `json:"padded_slots"`
	BatchBypass uint64 `json:"batch_bypass"`
	BatchSplits uint64 `json:"batch_splits"`
	// BatchPending is the number of requests sitting in an open
	// accumulation window right now — queue depth the admission queue no
	// longer sees, reported to the cluster tier for placement.
	BatchPending int64 `json:"batch_pending"`
	// BatchWaitSecondsTotal / BatchWaitCount summarize the accumulation
	// window histogram (temco_serve_batch_wait_seconds).
	BatchWaitSecondsTotal float64 `json:"batch_wait_seconds_total"`
	BatchWaitCount        uint64  `json:"batch_wait_count"`
}

// Session is a concurrent inference session over an optimized graph and
// its unoptimized fallback. Safe for concurrent use by any number of
// callers.
type Session struct {
	opt, fb *ir.Graph
	cfg     Config
	q       *queue
	br      *breaker

	// optEng/fbEng are the compiled engines, nil when Config.NoEngine is
	// set or the graph did not compile (that graph then serves through the
	// interpreter). Engines are immutable and shared; each worker holds its
	// own Instances.
	optEng, fbEng *engine.Engine

	// buckets is the runtime batch-bucket ladder (ascending), clipped to
	// MaxBatchSize; batchCh carries coalesced microbatches from the
	// coalescer goroutine to the workers (nil when batching is off).
	buckets []int
	batchCh chan *microbatch

	// baseCtx is canceled on forced shutdown; every request context hangs
	// off it so in-flight kernels stop mid-node when draining times out.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	workers  sync.WaitGroup
	draining atomic.Bool

	// met holds every session counter, gauge, and histogram, registered on
	// a per-session obs.Registry; Stats() and /metrics both read it.
	met *sessionMetrics
}

// New builds a Session serving the optimized graph with the given fallback.
// The two graphs must be interchangeable: same input and output arity (the
// fallback is typically the decomposed-but-unoptimized graph the optimizer
// started from). Workers start immediately; the caller owns Close.
func New(optimized, fallback *ir.Graph, cfg Config) (*Session, error) {
	if optimized == nil || fallback == nil {
		return nil, guard.Errorf(guard.ErrInvalidModel, "serve.New", "nil graph")
	}
	if len(optimized.Inputs) != len(fallback.Inputs) || len(optimized.Outputs) != len(fallback.Outputs) {
		return nil, guard.Errorf(guard.ErrInvalidModel, "serve.New",
			"fallback not interchangeable: %d/%d inputs, %d/%d outputs",
			len(fallback.Inputs), len(optimized.Inputs), len(fallback.Outputs), len(optimized.Outputs))
	}
	cfg.applyDefaults()
	for i, b := range cfg.BatchBuckets {
		if b < 1 || (i > 0 && b <= cfg.BatchBuckets[i-1]) {
			return nil, guard.Errorf(guard.ErrInvalidModel, "serve.New",
				"batch buckets must be positive and strictly increasing: %v", cfg.BatchBuckets)
		}
	}
	s := &Session{
		opt: optimized,
		fb:  fallback,
		cfg: cfg,
		q:   newQueue(cfg.QueueSize),
		br:  newBreaker(cfg.BreakerThreshold, cfg.ProbeInterval),
	}
	// The runtime ladder is the configured buckets clipped to the batch
	// cap, with the cap itself as the top bucket so a full batch never
	// pads. With batching off everything runs at batch-per-request sizes,
	// but the full ladder is still compiled below.
	if cfg.batching() {
		for _, b := range cfg.BatchBuckets {
			if b <= cfg.MaxBatchSize {
				s.buckets = append(s.buckets, b)
			}
		}
		if n := len(s.buckets); n == 0 || s.buckets[n-1] != cfg.MaxBatchSize {
			s.buckets = append(s.buckets, cfg.MaxBatchSize)
		}
	} else {
		s.buckets = []int{1}
	}
	if !cfg.NoEngine {
		// Compile-or-fall-back: an engine that will not compile (e.g. an
		// unsupported node kind) is not an error — the interpreter serves
		// that graph with identical outputs, just without the plan reuse.
		// The whole bucket ladder is planned here, at session start, so no
		// request ever pays the O(n²) layout check on the hot path.
		ladder := append(append([]int(nil), cfg.BatchBuckets...), s.buckets...)
		opts := engine.Options{Batch: 1, Batches: ladder, BudgetBytes: cfg.BudgetBytes}
		s.optEng, _ = engine.Compile(optimized, opts)
		s.fbEng, _ = engine.Compile(fallback, opts)
	}
	// Instruments go live after the structures their sampled closures read
	// (queue, breaker, engines) exist, and before any worker starts.
	s.met = newSessionMetrics(s)
	s.br.onTransition = func(from, to BreakerState) { s.met.breakerTransitions.Inc() }
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	if cfg.batching() {
		s.batchCh = make(chan *microbatch)
		s.workers.Add(1)
		go s.coalesce()
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// Infer admits req, waits for a worker to execute it, and returns the
// outputs. Failure classification (all via errors.Is):
//
//   - guard.ErrOverloaded: queue full or session draining — shed before
//     any execution; retry later.
//   - guard.ErrCanceled: the deadline or caller context expired, whether
//     queued or mid-kernel.
//   - guard.ErrDegraded: the breaker was open and the fallback failed too
//     (wraps the fallback's underlying error).
//   - guard.ErrBudgetExceeded / guard.ErrInternal: the request exhausted
//     its retries on the serving graph.
func (s *Session) Infer(ctx context.Context, req Request) (*Response, error) {
	if len(req.Inputs) == 0 {
		return nil, guard.Errorf(guard.ErrInvalidModel, "serve.Infer", "request has no inputs")
	}
	// The request trace rides the caller context (temcod's HTTP middleware
	// attaches it); nil when no one is tracing, which costs nothing below.
	rt := obs.RequestFrom(ctx)
	if s.draining.Load() {
		s.met.shed.Inc()
		if rt != nil {
			rt.Event("serve.shed", "draining")
			rt.SetStatus("shed")
		}
		return nil, guard.Errorf(guard.ErrOverloaded, "serve.Infer", "session draining")
	}
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	// Forced shutdown cancels every in-flight request via baseCtx.
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()

	it := &item{ctx: rctx, req: &req, enq: time.Now(), done: make(chan result, 1), rt: rt}
	if !s.q.push(it) {
		s.met.shed.Inc()
		if rt != nil {
			rt.Event("serve.shed", "queue_full")
			rt.SetStatus("shed")
		}
		return nil, guard.Errorf(guard.ErrOverloaded, "serve.Infer",
			"admission queue full (%d queued)", s.cfg.QueueSize)
	}
	s.met.accepted.Inc()
	if rt != nil {
		rt.Event("serve.admit", "")
	}
	select {
	case r := <-it.done:
		return r.resp, r.err
	case <-rctx.Done():
		// Still queued (or mid-run): the worker observes the canceled
		// context and abandons the work; the buffered done channel keeps
		// its delivery from blocking.
		return nil, guard.New(guard.ErrCanceled, "serve.Infer", rctx.Err())
	}
}

// worker executes requests until the session closes. Each worker owns its
// engine instances: the arena slab and output buffers are per-worker, so
// the hot path never takes a lock or touches shared state. Without
// batching, workers drain the admission queue directly (the unchanged
// batch-1 passthrough); with batching, they drain microbatches from the
// coalescer.
func (s *Session) worker() {
	defer s.workers.Done()
	var optInst, fbInst *engine.Instance
	if s.optEng != nil {
		optInst = s.optEng.NewInstance()
	}
	if s.fbEng != nil {
		fbInst = s.fbEng.NewInstance()
	}
	if s.batchCh != nil {
		var pk packBuf
		for b := range s.batchCh {
			if b.solo {
				s.runSolo(b.members[0], optInst, fbInst)
			} else {
				s.processBatch(b, optInst, fbInst, &pk)
			}
		}
		return
	}
	for {
		it, ok := s.q.pop()
		if !ok {
			return
		}
		s.runSolo(it, optInst, fbInst)
	}
}

// runSolo runs one request end-to-end on this worker: queue-wait
// accounting, execution via process, outcome counters, result delivery.
func (s *Session) runSolo(it *item, optInst, fbInst *engine.Instance) {
	it.queued = time.Since(it.enq)
	if it.rt != nil {
		it.rt.Span("serve.queue", "", it.enq, it.queued)
		s.met.queueWait.ObserveWithExemplar(it.queued.Seconds(), it.rt.Context().TraceID)
	} else {
		s.met.queueWait.Observe(it.queued.Seconds())
	}
	s.finish(it, optInst, fbInst)
}

// finish executes process with in-flight/latency/outcome accounting and
// delivers the result. it.queued must already be set (runSolo sets it; the
// batch path sets it when the microbatch dispatches).
func (s *Session) finish(it *item, optInst, fbInst *engine.Instance) {
	s.met.inFlight.Add(1)
	start := time.Now()
	resp, err := s.process(it, optInst, fbInst)
	if it.rt != nil {
		s.met.runLatency.ObserveWithExemplar(time.Since(start).Seconds(), it.rt.Context().TraceID)
	} else {
		s.met.runLatency.Observe(time.Since(start).Seconds())
	}
	s.met.inFlight.Add(-1)
	s.deliver(it, resp, err)
}

// deliver counts the outcome and hands the result back to Infer over the
// item's buffered fan-back channel.
func (s *Session) deliver(it *item, resp *Response, err error) {
	if err != nil {
		s.met.failed.Inc()
	} else {
		s.met.completed.Inc()
	}
	it.done <- result{resp: resp, err: err}
}

// retryable reports whether a failure class is worth retrying: memory
// budget pressure is transient (concurrent requests release their tensors)
// and recovered kernel panics may be transient faults.
func retryable(err error) bool {
	return errors.Is(err, guard.ErrBudgetExceeded) || errors.Is(err, guard.ErrInternal)
}

// process executes one admitted request: breaker-routed graph choice,
// bounded retries with exponential backoff, degradation classification.
// The chosen graph runs on the worker's compiled instance when one exists,
// else through the interpreter; error classification (and therefore the
// retry and breaker behavior) is identical on both paths.
func (s *Session) process(it *item, optInst, fbInst *engine.Instance) (*Response, error) {
	queued := it.queued
	if err := it.ctx.Err(); err != nil {
		return nil, guard.New(guard.ErrCanceled, "serve.process", err)
	}
	start := time.Now()
	retries := 0
	for attempt := 0; ; attempt++ {
		useOpt, probe := s.br.allow()
		g, inst := s.opt, optInst
		if !useOpt {
			g, inst = s.fb, fbInst
		}
		aStart := time.Now()
		res, err := s.runOnce(it, g, inst)
		if it.rt != nil {
			// g.Name is a live string either way; the span names which graph
			// served the attempt (the fallback name marks breaker routing).
			it.rt.Span("serve.run", g.Name, aStart, time.Since(aStart))
		}
		canceled := err != nil && errors.Is(err, guard.ErrCanceled)
		if useOpt {
			if probe {
				// A canceled probe proves nothing about recovery: count it
				// as a failed probe and keep the breaker open.
				s.br.record(true, err == nil)
			} else if !canceled {
				s.br.record(false, err == nil)
			}
		}
		if err == nil {
			if !useOpt {
				s.met.degradedServed.Inc()
				if it.rt != nil {
					it.rt.Event("serve.degraded", "fallback")
					it.rt.SetStatus("degraded")
				}
			}
			return &Response{
				Outputs:  res.Outputs,
				Degraded: !useOpt,
				Retries:  retries,
				Queued:   queued,
				Exec:     time.Since(start),
			}, nil
		}
		if canceled {
			return nil, err
		}
		if !retryable(err) || attempt >= s.cfg.MaxRetries {
			if !useOpt {
				// Degraded mode and the fallback failed too: the service
				// has nothing left to serve this request with.
				return nil, guard.New(guard.ErrDegraded, "serve.fallback", err)
			}
			return nil, err
		}
		retries++
		s.met.retries.Inc()
		if it.rt != nil {
			it.rt.Event("serve.retry", "")
		}
		t := time.NewTimer(jitterBackoff(s.cfg.RetryBackoff, attempt, rand.Float64()))
		select {
		case <-it.ctx.Done():
			t.Stop()
			return nil, guard.New(guard.ErrCanceled, "serve.process", it.ctx.Err())
		case <-t.C:
		}
	}
}

// maxBackoffShift caps the exponential term so a long retry ladder cannot
// overflow time.Duration (and 2ms << 16 ≈ 2m is already beyond any sane
// request deadline).
const maxBackoffShift = 16

// jitterBackoff computes the attempt'th retry delay: exponential growth
// with equal jitter, uniformly drawn from [exp/2, exp] where
// exp = base << attempt. u is the uniform sample in [0, 1). A bare
// exponential synchronizes the retries of every worker that failed on the
// same event (breaker trip, budget spike), thundering-herding the fallback
// path at exactly base, 2·base, 4·base…; keeping half the delay
// deterministic preserves the backpressure shape while the random half
// decorrelates the herd.
func jitterBackoff(base time.Duration, attempt int, u float64) time.Duration {
	if attempt > maxBackoffShift {
		attempt = maxBackoffShift
	}
	exp := base << uint(attempt)
	half := exp / 2
	return half + time.Duration(u*float64(exp-half))
}

// runOnce executes one attempt on the worker's compiled instance, or on
// the interpreter when the graph has no engine. Engine outputs alias the
// instance's reusable buffers, so they are cloned before they escape to
// the caller; the engine's internal run stays allocation-free either way.
func (s *Session) runOnce(it *item, g *ir.Graph, inst *engine.Instance) (*exec.Result, error) {
	if inst == nil {
		return exec.RunCtx(it.ctx, g, s.cfg.BudgetBytes, it.req.Inputs...)
	}
	res, err := inst.Run(it.ctx, it.req.Inputs...)
	if err != nil {
		return nil, err
	}
	out := make([]*tensor.Tensor, len(res.Outputs))
	for i, o := range res.Outputs {
		out[i] = o.Clone()
	}
	return &exec.Result{Outputs: out, LayerCalls: res.LayerCalls}, nil
}

// BatchBuckets returns the runtime batch-bucket ladder (ascending) batched
// runs pad to. With batching disabled it is [1].
func (s *Session) BatchBuckets() []int { return append([]int(nil), s.buckets...) }

// BatchConfig reports the batching knobs the session runs with: whether
// the coalescer stage is enabled, the sample-row cap per batch, and the
// accumulation window.
func (s *Session) BatchConfig() (enabled bool, maxBatch int, window time.Duration) {
	return s.cfg.batching(), s.cfg.MaxBatchSize, s.cfg.MaxBatchLatency
}

// Engines returns the compiled engines for the optimized and fallback
// graphs (nil for a graph serving through the interpreter). Engines are
// immutable; callers may take their own Instances, e.g. to probe
// steady-state allocation behavior on a live daemon.
func (s *Session) Engines() (opt, fb *engine.Engine) { return s.optEng, s.fbEng }

// EngineStats reports the compiled-engine snapshots for the optimized and
// fallback graphs. ok is false for a graph serving through the interpreter
// (engine disabled or compilation fell back); its Stats is then zero.
func (s *Session) EngineStats() (opt, fb engine.Stats, optOK, fbOK bool) {
	if s.optEng != nil {
		opt, optOK = s.optEng.Stats(), true
	}
	if s.fbEng != nil {
		fb, fbOK = s.fbEng.Stats(), true
	}
	return opt, fb, optOK, fbOK
}

// Stats snapshots the session's counters.
func (s *Session) Stats() Stats {
	state, trips, probes, probeFails := s.br.snapshot()
	st := Stats{
		Accepted:              s.met.accepted.Value(),
		Shed:                  s.met.shed.Value(),
		Completed:             s.met.completed.Value(),
		Failed:                s.met.failed.Value(),
		Retries:               s.met.retries.Value(),
		DegradedServed:        s.met.degradedServed.Value(),
		QueueDepth:            s.q.depth(),
		QueueCap:              s.cfg.QueueSize,
		InFlight:              s.met.inFlight.Value(),
		Workers:               s.cfg.Workers,
		Breaker:               state.String(),
		BreakerTrips:          trips,
		Probes:                probes,
		ProbeFailures:         probeFails,
		Draining:              s.draining.Load(),
		BreakerTransitions:    s.met.breakerTransitions.Value(),
		QueueWaitSecondsTotal: s.met.queueWait.Sum(),
		QueueWaitCount:        s.met.queueWait.Count(),
		RunSecondsTotal:       s.met.runLatency.Sum(),
		Batching:              s.cfg.batching(),
		BatchedRuns:           s.met.batchedRuns.Value(),
		BatchedRequests:       s.met.batchedRequests.Value(),
		PaddedSlots:           s.met.paddedSlots.Value(),
		BatchBypass:           s.met.batchBypass.Value(),
		BatchSplits:           s.met.batchSplits.Value(),
		BatchPending:          s.met.batchPending.Value(),
		BatchWaitSecondsTotal: s.met.batchWait.Sum(),
		BatchWaitCount:        s.met.batchWait.Count(),
	}
	if s.optEng != nil {
		st.EngineOptimized = true
		st.EngineRuns += s.optEng.Stats().Runs
	}
	if s.fbEng != nil {
		st.EngineFallback = true
		st.EngineRuns += s.fbEng.Stats().Runs
	}
	return st
}

// Ready reports whether the session accepts new requests.
func (s *Session) Ready() bool { return !s.draining.Load() }

// Drain flips the session into draining without stopping it: new Infer
// calls shed immediately with guard.ErrOverloaded while queued and
// in-flight requests run to completion on the live worker pool. Unlike
// Close, the session keeps answering Stats and Ready afterwards, so
// /readyz can report drain progress (queue depth, in-flight) until the
// process is told to exit; a later Close performs the usual shutdown.
// Idempotent.
func (s *Session) Drain() { s.draining.Store(true) }

// QueueWaitQuantile estimates the q-quantile of the admission queue-wait
// distribution from the session's fixed-bucket histogram. Upper-bound
// biased like any bucketed quantile; zero until something was observed.
func (s *Session) QueueWaitQuantile(q float64) time.Duration {
	return time.Duration(s.met.queueWait.Quantile(q) * float64(time.Second))
}

// Degraded reports whether the optimized graph's breaker is currently not
// closed (requests are or may be served by the fallback).
func (s *Session) Degraded() bool {
	state, _, _, _ := s.br.snapshot()
	return state != BreakerClosed
}

// Close drains the session: admission stops immediately (new Infer calls
// shed with guard.ErrOverloaded), queued and in-flight requests run to
// completion, then the workers exit. If ctx expires first, the remaining
// work is force-canceled (in-flight kernels stop mid-node) and Close
// returns an error wrapping guard.ErrCanceled after the workers exit.
// Close is idempotent; concurrent calls all wait for the drain.
func (s *Session) Close(ctx context.Context) error {
	s.draining.Store(true)
	s.q.close()
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.baseCancel()
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return guard.New(guard.ErrCanceled, "serve.Close", ctx.Err())
	}
}
