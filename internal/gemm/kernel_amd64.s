// AVX2+FMA micro-kernel and CPUID feature probes for the float32 GEMM
// path. The micro-kernel computes an 8-row × 8-column tile of C from
// MR=8-packed A panels and NR=8-packed B panels: per k step it loads one
// B row vector and fuses eight broadcast-multiply-adds, one per A row,
// into eight YMM accumulators.

#include "textflag.h"

// func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func microKernel8x8asm(k int, a, b *float32, acc *[64]float32)
//
// acc[i*8+j] = Σ_p a[p*8+i] · b[p*8+j] for the full 8×8 tile. The k loop
// is unrolled by two; Y0–Y7 hold one output row each (8 columns wide).
TEXT ·microKernel8x8asm(SB), NOSPLIT, $0-32
	MOVQ k+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DI
	MOVQ acc+24(FP), DX

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

	MOVQ CX, BX
	SHRQ $1, CX        // CX = k/2 double steps
	JZ   tail

loop2:
	// step 0
	VMOVUPS      (DI), Y8
	VBROADCASTSS (SI), Y9
	VFMADD231PS  Y8, Y9, Y0
	VBROADCASTSS 4(SI), Y10
	VFMADD231PS  Y8, Y10, Y1
	VBROADCASTSS 8(SI), Y9
	VFMADD231PS  Y8, Y9, Y2
	VBROADCASTSS 12(SI), Y10
	VFMADD231PS  Y8, Y10, Y3
	VBROADCASTSS 16(SI), Y9
	VFMADD231PS  Y8, Y9, Y4
	VBROADCASTSS 20(SI), Y10
	VFMADD231PS  Y8, Y10, Y5
	VBROADCASTSS 24(SI), Y9
	VFMADD231PS  Y8, Y9, Y6
	VBROADCASTSS 28(SI), Y10
	VFMADD231PS  Y8, Y10, Y7

	// step 1
	VMOVUPS      32(DI), Y11
	VBROADCASTSS 32(SI), Y12
	VFMADD231PS  Y11, Y12, Y0
	VBROADCASTSS 36(SI), Y13
	VFMADD231PS  Y11, Y13, Y1
	VBROADCASTSS 40(SI), Y12
	VFMADD231PS  Y11, Y12, Y2
	VBROADCASTSS 44(SI), Y13
	VFMADD231PS  Y11, Y13, Y3
	VBROADCASTSS 48(SI), Y12
	VFMADD231PS  Y11, Y12, Y4
	VBROADCASTSS 52(SI), Y13
	VFMADD231PS  Y11, Y13, Y5
	VBROADCASTSS 56(SI), Y12
	VFMADD231PS  Y11, Y12, Y6
	VBROADCASTSS 60(SI), Y13
	VFMADD231PS  Y11, Y13, Y7

	ADDQ $64, SI
	ADDQ $64, DI
	DECQ CX
	JNE  loop2

tail:
	ANDQ $1, BX
	JZ   done

	VMOVUPS      (DI), Y8
	VBROADCASTSS (SI), Y9
	VFMADD231PS  Y8, Y9, Y0
	VBROADCASTSS 4(SI), Y10
	VFMADD231PS  Y8, Y10, Y1
	VBROADCASTSS 8(SI), Y9
	VFMADD231PS  Y8, Y9, Y2
	VBROADCASTSS 12(SI), Y10
	VFMADD231PS  Y8, Y10, Y3
	VBROADCASTSS 16(SI), Y9
	VFMADD231PS  Y8, Y9, Y4
	VBROADCASTSS 20(SI), Y10
	VFMADD231PS  Y8, Y10, Y5
	VBROADCASTSS 24(SI), Y9
	VFMADD231PS  Y8, Y9, Y6
	VBROADCASTSS 28(SI), Y10
	VFMADD231PS  Y8, Y10, Y7

done:
	VMOVUPS Y0, (DX)
	VMOVUPS Y1, 32(DX)
	VMOVUPS Y2, 64(DX)
	VMOVUPS Y3, 96(DX)
	VMOVUPS Y4, 128(DX)
	VMOVUPS Y5, 160(DX)
	VMOVUPS Y6, 192(DX)
	VMOVUPS Y7, 224(DX)
	VZEROUPPER
	RET

// func convRowAccumAsm(dst, x, w *float32, n, rows, kw, xStride int)
//
// dst[j] += Σ_{r<rows} Σ_{c<kw} w[r·kw+c] · x[r·xStride+c+j] for j < n.
// Unlike the GEMM tile above this kernel deliberately uses separate
// VMULPS/VADDPS (two roundings per term, in (r,c) order per lane), so its
// results are bit-identical to the portable scalar loop and to the direct
// convolution's per-sample path — vector lanes are independent output
// elements, never a reassociated sum. rows, kw and n must be >= 1.
TEXT ·convRowAccumAsm(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DX
	MOVQ x+8(FP), SI
	MOVQ w+16(FP), DI
	MOVQ n+24(FP), CX
	MOVQ rows+32(FP), R11
	MOVQ kw+40(FP), R12
	MOVQ xStride+48(FP), R13
	SHLQ $2, R13       // x row stride in bytes

crblock:
	CMPQ CX, $8
	JLT  crtail
	VMOVUPS (DX), Y0
	MOVQ    DI, R8     // weight cursor
	MOVQ    SI, R9     // x row cursor
	MOVQ    R11, R14   // remaining rows

crrow:
	MOVQ R9, R10       // x element cursor
	MOVQ R12, R15      // remaining taps in the row

crcol:
	VBROADCASTSS (R8), Y2
	VMOVUPS      (R10), Y1
	VMULPS       Y1, Y2, Y1
	VADDPS       Y1, Y0, Y0
	ADDQ         $4, R8
	ADDQ         $4, R10
	DECQ         R15
	JNE          crcol

	ADDQ R13, R9
	DECQ R14
	JNE  crrow

	VMOVUPS Y0, (DX)
	ADDQ    $32, DX
	ADDQ    $32, SI
	SUBQ    $8, CX
	JMP     crblock

crtail:
	// Four-wide XMM block for sub-YMM runs (the 4×4 feature planes of the
	// deepest conv layers land here): same ordering guarantees as above.
	CMPQ    CX, $4
	JLT     crscalar
	VMOVUPS (DX), X0
	MOVQ    DI, R8
	MOVQ    SI, R9
	MOVQ    R11, R14

cr4row:
	MOVQ R9, R10
	MOVQ R12, R15

cr4col:
	VBROADCASTSS (R8), X2
	VMOVUPS      (R10), X1
	VMULPS       X1, X2, X1
	VADDPS       X1, X0, X0
	ADDQ         $4, R8
	ADDQ         $4, R10
	DECQ         R15
	JNE          cr4col

	ADDQ R13, R9
	DECQ R14
	JNE  cr4row

	VMOVUPS X0, (DX)
	ADDQ    $16, DX
	ADDQ    $16, SI
	SUBQ    $4, CX
	JMP     crtail

crscalar:
	TESTQ CX, CX
	JZ    crdone
	MOVSS (DX), X0
	MOVQ  DI, R8
	MOVQ  SI, R9
	MOVQ  R11, R14

crtrow:
	MOVQ R9, R10
	MOVQ R12, R15

crtcol:
	MOVSS (R8), X2
	MULSS (R10), X2
	ADDSS X2, X0
	ADDQ  $4, R8
	ADDQ  $4, R10
	DECQ  R15
	JNE   crtcol

	ADDQ R13, R9
	DECQ R14
	JNE  crtrow

	MOVSS X0, (DX)
	ADDQ  $4, DX
	ADDQ  $4, SI
	DECQ  CX
	JMP   crscalar

crdone:
	VZEROUPPER
	RET

// func maxPool2x2RowAsm(dst, r0, r1 *float32, n, clamp int)
//
// dst[i] = max(-Inf, r0[2i], r0[2i+1], r1[2i], r1[2i+1]) with the scalar
// first-wins tie rule: each candidate replaces the accumulator only when
// strictly greater (ordered compare, so NaN never replaces), implemented
// as VCMPPS(GT_OQ)+VBLENDVPS rather than VMAXPS, whose tie rule would
// flip -0/+0 results. With clamp != 0 a final acc < 0 → +0 select is
// applied (ReLU absorbed into the pool read). Processes ⌊n/8⌋ blocks of
// eight outputs; the caller handles the remainder. n must be >= 8.
TEXT ·maxPool2x2RowAsm(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DX
	MOVQ r0+8(FP), SI
	MOVQ r1+16(FP), DI
	MOVQ n+24(FP), CX
	MOVQ clamp+32(FP), R8

	MOVQ         $0xFF800000, AX // float32 -Inf bit pattern
	MOVQ         AX, X7
	VBROADCASTSS X7, Y7
	VXORPS       Y6, Y6, Y6

mpblock:
	// Deinterleave 16 consecutive floats per row into even/odd columns:
	// shuffle picks (0,2) of each 128-bit lane from both halves, then a
	// quadword permute restores ascending order across lanes.
	VMOVUPS (SI), Y0
	VMOVUPS 32(SI), Y1
	VSHUFPS $0x88, Y1, Y0, Y2
	VPERMPD $0xD8, Y2, Y2
	VSHUFPS $0xDD, Y1, Y0, Y3
	VPERMPD $0xD8, Y3, Y3
	VMOVUPS (DI), Y0
	VMOVUPS 32(DI), Y1
	VSHUFPS $0x88, Y1, Y0, Y4
	VPERMPD $0xD8, Y4, Y4
	VSHUFPS $0xDD, Y1, Y0, Y5
	VPERMPD $0xD8, Y5, Y5

	// acc = -Inf, then candidates in the scalar visiting order:
	// r0 even, r0 odd, r1 even, r1 odd.
	VMOVAPS   Y7, Y0
	VCMPPS    $0x1E, Y0, Y2, Y1
	VBLENDVPS Y1, Y2, Y0, Y0
	VCMPPS    $0x1E, Y0, Y3, Y1
	VBLENDVPS Y1, Y3, Y0, Y0
	VCMPPS    $0x1E, Y0, Y4, Y1
	VBLENDVPS Y1, Y4, Y0, Y0
	VCMPPS    $0x1E, Y0, Y5, Y1
	VBLENDVPS Y1, Y5, Y0, Y0

	TESTQ R8, R8
	JZ    mpstore
	VCMPPS    $0x11, Y6, Y0, Y1
	VBLENDVPS Y1, Y6, Y0, Y0

mpstore:
	VMOVUPS Y0, (DX)
	ADDQ    $64, SI
	ADDQ    $64, DI
	ADDQ    $32, DX
	SUBQ    $8, CX
	CMPQ    CX, $8
	JGE     mpblock
	VZEROUPPER
	RET

// func convRowAccumQuadAsm(d0, d1, d2, d3, x0, x1, x2, x3, w *float32, n, rows, kw, xStride int)
//
// Four samples of convRowAccumAsm in lock-step: dk[j] += Σ w[r·kw+c] ·
// xk[r·xStride+c+j]. One weight broadcast feeds all four samples' rows,
// and per sample the tap order and rounding (separate multiply and add)
// are exactly those of the single-sample kernel, so results are
// bit-identical to four independent calls. rows, kw and n must be >= 1.
TEXT ·convRowAccumQuadAsm(SB), NOSPLIT, $0-104
	MOVQ d0+0(FP), DX
	MOVQ d1+8(FP), BX
	MOVQ d2+16(FP), R12
	MOVQ d3+24(FP), R13
	MOVQ x0+32(FP), SI
	MOVQ x1+40(FP), DI
	MOVQ x2+48(FP), R10
	MOVQ x3+56(FP), R11
	MOVQ n+72(FP), CX

qblock:
	CMPQ    CX, $8
	JLT     qtail
	VMOVUPS (DX), Y0
	VMOVUPS (BX), Y1
	VMOVUPS (R12), Y2
	VMOVUPS (R13), Y3
	MOVQ    w+64(FP), R8
	XORQ    R9, R9
	MOVQ    rows+80(FP), R14

qrow:
	MOVQ R9, AX
	MOVQ kw+88(FP), R15

qcol:
	VBROADCASTSS (R8), Y4
	VMOVUPS      (SI)(AX*1), Y5
	VMULPS       Y5, Y4, Y5
	VADDPS       Y5, Y0, Y0
	VMOVUPS      (DI)(AX*1), Y5
	VMULPS       Y5, Y4, Y5
	VADDPS       Y5, Y1, Y1
	VMOVUPS      (R10)(AX*1), Y5
	VMULPS       Y5, Y4, Y5
	VADDPS       Y5, Y2, Y2
	VMOVUPS      (R11)(AX*1), Y5
	VMULPS       Y5, Y4, Y5
	VADDPS       Y5, Y3, Y3
	ADDQ         $4, R8
	ADDQ         $4, AX
	DECQ         R15
	JNE          qcol

	MOVQ xStride+96(FP), R15
	SHLQ $2, R15
	ADDQ R15, R9
	DECQ R14
	JNE  qrow

	VMOVUPS Y0, (DX)
	VMOVUPS Y1, (BX)
	VMOVUPS Y2, (R12)
	VMOVUPS Y3, (R13)
	ADDQ    $32, DX
	ADDQ    $32, BX
	ADDQ    $32, R12
	ADDQ    $32, R13
	ADDQ    $32, SI
	ADDQ    $32, DI
	ADDQ    $32, R10
	ADDQ    $32, R11
	SUBQ    $8, CX
	JMP     qblock

qtail:
	CMPQ    CX, $4
	JLT     qscalar
	VMOVUPS (DX), X0
	VMOVUPS (BX), X1
	VMOVUPS (R12), X2
	VMOVUPS (R13), X3
	MOVQ    w+64(FP), R8
	XORQ    R9, R9
	MOVQ    rows+80(FP), R14

q4row:
	MOVQ R9, AX
	MOVQ kw+88(FP), R15

q4col:
	VBROADCASTSS (R8), X4
	VMOVUPS      (SI)(AX*1), X5
	VMULPS       X5, X4, X5
	VADDPS       X5, X0, X0
	VMOVUPS      (DI)(AX*1), X5
	VMULPS       X5, X4, X5
	VADDPS       X5, X1, X1
	VMOVUPS      (R10)(AX*1), X5
	VMULPS       X5, X4, X5
	VADDPS       X5, X2, X2
	VMOVUPS      (R11)(AX*1), X5
	VMULPS       X5, X4, X5
	VADDPS       X5, X3, X3
	ADDQ         $4, R8
	ADDQ         $4, AX
	DECQ         R15
	JNE          q4col

	MOVQ xStride+96(FP), R15
	SHLQ $2, R15
	ADDQ R15, R9
	DECQ R14
	JNE  q4row

	VMOVUPS X0, (DX)
	VMOVUPS X1, (BX)
	VMOVUPS X2, (R12)
	VMOVUPS X3, (R13)
	ADDQ    $16, DX
	ADDQ    $16, BX
	ADDQ    $16, R12
	ADDQ    $16, R13
	ADDQ    $16, SI
	ADDQ    $16, DI
	ADDQ    $16, R10
	ADDQ    $16, R11
	SUBQ    $4, CX
	JMP     qtail

qscalar:
	TESTQ CX, CX
	JZ    qdone
	MOVSS (DX), X0
	MOVSS (BX), X1
	MOVSS (R12), X2
	MOVSS (R13), X3
	MOVQ  w+64(FP), R8
	XORQ  R9, R9
	MOVQ  rows+80(FP), R14

qsrow:
	MOVQ R9, AX
	MOVQ kw+88(FP), R15

qscol:
	MOVSS (R8), X4
	MOVSS (SI)(AX*1), X5
	MULSS X4, X5
	ADDSS X5, X0
	MOVSS (DI)(AX*1), X5
	MULSS X4, X5
	ADDSS X5, X1
	MOVSS (R10)(AX*1), X5
	MULSS X4, X5
	ADDSS X5, X2
	MOVSS (R11)(AX*1), X5
	MULSS X4, X5
	ADDSS X5, X3
	ADDQ  $4, R8
	ADDQ  $4, AX
	DECQ  R15
	JNE   qscol

	MOVQ xStride+96(FP), R15
	SHLQ $2, R15
	ADDQ R15, R9
	DECQ R14
	JNE  qsrow

	MOVSS X0, (DX)
	MOVSS X1, (BX)
	MOVSS X2, (R12)
	MOVSS X3, (R13)
	ADDQ  $4, DX
	ADDQ  $4, BX
	ADDQ  $4, R12
	ADDQ  $4, R13
	ADDQ  $4, SI
	ADDQ  $4, DI
	ADDQ  $4, R10
	ADDQ  $4, R11
	DECQ  CX
	JMP   qscalar

qdone:
	VZEROUPPER
	RET

// func reluAsm(p *float32, n int)
//
// p[i] = (0 > p[i]) ? +0 : p[i] — exactly the scalar `if v < 0 { v = 0 }`:
// MAXPS with +0 as the first operand returns the second on ties and
// unordered, so -0 and NaN pass through unchanged while negatives become
// +0. n must be >= 1.
TEXT ·reluAsm(SB), NOSPLIT, $0-16
	MOVQ   p+0(FP), SI
	MOVQ   n+8(FP), CX
	VXORPS Y1, Y1, Y1
	CMPQ   CX, $8
	JLT    rltail

rlblock:
	VMOVUPS (SI), Y0
	VMAXPS  Y0, Y1, Y0
	VMOVUPS Y0, (SI)
	ADDQ    $32, SI
	SUBQ    $8, CX
	CMPQ    CX, $8
	JGE     rlblock

rltail:
	TESTQ CX, CX
	JZ    rldone
	MOVSS (SI), X0
	XORPS X2, X2
	MAXSS X0, X2
	MOVSS X2, (SI)
	ADDQ  $4, SI
	DECQ  CX
	JMP   rltail

rldone:
	VZEROUPPER
	RET
