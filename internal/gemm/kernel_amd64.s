// AVX2+FMA micro-kernel and CPUID feature probes for the float32 GEMM
// path. The micro-kernel computes an 8-row × 8-column tile of C from
// MR=8-packed A panels and NR=8-packed B panels: per k step it loads one
// B row vector and fuses eight broadcast-multiply-adds, one per A row,
// into eight YMM accumulators.

#include "textflag.h"

// func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func microKernel8x8asm(k int, a, b *float32, acc *[64]float32)
//
// acc[i*8+j] = Σ_p a[p*8+i] · b[p*8+j] for the full 8×8 tile. The k loop
// is unrolled by two; Y0–Y7 hold one output row each (8 columns wide).
TEXT ·microKernel8x8asm(SB), NOSPLIT, $0-32
	MOVQ k+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DI
	MOVQ acc+24(FP), DX

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

	MOVQ CX, BX
	SHRQ $1, CX        // CX = k/2 double steps
	JZ   tail

loop2:
	// step 0
	VMOVUPS      (DI), Y8
	VBROADCASTSS (SI), Y9
	VFMADD231PS  Y8, Y9, Y0
	VBROADCASTSS 4(SI), Y10
	VFMADD231PS  Y8, Y10, Y1
	VBROADCASTSS 8(SI), Y9
	VFMADD231PS  Y8, Y9, Y2
	VBROADCASTSS 12(SI), Y10
	VFMADD231PS  Y8, Y10, Y3
	VBROADCASTSS 16(SI), Y9
	VFMADD231PS  Y8, Y9, Y4
	VBROADCASTSS 20(SI), Y10
	VFMADD231PS  Y8, Y10, Y5
	VBROADCASTSS 24(SI), Y9
	VFMADD231PS  Y8, Y9, Y6
	VBROADCASTSS 28(SI), Y10
	VFMADD231PS  Y8, Y10, Y7

	// step 1
	VMOVUPS      32(DI), Y11
	VBROADCASTSS 32(SI), Y12
	VFMADD231PS  Y11, Y12, Y0
	VBROADCASTSS 36(SI), Y13
	VFMADD231PS  Y11, Y13, Y1
	VBROADCASTSS 40(SI), Y12
	VFMADD231PS  Y11, Y12, Y2
	VBROADCASTSS 44(SI), Y13
	VFMADD231PS  Y11, Y13, Y3
	VBROADCASTSS 48(SI), Y12
	VFMADD231PS  Y11, Y12, Y4
	VBROADCASTSS 52(SI), Y13
	VFMADD231PS  Y11, Y13, Y5
	VBROADCASTSS 56(SI), Y12
	VFMADD231PS  Y11, Y12, Y6
	VBROADCASTSS 60(SI), Y13
	VFMADD231PS  Y11, Y13, Y7

	ADDQ $64, SI
	ADDQ $64, DI
	DECQ CX
	JNE  loop2

tail:
	ANDQ $1, BX
	JZ   done

	VMOVUPS      (DI), Y8
	VBROADCASTSS (SI), Y9
	VFMADD231PS  Y8, Y9, Y0
	VBROADCASTSS 4(SI), Y10
	VFMADD231PS  Y8, Y10, Y1
	VBROADCASTSS 8(SI), Y9
	VFMADD231PS  Y8, Y9, Y2
	VBROADCASTSS 12(SI), Y10
	VFMADD231PS  Y8, Y10, Y3
	VBROADCASTSS 16(SI), Y9
	VFMADD231PS  Y8, Y9, Y4
	VBROADCASTSS 20(SI), Y10
	VFMADD231PS  Y8, Y10, Y5
	VBROADCASTSS 24(SI), Y9
	VFMADD231PS  Y8, Y9, Y6
	VBROADCASTSS 28(SI), Y10
	VFMADD231PS  Y8, Y10, Y7

done:
	VMOVUPS Y0, (DX)
	VMOVUPS Y1, 32(DX)
	VMOVUPS Y2, 64(DX)
	VMOVUPS Y3, 96(DX)
	VMOVUPS Y4, 128(DX)
	VMOVUPS Y5, 160(DX)
	VMOVUPS Y6, 192(DX)
	VMOVUPS Y7, 224(DX)
	VZEROUPPER
	RET
