//go:build !race

package gemm

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates, so allocation-count tests skip themselves.
const raceEnabled = false
