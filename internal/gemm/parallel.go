package gemm

import "runtime"

// workers is the goroutine fan-out for parallel entry points. It mirrors
// ops.Workers (ops.SetWorkers keeps the two in lock-step) but lives here so
// the package has no dependency on ops — ops depends on gemm, not the
// reverse.
var workers = runtime.GOMAXPROCS(0)

// SetWorkers sets the parallel fan-out, clamped to at least 1, and returns
// the value applied. Prefer ops.SetWorkers, which updates both packages.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	workers = n
	return n
}

// Workers reports the current parallel fan-out.
func Workers() int { return workers }
