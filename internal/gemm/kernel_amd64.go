//go:build amd64

package gemm

import (
	"os"
	"unsafe"
)

// fmaAvailable caches the one-time CPU feature detection.
var fmaAvailable = detectFMA()

// useFMA gates the 8×8 AVX2+FMA float32 micro-kernel. Detection runs once
// at init; TEMCO_NOSIMD=1 forces the portable scalar tile (useful when
// bisecting numerical differences, since FMA rounds once per multiply-add).
// SetSIMD flips it at runtime under the same hardware gate.
var useFMA = fmaAvailable && os.Getenv("TEMCO_NOSIMD") == ""

// simdAvailable reports whether the hardware supports the vector kernel,
// independent of whether it is currently enabled.
func simdAvailable() bool { return fmaAvailable }

//go:noescape
func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbvAsm() (eax, edx uint32)

//go:noescape
func microKernel8x8asm(k int, a, b *float32, acc *[64]float32)

//go:noescape
func convRowAccumAsm(dst, x, w *float32, n, rows, kw, xStride int)

//go:noescape
func convRowAccumQuadAsm(d0, d1, d2, d3, x0, x1, x2, x3, w *float32, n, rows, kw, xStride int)

// convRowAccumQuadArch runs the four-sample AVX row-accumulation kernel
// when the vector path is enabled; same no-FMA guarantee as the
// single-sample kernel.
func convRowAccumQuadArch(d0, d1, d2, d3, x0, x1, x2, x3, w []float32, rows, kw, xStride int) bool {
	if !useFMA {
		return false
	}
	convRowAccumQuadAsm(&d0[0], &d1[0], &d2[0], &d3[0],
		&x0[0], &x1[0], &x2[0], &x3[0], &w[0], len(d0), rows, kw, xStride)
	return true
}

//go:noescape
func maxPool2x2RowAsm(dst, r0, r1 *float32, n, clamp int)

//go:noescape
func reluAsm(p *float32, n int)

// maxPool2x2Arch runs ⌊n/8⌋ eight-wide blocks of the pool row when the
// vector path is enabled; the caller finishes the remainder. Compare+blend
// (not VMAXPS) keeps the scalar tie rule, so results never change.
func maxPool2x2Arch(dst, r0, r1 []float32, clamp bool) bool {
	if !useFMA {
		return false
	}
	c := 0
	if clamp {
		c = 1
	}
	maxPool2x2RowAsm(&dst[0], &r0[0], &r1[0], len(dst), c)
	return true
}

// reluArch clamps in place with MAXPS when the vector path is enabled;
// +0 as the tie-keeping operand preserves -0 and NaN exactly like the
// scalar loop.
func reluArch(v []float32) bool {
	if !useFMA {
		return false
	}
	reluAsm(&v[0], len(v))
	return true
}

// convRowAccumArch runs the AVX row-accumulation kernel when the vector
// path is enabled. It uses separate multiply and add instructions (no FMA),
// so enabling it never changes results relative to the portable loop; the
// gate exists only to share the TEMCO_NOSIMD escape hatch.
func convRowAccumArch(dst, x, w []float32, rows, kw, xStride int) bool {
	if !useFMA {
		return false
	}
	convRowAccumAsm(&dst[0], &x[0], &w[0], len(dst), rows, kw, xStride)
	return true
}

// detectFMA reports whether the CPU and OS support AVX2 and FMA with YMM
// state saving (CPUID leaves 1 and 7 plus XGETBV, the standard sequence).
func detectFMA() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if ecx1&fma == 0 || ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	if lo, _ := xgetbvAsm(); lo&0x6 != 0x6 {
		return false // OS does not save XMM+YMM state
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

// microKernel8x8F32 bridges the generic macro-kernel onto the assembly
// tile. It is only reachable when T is float32 (tileDims yields an 8-tile
// solely for float32 with useFMA set), so the unsafe reinterpretation is
// sound; panels are non-empty because kcEff ≥ 1.
func microKernel8x8F32[T float](kcEff int, aPanel, bPanel []T, acc *[maxTile * maxTile]T) {
	microKernel8x8asm(kcEff,
		(*float32)(unsafe.Pointer(&aPanel[0])),
		(*float32)(unsafe.Pointer(&bPanel[0])),
		(*[64]float32)(unsafe.Pointer(acc)))
}
