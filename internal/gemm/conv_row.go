package gemm

// ConvRowAccum accumulates a stride-1 convolution row:
//
//	dst[j] += Σ_{r<rows} Σ_{c<kw} w[r·kw+c] · x[r·xStride+c+j]
//
// for every j < len(dst). Each output element keeps its own (r, c)-ordered
// accumulation chain with one rounding per multiply and one per add, so the
// vector path is bit-identical to this portable loop and to a scalar direct
// convolution visiting the same taps in the same order — vectorization is
// across independent output columns, never across a sum.
//
// The batched direct-conv kernel uses this for interior output columns,
// where the full kh×kw window is in bounds: rows and kw are the clipped
// kernel extents and xStride is the input row stride.
func ConvRowAccum(dst, x, w []float32, rows, kw, xStride int) {
	n := len(dst)
	if n == 0 || rows <= 0 || kw <= 0 {
		return
	}
	if need := (rows-1)*xStride + kw - 1 + n; need > len(x) {
		panic("gemm: ConvRowAccum x too short")
	}
	if rows*kw > len(w) {
		panic("gemm: ConvRowAccum w too short")
	}
	if convRowAccumArch(dst, x, w, rows, kw, xStride) {
		return
	}
	for r := 0; r < rows; r++ {
		wr := w[r*kw : r*kw+kw]
		xr := x[r*xStride:]
		for c, v := range wr {
			xc := xr[c : c+n]
			for j, xv := range xc {
				dst[j] += xv * v
			}
		}
	}
}

// ConvRowAccumQuad is ConvRowAccum over four samples in lock-step: one
// weight broadcast feeds all four, which is what makes the batched direct
// conv's per-tap cost drop below the single-sample kernel's. Each sample
// keeps its own accumulation chain in the single-sample tap order, so the
// result is bit-identical to four ConvRowAccum calls. All four dst slices
// must share one length.
func ConvRowAccumQuad(d0, d1, d2, d3, x0, x1, x2, x3, w []float32, rows, kw, xStride int) {
	n := len(d0)
	if n == 0 || rows <= 0 || kw <= 0 {
		return
	}
	if len(d1) != n || len(d2) != n || len(d3) != n {
		panic("gemm: ConvRowAccumQuad dst length mismatch")
	}
	need := (rows-1)*xStride + kw - 1 + n
	if need > len(x0) || need > len(x1) || need > len(x2) || need > len(x3) {
		panic("gemm: ConvRowAccumQuad x too short")
	}
	if rows*kw > len(w) {
		panic("gemm: ConvRowAccumQuad w too short")
	}
	if convRowAccumQuadArch(d0, d1, d2, d3, x0, x1, x2, x3, w, rows, kw, xStride) {
		return
	}
	ConvRowAccum(d0, x0, w, rows, kw, xStride)
	ConvRowAccum(d1, x1, w, rows, kw, xStride)
	ConvRowAccum(d2, x2, w, rows, kw, xStride)
	ConvRowAccum(d3, x3, w, rows, kw, xStride)
}
