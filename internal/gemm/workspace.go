package gemm

import (
	"math/bits"
	"sync"

	"temco/internal/faultinject"
)

// The workspace arena: power-of-two size-class pools of scratch slices.
// Kernels borrow packing panels, im2col column buffers, and fused-kernel
// tile scratch from here instead of calling make on every invocation, so
// steady-state inference performs zero hot-path allocations. The API hands
// out *[]T rather than []T because storing a bare slice in a sync.Pool
// boxes a fresh header on every Put; a pointer round-trips allocation-free.
//
// Buffers are returned with len == the requested size but are NOT zeroed:
// callers own the full initialization of the region they read.

// poolSet is a set of sync.Pools bucketed by ceil(log2(size)). Slices are
// always allocated at exactly their class capacity so Put can re-bucket
// from cap alone.
type poolSet[T any] struct {
	classes [48]sync.Pool
}

func (ps *poolSet[T]) get(n int) *[]T {
	// Fault-injection hook: may panic to simulate an allocation failure.
	// One atomic nil-check when no injector is installed.
	faultinject.Alloc()
	if n <= 0 {
		s := []T{}
		return &s
	}
	cls := bits.Len(uint(n - 1))
	if cls >= len(ps.classes) {
		poolMisses.Add(1)
		s := make([]T, n)
		return &s
	}
	if v := ps.classes[cls].Get(); v != nil {
		poolHits.Add(1)
		p := v.(*[]T)
		*p = (*p)[:n]
		return p
	}
	poolMisses.Add(1)
	s := make([]T, 1<<cls)
	s = s[:n]
	return &s
}

func (ps *poolSet[T]) put(p *[]T) {
	if p == nil || cap(*p) == 0 {
		return
	}
	cls := bits.Len(uint(cap(*p))) - 1
	if cls >= len(ps.classes) || 1<<cls != cap(*p) {
		return // oversized or foreign slice: let the GC take it
	}
	*p = (*p)[:cap(*p)]
	ps.classes[cls].Put(p)
}

var (
	f32Pool  poolSet[float32]
	f64Pool  poolSet[float64]
	i32Pool  poolSet[int32]
	boolPool poolSet[bool]
)

// GetF32 borrows a float32 scratch slice of length n (uninitialized).
func GetF32(n int) *[]float32 { return f32Pool.get(n) }

// PutF32 returns a slice borrowed with GetF32 to the arena.
func PutF32(p *[]float32) { f32Pool.put(p) }

// GetF64 borrows a float64 scratch slice of length n (uninitialized).
func GetF64(n int) *[]float64 { return f64Pool.get(n) }

// PutF64 returns a slice borrowed with GetF64 to the arena.
func PutF64(p *[]float64) { f64Pool.put(p) }

// GetI32 borrows an int32 scratch slice of length n (uninitialized).
func GetI32(n int) *[]int32 { return i32Pool.get(n) }

// PutI32 returns a slice borrowed with GetI32 to the arena.
func PutI32(p *[]int32) { i32Pool.put(p) }

// GetBool borrows a bool scratch slice of length n (uninitialized).
func GetBool(n int) *[]bool { return boolPool.get(n) }

// PutBool returns a slice borrowed with GetBool to the arena.
func PutBool(p *[]bool) { boolPool.put(p) }

// getWS dispatches the generic gemm core onto the per-type pools. The
// float constraint admits exactly float32 and float64, so the two-way
// branch is total.
func getWS[T float](n int) *[]T {
	var z T
	if _, ok := any(z).(float32); ok {
		return any(f32Pool.get(n)).(*[]T)
	}
	return any(f64Pool.get(n)).(*[]T)
}

func putWS[T float](p *[]T) {
	if _, ok := any(p).(*[]float32); ok {
		f32Pool.put(any(p).(*[]float32))
		return
	}
	f64Pool.put(any(p).(*[]float64))
}
