package gemm

// Pre-packed operand panels for plan-once/run-many execution. A constant
// GEMM operand (a convolution or Linear weight) can be packed into the
// blocked kernel's panel layout exactly once at compile time and then
// consumed by every subsequent product, eliminating the per-call packing
// pass. The packed layouts are byte-for-byte the ones packA/packB produce,
// and the macro-kernel's blocking schedule does not change, so pre-packed
// products are bit-identical to the pack-on-the-fly entry points.
//
// Packs capture the micro-kernel tile (MR, NR) active when they were built.
// Flipping the SIMD mode afterwards (SetSIMD, TEMCO_NOSIMD) invalidates
// them; consuming a stale pack panics rather than corrupting results.

// PackedA is a row operand packed once into packA layout: MR-row panels
// spanning the full K dimension. Conv and fused-kernel weights are the A
// operand of their GEMMs, so this is their pre-packed form.
type PackedA struct {
	m, k, mr int
	buf      []float32
}

// Bytes reports the packed panel footprint.
func (p *PackedA) Bytes() int64 { return int64(len(p.buf)) * 4 }

// PackA packs the m×k row-major matrix a (leading dimension lda) for use
// as the A operand of GemmPackedA/SerialPackedA.
func PackA(m, k int, a []float32, lda int) *PackedA {
	if m < 0 || k < 0 {
		panic("gemm: PackA: negative dimensions")
	}
	if lda < k || (m > 0 && k > 0 && len(a) < (m-1)*lda+k) {
		panic("gemm: PackA: A too small")
	}
	mr, _ := tileDims[float32]()
	buf := make([]float32, roundUp(m, mr)*k)
	packA(buf, a, lda, m, k, mr, false)
	prePacks.Add(1)
	prePackedBytes.Add(uint64(len(buf)) * 4)
	return &PackedA{m: m, k: k, mr: mr, buf: buf}
}

// GemmPackedA computes C = alpha·A·B + beta·C with A supplied pre-packed;
// B is k×n row-major (ldb), C is m×n (ldc). Parallel over column strips,
// bit-identical to Gemm on the same operands.
func GemmPackedA(n int, alpha float32, pa *PackedA, b []float32, ldb int, beta float32, c []float32, ldc int) {
	gemmPackedA(true, n, alpha, pa, b, ldb, beta, c, ldc)
}

// SerialPackedA is GemmPackedA restricted to the calling goroutine (for
// callers already inside a parallelFor region, like the fused kernel).
func SerialPackedA(n int, alpha float32, pa *PackedA, b []float32, ldb int, beta float32, c []float32, ldc int) {
	gemmPackedA(false, n, alpha, pa, b, ldb, beta, c, ldc)
}

func gemmPackedA(parallel bool, n int, alpha float32, pa *PackedA, b []float32, ldb int, beta float32, c []float32, ldc int) {
	if pa == nil {
		panic("gemm: nil PackedA")
	}
	mr, nr := tileDims[float32]()
	if pa.mr != mr {
		panic("gemm: PackedA was built for a different micro-kernel tile (SIMD mode changed since PackA); repack")
	}
	m, k := pa.m, pa.k
	if n < 0 {
		panic("gemm: negative dimension n")
	}
	if ldb < n || (k > 0 && n > 0 && len(b) < (k-1)*ldb+n) {
		panic("gemm: B too small for pre-packed product")
	}
	if ldc < n || (m > 0 && n > 0 && len(c) < (m-1)*ldc+n) {
		panic("gemm: C too small for pre-packed product")
	}
	if m == 0 || n == 0 {
		return
	}
	if k == 0 || alpha == 0 {
		scaleC(m, n, beta, c, ldc)
		return
	}
	gemmCore(parallel, false, m, n, k, mr, nr, alpha, pa.buf, b, ldb, nil, beta, c, ldc)
}

// PackedB is a column operand packed once into the full-width B-panel
// layout: for each KC block of rows, NR-column panels across all n columns
// (padded to a multiple of NR), each panel row-major over the KC slice —
// exactly the panels packB emits per block, concatenated. Linear weights,
// consumed transposed, are the B operand of their GEMM.
type PackedB struct {
	k, n, nr int
	trans    bool
	buf      []float32
}

// Bytes reports the packed panel footprint.
func (p *PackedB) Bytes() int64 { return int64(len(p.buf)) * 4 }

// PackB packs the k×n row-major matrix b (leading dimension ldb) for use
// as the B operand of GemmPrePacked.
func PackB(k, n int, b []float32, ldb int) *PackedB {
	return packBFull(k, n, b, ldb, false)
}

// PackBT packs the n×k row-major matrix b (leading dimension ldb), consumed
// transposed, for use as the B operand of GemmPrePackedBT. This is the
// natural pre-pack for Linear's [Out, In] weight.
func PackBT(k, n int, b []float32, ldb int) *PackedB {
	return packBFull(k, n, b, ldb, true)
}

func packBFull(k, n int, b []float32, ldb int, trans bool) *PackedB {
	if k < 0 || n < 0 {
		panic("gemm: PackB: negative dimensions")
	}
	bRows, bCols := k, n
	if trans {
		bRows, bCols = n, k
	}
	if ldb < bCols || (bRows > 0 && bCols > 0 && len(b) < (bRows-1)*ldb+bCols) {
		panic("gemm: PackB: B too small")
	}
	_, nr := tileDims[float32]()
	nR := roundUp(n, nr)
	buf := make([]float32, k*nR)
	for pc := 0; pc < k; pc += kc {
		kcEff := min(kc, k-pc)
		packB(buf[pc*nR:pc*nR+kcEff*nR], b, ldb, pc, kcEff, 0, n, nr, trans)
	}
	prePacks.Add(1)
	prePackedBytes.Add(uint64(len(buf)) * 4)
	return &PackedB{k: k, n: n, nr: nr, trans: trans, buf: buf}
}

// GemmPrePacked computes C = alpha·A·B + beta·C with B supplied pre-packed
// by PackB; A is m×k row-major (lda), C is m×n (ldc). Parallel over column
// strips, bit-identical to Gemm on the same operands.
func GemmPrePacked(m int, alpha float32, a []float32, lda int, pb *PackedB, beta float32, c []float32, ldc int) {
	gemmPrePacked(true, false, m, alpha, a, lda, pb, beta, c, ldc)
}

// GemmPrePackedBT is GemmBT with the transposed weight supplied pre-packed
// by PackBT: C = alpha·A·Bᵀ + beta·C, bit-identical to GemmBT.
func GemmPrePackedBT(m int, alpha float32, a []float32, lda int, pb *PackedB, beta float32, c []float32, ldc int) {
	gemmPrePacked(true, true, m, alpha, a, lda, pb, beta, c, ldc)
}

func gemmPrePacked(parallel, wantTrans bool, m int, alpha float32, a []float32, lda int, pb *PackedB, beta float32, c []float32, ldc int) {
	if pb == nil {
		panic("gemm: nil PackedB")
	}
	if pb.trans != wantTrans {
		panic("gemm: PackedB transpose flavor does not match the entry point (PackB↔GemmPrePacked, PackBT↔GemmPrePackedBT)")
	}
	mr, nr := tileDims[float32]()
	if pb.nr != nr {
		panic("gemm: PackedB was built for a different micro-kernel tile (SIMD mode changed since PackB); repack")
	}
	n, k := pb.n, pb.k
	if m < 0 {
		panic("gemm: negative dimension m")
	}
	if lda < k || (m > 0 && k > 0 && len(a) < (m-1)*lda+k) {
		panic("gemm: A too small for pre-packed product")
	}
	if ldc < n || (m > 0 && n > 0 && len(c) < (m-1)*ldc+n) {
		panic("gemm: C too small for pre-packed product")
	}
	if m == 0 || n == 0 {
		return
	}
	if k == 0 || alpha == 0 {
		scaleC(m, n, beta, c, ldc)
		return
	}
	apPtr := getWS[float32](roundUp(m, mr) * k)
	defer putWS(apPtr)
	ap := *apPtr
	packA(ap, a, lda, m, k, mr, false)
	gemmCore(parallel, false, m, n, k, mr, nr, alpha, ap, nil, 0, pb.buf, beta, c, ldc)
}
