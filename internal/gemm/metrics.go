package gemm

import "temco/internal/obs"

// RegisterMetrics exposes the workspace-pool and pre-pack counters on an
// obs.Registry as sampled CounterFuncs: the package's own atomics stay the
// single source of truth, so a /metrics scrape and a PoolStatsSnapshot in
// the same process can never disagree. Register on obs.Default() once at
// process start (registration is idempotent per registry).
func RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("temco_gemm_pool_hits_total",
		"Workspace borrows satisfied from a pool.",
		func() float64 { return float64(poolHits.Load()) })
	reg.CounterFunc("temco_gemm_pool_misses_total",
		"Workspace borrows that had to allocate.",
		func() float64 { return float64(poolMisses.Load()) })
	reg.CounterFunc("temco_gemm_prepacks_total",
		"PackA/PackB/PackBT invocations.",
		func() float64 { return float64(prePacks.Load()) })
	reg.CounterFunc("temco_gemm_prepacked_bytes",
		"Bytes held by pre-packed operand panels.",
		func() float64 { return float64(prePackedBytes.Load()) })
}
