package gemm

import (
	"math"
	"math/rand"
	"testing"
)

// refGemm is the naive float64 reference: C = alpha·op(A)·op(B) + beta·C.
func refGemm(transA, transB bool, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				var av, bv float64
				if transA {
					av = a[p*lda+i]
				} else {
					av = a[i*lda+p]
				}
				if transB {
					bv = b[j*ldb+p]
				} else {
					bv = b[p*ldb+j]
				}
				s += av * bv
			}
			old := c[i*ldc+j]
			if beta == 0 {
				old = 0
			} else {
				old *= beta
			}
			c[i*ldc+j] = alpha*s + old
		}
	}
}

func randSlice(r *rand.Rand, n int) ([]float32, []float64) {
	f32 := make([]float32, n)
	f64 := make([]float64, n)
	for i := range f32 {
		v := float32(r.NormFloat64() * 0.25)
		f32[i] = v
		f64[i] = float64(v)
	}
	return f32, f64
}

func checkCase(t *testing.T, r *rand.Rand, transA, transB bool, m, n, k int, alpha, beta float32) {
	t.Helper()
	aLen, bLen := m*k, k*n
	if aLen == 0 {
		aLen = 1
	}
	if bLen == 0 {
		bLen = 1
	}
	a32, a64 := randSlice(r, aLen)
	b32, b64 := randSlice(r, bLen)
	c32, c64 := randSlice(r, max(m*n, 1))

	lda, ldb := k, n
	if transA {
		lda = m
	}
	if transB {
		ldb = k
	}
	refGemm(transA, transB, m, n, k, float64(alpha), a64, lda, b64, ldb, float64(beta), c64, n)
	switch {
	case transA && !transB:
		GemmAT(m, n, k, alpha, a32, lda, b32, ldb, beta, c32, n)
	case !transA && transB:
		GemmBT(m, n, k, alpha, a32, lda, b32, ldb, beta, c32, n)
	default:
		Gemm(m, n, k, alpha, a32, lda, b32, ldb, beta, c32, n)
	}
	var maxDiff float64
	for i := 0; i < m*n; i++ {
		if d := math.Abs(float64(c32[i]) - c64[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-4 {
		t.Fatalf("transA=%v transB=%v m=%d n=%d k=%d alpha=%v beta=%v: max abs diff %g",
			transA, transB, m, n, k, alpha, beta, maxDiff)
	}
}

// TestGemmRandomShapes sweeps randomized shapes (including micro-tile edge
// remainders and K=0/M=1 degenerate cases) against the float64 reference.
func TestGemmRandomShapes(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		m := r.Intn(40)
		n := r.Intn(40)
		k := r.Intn(48)
		alphas := []float32{1, 0.5, -1}
		betas := []float32{0, 1, -0.5}
		mode := r.Intn(3) // 0: plain, 1: Aᵀ, 2: Bᵀ
		checkCase(t, r, mode == 1, mode == 2, m, n, k,
			alphas[r.Intn(len(alphas))], betas[r.Intn(len(betas))])
	}
}

// TestGemmEdgeShapes pins the shapes called out in the acceptance criteria:
// K=0 (pure beta scaling), M=1, odd tile remainders, and sizes that cross
// the KC and NC cache-block boundaries.
func TestGemmEdgeShapes(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	cases := []struct{ m, n, k int }{
		{1, 1, 1},
		{1, 17, 9},     // M=1
		{5, 7, 3},      // odd everything
		{4, 4, 0},      // K=0: C = beta·C
		{3, 1, 20},     // N=1
		{37, 129, 300}, // crosses KC=256
		{9, 1030, 33},  // crosses NC=512
		{8, 8, kc + 1}, // exactly one tile, KC remainder of 1
		{4, 4, 7},      // one scalar-fallback tile
	}
	for _, tc := range cases {
		for _, beta := range []float32{0, 1} {
			checkCase(t, r, false, false, tc.m, tc.n, tc.k, 1, beta)
		}
	}
}

// TestGemmAlphaZero verifies alpha==0 degrades to C = beta·C without
// touching A or B.
func TestGemmAlphaZero(t *testing.T) {
	c := []float32{1, 2, 3, 4}
	Gemm(2, 2, 3, 0, make([]float32, 6), 3, make([]float32, 6), 2, 0.5, c, 2)
	want := []float32{0.5, 1, 1.5, 2}
	for i := range c {
		if c[i] != want[i] {
			t.Fatalf("alpha=0: c=%v want %v", c, want)
		}
	}
}

// TestGemmDeterministicAcrossWorkers requires bit-identical output for any
// worker count: the NR-aligned strip split must not change per-element
// accumulation order.
func TestGemmDeterministicAcrossWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m, n, k := 61, 777, 130
	a, _ := randSlice(r, m*k)
	b, _ := randSlice(r, k*n)
	orig := Workers()
	defer SetWorkers(orig)

	SetWorkers(1)
	c1 := make([]float32, m*n)
	Gemm(m, n, k, 1, a, k, b, n, 0, c1, n)
	for _, w := range []int{2, 3, 8} {
		SetWorkers(w)
		cw := make([]float32, m*n)
		Gemm(m, n, k, 1, a, k, b, n, 0, cw, n)
		for i := range c1 {
			if c1[i] != cw[i] {
				t.Fatalf("workers=%d: element %d differs: %v vs %v", w, i, c1[i], cw[i])
			}
		}
	}
}

// TestSetWorkersClamps pins the ≥1 clamp.
func TestSetWorkersClamps(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)
	for _, n := range []int{0, -3} {
		if got := SetWorkers(n); got != 1 || Workers() != 1 {
			t.Fatalf("SetWorkers(%d) = %d, Workers() = %d; want 1", n, got, Workers())
		}
	}
	if got := SetWorkers(6); got != 6 {
		t.Fatalf("SetWorkers(6) = %d", got)
	}
}

// TestGemmZeroAlloc proves steady-state calls take all scratch from the
// workspace arena: zero allocations per op after warmup.
func TestGemmZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	orig := Workers()
	defer SetWorkers(orig)
	SetWorkers(1) // goroutine spawning (not scratch) allocates; pin it out
	r := rand.New(rand.NewSource(5))
	m, n, k := 64, 300, 128
	a, _ := randSlice(r, m*k)
	b, _ := randSlice(r, k*n)
	c := make([]float32, m*n)
	Gemm(m, n, k, 1, a, k, b, n, 0, c, n) // warm the arena
	allocs := testing.AllocsPerRun(10, func() {
		Gemm(m, n, k, 1, a, k, b, n, 0, c, n)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Gemm allocates %v objects/op, want 0", allocs)
	}
}

// TestWorkspacePoolRoundTrip checks the arena hands back len-n slices and
// reuses capacity across size classes.
func TestWorkspacePoolRoundTrip(t *testing.T) {
	p := GetF32(100)
	if len(*p) != 100 || cap(*p) != 128 {
		t.Fatalf("GetF32(100): len=%d cap=%d, want 100/128", len(*p), cap(*p))
	}
	PutF32(p)
	q := GetI32(0)
	if len(*q) != 0 {
		t.Fatalf("GetI32(0): len=%d", len(*q))
	}
	PutI32(q)
	bp := GetBool(9)
	if len(*bp) != 9 {
		t.Fatalf("GetBool(9): len=%d", len(*bp))
	}
	PutBool(bp)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
