// Package gemm implements the cache-blocked, register-tiled float32/float64
// matrix-multiply backbone shared by every matmul-shaped kernel in the
// repository (im2col convolution, 1×1 convolution, Linear, the fused-kernel
// micro products, and the float64 matmuls behind tensor decomposition).
//
// The algorithm is the classic three-level blocking scheme: A is packed once
// into MR-row panels spanning the full K dimension, B is packed per
// (KC × NC) cache block into NR-column panels, and an MR×NR register-tiled
// micro-kernel accumulates over each KC slice. On amd64 with AVX2+FMA the
// float32 micro-kernel is an 8×8 tile of fused-multiply-add vector
// accumulators (kernel_amd64.s); everywhere else a scalar 4×4 tile is used.
// Column strips of C are distributed over goroutines; every scratch panel
// comes from the pooled workspace arena (workspace.go), so steady-state
// calls allocate nothing.
//
// All entry points compute C = alpha·A·B + beta·C and are deterministic:
// per-element accumulation order is independent of the worker count, so
// serial and parallel runs produce bit-identical results.
package gemm

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Cache blocking parameters: KC×NC is the packed B block (KC·NR·4 bytes of
// B stay L1-resident inside the macro-kernel, the whole block L2-resident).
const (
	kc = 256
	nc = 512
)

// maxTile bounds the register tile edge across all micro-kernels; the
// per-tile accumulator is a stack array of maxTile² elements.
const maxTile = 8

// float covers the two element types the kernels use. Exact types (not
// approximations) so the pool dispatch in workspace.go stays total.
type float interface {
	float32 | float64
}

// tileDims reports the micro-kernel tile (MR, NR) used for element type T:
// 8×8 for float32 when the AVX2+FMA kernel is available, scalar 4×4
// otherwise.
func tileDims[T float]() (int, int) {
	var z T
	if _, ok := any(z).(float32); ok && useFMA {
		return 8, 8
	}
	return 4, 4
}

// Gemm computes C = alpha·A·B + beta·C with A an m×k row-major matrix of
// leading dimension lda, B k×n (ldb), and C m×n (ldc). Work is split over
// column strips across SetWorkers goroutines. beta==0 never reads C.
func Gemm(m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	gemmAny(true, false, false, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// GemmBT is Gemm with B supplied row-major as an n×k matrix and used
// transposed: C = alpha·A·Bᵀ + beta·C. This is the natural layout for
// Linear's [Out,In] weight.
func GemmBT(m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	gemmAny(true, false, true, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// GemmAT is Gemm with A supplied row-major as a k×m matrix and used
// transposed: C = alpha·Aᵀ·B + beta·C (e.g. weight gradients dW = dYᵀ·X).
func GemmAT(m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	gemmAny(true, true, false, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// Serial is Gemm restricted to the calling goroutine. Kernels that are
// already inside a parallelFor region (the fused kernel's per-tile products)
// use it to avoid nested goroutine fan-out.
func Serial(m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	gemmAny(false, false, false, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// Gemm64 is Gemm over float64, used by the linalg decomposition substrate.
func Gemm64(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	gemmAny(true, false, false, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// Gemm64AT is GemmAT over float64 (Gram matrices: G = Aᵀ·A).
func Gemm64AT(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	gemmAny(true, true, false, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// gemmAny is the shared blocked implementation behind every entry point.
func gemmAny[T float](parallel, transA, transB bool, m, n, k int, alpha T, a []T, lda int, b []T, ldb int, beta T, c []T, ldc int) {
	checkDims(transA, transB, m, n, k, len(a), lda, len(b), ldb, len(c), ldc)
	if m == 0 || n == 0 {
		return
	}
	if k == 0 || alpha == 0 {
		scaleC(m, n, beta, c, ldc)
		return
	}
	mr, nr := tileDims[T]()

	// Pack all of A once: MR-row panels spanning the full K dimension, each
	// panel column-major (k steps of MR contiguous values). Edge rows are
	// zero-padded so the micro-kernel never branches on MR.
	apPtr := getWS[T](roundUp(m, mr) * k)
	defer putWS(apPtr)
	ap := *apPtr
	packA(ap, a, lda, m, k, mr, transA)
	gemmCore(parallel, transB, m, n, k, mr, nr, alpha, ap, b, ldb, nil, beta, c, ldc)
}

// gemmCore fans the blocked macro-kernel out over NR-aligned column strips.
// ap is A fully packed in packA layout (pooled or pre-packed by the caller).
// When pb is non-nil it is the pre-packed full-width B (PackedB layout) and
// b/ldb are ignored; otherwise each strip packs its own B blocks from b.
// The strip schedule depends only on (m, n, k, nr), so pre-packed and
// pack-on-the-fly runs produce bit-identical results.
func gemmCore[T float](parallel, transB bool, m, n, k, mr, nr int, alpha T, ap, b []T, ldb int, pb []T, beta T, c []T, ldc int) {
	w := Workers()
	if !parallel || w <= 1 || n < 2*nr || m*n*k < 1<<15 {
		gemmStrip(0, n, transB, m, n, k, mr, nr, alpha, ap, b, ldb, pb, beta, c, ldc)
		return
	}
	// Column strips, NR-aligned so panel boundaries (and therefore
	// per-element accumulation order) match the serial schedule.
	if w > (n+nr-1)/nr {
		w = (n + nr - 1) / nr
	}
	per := roundUp((n+w-1)/w, nr)
	var wg sync.WaitGroup
	// A panic inside a strip worker (e.g. an injected allocation failure in
	// the workspace pool) is re-raised on this goroutine after all workers
	// finish, so the guard wrappers above the kernel call can recover it;
	// a panic in a bare spawned goroutine would kill the process.
	var panicked atomic.Pointer[any]
	for j0 := 0; j0 < n; j0 += per {
		j1 := min(j0+per, n)
		wg.Add(1)
		go func(j0, j1 int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &r)
				}
			}()
			gemmStrip(j0, j1, transB, m, n, k, mr, nr, alpha, ap, b, ldb, pb, beta, c, ldc)
		}(j0, j1)
	}
	wg.Wait()
	if pv := panicked.Load(); pv != nil {
		panic(*pv)
	}
}

// gemmStrip runs the blocked macro-kernel over the column range [j0,j1) of
// C. ap is the fully packed A. B panels come pre-packed from pb when it is
// non-nil; otherwise the strip packs each (KC × NC) block of b into a
// pooled panel. n is the full C width (pb indexing needs it).
func gemmStrip[T float](j0, j1 int, transB bool, m, n, k, mr, nr int, alpha T, ap, b []T, ldb int, pb []T, beta T, c []T, ldc int) {
	var bp []T
	var bpPtr *[]T
	if pb == nil {
		bpPtr = getWS[T](kc * roundUp(min(nc, j1-j0), nr))
		bp = *bpPtr
	}
	nR := roundUp(n, nr)
	for jc := j0; jc < j1; jc += nc {
		ncEff := min(nc, j1-jc)
		ncR := roundUp(ncEff, nr)
		for pc := 0; pc < k; pc += kc {
			kcEff := min(kc, k-pc)
			if pb == nil {
				packB(bp[:kcEff*ncR], b, ldb, pc, kcEff, jc, ncEff, nr, transB)
			}
			first := pc == 0
			for jr := 0; jr < ncEff; jr += nr {
				var bPanel []T
				if pb != nil {
					// Block pc/kc starts at pc·nR (every earlier block holds
					// kc full rows of all nR padded columns); panels inside
					// it are nr·kcEff apart.
					bPanel = pb[pc*nR+((jc+jr)/nr)*nr*kcEff:][: kcEff*nr : kcEff*nr]
				} else {
					bPanel = bp[(jr/nr)*nr*kcEff:][: kcEff*nr : kcEff*nr]
				}
				nrEff := min(nr, ncEff-jr)
				for ir := 0; ir < m; ir += mr {
					aPanel := ap[(ir/mr)*mr*k+pc*mr:][: kcEff*mr : kcEff*mr]
					var acc [maxTile * maxTile]T
					microKernel(kcEff, mr, aPanel, bPanel, &acc)
					writeBack(c, ldc, ir, jc+jr, min(mr, m-ir), nrEff, nr, alpha, beta, first, &acc)
				}
			}
		}
	}
	if bpPtr != nil {
		putWS(bpPtr)
	}
}

// microKernel accumulates acc[i*nr+j] += Σ_p aPanel[p*mr+i]·bPanel[p*nr+j]
// for the full MR×NR register tile (MR == NR here). Panels are zero-padded
// at the edges, so no remainder handling is needed; the accumulators live
// in registers across the whole KC slice.
func microKernel[T float](kcEff, mr int, aPanel, bPanel []T, acc *[maxTile * maxTile]T) {
	if mr == 8 {
		// AVX2+FMA 8×8 kernel (float32 only; tileDims gates this path).
		microKernel8x8F32(kcEff, aPanel, bPanel, acc)
		return
	}
	var c00, c01, c02, c03 T
	var c10, c11, c12, c13 T
	var c20, c21, c22, c23 T
	var c30, c31, c32, c33 T
	aPanel = aPanel[:kcEff*4]
	bPanel = bPanel[:kcEff*4]
	for p := 0; p < kcEff; p++ {
		ai := p * 4
		a0, a1, a2, a3 := aPanel[ai], aPanel[ai+1], aPanel[ai+2], aPanel[ai+3]
		b0, b1, b2, b3 := bPanel[ai], bPanel[ai+1], bPanel[ai+2], bPanel[ai+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
	acc[4], acc[5], acc[6], acc[7] = c10, c11, c12, c13
	acc[8], acc[9], acc[10], acc[11] = c20, c21, c22, c23
	acc[12], acc[13], acc[14], acc[15] = c30, c31, c32, c33
}

// writeBack folds one micro-tile into C. The first KC slice applies beta
// (beta==0 without reading C); later slices accumulate.
func writeBack[T float](c []T, ldc, i0, j0, mrEff, nrEff, nr int, alpha, beta T, first bool, acc *[maxTile * maxTile]T) {
	for i := 0; i < mrEff; i++ {
		row := c[(i0+i)*ldc+j0:]
		for j := 0; j < nrEff; j++ {
			v := alpha * acc[i*nr+j]
			switch {
			case !first:
				row[j] += v
			case beta == 0:
				row[j] = v
			default:
				row[j] = v + beta*row[j]
			}
		}
	}
}

// packA lays A out as MR-row panels spanning all k columns, each panel
// stored column-major; rows past m are zero-padded.
func packA[T float](dst, a []T, lda, m, k, mr int, trans bool) {
	idx := 0
	for ir := 0; ir < m; ir += mr {
		mrEff := min(mr, m-ir)
		if trans {
			for p := 0; p < k; p++ {
				src := a[p*lda+ir:]
				for r := 0; r < mrEff; r++ {
					dst[idx+r] = src[r]
				}
				for r := mrEff; r < mr; r++ {
					dst[idx+r] = 0
				}
				idx += mr
			}
			continue
		}
		for p := 0; p < k; p++ {
			for r := 0; r < mrEff; r++ {
				dst[idx+r] = a[(ir+r)*lda+p]
			}
			for r := mrEff; r < mr; r++ {
				dst[idx+r] = 0
			}
			idx += mr
		}
	}
}

// packB lays the (kcEff × ncEff) block of B starting at (pc, jc) out as
// NR-column panels, each panel row-major over the KC slice; columns past
// ncEff are zero-padded.
func packB[T float](dst, b []T, ldb, pc, kcEff, jc, ncEff, nr int, trans bool) {
	idx := 0
	for jr := 0; jr < ncEff; jr += nr {
		nrEff := min(nr, ncEff-jr)
		for p := 0; p < kcEff; p++ {
			if trans {
				for j := 0; j < nrEff; j++ {
					dst[idx+j] = b[(jc+jr+j)*ldb+pc+p]
				}
			} else {
				src := b[(pc+p)*ldb+jc+jr:]
				for j := 0; j < nrEff; j++ {
					dst[idx+j] = src[j]
				}
			}
			for j := nrEff; j < nr; j++ {
				dst[idx+j] = 0
			}
			idx += nr
		}
	}
}

// scaleC applies C = beta·C (the k==0 / alpha==0 degenerate case).
func scaleC[T float](m, n int, beta T, c []T, ldc int) {
	for i := 0; i < m; i++ {
		row := c[i*ldc : i*ldc+n]
		if beta == 0 {
			for j := range row {
				row[j] = 0
			}
			continue
		}
		for j := range row {
			row[j] *= beta
		}
	}
}

// checkDims validates shapes and slice extents up front so kernels fail
// loudly at the boundary instead of corrupting memory mid-product.
func checkDims(transA, transB bool, m, n, k, lenA, lda, lenB, ldb, lenC, ldc int) {
	if m < 0 || n < 0 || k < 0 {
		panic(fmt.Sprintf("gemm: negative dimensions m=%d n=%d k=%d", m, n, k))
	}
	aRows, aCols := m, k
	if transA {
		aRows, aCols = k, m
	}
	bRows, bCols := k, n
	if transB {
		bRows, bCols = n, k
	}
	if lda < aCols || (aRows > 0 && lenA < (aRows-1)*lda+aCols) {
		panic(fmt.Sprintf("gemm: A too small: len=%d lda=%d for %d×%d", lenA, lda, aRows, aCols))
	}
	if ldb < bCols || (bRows > 0 && lenB < (bRows-1)*ldb+bCols) {
		panic(fmt.Sprintf("gemm: B too small: len=%d ldb=%d for %d×%d", lenB, ldb, bRows, bCols))
	}
	if ldc < n || (m > 0 && n > 0 && lenC < (m-1)*ldc+n) {
		panic(fmt.Sprintf("gemm: C too small: len=%d ldc=%d for %d×%d", lenC, ldc, m, n))
	}
}

func roundUp(n, q int) int { return (n + q - 1) / q * q }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
