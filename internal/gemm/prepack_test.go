package gemm

import (
	"math/rand"
	"testing"
)

// TestPrePackedBitIdentical pins the plan-once/run-many contract: products
// consuming pre-packed panels must be bit-for-bit identical to the
// pack-on-the-fly entry points, across shapes that exercise partial tiles,
// multiple KC/NC blocks, and both serial and parallel strip schedules.
func TestPrePackedBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	shapes := [][3]int{
		{1, 1, 1}, {3, 5, 7}, {8, 8, 8}, {13, 9, 300}, {64, 700, 64},
		{17, 1100, 520}, {100, 33, 257}, {2, 600, 1},
	}
	for _, workers := range []int{1, 4} {
		old := Workers()
		SetWorkers(workers)
		for _, s := range shapes {
			m, n, k := s[0], s[1], s[2]
			a32, _ := randSlice(r, max(m*k, 1))
			b32, _ := randSlice(r, max(k*n, 1))
			bt32, _ := randSlice(r, max(n*k, 1))

			want := make([]float32, m*n)
			got := make([]float32, m*n)

			// A pre-packed (conv/fused weight as the row operand).
			Gemm(m, n, k, 1, a32, k, b32, n, 0, want, n)
			pa := PackA(m, k, a32, k)
			GemmPackedA(n, 1, pa, b32, n, 0, got, n)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("workers=%d m=%d n=%d k=%d: GemmPackedA differs at %d: %v != %v",
						workers, m, n, k, i, got[i], want[i])
				}
			}
			SerialPackedA(n, 1, pa, b32, n, 0, got, n)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("workers=%d m=%d n=%d k=%d: SerialPackedA differs at %d", workers, m, n, k, i)
				}
			}

			// B pre-packed, untransposed.
			pb := PackB(k, n, b32, n)
			GemmPrePacked(m, 1, a32, k, pb, 0, got, n)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("workers=%d m=%d n=%d k=%d: GemmPrePacked differs at %d: %v != %v",
						workers, m, n, k, i, got[i], want[i])
				}
			}

			// B pre-packed transposed (Linear's [Out, In] weight).
			GemmBT(m, n, k, 1, a32, k, bt32, k, 0, want, n)
			pbt := PackBT(k, n, bt32, k)
			GemmPrePackedBT(m, 1, a32, k, pbt, 0, got, n)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("workers=%d m=%d n=%d k=%d: GemmPrePackedBT differs at %d: %v != %v",
						workers, m, n, k, i, got[i], want[i])
				}
			}
		}
		SetWorkers(old)
	}
}

// TestPrePackedBetaAccumulate checks the beta path reads C exactly like the
// plain entry points (bias seeding in Linear depends on it).
func TestPrePackedBetaAccumulate(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	m, n, k := 9, 70, 33
	a32, _ := randSlice(r, m*k)
	bt32, _ := randSlice(r, n*k)
	seed, _ := randSlice(r, m*n)

	want := append([]float32(nil), seed...)
	got := append([]float32(nil), seed...)
	GemmBT(m, n, k, 1, a32, k, bt32, k, 1, want, n)
	GemmPrePackedBT(m, 1, a32, k, PackBT(k, n, bt32, k), 1, got, n)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("beta=1 differs at %d: %v != %v", i, got[i], want[i])
		}
	}
}

// TestPackStaleAfterSIMDFlip: a pack built under one micro-kernel tile must
// refuse to run under the other instead of producing garbage.
func TestPackStaleAfterSIMDFlip(t *testing.T) {
	if !simdAvailable() {
		t.Skip("no vector kernel on this machine; tile never changes")
	}
	prev := SetSIMD(true)
	defer SetSIMD(prev)
	m, n, k := 8, 16, 8
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	c := make([]float32, m*n)
	pa := PackA(m, k, a, k)
	pb := PackB(k, n, b, n)
	SetSIMD(false)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("GemmPackedA accepted a stale PackedA after SIMD flip")
			}
		}()
		GemmPackedA(n, 1, pa, b, n, 0, c, n)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("GemmPrePacked accepted a stale PackedB after SIMD flip")
			}
		}()
		GemmPrePacked(m, 1, a, k, pb, 0, c, n)
	}()
}

// TestPoolStatsCounters: borrowing scratch moves the hit/miss counters and
// pre-packing moves the pack counters.
func TestPoolStatsCounters(t *testing.T) {
	before := PoolStatsSnapshot()
	for i := 0; i < 5; i++ {
		p := GetF32(1 << 10)
		PutF32(p)
	}
	PackA(4, 4, make([]float32, 16), 4)
	after := PoolStatsSnapshot()
	if after.Hits == before.Hits {
		t.Error("pool hit counter did not move across recycled borrows")
	}
	if after.Hits+after.Misses < before.Hits+before.Misses+5 {
		t.Error("pool counters did not account for every borrow")
	}
	if after.PrePacks != before.PrePacks+1 {
		t.Errorf("prepack counter moved by %d, want 1", after.PrePacks-before.PrePacks)
	}
	if after.PrePackedBytes <= before.PrePackedBytes {
		t.Error("prepacked bytes did not grow")
	}
}
