//go:build !amd64

package gemm

// useFMA is false off amd64: every product runs on the portable scalar
// 4×4 micro-kernel. It is a var only so SetSIMD compiles; simdAvailable
// keeps it pinned to false.
var useFMA = false

// simdAvailable reports false off amd64: there is no vector kernel.
func simdAvailable() bool { return false }

// microKernel8x8F32 is unreachable when useFMA is false; it exists so the
// generic macro-kernel compiles on every architecture.
func microKernel8x8F32[T float](kcEff int, aPanel, bPanel []T, acc *[maxTile * maxTile]T) {
	panic("gemm: 8×8 micro-kernel invoked without AVX2 support")
}

// convRowAccumArch reports no vector row-accumulation kernel off amd64;
// ConvRowAccum falls back to the portable loop, which is bit-identical.
func convRowAccumArch(dst, x, w []float32, rows, kw, xStride int) bool {
	return false
}

// convRowAccumQuadArch reports no four-sample vector kernel off amd64;
// ConvRowAccumQuad falls back to four portable calls.
func convRowAccumQuadArch(d0, d1, d2, d3, x0, x1, x2, x3, w []float32, rows, kw, xStride int) bool {
	return false
}

// maxPool2x2Arch reports no vector pool kernel off amd64.
func maxPool2x2Arch(dst, r0, r1 []float32, clamp bool) bool { return false }

// reluArch reports no vector clamp kernel off amd64.
func reluArch(v []float32) bool { return false }
