//go:build !amd64

package gemm

// useFMA is false off amd64: every product runs on the portable scalar
// 4×4 micro-kernel. It is a var only so SetSIMD compiles; simdAvailable
// keeps it pinned to false.
var useFMA = false

// simdAvailable reports false off amd64: there is no vector kernel.
func simdAvailable() bool { return false }

// microKernel8x8F32 is unreachable when useFMA is false; it exists so the
// generic macro-kernel compiles on every architecture.
func microKernel8x8F32[T float](kcEff int, aPanel, bPanel []T, acc *[maxTile * maxTile]T) {
	panic("gemm: 8×8 micro-kernel invoked without AVX2 support")
}
