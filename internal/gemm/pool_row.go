package gemm

import "math"

// negInf32 is the max-pool identity element.
var negInf32 = float32(math.Inf(-1))

// This file hosts the two non-GEMM element kernels the fused conv runner
// leans on. They live here, next to the GEMM micro-kernels, because this
// package owns the vector dispatch (useFMA / TEMCO_NOSIMD / SetSIMD) and
// the amd64 assembly they share a file with.

// MaxPool2x2Row computes one output row of a 2×2/stride-2 max pool:
//
//	dst[i] = max(-Inf, r0[2i], r0[2i+1], r1[2i], r1[2i+1])
//
// with the first-wins tie rule of a scalar `if v > acc { acc = v }` chain
// (a NaN candidate never replaces the accumulator, and on -0/+0 ties the
// earlier value survives). With clamp set, a final `acc < 0 → +0` select
// absorbs a ReLU into the pool read. The vector path reproduces these
// semantics with ordered compare+blend, so it is bit-identical to the
// portable loop on every input.
func MaxPool2x2Row(dst, r0, r1 []float32, clamp bool) {
	n := len(dst)
	if n == 0 {
		return
	}
	if 2*n > len(r0) || 2*n > len(r1) {
		panic("gemm: MaxPool2x2Row source rows too short")
	}
	i := 0
	if n >= 8 && maxPool2x2Arch(dst, r0, r1, clamp) {
		i = n &^ 7
	}
	for ; i < n; i++ {
		p := 2 * i
		acc := negInf32
		if v := r0[p]; v > acc {
			acc = v
		}
		if v := r0[p+1]; v > acc {
			acc = v
		}
		if v := r1[p]; v > acc {
			acc = v
		}
		if v := r1[p+1]; v > acc {
			acc = v
		}
		if clamp && acc < 0 {
			acc = 0
		}
		dst[i] = acc
	}
}

// ReLU clamps negatives to +0 in place: `if v < 0 { v = 0 }` per element,
// so -0 and NaN pass through unchanged. The vector path (MAXPS with +0 as
// the tie-keeping operand) is bit-identical to the portable loop.
func ReLU(v []float32) {
	if len(v) == 0 {
		return
	}
	if reluArch(v) {
		return
	}
	for i, x := range v {
		if x < 0 {
			v[i] = 0
		}
	}
}
