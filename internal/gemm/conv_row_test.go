package gemm

import (
	"math"
	"math/rand"
	"testing"
)

// convRowRef is the reference accumulation: per output column, taps in
// (r, c) order, one rounding per multiply and one per add — the exact
// order the direct convolution's scalar path uses.
func convRowRef(dst, x, w []float32, rows, kw, xStride int) {
	for j := range dst {
		acc := dst[j]
		for r := 0; r < rows; r++ {
			for c := 0; c < kw; c++ {
				acc += x[r*xStride+c+j] * w[r*kw+c]
			}
		}
		dst[j] = acc
	}
}

// TestConvRowAccumBitExact pins the vector path (when available) and the
// portable loop to the per-column scalar reference, bit for bit, across
// widths that exercise full blocks, tails, and sub-vector rows.
func TestConvRowAccumBitExact(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, simd := range []bool{false, true} {
		prev := SetSIMD(simd)
		for trial := 0; trial < 200; trial++ {
			n := 1 + r.Intn(40)
			rows := 1 + r.Intn(4)
			kw := 1 + r.Intn(5)
			xStride := kw + n - 1 + r.Intn(8)
			x, _ := randSlice(r, (rows-1)*xStride+kw-1+n)
			w, _ := randSlice(r, rows*kw)
			dst, _ := randSlice(r, n)
			want := append([]float32(nil), dst...)
			convRowRef(want, x, w, rows, kw, xStride)
			ConvRowAccum(dst, x, w, rows, kw, xStride)
			for j := range dst {
				if math.Float32bits(dst[j]) != math.Float32bits(want[j]) {
					t.Fatalf("simd=%v trial=%d n=%d rows=%d kw=%d stride=%d: dst[%d]=%v want %v",
						simd, trial, n, rows, kw, xStride, j, dst[j], want[j])
				}
			}
		}
		SetSIMD(prev)
	}
}

// TestConvRowAccumQuadBitExact pins the four-sample kernel to four
// independent reference accumulations, bit for bit, on both dispatch paths.
func TestConvRowAccumQuadBitExact(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for _, simd := range []bool{false, true} {
		prev := SetSIMD(simd)
		for trial := 0; trial < 200; trial++ {
			n := 1 + r.Intn(40)
			rows := 1 + r.Intn(4)
			kw := 1 + r.Intn(5)
			xStride := kw + n - 1 + r.Intn(8)
			w, _ := randSlice(r, rows*kw)
			var d, x, want [4][]float32
			for k := 0; k < 4; k++ {
				x[k], _ = randSlice(r, (rows-1)*xStride+kw-1+n)
				d[k], _ = randSlice(r, n)
				want[k] = append([]float32(nil), d[k]...)
				convRowRef(want[k], x[k], w, rows, kw, xStride)
			}
			ConvRowAccumQuad(d[0], d[1], d[2], d[3], x[0], x[1], x[2], x[3], w, rows, kw, xStride)
			for k := 0; k < 4; k++ {
				for j := range d[k] {
					if math.Float32bits(d[k][j]) != math.Float32bits(want[k][j]) {
						t.Fatalf("simd=%v trial=%d n=%d rows=%d kw=%d stride=%d: d%d[%d]=%v want %v",
							simd, trial, n, rows, kw, xStride, k, j, d[k][j], want[k][j])
					}
				}
			}
		}
		SetSIMD(prev)
	}
}

func TestConvRowAccumDegenerate(t *testing.T) {
	// Zero-length dst and non-positive extents are no-ops, not crashes.
	ConvRowAccum(nil, nil, nil, 1, 1, 1)
	ConvRowAccum(make([]float32, 4), make([]float32, 4), make([]float32, 1), 0, 1, 4)
	ConvRowAccum(make([]float32, 4), make([]float32, 4), make([]float32, 1), 1, 0, 4)
}
