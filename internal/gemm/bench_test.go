package gemm

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkGemm tracks the blocked kernel over the shapes the model
// kernels actually produce: the ResNet-block im2col product, a square
// mid-size product, and the Linear classifier shape.
func BenchmarkGemm(b *testing.B) {
	shapes := []struct{ m, n, k int }{
		{64, 3136, 576}, // im2col: 64ch 3×3 over 56×56
		{256, 256, 256},
		{32, 512, 512}, // Linear batch 32
	}
	r := rand.New(rand.NewSource(9))
	for _, s := range shapes {
		a, _ := randSlice(r, s.m*s.k)
		bm, _ := randSlice(r, s.k*s.n)
		c := make([]float32, s.m*s.n)
		b.Run(fmt.Sprintf("%dx%dx%d", s.m, s.n, s.k), func(b *testing.B) {
			Gemm(s.m, s.n, s.k, 1, a, s.k, bm, s.n, 0, c, s.n) // warm the arena
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Gemm(s.m, s.n, s.k, 1, a, s.k, bm, s.n, 0, c, s.n)
			}
			b.ReportMetric(2*float64(s.m)*float64(s.n)*float64(s.k)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}
