package gemm

import (
	"math"
	"math/rand"
	"testing"
)

// poolRef is the scalar first-wins chain the fused runner used inline.
func poolRef(dst, r0, r1 []float32, clamp bool) {
	for i := range dst {
		p := 2 * i
		acc := float32(math.Inf(-1))
		for _, v := range []float32{r0[p], r0[p+1], r1[p], r1[p+1]} {
			if v > acc {
				acc = v
			}
		}
		if clamp && acc < 0 {
			acc = 0
		}
		dst[i] = acc
	}
}

// poolTestValue mixes ordinary values with the tie/unordered corners that
// distinguish compare+blend from VMAXPS: ±0, ±Inf, NaN.
func poolTestValue(r *rand.Rand) float32 {
	switch r.Intn(8) {
	case 0:
		return float32(math.Copysign(0, -1))
	case 1:
		return 0
	case 2:
		return float32(math.Inf(-1))
	case 3:
		return float32(math.NaN())
	default:
		return float32(r.NormFloat64())
	}
}

func TestMaxPool2x2RowBitExact(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, simd := range []bool{false, true} {
		prev := SetSIMD(simd)
		for trial := 0; trial < 200; trial++ {
			n := 1 + r.Intn(20)
			r0 := make([]float32, 2*n)
			r1 := make([]float32, 2*n)
			for i := range r0 {
				r0[i] = poolTestValue(r)
				r1[i] = poolTestValue(r)
			}
			clamp := trial%2 == 0
			want := make([]float32, n)
			poolRef(want, r0, r1, clamp)
			dst := make([]float32, n)
			MaxPool2x2Row(dst, r0, r1, clamp)
			for i := range dst {
				if math.Float32bits(dst[i]) != math.Float32bits(want[i]) {
					t.Fatalf("simd=%v trial=%d n=%d clamp=%v: dst[%d]=%x want %x",
						simd, trial, n, clamp, i,
						math.Float32bits(dst[i]), math.Float32bits(want[i]))
				}
			}
		}
		SetSIMD(prev)
	}
}

func TestReLUBitExact(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, simd := range []bool{false, true} {
		prev := SetSIMD(simd)
		for trial := 0; trial < 200; trial++ {
			n := 1 + r.Intn(40)
			v := make([]float32, n)
			for i := range v {
				v[i] = poolTestValue(r)
			}
			want := make([]float32, n)
			for i, x := range v {
				want[i] = x
				if x < 0 {
					want[i] = 0
				}
			}
			ReLU(v)
			for i := range v {
				if math.Float32bits(v[i]) != math.Float32bits(want[i]) {
					t.Fatalf("simd=%v trial=%d n=%d: v[%d]=%x want %x",
						simd, trial, n, i,
						math.Float32bits(v[i]), math.Float32bits(want[i]))
				}
			}
		}
		SetSIMD(prev)
	}
}
