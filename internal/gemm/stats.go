package gemm

import "sync/atomic"

// Process-wide observability counters for the workspace arena and the
// pre-pack cache. Hits/misses tell an operator whether steady-state
// inference is actually recycling scratch (a rising miss count under stable
// load means buffers are being dropped by GC pressure or requested at
// ever-new sizes); the pre-pack counters size the one-time compile cost.
var (
	poolHits       atomic.Uint64
	poolMisses     atomic.Uint64
	prePacks       atomic.Uint64
	prePackedBytes atomic.Uint64
)

// PoolStats is a point-in-time snapshot of the workspace-pool and
// pre-pack counters, surfaced by temcod's /statsz endpoint.
type PoolStats struct {
	// Hits counts workspace borrows satisfied from a pool.
	Hits uint64 `json:"hits"`
	// Misses counts workspace borrows that had to allocate (first use of a
	// size class, oversized requests, or buffers reclaimed by the GC).
	Misses uint64 `json:"misses"`
	// PrePacks counts PackA/PackB/PackBT invocations.
	PrePacks uint64 `json:"prepacks"`
	// PrePackedBytes totals the bytes held by pre-packed operand panels.
	PrePackedBytes uint64 `json:"prepacked_bytes"`
}

// PoolStatsSnapshot reads the counters. Counters are cumulative since
// process start; callers diff snapshots for rates.
func PoolStatsSnapshot() PoolStats {
	return PoolStats{
		Hits:           poolHits.Load(),
		Misses:         poolMisses.Load(),
		PrePacks:       prePacks.Load(),
		PrePackedBytes: prePackedBytes.Load(),
	}
}

// SIMD reports whether the AVX2+FMA 8×8 micro-kernel is active (false when
// unsupported by the CPU or disabled via TEMCO_NOSIMD / SetSIMD).
func SIMD() bool { return useFMA }

// SetSIMD enables or disables the vector micro-kernel at runtime and
// returns the previous setting; enabling is a no-op where the CPU lacks
// AVX2+FMA. It exists for tests and numerical bisection (the scalar tile
// rounds each multiply and add separately, FMA rounds once). Callers must
// not flip it concurrently with running kernels, and pre-packed panels
// built under the old mode must be rebuilt: the tile geometry changes.
func SetSIMD(on bool) bool {
	prev := useFMA
	useFMA = on && simdAvailable()
	return prev
}
