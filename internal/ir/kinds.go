// Package ir defines the layer-graph intermediate representation that the
// TeMCO compiler analyzes and rewrites. A Graph is an ordered list of Nodes
// in SSA form: each node defines exactly one output tensor, consumed by
// later nodes. The node order is the execution schedule, which is what the
// memory planner replays.
package ir

// Kind identifies a layer/operator type.
type Kind int

const (
	// KindInput is a graph input placeholder.
	KindInput Kind = iota
	// KindConv2D is a 2-D convolution (optionally grouped/depthwise).
	KindConv2D
	// KindLinear is a fully connected layer.
	KindLinear
	// KindReLU is the rectified linear activation.
	KindReLU
	// KindSiLU is the sigmoid-weighted linear activation.
	KindSiLU
	// KindSigmoid is the logistic activation.
	KindSigmoid
	// KindBatchNorm is inference-mode batch normalization: a per-channel
	// affine transform with precomputed scale (W) and shift (B).
	KindBatchNorm
	// KindMaxPool is 2-D max pooling.
	KindMaxPool
	// KindAvgPool is 2-D average pooling.
	KindAvgPool
	// KindGlobalAvgPool averages each channel to 1×1.
	KindGlobalAvgPool
	// KindUpsample is nearest-neighbour spatial upsampling.
	KindUpsample
	// KindAdd is elementwise addition of two equal-shape tensors.
	KindAdd
	// KindConcat concatenates along the channel dimension.
	KindConcat
	// KindFlatten reshapes [C,H,W] to [C·H·W].
	KindFlatten
	// KindSoftmax is channel softmax over a flat vector.
	KindSoftmax
	// KindFused is a TeMCO-fused lconv→act→[pool]→fconv kernel that never
	// materializes its full-size intermediates (paper §3.2, Listing 1).
	KindFused
)

var kindNames = map[Kind]string{
	KindInput:         "input",
	KindConv2D:        "conv2d",
	KindLinear:        "linear",
	KindReLU:          "relu",
	KindSiLU:          "silu",
	KindSigmoid:       "sigmoid",
	KindBatchNorm:     "batchnorm",
	KindMaxPool:       "maxpool",
	KindAvgPool:       "avgpool",
	KindGlobalAvgPool: "gavgpool",
	KindUpsample:      "upsample",
	KindAdd:           "add",
	KindConcat:        "concat",
	KindFlatten:       "flatten",
	KindSoftmax:       "softmax",
	KindFused:         "fused",
}

// String returns the lowercase operator mnemonic.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "unknown"
}

// IsActivation reports whether k is one of the non-decomposed elementwise
// activation layers TeMCO can fuse between lconv and fconv (paper §3.2
// names ReLU and SiLU; sigmoid appears at the UNet head).
func (k Kind) IsActivation() bool {
	return k == KindReLU || k == KindSiLU || k == KindSigmoid
}

// IsElementwise reports whether k preserves shape and acts per element
// (per channel for batchnorm); these are transparent to the reduced-tensor
// traversal in FindReduced.
func (k Kind) IsElementwise() bool {
	return k.IsActivation() || k == KindBatchNorm || k == KindAdd
}

// Role records decomposition provenance for a node. The TeMCO analyses
// detect fconv/lconv structurally (paper Alg. 2 IsLConv), but the role tag
// is kept for reporting and testing.
type Role int

const (
	// RoleNone marks a node that did not come from a decomposition rewrite.
	RoleNone Role = iota
	// RoleFConv is the leading 1×1 channel-reducing factor convolution.
	RoleFConv
	// RoleCore is a core convolution of a decomposed sequence.
	RoleCore
	// RoleLConv is the trailing 1×1 channel-restoring factor convolution.
	RoleLConv
)

// String returns the role mnemonic.
func (r Role) String() string {
	switch r {
	case RoleFConv:
		return "fconv"
	case RoleCore:
		return "core"
	case RoleLConv:
		return "lconv"
	default:
		return "none"
	}
}
