package ir

import (
	"strings"
	"testing"
	"testing/quick"

	"temco/internal/tensor"
)

func smallGraph(t *testing.T) (*Builder, *Node, *Node) {
	t.Helper()
	b := NewBuilder("small", 1)
	in := b.Input(3, 8, 8)
	c1 := b.Conv(in, 16, 3, 1, 1)
	r1 := b.ReLU(c1)
	p1 := b.MaxPool(r1, 2, 2)
	c2 := b.Conv(p1, 32, 3, 1, 1)
	r2 := b.ReLU(c2)
	f := b.Flatten(r2)
	fc := b.Linear(f, 10)
	out := b.Output(b.Softmax(fc))
	if err := b.G.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return b, in, out
}

func TestShapeInferenceConvChain(t *testing.T) {
	b, _, out := smallGraph(t)
	c1 := b.G.NodeByName("conv1")
	if c1 == nil || !shapeEq(c1.Shape, []int{16, 8, 8}) {
		t.Fatalf("conv1 shape = %v", c1.Shape)
	}
	p1 := b.G.NodeByName("maxpool1")
	if !shapeEq(p1.Shape, []int{16, 4, 4}) {
		t.Fatalf("maxpool shape = %v", p1.Shape)
	}
	if !shapeEq(out.Shape, []int{10}) {
		t.Fatalf("output shape = %v", out.Shape)
	}
}

func TestConvOutputFormula(t *testing.T) {
	cases := []struct{ in, k, s, p, want int }{
		{8, 3, 1, 1, 8},
		{8, 3, 2, 1, 4},
		{7, 3, 2, 1, 4},
		{8, 1, 1, 0, 8},
		{224, 11, 4, 2, 55}, // AlexNet's first conv
	}
	for _, c := range cases {
		if got := convOut(c.in, c.k, c.s, c.p); got != c.want {
			t.Errorf("convOut(%d,%d,%d,%d) = %d, want %d", c.in, c.k, c.s, c.p, got, c.want)
		}
	}
}

func TestShapeErrors(t *testing.T) {
	cases := []struct {
		kind  Kind
		attrs any
		ins   [][]int
	}{
		{KindConv2D, &ConvAttrs{InC: 4, OutC: 8, KH: 3, KW: 3, SH: 1, SW: 1}, [][]int{{3, 8, 8}}},            // channel mismatch
		{KindConv2D, &ConvAttrs{InC: 3, OutC: 8, KH: 9, KW: 9, SH: 1, SW: 1}, [][]int{{3, 4, 4}}},            // empty output
		{KindConv2D, &ConvAttrs{InC: 3, OutC: 8, KH: 3, KW: 3, SH: 1, SW: 1, Groups: 2}, [][]int{{3, 8, 8}}}, // bad groups
		{KindAdd, nil, [][]int{{3, 8, 8}, {4, 8, 8}}},
		{KindConcat, nil, [][]int{{3, 8, 8}, {3, 4, 4}}},
		{KindConcat, nil, [][]int{{3, 8, 8}}},
		{KindLinear, &LinearAttrs{In: 10, Out: 2}, [][]int{{12}}},
		{KindLinear, &LinearAttrs{In: 10, Out: 2}, [][]int{{3, 2, 2}}},
		{KindBatchNorm, &BatchNormAttrs{C: 5}, [][]int{{3, 8, 8}}},
		{KindUpsample, &UpsampleAttrs{Scale: 0}, [][]int{{3, 8, 8}}},
	}
	for i, c := range cases {
		if _, err := InferShape(c.kind, c.attrs, c.ins); err == nil {
			t.Errorf("case %d (%v): expected error", i, c.kind)
		}
	}
}

func TestValidateCatchesForwardRef(t *testing.T) {
	b := NewBuilder("bad", 1)
	in := b.Input(3, 4, 4)
	c := b.Conv(in, 4, 3, 1, 1)
	// Swap schedule order by hand: conv before input.
	b.G.Nodes[0], b.G.Nodes[1] = b.G.Nodes[1], b.G.Nodes[0]
	b.G.MarkOutput(c)
	if err := b.G.Validate(); err == nil {
		t.Fatal("expected validation error for forward reference")
	}
}

func TestValidateCatchesStaleShape(t *testing.T) {
	b := NewBuilder("bad2", 1)
	in := b.Input(3, 4, 4)
	c := b.Conv(in, 4, 3, 1, 1)
	b.G.MarkOutput(c)
	c.Shape = []int{99, 4, 4}
	if err := b.G.Validate(); err == nil {
		t.Fatal("expected validation error for stale shape")
	}
}

func TestSuccsAndUseCounts(t *testing.T) {
	b := NewBuilder("uses", 1)
	in := b.Input(4, 4, 4)
	r := b.ReLU(in)
	a := b.Add(r, in) // in used twice
	b.Output(a)
	succs := b.G.Succs()
	if len(succs[in]) != 2 {
		t.Fatalf("input successors = %d, want 2", len(succs[in]))
	}
	uses := b.G.UseCounts()
	if uses[in] != 2 || uses[r] != 1 || uses[a] != 1 {
		t.Fatalf("use counts: in=%d r=%d a=%d", uses[in], uses[r], uses[a])
	}
}

func TestIsLConvFConv(t *testing.T) {
	b := NewBuilder("lconv", 1)
	in := b.Input(8, 4, 4)
	up := b.ConvNamed("up", in, 32, 1, 1, 1, 1, 0, 0, 1)    // 8→32: lconv
	down := b.ConvNamed("down", up, 8, 1, 1, 1, 1, 0, 0, 1) // 32→8: fconv
	k3 := b.Conv(down, 32, 3, 1, 1)                         // 3×3: neither
	b.Output(k3)
	if !up.IsLConv() || up.IsFConv() {
		t.Error("up should be lconv only")
	}
	if !down.IsFConv() || down.IsLConv() {
		t.Error("down should be fconv only")
	}
	if k3.IsLConv() || k3.IsFConv() {
		t.Error("3×3 conv should be neither")
	}
}

func TestInsertBeforeAndReplaceUses(t *testing.T) {
	b := NewBuilder("ins", 1)
	in := b.Input(4, 4, 4)
	r1 := b.ReLU(in)
	out := b.Output(b.ReLU(r1))
	// Insert a sigmoid between r1 and out by hand.
	sg := &Node{ID: b.G.NewID(), Name: "mid", Kind: KindSigmoid, Inputs: []*Node{r1}, Shape: append([]int(nil), r1.Shape...)}
	b.G.InsertBefore(out, sg)
	ReplaceUsesIn(out, r1, sg)
	if err := b.G.Validate(); err != nil {
		t.Fatalf("Validate after insert: %v", err)
	}
	if out.Inputs[0] != sg {
		t.Fatal("ReplaceUsesIn did not rewrite the edge")
	}
}

func TestDeadCodeElim(t *testing.T) {
	b := NewBuilder("dce", 1)
	in := b.Input(4, 4, 4)
	live := b.ReLU(in)
	dead1 := b.Sigmoid(in)
	_ = b.ReLU(dead1) // dead chain
	b.Output(live)
	removed := b.G.DeadCodeElim()
	if removed != 2 {
		t.Fatalf("removed %d nodes, want 2", removed)
	}
	if err := b.G.Validate(); err != nil {
		t.Fatalf("Validate after DCE: %v", err)
	}
	if len(b.G.Nodes) != 2 {
		t.Fatalf("nodes left = %d, want 2", len(b.G.Nodes))
	}
}

func TestDCEKeepsInputs(t *testing.T) {
	b := NewBuilder("dce2", 1)
	in := b.Input(4, 4, 4)
	in2 := b.G.Input("unused", 4, 4, 4)
	b.Output(b.ReLU(in))
	b.G.DeadCodeElim()
	found := false
	for _, n := range b.G.Nodes {
		if n == in2 {
			found = true
		}
	}
	if !found {
		t.Fatal("DCE must retain graph inputs")
	}
}

func TestCloneIsDeepForStructure(t *testing.T) {
	b, _, _ := smallGraph(t)
	c := b.G.Clone()
	if err := c.Validate(); err != nil {
		t.Fatalf("clone Validate: %v", err)
	}
	// Mutating clone edges must not affect the original.
	c.Nodes[2].Inputs[0] = c.Nodes[0]
	if b.G.Nodes[2].Inputs[0] == b.G.Nodes[0] {
		t.Fatal("clone shares input slices with original")
	}
	// Weights are intentionally shared.
	if c.Nodes[1].W != b.G.Nodes[1].W {
		t.Fatal("clone should share weight tensors")
	}
	// Attrs must be fresh pointers.
	if c.Nodes[1].Attrs == b.G.Nodes[1].Attrs {
		t.Fatal("clone should deep-copy attrs")
	}
}

func TestWeightBytes(t *testing.T) {
	b := NewBuilder("wb", 1)
	in := b.Input(3, 8, 8)
	c := b.Conv(in, 16, 3, 1, 1)
	b.Output(c)
	// W: 16·3·3·3 = 432 floats; B: 16 floats → (432+16)·4 bytes.
	want := int64((432 + 16) * 4)
	if got := c.WeightBytes(); got != want {
		t.Fatalf("WeightBytes = %d, want %d", got, want)
	}
	if got := b.G.WeightBytes(); got != want {
		t.Fatalf("Graph WeightBytes = %d, want %d", got, want)
	}
}

func TestFLOPsConv(t *testing.T) {
	b := NewBuilder("flops", 1)
	in := b.Input(3, 8, 8)
	c := b.Conv(in, 16, 3, 1, 1)
	b.Output(c)
	// 16·8·8 outputs × 3·3·3 MACs × 2.
	want := int64(16*8*8) * 27 * 2
	if got := FLOPs(c); got != want {
		t.Fatalf("conv FLOPs = %d, want %d", got, want)
	}
}

func TestFLOPsFusedMatchesUnfused(t *testing.T) {
	// A fused lconv-relu-fconv must cost the same FLOPs as its parts.
	b := NewBuilder("ff", 1)
	in := b.Input(8, 6, 6)
	l := b.ConvNamed("l", in, 64, 1, 1, 1, 1, 0, 0, 1)
	r := b.ReLU(l)
	f := b.ConvNamed("f", r, 8, 1, 1, 1, 1, 0, 0, 1)
	b.Output(f)
	unfused := FLOPs(l) + FLOPs(r) + FLOPs(f)

	b2 := NewBuilder("ff2", 2)
	in2 := b2.Input(8, 6, 6)
	fa := &FusedAttrs{InC: 8, MidC: 64, OutC: 8, Act: KindReLU,
		LW: tensor.New(64, 8, 1, 1), LB: tensor.New(64),
		FW: tensor.New(8, 64, 1, 1), FB: tensor.New(8)}
	fn := b2.G.Apply(KindFused, "fused", fa, in2)
	b2.Output(fn)
	if got := FLOPs(fn); got != unfused {
		t.Fatalf("fused FLOPs = %d, want %d", got, unfused)
	}
}

func TestDOTRender(t *testing.T) {
	b, _, _ := smallGraph(t)
	d := b.G.DOT()
	if !strings.Contains(d, "digraph") || !strings.Contains(d, "conv2d") {
		t.Fatalf("DOT output missing expected content:\n%s", d)
	}
}

func TestKindStrings(t *testing.T) {
	if KindConv2D.String() != "conv2d" || KindFused.String() != "fused" {
		t.Fatal("kind names wrong")
	}
	if Kind(999).String() != "unknown" {
		t.Fatal("unknown kind should stringify safely")
	}
	if RoleLConv.String() != "lconv" || RoleNone.String() != "none" {
		t.Fatal("role names wrong")
	}
}

func TestActivationPredicates(t *testing.T) {
	if !KindReLU.IsActivation() || !KindSiLU.IsActivation() || !KindSigmoid.IsActivation() {
		t.Fatal("activations misclassified")
	}
	if KindMaxPool.IsActivation() || KindConv2D.IsActivation() {
		t.Fatal("non-activations misclassified")
	}
	if !KindBatchNorm.IsElementwise() || !KindAdd.IsElementwise() {
		t.Fatal("elementwise misclassified")
	}
}

// Property: Validate accepts every graph the builder can construct from a
// random chain of shape-preserving ops.
func TestQuickBuilderChainsValidate(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		b := NewBuilder("q", seed)
		n := b.Input(1+r.Intn(8), 4+r.Intn(8), 4+r.Intn(8))
		for i := 0; i < 2+r.Intn(6); i++ {
			switch r.Intn(4) {
			case 0:
				n = b.ReLU(n)
			case 1:
				n = b.SiLU(n)
			case 2:
				n = b.BatchNorm(n)
			case 3:
				n = b.Conv(n, 1+r.Intn(8), 3, 1, 1)
			}
		}
		b.Output(n)
		return b.G.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: DCE never removes nodes reachable from outputs, and the result
// still validates.
func TestQuickDCESound(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		b := NewBuilder("qd", seed)
		in := b.Input(4, 4, 4)
		nodes := []*Node{in}
		for i := 0; i < 3+r.Intn(8); i++ {
			src := nodes[r.Intn(len(nodes))]
			nodes = append(nodes, b.ReLU(src))
		}
		out := nodes[len(nodes)-1]
		b.Output(out)
		before := len(b.G.Nodes)
		removed := b.G.DeadCodeElim()
		if len(b.G.Nodes)+removed != before {
			return false
		}
		if b.G.Validate() != nil {
			return false
		}
		// Output must still be present.
		for _, n := range b.G.Nodes {
			if n == out {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
