package ir

import (
	"fmt"

	"temco/internal/tensor"
)

// ConvAttrs parameterizes a 2-D convolution. Weights are [OutC, InC/Groups,
// KH, KW] in the node's W field; bias [OutC] in B (nil means no bias).
type ConvAttrs struct {
	InC, OutC int
	KH, KW    int
	SH, SW    int
	PH, PW    int
	Groups    int
}

// PoolAttrs parameterizes max/avg pooling.
type PoolAttrs struct {
	KH, KW int
	SH, SW int
	PH, PW int
}

// LinearAttrs parameterizes a fully connected layer. Weights are
// [Out, In]; bias [Out].
type LinearAttrs struct {
	In, Out int
}

// UpsampleAttrs parameterizes nearest-neighbour upsampling.
type UpsampleAttrs struct {
	Scale int
}

// BatchNormAttrs parameterizes inference batch normalization. The node's
// W holds the folded per-channel scale γ/√(σ²+ε) and B the folded shift
// β−μ·scale, so execution is a single fused multiply-add per element.
type BatchNormAttrs struct {
	C int
}

// FusedAttrs parameterizes a TeMCO-fused lconv→act→[pool]→fconv kernel
// (paper §3.2). LW/LB are the lconv (restoring 1×1) weights, FW/FB the
// fconv (reducing 1×1) weights. Pool is nil when no pooling layer is fused.
// The kernel computes, per output tile, the C'-channel restored values in
// scratch buffers only.
//
// FW == nil selects *tail fusion*: the chain ends without an fconv and the
// kernel emits the restored (activated, pooled) tensor itself — OutC must
// equal MidC. This removes the lconv-output/activation-input double
// buffering at consumers that are not 1×1 convolutions (e.g. the add
// layers of residual blocks), the "restorations ... hidden in the fused
// layers" of paper §2.3.
type FusedAttrs struct {
	InC  int // channels of the reduced input tensor
	MidC int // C': channels of the (never materialized) restored tensor
	OutC int // channels of the reduced output tensor
	Act  Kind
	Pool *PoolAttrs
	// PoolKind distinguishes max from average pooling when Pool != nil.
	PoolKind Kind
	LW       *tensor.Tensor // [MidC, InC, 1, 1]
	LB       *tensor.Tensor // [MidC] or nil
	FW       *tensor.Tensor // [OutC, MidC, 1, 1]
	FB       *tensor.Tensor // [OutC] or nil
}

// Node is one SSA value in the layer graph: an operator application whose
// single output tensor is identified with the node itself.
type Node struct {
	ID     int
	Name   string
	Kind   Kind
	Inputs []*Node
	Attrs  any
	// W and B hold the node's parameters (weight tensors in the paper's
	// terminology); they count toward weight memory, not internal-tensor
	// memory.
	W, B *tensor.Tensor
	// Shape is the inferred output shape excluding the batch dimension:
	// [C,H,W] for feature maps, [F] after flatten.
	Shape []int
	// Role records decomposition provenance (reporting only).
	Role Role
}

// NumElems returns the element count of the node's output for batch size 1.
func (n *Node) NumElems() int64 {
	e := int64(1)
	for _, d := range n.Shape {
		e *= int64(d)
	}
	return e
}

// OutBytes returns the output tensor size in bytes for the given batch.
func (n *Node) OutBytes(batch int) int64 {
	return n.NumElems() * 4 * int64(batch)
}

// WeightBytes returns the parameter footprint of the node in bytes,
// including fused-kernel weights.
func (n *Node) WeightBytes() int64 {
	var b int64
	if n.W != nil {
		b += n.W.Bytes()
	}
	if n.B != nil {
		b += n.B.Bytes()
	}
	if fa, ok := n.Attrs.(*FusedAttrs); ok {
		for _, t := range []*tensor.Tensor{fa.LW, fa.LB, fa.FW, fa.FB} {
			if t != nil {
				b += t.Bytes()
			}
		}
	}
	return b
}

// Conv returns the node's ConvAttrs and panics if it is not a conv node.
func (n *Node) Conv() *ConvAttrs {
	a, ok := n.Attrs.(*ConvAttrs)
	if !ok {
		panic(fmt.Sprintf("ir: node %s (%s) is not a conv", n.Name, n.Kind))
	}
	return a
}

// Pool returns the node's PoolAttrs and panics if it is not a pool node.
func (n *Node) Pool() *PoolAttrs {
	a, ok := n.Attrs.(*PoolAttrs)
	if !ok {
		panic(fmt.Sprintf("ir: node %s (%s) is not a pool", n.Name, n.Kind))
	}
	return a
}

// Fused returns the node's FusedAttrs and panics if it is not a fused node.
func (n *Node) Fused() *FusedAttrs {
	a, ok := n.Attrs.(*FusedAttrs)
	if !ok {
		panic(fmt.Sprintf("ir: node %s (%s) is not fused", n.Name, n.Kind))
	}
	return a
}

// IsLConv implements the paper's Alg. 2 IsLConv test: a 1×1, stride-1,
// ungrouped convolution whose output channel count exceeds its input
// channel count — i.e. the restoring factor convolution of a decomposed
// sequence.
func (n *Node) IsLConv() bool {
	if n.Kind != KindConv2D {
		return false
	}
	a := n.Conv()
	return a.KH == 1 && a.KW == 1 && a.SH == 1 && a.SW == 1 &&
		a.PH == 0 && a.PW == 0 && a.Groups == 1 && a.OutC > a.InC
}

// IsFConv is the dual structural test: a 1×1, stride-1, ungrouped
// convolution that reduces the channel count — the leading factor
// convolution of a decomposed sequence.
func (n *Node) IsFConv() bool {
	if n.Kind != KindConv2D {
		return false
	}
	a := n.Conv()
	return a.KH == 1 && a.KW == 1 && a.SH == 1 && a.SW == 1 &&
		a.PH == 0 && a.PW == 0 && a.Groups == 1 && a.OutC < a.InC
}

// String renders a compact description for debugging.
func (n *Node) String() string {
	return fmt.Sprintf("%%%d:%s(%s)%v", n.ID, n.Name, n.Kind, n.Shape)
}
