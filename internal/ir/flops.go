package ir

// FLOPs returns the floating point operation count of one application of
// node n at batch size 1, counting a multiply-accumulate as 2 ops. The
// skip-connection optimization's Overhead gate (paper Alg. 1) compares
// these counts against COMPUTE_THRESHOLD.
func FLOPs(n *Node) int64 {
	outElems := n.NumElems()
	switch n.Kind {
	case KindInput, KindFlatten:
		return 0
	case KindConv2D:
		a := n.Conv()
		g := a.Groups
		if g == 0 {
			g = 1
		}
		// Each output element: InC/g · KH · KW MACs.
		return outElems * int64(a.InC/g) * int64(a.KH) * int64(a.KW) * 2
	case KindLinear:
		a := n.Attrs.(*LinearAttrs)
		return int64(a.In) * int64(a.Out) * 2
	case KindReLU, KindSigmoid:
		return outElems
	case KindSiLU:
		return outElems * 2
	case KindBatchNorm:
		return outElems * 2
	case KindMaxPool, KindAvgPool:
		a := n.Pool()
		return outElems * int64(a.KH) * int64(a.KW)
	case KindGlobalAvgPool:
		if len(n.Inputs) == 1 {
			return n.Inputs[0].NumElems()
		}
		return outElems
	case KindUpsample:
		return outElems
	case KindAdd:
		return outElems
	case KindConcat:
		return 0
	case KindSoftmax:
		return outElems * 3
	case KindFused:
		a := n.Fused()
		h, w := n.Shape[1], n.Shape[2]
		preH, preW := h, w
		if a.Pool != nil {
			// The lconv/activation run at pre-pool resolution.
			preH = (h-1)*a.Pool.SH + a.Pool.KH - 2*a.Pool.PH
			preW = (w-1)*a.Pool.SW + a.Pool.KW - 2*a.Pool.PW
			if len(n.Inputs) == 1 {
				preH, preW = n.Inputs[0].Shape[1], n.Inputs[0].Shape[2]
			}
		}
		lconv := int64(a.MidC) * int64(preH) * int64(preW) * int64(a.InC) * 2
		act := int64(a.MidC) * int64(preH) * int64(preW)
		pool := int64(0)
		if a.Pool != nil {
			pool = int64(a.MidC) * int64(h) * int64(w) * int64(a.Pool.KH) * int64(a.Pool.KW)
		}
		fconv := int64(0)
		if a.FW != nil {
			fconv = int64(a.OutC) * int64(h) * int64(w) * int64(a.MidC) * 2
		}
		return lconv + act + pool + fconv
	default:
		return 0
	}
}

// GraphFLOPs sums FLOPs over the whole graph at batch size 1.
func GraphFLOPs(g *Graph) int64 {
	var total int64
	for _, n := range g.Nodes {
		total += FLOPs(n)
	}
	return total
}
