package ir

import "fmt"

// convOut computes one spatial output extent: floor((in + 2p - k)/s) + 1.
func convOut(in, k, s, p int) int {
	return (in+2*p-k)/s + 1
}

// checkWindow rejects degenerate kernel/stride/padding combinations before
// convOut can divide by zero. Untrusted attrs (graphio.Load) reach shape
// inference unchecked, so this must error rather than panic.
func checkWindow(kind Kind, kh, kw, sh, sw, ph, pw int) error {
	if kh < 1 || kw < 1 || sh < 1 || sw < 1 || ph < 0 || pw < 0 {
		return fmt.Errorf("%v has degenerate window: kernel %dx%d stride %dx%d pad %dx%d",
			kind, kh, kw, sh, sw, ph, pw)
	}
	return nil
}

// InferShape computes the output shape of an operator application given
// its attrs and input shapes (batch excluded). It returns an error for
// malformed applications; Graph construction turns these into panics so
// model-building bugs surface immediately.
func InferShape(kind Kind, attrs any, inputs [][]int) ([]int, error) {
	chw := func(i int) ([]int, error) {
		if i >= len(inputs) {
			return nil, fmt.Errorf("missing input %d", i)
		}
		if len(inputs[i]) != 3 {
			return nil, fmt.Errorf("input %d has shape %v, want [C,H,W]", i, inputs[i])
		}
		return inputs[i], nil
	}
	switch kind {
	case KindInput:
		return nil, fmt.Errorf("input nodes carry their own shape")
	case KindConv2D:
		a, ok := attrs.(*ConvAttrs)
		if !ok {
			return nil, fmt.Errorf("conv2d requires *ConvAttrs")
		}
		in, err := chw(0)
		if err != nil {
			return nil, err
		}
		if in[0] != a.InC {
			return nil, fmt.Errorf("conv2d input has %d channels, attrs say %d", in[0], a.InC)
		}
		if a.InC < 1 || a.OutC < 1 {
			return nil, fmt.Errorf("conv2d channels %d→%d must be positive", a.InC, a.OutC)
		}
		if err := checkWindow(kind, a.KH, a.KW, a.SH, a.SW, a.PH, a.PW); err != nil {
			return nil, err
		}
		g := a.Groups
		if g == 0 {
			g = 1
		}
		if g < 0 || a.InC%g != 0 || a.OutC%g != 0 {
			return nil, fmt.Errorf("conv2d groups %d do not divide channels %d→%d", g, a.InC, a.OutC)
		}
		oh := convOut(in[1], a.KH, a.SH, a.PH)
		ow := convOut(in[2], a.KW, a.SW, a.PW)
		if oh <= 0 || ow <= 0 {
			return nil, fmt.Errorf("conv2d output %d×%d is empty for input %v", oh, ow, in)
		}
		return []int{a.OutC, oh, ow}, nil
	case KindMaxPool, KindAvgPool:
		a, ok := attrs.(*PoolAttrs)
		if !ok {
			return nil, fmt.Errorf("pool requires *PoolAttrs")
		}
		if err := checkWindow(kind, a.KH, a.KW, a.SH, a.SW, a.PH, a.PW); err != nil {
			return nil, err
		}
		in, err := chw(0)
		if err != nil {
			return nil, err
		}
		oh := convOut(in[1], a.KH, a.SH, a.PH)
		ow := convOut(in[2], a.KW, a.SW, a.PW)
		if oh <= 0 || ow <= 0 {
			return nil, fmt.Errorf("pool output %d×%d is empty for input %v", oh, ow, in)
		}
		return []int{in[0], oh, ow}, nil
	case KindGlobalAvgPool:
		in, err := chw(0)
		if err != nil {
			return nil, err
		}
		return []int{in[0], 1, 1}, nil
	case KindUpsample:
		a, ok := attrs.(*UpsampleAttrs)
		if !ok || a.Scale < 1 {
			return nil, fmt.Errorf("upsample requires *UpsampleAttrs with Scale ≥ 1")
		}
		in, err := chw(0)
		if err != nil {
			return nil, err
		}
		return []int{in[0], in[1] * a.Scale, in[2] * a.Scale}, nil
	case KindReLU, KindSiLU, KindSigmoid, KindSoftmax:
		if len(inputs) != 1 {
			return nil, fmt.Errorf("%v takes exactly one input", kind)
		}
		return append([]int(nil), inputs[0]...), nil
	case KindBatchNorm:
		a, ok := attrs.(*BatchNormAttrs)
		if !ok {
			return nil, fmt.Errorf("batchnorm requires *BatchNormAttrs")
		}
		in, err := chw(0)
		if err != nil {
			return nil, err
		}
		if in[0] != a.C {
			return nil, fmt.Errorf("batchnorm over %d channels applied to %d-channel input", a.C, in[0])
		}
		return append([]int(nil), in...), nil
	case KindAdd:
		if len(inputs) != 2 {
			return nil, fmt.Errorf("add takes exactly two inputs")
		}
		if !shapeEq(inputs[0], inputs[1]) {
			return nil, fmt.Errorf("add shape mismatch %v vs %v", inputs[0], inputs[1])
		}
		return append([]int(nil), inputs[0]...), nil
	case KindConcat:
		if len(inputs) < 2 {
			return nil, fmt.Errorf("concat takes at least two inputs")
		}
		first, err := chw(0)
		if err != nil {
			return nil, err
		}
		c := first[0]
		for i := 1; i < len(inputs); i++ {
			in, err := chw(i)
			if err != nil {
				return nil, err
			}
			if in[1] != first[1] || in[2] != first[2] {
				return nil, fmt.Errorf("concat spatial mismatch %v vs %v", in, first)
			}
			c += in[0]
		}
		return []int{c, first[1], first[2]}, nil
	case KindFlatten:
		in, err := chw(0)
		if err != nil {
			return nil, err
		}
		return []int{in[0] * in[1] * in[2]}, nil
	case KindLinear:
		a, ok := attrs.(*LinearAttrs)
		if !ok {
			return nil, fmt.Errorf("linear requires *LinearAttrs")
		}
		if len(inputs) != 1 || len(inputs[0]) != 1 {
			return nil, fmt.Errorf("linear takes a flat [F] input, got %v", inputs)
		}
		if inputs[0][0] != a.In {
			return nil, fmt.Errorf("linear expects %d features, got %d", a.In, inputs[0][0])
		}
		return []int{a.Out}, nil
	case KindFused:
		a, ok := attrs.(*FusedAttrs)
		if !ok {
			return nil, fmt.Errorf("fused requires *FusedAttrs")
		}
		in, err := chw(0)
		if err != nil {
			return nil, err
		}
		if in[0] != a.InC {
			return nil, fmt.Errorf("fused input has %d channels, attrs say %d", in[0], a.InC)
		}
		if a.FW == nil && a.OutC != a.MidC {
			return nil, fmt.Errorf("tail fusion must emit MidC=%d channels, attrs say %d", a.MidC, a.OutC)
		}
		h, w := in[1], in[2]
		if a.Pool != nil {
			if err := checkWindow(kind, a.Pool.KH, a.Pool.KW, a.Pool.SH, a.Pool.SW, a.Pool.PH, a.Pool.PW); err != nil {
				return nil, err
			}
			h = convOut(h, a.Pool.KH, a.Pool.SH, a.Pool.PH)
			w = convOut(w, a.Pool.KW, a.Pool.SW, a.Pool.PW)
			if h <= 0 || w <= 0 {
				return nil, fmt.Errorf("fused pool output %d×%d is empty", h, w)
			}
		}
		return []int{a.OutC, h, w}, nil
	default:
		return nil, fmt.Errorf("unknown kind %v", kind)
	}
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
