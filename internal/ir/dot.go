package ir

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz dot syntax for debugging and
// documentation. Decomposition roles are color-coded.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", g.Name)
	for _, n := range g.Nodes {
		color := "white"
		switch n.Role {
		case RoleFConv:
			color = "lightblue"
		case RoleCore:
			color = "lightyellow"
		case RoleLConv:
			color = "lightpink"
		}
		if n.Kind == KindFused {
			color = "palegreen"
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\\n%s %v\", style=filled, fillcolor=%s];\n",
			n.ID, n.Name, n.Kind, n.Shape, color)
	}
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", in.ID, n.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
