package ir

import (
	"fmt"

	"temco/internal/tensor"
)

// Graph is an ordered SSA layer list. Nodes appear in execution order; the
// order is the schedule the memory planner replays, exactly as the paper's
// Algorithm 1 takes "an ordered tensor node list L in SSA form".
type Graph struct {
	Name    string
	Nodes   []*Node
	Inputs  []*Node
	Outputs []*Node
	nextID  int
}

// NewGraph returns an empty graph.
func NewGraph(name string) *Graph {
	return &Graph{Name: name}
}

// NewID reserves a fresh node ID (used by passes that build nodes
// manually before splicing them into the schedule).
func (g *Graph) NewID() int {
	id := g.nextID
	g.nextID++
	return id
}

// ReserveIDs makes future NewID calls return values strictly greater than
// max. Loaders use it so post-load passes never collide with loaded IDs.
func (g *Graph) ReserveIDs(max int) {
	if max >= g.nextID {
		g.nextID = max + 1
	}
}

// Input appends a graph input with the given shape.
func (g *Graph) Input(name string, shape ...int) *Node {
	n := &Node{ID: g.NewID(), Name: name, Kind: KindInput, Shape: append([]int(nil), shape...)}
	g.Nodes = append(g.Nodes, n)
	g.Inputs = append(g.Inputs, n)
	return n
}

// Apply appends an operator node, inferring its output shape. It panics on
// malformed applications: model construction errors are programming errors.
func (g *Graph) Apply(kind Kind, name string, attrs any, inputs ...*Node) *Node {
	shapes := make([][]int, len(inputs))
	for i, in := range inputs {
		shapes[i] = in.Shape
	}
	shape, err := InferShape(kind, attrs, shapes)
	if err != nil {
		panic(fmt.Sprintf("ir: %s/%s: %v", g.Name, name, err))
	}
	n := &Node{ID: g.NewID(), Name: name, Kind: kind, Inputs: append([]*Node(nil), inputs...), Attrs: attrs, Shape: shape}
	g.Nodes = append(g.Nodes, n)
	return n
}

// MarkOutput declares n a graph output (live until the end of inference).
func (g *Graph) MarkOutput(n *Node) {
	g.Outputs = append(g.Outputs, n)
}

// Index returns a map from node pointer to schedule position.
func (g *Graph) Index() map[*Node]int {
	idx := make(map[*Node]int, len(g.Nodes))
	for i, n := range g.Nodes {
		idx[n] = i
	}
	return idx
}

// Succs returns the successor lists of the program dependence graph:
// for each node, the nodes that consume its output, in schedule order.
func (g *Graph) Succs() map[*Node][]*Node {
	s := make(map[*Node][]*Node, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			s[in] = append(s[in], n)
		}
	}
	return s
}

// UseCounts returns the number of consumers of each node, counting graph
// outputs as an extra use (they stay live to the end).
func (g *Graph) UseCounts() map[*Node]int {
	u := make(map[*Node]int, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			u[in]++
		}
	}
	for _, o := range g.Outputs {
		u[o]++
	}
	return u
}

// Validate checks SSA and schedule invariants: every input of a node is
// defined earlier in the list, IDs are unique, shapes are consistent with
// re-running inference, and outputs are graph members.
func (g *Graph) Validate() error {
	pos := make(map[*Node]int, len(g.Nodes))
	ids := make(map[int]bool, len(g.Nodes))
	for i, n := range g.Nodes {
		if ids[n.ID] {
			return fmt.Errorf("%s: duplicate node ID %d (%s)", g.Name, n.ID, n.Name)
		}
		ids[n.ID] = true
		for _, in := range n.Inputs {
			j, ok := pos[in]
			if !ok {
				return fmt.Errorf("%s: node %s uses %s which is not defined before it", g.Name, n, in)
			}
			if j >= i {
				return fmt.Errorf("%s: node %s uses %s defined at a later position", g.Name, n, in)
			}
		}
		if n.Kind != KindInput {
			shapes := make([][]int, len(n.Inputs))
			for k, in := range n.Inputs {
				shapes[k] = in.Shape
			}
			want, err := InferShape(n.Kind, n.Attrs, shapes)
			if err != nil {
				return fmt.Errorf("%s: node %s: %v", g.Name, n, err)
			}
			if !shapeEq(want, n.Shape) {
				return fmt.Errorf("%s: node %s has stale shape %v, inference says %v", g.Name, n, n.Shape, want)
			}
			if err := checkParams(n); err != nil {
				return fmt.Errorf("%s: node %s: %w", g.Name, n, err)
			}
		}
		pos[n] = i
	}
	for _, o := range g.Outputs {
		if _, ok := pos[o]; !ok {
			return fmt.Errorf("%s: output %s is not in the node list", g.Name, o)
		}
	}
	for _, in := range g.Inputs {
		if _, ok := pos[in]; !ok {
			return fmt.Errorf("%s: input %s is not in the node list", g.Name, in)
		}
	}
	return nil
}

// InsertBefore splices newNodes into the schedule immediately before node
// at. It panics if at is not in the graph.
func (g *Graph) InsertBefore(at *Node, newNodes ...*Node) {
	idx := -1
	for i, n := range g.Nodes {
		if n == at {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic(fmt.Sprintf("ir: InsertBefore: node %s not in graph %s", at, g.Name))
	}
	out := make([]*Node, 0, len(g.Nodes)+len(newNodes))
	out = append(out, g.Nodes[:idx]...)
	out = append(out, newNodes...)
	out = append(out, g.Nodes[idx:]...)
	g.Nodes = out
}

// ReplaceUsesIn rewrites consumer's input edges from old to new.
func ReplaceUsesIn(consumer *Node, old, new *Node) {
	for i, in := range consumer.Inputs {
		if in == old {
			consumer.Inputs[i] = new
		}
	}
}

// ReplaceAllUses rewrites every use of old (including graph outputs) to new.
func (g *Graph) ReplaceAllUses(old, new *Node) {
	for _, n := range g.Nodes {
		ReplaceUsesIn(n, old, new)
	}
	for i, o := range g.Outputs {
		if o == old {
			g.Outputs[i] = new
		}
	}
}

// DeadCodeElim removes nodes whose outputs are unreachable from the graph
// outputs (graph inputs are always retained). It returns the number of
// nodes removed. Skip-connection optimization relies on this to delete the
// original restore chains once every use has been rematerialized.
func (g *Graph) DeadCodeElim() int {
	live := make(map[*Node]bool, len(g.Nodes))
	var mark func(n *Node)
	mark = func(n *Node) {
		if live[n] {
			return
		}
		live[n] = true
		for _, in := range n.Inputs {
			mark(in)
		}
	}
	for _, o := range g.Outputs {
		mark(o)
	}
	for _, in := range g.Inputs {
		live[in] = true
	}
	kept := g.Nodes[:0]
	removed := 0
	for _, n := range g.Nodes {
		if live[n] {
			kept = append(kept, n)
		} else {
			removed++
		}
	}
	g.Nodes = kept
	return removed
}

// Clone deep-copies the graph structure. Weight tensors are shared (they
// are immutable at inference time), node structs are fresh, so passes can
// rewrite the clone without touching the original.
func (g *Graph) Clone() *Graph {
	ng := &Graph{Name: g.Name, nextID: g.nextID}
	m := make(map[*Node]*Node, len(g.Nodes))
	for _, n := range g.Nodes {
		c := &Node{
			ID: n.ID, Name: n.Name, Kind: n.Kind,
			Attrs: cloneAttrs(n.Attrs),
			W:     n.W, B: n.B,
			Shape: append([]int(nil), n.Shape...),
			Role:  n.Role,
		}
		c.Inputs = make([]*Node, len(n.Inputs))
		for i, in := range n.Inputs {
			c.Inputs[i] = m[in]
		}
		m[n] = c
		ng.Nodes = append(ng.Nodes, c)
	}
	for _, in := range g.Inputs {
		ng.Inputs = append(ng.Inputs, m[in])
	}
	for _, o := range g.Outputs {
		ng.Outputs = append(ng.Outputs, m[o])
	}
	return ng
}

// CloneAttrs deep-copies an operator attribute struct. Passes use it when
// duplicating nodes (e.g. skip-connection rematerialization).
func CloneAttrs(a any) any { return cloneAttrs(a) }

func cloneAttrs(a any) any {
	switch v := a.(type) {
	case nil:
		return nil
	case *ConvAttrs:
		c := *v
		return &c
	case *PoolAttrs:
		c := *v
		return &c
	case *LinearAttrs:
		c := *v
		return &c
	case *UpsampleAttrs:
		c := *v
		return &c
	case *BatchNormAttrs:
		c := *v
		return &c
	case *FusedAttrs:
		c := *v
		if v.Pool != nil {
			p := *v.Pool
			c.Pool = &p
		}
		return &c
	default:
		panic(fmt.Sprintf("ir: cloneAttrs: unknown attrs type %T", a))
	}
}

// WeightBytes sums the parameter footprint of the whole graph.
func (g *Graph) WeightBytes() int64 {
	var b int64
	for _, n := range g.Nodes {
		b += n.WeightBytes()
	}
	return b
}

// NodeByName returns the first node with the given name, or nil.
func (g *Graph) NodeByName(name string) *Node {
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// checkParams verifies a node's parameter tensors match its attrs.
func checkParams(n *Node) error {
	switch n.Kind {
	case KindConv2D:
		a := n.Conv()
		g := a.Groups
		if g == 0 {
			g = 1
		}
		want := a.OutC * (a.InC / g) * a.KH * a.KW
		if n.W == nil || n.W.Len() != want {
			return fmt.Errorf("conv weight has %d elems, attrs imply %d", tlen(n.W), want)
		}
		if n.B != nil && n.B.Len() != a.OutC {
			return fmt.Errorf("conv bias has %d elems, attrs imply %d", n.B.Len(), a.OutC)
		}
	case KindLinear:
		a := n.Attrs.(*LinearAttrs)
		if n.W == nil || n.W.Len() != a.In*a.Out {
			return fmt.Errorf("linear weight has %d elems, attrs imply %d", tlen(n.W), a.In*a.Out)
		}
	case KindBatchNorm:
		a := n.Attrs.(*BatchNormAttrs)
		if n.W == nil || n.W.Len() != a.C || n.B == nil || n.B.Len() != a.C {
			return fmt.Errorf("batchnorm params do not match %d channels", a.C)
		}
	case KindFused:
		a := n.Fused()
		if a.LW == nil || a.LW.Len() != a.MidC*a.InC {
			return fmt.Errorf("fused lconv weight has %d elems, attrs imply %d", tlen(a.LW), a.MidC*a.InC)
		}
		if a.FW == nil {
			if a.OutC != a.MidC {
				return fmt.Errorf("tail fusion emits %d channels, want MidC=%d", a.OutC, a.MidC)
			}
		} else if a.FW.Len() != a.OutC*a.MidC {
			return fmt.Errorf("fused fconv weight has %d elems, attrs imply %d", tlen(a.FW), a.OutC*a.MidC)
		}
	}
	return nil
}

func tlen(t *tensor.Tensor) int {
	if t == nil {
		return 0
	}
	return t.Len()
}
