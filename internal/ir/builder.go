package ir

import (
	"fmt"

	"temco/internal/tensor"
)

// Builder wraps a Graph with convenience constructors that allocate and
// initialize parameters deterministically. Models in internal/models are
// written against this API.
type Builder struct {
	G      *Graph
	RNG    *tensor.RNG
	counts map[string]int
}

// NewBuilder returns a builder over a fresh graph seeded deterministically.
func NewBuilder(name string, seed uint64) *Builder {
	return &Builder{G: NewGraph(name), RNG: tensor.NewRNG(seed), counts: make(map[string]int)}
}

func (b *Builder) autoName(prefix string) string {
	b.counts[prefix]++
	return fmt.Sprintf("%s%d", prefix, b.counts[prefix])
}

// Input declares a [C,H,W] graph input.
func (b *Builder) Input(c, h, w int) *Node {
	return b.G.Input("input", c, h, w)
}

// Conv adds a KxK convolution with He-initialized weights and zero bias.
func (b *Builder) Conv(in *Node, outC, k, stride, pad int) *Node {
	return b.ConvNamed(b.autoName("conv"), in, outC, k, k, stride, stride, pad, pad, 1)
}

// ConvStride adds a k×k convolution with the given stride and padding.
func (b *Builder) ConvStride(in *Node, outC, k, stride, pad int) *Node {
	return b.ConvNamed(b.autoName("conv"), in, outC, k, k, stride, stride, pad, pad, 1)
}

// ConvNamed adds a fully parameterized convolution.
func (b *Builder) ConvNamed(name string, in *Node, outC, kh, kw, sh, sw, ph, pw, groups int) *Node {
	inC := in.Shape[0]
	a := &ConvAttrs{InC: inC, OutC: outC, KH: kh, KW: kw, SH: sh, SW: sw, PH: ph, PW: pw, Groups: groups}
	n := b.G.Apply(KindConv2D, name, a, in)
	n.W = tensor.New(outC, inC/groups, kh, kw)
	n.W.FillHe(b.RNG, (inC/groups)*kh*kw)
	n.B = tensor.New(outC)
	return n
}

// BatchNorm adds inference batch normalization with randomized folded
// scale/shift (simulating trained running statistics).
func (b *Builder) BatchNorm(in *Node) *Node {
	c := in.Shape[0]
	n := b.G.Apply(KindBatchNorm, b.autoName("bn"), &BatchNormAttrs{C: c}, in)
	n.W = tensor.New(c)
	n.W.FillUniform(b.RNG, 0.8, 1.2) // folded γ/√(σ²+ε)
	n.B = tensor.New(c)
	n.B.FillUniform(b.RNG, -0.1, 0.1) // folded β−μ·scale
	return n
}

// ReLU adds a rectified linear activation.
func (b *Builder) ReLU(in *Node) *Node {
	return b.G.Apply(KindReLU, b.autoName("relu"), nil, in)
}

// SiLU adds a sigmoid-weighted linear activation.
func (b *Builder) SiLU(in *Node) *Node {
	return b.G.Apply(KindSiLU, b.autoName("silu"), nil, in)
}

// Sigmoid adds a logistic activation.
func (b *Builder) Sigmoid(in *Node) *Node {
	return b.G.Apply(KindSigmoid, b.autoName("sigmoid"), nil, in)
}

// MaxPool adds k×k max pooling with stride s.
func (b *Builder) MaxPool(in *Node, k, s int) *Node {
	return b.G.Apply(KindMaxPool, b.autoName("maxpool"), &PoolAttrs{KH: k, KW: k, SH: s, SW: s}, in)
}

// AvgPool adds k×k average pooling with stride s.
func (b *Builder) AvgPool(in *Node, k, s int) *Node {
	return b.G.Apply(KindAvgPool, b.autoName("avgpool"), &PoolAttrs{KH: k, KW: k, SH: s, SW: s}, in)
}

// GlobalAvgPool reduces each channel to 1×1.
func (b *Builder) GlobalAvgPool(in *Node) *Node {
	return b.G.Apply(KindGlobalAvgPool, b.autoName("gap"), nil, in)
}

// Upsample adds nearest-neighbour upsampling by scale.
func (b *Builder) Upsample(in *Node, scale int) *Node {
	return b.G.Apply(KindUpsample, b.autoName("up"), &UpsampleAttrs{Scale: scale}, in)
}

// Add adds elementwise addition.
func (b *Builder) Add(x, y *Node) *Node {
	return b.G.Apply(KindAdd, b.autoName("add"), nil, x, y)
}

// Concat adds channel concatenation.
func (b *Builder) Concat(ins ...*Node) *Node {
	return b.G.Apply(KindConcat, b.autoName("concat"), nil, ins...)
}

// Flatten reshapes [C,H,W] to [C·H·W].
func (b *Builder) Flatten(in *Node) *Node {
	return b.G.Apply(KindFlatten, b.autoName("flatten"), nil, in)
}

// Linear adds a fully connected layer with He-initialized weights.
func (b *Builder) Linear(in *Node, out int) *Node {
	f := in.Shape[0]
	n := b.G.Apply(KindLinear, b.autoName("fc"), &LinearAttrs{In: f, Out: out}, in)
	n.W = tensor.New(out, f)
	n.W.FillHe(b.RNG, f)
	n.B = tensor.New(out)
	return n
}

// Softmax adds a softmax over a flat vector.
func (b *Builder) Softmax(in *Node) *Node {
	return b.G.Apply(KindSoftmax, b.autoName("softmax"), nil, in)
}

// Output marks n as a graph output and returns it.
func (b *Builder) Output(n *Node) *Node {
	b.G.MarkOutput(n)
	return n
}
