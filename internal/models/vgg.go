package models

import "temco/internal/ir"

// vggConfigs lists the per-stage convolution channels; "M" boundaries are
// implicit after each stage (2×2/2 max pooling).
var (
	vgg11Stages = [][]int{{64}, {128}, {256, 256}, {512, 512}, {512, 512}}
	vgg16Stages = [][]int{{64, 64}, {128, 128}, {256, 256, 256}, {512, 512, 512}, {512, 512, 512}}
)

func buildVGG11(cfg Config) *ir.Graph { return vgg(cfg, "vgg11", vgg11Stages) }
func buildVGG16(cfg Config) *ir.Graph { return vgg(cfg, "vgg16", vgg16Stages) }

// vgg follows Simonyan & Zisserman's configuration: stacked 3×3
// convolutions with ReLU, 2×2 max pooling between stages, and a
// fully-connected classifier head.
func vgg(cfg Config, name string, stages [][]int) *ir.Graph {
	b := ir.NewBuilder(name, cfg.Seed)
	x := b.Input(3, cfg.H, cfg.W)
	for _, stage := range stages {
		for _, c := range stage {
			x = convReLU(b, x, c, 3, 1, 1)
		}
		x = b.MaxPool(x, 2, 2)
	}
	x = b.Flatten(x)
	x = b.ReLU(b.Linear(x, 1024))
	x = b.ReLU(b.Linear(x, 1024))
	x = b.Linear(x, cfg.Classes)
	b.Output(x)
	return b.G
}
