package models

import "temco/internal/ir"

func buildDenseNet40(cfg Config) *ir.Graph  { return denseNet(cfg, "densenet40", 12, 24) }
func buildDenseNet100(cfg Config) *ir.Graph { return denseNet(cfg, "densenet100", 32, 24) }

// denseNet follows Huang et al.'s CIFAR configuration: an initial
// convolution, three dense blocks of layersPerBlock layers with growth
// rate k joined by channel concatenation (the skip connections), and
// 1×1-conv + 2×2 average-pool transitions with 0.5 compression.
//
// Substitution note (see DESIGN.md): the reference DenseNet uses
// pre-activation BN→ReLU→Conv layers; this reproduction uses
// Conv→BN→ReLU so inference-time batchnorm folds into the convolution,
// which is what the fusion pattern matcher (and any inference compiler)
// expects. The skip-connection topology — the property TeMCO exercises —
// is identical.
func denseNet(cfg Config, name string, layersPerBlock, growth int) *ir.Graph {
	b := ir.NewBuilder(name, cfg.Seed)
	in := b.Input(3, cfg.H, cfg.W)
	x := b.ReLU(b.BatchNorm(b.ConvStride(in, 2*growth, 3, 1, 1)))
	for blk := 0; blk < 3; blk++ {
		for l := 0; l < layersPerBlock; l++ {
			y := convBNReLU(b, x, growth, 3, 1, 1)
			x = b.Concat(x, y)
		}
		if blk < 2 {
			// Transition: compress channels by half and halve resolution.
			x = b.ReLU(b.BatchNorm(b.ConvStride(x, x.Shape[0]/2, 1, 1, 0)))
			x = b.AvgPool(x, 2, 2)
		}
	}
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Linear(x, cfg.Classes)
	b.Output(x)
	return b.G
}
