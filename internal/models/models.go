// Package models builds the evaluation networks of the paper (§4.1): image
// classification with AlexNet, VGG, ResNet, and DenseNet, and image
// segmentation with UNet — ten models across five architectures. All models
// are expressed in the layer-graph IR with deterministic He-initialized
// weights.
//
// The paper evaluates at ImageNet resolution on an RTX 4090; this
// reproduction defaults to 64×64 inputs (memory *ratios* are resolution
// independent — every internal tensor scales by H·W alike) and exposes the
// resolution as a parameter.
package models

import (
	"fmt"
	"sort"

	"temco/internal/ir"
)

// Config parameterizes model construction.
type Config struct {
	// H, W is the input resolution.
	H, W int
	// Classes is the classifier output width (segmentation models ignore it).
	Classes int
	// Seed drives weight initialization.
	Seed uint64
}

// DefaultConfig returns the evaluation defaults: 64×64 inputs, 100 classes.
func DefaultConfig() Config { return Config{H: 64, W: 64, Classes: 100, Seed: 42} }

// Spec describes one model in the registry.
type Spec struct {
	// Name is the registry key (e.g. "vgg16").
	Name string
	// Arch is the architecture family (alexnet, vgg, resnet, densenet, unet).
	Arch string
	// HasSkips reports whether the model contains skip connections, which
	// selects the paper's optimization set (Fusion vs Skip-Opt+Fusion).
	HasSkips bool
	// Build constructs the graph.
	Build func(cfg Config) *ir.Graph
}

var registry = map[string]Spec{
	"alexnet":     {Name: "alexnet", Arch: "alexnet", Build: buildAlexNet},
	"alexnet-w":   {Name: "alexnet-w", Arch: "alexnet", Build: buildAlexNetWide},
	"vgg11":       {Name: "vgg11", Arch: "vgg", Build: buildVGG11},
	"vgg16":       {Name: "vgg16", Arch: "vgg", Build: buildVGG16},
	"resnet18":    {Name: "resnet18", Arch: "resnet", HasSkips: true, Build: buildResNet18},
	"resnet34":    {Name: "resnet34", Arch: "resnet", HasSkips: true, Build: buildResNet34},
	"densenet40":  {Name: "densenet40", Arch: "densenet", HasSkips: true, Build: buildDenseNet40},
	"densenet100": {Name: "densenet100", Arch: "densenet", HasSkips: true, Build: buildDenseNet100},
	"unet":        {Name: "unet", Arch: "unet", HasSkips: true, Build: buildUNet},
	"unet-s":      {Name: "unet-s", Arch: "unet", HasSkips: true, Build: buildUNetSmall},
}

// Names returns the registry keys in the paper's presentation order.
func Names() []string {
	order := map[string]int{"alexnet": 0, "vgg": 1, "resnet": 2, "densenet": 3, "unet": 4}
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := registry[names[i]], registry[names[j]]
		if order[a.Arch] != order[b.Arch] {
			return order[a.Arch] < order[b.Arch]
		}
		return a.Name < b.Name
	})
	return names
}

// Get returns the spec for name.
func Get(name string) (Spec, error) {
	s, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("models: unknown model %q (have %v)", name, Names())
	}
	return s, nil
}

// Build constructs model name under cfg.
func Build(name string, cfg Config) (*ir.Graph, error) {
	s, err := Get(name)
	if err != nil {
		return nil, err
	}
	return s.Build(cfg), nil
}

// convReLU appends conv(outC,k,stride,pad) + ReLU.
func convReLU(b *ir.Builder, x *ir.Node, outC, k, stride, pad int) *ir.Node {
	return b.ReLU(b.Conv(x, outC, k, stride, pad))
}

// convBNReLU appends conv + batchnorm + ReLU (post-activation ordering; see
// DESIGN.md for the substitution note on pre-activation DenseNet).
func convBNReLU(b *ir.Builder, x *ir.Node, outC, k, stride, pad int) *ir.Node {
	return b.ReLU(b.BatchNorm(b.Conv(x, outC, k, stride, pad)))
}
