package models

import "temco/internal/ir"

func buildResNet18(cfg Config) *ir.Graph { return resNet(cfg, "resnet18", []int{2, 2, 2, 2}) }
func buildResNet34(cfg Config) *ir.Graph { return resNet(cfg, "resnet34", []int{3, 4, 6, 3}) }

// resNet follows He et al.: a 7×7/2 stem, four stages of BasicBlocks with
// identity add skip connections (1×1/2 projection on stage transitions),
// global average pooling, and a linear head.
func resNet(cfg Config, name string, blocks []int) *ir.Graph {
	b := ir.NewBuilder(name, cfg.Seed)
	in := b.Input(3, cfg.H, cfg.W)
	x := b.ReLU(b.BatchNorm(b.ConvNamed("stem", in, 64, 7, 7, 2, 2, 3, 3, 1)))
	x = b.MaxPool(x, 3, 2)
	channels := []int{64, 128, 256, 512}
	for stage, n := range blocks {
		c := channels[stage]
		for blk := 0; blk < n; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2
			}
			x = basicBlock(b, x, c, stride)
		}
	}
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Linear(x, cfg.Classes)
	b.Output(x)
	return b.G
}

// basicBlock is the two-convolution residual block:
// y = relu(bn(conv(bn(conv(x)) after relu)) + shortcut(x)).
func basicBlock(b *ir.Builder, x *ir.Node, outC, stride int) *ir.Node {
	inC := x.Shape[0]
	h := b.ReLU(b.BatchNorm(b.ConvStride(x, outC, 3, stride, 1)))
	h = b.BatchNorm(b.Conv(h, outC, 3, 1, 1))
	short := x
	if stride != 1 || inC != outC {
		short = b.BatchNorm(b.ConvStride(x, outC, 1, stride, 0))
	}
	return b.ReLU(b.Add(h, short))
}
