package models

import "temco/internal/ir"

func buildUNet(cfg Config) *ir.Graph      { return uNet(cfg, "unet", []int{32, 64, 128}, 256) }
func buildUNetSmall(cfg Config) *ir.Graph { return uNet(cfg, "unet-s", []int{16, 32}, 64) }

// uNet follows Ronneberger et al.'s hourglass: per encoder level two
// 3×3 conv+ReLU layers then 2×2 max pooling; a bottleneck; per decoder
// level nearest-neighbour upsampling, concatenation with the matching
// encoder output (the long skip connections), and two conv+ReLU layers;
// a 1×1 convolution + sigmoid head produces the mask.
func uNet(cfg Config, name string, enc []int, bottleneck int) *ir.Graph {
	b := ir.NewBuilder(name, cfg.Seed)
	x := b.Input(3, cfg.H, cfg.W)
	var skips []*ir.Node
	for _, c := range enc {
		x = convReLU(b, x, c, 3, 1, 1)
		x = convReLU(b, x, c, 3, 1, 1)
		skips = append(skips, x)
		x = b.MaxPool(x, 2, 2)
	}
	x = convReLU(b, x, bottleneck, 3, 1, 1)
	x = convReLU(b, x, bottleneck, 3, 1, 1)
	for i := len(enc) - 1; i >= 0; i-- {
		x = b.Upsample(x, 2)
		x = b.Concat(x, skips[i])
		x = convReLU(b, x, enc[i], 3, 1, 1)
		x = convReLU(b, x, enc[i], 3, 1, 1)
	}
	x = b.ConvNamed("head", x, 1, 1, 1, 1, 1, 0, 0, 1)
	x = b.Sigmoid(x)
	b.Output(x)
	return b.G
}
