package models

import "temco/internal/ir"

// buildAlexNet follows Krizhevsky et al.'s five-convolution feature stack
// with overlapping 3×3/2 max pooling, scaled to the configured resolution
// (the 11×11/4 stem becomes 7×7/2 at 64px).
func buildAlexNet(cfg Config) *ir.Graph {
	return alexNet(cfg, "alexnet", 64, 192, 384, 256, 256, 1024)
}

// buildAlexNetWide is the second AlexNet-family model: the same topology
// with 1.5× channel widths.
func buildAlexNetWide(cfg Config) *ir.Graph {
	return alexNet(cfg, "alexnet-w", 96, 288, 576, 384, 384, 1536)
}

func alexNet(cfg Config, name string, c1, c2, c3, c4, c5, fc int) *ir.Graph {
	b := ir.NewBuilder(name, cfg.Seed)
	in := b.Input(3, cfg.H, cfg.W)
	x := b.ReLU(b.ConvNamed("conv1", in, c1, 7, 7, 2, 2, 3, 3, 1))
	x = b.MaxPool(x, 3, 2)
	x = convReLU(b, x, c2, 5, 1, 2)
	x = b.MaxPool(x, 3, 2)
	x = convReLU(b, x, c3, 3, 1, 1)
	x = convReLU(b, x, c4, 3, 1, 1)
	x = convReLU(b, x, c5, 3, 1, 1)
	x = b.MaxPool(x, 3, 2)
	x = b.Flatten(x)
	x = b.ReLU(b.Linear(x, fc))
	x = b.ReLU(b.Linear(x, fc))
	x = b.Linear(x, cfg.Classes)
	b.Output(x)
	return b.G
}
