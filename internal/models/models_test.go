package models

import (
	"testing"

	"temco/internal/core"
	"temco/internal/decompose"
	"temco/internal/exec"
	"temco/internal/ir"
	"temco/internal/memplan"
	"temco/internal/tensor"
)

func smallCfg() Config { return Config{H: 32, W: 32, Classes: 10, Seed: 42} }

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 10 {
		t.Fatalf("registry has %d models, want 10: %v", len(names), names)
	}
	archs := map[string]int{}
	for _, n := range names {
		s, err := Get(n)
		if err != nil {
			t.Fatal(err)
		}
		archs[s.Arch]++
	}
	if len(archs) != 5 {
		t.Fatalf("architectures = %v, want 5 families", archs)
	}
	for a, c := range archs {
		if c != 2 {
			t.Fatalf("architecture %s has %d models, want 2", a, c)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestAllModelsBuildAndValidate(t *testing.T) {
	cfg := smallCfg()
	for _, name := range Names() {
		g, err := Build(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(g.Outputs) != 1 {
			t.Fatalf("%s: outputs = %d", name, len(g.Outputs))
		}
	}
}

func TestClassifierOutputShapes(t *testing.T) {
	cfg := smallCfg()
	for _, name := range []string{"alexnet", "alexnet-w", "vgg11", "vgg16", "resnet18", "resnet34", "densenet40", "densenet100"} {
		g, err := Build(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := g.Outputs[0]
		if len(out.Shape) != 1 || out.Shape[0] != cfg.Classes {
			t.Fatalf("%s: output shape %v, want [%d]", name, out.Shape, cfg.Classes)
		}
	}
}

func TestUNetOutputShapes(t *testing.T) {
	cfg := smallCfg()
	for _, name := range []string{"unet", "unet-s"} {
		g, err := Build(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := g.Outputs[0]
		want := []int{1, cfg.H, cfg.W}
		if len(out.Shape) != 3 || out.Shape[0] != want[0] || out.Shape[1] != want[1] || out.Shape[2] != want[2] {
			t.Fatalf("%s: output shape %v, want %v", name, out.Shape, want)
		}
		if out.Kind != ir.KindSigmoid {
			t.Fatalf("%s: head should be sigmoid, got %v", name, out.Kind)
		}
	}
}

func TestModelsHaveSkipsWhereExpected(t *testing.T) {
	cfg := smallCfg()
	for _, name := range Names() {
		s, _ := Get(name)
		g, _ := Build(name, cfg)
		live := memplan.Analyze(g)
		found := false
		for _, n := range g.Nodes {
			if n.Kind != ir.KindInput && live.Lifespan(n) > memplan.DefaultSkipThreshold {
				found = true
				break
			}
		}
		if found != s.HasSkips {
			t.Errorf("%s: HasSkips=%v but liveness says %v", name, s.HasSkips, found)
		}
	}
}

func TestModelsRunForward(t *testing.T) {
	cfg := smallCfg()
	for _, name := range []string{"alexnet", "vgg11", "resnet18", "densenet40", "unet-s"} {
		g, err := Build(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		x := tensor.New(1, 3, cfg.H, cfg.W)
		x.FillNormal(tensor.NewRNG(7), 0, 1)
		res, err := exec.Run(g, x)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, v := range res.Outputs[0].Data[:4] {
			_ = v // shape already checked; just ensure it completed
		}
	}
}

func TestDeterministicWeights(t *testing.T) {
	cfg := smallCfg()
	g1, _ := Build("vgg11", cfg)
	g2, _ := Build("vgg11", cfg)
	n1 := g1.NodeByName("conv1")
	n2 := g2.NodeByName("conv1")
	if tensor.MaxAbsDiff(n1.W, n2.W) != 0 {
		t.Fatal("same seed must give identical weights")
	}
	cfg2 := cfg
	cfg2.Seed = 43
	g3, _ := Build("vgg11", cfg2)
	if tensor.MaxAbsDiff(n1.W, g3.NodeByName("conv1").W) == 0 {
		t.Fatal("different seeds should give different weights")
	}
}

// TestDecomposeOptimizeAllModels is the big integration gate: every model
// must survive decompose → TeMCO with a valid graph, and the full pipeline
// must preserve the decomposed model's semantics.
func TestDecomposeOptimizeAllModels(t *testing.T) {
	cfg := smallCfg()
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			s, _ := Get(name)
			g, err := Build(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			dg, rep := decompose.Decompose(g, decompose.DefaultOptions())
			if len(rep.Layers) == 0 {
				t.Fatal("nothing decomposed")
			}
			var ccfg core.Config
			if s.HasSkips {
				ccfg = core.DefaultConfig()
			} else {
				ccfg = core.FusionOnly()
			}
			og, st := core.Optimize(dg, ccfg)
			if err := og.Validate(); err != nil {
				t.Fatal(err)
			}
			if st.FusedKernels == 0 {
				t.Fatalf("no fused kernels for %s (stats %+v)", name, st)
			}
			// Semantics preservation on real data (paper §4.4: TeMCO does
			// not change the decomposed model's outputs).
			x := tensor.New(1, 3, cfg.H, cfg.W)
			x.FillNormal(tensor.NewRNG(99), 0, 1)
			rd, err := exec.Run(dg, x)
			if err != nil {
				t.Fatalf("decomposed run: %v", err)
			}
			ro, err := exec.Run(og, x)
			if err != nil {
				t.Fatalf("optimized run: %v", err)
			}
			if d := tensor.MaxAbsDiff(rd.Outputs[0], ro.Outputs[0]); d > 5e-2 {
				t.Fatalf("optimized output deviates by %v", d)
			}
			// And internal-tensor peak must not increase.
			pd := memplan.Simulate(dg, 4, 0)
			po := memplan.Simulate(og, 4, 0)
			if po.PeakInternal > pd.PeakInternal {
				t.Fatalf("peak grew: %d → %d", pd.PeakInternal, po.PeakInternal)
			}
		})
	}
}
