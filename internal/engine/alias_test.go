package engine_test

// Alias-aware planning (DESIGN.md §14) is a pure memory optimization, so
// its contract mirrors the engine's: bit-identical outputs with aliasing
// on and off, across every Fig. 11 model, both executors, and batch sizes
// on either side of the concat-view rule (views at batch 1, copy fallback
// above) — while the aliased arena never exceeds the classic one and
// strictly shrinks it on the models built around concats and skips.

import (
	"context"
	"testing"

	"temco/internal/engine"
	"temco/internal/exec"
	"temco/internal/ir"
	"temco/internal/memplan"
)

func withAliasing(t *testing.T, on bool, f func()) {
	t.Helper()
	prev := memplan.SetAliasing(on)
	defer memplan.SetAliasing(prev)
	f()
}

// TestAliasBitIdenticalFig11 sweeps aliasing on vs off across the Fig. 11
// models, the arena interpreter and the compiled engine, at batch 1 and 8.
// The pooled interpreter (plan-free) is the reference; every configuration
// must agree with it bit-for-bit.
func TestAliasBitIdenticalFig11(t *testing.T) {
	if testing.Short() {
		t.Skip("full-model sweep")
	}
	ctx := context.Background()
	for _, name := range fig11Names {
		g := buildOptimized(t, name)
		for _, batch := range []int{1, 8} {
			x := randInput(g, batch, 0xa11a5+uint64(batch))
			want, err := exec.RunCtx(ctx, g, 0, x)
			if err != nil {
				t.Fatalf("%s b%d interpreter: %v", name, batch, err)
			}
			for _, aliasOn := range []bool{true, false} {
				label := func(path string) string {
					mode := "alias"
					if !aliasOn {
						mode = "noalias"
					}
					return name + "/" + path + "/" + mode
				}
				withAliasing(t, aliasOn, func() {
					asg := memplan.AssignOffsets(g, batch)
					if err := asg.Check(); err != nil {
						t.Fatalf("%s b%d: %v", label("plan"), batch, err)
					}
					if aliasOn == (asg.Alias == nil) {
						t.Fatalf("%s b%d: plan presence disagrees with switch", label("plan"), batch)
					}
					got, err := exec.RunArenaCtx(ctx, g, asg, 0, x)
					if err != nil {
						t.Fatalf("%s b%d: %v", label("arena"), batch, err)
					}
					requireBitIdentical(t, label("arena"), got, want)
					e, err := engine.Compile(g, engine.Options{Batch: batch})
					if err != nil {
						t.Fatalf("%s b%d: %v", label("engine"), batch, err)
					}
					got, err = e.Run(ctx, x)
					if err != nil {
						t.Fatalf("%s b%d: %v", label("engine"), batch, err)
					}
					requireBitIdentical(t, label("engine"), got, want)
				})
			}
		}
	}
}

// TestAliasArenaShrinksFig11: the aliased layout must never need more
// arena than the classic one on any Fig. 11 model, variant, or batch. On
// the unfused graphs (separate relu/bn/concat layers) every model must
// shrink strictly at batch 1 — that includes unet-s and densenet40, whose
// concats the optimizer later splits away. On the fully optimized graphs
// fusion has already swallowed most elementwise layers, so strict shrink
// is demanded only where in-place skip-adds survive (resnet18) or concats
// remain hot (densenet40).
func TestAliasArenaShrinksFig11(t *testing.T) {
	strictOpt := map[string]bool{"resnet18": true, "densenet40": true}
	for _, name := range fig11Names {
		for _, variant := range []string{"original", "optimized"} {
			var g *ir.Graph
			if variant == "original" {
				g = buildOriginal(t, name)
			} else {
				g = buildOptimized(t, name)
			}
			for _, batch := range []int{1, 8} {
				var on memplan.Assignment
				withAliasing(t, true, func() { on = memplan.AssignOffsets(g, batch) })
				off := memplan.AssignOffsetsNoAlias(g, batch)
				if err := on.Check(); err != nil {
					t.Fatalf("%s/%s b%d: %v", name, variant, batch, err)
				}
				if on.ArenaBytes > off.ArenaBytes {
					t.Errorf("%s/%s b%d: aliased arena %d exceeds classic %d",
						name, variant, batch, on.ArenaBytes, off.ArenaBytes)
				}
				strict := batch == 1 && (variant == "original" || strictOpt[name])
				if strict && on.ArenaBytes >= off.ArenaBytes {
					t.Errorf("%s/%s b%d: aliased arena %d not strictly below classic %d",
						name, variant, batch, on.ArenaBytes, off.ArenaBytes)
				}
				t.Logf("%s/%s b%d: arena %d -> %d (%.1f%%), views=%d in_place=%d",
					name, variant, batch, off.ArenaBytes, on.ArenaBytes,
					100*float64(on.ArenaBytes)/float64(off.ArenaBytes),
					on.Alias.Views, on.Alias.InPlace)
			}
		}
	}
}

// TestAliasStatsSurface: the compiled engine reports the alias plan's
// footprint through Stats, and zero everything with aliasing off.
func TestAliasStatsSurface(t *testing.T) {
	g := buildOptimized(t, "unet-s")
	withAliasing(t, true, func() {
		e, err := engine.Compile(g, engine.Options{Batch: 1})
		if err != nil {
			t.Fatal(err)
		}
		st := e.Stats()
		if st.AliasViews == 0 {
			t.Error("unet-s plan has no views reported")
		}
		if st.CopyBytesEliminatedPerRun == 0 {
			t.Error("unet-s plan eliminates no copy bytes per run")
		}
	})
	withAliasing(t, false, func() {
		e, err := engine.Compile(g, engine.Options{Batch: 1})
		if err != nil {
			t.Fatal(err)
		}
		st := e.Stats()
		if st.AliasViews != 0 || st.AliasInPlace != 0 || st.CopyBytesEliminatedPerRun != 0 {
			t.Errorf("aliasing off but Stats reports views=%d in_place=%d elim=%d",
				st.AliasViews, st.AliasInPlace, st.CopyBytesEliminatedPerRun)
		}
	})
}
