//go:build race

package engine_test

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates, so the zero-allocation gates skip under it.
const raceEnabled = true
