package engine_test

// Telemetry contract of the compiled engine: with the obs hooks disabled
// (the default) the steady-state Run stays zero-allocation — that is the
// existing TestEngineZeroAllocSteadyState gate, which now runs with the
// hook checks compiled in — and with tracing and memory recording enabled
// the overhead is bounded: spans and samples land in preallocated buffers,
// so the enabled steady state allocates nothing either.

import (
	"context"
	"testing"

	"temco/internal/engine"
	"temco/internal/memplan"
	"temco/internal/obs"
	"temco/internal/ops"
)

func TestEngineTraceSpans(t *testing.T) {
	g := buildOptimized(t, "vgg11")
	e, err := engine.Compile(g, engine.Options{Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	inst := e.NewInstance()
	x := randInput(g, 1, 11)

	tr := obs.EnableTrace(obs.TraceConfig{Scope: g.Name})
	defer obs.DisableTrace()
	mr := obs.EnableMemRecord(g.Name, len(g.Nodes))
	defer obs.DisableMemRecord()

	res, err := inst.Run(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}

	spans := tr.Spans()
	if len(spans) != res.LayerCalls {
		t.Fatalf("recorded %d spans, want one per layer call (%d)", len(spans), res.LayerCalls)
	}
	arena := e.Stats().ArenaBytes
	prevStep := -1
	for _, sp := range spans {
		if sp.Cat != "engine" {
			t.Fatalf("span cat %q, want engine", sp.Cat)
		}
		if sp.Step <= prevStep {
			t.Fatalf("span steps not increasing: %d after %d", sp.Step, prevStep)
		}
		prevStep = sp.Step
		if sp.Dur < 0 {
			t.Fatalf("span %s has negative duration", sp.Name)
		}
		if sp.ArenaOff < 0 || sp.ArenaOff >= arena {
			t.Fatalf("span %s arena offset %d outside [0, %d)", sp.Name, sp.ArenaOff, arena)
		}
		if sp.LiveBytes <= 0 || sp.LiveBytes > arena {
			t.Fatalf("span %s live bytes %d outside (0, %d]", sp.Name, sp.LiveBytes, arena)
		}
	}

	samples := mr.Samples()
	if len(samples) != len(g.Nodes) {
		t.Fatalf("recorded %d memory samples, want one per node (%d)", len(samples), len(g.Nodes))
	}
	peak, _ := mr.Peak()
	if peak <= 0 || peak > arena {
		t.Fatalf("measured arena watermark %d outside (0, %d]", peak, arena)
	}
	// The watermark must reach the planned arena size: the layout sizes the
	// slab as the maximum end offset the schedule touches.
	if peak != arena {
		t.Fatalf("measured arena watermark %d != planned arena bytes %d", peak, arena)
	}
}

// TestEngineTelemetryEnabledBoundedAllocs extends the zero-allocation gate
// to the *enabled* path: spans append into the tracer's fixed buffer and
// samples into a preallocated recorder, so even a fully traced steady-state
// Run must not touch the heap.
func TestEngineTelemetryEnabledBoundedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	prev := ops.SetWorkers(1)
	defer ops.SetWorkers(prev)
	g := buildOptimized(t, "alexnet")
	e, err := engine.Compile(g, engine.Options{Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	inst := e.NewInstance()
	x := randInput(g, 1, 13)
	ctx := context.Background()

	obs.EnableTrace(obs.TraceConfig{Scope: g.Name, Capacity: 1 << 18})
	defer obs.DisableTrace()
	obs.EnableMemRecord(g.Name, 1<<20)
	defer obs.DisableMemRecord()

	for i := 0; i < 2; i++ {
		if _, err := inst.Run(ctx, x); err != nil {
			t.Fatal(err)
		}
	}
	var runErr error
	allocs := testing.AllocsPerRun(20, func() {
		_, runErr = inst.Run(ctx, x)
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if allocs != 0 {
		t.Errorf("telemetry-enabled steady-state Run allocates %v per run, want 0", allocs)
	}
}

// TestEngineMeasuredVsPredictedArena checks the engine's measured arena
// watermark against the planner: the high-water mark of slab writes equals
// memplan.AssignOffsets' arena size, and stays at or below the
// interpreter-model peak-with-workspace prediction's arena plan.
func TestEngineMeasuredVsPredictedArena(t *testing.T) {
	for _, name := range []string{"alexnet", "unet-s"} {
		g := buildOptimized(t, name)
		e, err := engine.Compile(g, engine.Options{Batch: 1})
		if err != nil {
			t.Fatal(err)
		}
		mr := obs.EnableMemRecord(g.Name, len(g.Nodes))
		if _, err := e.Run(context.Background(), randInput(g, 1, 5)); err != nil {
			obs.DisableMemRecord()
			t.Fatal(err)
		}
		obs.DisableMemRecord()
		peak, _ := mr.Peak()
		asg := memplan.AssignOffsets(g, 1)
		if peak != asg.ArenaBytes {
			t.Errorf("%s: measured watermark %d != planned arena %d", name, peak, asg.ArenaBytes)
		}
	}
}
