// Package engine compiles a layer graph into a reusable execution
// artifact. exec.RunCtx re-derives the schedule, re-allocates every
// intermediate tensor, and re-packs every constant GEMM weight panel on
// each call; for a graph served many times all of that work is a function
// of the graph alone. Compile hoists it out of the run loop:
//
//   - the topological schedule and per-node kernel plans (kernel choice,
//     im2col gather geometry) are computed once;
//   - every constant conv/linear/fused weight is pre-packed into the
//     blocked GEMM's panel layout (gemm.PackA / gemm.PackBT);
//   - memplan liveness is baked into a first-fit offset Assignment so all
//     intermediates live inside one reusable slab.
//
// Run then walks the baked schedule with the same resource guards the
// interpreter enforces — ctx cancellation between layers, the memory
// budget, and the fault-injection hooks — while allocating nothing on the
// steady-state path. Outputs are bit-identical to exec.RunCtx.
//
// An Engine is immutable and safe to share; per-worker mutable state (the
// slab, tensor views, output buffers) lives in an Instance.
package engine

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"temco/internal/exec"
	"temco/internal/gemm"
	"temco/internal/guard"
	"temco/internal/ir"
	"temco/internal/memplan"
	"temco/internal/ops"
	"temco/internal/tensor"
)

// Options tunes Compile.
type Options struct {
	// Batch is the batch size whose arena layout is planned eagerly at
	// compile time. Run accepts other batch sizes; each new size plans its
	// layout (and allocates its slab) once, on first use. Default 1.
	Batch int
	// Batches lists additional batch sizes whose arena layouts are planned
	// eagerly at compile time — the bucket ladder a batching serving tier
	// runs on. Planning at compile time keeps the O(n²) layout check off
	// the first request at each bucket. Duplicates (including Batch) are
	// fine; a non-positive entry fails compilation.
	Batches []int
	// BudgetBytes caps the per-run footprint — the arena slab plus the
	// largest kernel workspace must fit, exactly as exec.RunArenaCtx
	// accounts it — returning guard.ErrBudgetExceeded from Run when
	// exceeded. 0 is unlimited.
	BudgetBytes int64
}

// step is one baked schedule slot: the node, its input slots, and whatever
// the compile pass prepared for its kernel.
type step struct {
	node    *ir.Node
	kind    ir.Kind
	inSlots []int
	w, b    *tensor.Tensor

	conv     *ir.ConvAttrs
	convPlan *ops.ConvPlan
	lin      *ir.LinearAttrs
	linPW    *gemm.PackedB
	pool     *ir.PoolAttrs
	scale    int
	fused    *ir.FusedAttrs
	fusedPln *ops.FusedPlan
}

// layout is the per-batch-size arena plan. The alias-derived fields are
// baked here at plan time so the run loop consults plain slices, never the
// plan's maps: concatSkip[i] flags the concat inputs already resident in
// slot i's region, flatView[i] marks flatten slots that share their
// input's storage, and elimCopies/elimBytes pre-total the copies every run
// of this layout avoids (published to the obs counters per run without
// re-walking the plan).
type layout struct {
	batch      int
	offsets    []int64 // byte offset per schedule slot
	arenaBytes int64
	maxWS      int64

	concatSkip [][]bool
	flatView   []bool
	views      int
	inPlace    int
	elimCopies uint64
	elimBytes  int64
}

// Engine is a compiled graph: immutable after Compile and safe for
// concurrent use. Workers execute it through per-worker Instances; the
// convenience Run method maintains an internal instance pool.
type Engine struct {
	g          *ir.Graph
	opts       Options
	steps      []step
	inSlots    []int // schedule slots of the graph inputs, in input order
	outSlots   []int // schedule slots of the graph outputs, in output order
	layerCalls int
	packed     int64 // bytes held by pre-packed weight panels

	mu      sync.Mutex
	layouts map[int]*layout

	pool sync.Pool // *Instance, for Engine.Run
	runs atomic.Uint64
}

// Stats is a point-in-time snapshot of a compiled engine.
type Stats struct {
	// Runs counts completed Instance.Run calls across all instances.
	Runs uint64 `json:"runs"`
	// ArenaBytes is the slab size planned for Options.Batch.
	ArenaBytes int64 `json:"arena_bytes"`
	// MaxWorkspaceBytes is the largest kernel workspace at Options.Batch.
	MaxWorkspaceBytes int64 `json:"max_workspace_bytes"`
	// PrePackedBytes totals this engine's pre-packed weight panels and
	// gather tables.
	PrePackedBytes int64 `json:"prepacked_bytes"`
	// PlannedBatches lists the batch sizes with baked arena layouts.
	PlannedBatches []int `json:"planned_batches"`
	// AliasViews and AliasInPlace count the view-classed tensors and
	// in-place elementwise ops in the Options.Batch alias plan (0 when
	// aliasing is off — see TEMCO_NOALIAS).
	AliasViews   int `json:"alias_views"`
	AliasInPlace int `json:"alias_in_place"`
	// CopyBytesEliminatedPerRun is the tensor bytes each run of the
	// Options.Batch layout avoids copying thanks to the alias plan.
	CopyBytesEliminatedPerRun int64 `json:"copy_bytes_eliminated_per_run"`
}

// Compile builds the execution artifact for g. The graph is validated
// once here; an unsupported node kind or an inconsistent graph fails with
// guard.ErrInvalidModel (callers fall back to the exec interpreter, which
// shares the same kernel registry — see the serve policy in DESIGN.md §9).
// The returned engine keeps references to g's weight tensors; mutating
// them afterwards invalidates the pre-packed panels.
func Compile(g *ir.Graph, opts Options) (*Engine, error) {
	if g == nil {
		return nil, guard.Errorf(guard.ErrInvalidModel, "engine.Compile", "nil graph")
	}
	if err := g.Validate(); err != nil {
		return nil, guard.New(guard.ErrInvalidModel, "engine.Compile", err)
	}
	if len(g.Inputs) == 0 {
		return nil, guard.Errorf(guard.ErrInvalidModel, "engine.Compile", "graph %s has no inputs", g.Name)
	}
	if opts.Batch <= 0 {
		opts.Batch = 1
	}
	e := &Engine{g: g, opts: opts, layouts: make(map[int]*layout)}
	slotOf := g.Index()
	e.steps = make([]step, len(g.Nodes))
	for i, n := range g.Nodes {
		s := &e.steps[i]
		s.node, s.kind, s.w, s.b = n, n.Kind, n.W, n.B
		s.inSlots = make([]int, len(n.Inputs))
		for j, p := range n.Inputs {
			sl, ok := slotOf[p]
			if !ok {
				return nil, guard.Errorf(guard.ErrInvalidModel, "engine.Compile",
					"node %s consumes %s, which is not in the schedule", n, p)
			}
			s.inSlots[j] = sl
		}
		switch n.Kind {
		case ir.KindInput:
		case ir.KindConv2D:
			in := n.Inputs[0]
			s.conv = n.Conv()
			s.convPlan = ops.PlanConv(s.conv, n.W, in.Shape[1], in.Shape[2], n.Shape[1], n.Shape[2])
			e.packed += s.convPlan.PackedBytes()
		case ir.KindLinear:
			s.lin = n.Attrs.(*ir.LinearAttrs)
			s.linPW = gemm.PackBT(s.lin.In, s.lin.Out, n.W.Data, s.lin.In)
			e.packed += s.linPW.Bytes()
		case ir.KindMaxPool, ir.KindAvgPool:
			s.pool = n.Pool()
		case ir.KindUpsample:
			s.scale = n.Attrs.(*ir.UpsampleAttrs).Scale
		case ir.KindFused:
			s.fused = n.Fused()
			s.fusedPln = ops.PlanFused(s.fused)
			e.packed += s.fusedPln.PackedBytes()
		case ir.KindReLU, ir.KindSiLU, ir.KindSigmoid, ir.KindBatchNorm,
			ir.KindGlobalAvgPool, ir.KindAdd, ir.KindConcat, ir.KindFlatten, ir.KindSoftmax:
		default:
			return nil, guard.Errorf(guard.ErrInvalidModel, "engine.Compile",
				"unsupported node kind %v (node %s)", n.Kind, n)
		}
		if n.Kind != ir.KindInput {
			e.layerCalls++
		}
	}
	e.inSlots = make([]int, len(g.Inputs))
	for i, n := range g.Inputs {
		e.inSlots[i] = slotOf[n]
	}
	e.outSlots = make([]int, len(g.Outputs))
	for i, n := range g.Outputs {
		e.outSlots[i] = slotOf[n]
	}
	if _, err := e.layoutFor(opts.Batch); err != nil {
		return nil, err
	}
	for _, b := range opts.Batches {
		if b <= 0 {
			return nil, guard.Errorf(guard.ErrInvalidModel, "engine.Compile",
				"invalid batch bucket %d", b)
		}
		if _, err := e.layoutFor(b); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Graph returns the compiled graph.
func (e *Engine) Graph() *ir.Graph { return e.g }

// layoutFor returns the baked arena layout for a batch size, planning and
// verifying it on first use.
func (e *Engine) layoutFor(batch int) (*layout, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if l, ok := e.layouts[batch]; ok {
		return l, nil
	}
	asg := memplan.AssignOffsets(e.g, batch)
	// The O(n²) verification runs once per (graph, batch), never per
	// request: a layout bug must fail compilation, not corrupt inference.
	if err := asg.Check(); err != nil {
		return nil, guard.New(guard.ErrInternal, "engine.layout", err)
	}
	l := &layout{batch: batch, offsets: make([]int64, len(e.g.Nodes)), arenaBytes: asg.ArenaBytes,
		concatSkip: make([][]bool, len(e.g.Nodes)), flatView: make([]bool, len(e.g.Nodes))}
	for i, n := range e.g.Nodes {
		off, ok := asg.Offsets[n]
		if !ok {
			return nil, guard.Errorf(guard.ErrInternal, "engine.layout", "node %s has no arena offset", n)
		}
		l.offsets[i] = off
	}
	if al := asg.Alias; al != nil {
		l.views, l.inPlace = al.Views, al.InPlace
		for i, n := range e.g.Nodes {
			if sk := al.ConcatSkip[n]; sk != nil {
				l.concatSkip[i] = sk
				for j, p := range n.Inputs {
					if sk[j] {
						l.elimCopies++
						l.elimBytes += p.OutBytes(batch)
					}
				}
			}
			if n.Kind == ir.KindFlatten && al.StorageOf(n).Class == memplan.StorageView {
				l.flatView[i] = true
				l.elimCopies++
				l.elimBytes += n.OutBytes(batch)
			}
		}
	}
	for _, n := range e.g.Nodes {
		if ws := memplan.Workspace(n, batch); ws > l.maxWS {
			l.maxWS = ws
		}
	}
	e.layouts[batch] = l
	return l, nil
}

// Stats snapshots the engine's counters and plan footprint.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Stats{Runs: e.runs.Load(), PrePackedBytes: e.packed}
	if l, ok := e.layouts[e.opts.Batch]; ok {
		st.ArenaBytes = l.arenaBytes
		st.MaxWorkspaceBytes = l.maxWS
		st.AliasViews = l.views
		st.AliasInPlace = l.inPlace
		st.CopyBytesEliminatedPerRun = l.elimBytes
	}
	for b := range e.layouts {
		st.PlannedBatches = append(st.PlannedBatches, b)
	}
	sort.Ints(st.PlannedBatches)
	return st
}

// Run executes the engine on a pooled instance and returns outputs the
// caller owns (cloned out of the instance slab). Hot serving paths should
// hold a dedicated Instance instead and skip the clone.
func (e *Engine) Run(ctx context.Context, inputs ...*tensor.Tensor) (*exec.Result, error) {
	inst, _ := e.pool.Get().(*Instance)
	if inst == nil {
		inst = e.NewInstance()
	}
	r, err := inst.Run(ctx, inputs...)
	if err != nil {
		e.pool.Put(inst)
		return nil, err
	}
	out := make([]*tensor.Tensor, len(r.Outputs))
	for i, t := range r.Outputs {
		out[i] = t.Clone()
	}
	calls := r.LayerCalls
	e.pool.Put(inst)
	return &exec.Result{Outputs: out, LayerCalls: calls}, nil
}

// recoverInternal converts an escaping kernel panic into an error wrapping
// guard.ErrInternal, preserving the panic site's stack for logging. It is
// deferred directly (not via closure) so the steady-state path stays
// allocation-free.
func recoverInternal(op string, errp *error) {
	if r := recover(); r != nil {
		*errp = &guard.Error{Kind: guard.ErrInternal, Op: op,
			Err: fmt.Errorf("panic: %v", r), Stack: debug.Stack()}
	}
}
