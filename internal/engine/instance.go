package engine

import (
	"context"
	"fmt"
	"time"

	"temco/internal/exec"
	"temco/internal/faultinject"
	"temco/internal/gemm"
	"temco/internal/guard"
	"temco/internal/ir"
	"temco/internal/obs"
	"temco/internal/ops"
	"temco/internal/tensor"
)

// Instance is one worker's mutable execution state for a compiled engine:
// the arena slab, the tensor views into it, and the owned output buffers.
// An Instance is NOT safe for concurrent use — each serving worker holds
// its own, so the hot path never contends on shared buffers. The Result
// returned by Run stays valid until the next Run on the same instance.
type Instance struct {
	e      *Engine
	states map[int]*state // one per batch size seen
	cur    *state         // state used by the previous Run
}

// state is the per-batch-size buffer set. Everything here is allocated on
// first use of that batch size; subsequent runs reuse it untouched.
type state struct {
	lay  *layout
	slab []float32
	// vals[i] views the slab at schedule slot i's assigned offset.
	vals []*tensor.Tensor
	// ins[i] is the prebuilt kernel-input slice for schedule slot i.
	ins [][]*tensor.Tensor
	// outs are instance-owned copies of the graph outputs (the slab views
	// they shadow are recycled by the next run).
	outs []*tensor.Tensor
	res  exec.Result
}

// NewInstance creates an execution instance bound to this engine. Buffers
// are allocated lazily on the first Run per batch size.
func (e *Engine) NewInstance() *Instance {
	return &Instance{e: e, states: make(map[int]*state)}
}

// Engine returns the compiled engine this instance executes.
func (it *Instance) Engine() *Engine { return it.e }

// prepare returns the buffer set for a batch size, building it on first
// use. This is the only allocating path of the run loop.
func (it *Instance) prepare(batch int) (*state, error) {
	if st, ok := it.states[batch]; ok {
		it.cur = st
		return st, nil
	}
	if batch < 1 {
		return nil, guard.Errorf(guard.ErrInvalidModel, "engine.Run", "batch %d out of range", batch)
	}
	e := it.e
	lay, err := e.layoutFor(batch)
	if err != nil {
		return nil, err
	}
	st := &state{lay: lay, slab: make([]float32, lay.arenaBytes/4)}
	st.vals = make([]*tensor.Tensor, len(e.g.Nodes))
	for i, n := range e.g.Nodes {
		shape := append([]int{batch}, n.Shape...)
		elems := int64(tensor.NumElems(shape))
		off := lay.offsets[i]
		if off%4 != 0 || off/4+elems > int64(len(st.slab)) {
			return nil, guard.Errorf(guard.ErrInternal, "engine.prepare",
				"node %s offset %d out of arena", n, off)
		}
		st.vals[i] = tensor.FromSlice(st.slab[off/4:off/4+elems], shape...)
	}
	st.ins = make([][]*tensor.Tensor, len(e.steps))
	for i := range e.steps {
		s := &e.steps[i]
		ins := make([]*tensor.Tensor, len(s.inSlots))
		for j, sl := range s.inSlots {
			ins[j] = st.vals[sl]
		}
		st.ins[i] = ins
	}
	st.outs = make([]*tensor.Tensor, len(e.outSlots))
	for j, sl := range e.outSlots {
		st.outs[j] = tensor.New(st.vals[sl].Shape...)
	}
	st.res.Outputs = st.outs
	st.res.LayerCalls = e.layerCalls
	it.states[batch] = st
	it.cur = st
	return st, nil
}

// Run executes the compiled schedule on the given inputs (one batched
// [N,...] tensor per graph input, in graph-input order). It enforces the
// same guards as exec.RunCtx — ctx is checked between layers, the memory
// budget (arena + largest workspace, as RunArenaCtx accounts it) is
// enforced, the fault-injection hooks fire in interpreter order, and a
// panicking kernel is recovered into guard.ErrInternal. After the first
// call per batch size the hot path performs zero heap allocations.
//
// The returned Result aliases instance-owned buffers: it is valid until
// the next Run on this instance. Callers that need to keep outputs must
// Clone them (Engine.Run does).
func (it *Instance) Run(ctx context.Context, inputs ...*tensor.Tensor) (r *exec.Result, err error) {
	defer recoverInternal("engine.Run", &err)
	e := it.e
	if len(inputs) != len(e.inSlots) {
		return nil, guard.Errorf(guard.ErrInvalidModel, "engine.Run",
			"graph %s takes %d inputs, got %d", e.g.Name, len(e.inSlots), len(inputs))
	}
	batch := inputs[0].Dim(0)
	st := it.cur
	if st == nil || st.lay.batch != batch {
		st, err = it.prepare(batch)
		if err != nil {
			return nil, err
		}
	}
	if e.opts.BudgetBytes > 0 && st.lay.arenaBytes+st.lay.maxWS > e.opts.BudgetBytes {
		return nil, guard.Errorf(guard.ErrBudgetExceeded, "engine.Run",
			"arena needs %d bytes (+%d workspace), budget is %d",
			st.lay.arenaBytes, st.lay.maxWS, e.opts.BudgetBytes)
	}
	var copied int64
	for i, sl := range e.inSlots {
		dst := st.vals[sl]
		if !shapeEq(inputs[i].Shape, dst.Shape) {
			return nil, guard.Errorf(guard.ErrInvalidModel, "engine.Run",
				"input %d has shape %v, want %v", i, inputs[i].Shape, dst.Shape)
		}
		copy(dst.Data, inputs[i].Data)
		copied += int64(dst.Len()) * 4
	}
	// Telemetry hooks: one atomic load each, nil (and therefore free) when
	// disabled. When enabled, spans carry the step's arena offset and the
	// arena high-water mark — the engine's measured memory trajectory is
	// how far into the slab the layout has actually written, the number to
	// hold against the planner's arena size.
	tr := obs.TraceFor(e.g.Name)
	mr := obs.MemRecorderFor(e.g.Name)
	// rt links this run's per-step spans onto the owning request's
	// timeline when the serving tier attached one to ctx. Nil on a plain
	// context (one interface lookup, no allocation), so the zero-alloc
	// steady-state gate holds with recording compiled in but disabled.
	rt := obs.RequestFrom(ctx)
	var lane uint64
	if tr != nil {
		lane = tr.Lane()
	}
	var watermark int64
	for i := range e.steps {
		s := &e.steps[i]
		if err := ctx.Err(); err != nil {
			return nil, guard.New(guard.ErrCanceled, "engine.Run", err)
		}
		if tr != nil || mr != nil {
			if end := st.lay.offsets[i] + int64(st.vals[i].Len())*4; end > watermark {
				watermark = end
			}
		}
		if s.kind == ir.KindInput {
			if mr != nil {
				mr.Record(i, s.node.Name, watermark)
			}
			continue
		}
		if faultinject.Budget(e.g.Name) {
			return nil, guard.Errorf(guard.ErrBudgetExceeded, "engine.Run",
				"injected budget failure at node %s", s.node)
		}
		var t0 time.Duration
		var p0 gemm.PoolStats
		if tr != nil {
			t0, p0 = tr.Since(), gemm.PoolStatsSnapshot()
		}
		var r0 time.Duration
		if rt != nil {
			r0 = rt.Since()
		}
		stepCopy, err := st.compute(ctx, e.g.Name, s, i)
		if err != nil {
			return nil, fmt.Errorf("engine: node %s: %w", s.node, err)
		}
		copied += stepCopy
		if rt != nil {
			// Node names are interned strings and the span buffer is
			// preallocated, so this stays allocation-free.
			rt.SpanAt("engine.step", s.node.Name, i, r0, rt.Since()-r0)
		}
		if tr != nil {
			p1 := gemm.PoolStatsSnapshot()
			tr.Record(obs.Span{
				Name: s.node.Name, Cat: "engine", Kind: s.kind.String(),
				Lane: lane, Step: i, Start: t0, Dur: tr.Since() - t0,
				LiveBytes: watermark, ArenaOff: st.lay.offsets[i],
				PackHits: p1.Hits - p0.Hits, PackMisses: p1.Misses - p0.Misses,
				CopyBytes: stepCopy,
			})
		}
		if mr != nil {
			mr.Record(i, s.node.Name, watermark)
		}
	}
	for j, sl := range e.outSlots {
		copy(st.outs[j].Data, st.vals[sl].Data)
	}
	obs.CountCopies(copied, st.lay.elimCopies, st.lay.elimBytes)
	e.runs.Add(1)
	return &st.res, nil
}

// compute dispatches one baked step and returns the bytes it moved with
// plain copies. It mirrors exec's arena compute — same kernels, same fault
// hook, same alias-plan-driven concat skips and flatten views — except
// that conv, linear, and fused nodes consume the plans and pre-packed
// weight panels prepared at compile time. The elementwise kernels are
// in-place safe, so slots the plan placed on their input's storage just
// work.
func (st *state) compute(ctx context.Context, scope string, s *step, slot int) (int64, error) {
	faultinject.Kernel(scope)
	out := st.vals[slot]
	in := st.ins[slot]
	switch s.kind {
	case ir.KindConv2D:
		if err := ops.ConvPlannedCtx(ctx, out, in[0], s.w, s.b, s.conv, s.convPlan); err != nil {
			return 0, guard.New(guard.ErrCanceled, "engine.compute", err)
		}
	case ir.KindLinear:
		if err := ops.LinearPrePackedCtx(ctx, out, in[0], s.linPW, s.b, s.lin); err != nil {
			return 0, guard.New(guard.ErrCanceled, "engine.compute", err)
		}
	case ir.KindReLU:
		ops.ReLU(out, in[0])
	case ir.KindSiLU:
		ops.SiLU(out, in[0])
	case ir.KindSigmoid:
		ops.Sigmoid(out, in[0])
	case ir.KindBatchNorm:
		ops.BatchNorm(out, in[0], s.w, s.b)
	case ir.KindMaxPool:
		ops.MaxPool(out, in[0], s.pool)
	case ir.KindAvgPool:
		ops.AvgPool(out, in[0], s.pool)
	case ir.KindGlobalAvgPool:
		ops.GlobalAvgPool(out, in[0])
	case ir.KindUpsample:
		ops.Upsample(out, in[0], s.scale)
	case ir.KindAdd:
		ops.Add(out, in[0], in[1])
	case ir.KindConcat:
		if skip := st.lay.concatSkip[slot]; skip != nil {
			return ops.ConcatPartial(out, in, skip), nil
		}
		ops.Concat(out, in)
		return int64(out.Len()) * 4, nil
	case ir.KindFlatten:
		if st.lay.flatView[slot] {
			// Shares the input's storage: nothing to move.
			return 0, nil
		}
		copy(out.Data, in[0].Data)
		return int64(out.Len()) * 4, nil
	case ir.KindSoftmax:
		ops.Softmax(out, in[0])
	case ir.KindFused:
		if err := ops.FusedPlannedCtx(ctx, out, in[0], s.fused, s.fusedPln); err != nil {
			return 0, guard.New(guard.ErrCanceled, "engine.compute", err)
		}
	default:
		return 0, fmt.Errorf("unsupported kind %v", s.kind)
	}
	return 0, nil
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
