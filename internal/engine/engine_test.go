package engine_test

// The engine is a performance artifact, so its contract is equivalence:
// every Fig. 11 model must produce bit-identical outputs through
// engine.Run, exec.RunCtx, and exec.RunArenaCtx — serial and parallel,
// SIMD on and off — and the steady-state hot path must not allocate.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"temco/internal/decompose"
	"temco/internal/engine"
	"temco/internal/exec"
	"temco/internal/experiments"
	"temco/internal/faultinject"
	"temco/internal/gemm"
	"temco/internal/guard"
	"temco/internal/ir"
	"temco/internal/memplan"
	"temco/internal/models"
	"temco/internal/obs"
	"temco/internal/ops"
	"temco/internal/tensor"
)

// fig11Names is the model subset the paper times in Fig. 11.
var fig11Names = []string{"alexnet", "vgg11", "resnet18", "densenet40", "unet-s"}

func testCfg() models.Config {
	c := models.DefaultConfig()
	c.H, c.W = 32, 32
	return c
}

// optVariant returns the paper's full optimization set for a model.
func optVariant(spec models.Spec) experiments.Variant {
	if spec.HasSkips {
		return experiments.SkipOptFusion
	}
	return experiments.Fusion
}

// graphCache shares built graphs across tests: Tucker decomposition is the
// slow part of BuildVariant, and nothing downstream mutates a graph. Tests
// in this package run sequentially, so a plain map is fine.
var graphCache = map[string]*ir.Graph{}

func buildOptimized(t testing.TB, name string) *ir.Graph {
	t.Helper()
	if g, ok := graphCache[name]; ok {
		return g
	}
	spec, err := models.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := experiments.BuildVariant(spec, optVariant(spec), testCfg(), decompose.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	graphCache[name] = g
	return g
}

func buildOriginal(t testing.TB, name string) *ir.Graph {
	t.Helper()
	spec, err := models.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := experiments.BuildVariant(spec, experiments.Original, testCfg(), decompose.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func randInput(g *ir.Graph, batch int, seed uint64) *tensor.Tensor {
	in := g.Inputs[0]
	x := tensor.New(append([]int{batch}, in.Shape...)...)
	x.FillNormal(tensor.NewRNG(seed), 0, 1)
	return x
}

func requireBitIdentical(t *testing.T, label string, got, want *exec.Result) {
	t.Helper()
	if len(got.Outputs) != len(want.Outputs) {
		t.Fatalf("%s: %d outputs, want %d", label, len(got.Outputs), len(want.Outputs))
	}
	for oi, w := range want.Outputs {
		g := got.Outputs[oi]
		if len(g.Data) != len(w.Data) {
			t.Fatalf("%s: output %d has %d elems, want %d", label, oi, len(g.Data), len(w.Data))
		}
		for i := range w.Data {
			if math.Float32bits(g.Data[i]) != math.Float32bits(w.Data[i]) {
				t.Fatalf("%s: output %d differs at [%d]: %v (bits %#x) vs %v (bits %#x)",
					label, oi, i, g.Data[i], math.Float32bits(g.Data[i]),
					w.Data[i], math.Float32bits(w.Data[i]))
			}
		}
	}
}

// TestEngineBitIdentical sweeps the Fig. 11 models across worker counts
// and SIMD settings, demanding exact agreement between the compiled
// engine, the pooled interpreter, and the arena interpreter. The engine
// runs twice per configuration so the second, fully steady-state pass is
// covered too.
func TestEngineBitIdentical(t *testing.T) {
	ctx := context.Background()
	for _, simd := range []bool{true, false} {
		prevSIMD := gemm.SetSIMD(simd)
		if simd && !gemm.SIMD() {
			gemm.SetSIMD(prevSIMD)
			continue // platform has no SIMD path; the false pass covers it
		}
		for _, name := range fig11Names {
			g := buildOptimized(t, name)
			// Batch 1 keeps the 5-model × SIMD × workers sweep fast; batch
			// handling is covered by TestEngineBatchSwitch.
			batch := 1
			x := randInput(g, batch, 7)
			for _, workers := range []int{1, 4} {
				label := fmt.Sprintf("%s/simd=%v/workers=%d", name, simd, workers)
				prevW := ops.SetWorkers(workers)
				// Packs capture the active tile shape: compile under the
				// same SIMD flavor the run will use.
				e, err := engine.Compile(g, engine.Options{Batch: batch})
				if err != nil {
					t.Fatalf("%s: Compile: %v", label, err)
				}
				want, err := exec.RunCtx(ctx, g, 0, x)
				if err != nil {
					t.Fatalf("%s: RunCtx: %v", label, err)
				}
				asg := memplan.AssignOffsets(g, batch)
				arena, err := exec.RunArenaCtx(ctx, g, asg, 0, x)
				if err != nil {
					t.Fatalf("%s: RunArenaCtx: %v", label, err)
				}
				requireBitIdentical(t, label+"/arena-vs-interp", arena, want)
				inst := e.NewInstance()
				for pass := 0; pass < 2; pass++ {
					got, err := inst.Run(ctx, x)
					if err != nil {
						t.Fatalf("%s: engine run %d: %v", label, pass, err)
					}
					requireBitIdentical(t, fmt.Sprintf("%s/engine-pass%d", label, pass), got, want)
					if got.LayerCalls != want.LayerCalls {
						t.Fatalf("%s: engine LayerCalls = %d, want %d", label, got.LayerCalls, want.LayerCalls)
					}
				}
				ops.SetWorkers(prevW)
			}
		}
		gemm.SetSIMD(prevSIMD)
	}
}

// TestEngineOriginalModels covers the unoptimized graphs (plain conv +
// pool + linear + softmax paths, no fused nodes).
func TestEngineOriginalModels(t *testing.T) {
	ctx := context.Background()
	for _, name := range []string{"alexnet", "resnet18"} {
		g := buildOriginal(t, name)
		x := randInput(g, 2, 11)
		e, err := engine.Compile(g, engine.Options{Batch: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := exec.RunCtx(ctx, g, 0, x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Run(ctx, x)
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, name, got, want)
	}
}

// TestEngineBatchSwitch runs one instance across changing batch sizes;
// each size gets its own baked layout and they must not interfere.
func TestEngineBatchSwitch(t *testing.T) {
	ctx := context.Background()
	g := buildOptimized(t, "alexnet")
	e, err := engine.Compile(g, engine.Options{Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	inst := e.NewInstance()
	for _, batch := range []int{1, 3, 1, 2, 3} {
		x := randInput(g, batch, uint64(batch))
		want, err := exec.RunCtx(ctx, g, 0, x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := inst.Run(ctx, x)
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, fmt.Sprintf("batch=%d", batch), got, want)
	}
	st := e.Stats()
	if len(st.PlannedBatches) != 3 {
		t.Fatalf("planned batches = %v, want 3 distinct sizes", st.PlannedBatches)
	}
	if st.Runs != 5 {
		t.Fatalf("runs = %d, want 5", st.Runs)
	}
}

// TestEngineRunPooledOutputsOwned checks that Engine.Run (the pooled
// convenience path) returns outputs that survive later runs, unlike the
// instance-owned buffers Instance.Run returns.
func TestEngineRunPooledOutputsOwned(t *testing.T) {
	ctx := context.Background()
	g := buildOptimized(t, "alexnet")
	e, err := engine.Compile(g, engine.Options{Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := randInput(g, 1, 1)
	b := randInput(g, 1, 2)
	r1, err := e.Run(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	snap := r1.Outputs[0].Clone()
	if _, err := e.Run(ctx, b); err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "pooled outputs", r1, &exec.Result{Outputs: []*tensor.Tensor{snap}})
}

// TestEngineCompileErrors exercises the invalid-graph paths that serve's
// fallback-to-interpreter policy keys on.
func TestEngineCompileErrors(t *testing.T) {
	if _, err := engine.Compile(nil, engine.Options{}); !errors.Is(err, guard.ErrInvalidModel) {
		t.Fatalf("nil graph: err = %v, want ErrInvalidModel", err)
	}
	if _, err := engine.Compile(&ir.Graph{Name: "empty"}, engine.Options{}); !errors.Is(err, guard.ErrInvalidModel) {
		t.Fatalf("empty graph: err = %v, want ErrInvalidModel", err)
	}
}

// TestEngineInputErrors checks arity/shape validation at Run time.
func TestEngineInputErrors(t *testing.T) {
	ctx := context.Background()
	g := buildOptimized(t, "alexnet")
	e, err := engine.Compile(g, engine.Options{Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	inst := e.NewInstance()
	if _, err := inst.Run(ctx); !errors.Is(err, guard.ErrInvalidModel) {
		t.Fatalf("no inputs: err = %v, want ErrInvalidModel", err)
	}
	bad := tensor.New(1, 3, 8, 8)
	if _, err := inst.Run(ctx, bad); !errors.Is(err, guard.ErrInvalidModel) {
		t.Fatalf("bad shape: err = %v, want ErrInvalidModel", err)
	}
}

// TestEngineCancellation verifies the between-layer ctx check surfaces as
// guard.ErrCanceled, matching the interpreter.
func TestEngineCancellation(t *testing.T) {
	g := buildOptimized(t, "alexnet")
	e, err := engine.Compile(g, engine.Options{Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.NewInstance().Run(ctx, randInput(g, 1, 3)); !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestEngineBudget verifies the arena-footprint budget check.
func TestEngineBudget(t *testing.T) {
	g := buildOptimized(t, "alexnet")
	if _, err := engine.Compile(g, engine.Options{Batch: 1, BudgetBytes: 64}); err != nil {
		// Budget is enforced at Run, not Compile: compilation must succeed.
		t.Fatalf("Compile under small budget: %v", err)
	}
	e, err := engine.Compile(g, engine.Options{Batch: 1, BudgetBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.NewInstance().Run(context.Background(), randInput(g, 1, 3)); !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	// A budget that covers arena + workspace must pass.
	st := e.Stats()
	e2, err := engine.Compile(g, engine.Options{Batch: 1, BudgetBytes: st.ArenaBytes + st.MaxWorkspaceBytes})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.NewInstance().Run(context.Background(), randInput(g, 1, 3)); err != nil {
		t.Fatalf("sufficient budget: %v", err)
	}
}

// TestEngineFaultInjection checks that the interpreter's fault hooks fire
// on the compiled path too: injected budget failures surface as
// guard.ErrBudgetExceeded and injected kernel panics are recovered into
// guard.ErrInternal without killing the process.
func TestEngineFaultInjection(t *testing.T) {
	g := buildOptimized(t, "alexnet")
	e, err := engine.Compile(g, engine.Options{Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	x := randInput(g, 1, 5)
	ctx := context.Background()
	inst := e.NewInstance()

	faultinject.Enable(faultinject.Config{Seed: 1, BudgetRate: 1})
	if _, err := inst.Run(ctx, x); !errors.Is(err, guard.ErrBudgetExceeded) {
		faultinject.Disable()
		t.Fatalf("budget fault: err = %v, want ErrBudgetExceeded", err)
	}
	faultinject.Enable(faultinject.Config{Seed: 1, KernelPanicRate: 1})
	if _, err := inst.Run(ctx, x); !errors.Is(err, guard.ErrInternal) {
		faultinject.Disable()
		t.Fatalf("kernel panic: err = %v, want ErrInternal", err)
	}
	faultinject.Disable()

	// The instance must be reusable after an injected failure.
	want, err := exec.RunCtx(ctx, g, 0, x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := inst.Run(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "post-fault", got, want)
}

// TestEngineZeroAllocSteadyState is the zero-allocation gate: after
// warm-up, Instance.Run must not touch the heap at Workers == 1 (the
// parallel fan-out necessarily allocates goroutine plumbing).
func TestEngineZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	prev := ops.SetWorkers(1)
	defer ops.SetWorkers(prev)
	ctx := context.Background()
	for _, name := range fig11Names {
		g := buildOptimized(t, name)
		e, err := engine.Compile(g, engine.Options{Batch: 1})
		if err != nil {
			t.Fatal(err)
		}
		inst := e.NewInstance()
		x := randInput(g, 1, 9)
		for i := 0; i < 2; i++ {
			if _, err := inst.Run(ctx, x); err != nil {
				t.Fatal(err)
			}
		}
		var runErr error
		allocs := testing.AllocsPerRun(20, func() {
			_, runErr = inst.Run(ctx, x)
		})
		if runErr != nil {
			t.Fatal(runErr)
		}
		if allocs != 0 {
			t.Errorf("%s: %v allocs per steady-state Run, want 0", name, allocs)
		}
	}
}

// TestEngineZeroAllocSteadyStateRecorderArmed: enabling the flight
// recorder must not cost the engine anything when the request itself is
// untraced — the disabled path through the instrumentation is one
// context lookup returning nil, so steady-state Run stays allocation-free
// with recording compiled in and globally armed.
func TestEngineZeroAllocSteadyStateRecorderArmed(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	obs.EnableFlightRecorder(obs.FlightConfig{})
	defer obs.DisableFlightRecorder()
	prev := ops.SetWorkers(1)
	defer ops.SetWorkers(prev)
	ctx := context.Background()
	g := buildOptimized(t, "alexnet")
	e, err := engine.Compile(g, engine.Options{Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	inst := e.NewInstance()
	x := randInput(g, 1, 9)
	for i := 0; i < 2; i++ {
		if _, err := inst.Run(ctx, x); err != nil {
			t.Fatal(err)
		}
	}
	var runErr error
	allocs := testing.AllocsPerRun(20, func() {
		_, runErr = inst.Run(ctx, x)
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if allocs != 0 {
		t.Errorf("%v allocs per steady-state Run with recorder armed, want 0", allocs)
	}
}

// TestMeasureSteadyAllocs checks the operator-facing probe agrees with the
// testing gate.
func TestMeasureSteadyAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	prev := ops.SetWorkers(1)
	defer ops.SetWorkers(prev)
	g := buildOptimized(t, "alexnet")
	e, err := engine.Compile(g, engine.Options{Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	avg, err := engine.MeasureSteadyAllocs(e, 20)
	if err != nil {
		t.Fatal(err)
	}
	if avg > 0.5 {
		t.Errorf("MeasureSteadyAllocs = %v, want ~0", avg)
	}
}

// TestEngineStats sanity-checks the snapshot fields serve and /statsz
// surface.
func TestEngineStats(t *testing.T) {
	g := buildOptimized(t, "vgg11")
	e, err := engine.Compile(g, engine.Options{Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.ArenaBytes <= 0 {
		t.Errorf("ArenaBytes = %d, want > 0", st.ArenaBytes)
	}
	if st.PrePackedBytes <= 0 {
		t.Errorf("PrePackedBytes = %d, want > 0 (vgg11 has conv/linear weights)", st.PrePackedBytes)
	}
	asg := memplan.AssignOffsets(g, 2)
	if st.ArenaBytes != asg.ArenaBytes {
		t.Errorf("ArenaBytes = %d, want memplan's %d", st.ArenaBytes, asg.ArenaBytes)
	}
}

// TestCompileBatchLadder: Options.Batches plans the whole bucket ladder
// eagerly so no request pays the O(n²) layout check on the hot path, and
// Stats reports the planned sizes sorted.
func TestCompileBatchLadder(t *testing.T) {
	g := buildOptimized(t, "alexnet")
	e, err := engine.Compile(g, engine.Options{Batch: 1, Batches: []int{8, 4, 1, 32, 16}})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 4, 8, 16, 32}
	got := e.Stats().PlannedBatches
	if len(got) != len(want) {
		t.Fatalf("planned batches %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("planned batches %v, want %v", got, want)
		}
	}
	// Every ladder entry is immediately runnable and bit-identical to the
	// interpreter at that batch size.
	x := randInput(g, 4, 11)
	gotRes, err := e.Run(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := exec.RunCtx(context.Background(), g, 0, x)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "ladder-batch-4", gotRes, wantRes)

	if _, err := engine.Compile(g, engine.Options{Batches: []int{4, 0}}); !errors.Is(err, guard.ErrInvalidModel) {
		t.Fatalf("non-positive bucket must fail compilation, got %v", err)
	}
}

// TestEngineZeroAllocSteadyStateBatchedBucket extends the zero-alloc gate
// to a batched bucket: a fixed-bucket batched run (the serving coalescer's
// steady state) must not touch the heap either. The name shares the
// TestEngineZeroAllocSteadyState prefix so CI's alloc gate runs it.
func TestEngineZeroAllocSteadyStateBatchedBucket(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	prev := ops.SetWorkers(1)
	defer ops.SetWorkers(prev)
	ctx := context.Background()
	g := buildOptimized(t, "alexnet")
	e, err := engine.Compile(g, engine.Options{Batch: 1, Batches: []int{4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	inst := e.NewInstance()
	x := randInput(g, 8, 21)
	for i := 0; i < 2; i++ {
		if _, err := inst.Run(ctx, x); err != nil {
			t.Fatal(err)
		}
	}
	var runErr error
	allocs := testing.AllocsPerRun(20, func() {
		_, runErr = inst.Run(ctx, x)
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if allocs != 0 {
		t.Errorf("%v allocs per steady-state batched Run, want 0", allocs)
	}
}
