package engine

import (
	"context"
	"runtime"

	"temco/internal/tensor"
)

// MeasureSteadyAllocs runs e on zero-filled inputs at the compiled batch
// size and reports the average number of heap allocations per steady-state
// Run, measured from runtime.MemStats.Mallocs after two warm-up runs. The
// number is meaningful only at ops.Workers == 1 (the kernel fan-out spawns
// goroutines, and concurrent goroutines of the caller also allocate); it
// is exposed so operators can verify the zero-allocation hot path on a
// live daemon rather than trusting a build-time test.
func MeasureSteadyAllocs(e *Engine, rounds int) (float64, error) {
	if rounds <= 0 {
		rounds = 10
	}
	inst := e.NewInstance()
	ins := make([]*tensor.Tensor, len(e.g.Inputs))
	for i, n := range e.g.Inputs {
		ins[i] = tensor.New(append([]int{e.opts.Batch}, n.Shape...)...)
	}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := inst.Run(ctx, ins...); err != nil {
			return 0, err
		}
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		if _, err := inst.Run(ctx, ins...); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(rounds), nil
}
