package graphio

import (
	"bytes"
	"strings"
	"testing"

	"temco/internal/core"
	"temco/internal/decompose"
	"temco/internal/exec"
	"temco/internal/ir"
	"temco/internal/tensor"
)

func buildGraph(t *testing.T) *ir.Graph {
	t.Helper()
	b := ir.NewBuilder("roundtrip", 7)
	in := b.Input(3, 12, 12)
	c1 := b.Conv(in, 16, 3, 1, 1)
	bn := b.BatchNorm(c1)
	r := b.ReLU(bn)
	p := b.MaxPool(r, 2, 2)
	c2 := b.Conv(p, 8, 3, 1, 1)
	s := b.SiLU(c2)
	u := b.Upsample(s, 2)
	cc := b.Concat(u, r)
	c3 := b.Conv(cc, 8, 3, 1, 1)
	a := b.Add(c3, c3)
	f := b.Flatten(a)
	fc := b.Linear(f, 5)
	b.Output(b.Softmax(fc))
	return b.G
}

func roundTrip(t *testing.T, g *ir.Graph) *ir.Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, g); err != nil {
		t.Fatal(err)
	}
	lg, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return lg
}

func TestRoundTripPreservesStructure(t *testing.T) {
	g := buildGraph(t)
	lg := roundTrip(t, g)
	if len(lg.Nodes) != len(g.Nodes) || len(lg.Inputs) != 1 || len(lg.Outputs) != 1 {
		t.Fatalf("structure changed: %d nodes", len(lg.Nodes))
	}
	for i, n := range g.Nodes {
		m := lg.Nodes[i]
		if n.Name != m.Name || n.Kind != m.Kind || n.ID != m.ID || n.Role != m.Role {
			t.Fatalf("node %d differs: %v vs %v", i, n, m)
		}
		if n.W != nil && tensor.MaxAbsDiff(n.W, m.W) != 0 {
			t.Fatalf("node %d weights differ", i)
		}
	}
}

func TestRoundTripPreservesSemantics(t *testing.T) {
	g := buildGraph(t)
	lg := roundTrip(t, g)
	x := tensor.New(2, 3, 12, 12)
	x.FillNormal(tensor.NewRNG(3), 0, 1)
	a, err := exec.Run(g, x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := exec.Run(lg, x)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(a.Outputs[0], b.Outputs[0]); d != 0 {
		t.Fatalf("loaded graph deviates by %v", d)
	}
}

func TestRoundTripFusedGraph(t *testing.T) {
	// The fused node's tensors live inside attrs; they must survive too.
	b := ir.NewBuilder("fg", 9)
	in := b.Input(8, 16, 16)
	x := b.ReLU(b.Conv(in, 32, 3, 1, 1))
	x = b.MaxPool(x, 2, 2)
	x = b.ReLU(b.Conv(x, 32, 3, 1, 1))
	b.Output(x)
	dg, _ := decompose.Decompose(b.G, decompose.DefaultOptions())
	og, st := core.Optimize(dg, core.FusionOnly())
	if st.FusedKernels+st.TailFusedKernels == 0 {
		t.Fatal("test wants a fused graph")
	}
	lg := roundTrip(t, og)
	xin := tensor.New(1, 8, 16, 16)
	xin.FillNormal(tensor.NewRNG(5), 0, 1)
	a, err := exec.Run(og, xin)
	if err != nil {
		t.Fatal(err)
	}
	c, err := exec.Run(lg, xin)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(a.Outputs[0], c.Outputs[0]); d != 0 {
		t.Fatalf("loaded fused graph deviates by %v", d)
	}
}

func TestLoadedGraphAcceptsNewNodes(t *testing.T) {
	g := buildGraph(t)
	lg := roundTrip(t, g)
	// NewID must not collide with loaded IDs.
	id := lg.NewID()
	for _, n := range lg.Nodes {
		if n.ID == id {
			t.Fatalf("NewID %d collides with a loaded node", id)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("expected error for garbage")
	}
	if _, err := Load(strings.NewReader(`{"version":99,"name":"x"}`)); err == nil {
		t.Fatal("expected version error")
	}
	if _, err := Load(strings.NewReader(`{"version":1,"name":"x","nodes":[{"id":0,"name":"a","kind":"conv2d","shape":[1],"role":"none"}]}`)); err == nil {
		t.Fatal("expected validation error for conv without attrs")
	}
	// Forward reference.
	bad := `{"version":1,"name":"x","nodes":[{"id":0,"name":"a","kind":"relu","inputs":[5],"shape":[1,2,2],"role":"none"}]}`
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Fatal("expected undefined-reference error")
	}
}

func TestTensorCodecRejectsBadPayload(t *testing.T) {
	d := &decoder{remaining: DefaultMaxWeightBytes}
	if _, err := d.decodeTensor(&tensJSON{Shape: []int{2, 2}, Data: "????"}); err == nil {
		t.Fatal("expected base64 error")
	}
	if _, err := d.decodeTensor(&tensJSON{Shape: []int{2, 2}, Data: "AAAA"}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := d.decodeTensor(&tensJSON{Shape: []int{-1, 4}, Data: ""}); err == nil {
		t.Fatal("expected negative-dimension error")
	}
	got, err := d.decodeTensor(encodeTensor(tensor.FromSlice([]float32{1, -2.5, 3e-9, 4}, 2, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0, 1) != -2.5 || got.At(1, 1) != 4 {
		t.Fatalf("codec mangled values: %v", got.Data)
	}
}
