package graphio

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"temco/internal/guard"
	"temco/internal/ir"
)

// vggStyleGraph builds a narrow VGG-shaped classifier (conv-relu-pool
// stages, flatten, linear, softmax) — the structural vocabulary of the
// saved models, small enough to keep the fuzz corpus compact.
func vggStyleGraph() *ir.Graph {
	b := ir.NewBuilder("vgg-fuzz", 17)
	x := b.Input(3, 16, 16)
	x = b.MaxPool(b.ReLU(b.Conv(x, 8, 3, 1, 1)), 2, 2)
	x = b.MaxPool(b.ReLU(b.Conv(x, 16, 3, 1, 1)), 2, 2)
	x = b.Softmax(b.Linear(b.Flatten(x), 10))
	b.Output(x)
	return b.G
}

// adversarialEnvelopes is the shared corpus of corrupted inputs: every one
// must come back as an error wrapping guard.ErrInvalidModel, never a panic.
var adversarialEnvelopes = map[string]string{
	"garbage":          `not json`,
	"bad version":      `{"version":99,"name":"x"}`,
	"unknown kind":     `{"version":1,"name":"x","nodes":[{"id":0,"name":"a","kind":"warp","shape":[1,2,2]}]}`,
	"unknown attr tag": `{"version":1,"name":"x","nodes":[{"id":0,"name":"a","kind":"input","shape":[1,2,2],"attrs":{"type":"quantum"}}]}`,
	"attr tag without payload": `{"version":1,"name":"x","nodes":[{"id":0,"name":"a","kind":"input","shape":[3,4,4]},` +
		`{"id":1,"name":"c","kind":"conv2d","inputs":[0],"shape":[3,4,4],"attrs":{"type":"conv"}}]}`,
	"zero-stride conv": `{"version":1,"name":"x","nodes":[{"id":0,"name":"a","kind":"input","shape":[1,4,4]},` +
		`{"id":1,"name":"c","kind":"conv2d","inputs":[0],"shape":[1,4,4],` +
		`"attrs":{"type":"conv","conv":{"InC":1,"OutC":1,"KH":1,"KW":1,"SH":0,"SW":0}},` +
		`"w":{"shape":[1,1,1,1],"data":"AACAPw=="}}]}`,
	"forward node ref": `{"version":1,"name":"x","nodes":[{"id":0,"name":"a","kind":"relu","inputs":[5],"shape":[1,2,2]}]}`,
	"self node ref":    `{"version":1,"name":"x","nodes":[{"id":0,"name":"a","kind":"relu","inputs":[0],"shape":[1,2,2]}]}`,
	"duplicate node id": `{"version":1,"name":"x","nodes":[{"id":0,"name":"a","kind":"input","shape":[1,2,2]},` +
		`{"id":0,"name":"b","kind":"relu","inputs":[0],"shape":[1,2,2]}]}`,
	"undefined graph input":  `{"version":1,"name":"x","nodes":[],"inputs":[3]}`,
	"undefined graph output": `{"version":1,"name":"x","nodes":[],"outputs":[3]}`,
	"negative node dim":      `{"version":1,"name":"x","nodes":[{"id":0,"name":"a","kind":"input","shape":[-1,2,2]}]}`,
	"zero node dim":          `{"version":1,"name":"x","nodes":[{"id":0,"name":"a","kind":"input","shape":[0,2,2]}]}`,
	"overflowing node shape": `{"version":1,"name":"x","nodes":[{"id":0,"name":"a","kind":"input","shape":[4611686018427387904,4]}]}`,
	"excessive rank":         `{"version":1,"name":"x","nodes":[{"id":0,"name":"a","kind":"input","shape":[1,1,1,1,1,1,1,1,1]}]}`,
	"negative weight dim": `{"version":1,"name":"x","nodes":[{"id":0,"name":"a","kind":"input","shape":[1,2,2],` +
		`"w":{"shape":[-4],"data":""}}]}`,
	"truncated payload": `{"version":1,"name":"x","nodes":[{"id":0,"name":"a","kind":"input","shape":[1,2,2],` +
		`"w":{"shape":[2,2],"data":"AAAA"}}]}`,
	"payload not base64": `{"version":1,"name":"x","nodes":[{"id":0,"name":"a","kind":"input","shape":[1,2,2],` +
		`"w":{"shape":[1],"data":"????"}}]}`,
	"conv without weights": `{"version":1,"name":"x","nodes":[{"id":0,"name":"a","kind":"conv2d","shape":[1],"role":"none"}]}`,
	"unknown role":         `{"version":1,"name":"x","nodes":[{"id":0,"name":"a","kind":"input","shape":[1,2,2],"role":"boss"}]}`,
}

// TestLoadAdversarial drives Load over the corrupted-envelope corpus: each
// must return a typed invalid-model error and must not panic.
func TestLoadAdversarial(t *testing.T) {
	for name, env := range adversarialEnvelopes {
		g, err := Load(strings.NewReader(env))
		if err == nil {
			t.Errorf("%s: accepted (graph %v)", name, g)
			continue
		}
		if !errors.Is(err, guard.ErrInvalidModel) {
			t.Errorf("%s: error does not wrap ErrInvalidModel: %v", name, err)
		}
	}
}

// TestLoadWeightBudget: an envelope whose total tensor payload exceeds the
// configured limit is rejected.
func TestLoadWeightBudget(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, vggStyleGraph()); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadWith(bytes.NewReader(buf.Bytes()), LoadOptions{MaxWeightBytes: 64}); !errors.Is(err, guard.ErrInvalidModel) {
		t.Fatalf("want ErrInvalidModel for over-budget weights, got %v", err)
	}
	if _, err := LoadWith(bytes.NewReader(buf.Bytes()), LoadOptions{}); err != nil {
		t.Fatalf("default budget must admit the model: %v", err)
	}
}

// TestLoadHugeNodeID: a far-out node ID must not stall the loader (the old
// code spun NewID up to the max ID one increment at a time) and NewID must
// still not collide.
func TestLoadHugeNodeID(t *testing.T) {
	env := `{"version":1,"name":"x","nodes":[{"id":1152921504606846976,"name":"a","kind":"input","shape":[1,2,2]}],"inputs":[1152921504606846976]}`
	g, err := Load(strings.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	if id := g.NewID(); id <= 1152921504606846976 {
		t.Fatalf("NewID %d collides with loaded ID space", id)
	}
}

// FuzzLoad fuzzes the JSON envelope decoder. Invariants: Load never
// panics; failures wrap guard.ErrInvalidModel; an accepted graph passes
// validation and round-trips through Save.
func FuzzLoad(f *testing.F) {
	var buf bytes.Buffer
	if err := Save(&buf, vggStyleGraph()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	for _, env := range adversarialEnvelopes {
		f.Add([]byte(env))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Load(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, guard.ErrInvalidModel) {
				t.Fatalf("error does not wrap ErrInvalidModel: %v", err)
			}
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("Load accepted an invalid graph: %v", err)
		}
		if err := Save(&bytes.Buffer{}, g); err != nil {
			t.Fatalf("accepted graph does not re-save: %v", err)
		}
	})
}
