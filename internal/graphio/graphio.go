// Package graphio serializes layer graphs (structure + weights) to a
// self-contained JSON envelope with base64 tensor payloads, so compiled
// models survive process boundaries: cmd/temco can compile once and a
// deployment binary can load and run the optimized graph.
package graphio

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"temco/internal/guard"
	"temco/internal/ir"
	"temco/internal/tensor"
)

// FormatVersion identifies the envelope layout.
const FormatVersion = 1

// DefaultMaxWeightBytes caps the total decoded tensor payload of one
// envelope (2 GiB) unless LoadOptions raises or lowers it.
const DefaultMaxWeightBytes = 2 << 30

// LoadOptions tunes the defensive limits of Load.
type LoadOptions struct {
	// MaxWeightBytes bounds the total decoded tensor payload; ≤ 0 means
	// DefaultMaxWeightBytes.
	MaxWeightBytes int64
}

type envelope struct {
	Version int        `json:"version"`
	Name    string     `json:"name"`
	Nodes   []nodeJSON `json:"nodes"`
	Inputs  []int      `json:"inputs"`
	Outputs []int      `json:"outputs"`
}

type nodeJSON struct {
	ID     int        `json:"id"`
	Name   string     `json:"name"`
	Kind   string     `json:"kind"`
	Inputs []int      `json:"inputs,omitempty"`
	Shape  []int      `json:"shape"`
	Role   string     `json:"role,omitempty"`
	Attrs  *attrsJSON `json:"attrs,omitempty"`
	W      *tensJSON  `json:"w,omitempty"`
	B      *tensJSON  `json:"b,omitempty"`
}

// attrsJSON is a tagged union over the operator attribute structs.
type attrsJSON struct {
	Type string `json:"type"`

	Conv   *ir.ConvAttrs      `json:"conv,omitempty"`
	Pool   *ir.PoolAttrs      `json:"pool,omitempty"`
	Linear *ir.LinearAttrs    `json:"linear,omitempty"`
	Up     *ir.UpsampleAttrs  `json:"up,omitempty"`
	BN     *ir.BatchNormAttrs `json:"bn,omitempty"`
	Fused  *fusedJSON         `json:"fused,omitempty"`
}

type fusedJSON struct {
	InC      int           `json:"inC"`
	MidC     int           `json:"midC"`
	OutC     int           `json:"outC"`
	Act      string        `json:"act"`
	Pool     *ir.PoolAttrs `json:"pool,omitempty"`
	PoolKind string        `json:"poolKind,omitempty"`
	LW       *tensJSON     `json:"lw"`
	LB       *tensJSON     `json:"lb,omitempty"`
	FW       *tensJSON     `json:"fw,omitempty"`
	FB       *tensJSON     `json:"fb,omitempty"`
}

type tensJSON struct {
	Shape []int  `json:"shape"`
	Data  string `json:"data"` // little-endian float32, base64
}

var kindByName = func() map[string]ir.Kind {
	m := make(map[string]ir.Kind)
	for k := ir.KindInput; k <= ir.KindFused; k++ {
		m[k.String()] = k
	}
	return m
}()

var roleByName = map[string]ir.Role{
	"none": ir.RoleNone, "fconv": ir.RoleFConv, "core": ir.RoleCore, "lconv": ir.RoleLConv,
}

func encodeTensor(t *tensor.Tensor) *tensJSON {
	if t == nil {
		return nil
	}
	buf := make([]byte, 4*len(t.Data))
	for i, v := range t.Data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	return &tensJSON{Shape: t.Shape, Data: base64.StdEncoding.EncodeToString(buf)}
}

// decoder carries the defensive state of one Load: the remaining tensor
// payload budget.
type decoder struct {
	remaining int64
}

// decodeTensor validates an untrusted tensor against its declared shape
// before allocating anything shape-sized: dimensions must be non-negative,
// the element count must not overflow, the payload length must match the
// shape exactly, and the running total must stay within the weight budget.
func (d *decoder) decodeTensor(j *tensJSON) (*tensor.Tensor, error) {
	if j == nil {
		return nil, nil
	}
	elems, err := tensor.CheckedNumElems(j.Shape)
	if err != nil {
		return nil, fmt.Errorf("graphio: bad tensor shape: %w", err)
	}
	if elems > math.MaxInt/4 {
		return nil, fmt.Errorf("graphio: tensor shape %v exceeds addressable bytes", j.Shape)
	}
	raw, err := base64.StdEncoding.DecodeString(j.Data)
	if err != nil {
		return nil, fmt.Errorf("graphio: bad tensor payload: %w", err)
	}
	if len(raw) != 4*elems {
		return nil, fmt.Errorf("graphio: tensor payload %d bytes does not match shape %v", len(raw), j.Shape)
	}
	if d.remaining -= int64(len(raw)); d.remaining < 0 {
		return nil, fmt.Errorf("graphio: total weight payload exceeds the configured limit")
	}
	t := tensor.New(j.Shape...)
	for i := range t.Data {
		t.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return t, nil
}

func encodeAttrs(n *ir.Node) (*attrsJSON, error) {
	switch a := n.Attrs.(type) {
	case nil:
		return nil, nil
	case *ir.ConvAttrs:
		return &attrsJSON{Type: "conv", Conv: a}, nil
	case *ir.PoolAttrs:
		return &attrsJSON{Type: "pool", Pool: a}, nil
	case *ir.LinearAttrs:
		return &attrsJSON{Type: "linear", Linear: a}, nil
	case *ir.UpsampleAttrs:
		return &attrsJSON{Type: "up", Up: a}, nil
	case *ir.BatchNormAttrs:
		return &attrsJSON{Type: "bn", BN: a}, nil
	case *ir.FusedAttrs:
		f := &fusedJSON{
			InC: a.InC, MidC: a.MidC, OutC: a.OutC, Act: a.Act.String(),
			Pool: a.Pool,
			LW:   encodeTensor(a.LW), LB: encodeTensor(a.LB),
			FW: encodeTensor(a.FW), FB: encodeTensor(a.FB),
		}
		if a.Pool != nil {
			f.PoolKind = a.PoolKind.String()
		}
		return &attrsJSON{Type: "fused", Fused: f}, nil
	default:
		return nil, fmt.Errorf("graphio: unknown attrs type %T on %s", n.Attrs, n)
	}
}

// decodeAttrs resolves the tagged union defensively: the payload matching
// the tag must be present (a tag with a missing payload would otherwise
// decode to a typed nil pointer and crash shape inference later).
func (d *decoder) decodeAttrs(j *attrsJSON) (any, error) {
	if j == nil {
		return nil, nil
	}
	missing := func() error { return fmt.Errorf("graphio: attrs tagged %q have no %s payload", j.Type, j.Type) }
	switch j.Type {
	case "conv":
		if j.Conv == nil {
			return nil, missing()
		}
		return j.Conv, nil
	case "pool":
		if j.Pool == nil {
			return nil, missing()
		}
		return j.Pool, nil
	case "linear":
		if j.Linear == nil {
			return nil, missing()
		}
		return j.Linear, nil
	case "up":
		if j.Up == nil {
			return nil, missing()
		}
		return j.Up, nil
	case "bn":
		if j.BN == nil {
			return nil, missing()
		}
		return j.BN, nil
	case "fused":
		f := j.Fused
		if f == nil {
			return nil, missing()
		}
		act, ok := kindByName[f.Act]
		if !ok {
			return nil, fmt.Errorf("graphio: unknown activation %q", f.Act)
		}
		out := &ir.FusedAttrs{InC: f.InC, MidC: f.MidC, OutC: f.OutC, Act: act, Pool: f.Pool}
		if f.Pool != nil {
			pk, ok := kindByName[f.PoolKind]
			if !ok {
				return nil, fmt.Errorf("graphio: unknown pool kind %q", f.PoolKind)
			}
			out.PoolKind = pk
		}
		var err error
		if out.LW, err = d.decodeTensor(f.LW); err != nil {
			return nil, err
		}
		if out.LB, err = d.decodeTensor(f.LB); err != nil {
			return nil, err
		}
		if out.FW, err = d.decodeTensor(f.FW); err != nil {
			return nil, err
		}
		if out.FB, err = d.decodeTensor(f.FB); err != nil {
			return nil, err
		}
		return out, nil
	default:
		return nil, fmt.Errorf("graphio: unknown attrs tag %q", j.Type)
	}
}

// Save writes g (structure and weights) to w.
func Save(w io.Writer, g *ir.Graph) error {
	env := envelope{Version: FormatVersion, Name: g.Name}
	for _, n := range g.Nodes {
		attrs, err := encodeAttrs(n)
		if err != nil {
			return err
		}
		nj := nodeJSON{
			ID: n.ID, Name: n.Name, Kind: n.Kind.String(),
			Shape: n.Shape, Role: n.Role.String(), Attrs: attrs,
			W: encodeTensor(n.W), B: encodeTensor(n.B),
		}
		for _, in := range n.Inputs {
			nj.Inputs = append(nj.Inputs, in.ID)
		}
		env.Nodes = append(env.Nodes, nj)
	}
	for _, in := range g.Inputs {
		env.Inputs = append(env.Inputs, in.ID)
	}
	for _, o := range g.Outputs {
		env.Outputs = append(env.Outputs, o.ID)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(env)
}

// Load reads a graph written by Save and validates it with the default
// limits. See LoadWith for the hardening guarantees.
func Load(r io.Reader) (*ir.Graph, error) {
	return LoadWith(r, LoadOptions{})
}

// LoadWith reads a graph written by Save, treating the stream as untrusted:
// malformed or adversarial envelopes — out-of-range node references,
// negative or overflowing shape dimensions, payload/shape mismatches,
// unknown kinds or attribute tags, non-topological node order, payloads
// over the weight budget — return an error wrapping guard.ErrInvalidModel
// and never panic. As defense in depth, any panic escaping the decode is
// recovered into the same error kind.
func LoadWith(r io.Reader, opts LoadOptions) (g *ir.Graph, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			g = nil
			err = guard.Errorf(guard.ErrInvalidModel, "graphio.Load", "panic during decode: %v", rec)
		}
	}()
	g, err = load(r, opts)
	if err != nil {
		return nil, guard.New(guard.ErrInvalidModel, "graphio.Load", err)
	}
	return g, nil
}

func load(r io.Reader, opts LoadOptions) (*ir.Graph, error) {
	d := &decoder{remaining: opts.MaxWeightBytes}
	if d.remaining <= 0 {
		d.remaining = DefaultMaxWeightBytes
	}
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if env.Version != FormatVersion {
		return nil, fmt.Errorf("graphio: unsupported format version %d", env.Version)
	}
	g := ir.NewGraph(env.Name)
	byID := make(map[int]*ir.Node, len(env.Nodes))
	for _, nj := range env.Nodes {
		kind, ok := kindByName[nj.Kind]
		if !ok {
			return nil, fmt.Errorf("graphio: unknown kind %q", nj.Kind)
		}
		role, ok := roleByName[nj.Role]
		if !ok && nj.Role != "" {
			return nil, fmt.Errorf("graphio: unknown role %q", nj.Role)
		}
		if err := checkNodeShape(nj.Shape); err != nil {
			return nil, fmt.Errorf("graphio: node %s: %w", nj.Name, err)
		}
		attrs, err := d.decodeAttrs(nj.Attrs)
		if err != nil {
			return nil, err
		}
		w, err := d.decodeTensor(nj.W)
		if err != nil {
			return nil, err
		}
		b, err := d.decodeTensor(nj.B)
		if err != nil {
			return nil, err
		}
		n := &ir.Node{ID: nj.ID, Name: nj.Name, Kind: kind,
			Attrs: attrs, W: w, B: b,
			Shape: append([]int(nil), nj.Shape...), Role: role}
		// byID holds only earlier nodes, so forward, cyclic, and self
		// references are all rejected here: node order must be topological.
		for _, id := range nj.Inputs {
			in, ok := byID[id]
			if !ok {
				return nil, fmt.Errorf("graphio: node %s references undefined node %d", nj.Name, id)
			}
			n.Inputs = append(n.Inputs, in)
		}
		if _, dup := byID[nj.ID]; dup {
			return nil, fmt.Errorf("graphio: duplicate node ID %d (%s)", nj.ID, nj.Name)
		}
		byID[nj.ID] = n
		g.Nodes = append(g.Nodes, n)
	}
	for _, id := range env.Inputs {
		in, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("graphio: undefined input node %d", id)
		}
		g.Inputs = append(g.Inputs, in)
	}
	for _, id := range env.Outputs {
		o, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("graphio: undefined output node %d", id)
		}
		g.Outputs = append(g.Outputs, o)
	}
	// Reserve past the max ID so post-load passes can add nodes.
	g.ReserveIDs(maxNodeID(g))
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graphio: loaded graph invalid: %w", err)
	}
	return g, nil
}

// checkNodeShape validates a node's declared output shape: every dimension
// positive, rank bounded, element count within int range. Output shapes
// drive downstream allocations, so adversarial values must die here.
func checkNodeShape(shape []int) error {
	if len(shape) > 8 {
		return fmt.Errorf("shape rank %d exceeds limit", len(shape))
	}
	for _, dim := range shape {
		if dim < 1 {
			return fmt.Errorf("non-positive dimension in shape %v", shape)
		}
	}
	if _, err := tensor.CheckedNumElems(shape); err != nil {
		return err
	}
	return nil
}

func maxNodeID(g *ir.Graph) int {
	m := 0
	for _, n := range g.Nodes {
		if n.ID > m {
			m = n.ID
		}
	}
	return m
}
