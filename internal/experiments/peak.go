package experiments

import (
	"fmt"
	"math"

	"temco/internal/decompose"
	"temco/internal/memplan"
	"temco/internal/models"
)

// PeakRow is one bar of the paper's Fig. 10: peak memory usage of one
// (model, variant) pair split into weight and internal tensors.
type PeakRow struct {
	Model         string
	Variant       Variant
	WeightBytes   int64
	InternalBytes int64
	WorkspaceMax  int64
	// InternalVsOriginal is InternalBytes divided by the Original
	// variant's InternalBytes.
	InternalVsOriginal float64
}

// PeakResult aggregates Fig. 10.
type PeakResult struct {
	Batch int
	Rows  []PeakRow
	// GeomeanReduction is the geometric-mean reduction of internal-tensor
	// peak memory of each model's best TeMCO variant vs Original — the
	// paper's headline 75.7% (§4.2).
	GeomeanReduction float64
}

// PeakMemory reproduces Fig. 10 for the given model names.
func PeakMemory(names []string, mcfg models.Config, dopts decompose.Options, batch int) (PeakResult, error) {
	res := PeakResult{Batch: batch}
	var logSum float64
	var count int
	for _, name := range names {
		spec, err := models.Get(name)
		if err != nil {
			return res, err
		}
		var origInternal int64
		var bestInternal int64 = math.MaxInt64
		for _, v := range VariantsFor(spec) {
			g, err := BuildVariant(spec, v, mcfg, dopts)
			if err != nil {
				return res, err
			}
			p := memplan.Simulate(g, batch, 0)
			row := PeakRow{
				Model:         name,
				Variant:       v,
				WeightBytes:   p.WeightBytes,
				InternalBytes: p.PeakInternal,
				WorkspaceMax:  p.PeakWithWorkspace - p.PeakInternal,
			}
			if v == Original {
				origInternal = p.PeakInternal
			}
			if origInternal > 0 {
				row.InternalVsOriginal = float64(p.PeakInternal) / float64(origInternal)
			}
			if v != Original && v != Decomposed && p.PeakInternal < bestInternal {
				bestInternal = p.PeakInternal
			}
			res.Rows = append(res.Rows, row)
		}
		if origInternal > 0 && bestInternal < math.MaxInt64 {
			ratio := float64(bestInternal) / float64(origInternal)
			logSum += math.Log(ratio)
			count++
		}
	}
	if count > 0 {
		res.GeomeanReduction = 1 - math.Exp(logSum/float64(count))
	}
	return res, nil
}

// String renders the result as a fixed-width table.
func (r PeakResult) String() string {
	s := fmt.Sprintf("Peak memory usage, batch %d (paper Fig. 10)\n", r.Batch)
	s += fmt.Sprintf("%-12s %-16s %12s %12s %12s %8s\n", "model", "variant", "weights(MB)", "internal(MB)", "wkspace(MB)", "vs orig")
	for _, row := range r.Rows {
		s += fmt.Sprintf("%-12s %-16s %12.2f %12.2f %12.2f %7.1f%%\n",
			row.Model, row.Variant,
			mb(row.WeightBytes), mb(row.InternalBytes), mb(row.WorkspaceMax),
			row.InternalVsOriginal*100)
	}
	s += fmt.Sprintf("geomean internal-tensor reduction (best TeMCO variant vs Original): %.1f%%\n",
		r.GeomeanReduction*100)
	return s
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }
