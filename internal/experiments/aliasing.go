package experiments

import (
	"context"
	"fmt"
	"time"

	"temco/internal/decompose"
	"temco/internal/engine"
	"temco/internal/ir"
	"temco/internal/memplan"
	"temco/internal/models"
	"temco/internal/tensor"
)

// AliasingRow compares one (model, variant, batch) triple with alias-aware
// planning off and on (DESIGN.md §14).
type AliasingRow struct {
	Model   string
	Variant Variant
	Batch   int
	// ArenaOff / ArenaOn are the planned arena bytes without and with
	// aliasing.
	ArenaOff, ArenaOn int64
	// Views / InPlace describe the alias plan (concat + flatten views, and
	// the in-place elementwise subset).
	Views, InPlace int
	// ElimBytes is the memcpy traffic the plan removes per run.
	ElimBytes int64
	// ThroughputOff / ThroughputOn are steady-state engine runs per second
	// under each mode (0 when timing was skipped).
	ThroughputOff, ThroughputOn float64
}

// AliasingResult aggregates the data-movement-elimination comparison.
type AliasingResult struct {
	Rows []AliasingRow
}

// Aliasing measures what alias-aware planning buys on the given models:
// planned peak arena bytes and steady-state engine throughput, aliasing
// off vs on, per variant (the decomposed baseline and the fully optimized
// graph) and batch size. reps <= 0 skips the throughput timing and
// reports plan numbers only.
func Aliasing(names []string, mcfg models.Config, dopts decompose.Options, batches []int, reps int) (AliasingResult, error) {
	var res AliasingResult
	prev := memplan.SetAliasing(true)
	defer memplan.SetAliasing(prev)
	for _, name := range names {
		spec, err := models.Get(name)
		if err != nil {
			return res, err
		}
		opt := Fusion
		if spec.HasSkips {
			opt = SkipOptFusion
		}
		for _, v := range []Variant{Decomposed, opt} {
			g, err := BuildVariant(spec, v, mcfg, dopts)
			if err != nil {
				return res, err
			}
			for _, batch := range batches {
				on := memplan.AssignOffsets(g, batch)
				if err := on.Check(); err != nil {
					return res, fmt.Errorf("%s/%v b%d: %w", name, v, batch, err)
				}
				off := memplan.AssignOffsetsNoAlias(g, batch)
				row := AliasingRow{
					Model: name, Variant: v, Batch: batch,
					ArenaOff: off.ArenaBytes, ArenaOn: on.ArenaBytes,
				}
				if on.Alias != nil {
					row.Views = on.Alias.Views
					row.InPlace = on.Alias.InPlace
					row.ElimBytes = on.Alias.EliminatedBytes
				}
				if reps > 0 {
					memplan.SetAliasing(false)
					row.ThroughputOff, err = engineThroughput(g, batch, reps)
					memplan.SetAliasing(true)
					if err != nil {
						return res, err
					}
					if row.ThroughputOn, err = engineThroughput(g, batch, reps); err != nil {
						return res, err
					}
				}
				res.Rows = append(res.Rows, row)
			}
		}
	}
	return res, nil
}

// engineThroughput compiles g under the current aliasing mode and times
// reps steady-state runs on one instance.
func engineThroughput(g *ir.Graph, batch, reps int) (float64, error) {
	e, err := engine.Compile(g, engine.Options{Batch: batch})
	if err != nil {
		return 0, err
	}
	in := g.Inputs[0]
	x := tensor.New(append([]int{batch}, in.Shape...)...)
	x.FillNormal(tensor.NewRNG(7), 0, 1)
	inst := e.NewInstance()
	ctx := context.Background()
	if _, err := inst.Run(ctx, x); err != nil { // warm: allocates the slab
		return 0, err
	}
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := inst.Run(ctx, x); err != nil {
			return 0, err
		}
	}
	return float64(reps) / time.Since(t0).Seconds(), nil
}

// String renders the comparison as a fixed-width table.
func (r AliasingResult) String() string {
	s := "Data-movement elimination: alias-aware planning off vs on (DESIGN.md §14)\n"
	s += fmt.Sprintf("%-12s %-16s %5s %12s %12s %7s %5s %7s %10s %10s %10s\n",
		"model", "variant", "batch", "arena(MB)", "aliased(MB)", "ratio",
		"views", "inplace", "elim(KB)", "thr off/s", "thr on/s")
	for _, row := range r.Rows {
		ratio := 1.0
		if row.ArenaOff > 0 {
			ratio = float64(row.ArenaOn) / float64(row.ArenaOff)
		}
		s += fmt.Sprintf("%-12s %-16s %5d %12.2f %12.2f %6.1f%% %5d %7d %10.1f %10.1f %10.1f\n",
			row.Model, row.Variant, row.Batch,
			mb(row.ArenaOff), mb(row.ArenaOn), ratio*100,
			row.Views, row.InPlace, float64(row.ElimBytes)/1024,
			row.ThroughputOff, row.ThroughputOn)
	}
	return s
}
