package experiments

import (
	"fmt"
	"math"
	"time"

	"temco/internal/decompose"
	"temco/internal/exec"
	"temco/internal/ir"
	"temco/internal/models"
	"temco/internal/tensor"
)

// TimeRow is one bar of the paper's Fig. 11: end-to-end inference time of
// one (model, variant, batch) triple.
type TimeRow struct {
	Model   string
	Variant Variant
	Batch   int
	// Wall is the median wall-clock time of one inference.
	Wall time.Duration
	// LayerCalls is the kernel dispatch count (the paper's CPU-side
	// overhead is proportional to this).
	LayerCalls int
	// VsDecomposed is Wall divided by the Decomposed variant's Wall at the
	// same batch (the paper reports 1.08× at batch 4, 1.70× at batch 32).
	VsDecomposed float64
}

// TimeResult aggregates Fig. 11.
type TimeResult struct {
	Rows []TimeRow
	// OverheadGeomean maps batch size to the geometric mean of the best
	// TeMCO variant's VsDecomposed across models.
	OverheadGeomean map[int]float64
}

// InferenceTime reproduces Fig. 11: wall-clock inference of the Decomposed
// baseline against the TeMCO-optimized variants. reps runs are taken and
// the median reported. Variants compared are the paper's: Decomposed vs
// Fusion (no skips) or Skip-Opt+Fusion (skips).
func InferenceTime(names []string, mcfg models.Config, dopts decompose.Options, batches []int, reps int) (TimeResult, error) {
	res := TimeResult{OverheadGeomean: map[int]float64{}}
	type acc struct {
		logSum float64
		n      int
	}
	accs := map[int]*acc{}
	for _, name := range names {
		spec, err := models.Get(name)
		if err != nil {
			return res, err
		}
		opt := Fusion
		if spec.HasSkips {
			opt = SkipOptFusion
		}
		dg, err := BuildVariant(spec, Decomposed, mcfg, dopts)
		if err != nil {
			return res, err
		}
		og, err := BuildVariant(spec, opt, mcfg, dopts)
		if err != nil {
			return res, err
		}
		for _, batch := range batches {
			x := tensor.New(batch, 3, mcfg.H, mcfg.W)
			x.FillNormal(tensor.NewRNG(1), 0, 1)
			dWall, dCalls, err := timeGraph(dg, x, reps)
			if err != nil {
				return res, err
			}
			oWall, oCalls, err := timeGraph(og, x, reps)
			if err != nil {
				return res, err
			}
			ratio := float64(oWall) / float64(dWall)
			res.Rows = append(res.Rows,
				TimeRow{Model: name, Variant: Decomposed, Batch: batch, Wall: dWall, LayerCalls: dCalls, VsDecomposed: 1},
				TimeRow{Model: name, Variant: opt, Batch: batch, Wall: oWall, LayerCalls: oCalls, VsDecomposed: ratio},
			)
			a := accs[batch]
			if a == nil {
				a = &acc{}
				accs[batch] = a
			}
			a.logSum += math.Log(ratio)
			a.n++
		}
	}
	for b, a := range accs {
		res.OverheadGeomean[b] = math.Exp(a.logSum / float64(a.n))
	}
	return res, nil
}

func timeGraph(g *ir.Graph, x *tensor.Tensor, reps int) (time.Duration, int, error) {
	if reps < 1 {
		reps = 1
	}
	// Warmup run.
	r, err := exec.Run(g, x)
	if err != nil {
		return 0, 0, err
	}
	calls := r.LayerCalls
	times := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if _, err := exec.Run(g, x); err != nil {
			return 0, 0, err
		}
		times = append(times, time.Since(start))
	}
	// Median.
	for i := 1; i < len(times); i++ {
		for j := i; j > 0 && times[j] < times[j-1]; j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}
	return times[len(times)/2], calls, nil
}

// String renders the result as a fixed-width table.
func (r TimeResult) String() string {
	s := "End-to-end inference time (paper Fig. 11)\n"
	s += fmt.Sprintf("%-12s %-16s %6s %12s %8s %12s\n", "model", "variant", "batch", "time", "calls", "vs decomp")
	for _, row := range r.Rows {
		s += fmt.Sprintf("%-12s %-16s %6d %12v %8d %11.2f×\n",
			row.Model, row.Variant, row.Batch, row.Wall.Round(time.Microsecond), row.LayerCalls, row.VsDecomposed)
	}
	for _, b := range sortedKeys(r.OverheadGeomean) {
		s += fmt.Sprintf("geomean TeMCO overhead at batch %d: %.2f×\n", b, r.OverheadGeomean[b])
	}
	return s
}

func sortedKeys(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
