// Package experiments implements the paper's evaluation (§4): peak memory
// usage of the ten models (Fig. 10), internal-tensor memory timelines
// (Fig. 4), end-to-end inference time (Fig. 11), accuracy preservation
// (Fig. 12), and the ablations called out in DESIGN.md. The same functions
// back cmd/experiments and the testing.B benchmarks.
package experiments

import (
	"fmt"

	"temco/internal/core"
	"temco/internal/decompose"
	"temco/internal/ir"
	"temco/internal/models"
)

// Variant names one model configuration in the paper's plots.
type Variant string

const (
	// Original is the unmodified model.
	Original Variant = "Original"
	// Decomposed is the Tucker-decomposed baseline (ratio 0.1).
	Decomposed Variant = "Decomposed"
	// Fusion applies activation layer fusion only (AlexNet/VGG bars).
	Fusion Variant = "Fusion"
	// SkipOpt applies skip connection optimization only.
	SkipOpt Variant = "Skip-Opt"
	// SkipOptFusion applies the full TeMCO pipeline.
	SkipOptFusion Variant = "Skip-Opt+Fusion"
)

// VariantsFor returns the paper's variant set for a model: models without
// skip connections get Fusion; models with skip connections get Skip-Opt
// and Skip-Opt+Fusion (§4.1).
func VariantsFor(spec models.Spec) []Variant {
	if spec.HasSkips {
		return []Variant{Original, Decomposed, SkipOpt, SkipOptFusion}
	}
	return []Variant{Original, Decomposed, Fusion}
}

// BuildVariant constructs the graph for (model, variant). The original
// model's batchnorms are folded for every variant so the comparison
// isolates TeMCO's contribution (see DESIGN.md).
func BuildVariant(spec models.Spec, v Variant, cfg models.Config, dopts decompose.Options) (*ir.Graph, error) {
	g := spec.Build(cfg)
	base := g.Clone()
	core.FoldBatchNorm(base)
	if v == Original {
		return base, nil
	}
	dg, _ := decompose.Decompose(base, dopts)
	switch v {
	case Decomposed:
		return dg, nil
	case Fusion:
		og, _ := core.Optimize(dg, core.FusionOnly())
		return og, nil
	case SkipOpt:
		og, _ := core.Optimize(dg, core.SkipOptOnly())
		return og, nil
	case SkipOptFusion:
		og, _ := core.Optimize(dg, core.DefaultConfig())
		return og, nil
	default:
		return nil, fmt.Errorf("experiments: unknown variant %q", v)
	}
}
