package experiments

import (
	"strings"
	"testing"

	"temco/internal/decompose"
	"temco/internal/models"
)

func testCfg() models.Config { return models.Config{H: 32, W: 32, Classes: 10, Seed: 42} }

func testDopts() decompose.Options { return decompose.DefaultOptions() }

func TestVariantsFor(t *testing.T) {
	vgg, _ := models.Get("vgg11")
	unet, _ := models.Get("unet-s")
	if vs := VariantsFor(vgg); len(vs) != 3 || vs[2] != Fusion {
		t.Fatalf("vgg variants = %v", vs)
	}
	if vs := VariantsFor(unet); len(vs) != 4 || vs[3] != SkipOptFusion {
		t.Fatalf("unet variants = %v", vs)
	}
}

func TestBuildVariantAll(t *testing.T) {
	spec, _ := models.Get("unet-s")
	for _, v := range []Variant{Original, Decomposed, Fusion, SkipOpt, SkipOptFusion} {
		g, err := BuildVariant(spec, v, testCfg(), testDopts())
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
	}
	if _, err := BuildVariant(spec, Variant("bogus"), testCfg(), testDopts()); err == nil {
		t.Fatal("unknown variant must error")
	}
}

func TestPeakMemorySmall(t *testing.T) {
	res, err := PeakMemory([]string{"vgg11", "unet-s"}, testCfg(), testDopts(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// vgg11: 3 variants, unet-s: 4 variants.
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(res.Rows))
	}
	byKey := map[string]PeakRow{}
	for _, r := range res.Rows {
		byKey[r.Model+"/"+string(r.Variant)] = r
	}
	// Decomposition must shrink weights (Eq. (1) vs Eq. (2)).
	if byKey["vgg11/Decomposed"].WeightBytes >= byKey["vgg11/Original"].WeightBytes {
		t.Fatal("decomposition did not shrink weights")
	}
	// Fusion must shrink internal peak vs the decomposed baseline.
	if byKey["vgg11/Fusion"].InternalBytes >= byKey["vgg11/Decomposed"].InternalBytes {
		t.Fatal("fusion did not shrink vgg internal peak")
	}
	// Full pipeline must beat original on the skip model.
	if byKey["unet-s/Skip-Opt+Fusion"].InternalBytes >= byKey["unet-s/Original"].InternalBytes {
		t.Fatal("TeMCO did not shrink unet internal peak vs original")
	}
	if res.GeomeanReduction <= 0 || res.GeomeanReduction >= 1 {
		t.Fatalf("geomean reduction = %v", res.GeomeanReduction)
	}
	if !strings.Contains(res.String(), "geomean") {
		t.Fatal("String() missing summary")
	}
}

func TestTimelineSmall(t *testing.T) {
	for _, v := range []Variant{Original, Decomposed} {
		s, err := Timeline("unet-s", v, testCfg(), testDopts(), 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Points) == 0 {
			t.Fatal("no timeline points")
		}
		if s.PeakSkipShare < 0 || s.PeakSkipShare > 1 {
			t.Fatalf("skip share = %v", s.PeakSkipShare)
		}
		sp := s.Sparkline(40)
		if !strings.Contains(sp, "unet-s") {
			t.Fatal("sparkline missing header")
		}
	}
	// The decomposed UNet should hold a substantial share of its peak in
	// skip connections (paper quotes 76.2% at full scale).
	s, _ := Timeline("unet-s", Decomposed, testCfg(), testDopts(), 4)
	if s.PeakSkipShare < 0.05 {
		t.Fatalf("decomposed unet skip share suspiciously low: %v", s.PeakSkipShare)
	}
}

func TestInferenceTimeSmall(t *testing.T) {
	cfg := testCfg()
	cfg.H, cfg.W = 16, 16
	res, err := InferenceTime([]string{"unet-s"}, cfg, testDopts(), []int{1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Wall <= 0 {
			t.Fatalf("non-positive wall time: %+v", r)
		}
	}
	if res.Rows[1].LayerCalls >= res.Rows[0].LayerCalls {
		t.Fatalf("TeMCO should reduce layer calls: %d vs %d", res.Rows[1].LayerCalls, res.Rows[0].LayerCalls)
	}
	if _, ok := res.OverheadGeomean[1]; !ok {
		t.Fatal("missing geomean for batch 1")
	}
	if !strings.Contains(res.String(), "vs decomp") {
		t.Fatal("String() missing header")
	}
}

func TestAgreementSmall(t *testing.T) {
	cfg := testCfg()
	cfg.H, cfg.W = 16, 16
	res, err := AgreementAll([]string{"vgg11", "unet-s"}, cfg, testDopts(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.Top1Agreement < 0.99 {
			t.Fatalf("%s: agreement %v — TeMCO changed predictions", r.Model, r.Top1Agreement)
		}
		if r.MaxAbsDiff > 0.05 {
			t.Fatalf("%s: outputs deviate by %v", r.Model, r.MaxAbsDiff)
		}
		if r.Decomposed != r.Optimized {
			// Metrics on identical predictions must match exactly for
			// classification; dice can differ only if masks flip.
			if r.Metric == "top5" {
				t.Fatalf("%s: top5 changed %v → %v", r.Model, r.Decomposed, r.Optimized)
			}
		}
	}
	if !strings.Contains(res.String(), "agreement") {
		t.Fatal("String() missing header")
	}
}

func TestTrainedCaseStudies(t *testing.T) {
	row, err := TrainedClassifierCaseStudy(25)
	if err != nil {
		t.Fatal(err)
	}
	if !row.Trained || row.Metric != "top1" {
		t.Fatalf("bad row %+v", row)
	}
	if row.Decomposed < 0.5 {
		t.Fatalf("trained classifier accuracy too low: %v", row.Decomposed)
	}
	if row.Decomposed != row.Optimized {
		t.Fatalf("TeMCO changed trained accuracy: %v → %v", row.Decomposed, row.Optimized)
	}
	if row.Top1Agreement != 1.0 {
		t.Fatalf("agreement = %v", row.Top1Agreement)
	}

	seg, err := TrainedUNetCaseStudy(40)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Decomposed < 0.6 {
		t.Fatalf("trained unet dice too low: %v", seg.Decomposed)
	}
	if seg.Top1Agreement < 0.999 {
		t.Fatalf("mask agreement = %v", seg.Top1Agreement)
	}
}

func TestAblations(t *testing.T) {
	cfg := testCfg()
	res, err := AblateOverheadGate([]string{"resnet18"}, cfg, testDopts(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	on, off := res.Rows[0], res.Rows[1]
	if on.Config != "gate-on" || off.Config != "gate-off" {
		t.Fatal("row order wrong")
	}
	// Without the gate, more skips get optimized, which costs FLOPs.
	if off.SkipsOpt < on.SkipsOpt {
		t.Fatalf("gate-off optimized fewer skips: %d vs %d", off.SkipsOpt, on.SkipsOpt)
	}
	if off.FLOPs < on.FLOPs {
		t.Fatalf("gate-off should not reduce FLOPs: %d vs %d", off.FLOPs, on.FLOPs)
	}

	res2, err := AblateTransforms([]string{"unet-s"}, cfg, testDopts(), 4)
	if err != nil {
		t.Fatal(err)
	}
	with, without := res2.Rows[0], res2.Rows[1]
	if with.FusedKernels <= without.FusedKernels {
		t.Fatalf("transforms should widen fusion: %d vs %d", with.FusedKernels, without.FusedKernels)
	}
	if !strings.Contains(res2.String(), "Ablation") {
		t.Fatal("String() missing header")
	}
}
