package experiments

import (
	"fmt"

	"temco/internal/core"
	"temco/internal/decompose"
	"temco/internal/ir"
	"temco/internal/memplan"
	"temco/internal/models"
)

// AblationRow compares one pipeline configuration against the full one.
type AblationRow struct {
	Model         string
	Config        string
	InternalBytes int64
	PeakWithWksp  int64
	FLOPs         int64
	FusedKernels  int
	SkipsOpt      int
	SkipsRejected int
}

// AblationResult aggregates the design-choice ablations (DESIGN.md A1/A2).
type AblationResult struct {
	Batch int
	Rows  []AblationRow
}

// AblateOverheadGate (A1) runs skip-opt with and without the Overhead gate
// on models with skip connections. The paper's §4.2 ResNet discussion says
// the gate must reject deep restore chains; without it, peak memory and/or
// FLOPs regress.
func AblateOverheadGate(names []string, mcfg models.Config, dopts decompose.Options, batch int) (AblationResult, error) {
	res := AblationResult{Batch: batch}
	for _, name := range names {
		spec, err := models.Get(name)
		if err != nil {
			return res, err
		}
		base := spec.Build(mcfg)
		core.FoldBatchNorm(base)
		dg, _ := decompose.Decompose(base, dopts)
		for _, mode := range []string{"gate-on", "gate-off"} {
			cfg := core.DefaultConfig()
			cfg.DisableOverheadGate = mode == "gate-off"
			og, st := core.Optimize(dg, cfg)
			p := memplan.Simulate(og, batch, 0)
			res.Rows = append(res.Rows, AblationRow{
				Model: name, Config: mode,
				InternalBytes: p.PeakInternal,
				PeakWithWksp:  p.PeakWithWorkspace,
				FLOPs:         irGraphFLOPs(og),
				FusedKernels:  st.FusedKernels,
				SkipsOpt:      st.SkipConnectionsOptimized,
				SkipsRejected: st.SkipConnectionsRejected,
			})
		}
	}
	return res, nil
}

// AblateTransforms (A2) runs the pipeline with and without the §3.3 layer
// transformations on models with concat/add skip structure, showing how
// the transforms widen fusion coverage.
func AblateTransforms(names []string, mcfg models.Config, dopts decompose.Options, batch int) (AblationResult, error) {
	res := AblationResult{Batch: batch}
	for _, name := range names {
		spec, err := models.Get(name)
		if err != nil {
			return res, err
		}
		base := spec.Build(mcfg)
		core.FoldBatchNorm(base)
		dg, _ := decompose.Decompose(base, dopts)
		for _, mode := range []string{"with-transforms", "no-transforms"} {
			cfg := core.DefaultConfig()
			cfg.Transforms = mode == "with-transforms"
			og, st := core.Optimize(dg, cfg)
			p := memplan.Simulate(og, batch, 0)
			res.Rows = append(res.Rows, AblationRow{
				Model: name, Config: mode,
				InternalBytes: p.PeakInternal,
				PeakWithWksp:  p.PeakWithWorkspace,
				FLOPs:         irGraphFLOPs(og),
				FusedKernels:  st.FusedKernels,
				SkipsOpt:      st.SkipConnectionsOptimized,
				SkipsRejected: st.SkipConnectionsRejected,
			})
		}
	}
	return res, nil
}

// String renders the result as a fixed-width table.
func (r AblationResult) String() string {
	s := fmt.Sprintf("Ablation, batch %d\n", r.Batch)
	s += fmt.Sprintf("%-12s %-16s %12s %10s %8s %6s %6s\n",
		"model", "config", "internal(MB)", "GFLOPs", "fused", "skips+", "skips-")
	for _, row := range r.Rows {
		s += fmt.Sprintf("%-12s %-16s %12.2f %10.3f %8d %6d %6d\n",
			row.Model, row.Config, mb(row.InternalBytes), float64(row.FLOPs)/1e9,
			row.FusedKernels, row.SkipsOpt, row.SkipsRejected)
	}
	return s
}

// irGraphFLOPs is a thin alias keeping the import set tidy.
func irGraphFLOPs(g *ir.Graph) int64 { return ir.GraphFLOPs(g) }
