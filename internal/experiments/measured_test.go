package experiments

import (
	"testing"

	"temco/internal/decompose"
	"temco/internal/models"
)

// The interpreter's measured live-byte curve must reproduce the static
// prediction exactly: both account internal tensors at the same instant
// (after the node computes, before its dead inputs release). Any drift is
// a bug in the planner or the executor's release-list accounting.
func TestMeasuredTimelineMatchesPrediction(t *testing.T) {
	mcfg := models.DefaultConfig()
	mcfg.H, mcfg.W = 32, 32
	dopts := decompose.DefaultOptions()
	dopts.Ratio = 0.2
	for _, name := range []string{"alexnet", "unet-s"} {
		pred, err := Timeline(name, Decomposed, mcfg, dopts, 2)
		if err != nil {
			t.Fatal(err)
		}
		meas, err := MeasuredTimeline(name, Decomposed, mcfg, dopts, 2)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Compare(pred, meas)
		if err != nil {
			t.Fatal(err)
		}
		if c.Points == 0 {
			t.Fatalf("%s: no aligned points", name)
		}
		if c.PeakRelDiff != 0 || c.MaxPointRelDiff != 0 {
			t.Errorf("%s: measured curve diverges: peak %v, worst point %v (predicted peak %d, measured %d)",
				name, c.PeakRelDiff, c.MaxPointRelDiff, c.PredictedPeak, c.MeasuredPeak)
		}
	}
}

func TestCompareRejectsMismatchedSeries(t *testing.T) {
	a := TimelineSeries{Model: "alexnet", Variant: Decomposed, Batch: 1}
	b := TimelineSeries{Model: "vgg16", Variant: Decomposed, Batch: 1}
	if _, err := Compare(a, b); err == nil {
		t.Fatal("Compare must reject series from different models")
	}
}

func TestCompareDetectsDivergence(t *testing.T) {
	a := TimelineSeries{Model: "m", Variant: Decomposed, Batch: 1,
		Points: []TimelinePoint{{Index: 0, LiveBytes: 100}, {Index: 1, LiveBytes: 200}}}
	b := TimelineSeries{Model: "m", Variant: Decomposed, Batch: 1,
		Points: []TimelinePoint{{Index: 0, LiveBytes: 100}, {Index: 1, LiveBytes: 260}}}
	c, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.PredictedPeak != 200 || c.MeasuredPeak != 260 {
		t.Fatalf("peaks %d/%d, want 200/260", c.PredictedPeak, c.MeasuredPeak)
	}
	if got, want := c.PeakRelDiff, 0.3; got != want {
		t.Fatalf("peak rel diff %v, want %v", got, want)
	}
	if got, want := c.MaxPointRelDiff, 0.3; got != want {
		t.Fatalf("max point rel diff %v, want %v", got, want)
	}
}
