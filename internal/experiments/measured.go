package experiments

import (
	"fmt"
	"math"

	"temco/internal/decompose"
	"temco/internal/exec"
	"temco/internal/models"
	"temco/internal/obs"
	"temco/internal/tensor"
)

// MeasuredTimeline is Timeline's empirical twin: instead of asking
// memplan.Simulate what the interpreter *should* hold live at each step, it
// runs the variant graph through exec.Run with an obs.MemRecorder scoped to
// the graph and reports the bytes the executor *actually* held. The two
// series share TimelineSeries, so the same Sparkline/CSV paths render both;
// measured points carry no skip-byte attribution (the recorder sees sizes,
// not roles), so SkipBytes and PeakSkipShare stay zero.
//
// The function swaps the process-global memory-record hook for the duration
// of the run: callers must not race it against another measured run.
func MeasuredTimeline(name string, v Variant, mcfg models.Config, dopts decompose.Options, batch int) (TimelineSeries, error) {
	spec, err := models.Get(name)
	if err != nil {
		return TimelineSeries{}, err
	}
	g, err := BuildVariant(spec, v, mcfg, dopts)
	if err != nil {
		return TimelineSeries{}, err
	}
	x := tensor.New(batch, 3, mcfg.H, mcfg.W)
	x.FillNormal(tensor.NewRNG(1), 0, 1)
	mr := obs.EnableMemRecord(g.Name, len(g.Nodes))
	defer obs.DisableMemRecord()
	if _, err := exec.Run(g, x); err != nil {
		return TimelineSeries{}, err
	}
	s := TimelineSeries{Model: name, Variant: v, Batch: batch}
	for _, sm := range mr.Samples() {
		s.Points = append(s.Points, TimelinePoint{Index: sm.Step, Layer: sm.Node, LiveBytes: sm.LiveBytes})
	}
	return s, nil
}

// TimelineComparison quantifies how far a measured curve strays from its
// static prediction. The interpreter's accounting should reproduce the
// planner exactly, so any drift here is a bug in one of the two — the
// comparison is the regression tripwire, not a tolerance band to live in.
type TimelineComparison struct {
	Model   string
	Variant Variant
	Batch   int
	// PredictedPeak / MeasuredPeak are the maxima of the two curves.
	PredictedPeak, MeasuredPeak int64
	// PeakRelDiff is |measured-predicted| / predicted (0 when both are 0).
	PeakRelDiff float64
	// Points is how many step-aligned sample pairs were compared;
	// MaxPointRelDiff the worst per-point relative difference among them.
	Points          int
	MaxPointRelDiff float64
}

// Compare aligns a predicted and a measured series by step index and
// returns peak and per-point divergence. The series must describe the same
// model, variant, and batch.
func Compare(pred, meas TimelineSeries) (TimelineComparison, error) {
	if pred.Model != meas.Model || pred.Variant != meas.Variant || pred.Batch != meas.Batch {
		return TimelineComparison{}, fmt.Errorf(
			"experiments.Compare: series mismatch: %s/%s/b%d vs %s/%s/b%d",
			pred.Model, pred.Variant, pred.Batch, meas.Model, meas.Variant, meas.Batch)
	}
	c := TimelineComparison{Model: pred.Model, Variant: pred.Variant, Batch: pred.Batch}
	byStep := make(map[int]int64, len(meas.Points))
	for _, p := range meas.Points {
		byStep[p.Index] = p.LiveBytes
		if p.LiveBytes > c.MeasuredPeak {
			c.MeasuredPeak = p.LiveBytes
		}
	}
	for _, p := range pred.Points {
		if p.LiveBytes > c.PredictedPeak {
			c.PredictedPeak = p.LiveBytes
		}
		m, ok := byStep[p.Index]
		if !ok {
			continue
		}
		c.Points++
		if d := relDiff(m, p.LiveBytes); d > c.MaxPointRelDiff {
			c.MaxPointRelDiff = d
		}
	}
	c.PeakRelDiff = relDiff(c.MeasuredPeak, c.PredictedPeak)
	return c, nil
}

// relDiff is |got-want| / want, with the 0/0 case defined as 0.
func relDiff(got, want int64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(float64(got-want)) / float64(want)
}
