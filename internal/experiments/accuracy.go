package experiments

import (
	"fmt"

	"temco/internal/core"
	"temco/internal/data"
	"temco/internal/decompose"
	"temco/internal/exec"
	"temco/internal/ir"
	"temco/internal/models"
	"temco/internal/tensor"
	"temco/internal/train"
)

// AccuracyRow is one bar of the paper's Fig. 12: the metric (top-5 or
// dice) of the decomposed model and of its TeMCO-optimized form, plus the
// direct evidence of semantics preservation.
type AccuracyRow struct {
	Model string
	// Metric is "top5" for classifiers, "dice" for segmentation.
	Metric string
	// Decomposed and Optimized are the metric values of the two variants
	// on the same evaluation set.
	Decomposed float64
	Optimized  float64
	// Top1Agreement is the fraction of samples where both variants pick
	// the same argmax (1.0 expected; semantics preservation).
	Top1Agreement float64
	// MaxAbsDiff is the largest elementwise output deviation.
	MaxAbsDiff float64
	// Trained reports whether the weights were actually trained on the
	// synthetic task (true for the trained case studies) or left at their
	// deterministic initialization (agreement-only check).
	Trained bool
}

// AccuracyResult aggregates Fig. 12.
type AccuracyResult struct {
	Rows []AccuracyRow
}

// AgreementAll checks semantics preservation for every registry model on
// synthetic inputs: the TeMCO-optimized graph must produce the same
// predictions as the decomposed baseline.
func AgreementAll(names []string, mcfg models.Config, dopts decompose.Options, samples int) (AccuracyResult, error) {
	var res AccuracyResult
	for _, name := range names {
		spec, err := models.Get(name)
		if err != nil {
			return res, err
		}
		opt := Fusion
		if spec.HasSkips {
			opt = SkipOptFusion
		}
		dg, err := BuildVariant(spec, Decomposed, mcfg, dopts)
		if err != nil {
			return res, err
		}
		og, err := BuildVariant(spec, opt, mcfg, dopts)
		if err != nil {
			return res, err
		}
		row := AccuracyRow{Model: name}
		if spec.Arch == "unet" {
			set := data.Segmentation(7, samples, mcfg.H, mcfg.W)
			rd, err := exec.Run(dg, set.Images)
			if err != nil {
				return res, err
			}
			ro, err := exec.Run(og, set.Images)
			if err != nil {
				return res, err
			}
			row.Metric = "dice"
			row.Decomposed = data.Dice(rd.Outputs[0], set.Masks)
			row.Optimized = data.Dice(ro.Outputs[0], set.Masks)
			row.Top1Agreement = maskAgreement(rd.Outputs[0], ro.Outputs[0])
			row.MaxAbsDiff = tensor.MaxAbsDiff(rd.Outputs[0], ro.Outputs[0])
		} else {
			set := data.Classification(7, samples, mcfg.Classes, mcfg.H, mcfg.W)
			rd, err := exec.Run(dg, set.Images)
			if err != nil {
				return res, err
			}
			ro, err := exec.Run(og, set.Images)
			if err != nil {
				return res, err
			}
			row.Metric = "top5"
			row.Decomposed = data.TopK(rd.Outputs[0], set.Labels, 5)
			row.Optimized = data.TopK(ro.Outputs[0], set.Labels, 5)
			row.Top1Agreement = data.TopKAgreement(rd.Outputs[0], ro.Outputs[0], 1)
			row.MaxAbsDiff = tensor.MaxAbsDiff(rd.Outputs[0], ro.Outputs[0])
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func maskAgreement(a, b *tensor.Tensor) float64 {
	agree := 0
	for i := range a.Data {
		pa := a.Data[i] >= 0.5
		pb := b.Data[i] >= 0.5
		if pa == pb {
			agree++
		}
	}
	return float64(agree) / float64(a.Len())
}

// TrainedClassifierCaseStudy reproduces the paper's direct-training setup
// (§4.4) at laptop scale: a small CNN is Tucker-decomposed, trained on the
// synthetic classification task, then TeMCO-optimized; the row reports the
// real trained accuracies of both variants.
func TrainedClassifierCaseStudy(epochs int) (AccuracyRow, error) {
	const classes, h, w = 4, 12, 12
	b := ir.NewBuilder("case-cls", 77)
	in := b.Input(3, h, w)
	x := b.ReLU(b.Conv(in, 24, 3, 1, 1))
	x = b.MaxPool(x, 2, 2)
	x = b.ReLU(b.Conv(x, 32, 3, 1, 1))
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Linear(x, classes)
	b.Output(x)

	opts := decompose.DefaultOptions()
	opts.Ratio = 0.25
	opts.MinChannels = 8 // keep the 3-channel stem intact for accuracy
	dg, _ := decompose.Decompose(b.G, opts)

	trainSet := data.Classification(1, 128, classes, h, w)
	testSet := data.Classification(2, 128, classes, h, w)
	tr := train.New(dg, 0.05, 0.9)
	for e := 0; e < epochs; e++ {
		if _, err := tr.StepCE(trainSet.Images, trainSet.Labels); err != nil {
			return AccuracyRow{}, err
		}
	}
	og, _ := core.Optimize(dg, core.FusionOnly())
	rd, err := exec.Run(dg, testSet.Images)
	if err != nil {
		return AccuracyRow{}, err
	}
	ro, err := exec.Run(og, testSet.Images)
	if err != nil {
		return AccuracyRow{}, err
	}
	return AccuracyRow{
		Model:         "trained-cnn(decomposed)",
		Metric:        "top1",
		Decomposed:    data.TopK(rd.Outputs[0], testSet.Labels, 1),
		Optimized:     data.TopK(ro.Outputs[0], testSet.Labels, 1),
		Top1Agreement: data.TopKAgreement(rd.Outputs[0], ro.Outputs[0], 1),
		MaxAbsDiff:    tensor.MaxAbsDiff(rd.Outputs[0], ro.Outputs[0]),
		Trained:       true,
	}, nil
}

// TrainedUNetCaseStudy trains a decomposed mini-UNet on the synthetic
// Carvana-style task and reports the dice of decomposed vs optimized.
func TrainedUNetCaseStudy(epochs int) (AccuracyRow, error) {
	const h, w = 16, 16
	b := ir.NewBuilder("case-seg", 88)
	in := b.Input(3, h, w)
	d1 := b.ReLU(b.Conv(in, 16, 3, 1, 1))
	p := b.MaxPool(d1, 2, 2)
	mid := b.ReLU(b.Conv(p, 32, 3, 1, 1))
	up := b.Upsample(mid, 2)
	cat := b.Concat(up, d1)
	x := b.ReLU(b.Conv(cat, 16, 3, 1, 1))
	x = b.ConvNamed("head", x, 1, 1, 1, 1, 1, 0, 0, 1)
	x = b.Sigmoid(x)
	b.Output(x)

	opts := decompose.DefaultOptions()
	opts.Ratio = 0.3
	opts.MinChannels = 8 // keep the 3-channel stem intact for accuracy
	dg, _ := decompose.Decompose(b.G, opts)

	set := data.Segmentation(3, 32, h, w)
	eval := data.Segmentation(4, 32, h, w)
	tr := train.New(dg, 0.2, 0.9)
	for e := 0; e < epochs; e++ {
		if _, err := tr.StepBCE(set.Images, set.Masks); err != nil {
			return AccuracyRow{}, err
		}
	}
	og, _ := core.Optimize(dg, core.DefaultConfig())
	rd, err := exec.Run(dg, eval.Images)
	if err != nil {
		return AccuracyRow{}, err
	}
	ro, err := exec.Run(og, eval.Images)
	if err != nil {
		return AccuracyRow{}, err
	}
	return AccuracyRow{
		Model:         "trained-unet(decomposed)",
		Metric:        "dice",
		Decomposed:    data.Dice(rd.Outputs[0], eval.Masks),
		Optimized:     data.Dice(ro.Outputs[0], eval.Masks),
		Top1Agreement: maskAgreement(rd.Outputs[0], ro.Outputs[0]),
		MaxAbsDiff:    tensor.MaxAbsDiff(rd.Outputs[0], ro.Outputs[0]),
		Trained:       true,
	}, nil
}

// String renders the result as a fixed-width table.
func (r AccuracyResult) String() string {
	s := "Accuracy preservation (paper Fig. 12)\n"
	s += fmt.Sprintf("%-26s %-7s %10s %10s %10s %12s %8s\n",
		"model", "metric", "decomposed", "optimized", "agreement", "max |Δout|", "trained")
	for _, row := range r.Rows {
		s += fmt.Sprintf("%-26s %-7s %10.4f %10.4f %10.4f %12.2e %8v\n",
			row.Model, row.Metric, row.Decomposed, row.Optimized, row.Top1Agreement, row.MaxAbsDiff, row.Trained)
	}
	return s
}
