package experiments

import (
	"fmt"
	"strings"

	"temco/internal/decompose"
	"temco/internal/memplan"
	"temco/internal/models"
)

// TimelinePoint is one sample of the Fig. 4 memory-usage curve.
type TimelinePoint struct {
	Index     int
	Layer     string
	LiveBytes int64
	SkipBytes int64
}

// TimelineSeries is one curve of Fig. 4 (Original or Decomposed — or a
// TeMCO variant, which the paper's figure omits but is instructive).
type TimelineSeries struct {
	Model   string
	Variant Variant
	Batch   int
	Points  []TimelinePoint
	// PeakSkipShare is the skip-connection share of the peak (the paper
	// quotes 76.2% for decomposed UNet).
	PeakSkipShare float64
}

// Timeline reproduces one curve of Fig. 4: internal-tensor memory over the
// layer schedule.
func Timeline(name string, v Variant, mcfg models.Config, dopts decompose.Options, batch int) (TimelineSeries, error) {
	spec, err := models.Get(name)
	if err != nil {
		return TimelineSeries{}, err
	}
	g, err := BuildVariant(spec, v, mcfg, dopts)
	if err != nil {
		return TimelineSeries{}, err
	}
	p := memplan.Simulate(g, batch, 0)
	s := TimelineSeries{Model: name, Variant: v, Batch: batch}
	for _, e := range p.Events {
		s.Points = append(s.Points, TimelinePoint{Index: e.Index, Layer: e.Name, LiveBytes: e.LiveBytes, SkipBytes: e.SkipBytes})
	}
	if p.PeakInternal > 0 {
		s.PeakSkipShare = float64(p.PeakSkipBytes) / float64(p.PeakInternal)
	}
	return s, nil
}

// Sparkline renders the series as a textual plot (one row per layer event,
// bar length proportional to live bytes), the terminal stand-in for the
// paper's Fig. 4 curves.
func (s TimelineSeries) Sparkline(width int) string {
	var max int64
	for _, p := range s.Points {
		if p.LiveBytes > max {
			max = p.LiveBytes
		}
	}
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s / %s, batch %d — internal tensor bytes per layer event (peak %.2f MB, skip share at peak %.1f%%)\n",
		s.Model, s.Variant, s.Batch, mb(max), s.PeakSkipShare*100)
	for _, p := range s.Points {
		n := int(int64(width) * p.LiveBytes / max)
		k := int(int64(width) * p.SkipBytes / max)
		bar := strings.Repeat("#", k) + strings.Repeat("=", n-k)
		fmt.Fprintf(&b, "%4d %-24s %8.2f %s\n", p.Index, trunc(p.Layer, 24), mb(p.LiveBytes), bar)
	}
	b.WriteString("     (# = held by skip connections, = = other internal tensors)\n")
	return b.String()
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
