// Package guard hardens the compile/execute boundary: it converts panics
// escaping a pass or kernel into typed errors, and defines the sentinel
// error kinds every process-boundary failure maps onto. The policy (see
// DESIGN.md "Error handling policy") is that panics signal internal
// invariant violations, while everything that crosses a process boundary —
// model files, CLI flags, execution resources — fails with an error that
// wraps exactly one of the kinds below.
package guard

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// Sentinel error kinds. Callers classify failures with errors.Is against
// these; they never appear bare, only wrapped inside *Error.
var (
	// ErrInvalidModel marks input that failed validation: a malformed or
	// adversarial saved graph, an unknown model name, a bad flag value.
	ErrInvalidModel = errors.New("invalid model")
	// ErrBudgetExceeded marks an execution aborted because live tensor
	// bytes would exceed the configured peak-memory budget.
	ErrBudgetExceeded = errors.New("memory budget exceeded")
	// ErrCanceled marks an execution aborted by context cancellation or
	// deadline expiry.
	ErrCanceled = errors.New("canceled")
	// ErrInternal marks a recovered panic: a pass or kernel violated an
	// internal invariant but the process survived.
	ErrInternal = errors.New("internal error")
	// ErrOverloaded marks a request shed by admission control: the serving
	// queue was full (or the session was shutting down) and the work was
	// rejected before consuming any execution resources. Retryable by the
	// client after backing off.
	ErrOverloaded = errors.New("overloaded")
	// ErrDegraded marks a request that failed while the serving tier was
	// already degraded: the optimized graph's circuit breaker is open and
	// the unoptimized fallback failed too.
	ErrDegraded = errors.New("degraded")
)

// Error is a typed failure at the compile/execute boundary.
type Error struct {
	Kind error  // one of the sentinel kinds above
	Op   string // what was running, e.g. "core.fusion", "graphio.Load"
	Err  error  // underlying cause
	// Stack holds the goroutine stack when the error was recovered from a
	// panic (nil otherwise); kept for logging, not for Error().
	Stack []byte
}

// Error renders "op: kind: cause".
func (e *Error) Error() string {
	if e.Err == nil {
		return fmt.Sprintf("%s: %v", e.Op, e.Kind)
	}
	return fmt.Sprintf("%s: %v: %v", e.Op, e.Kind, e.Err)
}

// Unwrap exposes both the kind and the cause to errors.Is/As.
func (e *Error) Unwrap() []error {
	if e.Err == nil {
		return []error{e.Kind}
	}
	return []error{e.Kind, e.Err}
}

// New wraps err as an *Error of the given kind.
func New(kind error, op string, err error) *Error {
	return &Error{Kind: kind, Op: op, Err: err}
}

// Errorf builds an *Error of the given kind from a format string.
func Errorf(kind error, op, format string, args ...any) *Error {
	return &Error{Kind: kind, Op: op, Err: fmt.Errorf(format, args...)}
}

// Safe runs fn, converting an escaping panic into an ErrInternal *Error
// carrying the panic value and stack. Errors returned by fn pass through
// unchanged.
func Safe(op string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &Error{Kind: ErrInternal, Op: op,
				Err: fmt.Errorf("panic: %v", r), Stack: debug.Stack()}
		}
	}()
	return fn()
}

// SafeValue is Safe for functions that also return a value. On a recovered
// panic the zero value is returned alongside the ErrInternal error.
func SafeValue[T any](op string, fn func() (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			var zero T
			v = zero
			err = &Error{Kind: ErrInternal, Op: op,
				Err: fmt.Errorf("panic: %v", r), Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Exit codes for the CLIs, mapped from the error kinds. Documented in the
// cmd/temco and cmd/runmodel usage comments.
const (
	ExitOK         = 0 // success
	ExitInternal   = 1 // internal error (recovered panic, unexpected failure)
	ExitInvalid    = 2 // invalid model: bad file, bad flag, failed validation
	ExitResource   = 3 // resource limit: memory budget exceeded or timed out
	ExitOverloaded = 4 // load shed: admission queue full, request rejected
	ExitDegraded   = 5 // degraded: breaker open and the fallback failed too
)

// ExitCode maps err onto the CLI exit-code convention. The serving kinds
// are checked first: a degraded failure usually wraps the fallback's
// underlying resource or internal error, and the outer classification is
// the one the operator needs.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, ErrOverloaded):
		return ExitOverloaded
	case errors.Is(err, ErrDegraded):
		return ExitDegraded
	case errors.Is(err, ErrInvalidModel):
		return ExitInvalid
	case errors.Is(err, ErrBudgetExceeded), errors.Is(err, ErrCanceled):
		return ExitResource
	default:
		return ExitInternal
	}
}
