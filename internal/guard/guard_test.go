package guard

import (
	"errors"
	"fmt"
	"testing"
)

func TestSafeConvertsPanic(t *testing.T) {
	err := Safe("test.op", func() error { panic("boom") })
	if err == nil {
		t.Fatal("expected error from panicking fn")
	}
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("want ErrInternal, got %v", err)
	}
	var ge *Error
	if !errors.As(err, &ge) {
		t.Fatalf("want *Error, got %T", err)
	}
	if ge.Op != "test.op" || len(ge.Stack) == 0 {
		t.Fatalf("missing op or stack: %+v", ge)
	}
}

func TestSafePassesErrorsThrough(t *testing.T) {
	want := errors.New("plain")
	if err := Safe("op", func() error { return want }); err != want {
		t.Fatalf("want %v, got %v", want, err)
	}
	if err := Safe("op", func() error { return nil }); err != nil {
		t.Fatalf("want nil, got %v", err)
	}
}

func TestSafeValue(t *testing.T) {
	v, err := SafeValue("op", func() (int, error) { return 7, nil })
	if v != 7 || err != nil {
		t.Fatalf("got %d, %v", v, err)
	}
	v, err = SafeValue("op", func() (int, error) { panic("kaboom") })
	if v != 0 || !errors.Is(err, ErrInternal) {
		t.Fatalf("got %d, %v", v, err)
	}
}

func TestErrorWrapsKindAndCause(t *testing.T) {
	cause := errors.New("negative dim")
	err := New(ErrInvalidModel, "graphio.Load", cause)
	if !errors.Is(err, ErrInvalidModel) || !errors.Is(err, cause) {
		t.Fatalf("Is failed on %v", err)
	}
	if errors.Is(err, ErrBudgetExceeded) {
		t.Fatal("must not match unrelated kind")
	}
	wrapped := fmt.Errorf("outer: %w", Errorf(ErrCanceled, "exec", "deadline"))
	if !errors.Is(wrapped, ErrCanceled) {
		t.Fatal("kind must survive further wrapping")
	}
}

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{New(ErrInvalidModel, "op", nil), ExitInvalid},
		{New(ErrBudgetExceeded, "op", nil), ExitResource},
		{New(ErrCanceled, "op", nil), ExitResource},
		{New(ErrInternal, "op", nil), ExitInternal},
		{errors.New("untyped"), ExitInternal},
		{New(ErrOverloaded, "serve", nil), ExitOverloaded},
		{New(ErrDegraded, "serve", nil), ExitDegraded},
		// A degraded failure wraps the fallback's underlying error; the
		// outer serving classification must win.
		{New(ErrDegraded, "serve", New(ErrInternal, "exec", nil)), ExitDegraded},
		{New(ErrDegraded, "serve", New(ErrBudgetExceeded, "exec", nil)), ExitDegraded},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestServingKindsSurviveWrapping(t *testing.T) {
	over := fmt.Errorf("http: %w", New(ErrOverloaded, "serve.Infer", errors.New("queue full")))
	if !errors.Is(over, ErrOverloaded) {
		t.Fatalf("ErrOverloaded must survive wrapping: %v", over)
	}
	if errors.Is(over, ErrDegraded) || errors.Is(over, ErrBudgetExceeded) {
		t.Fatalf("ErrOverloaded must not match other kinds: %v", over)
	}
	deg := fmt.Errorf("outer: %w", New(ErrDegraded, "serve.fallback",
		New(ErrInternal, "exec.dispatch", errors.New("kernel panic"))))
	if !errors.Is(deg, ErrDegraded) {
		t.Fatalf("ErrDegraded must survive wrapping: %v", deg)
	}
	if !errors.Is(deg, ErrInternal) {
		t.Fatalf("the wrapped cause's kind must stay visible: %v", deg)
	}
}
