package tensor

import "math"

// RNG is a small deterministic SplitMix64 generator. Every source of
// randomness in the repository (weight init, synthetic datasets) goes
// through RNG so experiments reproduce bit-for-bit.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0,n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard-normal sample (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		v := r.Float64()
		if u <= 1e-300 {
			continue
		}
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// FillUniform fills t with uniform samples in [lo,hi).
func (t *Tensor) FillUniform(r *RNG, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = float32(lo + (hi-lo)*r.Float64())
	}
}

// FillNormal fills t with N(mean, std²) samples.
func (t *Tensor) FillNormal(r *RNG, mean, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(mean + std*r.NormFloat64())
	}
}

// FillHe applies He (Kaiming) normal initialization for a weight tensor
// whose fan-in is fanIn, the standard scheme for ReLU networks.
func (t *Tensor) FillHe(r *RNG, fanIn int) {
	if fanIn <= 0 {
		fanIn = 1
	}
	t.FillNormal(r, 0, math.Sqrt(2.0/float64(fanIn)))
}
