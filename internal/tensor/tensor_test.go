package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	for i, v := range x.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
	if x.Bytes() != 96 {
		t.Fatalf("Bytes = %d, want 96", x.Bytes())
	}
}

func TestScalarTensor(t *testing.T) {
	x := New()
	if x.Len() != 1 {
		t.Fatalf("scalar tensor should hold one element, got %d", x.Len())
	}
	x.Set(3.5)
	if x.At() != 3.5 {
		t.Fatalf("At() = %v, want 3.5", x.At())
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	k := float32(0)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			for l := 0; l < 4; l++ {
				x.Set(k, i, j, l)
				k++
			}
		}
	}
	// Row-major layout means the data is 0..23 in order.
	for i := 0; i < 24; i++ {
		if x.Data[i] != float32(i) {
			t.Fatalf("Data[%d] = %v, want %d", i, x.Data[i], i)
		}
	}
	if got := x.At(1, 2, 3); got != 23 {
		t.Fatalf("At(1,2,3) = %v, want 23", got)
	}
}

func TestStrides(t *testing.T) {
	x := New(2, 3, 4)
	s := x.Strides()
	want := []int{12, 4, 1}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("Strides = %v, want %v", s, want)
		}
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Set(7, 2, 3)
	if x.Data[11] != 7 {
		t.Fatal("Reshape must alias the original data")
	}
}

func TestReshapePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Reshape(4)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSliceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	y := x.Clone()
	y.Data[0] = 9
	if x.Data[0] != 1 {
		t.Fatal("Clone must not alias data")
	}
}

func TestAddIntoAndScale(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{3, 4}, 2)
	d := New(2)
	AddInto(d, a, b)
	if d.Data[0] != 4 || d.Data[1] != 6 {
		t.Fatalf("AddInto = %v", d.Data)
	}
	d.Scale(0.5)
	if d.Data[0] != 2 || d.Data[1] != 3 {
		t.Fatalf("Scale = %v", d.Data)
	}
}

func TestNormDotRelErr(t *testing.T) {
	a := FromSlice([]float32{3, 4}, 2)
	if got := a.Norm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm = %v, want 5", got)
	}
	b := FromSlice([]float32{1, 1}, 2)
	if got := Dot(a, b); got != 7 {
		t.Fatalf("Dot = %v, want 7", got)
	}
	if got := RelErr(a, a); got != 0 {
		t.Fatalf("RelErr(a,a) = %v, want 0", got)
	}
	if got := MaxAbsDiff(a, b); got != 3 {
		t.Fatalf("MaxAbsDiff = %v, want 3", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give identical streams")
		}
	}
	c := NewRNG(43)
	if NewRNG(42).Uint64() == c.Uint64() {
		t.Fatal("different seeds should diverge immediately (astronomically unlikely otherwise)")
	}
}

func TestRNGUniformRange(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		n := r.Intn(7)
		if n < 0 || n >= 7 {
			t.Fatalf("Intn out of range: %v", n)
		}
	}
}

func TestFillNormalMoments(t *testing.T) {
	r := NewRNG(7)
	x := New(20000)
	x.FillNormal(r, 1.0, 2.0)
	var sum, sq float64
	for _, v := range x.Data {
		sum += float64(v)
	}
	mean := sum / float64(x.Len())
	for _, v := range x.Data {
		d := float64(v) - mean
		sq += d * d
	}
	std := math.Sqrt(sq / float64(x.Len()))
	if math.Abs(mean-1.0) > 0.1 {
		t.Fatalf("mean = %v, want ~1.0", mean)
	}
	if math.Abs(std-2.0) > 0.1 {
		t.Fatalf("std = %v, want ~2.0", std)
	}
}

func TestFillHeVariance(t *testing.T) {
	r := NewRNG(9)
	x := New(50000)
	x.FillHe(r, 50)
	var sq float64
	for _, v := range x.Data {
		sq += float64(v) * float64(v)
	}
	got := sq / float64(x.Len())
	want := 2.0 / 50.0
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("He variance = %v, want ~%v", got, want)
	}
}

// Property: reshaping to any factorization preserves the flat data.
func TestQuickReshapePreserves(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(8)
		m := 1 + r.Intn(8)
		x := New(n, m)
		x.FillUniform(r, -1, 1)
		y := x.Reshape(m, n).Reshape(n * m)
		for i := range x.Data {
			if x.Data[i] != y.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: At/Set agree with manual row-major offset arithmetic.
func TestQuickAtMatchesOffset(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		d0, d1, d2 := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		x := New(d0, d1, d2)
		x.FillUniform(r, 0, 1)
		i, j, k := r.Intn(d0), r.Intn(d1), r.Intn(d2)
		return x.At(i, j, k) == x.Data[i*d1*d2+j*d2+k]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AddInto is commutative.
func TestQuickAddCommutative(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(64)
		a, b := New(n), New(n)
		a.FillNormal(r, 0, 1)
		b.FillNormal(r, 0, 1)
		ab, ba := New(n), New(n)
		AddInto(ab, a, b)
		AddInto(ba, b, a)
		return MaxAbsDiff(ab, ba) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckedNumElems(t *testing.T) {
	if n, err := CheckedNumElems([]int{2, 3, 4}); err != nil || n != 24 {
		t.Fatalf("got %d, %v", n, err)
	}
	if n, err := CheckedNumElems(nil); err != nil || n != 1 {
		t.Fatalf("scalar: got %d, %v", n, err)
	}
	if _, err := CheckedNumElems([]int{2, -1}); err == nil {
		t.Fatal("negative dim must error")
	}
	if _, err := CheckedNumElems([]int{math.MaxInt/2 + 1, 4}); err == nil {
		t.Fatal("overflowing product must error")
	}
}

// The product of an adversarial shape can wrap to a small value (here
// exactly 0), which previously slipped past FromSlice's length check and
// produced a tensor claiming ~2^62 elements over empty storage. New and
// FromSlice must panic on such shapes instead.
func TestOverflowShapeRejected(t *testing.T) {
	wrap := []int{math.MaxInt/2 + 1, 4} // product ≡ 0 (mod 2^intSize)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s accepted an overflowing shape", name)
			}
		}()
		fn()
	}
	mustPanic("FromSlice", func() { FromSlice([]float32{}, wrap...) })
	mustPanic("New", func() { New(wrap...) })
	mustPanic("NumElems", func() { NumElems(wrap) })
}
