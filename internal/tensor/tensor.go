// Package tensor provides a minimal dense float32 tensor type used by the
// TeMCO graph IR, kernels, and decomposition routines. Tensors are stored
// row-major (C order); convolutional feature maps use NCHW layout.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major float32 tensor.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero-filled tensor with the given shape.
// A zero-dimensional tensor holds a single scalar element.
func New(shape ...int) *Tensor {
	n := NumElems(shape)
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The data slice is
// used directly (not copied); its length must equal the shape's element
// count.
func FromSlice(data []float32, shape ...int) *Tensor {
	if len(data) != NumElems(shape) {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (%d elems)",
			len(data), shape, NumElems(shape)))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// NumElems returns the number of elements implied by shape.
// It panics on negative dimensions and on element counts that overflow
// int (adversarial shapes whose product wraps could otherwise slip past
// size checks and trigger huge allocations).
func NumElems(shape []int) int {
	n, err := CheckedNumElems(shape)
	if err != nil {
		panic("tensor: " + err.Error())
	}
	return n
}

// CheckedNumElems is NumElems with errors instead of panics: it rejects
// negative dimensions and products that overflow int. Process-boundary
// decoders (graphio) use it to validate untrusted shapes.
func CheckedNumElems(shape []int) (int, error) {
	n := 1
	for _, d := range shape {
		if d < 0 {
			return 0, fmt.Errorf("negative dimension in shape %v", shape)
		}
		if d != 0 && n > math.MaxInt/d {
			return 0, fmt.Errorf("element count of shape %v overflows int", shape)
		}
		n *= d
	}
	return n, nil
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Bytes returns the storage footprint in bytes (4 bytes per element).
func (t *Tensor) Bytes() int64 { return int64(len(t.Data)) * 4 }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a tensor sharing t's data with a new shape of equal
// element count.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	if NumElems(shape) != t.Len() {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)",
			t.Shape, t.Len(), shape, NumElems(shape)))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// Strides returns the row-major strides for t's shape.
func (t *Tensor) Strides() []int {
	s := make([]int, len(t.Shape))
	acc := 1
	for i := len(t.Shape) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= t.Shape[i]
	}
	return s
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	stride := 1
	for i := len(t.Shape) - 1; i >= 0; i-- {
		if idx[i] < 0 || idx[i] >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off += idx[i] * stride
		stride *= t.Shape[i]
	}
	return off
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// AddInto computes dst = a + b elementwise. All three must share a shape.
func AddInto(dst, a, b *Tensor) {
	if !SameShape(a, b) || !SameShape(dst, a) {
		panic(fmt.Sprintf("tensor: AddInto shape mismatch %v %v %v", dst.Shape, a.Shape, b.Shape))
	}
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// Dot returns the inner product of a and b viewed as flat vectors.
func Dot(a, b *Tensor) float64 {
	if a.Len() != b.Len() {
		panic("tensor: Dot length mismatch")
	}
	var s float64
	for i := range a.Data {
		s += float64(a.Data[i]) * float64(b.Data[i])
	}
	return s
}

// Norm returns the Frobenius norm of t.
func (t *Tensor) Norm() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns max_i |a_i - b_i|.
func MaxAbsDiff(a, b *Tensor) float64 {
	if a.Len() != b.Len() {
		panic("tensor: MaxAbsDiff length mismatch")
	}
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// RelErr returns ||a-b||_F / max(||b||_F, eps): the relative reconstruction
// error of a against reference b.
func RelErr(a, b *Tensor) float64 {
	if a.Len() != b.Len() {
		panic("tensor: RelErr length mismatch")
	}
	var num, den float64
	for i := range a.Data {
		d := float64(a.Data[i]) - float64(b.Data[i])
		num += d * d
		den += float64(b.Data[i]) * float64(b.Data[i])
	}
	if den < 1e-30 {
		den = 1e-30
	}
	return math.Sqrt(num / den)
}

// String renders a short description (shape + first elements).
func (t *Tensor) String() string {
	n := t.Len()
	if n > 8 {
		n = 8
	}
	return fmt.Sprintf("Tensor%v%v…", t.Shape, t.Data[:n])
}
