package linalg

import "math"

// SVDResult holds a (possibly truncated) singular value decomposition
// A ≈ U · diag(S) · Vᵀ with U of size m×k, S of length k, V of size n×k.
type SVDResult struct {
	U *Mat
	S []float64
	V *Mat
}

// SVD computes the thin singular value decomposition of a via the
// eigendecomposition of the smaller Gram matrix (AᵀA or AAᵀ). This is the
// right trade-off here: the matrices unfolded from convolution weights have
// one small mode (channel counts ≤ ~1k), and the Jacobi eigensolver on the
// small Gram matrix is robust and dependency-free.
func SVD(a *Mat) SVDResult {
	m, n := a.Rows, a.Cols
	if m == 0 || n == 0 {
		return SVDResult{U: NewMat(m, 0), S: nil, V: NewMat(n, 0)}
	}
	if n <= m {
		// Eigendecompose AᵀA = V Σ² Vᵀ, then U = A V Σ⁻¹.
		vals, v := SymEig(Gram(a))
		return svdFromV(a, vals, v)
	}
	// Work on Aᵀ and swap the factors.
	r := SVD(a.T())
	return SVDResult{U: r.V, S: r.S, V: r.U}
}

func svdFromV(a *Mat, vals []float64, v *Mat) SVDResult {
	m, n := a.Rows, a.Cols
	k := n
	s := make([]float64, k)
	for i, ev := range vals {
		if ev < 0 {
			ev = 0
		}
		s[i] = math.Sqrt(ev)
	}
	av := MatMul(a, v) // m×n, columns are A·v_i = σ_i u_i
	u := NewMat(m, k)
	for j := 0; j < k; j++ {
		if s[j] > 1e-12*s[0]+1e-300 {
			inv := 1 / s[j]
			for i := 0; i < m; i++ {
				u.Data[i*k+j] = av.Data[i*n+j] * inv
			}
		}
		// Columns for (near-)zero singular values are left zero; truncated
		// callers never use them.
	}
	return SVDResult{U: u, S: s, V: v}
}

// TruncatedSVD returns the rank-k SVD of a (the k leading singular
// triplets). k is clamped to min(m, n). Small ranks relative to the matrix
// dimensions are served by a deterministic randomized subspace iteration;
// everything else falls back to the exact Jacobi decomposition.
func TruncatedSVD(a *Mat, k int) SVDResult {
	if maxK := minInt(a.Rows, a.Cols); k > maxK {
		k = maxK
	}
	if k > 0 && rsvdEligible(a.Rows, a.Cols, k) {
		return randomizedSVD(a, k)
	}
	full := SVD(a)
	maxK := len(full.S)
	if k > maxK {
		k = maxK
	}
	if k < 0 {
		k = 0
	}
	u := NewMat(a.Rows, k)
	v := NewMat(a.Cols, k)
	for i := 0; i < a.Rows; i++ {
		copy(u.Data[i*k:(i+1)*k], full.U.Data[i*maxK:i*maxK+k])
	}
	for i := 0; i < a.Cols; i++ {
		copy(v.Data[i*k:(i+1)*k], full.V.Data[i*maxK:i*maxK+k])
	}
	return SVDResult{U: u, S: full.S[:k], V: v}
}

// Reconstruct returns U · diag(S) · Vᵀ.
func (r SVDResult) Reconstruct() *Mat {
	k := len(r.S)
	us := r.U.Clone()
	for i := 0; i < us.Rows; i++ {
		for j := 0; j < k; j++ {
			us.Data[i*k+j] *= r.S[j]
		}
	}
	return MatMul(us, r.V.T())
}

// Solve solves the linear system A·x = b for square non-singular A using
// Gaussian elimination with partial pivoting. b has one column per
// right-hand side. Used by the CP-ALS normal equations.
func Solve(a, b *Mat) *Mat {
	if a.Rows != a.Cols || a.Rows != b.Rows {
		panic("linalg: Solve dimension mismatch")
	}
	n := a.Rows
	aw := a.Clone()
	x := b.Clone()
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		best := math.Abs(aw.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aw.At(r, col)); v > best {
				best, piv = v, r
			}
		}
		if best < 1e-300 {
			// Singular: regularize the diagonal slightly rather than fail;
			// ALS callers treat this as a ridge step.
			aw.Set(col, col, aw.At(col, col)+1e-10)
		}
		if piv != col {
			swapRows(aw, piv, col)
			swapRows(x, piv, col)
		}
		d := aw.At(col, col)
		for r := col + 1; r < n; r++ {
			f := aw.At(r, col) / d
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				aw.Set(r, c, aw.At(r, c)-f*aw.At(col, c))
			}
			for c := 0; c < x.Cols; c++ {
				x.Set(r, c, x.At(r, c)-f*x.At(col, c))
			}
		}
	}
	// Back substitution.
	for col := n - 1; col >= 0; col-- {
		d := aw.At(col, col)
		for c := 0; c < x.Cols; c++ {
			v := x.At(col, c)
			for k := col + 1; k < n; k++ {
				v -= aw.At(col, k) * x.At(k, c)
			}
			x.Set(col, c, v/d)
		}
	}
	return x
}

func swapRows(m *Mat, i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
