package linalg

import (
	"math"
	"testing"

	"temco/internal/tensor"
)

// TestRandomizedSVDAccuracy: on a matrix with fast-decaying spectrum, the
// randomized truncated SVD must capture the leading singular values to
// high relative accuracy.
func TestRandomizedSVDAccuracy(t *testing.T) {
	r := tensor.NewRNG(77)
	m, n, k := 200, 300, 10
	// Construct A = U·diag(decay)·Vᵀ with known spectrum.
	u := randMat(r, m, 40)
	orthonormalizeCols(u)
	v := randMat(r, n, 40)
	orthonormalizeCols(v)
	for j := 0; j < 40; j++ {
		s := math.Pow(0.7, float64(j))
		for i := 0; i < m; i++ {
			u.Data[i*40+j] *= s
		}
	}
	a := MatMul(u, v.T())

	if !rsvdEligible(m, n, k) {
		t.Fatal("test case should take the randomized path")
	}
	got := TruncatedSVD(a, k)
	exact := SVD(a)
	for j := 0; j < k; j++ {
		if math.Abs(got.S[j]-exact.S[j]) > 1e-6*(1+exact.S[0]) {
			t.Fatalf("singular value %d: randomized %v vs exact %v", j, got.S[j], exact.S[j])
		}
	}
	// Rank-k reconstruction must be near the optimal truncation.
	optErr := residual(exact.truncate(k).Reconstruct(), a)
	gotErr := residual(got.Reconstruct(), a)
	if gotErr > optErr*1.05+1e-9 {
		t.Fatalf("randomized reconstruction error %v vs optimal %v", gotErr, optErr)
	}
}

func (r SVDResult) truncate(k int) SVDResult {
	u := NewMat(r.U.Rows, k)
	v := NewMat(r.V.Rows, k)
	cols := len(r.S)
	for i := 0; i < r.U.Rows; i++ {
		copy(u.Data[i*k:(i+1)*k], r.U.Data[i*cols:i*cols+k])
	}
	for i := 0; i < r.V.Rows; i++ {
		copy(v.Data[i*k:(i+1)*k], r.V.Data[i*cols:i*cols+k])
	}
	return SVDResult{U: u, S: r.S[:k], V: v}
}

func residual(rec, a *Mat) float64 {
	d := NewMat(a.Rows, a.Cols)
	for i := range d.Data {
		d.Data[i] = rec.Data[i] - a.Data[i]
	}
	return d.FrobNorm()
}

func TestRandomizedSVDDeterministic(t *testing.T) {
	r := tensor.NewRNG(3)
	a := randMat(r, 120, 90)
	s1 := TruncatedSVD(a, 5)
	s2 := TruncatedSVD(a, 5)
	if matDiff(s1.U, s2.U) != 0 || matDiff(s1.V, s2.V) != 0 {
		t.Fatal("randomized SVD must be deterministic")
	}
}

func TestParMatMulMatchesSerial(t *testing.T) {
	r := tensor.NewRNG(9)
	a := randMat(r, 130, 70)
	b := randMat(r, 70, 50)
	if d := matDiff(parMatMul(a, b), MatMul(a, b)); d > 1e-12 {
		t.Fatalf("parallel matmul deviates by %v", d)
	}
}

func TestOrthonormalizeCols(t *testing.T) {
	r := tensor.NewRNG(11)
	m := randMat(r, 50, 8)
	orthonormalizeCols(m)
	g := Gram(m)
	if d := matDiff(g, Identity(8)); d > 1e-10 {
		t.Fatalf("columns not orthonormal: deviation %v", d)
	}
}
