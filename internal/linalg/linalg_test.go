package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"temco/internal/tensor"
)

func randMat(r *tensor.RNG, rows, cols int) *Mat {
	m := NewMat(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

func matDiff(a, b *Mat) float64 {
	var d float64
	for i := range a.Data {
		v := math.Abs(a.Data[i] - b.Data[i])
		if v > d {
			d = v
		}
	}
	return d
}

func TestMatMulKnown(t *testing.T) {
	a := MatFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := MatFromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestTranspose(t *testing.T) {
	a := MatFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("T shape = %d×%d", at.Rows, at.Cols)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("T values wrong: %v", at.Data)
	}
}

func TestGramMatchesMatMul(t *testing.T) {
	r := tensor.NewRNG(3)
	a := randMat(r, 7, 4)
	g := Gram(a)
	g2 := MatMul(a.T(), a)
	if matDiff(g, g2) > 1e-12 {
		t.Fatalf("Gram differs from AᵀA by %v", matDiff(g, g2))
	}
}

func TestSymEigDiagonal(t *testing.T) {
	a := NewMat(3, 3)
	a.Set(0, 0, 1)
	a.Set(1, 1, 5)
	a.Set(2, 2, 3)
	vals, vecs := SymEig(a)
	want := []float64{5, 3, 1}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-10 {
			t.Fatalf("eigenvalues = %v, want %v", vals, want)
		}
	}
	// Eigenvector for eigenvalue 5 should be ±e1.
	if math.Abs(math.Abs(vecs.At(1, 0))-1) > 1e-10 {
		t.Fatalf("leading eigenvector = %v", vecs.Col(0))
	}
}

func TestSymEigReconstruction(t *testing.T) {
	r := tensor.NewRNG(11)
	for _, n := range []int{2, 5, 16, 40} {
		b := randMat(r, n, n)
		a := MatMul(b, b.T()) // symmetric PSD
		vals, v := SymEig(a)
		// Reconstruct V diag(vals) Vᵀ.
		vd := v.Clone()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				vd.Data[i*n+j] *= vals[j]
			}
		}
		rec := MatMul(vd, v.T())
		if d := matDiff(rec, a); d > 1e-8*a.FrobNorm() {
			t.Fatalf("n=%d: reconstruction error %v", n, d)
		}
		// Orthonormality of eigenvectors.
		id := MatMul(v.T(), v)
		if d := matDiff(id, Identity(n)); d > 1e-9 {
			t.Fatalf("n=%d: VᵀV deviates from I by %v", n, d)
		}
		// Descending order.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-9 {
				t.Fatalf("n=%d: eigenvalues not descending: %v", n, vals)
			}
		}
	}
}

func TestSVDReconstruction(t *testing.T) {
	r := tensor.NewRNG(5)
	for _, dims := range [][2]int{{6, 4}, {4, 6}, {10, 10}, {1, 5}, {5, 1}, {32, 8}} {
		a := randMat(r, dims[0], dims[1])
		res := SVD(a)
		rec := res.Reconstruct()
		if d := matDiff(rec, a); d > 1e-8*(1+a.FrobNorm()) {
			t.Fatalf("%v: SVD reconstruction error %v", dims, d)
		}
		for i := 1; i < len(res.S); i++ {
			if res.S[i] > res.S[i-1]+1e-9 {
				t.Fatalf("%v: singular values not descending: %v", dims, res.S)
			}
		}
		for _, s := range res.S {
			if s < 0 {
				t.Fatalf("negative singular value %v", s)
			}
		}
	}
}

func TestSVDOrthonormalFactors(t *testing.T) {
	r := tensor.NewRNG(17)
	a := randMat(r, 12, 7)
	res := SVD(a)
	utu := MatMul(res.U.T(), res.U)
	vtv := MatMul(res.V.T(), res.V)
	if d := matDiff(utu, Identity(7)); d > 1e-8 {
		t.Fatalf("UᵀU deviates from I by %v", d)
	}
	if d := matDiff(vtv, Identity(7)); d > 1e-8 {
		t.Fatalf("VᵀV deviates from I by %v", d)
	}
}

func TestTruncatedSVDIsBestLowRank(t *testing.T) {
	// Build a matrix with known rank-2 structure plus small noise; the
	// rank-2 truncation must capture almost all the energy.
	r := tensor.NewRNG(23)
	u := randMat(r, 20, 2)
	v := randMat(r, 15, 2)
	a := MatMul(u, v.T())
	for i := range a.Data {
		a.Data[i] += 1e-6 * r.NormFloat64()
	}
	res := TruncatedSVD(a, 2)
	rec := res.Reconstruct()
	diff := NewMat(a.Rows, a.Cols)
	for i := range diff.Data {
		diff.Data[i] = rec.Data[i] - a.Data[i]
	}
	if diff.FrobNorm() > 1e-3 {
		t.Fatalf("rank-2 truncation residual %v too large", diff.FrobNorm())
	}
	if len(res.S) != 2 || res.U.Cols != 2 || res.V.Cols != 2 {
		t.Fatalf("truncation returned wrong rank: %d", len(res.S))
	}
}

func TestTruncatedSVDClamps(t *testing.T) {
	r := tensor.NewRNG(29)
	a := randMat(r, 3, 5)
	res := TruncatedSVD(a, 99)
	if len(res.S) != 3 {
		t.Fatalf("expected clamp to min(m,n)=3, got %d", len(res.S))
	}
}

func TestSolveKnown(t *testing.T) {
	a := MatFromSlice([]float64{2, 1, 1, 3}, 2, 2)
	b := MatFromSlice([]float64{5, 10}, 2, 1)
	x := Solve(a, b)
	// 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
	if math.Abs(x.At(0, 0)-1) > 1e-10 || math.Abs(x.At(1, 0)-3) > 1e-10 {
		t.Fatalf("Solve = %v", x.Data)
	}
}

func TestSolveMultiRHS(t *testing.T) {
	r := tensor.NewRNG(31)
	a := randMat(r, 6, 6)
	// Diagonally dominate to guarantee non-singularity.
	for i := 0; i < 6; i++ {
		a.Set(i, i, a.At(i, i)+10)
	}
	b := randMat(r, 6, 3)
	x := Solve(a, b)
	ax := MatMul(a, x)
	if d := matDiff(ax, b); d > 1e-9 {
		t.Fatalf("A·x deviates from b by %v", d)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ.
func TestQuickMatMulTranspose(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randMat(r, m, k)
		b := randMat(r, k, n)
		left := MatMul(a, b).T()
		right := MatMul(b.T(), a.T())
		return matDiff(left, right) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SVD singular values are invariant under transposition.
func TestQuickSVDTransposeInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		m, n := 1+r.Intn(8), 1+r.Intn(8)
		a := randMat(r, m, n)
		s1 := SVD(a).S
		s2 := SVD(a.T()).S
		if len(s1) != len(s2) {
			return false
		}
		for i := range s1 {
			if math.Abs(s1[i]-s2[i]) > 1e-8*(1+s1[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Frobenius norm equals l2 norm of singular values.
func TestQuickSVDEnergy(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		m, n := 1+r.Intn(8), 1+r.Intn(8)
		a := randMat(r, m, n)
		var e float64
		for _, s := range SVD(a).S {
			e += s * s
		}
		fn := a.FrobNorm()
		return math.Abs(math.Sqrt(e)-fn) < 1e-8*(1+fn)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
