package linalg

import (
	"math"
	"sync"
)

// Randomized truncated SVD (Halko/Martinsson/Tropp subspace iteration).
// For the decomposition ratios the paper evaluates (0.1), the requested
// rank k is far below min(m,n); the randomized range finder turns the
// O(min(m,n)³) Jacobi cost into O(m·n·k), which is what makes decomposing
// 512-channel convolution layers fast. Deterministic: the Gaussian test
// matrix comes from a fixed-seed SplitMix64 stream.

const (
	rsvdOversample = 8
	rsvdPowerIters = 2
	rsvdSeed       = 0x5eed5eed5eed
)

// rsvdEligible reports whether the randomized path should handle a rank-k
// truncation of an m×n matrix: only when k is small enough that the
// subspace method is both faster and accurate.
func rsvdEligible(m, n, k int) bool {
	maxK := m
	if n < maxK {
		maxK = n
	}
	return k+rsvdOversample <= maxK/3
}

func randomizedSVD(a *Mat, k int) SVDResult {
	m, n := a.Rows, a.Cols
	p := k + rsvdOversample
	if p > n {
		p = n
	}
	if p > m {
		p = m
	}
	// Gaussian test matrix Ω (n×p), deterministic.
	state := uint64(rsvdSeed) ^ uint64(m)<<32 ^ uint64(n)<<16 ^ uint64(k)
	next := func() float64 {
		// SplitMix64 → uniform → sum-of-12 approximation of a normal.
		var s float64
		for i := 0; i < 12; i++ {
			state += 0x9e3779b97f4a7c15
			z := state
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			z ^= z >> 31
			s += float64(z>>11) / (1 << 53)
		}
		return s - 6
	}
	omega := NewMat(n, p)
	for i := range omega.Data {
		omega.Data[i] = next()
	}
	// Range finder with power iterations: Y = (A·Aᵀ)^q · A · Ω.
	y := parMatMul(a, omega) // m×p
	orthonormalizeCols(y)
	for it := 0; it < rsvdPowerIters; it++ {
		z := parMatMul(a.T(), y) // n×p
		orthonormalizeCols(z)
		y = parMatMul(a, z) // m×p
		orthonormalizeCols(y)
	}
	q := y // m×p, orthonormal columns
	// Project: B = Qᵀ·A (p×n), then exact SVD of the small B.
	b := parMatMul(q.T(), a)
	sb := SVD(b) // p×n with p small → Jacobi on p×p Gram
	u := parMatMul(q, sb.U)
	// Truncate to k.
	res := SVDResult{U: NewMat(m, k), S: append([]float64(nil), sb.S[:k]...), V: NewMat(n, k)}
	cols := len(sb.S)
	for i := 0; i < m; i++ {
		copy(res.U.Data[i*k:(i+1)*k], u.Data[i*cols:i*cols+k])
	}
	for i := 0; i < n; i++ {
		copy(res.V.Data[i*k:(i+1)*k], sb.V.Data[i*cols:i*cols+k])
	}
	return res
}

// orthonormalizeCols applies modified Gram-Schmidt to the columns of m in
// place. Columns that vanish (rank deficiency) are left as zero vectors.
func orthonormalizeCols(m *Mat) {
	rows, cols := m.Rows, m.Cols
	for j := 0; j < cols; j++ {
		for i := 0; i < j; i++ {
			var dot float64
			for r := 0; r < rows; r++ {
				dot += m.Data[r*cols+i] * m.Data[r*cols+j]
			}
			if dot == 0 {
				continue
			}
			for r := 0; r < rows; r++ {
				m.Data[r*cols+j] -= dot * m.Data[r*cols+i]
			}
		}
		var norm float64
		for r := 0; r < rows; r++ {
			v := m.Data[r*cols+j]
			norm += v * v
		}
		if norm < 1e-300 {
			continue
		}
		inv := 1 / math.Sqrt(norm)
		for r := 0; r < rows; r++ {
			m.Data[r*cols+j] *= inv
		}
	}
}

// parMatMul is MatMul parallelized over row blocks; worthwhile for the
// large unfoldings produced by 512-channel convolutions.
func parMatMul(a, b *Mat) *Mat {
	if a.Rows < 64 {
		return MatMul(a, b)
	}
	out := NewMat(a.Rows, b.Cols)
	workers := 8
	chunk := (a.Rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < a.Rows; lo += chunk {
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				arow := a.Data[i*a.Cols : (i+1)*a.Cols]
				orow := out.Data[i*b.Cols : (i+1)*b.Cols]
				for k, av := range arow {
					if av == 0 {
						continue
					}
					brow := b.Data[k*b.Cols : (k+1)*b.Cols]
					for j, bv := range brow {
						orow[j] += av * bv
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}
