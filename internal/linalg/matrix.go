// Package linalg implements the dense linear algebra needed by the tensor
// decomposition substrate: float64 matrices, matrix products, a cyclic
// Jacobi symmetric eigensolver, and thin/truncated singular value
// decompositions built on it. Everything is written from scratch on the
// standard library.
package linalg

import (
	"fmt"
	"math"
	"sort"

	"temco/internal/gemm"
)

// Mat is a dense row-major float64 matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat allocates a zero r×c matrix.
func NewMat(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %d×%d", r, c))
	}
	return &Mat{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// MatFromSlice wraps data (not copied) as an r×c matrix.
func MatFromSlice(data []float64, r, c int) *Mat {
	if len(data) != r*c {
		panic(fmt.Sprintf("linalg: data length %d does not match %d×%d", len(data), r, c))
	}
	return &Mat{Rows: r, Cols: c, Data: data}
}

// At returns element (i,j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores v at (i,j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Mat) T() *Mat {
	t := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// MatMul returns a·b on the blocked float64 GEMM backbone.
func MatMul(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: MatMul dimension mismatch %d×%d · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMat(a.Rows, b.Cols)
	gemm.Gemm64(a.Rows, b.Cols, a.Cols, 1, a.Data, a.Cols, b.Data, b.Cols, 0, out.Data, b.Cols)
	return out
}

// Gram returns aᵀ·a, the (Cols×Cols) Gram matrix of a, consuming a
// transposed in place (no materialized aᵀ).
func Gram(a *Mat) *Mat {
	g := NewMat(a.Cols, a.Cols)
	gemm.Gemm64AT(a.Cols, a.Cols, a.Rows, 1, a.Data, a.Cols, a.Data, a.Cols, 0, g.Data, a.Cols)
	return g
}

// FrobNorm returns the Frobenius norm.
func (m *Mat) FrobNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Col returns column j as a slice copy.
func (m *Mat) Col(j int) []float64 {
	c := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		c[i] = m.Data[i*m.Cols+j]
	}
	return c
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// offDiagNorm returns sqrt(sum of squares of off-diagonal elements).
func offDiagNorm(a *Mat) float64 {
	var s float64
	n := a.Rows
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				v := a.Data[i*n+j]
				s += v * v
			}
		}
	}
	return math.Sqrt(s)
}

// SymEig computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns the eigenvalues in descending order and
// a matrix whose columns are the corresponding orthonormal eigenvectors.
// The input is not modified.
func SymEig(a *Mat) (vals []float64, vecs *Mat) {
	if a.Rows != a.Cols {
		panic("linalg: SymEig requires a square matrix")
	}
	n := a.Rows
	w := a.Clone()
	v := Identity(n)
	scale := w.FrobNorm()
	if scale == 0 {
		scale = 1
	}
	const maxSweeps = 60
	tol := 1e-13 * scale
	for sweep := 0; sweep < maxSweeps && offDiagNorm(w) > tol; sweep++ {
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.Data[p*n+q]
				if math.Abs(apq) <= 1e-300 {
					continue
				}
				app := w.Data[p*n+p]
				aqq := w.Data[q*n+q]
				// Classic Jacobi rotation angle.
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Update W = Jᵀ W J on rows/cols p and q.
				for k := 0; k < n; k++ {
					wkp := w.Data[k*n+p]
					wkq := w.Data[k*n+q]
					w.Data[k*n+p] = c*wkp - s*wkq
					w.Data[k*n+q] = s*wkp + c*wkq
				}
				for k := 0; k < n; k++ {
					wpk := w.Data[p*n+k]
					wqk := w.Data[q*n+k]
					w.Data[p*n+k] = c*wpk - s*wqk
					w.Data[q*n+k] = s*wpk + c*wqk
				}
				for k := 0; k < n; k++ {
					vkp := v.Data[k*n+p]
					vkq := v.Data[k*n+q]
					v.Data[k*n+p] = c*vkp - s*vkq
					v.Data[k*n+q] = s*vkp + c*vkq
				}
			}
		}
	}
	// Collect and sort eigenpairs by descending eigenvalue.
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{w.Data[i*n+i], i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })
	vals = make([]float64, n)
	vecs = NewMat(n, n)
	for j, p := range pairs {
		vals[j] = p.val
		for i := 0; i < n; i++ {
			vecs.Data[i*n+j] = v.Data[i*n+p.idx]
		}
	}
	return vals, vecs
}
