package memplan

// Alias-aware storage planning (DESIGN.md §14). The classic planner gives
// every tensor its own arena region; this pass reclassifies tensors whose
// bytes can live inside another tensor's region:
//
//   - concat inputs become views at their row offset inside the concat
//     output, so producers write their rows directly into the destination
//     and the concat step stops copying them (VTC's virtual tensors);
//   - flatten outputs are identity views of their input;
//   - elementwise ops (relu, silu, sigmoid, batchnorm, add, softmax)
//     whose input storage is entirely at its last use run in place.
//
// The safety rule is conservative and proved per view, never guessed: a
// tensor may share storage only when every other tensor rooted at the same
// region is dead by the time the sharer's writer runs. Any condition that
// cannot be proved falls back to the copy. TEMCO_NOALIAS=1 (or
// SetAliasing(false)) disables the whole pass, mirroring TEMCO_NOSIMD:
// plans degrade to the classic one-region-per-tensor layout bit-for-bit.

import (
	"fmt"
	"os"

	"temco/internal/ir"
)

// aliasEnabled gates the alias-aware planner. Resolved from the
// environment once at init; tests flip it with SetAliasing.
var aliasEnabled = os.Getenv("TEMCO_NOALIAS") == ""

// AliasingEnabled reports whether alias-aware planning is active.
func AliasingEnabled() bool { return aliasEnabled }

// SetAliasing enables or disables alias-aware planning at runtime and
// returns the previous setting. It exists for tests and bisection
// (aliasing on vs off must be bit-identical; peak memory differs). Callers
// must not flip it concurrently with planning, and plans built under the
// old mode keep their storage classes.
func SetAliasing(on bool) bool {
	prev := aliasEnabled
	aliasEnabled = on
	return prev
}

// StorageClass says where a tensor's bytes live.
type StorageClass int

const (
	// StorageOwned tensors get their own arena region.
	StorageOwned StorageClass = iota
	// StorageView tensors live inside another tensor's region.
	StorageView
)

// Storage is one tensor's storage assignment. Views name their direct
// base and the byte offset of this tensor inside the base's tensor;
// chains (a view of a view) resolve through Root.
type Storage struct {
	Class   StorageClass
	Base    *ir.Node
	ByteOff int64
}

// AliasPlan maps every node of one (graph, batch) pair to its storage
// class. A nil *AliasPlan means aliasing is off and every tensor is owned.
type AliasPlan struct {
	Graph *ir.Graph
	Batch int
	// views holds the view assignments; absent nodes are owned.
	views map[*ir.Node]Storage
	// ConcatSkip marks, per concat node, the input indices whose rows are
	// views into the concat output (the concat step must not copy them).
	// Concats with no aliased inputs are absent.
	ConcatSkip map[*ir.Node][]bool
	// viewsOnRoot counts, per owned root, the nodes (other than the root)
	// resolving to its storage; a graph input with sharers cannot be
	// borrowed.
	viewsOnRoot map[*ir.Node]int

	// Views counts view-classed tensors; InPlace the subset that are
	// in-place elementwise results.
	Views   int
	InPlace int
	// EliminatedBytes is the memcpy the plan removes per run: the bytes of
	// aliased concat inputs and flatten views.
	EliminatedBytes int64
	// EliminatedCopies counts those removed copies.
	EliminatedCopies uint64
}

// StorageOf returns n's storage assignment (owned for nodes not in the
// plan and for nil plans).
func (p *AliasPlan) StorageOf(n *ir.Node) Storage {
	if p == nil {
		return Storage{Class: StorageOwned}
	}
	if s, ok := p.views[n]; ok {
		return s
	}
	return Storage{Class: StorageOwned}
}

// Root resolves n's storage to its owning tensor and n's byte offset
// inside it.
func (p *AliasPlan) Root(n *ir.Node) (*ir.Node, int64) {
	var off int64
	for {
		s := p.StorageOf(n)
		if s.Class == StorageOwned {
			return n, off
		}
		off += s.ByteOff
		n = s.Base
	}
}

// BorrowableInput reports whether graph input in's caller-provided buffer
// can be used directly by an arena executor instead of being copied in:
// the input must own its storage and nothing else may resolve to it (a
// view would read the arena region the borrow leaves unwritten; an
// in-place op would mutate the caller's tensor). A nil plan (aliasing
// off) keeps the legacy copy-in behavior.
func (p *AliasPlan) BorrowableInput(in *ir.Node) bool {
	if p == nil {
		return false
	}
	if p.StorageOf(in).Class != StorageOwned {
		return false
	}
	return p.viewsOnRoot[in] == 0
}

// inPlaceCandidates returns the inputs whose storage n's kernel may
// legally overwrite: ops that read element k of the candidate only to
// produce element k (before writing it), so running on shared storage
// reproduces the out-of-place result bit-for-bit — including under
// parallel workers, whose index ranges are disjoint.
func inPlaceCandidates(n *ir.Node) []*ir.Node {
	switch n.Kind {
	case ir.KindReLU, ir.KindSiLU, ir.KindSigmoid, ir.KindBatchNorm, ir.KindSoftmax:
		return n.Inputs[:1]
	case ir.KindAdd:
		// Either operand works: addRange reads a[i] and b[i] before
		// writing out[i].
		return n.Inputs
	default:
		return nil
	}
}

// BuildAliasPlan computes the storage assignment for g at the given batch
// size. It walks the schedule once, proving each candidate view with the
// liveness analysis; anything unproved stays owned (the executor copies).
// Returns nil when aliasing is disabled.
func BuildAliasPlan(g *ir.Graph, batch int) *AliasPlan {
	if !aliasEnabled {
		return nil
	}
	live := Analyze(g)
	p := &AliasPlan{
		Graph:       g,
		Batch:       batch,
		views:       make(map[*ir.Node]Storage),
		ConcatSkip:  make(map[*ir.Node][]bool),
		viewsOnRoot: make(map[*ir.Node]int),
	}
	// group lists, per owned root, every node resolving to its storage
	// (the root included). Merged when a root is re-based into a concat.
	group := make(map[*ir.Node][]*ir.Node)
	members := func(r *ir.Node) []*ir.Node {
		if m, ok := group[r]; ok {
			return m
		}
		return []*ir.Node{r}
	}
	// setView classes n as a view of base. If n was itself a root with
	// views (re-basing a concat input), its whole group moves along.
	setView := func(n, base *ir.Node, off int64) {
		p.views[n] = Storage{Class: StorageView, Base: base, ByteOff: off}
		r, _ := p.Root(base)
		moved := members(n)
		group[r] = append(members(r), moved...)
		delete(group, n)
		p.viewsOnRoot[r] += len(moved)
		delete(p.viewsOnRoot, n) // n is no longer a root
	}
	// deadBy reports whether every tensor sharing root r's storage is past
	// its last use at schedule slot i — the safety rule: the region may be
	// overwritten at slot i only if no sharer is read at or after slot i.
	// Graph outputs have End == len(Nodes) and therefore never pass.
	deadBy := func(r *ir.Node, i int) bool {
		for _, m := range members(r) {
			if live.End[m] > i {
				return false
			}
		}
		return true
	}

	for i, n := range g.Nodes {
		switch {
		case n.Kind == ir.KindFlatten:
			// Pure reshape: same bytes, same order. Always a view; reads
			// of the view are reads of the base, and any later writer of
			// the shared region is guarded by deadBy below.
			setView(n, n.Inputs[0], 0)
			p.Views++
			p.EliminatedBytes += n.OutBytes(batch)
			p.EliminatedCopies++

		case n.Kind == ir.KindConcat && batch == 1:
			// Channel concat rows are contiguous per sample only at batch
			// 1; at larger batches samples interleave and a flat view
			// cannot represent an input, so the copy stays.
			skip := make([]bool, len(n.Inputs))
			var off int64
			var any bool
			for j, x := range n.Inputs {
				sz := x.OutBytes(batch)
				// x must still own its storage: a tensor already living
				// inside another region (an earlier concat, an in-place
				// chain) cannot be relocated, and a repeated input
				// (concat(x,x)) aliases only its first occurrence.
				if p.StorageOf(x).Class == StorageOwned {
					setView(x, n, off)
					skip[j] = true
					any = true
					p.Views++
					p.EliminatedBytes += sz
					p.EliminatedCopies++
				}
				off += sz
			}
			if any {
				p.ConcatSkip[n] = skip
			}

		default:
			for _, cand := range inPlaceCandidates(n) {
				if n.OutBytes(batch) != cand.OutBytes(batch) {
					continue
				}
				r, _ := p.Root(cand)
				// The kernel overwrites the whole region: legal only when
				// every sharer (the candidate itself included — so this
				// must be its last use) is dead once slot i runs.
				if !deadBy(r, i) {
					continue
				}
				setView(n, cand, 0)
				p.Views++
				p.InPlace++
				break
			}
		}
	}
	return p
}

// groupInterval is the extended liveness of one owned root: from the
// first definition of any sharer (producers write their rows into the
// region before the root's own slot) through the last use of any sharer.
func (p *AliasPlan) groupIntervals(live Liveness, nNodes int) map[*ir.Node][2]int {
	iv := make(map[*ir.Node][2]int)
	for _, n := range p.Graph.Nodes {
		r, _ := p.Root(n)
		b, e := live.Begin[n], live.End[n]
		if e > nNodes {
			e = nNodes
		}
		cur, ok := iv[r]
		if !ok {
			cur = [2]int{b, e}
		} else {
			if b < cur[0] {
				cur[0] = b
			}
			if e > cur[1] {
				cur[1] = e
			}
		}
		iv[r] = cur
	}
	return iv
}

// Validate checks the plan's structural invariants: every view chain
// resolves to an owned root, and every view's bytes fit inside its root at
// the declared offset. Planning bugs must fail loudly, not corrupt
// inference.
func (p *AliasPlan) Validate() error {
	if p == nil {
		return nil
	}
	for _, n := range p.Graph.Nodes {
		r, off := p.Root(n)
		if p.StorageOf(r).Class != StorageOwned {
			return fmt.Errorf("memplan: alias root %s of %s is not owned", r, n)
		}
		if off < 0 || off%4 != 0 {
			return fmt.Errorf("memplan: view %s has bad offset %d in %s", n, off, r)
		}
		if off+n.OutBytes(p.Batch) > r.OutBytes(p.Batch) {
			return fmt.Errorf("memplan: view %s [%d,+%d) exceeds root %s (%d bytes)",
				n, off, n.OutBytes(p.Batch), r, r.OutBytes(p.Batch))
		}
	}
	return nil
}

// SimulateAlias replays g's schedule like Simulate, but charges storage
// per owned region over its extended lifetime: a root's bytes are live
// from the first definition of any sharer through the last use of any
// sharer, and views contribute nothing of their own. With a nil plan it
// reproduces Simulate exactly. The result's PeakInternal is the live-byte
// floor an alias-aware arena layout must cover.
func SimulateAlias(g *ir.Graph, batch, skipThreshold int, plan *AliasPlan) Profile {
	if plan == nil {
		return Simulate(g, batch, skipThreshold)
	}
	if skipThreshold <= 0 {
		skipThreshold = DefaultSkipThreshold
	}
	live := Analyze(g)
	iv := plan.groupIntervals(live, len(g.Nodes))
	p := Profile{Graph: g, Batch: batch, WeightBytes: g.WeightBytes()}
	allocAt := make([][]*ir.Node, len(g.Nodes)+1)
	freeAt := make([][]*ir.Node, len(g.Nodes)+1)
	for r, be := range iv {
		allocAt[be[0]] = append(allocAt[be[0]], r)
		freeAt[be[1]] = append(freeAt[be[1]], r)
	}
	isSkip := func(n *ir.Node) bool { return live.Lifespan(n) > skipThreshold }
	var cur, curSkip int64
	for i, n := range g.Nodes {
		for _, r := range allocAt[i] {
			b := r.OutBytes(batch)
			cur += b
			if isSkip(r) {
				curSkip += b
			}
		}
		ws := Workspace(n, batch)
		p.Events = append(p.Events, Event{Index: i, Name: n.Name, Kind: n.Kind,
			LiveBytes: cur, SkipBytes: curSkip, WorkspaceBytes: ws})
		if cur > p.PeakInternal {
			p.PeakInternal = cur
			p.PeakSkipBytes = curSkip
			p.PeakIndex = i
		}
		if cur+ws > p.PeakWithWorkspace {
			p.PeakWithWorkspace = cur + ws
		}
		for _, r := range freeAt[i] {
			b := r.OutBytes(batch)
			cur -= b
			if isSkip(r) {
				curSkip -= b
			}
		}
	}
	return p
}
