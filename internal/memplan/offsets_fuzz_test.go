package memplan

// Property-based check of the static arena layout: for arbitrary graphs,
// AssignOffsets must place every pair of simultaneously-live tensors in
// disjoint byte ranges — except where the alias plan *declares* an overlap
// (a view inside its root's region, at exactly the declared offset) — and
// the arena it claims must sit between the simulator's live-byte peak
// (Eq. 3/4 lower bound) and the no-reuse sum of all tensor sizes. Both the
// default (alias-aware) and the explicit no-alias layout are checked. The
// fuzz corpus doubles as a regression suite under plain `go test` (seed
// entries run without -fuzz).

import (
	"testing"

	"temco/internal/ir"
)

// fuzzGraph decodes a byte string into a graph: each byte appends one
// layer to a chain whose recent nodes can also be rejoined through Add,
// Concat, and skip-style reuse, so liveness intervals genuinely overlap.
// Every decode is total — any byte string yields a valid graph.
func fuzzGraph(data []byte) *ir.Graph {
	b := ir.NewBuilder("fuzz", 1)
	// Small spatial dims keep OutBytes varied but cheap.
	cur := b.Input(int(data[0]%7)+1, 8, 8)
	recent := []*ir.Node{cur}
	spatial := 8 // track H=W so pooling never underflows
	for _, op := range data[1:] {
		switch op % 10 {
		case 0:
			cur = b.Conv(cur, int(op/10)%8+1, 3, 1, 1)
		case 1:
			cur = b.Conv(cur, int(op/10)%8+1, 1, 1, 0)
		case 2:
			cur = b.ReLU(cur)
		case 3:
			cur = b.BatchNorm(cur)
		case 4:
			if spatial >= 2 {
				cur = b.MaxPool(cur, 2, 2)
				spatial /= 2
			} else {
				cur = b.SiLU(cur)
			}
		case 5:
			if spatial <= 8 {
				cur = b.Upsample(cur, 2)
				spatial *= 2
			} else {
				cur = b.Sigmoid(cur)
			}
		case 6:
			// Skip-style rejoin: Add needs identical shapes, so add a
			// same-shape conv of cur instead of an older node.
			cur = b.Add(cur, b.Conv(cur, cur.Shape[0], 3, 1, 1))
		case 7:
			// Concat with an earlier same-spatial node when one exists.
			prev := cur
			for _, r := range recent {
				if r.Shape[1] == cur.Shape[1] && r.Shape[2] == cur.Shape[2] {
					prev = r
					break
				}
			}
			cur = b.Concat(cur, prev)
		case 8:
			cur = b.SiLU(cur)
		case 9:
			cur = b.Conv(cur, int(op/10)%4+1, 3, 2, 1)
			spatial = (spatial + 1) / 2
			if spatial < 1 {
				spatial = 1
			}
		}
		recent = append(recent, cur)
		if len(recent) > 4 {
			recent = recent[1:]
		}
	}
	b.Output(cur)
	return b.G
}

func checkAssignment(t *testing.T, g *ir.Graph, batch int) {
	t.Helper()
	checkLayout(t, g, AssignOffsets(g, batch), batch)
	// The explicit baseline must satisfy the same properties with every
	// tensor owned — and must really be alias-free.
	na := AssignOffsetsNoAlias(g, batch)
	if na.Alias != nil {
		t.Fatalf("AssignOffsetsNoAlias carries an alias plan")
	}
	checkLayout(t, g, na, batch)
}

func checkLayout(t *testing.T, g *ir.Graph, a Assignment, batch int) {
	t.Helper()
	if err := a.Check(); err != nil {
		t.Fatalf("batch %d: %v", batch, err)
	}
	// Independent re-derivation of the overlap properties, not trusting
	// Check's interval math: walk the declared view chains one hop at a
	// time (bounded, so a cyclic plan fails instead of hanging) to find
	// every node's storage root and offset inside it.
	live := Analyze(g)
	rootOf := make(map[*ir.Node]*ir.Node, len(g.Nodes))
	relOf := make(map[*ir.Node]int64, len(g.Nodes))
	for _, n := range g.Nodes {
		r, rel := n, int64(0)
		for hops := 0; ; hops++ {
			if hops > len(g.Nodes) {
				t.Fatalf("view chain from %s does not terminate", n)
			}
			s := a.Alias.StorageOf(r)
			if s.Class == StorageOwned {
				break
			}
			rel += s.ByteOff
			r = s.Base
		}
		rootOf[n], relOf[n] = r, rel
	}
	var sum int64
	for _, n := range g.Nodes {
		off, ok := a.Offsets[n]
		if !ok {
			t.Fatalf("node %s has no offset", n)
		}
		if off < 0 || off%4 != 0 {
			t.Fatalf("node %s offset %d: negative or unaligned", n, off)
		}
		size := n.OutBytes(batch)
		sum += size
		if off+size > a.ArenaBytes {
			t.Fatalf("node %s [%d, %d) exceeds arena %d", n, off, off+size, a.ArenaBytes)
		}
		// A view's overlap is accepted only as declared: exactly at its
		// offset inside the root, fully contained.
		r := rootOf[n]
		if off != a.Offsets[r]+relOf[n] {
			t.Fatalf("view %s at %d, declared %d inside root %s at %d",
				n, off, relOf[n], r, a.Offsets[r])
		}
		if relOf[n]+size > r.OutBytes(batch) {
			t.Fatalf("view %s [%d,+%d) overflows root %s (%d bytes)",
				n, relOf[n], size, r, r.OutBytes(batch))
		}
	}
	// Any *accidental* overlap — two simultaneously-live tensors on
	// distinct storage roots sharing bytes — is rejected.
	for i, n := range g.Nodes {
		nb, ne := live.Begin[n], live.End[n]
		for _, m := range g.Nodes[i+1:] {
			if rootOf[n] == rootOf[m] {
				continue // declared sharing, verified exact above
			}
			mb, me := live.Begin[m], live.End[m]
			if nb > me || mb > ne {
				continue // lifetimes disjoint: may share bytes
			}
			no, mo := a.Offsets[n], a.Offsets[m]
			if no < mo+m.OutBytes(batch) && mo < no+n.OutBytes(batch) {
				t.Fatalf("live-overlapping %s [%d,+%d) and %s [%d,+%d) share arena bytes",
					n, no, n.OutBytes(batch), m, mo, m.OutBytes(batch))
			}
		}
	}
	// Stronger root-level restatement: owned regions must stay disjoint
	// over their *extended* intervals (a root is busy from the first
	// definition of any sharer — producers write their concat rows before
	// the concat's own slot — through the last use of any sharer).
	ivs := make(map[*ir.Node][2]int)
	for _, n := range g.Nodes {
		r := rootOf[n]
		b, e := live.Begin[n], live.End[n]
		if e > len(g.Nodes) {
			e = len(g.Nodes)
		}
		cur, ok := ivs[r]
		if !ok {
			cur = [2]int{b, e}
		} else {
			if b < cur[0] {
				cur[0] = b
			}
			if e > cur[1] {
				cur[1] = e
			}
		}
		ivs[r] = cur
	}
	roots := make([]*ir.Node, 0, len(ivs))
	for r := range ivs {
		roots = append(roots, r)
	}
	for i, n := range roots {
		for _, m := range roots[i+1:] {
			if ivs[n][0] > ivs[m][1] || ivs[m][0] > ivs[n][1] {
				continue
			}
			no, mo := a.Offsets[n], a.Offsets[m]
			if no < mo+m.OutBytes(batch) && mo < no+n.OutBytes(batch) {
				t.Fatalf("busy-overlapping roots %s and %s share arena bytes", n, m)
			}
		}
	}
	if a.ArenaBytes < a.PeakInternal {
		t.Fatalf("arena %d below the simulated live-byte peak %d", a.ArenaBytes, a.PeakInternal)
	}
	if a.ArenaBytes > sum {
		t.Fatalf("arena %d exceeds the no-reuse total %d", a.ArenaBytes, sum)
	}
	p := SimulateAlias(g, batch, 0, a.Alias)
	if a.PeakInternal != p.PeakInternal {
		t.Fatalf("assignment peak %d disagrees with simulator %d", a.PeakInternal, p.PeakInternal)
	}
	if a.Alias == nil {
		// Without a plan the alias simulator must reduce to the classic one.
		if s := Simulate(g, batch, 0); s.PeakInternal != p.PeakInternal {
			t.Fatalf("SimulateAlias(nil) peak %d disagrees with Simulate %d", p.PeakInternal, s.PeakInternal)
		}
	}
}

func FuzzAssignOffsets(f *testing.F) {
	f.Add([]byte{3, 0, 22, 64, 17, 96, 41, 7, 250, 13})
	f.Add([]byte{1, 6, 6, 7, 4, 0, 5, 7, 9, 2, 3, 66, 77, 88})
	f.Add([]byte{5})
	f.Add([]byte{255, 9, 9, 9, 4, 4, 4, 7, 6, 1, 0, 128, 200, 33, 14})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 48 {
			t.Skip() // empty has no input byte; long chains just cost time
		}
		g := fuzzGraph(data)
		if err := g.Validate(); err != nil {
			t.Fatalf("generator produced an invalid graph: %v", err)
		}
		for _, batch := range []int{1, 3} {
			checkAssignment(t, g, batch)
		}
	})
}
