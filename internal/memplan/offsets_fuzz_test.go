package memplan

// Property-based check of the static arena layout: for arbitrary graphs,
// AssignOffsets must place every pair of simultaneously-live tensors in
// disjoint byte ranges, and the arena it claims must sit between the
// simulator's live-byte peak (Eq. 3/4 lower bound) and the no-reuse sum of
// all tensor sizes. The fuzz corpus doubles as a regression suite under
// plain `go test` (seed entries run without -fuzz).

import (
	"testing"

	"temco/internal/ir"
)

// fuzzGraph decodes a byte string into a graph: each byte appends one
// layer to a chain whose recent nodes can also be rejoined through Add,
// Concat, and skip-style reuse, so liveness intervals genuinely overlap.
// Every decode is total — any byte string yields a valid graph.
func fuzzGraph(data []byte) *ir.Graph {
	b := ir.NewBuilder("fuzz", 1)
	// Small spatial dims keep OutBytes varied but cheap.
	cur := b.Input(int(data[0]%7)+1, 8, 8)
	recent := []*ir.Node{cur}
	spatial := 8 // track H=W so pooling never underflows
	for _, op := range data[1:] {
		switch op % 10 {
		case 0:
			cur = b.Conv(cur, int(op/10)%8+1, 3, 1, 1)
		case 1:
			cur = b.Conv(cur, int(op/10)%8+1, 1, 1, 0)
		case 2:
			cur = b.ReLU(cur)
		case 3:
			cur = b.BatchNorm(cur)
		case 4:
			if spatial >= 2 {
				cur = b.MaxPool(cur, 2, 2)
				spatial /= 2
			} else {
				cur = b.SiLU(cur)
			}
		case 5:
			if spatial <= 8 {
				cur = b.Upsample(cur, 2)
				spatial *= 2
			} else {
				cur = b.Sigmoid(cur)
			}
		case 6:
			// Skip-style rejoin: Add needs identical shapes, so add a
			// same-shape conv of cur instead of an older node.
			cur = b.Add(cur, b.Conv(cur, cur.Shape[0], 3, 1, 1))
		case 7:
			// Concat with an earlier same-spatial node when one exists.
			prev := cur
			for _, r := range recent {
				if r.Shape[1] == cur.Shape[1] && r.Shape[2] == cur.Shape[2] {
					prev = r
					break
				}
			}
			cur = b.Concat(cur, prev)
		case 8:
			cur = b.SiLU(cur)
		case 9:
			cur = b.Conv(cur, int(op/10)%4+1, 3, 2, 1)
			spatial = (spatial + 1) / 2
			if spatial < 1 {
				spatial = 1
			}
		}
		recent = append(recent, cur)
		if len(recent) > 4 {
			recent = recent[1:]
		}
	}
	b.Output(cur)
	return b.G
}

func checkAssignment(t *testing.T, g *ir.Graph, batch int) {
	t.Helper()
	a := AssignOffsets(g, batch)
	if err := a.Check(); err != nil {
		t.Fatalf("batch %d: %v", batch, err)
	}
	// Independent re-derivation of the non-overlap property, not trusting
	// Check's interval math.
	live := Analyze(g)
	var sum int64
	for _, n := range g.Nodes {
		off, ok := a.Offsets[n]
		if !ok {
			t.Fatalf("node %s has no offset", n)
		}
		if off < 0 || off%4 != 0 {
			t.Fatalf("node %s offset %d: negative or unaligned", n, off)
		}
		size := n.OutBytes(batch)
		sum += size
		if off+size > a.ArenaBytes {
			t.Fatalf("node %s [%d, %d) exceeds arena %d", n, off, off+size, a.ArenaBytes)
		}
	}
	for i, n := range g.Nodes {
		nb, ne := live.Begin[n], live.End[n]
		for _, m := range g.Nodes[i+1:] {
			mb, me := live.Begin[m], live.End[m]
			if nb > me || mb > ne {
				continue // lifetimes disjoint: may share bytes
			}
			no, mo := a.Offsets[n], a.Offsets[m]
			if no < mo+m.OutBytes(batch) && mo < no+n.OutBytes(batch) {
				t.Fatalf("live-overlapping %s [%d,+%d) and %s [%d,+%d) share arena bytes",
					n, no, n.OutBytes(batch), m, mo, m.OutBytes(batch))
			}
		}
	}
	if a.ArenaBytes < a.PeakInternal {
		t.Fatalf("arena %d below the simulated live-byte peak %d", a.ArenaBytes, a.PeakInternal)
	}
	if a.ArenaBytes > sum {
		t.Fatalf("arena %d exceeds the no-reuse total %d", a.ArenaBytes, sum)
	}
	p := Simulate(g, batch, 0)
	if a.PeakInternal != p.PeakInternal {
		t.Fatalf("assignment peak %d disagrees with simulator %d", a.PeakInternal, p.PeakInternal)
	}
}

func FuzzAssignOffsets(f *testing.F) {
	f.Add([]byte{3, 0, 22, 64, 17, 96, 41, 7, 250, 13})
	f.Add([]byte{1, 6, 6, 7, 4, 0, 5, 7, 9, 2, 3, 66, 77, 88})
	f.Add([]byte{5})
	f.Add([]byte{255, 9, 9, 9, 4, 4, 4, 7, 6, 1, 0, 128, 200, 33, 14})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 48 {
			t.Skip() // empty has no input byte; long chains just cost time
		}
		g := fuzzGraph(data)
		if err := g.Validate(); err != nil {
			t.Fatalf("generator produced an invalid graph: %v", err)
		}
		for _, batch := range []int{1, 3} {
			checkAssignment(t, g, batch)
		}
	})
}
