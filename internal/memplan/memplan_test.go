package memplan

import (
	"testing"

	"temco/internal/ir"
	"temco/internal/tensor"
)

// TestEquation3 checks the simulator against the paper's closed-form peak
// for two convolutions with an activation between them (Eq. (3)):
// MAX(CHW + C'H'W', 2C'H'W', C'H'W' + C”H”W”).
func TestEquation3(t *testing.T) {
	b := ir.NewBuilder("eq3", 1)
	in := b.Input(8, 16, 16)      // C=8,  H=W=16
	c1 := b.Conv(in, 32, 3, 2, 1) // C'=32, H'=W'=8
	r := b.ReLU(c1)               //
	c2 := b.Conv(r, 16, 3, 2, 1)  // C''=16, H''=W''=4
	b.Output(c2)

	const batch = 4
	p := Simulate(b.G, batch, 0)
	chw := int64(8*16*16) * 4 * batch
	c1hw := int64(32*8*8) * 4 * batch
	c2hw := int64(16*4*4) * 4 * batch
	want := chw + c1hw // the first term dominates here
	if m := 2 * c1hw; m > want {
		want = m
	}
	if m := c1hw + c2hw; m > want {
		want = m
	}
	if p.PeakInternal != want {
		t.Fatalf("peak = %d, Eq.(3) says %d", p.PeakInternal, want)
	}
}

// TestEquation4 checks the decomposed sequence peak against Eq. (4): the
// activation's 2C'H'W' term dominates once the reduced channels are small.
func TestEquation4(t *testing.T) {
	b := ir.NewBuilder("eq4", 1)
	C, C1, C2, Cp, C3, C4, Cpp := 64, 6, 6, 64, 6, 6, 64
	in := b.Input(C, 16, 16)
	f1 := b.ConvNamed("f1", in, C1, 1, 1, 1, 1, 0, 0, 1)
	k1 := b.ConvNamed("k1", f1, C2, 3, 3, 1, 1, 1, 1, 1)
	l1 := b.ConvNamed("l1", k1, Cp, 1, 1, 1, 1, 0, 0, 1)
	r := b.ReLU(l1)
	f2 := b.ConvNamed("f2", r, C3, 1, 1, 1, 1, 0, 0, 1)
	k2 := b.ConvNamed("k2", f2, C4, 3, 3, 1, 1, 1, 1, 1)
	l2 := b.ConvNamed("l2", k2, Cpp, 1, 1, 1, 1, 0, 0, 1)
	b.Output(l2)

	const batch = 4
	p := Simulate(b.G, batch, 0)
	px := int64(16*16) * 4 * batch
	terms := []int64{
		int64(C)*px + int64(C1)*px,
		int64(C1)*px + int64(C2)*px,
		int64(C2)*px + int64(Cp)*px,
		2 * int64(Cp) * px,
		int64(Cp)*px + int64(C3)*px,
		int64(C3)*px + int64(C4)*px,
		int64(C4)*px + int64(Cpp)*px,
	}
	var want int64
	for _, v := range terms {
		if v > want {
			want = v
		}
	}
	if p.PeakInternal != want {
		t.Fatalf("peak = %d, Eq.(4) says %d", p.PeakInternal, want)
	}
	// With tiny reduced channels the activation term 2C'H'W' must be the
	// argmax, as the paper argues in §2.2.
	if want != 2*int64(Cp)*px {
		t.Fatalf("test setup wrong: activation term should dominate")
	}
	// And the peak event should be the relu.
	if p.Events[p.PeakIndex].Kind != ir.KindReLU {
		t.Fatalf("peak at %v, want the activation layer", p.Events[p.PeakIndex].Name)
	}
}

func TestLivenessBasics(t *testing.T) {
	b := ir.NewBuilder("lv", 1)
	in := b.Input(4, 4, 4) // 0
	r1 := b.ReLU(in)       // 1
	r2 := b.ReLU(r1)       // 2
	r3 := b.ReLU(r2)       // 3
	a := b.Add(r3, r1)     // 4: r1 is a skip connection
	b.Output(a)
	l := Analyze(b.G)
	if l.Begin[r1] != 1 || l.End[r1] != 4 {
		t.Fatalf("r1 liveness = [%d,%d], want [1,4]", l.Begin[r1], l.End[r1])
	}
	if l.Lifespan(r1) != 3 {
		t.Fatalf("r1 lifespan = %d, want 3", l.Lifespan(r1))
	}
	if l.Lifespan(r2) != 1 {
		t.Fatalf("r2 lifespan = %d, want 1", l.Lifespan(r2))
	}
	// Graph output stays live to the end.
	if l.End[a] != len(b.G.Nodes) {
		t.Fatalf("output end = %d, want %d", l.End[a], len(b.G.Nodes))
	}
	// A node with no uses dies at its own slot.
	dead := b.Sigmoid(in)
	l2 := Analyze(b.G)
	if l2.Lifespan(dead) != 0 {
		t.Fatalf("unused node lifespan = %d, want 0", l2.Lifespan(dead))
	}
}

func TestSkipBytesAccounting(t *testing.T) {
	b := ir.NewBuilder("skip", 1)
	in := b.Input(4, 8, 8)
	r1 := b.ReLU(in)
	r2 := b.ReLU(r1)
	r3 := b.ReLU(r2)
	r4 := b.ReLU(r3)
	a := b.Add(r4, r1) // r1 lives across 4 slots → skip
	b.Output(a)
	p := Simulate(b.G, 1, 2)
	// At the add (last event), live tensors are r1, r4, a; only r1 has
	// lifespan > 2 (a is defined one slot from the end, lifespan 1).
	last := p.Events[len(p.Events)-1]
	tb := int64(4*8*8) * 4
	if last.SkipBytes != tb { // r1 only
		t.Fatalf("SkipBytes = %d, want %d", last.SkipBytes, tb)
	}
	if last.LiveBytes != 3*tb {
		t.Fatalf("LiveBytes = %d, want %d", last.LiveBytes, 3*tb)
	}
}

func TestBatchScalesInternalNotWeights(t *testing.T) {
	b := ir.NewBuilder("batch", 1)
	in := b.Input(8, 8, 8)
	c := b.Conv(in, 16, 3, 1, 1)
	b.Output(c)
	p1 := Simulate(b.G, 1, 0)
	p4 := Simulate(b.G, 4, 0)
	if p4.PeakInternal != 4*p1.PeakInternal {
		t.Fatalf("internal bytes must scale with batch: %d vs %d", p1.PeakInternal, p4.PeakInternal)
	}
	if p4.WeightBytes != p1.WeightBytes {
		t.Fatal("weight bytes must not scale with batch")
	}
}

func TestFusedWorkspaceCharged(t *testing.T) {
	b := ir.NewBuilder("ws", 1)
	in := b.Input(8, 16, 16)
	fa := &ir.FusedAttrs{InC: 8, MidC: 64, OutC: 8, Act: ir.KindReLU,
		LW: tensor.New(64, 8, 1, 1), FW: tensor.New(8, 64, 1, 1)}
	f := b.G.Apply(ir.KindFused, "fused", fa, in)
	b.Output(f)
	p := Simulate(b.G, 1, 0)
	var ev Event
	for _, e := range p.Events {
		if e.Kind == ir.KindFused {
			ev = e
		}
	}
	if ev.WorkspaceBytes <= 0 {
		t.Fatal("fused node must charge workspace")
	}
	if p.PeakWithWorkspace < p.PeakInternal {
		t.Fatal("PeakWithWorkspace must be ≥ PeakInternal")
	}
}

func TestEventsCoverSchedule(t *testing.T) {
	b := ir.NewBuilder("ev", 1)
	in := b.Input(2, 4, 4)
	x := in
	for i := 0; i < 5; i++ {
		x = b.ReLU(x)
	}
	b.Output(x)
	p := Simulate(b.G, 1, 0)
	if len(p.Events) != len(b.G.Nodes) {
		t.Fatalf("events = %d, nodes = %d", len(p.Events), len(b.G.Nodes))
	}
	// Memory must return to just the live output + nothing else at the end:
	// last event live = x's own bytes + its input (freed after).
	if p.Events[len(p.Events)-1].LiveBytes <= 0 {
		t.Fatal("live bytes must stay positive while executing")
	}
}
