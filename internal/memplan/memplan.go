// Package memplan implements tensor liveness analysis and a peak-memory
// simulator for layer graphs. The simulator replays the schedule with the
// allocate-on-define / free-after-last-use discipline the paper ascribes to
// deep learning frameworks (§2.2): the peak memory usage of internal
// tensors is the maximum over layers of the bytes live while that layer
// runs — exactly the MAX expressions of paper Eq. (3) and Eq. (4).
package memplan

import (
	"temco/internal/ir"
	"temco/internal/ops"
)

// Liveness holds, for every node, the schedule index where its output is
// defined and the index of its last use (paper Alg. 1 lines 11-16). Outputs
// of the graph stay live to the end of the schedule.
type Liveness struct {
	Begin map[*ir.Node]int
	End   map[*ir.Node]int
}

// Analyze computes tensor liveness over g's schedule.
func Analyze(g *ir.Graph) Liveness {
	l := Liveness{
		Begin: make(map[*ir.Node]int, len(g.Nodes)),
		End:   make(map[*ir.Node]int, len(g.Nodes)),
	}
	for i, n := range g.Nodes {
		l.Begin[n] = i
		l.End[n] = i // a tensor with no uses dies where it is defined
		for _, in := range n.Inputs {
			l.End[in] = i
		}
	}
	for _, o := range g.Outputs {
		l.End[o] = len(g.Nodes) // survives the whole inference
	}
	return l
}

// Lifespan returns End-Begin for node n: the paper's DISTANCE between a
// tensor's definition and its last use.
func (l Liveness) Lifespan(n *ir.Node) int {
	return l.End[n] - l.Begin[n]
}

// Event records the memory state right after one layer executes.
type Event struct {
	Index int
	Name  string
	Kind  ir.Kind
	// LiveBytes is the internal-tensor memory live while this layer runs
	// (inputs + own output + everything else still alive).
	LiveBytes int64
	// SkipBytes is the portion of LiveBytes held by long-lived tensors
	// (lifespan > the threshold passed to Simulate) — the skip-connection
	// share plotted in paper Fig. 4a.
	SkipBytes int64
	// WorkspaceBytes is kernel scratch (fused-kernel tiles) charged while
	// this layer runs.
	WorkspaceBytes int64
}

// Profile is the result of replaying a schedule.
type Profile struct {
	Graph *ir.Graph
	Batch int
	// Events has one entry per node in schedule order.
	Events []Event
	// PeakInternal is the maximum LiveBytes over all events: the paper's
	// "peak memory usage by internal tensors".
	PeakInternal int64
	// PeakWithWorkspace is the maximum of LiveBytes+WorkspaceBytes.
	PeakWithWorkspace int64
	// PeakSkipBytes is SkipBytes at the peak event.
	PeakSkipBytes int64
	// PeakIndex is the event index where PeakInternal occurs (first hit).
	PeakIndex int
	// WeightBytes is the (batch-independent) parameter footprint.
	WeightBytes int64
}

// Workspace returns the scratch bytes node n's kernel needs beyond its
// input/output tensors. Only fused kernels use scratch.
func Workspace(n *ir.Node, batch int) int64 {
	if n.Kind == ir.KindFused {
		return ops.FusedWorkspaceBytes(n.Fused())
	}
	return 0
}

// Simulate replays g's schedule at the given batch size. skipThreshold is
// the lifespan (in schedule slots) beyond which a tensor is counted as a
// skip connection for the SkipBytes split; pass 0 to use DefaultSkipThreshold.
func Simulate(g *ir.Graph, batch, skipThreshold int) Profile {
	if skipThreshold <= 0 {
		skipThreshold = DefaultSkipThreshold
	}
	live := Analyze(g)
	p := Profile{Graph: g, Batch: batch, WeightBytes: g.WeightBytes()}
	var cur, curSkip int64
	// freeAt[i] lists nodes whose last use is schedule slot i.
	freeAt := make([][]*ir.Node, len(g.Nodes)+1)
	for _, n := range g.Nodes {
		e := live.End[n]
		if e > len(g.Nodes) {
			e = len(g.Nodes)
		}
		freeAt[e] = append(freeAt[e], n)
	}
	isSkip := func(n *ir.Node) bool { return live.Lifespan(n) > skipThreshold }
	for i, n := range g.Nodes {
		b := n.OutBytes(batch)
		cur += b
		if isSkip(n) {
			curSkip += b
		}
		ws := Workspace(n, batch)
		ev := Event{Index: i, Name: n.Name, Kind: n.Kind, LiveBytes: cur, SkipBytes: curSkip, WorkspaceBytes: ws}
		p.Events = append(p.Events, ev)
		if cur > p.PeakInternal {
			p.PeakInternal = cur
			p.PeakSkipBytes = curSkip
			p.PeakIndex = i
		}
		if cur+ws > p.PeakWithWorkspace {
			p.PeakWithWorkspace = cur + ws
		}
		// Free tensors whose last use was this layer.
		for _, d := range freeAt[i] {
			cur -= d.OutBytes(batch)
			if isSkip(d) {
				curSkip -= d.OutBytes(batch)
			}
		}
	}
	return p
}

// DefaultSkipThreshold is the lifespan (schedule slots) beyond which a
// tensor counts as a skip connection. A tensor consumed by the next layer
// has lifespan 1; one that also feeds the layer after that has 2; anything
// longer is held across unrelated computation.
const DefaultSkipThreshold = 2
