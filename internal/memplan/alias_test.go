package memplan

import (
	"testing"

	"temco/internal/ir"
)

// withAliasing runs f with the aliasing switch forced to on, restoring the
// ambient setting afterwards (the suite may run under TEMCO_NOALIAS=1).
func withAliasing(t *testing.T, on bool, f func()) {
	t.Helper()
	prev := SetAliasing(on)
	defer SetAliasing(prev)
	f()
}

// TestAliasInPlaceChain: conv → relu → silu. Both elementwise results must
// run in place on the conv's region (each input is at its last use), so
// the whole chain owns exactly one region.
func TestAliasInPlaceChain(t *testing.T) {
	withAliasing(t, true, func() {
		b := ir.NewBuilder("chain", 1)
		in := b.Input(4, 8, 8)
		c := b.Conv(in, 4, 3, 1, 1)
		r := b.ReLU(c)
		s := b.SiLU(r)
		b.Output(s)
		p := BuildAliasPlan(b.G, 1)
		if p == nil {
			t.Fatal("aliasing enabled but plan is nil")
		}
		if p.InPlace != 2 {
			t.Fatalf("InPlace = %d, want 2 (relu and silu)", p.InPlace)
		}
		for _, n := range []*ir.Node{r, s} {
			if root, off := p.Root(n); root != c || off != 0 {
				t.Fatalf("%s roots at %s+%d, want %s+0", n, root, off, c)
			}
		}
		a := AssignOffsets(b.G, 1)
		if err := a.Check(); err != nil {
			t.Fatal(err)
		}
		if a.Offsets[r] != a.Offsets[c] || a.Offsets[s] != a.Offsets[c] {
			t.Fatalf("in-place chain not colocated: conv %d relu %d silu %d",
				a.Offsets[c], a.Offsets[r], a.Offsets[s])
		}
	})
}

// TestAliasInPlaceRefusedWhileLive: relu's input feeds both the relu and a
// later add — overwriting it in place would corrupt the add's operand, so
// the plan must keep the relu owned.
func TestAliasInPlaceRefusedWhileLive(t *testing.T) {
	withAliasing(t, true, func() {
		b := ir.NewBuilder("livein", 1)
		in := b.Input(4, 8, 8)
		c := b.Conv(in, 4, 3, 1, 1)
		r := b.ReLU(c) // c still live: read again by the add below
		a := b.Add(r, c)
		b.Output(a)
		p := BuildAliasPlan(b.G, 1)
		if got := p.StorageOf(r).Class; got != StorageOwned {
			t.Fatalf("relu overwrites a live tensor: storage class %v, want owned", got)
		}
		// The add's inputs r and c both die at the add, so the add itself
		// may run in place on either.
		if got := p.StorageOf(a).Class; got != StorageView {
			t.Fatalf("add of two dying tensors stayed owned")
		}
	})
}

// TestAliasGraphOutputNeverOverwritten: a graph output is read after the
// schedule ends (End == len(Nodes)), so nothing may run in place on it.
func TestAliasGraphOutputNeverOverwritten(t *testing.T) {
	withAliasing(t, true, func() {
		b := ir.NewBuilder("outsafe", 1)
		in := b.Input(4, 8, 8)
		c := b.Conv(in, 4, 3, 1, 1)
		b.Output(c)
		r := b.ReLU(c)
		b.Output(r)
		p := BuildAliasPlan(b.G, 1)
		if got := p.StorageOf(r).Class; got != StorageOwned {
			t.Fatalf("relu overwrites graph output %s: class %v, want owned", c, got)
		}
	})
}

// TestAliasConcatViewsBatch1: at batch 1 both concat inputs become views
// at their row offsets, the concat copies nothing, and the three tensors
// share one region.
func TestAliasConcatViewsBatch1(t *testing.T) {
	withAliasing(t, true, func() {
		b := ir.NewBuilder("cat", 1)
		in := b.Input(2, 4, 4)
		x := b.Conv(in, 2, 3, 1, 1)
		y := b.Conv(in, 3, 3, 1, 1)
		cat := b.Concat(x, y)
		b.Output(cat)
		p := BuildAliasPlan(b.G, 1)
		skip := p.ConcatSkip[cat]
		if len(skip) != 2 || !skip[0] || !skip[1] {
			t.Fatalf("ConcatSkip = %v, want both inputs skipped", skip)
		}
		if r, off := p.Root(x); r != cat || off != 0 {
			t.Fatalf("x roots at %s+%d, want %s+0", r, off, cat)
		}
		if r, off := p.Root(y); r != cat || off != x.OutBytes(1) {
			t.Fatalf("y roots at %s+%d, want %s+%d", r, off, cat, x.OutBytes(1))
		}
		a := AssignOffsets(b.G, 1)
		if err := a.Check(); err != nil {
			t.Fatal(err)
		}
		if a.Offsets[y] != a.Offsets[cat]+x.OutBytes(1) {
			t.Fatalf("y offset %d, want concat+%d", a.Offsets[y], x.OutBytes(1))
		}
	})
}

// TestAliasConcatCopiesAtBatchN: at batch > 1 concat rows interleave per
// sample and a flat view cannot represent an input — the plan must leave
// every input owned and register no skips.
func TestAliasConcatCopiesAtBatchN(t *testing.T) {
	withAliasing(t, true, func() {
		b := ir.NewBuilder("catb", 1)
		in := b.Input(2, 4, 4)
		x := b.Conv(in, 2, 3, 1, 1)
		y := b.Conv(in, 3, 3, 1, 1)
		cat := b.Concat(x, y)
		b.Output(cat)
		p := BuildAliasPlan(b.G, 4)
		if sk := p.ConcatSkip[cat]; sk != nil {
			t.Fatalf("batch 4 concat registered skips %v", sk)
		}
		for _, n := range []*ir.Node{x, y} {
			if got := p.StorageOf(n).Class; got != StorageOwned {
				t.Fatalf("%s aliased at batch 4: class %v", n, got)
			}
		}
	})
}

// TestAliasRepeatedConcatInput: concat(x, x) may alias only the first
// occurrence — the second must be copied into its own rows.
func TestAliasRepeatedConcatInput(t *testing.T) {
	withAliasing(t, true, func() {
		b := ir.NewBuilder("catxx", 1)
		in := b.Input(2, 4, 4)
		x := b.Conv(in, 2, 3, 1, 1)
		cat := b.Concat(x, x)
		b.Output(cat)
		p := BuildAliasPlan(b.G, 1)
		skip := p.ConcatSkip[cat]
		if len(skip) != 2 || !skip[0] || skip[1] {
			t.Fatalf("ConcatSkip = %v, want [true false]", skip)
		}
	})
}

// TestAliasSecondConcatCopiesSharedInput: when two concats consume the
// same tensor it can live inside only one of them; the second concat must
// fall back to copying it.
func TestAliasSecondConcatCopiesSharedInput(t *testing.T) {
	withAliasing(t, true, func() {
		b := ir.NewBuilder("cat2", 1)
		in := b.Input(2, 4, 4)
		x := b.Conv(in, 2, 3, 1, 1)
		y := b.Conv(in, 2, 3, 1, 1)
		z := b.Conv(in, 2, 3, 1, 1)
		cat1 := b.Concat(x, y)
		cat2 := b.Concat(x, z)
		b.Output(b.Add(b.Conv(cat1, 2, 3, 1, 1), b.Conv(cat2, 2, 3, 1, 1)))
		p := BuildAliasPlan(b.G, 1)
		s1, s2 := p.ConcatSkip[cat1], p.ConcatSkip[cat2]
		if len(s1) != 2 || !s1[0] || !s1[1] {
			t.Fatalf("first concat skip = %v, want both", s1)
		}
		if len(s2) != 2 || s2[0] || !s2[1] {
			t.Fatalf("second concat skip = %v, want [false true] (x already placed)", s2)
		}
	})
}

// TestAliasBorrowableInput: an untouched graph input is borrowable; one
// that a concat pulls into its region is not.
func TestAliasBorrowableInput(t *testing.T) {
	withAliasing(t, true, func() {
		b := ir.NewBuilder("borrow", 1)
		in := b.Input(4, 8, 8)
		b.Output(b.ReLU(b.Conv(in, 4, 3, 1, 1)))
		p := BuildAliasPlan(b.G, 1)
		if !p.BorrowableInput(in) {
			t.Fatal("plain conv consumer: input should be borrowable")
		}

		b2 := ir.NewBuilder("borrow2", 1)
		in2 := b2.Input(2, 4, 4)
		x := b2.Conv(in2, 2, 3, 1, 1)
		b2.Output(b2.Concat(in2, x))
		p2 := BuildAliasPlan(b2.G, 1)
		if p2.BorrowableInput(in2) {
			t.Fatal("input is a concat view: must not be borrowable")
		}
	})
	// A nil plan (aliasing off) never borrows.
	var nilPlan *AliasPlan
	if nilPlan.BorrowableInput(&ir.Node{}) {
		t.Fatal("nil plan borrowed")
	}
}

// TestAliasKillSwitch: SetAliasing(false) must produce nil plans and the
// classic layout; AssignOffsetsNoAlias must match it exactly.
func TestAliasKillSwitch(t *testing.T) {
	b := ir.NewBuilder("kill", 1)
	in := b.Input(2, 4, 4)
	x := b.Conv(in, 2, 3, 1, 1)
	y := b.Conv(in, 3, 3, 1, 1)
	b.Output(b.ReLU(b.Concat(x, y)))
	withAliasing(t, false, func() {
		if p := BuildAliasPlan(b.G, 1); p != nil {
			t.Fatalf("aliasing off but BuildAliasPlan returned %+v", p)
		}
		off := AssignOffsets(b.G, 1)
		base := AssignOffsetsNoAlias(b.G, 1)
		if off.ArenaBytes != base.ArenaBytes {
			t.Fatalf("aliasing off: arena %d != no-alias arena %d", off.ArenaBytes, base.ArenaBytes)
		}
		for _, n := range b.G.Nodes {
			if off.Offsets[n] != base.Offsets[n] {
				t.Fatalf("aliasing off: %s at %d, no-alias at %d", n, off.Offsets[n], base.Offsets[n])
			}
		}
	})
	withAliasing(t, true, func() {
		a := AssignOffsets(b.G, 1)
		na := AssignOffsetsNoAlias(b.G, 1)
		if a.Alias == nil {
			t.Fatal("aliasing on but Assignment.Alias is nil")
		}
		if a.ArenaBytes > na.ArenaBytes {
			t.Fatalf("aliased arena %d exceeds no-alias arena %d", a.ArenaBytes, na.ArenaBytes)
		}
	})
}

// TestSimulateAliasPeakShrinks: on a concat-and-elementwise graph the
// aliased live-byte peak must come in under the classic simulation.
func TestSimulateAliasPeakShrinks(t *testing.T) {
	withAliasing(t, true, func() {
		b := ir.NewBuilder("peak", 1)
		in := b.Input(2, 8, 8)
		x := b.Conv(in, 4, 3, 1, 1)
		y := b.Conv(in, 4, 3, 1, 1)
		cat := b.Concat(x, y)
		b.Output(b.SiLU(b.ReLU(cat)))
		plan := BuildAliasPlan(b.G, 1)
		aliased := SimulateAlias(b.G, 1, 0, plan)
		classic := Simulate(b.G, 1, 0)
		if aliased.PeakInternal >= classic.PeakInternal {
			t.Fatalf("aliased peak %d not below classic %d", aliased.PeakInternal, classic.PeakInternal)
		}
		// Nil plan: exact fallthrough to Simulate.
		if got := SimulateAlias(b.G, 1, 0, nil).PeakInternal; got != classic.PeakInternal {
			t.Fatalf("SimulateAlias(nil) peak %d != Simulate %d", got, classic.PeakInternal)
		}
	})
}
