package memplan

import (
	"fmt"
	"sort"

	"temco/internal/ir"
)

// This file implements static buffer-offset assignment in the style of
// Pisarchyk & Lee, "Efficient Memory Management for Deep Neural Net
// Inference" (the paper's reference [31]): given every internal tensor's
// size and liveness interval, assign each a fixed offset inside one shared
// arena so that overlapping-lifetime tensors never overlap in memory. The
// arena size is an upper bound a real allocator can achieve with static
// planning; PeakInternal (the live-byte maximum) is the lower bound.

// Assignment is a static arena layout for one graph and batch size.
type Assignment struct {
	Graph *ir.Graph
	Batch int
	// Offsets maps every node (graph inputs included — they count toward
	// internal-tensor memory, paper Eq. (3)) to its tensor's byte offset.
	Offsets map[*ir.Node]int64
	// ArenaBytes is the total arena size the layout needs.
	ArenaBytes int64
	// PeakInternal is the simulator's live-byte peak (lower bound).
	PeakInternal int64
}

// Fragmentation returns ArenaBytes/PeakInternal − 1: the fraction of arena
// space lost to static-layout constraints (0 = perfect reuse).
func (a Assignment) Fragmentation() float64 {
	if a.PeakInternal == 0 {
		return 0
	}
	return float64(a.ArenaBytes)/float64(a.PeakInternal) - 1
}

type interval struct {
	node       *ir.Node
	begin, end int
	size       int64
	offset     int64
}

// AssignOffsets computes a greedy best-fit arena layout for g's internal
// tensors at the given batch size. Tensors are placed in decreasing size
// order (the heuristic [31] reports best results with); each is placed at
// the lowest offset where it fits below or between already-placed tensors
// whose lifetimes overlap its own.
func AssignOffsets(g *ir.Graph, batch int) Assignment {
	live := Analyze(g)
	p := Simulate(g, batch, 0)
	ivs := make([]*interval, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		end := live.End[n]
		if end > len(g.Nodes) {
			end = len(g.Nodes)
		}
		ivs = append(ivs, &interval{node: n, begin: live.Begin[n], end: end, size: n.OutBytes(batch)})
	}
	// Largest first; ties by definition order for determinism.
	sort.SliceStable(ivs, func(i, j int) bool {
		if ivs[i].size != ivs[j].size {
			return ivs[i].size > ivs[j].size
		}
		return ivs[i].begin < ivs[j].begin
	})
	var placed []*interval
	var arena int64
	for _, iv := range ivs {
		// Collect the offset ranges blocked by lifetime-overlapping placed
		// tensors, sorted by offset.
		var blocks []*interval
		for _, q := range placed {
			if overlaps(iv, q) {
				blocks = append(blocks, q)
			}
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i].offset < blocks[j].offset })
		// Best-fit: lowest gap that holds the tensor.
		var off int64
		for _, q := range blocks {
			if q.offset-off >= iv.size {
				break
			}
			if q.offset+q.size > off {
				off = q.offset + q.size
			}
		}
		iv.offset = off
		if off+iv.size > arena {
			arena = off + iv.size
		}
		placed = append(placed, iv)
	}
	out := Assignment{Graph: g, Batch: batch, Offsets: make(map[*ir.Node]int64, len(ivs)),
		ArenaBytes: arena, PeakInternal: p.PeakInternal}
	for _, iv := range ivs {
		out.Offsets[iv.node] = iv.offset
	}
	return out
}

// overlaps reports whether two tensors are ever live simultaneously. A
// tensor is live from its defining slot through its last-use slot.
func overlaps(a, b *interval) bool {
	return a.begin <= b.end && b.begin <= a.end
}

// Check verifies the layout: no two simultaneously-live tensors may
// intersect in the arena. It returns an error naming the first conflict.
func (a Assignment) Check() error {
	live := Analyze(a.Graph)
	nodes := make([]*ir.Node, 0, len(a.Offsets))
	for n := range a.Offsets {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for i, n := range nodes {
		ni := interval{begin: live.Begin[n], end: min(live.End[n], len(a.Graph.Nodes)), size: n.OutBytes(a.Batch), offset: a.Offsets[n]}
		if ni.offset+ni.size > a.ArenaBytes {
			return fmt.Errorf("memplan: %s exceeds arena: %d+%d > %d", n, ni.offset, ni.size, a.ArenaBytes)
		}
		for _, m := range nodes[i+1:] {
			mi := interval{begin: live.Begin[m], end: min(live.End[m], len(a.Graph.Nodes)), size: m.OutBytes(a.Batch), offset: a.Offsets[m]}
			if overlaps(&ni, &mi) && ni.offset < mi.offset+mi.size && mi.offset < ni.offset+ni.size {
				return fmt.Errorf("memplan: %s and %s overlap in arena and in time", n, m)
			}
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
