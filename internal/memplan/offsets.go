package memplan

import (
	"fmt"
	"sort"

	"temco/internal/ir"
)

// This file implements static buffer-offset assignment in the style of
// Pisarchyk & Lee, "Efficient Memory Management for Deep Neural Net
// Inference" (the paper's reference [31]): given every internal tensor's
// size and liveness interval, assign each a fixed offset inside one shared
// arena so that overlapping-lifetime tensors never overlap in memory. The
// arena size is an upper bound a real allocator can achieve with static
// planning; PeakInternal (the live-byte maximum) is the lower bound.
//
// With alias-aware planning (alias.go, DESIGN.md §14) only *owned* storage
// roots get regions; view-classed tensors (concat inputs, flatten outputs,
// in-place elementwise results) are placed at fixed offsets inside their
// root's region, and a root's liveness interval extends over every sharer
// so the region exists from the first producer write to the last read.

// Assignment is a static arena layout for one graph and batch size.
type Assignment struct {
	Graph *ir.Graph
	Batch int
	// Offsets maps every node (graph inputs included — they count toward
	// internal-tensor memory, paper Eq. (3)) to its tensor's byte offset.
	// View-classed tensors resolve to absolute offsets inside their root's
	// region, so executors slice the arena uniformly.
	Offsets map[*ir.Node]int64
	// ArenaBytes is the total arena size the layout needs.
	ArenaBytes int64
	// PeakInternal is the simulator's live-byte peak (lower bound) under
	// the same alias plan this layout was built with.
	PeakInternal int64
	// Alias is the storage-class plan the layout honors; nil when aliasing
	// is off (every tensor owned, the classic layout).
	Alias *AliasPlan
}

// Fragmentation returns ArenaBytes/PeakInternal − 1: the fraction of arena
// space lost to static-layout constraints (0 = perfect reuse).
func (a Assignment) Fragmentation() float64 {
	if a.PeakInternal == 0 {
		return 0
	}
	return float64(a.ArenaBytes)/float64(a.PeakInternal) - 1
}

type interval struct {
	node       *ir.Node
	begin, end int
	size       int64
	offset     int64
}

// AssignOffsets computes a greedy best-fit arena layout for g's internal
// tensors at the given batch size, honoring the alias-aware storage plan
// when aliasing is enabled (TEMCO_NOALIAS=1 or SetAliasing(false) restores
// the classic one-region-per-tensor layout). Owned tensors are placed in
// decreasing size order (the heuristic [31] reports best results with);
// each is placed at the lowest offset where it fits below or between
// already-placed tensors whose lifetimes overlap its own.
func AssignOffsets(g *ir.Graph, batch int) Assignment {
	return assignOffsets(g, batch, BuildAliasPlan(g, batch))
}

// AssignOffsetsNoAlias computes the classic layout with every tensor
// owned, regardless of the aliasing switch. Comparisons and bisection use
// it as the baseline.
func AssignOffsetsNoAlias(g *ir.Graph, batch int) Assignment {
	return assignOffsets(g, batch, nil)
}

func assignOffsets(g *ir.Graph, batch int, plan *AliasPlan) Assignment {
	live := Analyze(g)
	p := SimulateAlias(g, batch, 0, plan)
	// One interval per owned storage root, spanning every sharer.
	var roots map[*ir.Node][2]int
	if plan != nil {
		roots = plan.groupIntervals(live, len(g.Nodes))
	} else {
		roots = make(map[*ir.Node][2]int, len(g.Nodes))
		for _, n := range g.Nodes {
			end := live.End[n]
			if end > len(g.Nodes) {
				end = len(g.Nodes)
			}
			roots[n] = [2]int{live.Begin[n], end}
		}
	}
	ivs := make([]*interval, 0, len(roots))
	for r, be := range roots {
		ivs = append(ivs, &interval{node: r, begin: be[0], end: be[1], size: r.OutBytes(batch)})
	}
	// Largest first; ties by definition order for determinism.
	sort.SliceStable(ivs, func(i, j int) bool {
		if ivs[i].size != ivs[j].size {
			return ivs[i].size > ivs[j].size
		}
		if ivs[i].begin != ivs[j].begin {
			return ivs[i].begin < ivs[j].begin
		}
		return ivs[i].node.ID < ivs[j].node.ID
	})
	var placed []*interval
	var arena int64
	for _, iv := range ivs {
		// Collect the offset ranges blocked by lifetime-overlapping placed
		// tensors, sorted by offset.
		var blocks []*interval
		for _, q := range placed {
			if overlaps(iv, q) {
				blocks = append(blocks, q)
			}
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i].offset < blocks[j].offset })
		// Best-fit: lowest gap that holds the tensor.
		var off int64
		for _, q := range blocks {
			if q.offset-off >= iv.size {
				break
			}
			if q.offset+q.size > off {
				off = q.offset + q.size
			}
		}
		iv.offset = off
		if off+iv.size > arena {
			arena = off + iv.size
		}
		placed = append(placed, iv)
	}
	out := Assignment{Graph: g, Batch: batch, Offsets: make(map[*ir.Node]int64, len(g.Nodes)),
		ArenaBytes: arena, PeakInternal: p.PeakInternal, Alias: plan}
	rootOff := make(map[*ir.Node]int64, len(ivs))
	for _, iv := range ivs {
		rootOff[iv.node] = iv.offset
	}
	for _, n := range g.Nodes {
		if plan == nil {
			out.Offsets[n] = rootOff[n]
			continue
		}
		r, rel := plan.Root(n)
		out.Offsets[n] = rootOff[r] + rel
	}
	return out
}

// overlaps reports whether two tensors are ever live simultaneously. A
// tensor is live from its defining slot through its last-use slot.
func overlaps(a, b *interval) bool {
	return a.begin <= b.end && b.begin <= a.end
}

// Check verifies the layout. Owned regions with overlapping (extended)
// lifetimes must not intersect in the arena; view-classed tensors must sit
// exactly at their declared offset inside their root's region. It returns
// an error naming the first conflict.
func (a Assignment) Check() error {
	if err := a.Alias.Validate(); err != nil {
		return err
	}
	live := Analyze(a.Graph)
	var rootIv map[*ir.Node][2]int
	if a.Alias != nil {
		rootIv = a.Alias.groupIntervals(live, len(a.Graph.Nodes))
	} else {
		rootIv = make(map[*ir.Node][2]int, len(a.Graph.Nodes))
		for _, n := range a.Graph.Nodes {
			rootIv[n] = [2]int{live.Begin[n], min(live.End[n], len(a.Graph.Nodes))}
		}
	}
	// Views: exact placement inside the root, fully contained.
	for _, n := range a.Graph.Nodes {
		off, ok := a.Offsets[n]
		if !ok {
			return fmt.Errorf("memplan: %s has no arena offset", n)
		}
		if off+n.OutBytes(a.Batch) > a.ArenaBytes {
			return fmt.Errorf("memplan: %s exceeds arena: %d+%d > %d", n, off, n.OutBytes(a.Batch), a.ArenaBytes)
		}
		if a.Alias == nil {
			continue
		}
		r, rel := a.Alias.Root(n)
		if a.Offsets[n] != a.Offsets[r]+rel {
			return fmt.Errorf("memplan: view %s at offset %d, declared %d inside root %s at %d",
				n, a.Offsets[n], rel, r, a.Offsets[r])
		}
		if rel+n.OutBytes(a.Batch) > r.OutBytes(a.Batch) {
			return fmt.Errorf("memplan: view %s overflows root %s", n, r)
		}
	}
	// Owned roots: pairwise disjoint when simultaneously live.
	roots := make([]*ir.Node, 0, len(rootIv))
	for r := range rootIv {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ID < roots[j].ID })
	for i, n := range roots {
		be := rootIv[n]
		ni := interval{begin: be[0], end: be[1], size: n.OutBytes(a.Batch), offset: a.Offsets[n]}
		for _, m := range roots[i+1:] {
			mbe := rootIv[m]
			mi := interval{begin: mbe[0], end: mbe[1], size: m.OutBytes(a.Batch), offset: a.Offsets[m]}
			if overlaps(&ni, &mi) && ni.offset < mi.offset+mi.size && mi.offset < ni.offset+ni.size {
				return fmt.Errorf("memplan: %s and %s overlap in arena and in time", n, m)
			}
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
