package memplan

import (
	"testing"
	"testing/quick"

	"temco/internal/ir"
	"temco/internal/tensor"
)

func TestAssignOffsetsLinearChain(t *testing.T) {
	// In a pure chain only two tensors are live at once; the arena must be
	// close to the largest adjacent pair, far below the sum of all tensors.
	b := ir.NewBuilder("chain", 1)
	x := b.Input(8, 8, 8)
	var total int64
	for i := 0; i < 6; i++ {
		x = b.ReLU(x)
		total += x.OutBytes(1)
	}
	b.Output(x)
	a := AssignOffsets(b.G, 1)
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	if a.ArenaBytes >= total {
		t.Fatalf("arena %d shows no reuse (total %d)", a.ArenaBytes, total)
	}
	if a.ArenaBytes < a.PeakInternal-int64(x.OutBytes(1)) {
		t.Fatalf("arena %d below what liveness requires (peak %d)", a.ArenaBytes, a.PeakInternal)
	}
}

func TestAssignOffsetsSkipGraph(t *testing.T) {
	b := ir.NewBuilder("skipg", 1)
	in := b.Input(4, 8, 8)
	r1 := b.ReLU(in)
	r2 := b.ReLU(r1)
	r3 := b.ReLU(r2)
	a1 := b.Add(r3, r1) // r1 overlaps r2, r3
	b.Output(a1)
	a := AssignOffsets(b.G, 2)
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	// r1 and r2 are simultaneously live → distinct ranges.
	if a.Offsets[r1] == a.Offsets[r2] {
		t.Fatal("overlapping-lifetime tensors share an offset")
	}
	if a.Fragmentation() < 0 {
		t.Fatalf("fragmentation %v negative", a.Fragmentation())
	}
}

func TestArenaBoundsPeak(t *testing.T) {
	// Arena is always ≥ the live-byte peak and (for these graphs) within a
	// small factor of it.
	b := ir.NewBuilder("bounds", 3)
	in := b.Input(8, 16, 16)
	c1 := b.Conv(in, 16, 3, 1, 1)
	r := b.ReLU(c1)
	p := b.MaxPool(r, 2, 2)
	c2 := b.Conv(p, 32, 3, 1, 1)
	b.Output(b.ReLU(c2))
	a := AssignOffsets(b.G, 4)
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	if a.ArenaBytes < a.PeakInternal {
		t.Fatalf("arena %d below live peak %d", a.ArenaBytes, a.PeakInternal)
	}
	if a.Fragmentation() > 1.0 {
		t.Fatalf("fragmentation %v implausibly high", a.Fragmentation())
	}
}

// Property: the greedy layout is always conflict-free and ≥ the peak.
func TestQuickOffsetsSound(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		b := ir.NewBuilder("q", seed)
		in := b.Input(1+r.Intn(8), 8, 8)
		nodes := []*ir.Node{in}
		for i := 0; i < 3+r.Intn(10); i++ {
			switch r.Intn(3) {
			case 0:
				nodes = append(nodes, b.ReLU(nodes[r.Intn(len(nodes))]))
			case 1:
				nodes = append(nodes, b.Conv(nodes[r.Intn(len(nodes))], 1+r.Intn(8), 3, 1, 1))
			case 2:
				nodes = append(nodes, b.Sigmoid(nodes[r.Intn(len(nodes))]))
			}
		}
		b.Output(nodes[len(nodes)-1])
		a := AssignOffsets(b.G, 1+r.Intn(3))
		return a.Check() == nil && a.ArenaBytes >= a.PeakInternal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
