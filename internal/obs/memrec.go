package obs

import (
	"sync"
	"sync/atomic"
)

// MemSample is one measured memory point: the executor's live
// internal-tensor bytes right after the node at Step ran (before tensors
// whose last use was this step are released) — the same instant
// memplan.Simulate samples for its predicted timeline, so the two series
// align step for step.
type MemSample struct {
	Step      int
	Node      string
	LiveBytes int64
}

// MemRecorder collects measured live-bytes-over-steps from executor runs.
// Recording takes a mutex and never allocates while under capacity; the
// buffer grows past capacity rather than dropping (a truncated memory
// timeline would silently understate the peak, the one number this
// recorder exists to verify).
type MemRecorder struct {
	scope string

	mu      sync.Mutex
	samples []MemSample
}

// memActive is the hook registry: nil means memory recording is disabled
// and MemRecorderFor returns after one atomic load.
var memActive atomic.Pointer[MemRecorder]

// EnableMemRecord installs a recorder restricted to executor runs of the
// graph named scope (empty records all), replacing any previous one.
// capacity preallocates the sample buffer (pass the node count of the
// graph you are about to run; <= 0 gets a default).
func EnableMemRecord(scope string, capacity int) *MemRecorder {
	if capacity <= 0 {
		capacity = 1 << 12
	}
	m := &MemRecorder{scope: scope, samples: make([]MemSample, 0, capacity)}
	memActive.Store(m)
	return m
}

// DisableMemRecord removes the installed recorder.
func DisableMemRecord() { memActive.Store(nil) }

// MemRecorderFor returns the installed recorder when recording is enabled
// and its scope admits the given graph name, else nil.
func MemRecorderFor(scope string) *MemRecorder {
	m := memActive.Load()
	if m == nil || (m.scope != "" && m.scope != scope) {
		return nil
	}
	return m
}

// Record appends one sample.
func (m *MemRecorder) Record(step int, node string, live int64) {
	m.mu.Lock()
	m.samples = append(m.samples, MemSample{Step: step, Node: node, LiveBytes: live})
	m.mu.Unlock()
}

// Samples returns a copy of the recorded samples.
func (m *MemRecorder) Samples() []MemSample {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MemSample, len(m.samples))
	copy(out, m.samples)
	return out
}

// Peak returns the maximum recorded live bytes and the step it occurred
// at (first hit); zero values when nothing was recorded.
func (m *MemRecorder) Peak() (bytes int64, step int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.samples {
		if s.LiveBytes > bytes {
			bytes, step = s.LiveBytes, s.Step
		}
	}
	return bytes, step
}

// Reset clears the recorded samples, keeping the buffer.
func (m *MemRecorder) Reset() {
	m.mu.Lock()
	m.samples = m.samples[:0]
	m.mu.Unlock()
}
