package obs

import (
	"sync"
	"testing"
)

func TestMemRecorderScopeAndPeak(t *testing.T) {
	m := EnableMemRecord("unet", 16)
	defer DisableMemRecord()
	if MemRecorderFor("unet") != m {
		t.Fatal("scope match did not return the recorder")
	}
	if MemRecorderFor("vgg16") != nil {
		t.Fatal("scope mismatch returned the recorder")
	}
	m.Record(0, "input", 100)
	m.Record(1, "conv1", 400)
	m.Record(2, "relu1", 300)
	bytes, step := m.Peak()
	if bytes != 400 || step != 1 {
		t.Fatalf("peak = %d at step %d, want 400 at 1", bytes, step)
	}
	if got := m.Samples(); len(got) != 3 || got[2].Node != "relu1" {
		t.Fatalf("samples = %+v", got)
	}
	m.Reset()
	if len(m.Samples()) != 0 {
		t.Fatal("Reset did not clear samples")
	}
}

func TestMemRecorderGrowsPastCapacity(t *testing.T) {
	m := EnableMemRecord("", 2)
	defer DisableMemRecord()
	for i := 0; i < 10; i++ {
		m.Record(i, "n", int64(i))
	}
	// Unlike the tracer, the memory recorder must never drop: a truncated
	// timeline would understate the measured peak.
	if len(m.Samples()) != 10 {
		t.Fatalf("kept %d samples, want 10", len(m.Samples()))
	}
}

func TestMemRecorderConcurrent(t *testing.T) {
	m := EnableMemRecord("", 1024)
	defer DisableMemRecord()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.Record(i, "n", int64(i))
			}
		}()
	}
	wg.Wait()
	if len(m.Samples()) != 800 {
		t.Fatalf("recorded %d samples, want 800", len(m.Samples()))
	}
}

// TestHookDisabledZeroAlloc is the obs-side half of the disabled-cost
// guarantee: with no tracer or recorder installed, the per-run hook
// lookups are two atomic loads and zero heap allocations.
func TestHookDisabledZeroAlloc(t *testing.T) {
	DisableTrace()
	DisableMemRecord()
	allocs := testing.AllocsPerRun(100, func() {
		if TraceFor("g") != nil || MemRecorderFor("g") != nil {
			t.Fatal("hooks unexpectedly enabled")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled hook lookup allocates %v per call, want 0", allocs)
	}
}
