package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one recorded step of an executor run. All fields are scalars or
// interned strings (node names, kind mnemonics), so recording a span never
// allocates.
type Span struct {
	// Name is the node name; Cat is the executor ("exec", "engine"); Kind
	// is the operator mnemonic.
	Name, Cat, Kind string
	// Lane distinguishes concurrent runs (one lane per Run invocation);
	// exported as the Chrome trace tid so parallel workers stack cleanly.
	Lane uint64
	// Step is the schedule slot.
	Step int
	// Start and Dur position the span on the tracer's clock (time since
	// EnableTrace).
	Start, Dur time.Duration
	// LiveBytes is the executor's live internal-tensor bytes while this
	// step ran (interpreter: release-list accounting; engine: the arena
	// high-water mark).
	LiveBytes int64
	// ArenaOff is the step's output offset in the engine arena; -1 on the
	// interpreter path, which has no arena.
	ArenaOff int64
	// PackHits / PackMisses are the gemm workspace-pool hits and misses
	// this step incurred (pool reuse visible per step).
	PackHits, PackMisses uint64
	// CopyBytes is the tensor bytes this step moved with plain copies
	// (concat fallbacks, flatten copies); 0 on steps the alias plan turned
	// into views.
	CopyBytes int64
}

// TraceConfig tunes EnableTrace.
type TraceConfig struct {
	// Scope restricts recording to executor runs of the graph with this
	// name (the same scope labels faultinject uses); empty records all.
	Scope string
	// Capacity bounds the span buffer; further spans are counted as
	// dropped rather than grown, keeping the enabled hot path
	// allocation-free. Default 1 << 16.
	Capacity int
}

// Tracer records spans into a preallocated buffer. Recording takes a
// mutex (spans from concurrent workers interleave) but never allocates;
// when the buffer is full, spans are dropped and counted.
type Tracer struct {
	scope string
	start time.Time
	lanes atomic.Uint64

	mu      sync.Mutex
	spans   []Span
	dropped uint64
}

// traceActive is the hook registry: nil means tracing is disabled and
// TraceFor returns after one atomic load.
var traceActive atomic.Pointer[Tracer]

// EnableTrace installs a tracer, replacing any previous one, and returns
// it for span extraction after the traced runs complete.
func EnableTrace(cfg TraceConfig) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1 << 16
	}
	t := &Tracer{scope: cfg.Scope, start: time.Now(), spans: make([]Span, 0, cfg.Capacity)}
	traceActive.Store(t)
	return t
}

// DisableTrace removes the installed tracer; the hooks become no-ops.
func DisableTrace() { traceActive.Store(nil) }

// TraceFor returns the installed tracer when tracing is enabled and its
// scope admits the given graph name, else nil. Executors call this once
// per run and skip all instrumentation on nil.
func TraceFor(scope string) *Tracer {
	t := traceActive.Load()
	if t == nil || (t.scope != "" && t.scope != scope) {
		return nil
	}
	return t
}

// Lane allocates a lane id for one executor run; concurrent runs get
// distinct lanes so their spans do not interleave in the trace viewer.
func (t *Tracer) Lane() uint64 { return t.lanes.Add(1) }

// Since returns the time elapsed on the tracer's clock.
func (t *Tracer) Since() time.Duration { return time.Since(t.start) }

// Record appends one span, dropping (and counting) it when the buffer is
// full. The append never reallocates: capacity was fixed at EnableTrace.
func (t *Tracer) Record(sp Span) {
	t.mu.Lock()
	if len(t.spans) < cap(t.spans) {
		t.spans = append(t.spans, sp)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Dropped reports how many spans did not fit the buffer.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// chromeEvent is one trace_event record in the Chrome/Perfetto JSON
// object format ("X" complete events with microsecond timestamps).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the recorded spans as Chrome trace_event JSON,
// loadable in chrome://tracing and Perfetto. Spans become complete ("X")
// events; live bytes, arena offsets, and pool hits ride in args.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	ct := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	for _, sp := range spans {
		args := map[string]any{
			"kind":       sp.Kind,
			"step":       sp.Step,
			"live_bytes": sp.LiveBytes,
		}
		if sp.ArenaOff >= 0 {
			args["arena_off"] = sp.ArenaOff
		}
		if sp.PackHits > 0 || sp.PackMisses > 0 {
			args["pack_hits"] = sp.PackHits
			args["pack_misses"] = sp.PackMisses
		}
		if sp.CopyBytes > 0 {
			args["copy_bytes"] = sp.CopyBytes
		}
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: sp.Name,
			Cat:  sp.Cat,
			Ph:   "X",
			Ts:   float64(sp.Start) / float64(time.Microsecond),
			Dur:  float64(sp.Dur) / float64(time.Microsecond),
			Pid:  1,
			Tid:  sp.Lane,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ct)
}
