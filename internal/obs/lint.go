package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// CheckExposition validates Prometheus text-format output: every sample
// line parses, every metric family is preceded by HELP and TYPE lines,
// histogram buckets are cumulative with a +Inf bucket whose value equals
// _count, and no family is declared twice. It exists so the CI smoke that
// scrapes temcod's /metrics asserts real exposition-format invariants
// instead of just a 200 status.
func CheckExposition(data []byte) error {
	type family struct {
		typ     string
		lastLe  float64
		lastCum uint64
		infSeen bool
		infVal  uint64
		count   uint64
		hasCnt  bool
	}
	families := map[string]*family{}
	declared := map[string]bool{}
	var cur string
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(text, "# HELP "), " ", 2)
			if len(parts) == 0 || !validName(parts[0]) {
				return fmt.Errorf("line %d: malformed HELP: %q", line, text)
			}
			if declared[parts[0]] {
				return fmt.Errorf("line %d: family %s declared twice", line, parts[0])
			}
			declared[parts[0]] = true
			cur = ""
			continue
		}
		if strings.HasPrefix(text, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(text, "# TYPE "))
			if len(parts) != 2 || !validName(parts[0]) {
				return fmt.Errorf("line %d: malformed TYPE: %q", line, text)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", line, parts[1])
			}
			if !declared[parts[0]] {
				return fmt.Errorf("line %d: TYPE for %s without preceding HELP", line, parts[0])
			}
			cur = parts[0]
			families[cur] = &family{typ: parts[1]}
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue // comment
		}
		sample := text
		if i := strings.Index(text, " # "); i >= 0 {
			// OpenMetrics-style exemplar suffix on a bucket line:
			// `name_bucket{le="..."} N # {trace_id="..."} value [ts]`.
			if err := checkExemplar(text[i+3:]); err != nil {
				return fmt.Errorf("line %d: %v", line, err)
			}
			sample = text[:i]
			if !strings.Contains(sample, "_bucket") {
				return fmt.Errorf("line %d: exemplar on a non-bucket sample: %q", line, text)
			}
		}
		name, labels, value, err := parseSample(sample)
		if err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		fam := families[base]
		if fam == nil || cur != base {
			return fmt.Errorf("line %d: sample %s outside its TYPE block", line, name)
		}
		if fam.typ == "histogram" {
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("line %d: histogram bucket without le label", line)
				}
				cum := uint64(value)
				if cum < fam.lastCum {
					return fmt.Errorf("line %d: bucket counts not cumulative (%d < %d)", line, cum, fam.lastCum)
				}
				fam.lastCum = cum
				if le == "+Inf" {
					fam.infSeen, fam.infVal = true, cum
				} else {
					b, err := strconv.ParseFloat(le, 64)
					if err != nil || b < fam.lastLe && fam.lastLe != 0 {
						return fmt.Errorf("line %d: bad le bound %q", line, le)
					}
					fam.lastLe = b
				}
			case strings.HasSuffix(name, "_count"):
				fam.count, fam.hasCnt = uint64(value), true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for name, fam := range families {
		if fam.typ != "histogram" {
			continue
		}
		if !fam.infSeen {
			return fmt.Errorf("histogram %s has no +Inf bucket", name)
		}
		if fam.hasCnt && fam.count != fam.infVal {
			return fmt.Errorf("histogram %s: count %d != +Inf bucket %d", name, fam.count, fam.infVal)
		}
	}
	if len(families) == 0 {
		return fmt.Errorf("no metric families found")
	}
	return nil
}

// checkExemplar validates an exemplar suffix (the part after " # "):
// `{label="value",...} value [timestamp]`.
func checkExemplar(s string) error {
	if !strings.HasPrefix(s, "{") {
		return fmt.Errorf("malformed exemplar %q: want {labels} value", s)
	}
	j := strings.IndexByte(s, '}')
	if j < 0 {
		return fmt.Errorf("malformed exemplar %q: unterminated label set", s)
	}
	for _, kv := range strings.Split(s[1:j], ",") {
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if _, uqErr := strconv.Unquote(v); !ok || uqErr != nil || !validName(k) {
			return fmt.Errorf("malformed exemplar label %q", kv)
		}
	}
	fields := strings.Fields(s[j+1:])
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("malformed exemplar %q: want value [timestamp]", s)
	}
	for _, f := range fields {
		if _, err := strconv.ParseFloat(f, 64); err != nil {
			return fmt.Errorf("bad exemplar number %q: %v", f, err)
		}
	}
	return nil
}

// parseSample splits one exposition sample line into name, labels, value.
func parseSample(text string) (name string, labels map[string]string, value float64, err error) {
	labels = map[string]string{}
	rest := text
	if i := strings.IndexByte(text, '{'); i >= 0 {
		name = text[:i]
		j := strings.IndexByte(text, '}')
		if j < i {
			return "", nil, 0, fmt.Errorf("unterminated label set: %q", text)
		}
		for _, kv := range strings.Split(text[i+1:j], ",") {
			if kv == "" {
				continue
			}
			k, v, ok := strings.Cut(kv, "=")
			uq, uqErr := strconv.Unquote(v)
			if !ok || uqErr != nil {
				return "", nil, 0, fmt.Errorf("malformed label %q", kv)
			}
			labels[k] = uq
		}
		rest = strings.TrimSpace(text[j+1:])
	} else {
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return "", nil, 0, fmt.Errorf("malformed sample: %q", text)
		}
		name, rest = fields[0], fields[1]
	}
	if !validName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	value, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value in %q: %v", text, err)
	}
	return name, labels, value, nil
}
