package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Logger is a small structured-logging facility for the daemons' error
// paths: one JSON object per line, every line carrying the component and
// (when the context has a request trace) trace_id/request_id, so a log
// line, a /metrics exemplar, and a flight-recorder timeline all join on
// the same ids. Emission is token-bucket rate-limited — an error storm
// degrades to counting instead of melting the disk — and dropped lines
// are counted and reported on the next emitted line.
type Logger struct {
	component string

	mu      sync.Mutex
	w       io.Writer
	perSec  float64
	burst   float64
	tokens  float64
	last    time.Time
	dropped uint64
}

// NewLogger builds a logger writing to w (nil means stderr) under the
// given component name, with a default limit of 50 lines/s (burst 100).
func NewLogger(w io.Writer, component string) *Logger {
	if w == nil {
		w = os.Stderr
	}
	return &Logger{
		component: component,
		w:         w,
		perSec:    50,
		burst:     100,
		tokens:    100,
		last:      time.Now(),
	}
}

// SetLimit tunes the rate limit: perSec sustained lines per second with
// the given burst. perSec <= 0 disables the limit.
func (l *Logger) SetLimit(perSec, burst float64) {
	l.mu.Lock()
	l.perSec, l.burst, l.tokens = perSec, burst, burst
	l.mu.Unlock()
}

// Dropped reports how many lines the rate limiter suppressed.
func (l *Logger) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// allowLocked refills the token bucket and spends one token, reporting
// whether this line may be emitted.
func (l *Logger) allowLocked(now time.Time) bool {
	if l.perSec <= 0 {
		return true
	}
	l.tokens += now.Sub(l.last).Seconds() * l.perSec
	l.last = now
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	if l.tokens < 1 {
		return false
	}
	l.tokens--
	return true
}

// Info / Warn / Error emit one line at the given level. kv are alternating
// key, value pairs appended as JSON fields.
func (l *Logger) Info(msg string, kv ...any)  { l.emit(nil, "info", msg, kv) }
func (l *Logger) Warn(msg string, kv ...any)  { l.emit(nil, "warn", msg, kv) }
func (l *Logger) Error(msg string, kv ...any) { l.emit(nil, "error", msg, kv) }

// InfoCtx / WarnCtx / ErrorCtx additionally pull trace_id/request_id from
// the context's request trace, when one is attached.
func (l *Logger) InfoCtx(ctx context.Context, msg string, kv ...any) {
	l.emit(RequestFrom(ctx), "info", msg, kv)
}
func (l *Logger) WarnCtx(ctx context.Context, msg string, kv ...any) {
	l.emit(RequestFrom(ctx), "warn", msg, kv)
}
func (l *Logger) ErrorCtx(ctx context.Context, msg string, kv ...any) {
	l.emit(RequestFrom(ctx), "error", msg, kv)
}

// emit renders and writes one line under the rate limit.
func (l *Logger) emit(rt *ReqTrace, level, msg string, kv []any) {
	now := time.Now()
	rec := make(map[string]any, 8+len(kv)/2)
	rec["ts"] = now.UTC().Format(time.RFC3339Nano)
	rec["level"] = level
	rec["component"] = l.component
	rec["msg"] = msg
	if rt != nil {
		tc := rt.Context()
		rec["trace_id"] = tc.TraceID
		rec["request_id"] = tc.RequestID
	}
	for i := 0; i+1 < len(kv); i += 2 {
		k, ok := kv[i].(string)
		if !ok {
			k = fmt.Sprint(kv[i])
		}
		rec[k] = kv[i+1]
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.allowLocked(now) {
		l.dropped++
		return
	}
	if l.dropped > 0 {
		rec["dropped"] = l.dropped
		l.dropped = 0
	}
	b, err := json.Marshal(rec)
	if err != nil {
		// Unmarshalable value in kv: degrade to the message alone rather
		// than losing the line.
		b, _ = json.Marshal(map[string]any{
			"ts": rec["ts"], "level": level, "component": l.component, "msg": msg,
		})
	}
	l.w.Write(append(b, '\n'))
}
