package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FlightRecorder keeps a bounded set of completed request timelines for
// after-the-fact debugging ("what did the slow request at 14:02 actually
// do"), with tail sampling: every error/shed/degraded/deadline request is
// kept, the slowest tail of OK requests is kept, and 1-in-SampleRate of
// the remaining OK requests is kept as a baseline. Storage is three
// preallocated rings — one per retention class — so a shed storm cannot
// evict the error timelines an operator is actually hunting, and the
// enabled-path overhead is bounded by the rings (no growth under load).

// ReqTimeline is one finished request's immutable record.
type ReqTimeline struct {
	TraceID    string        `json:"trace_id"`
	RequestID  string        `json:"request_id"`
	ParentID   string        `json:"parent_id,omitempty"`
	Start      time.Time     `json:"start"`
	DurNS      time.Duration `json:"dur_ns"`
	Status     string        `json:"status"`
	HTTPStatus int           `json:"http_status"`
	Err        string        `json:"error,omitempty"`
	// Siblings are the request ids that rode the same coalesced batch.
	Siblings []string  `json:"siblings,omitempty"`
	Spans    []ReqSpan `json:"spans"`
	// DroppedSpans counts spans that did not fit the per-request buffer.
	DroppedSpans int `json:"dropped_spans,omitempty"`
}

// FlightConfig tunes EnableFlightRecorder. Zero values take the defaults.
type FlightConfig struct {
	// Capacity is the ring size per retention class (error, shed, ok).
	// Default 256.
	Capacity int
	// SampleRate keeps 1-in-N of plain OK requests (beyond the always-kept
	// slow tail). 1 keeps everything. Default 16.
	SampleRate int
	// TailQuantile is the OK-latency quantile above which an OK request
	// counts as slow tail and is always kept. Default 0.9.
	TailQuantile float64
}

func (c *FlightConfig) applyDefaults() {
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	if c.SampleRate <= 0 {
		c.SampleRate = 16
	}
	if c.TailQuantile <= 0 || c.TailQuantile >= 1 {
		c.TailQuantile = 0.9
	}
}

// FlightStats is the recorder's admission ledger, surfaced on /statsz and
// /debugz/requests.
type FlightStats struct {
	Seen       uint64 `json:"seen"`
	Kept       uint64 `json:"kept"`
	ErrorsSeen uint64 `json:"errors_seen"`
	ErrorsKept uint64 `json:"errors_kept"`
	ShedSeen   uint64 `json:"shed_seen"`
	ShedKept   uint64 `json:"shed_kept"`
	TailKept   uint64 `json:"tail_kept"`
	Sampled    uint64 `json:"sampled"`
	Capacity   int    `json:"capacity_per_class"`
	// TailThresholdMS is the current slow-tail cutoff (0 until warmup).
	TailThresholdMS float64 `json:"tail_threshold_ms"`
}

// ring is one retention class's preallocated timeline buffer.
type ring struct {
	buf []ReqTimeline
	n   int // total writes; write cursor is n % len(buf)
}

func (r *ring) add(tl ReqTimeline) {
	r.buf[r.n%len(r.buf)] = tl
	r.n++
}

// snapshot appends the ring's live timelines to out, oldest first.
func (r *ring) snapshot(out []ReqTimeline) []ReqTimeline {
	live := r.n
	if live > len(r.buf) {
		live = len(r.buf)
	}
	for i := r.n - live; i < r.n; i++ {
		out = append(out, r.buf[i%len(r.buf)])
	}
	return out
}

// tailWindow is the OK-latency sample ring backing the slow-tail
// estimate; tailWarmup is how many samples it needs before the tail
// cutoff arms (mirroring the router's latencyDigest warmup).
const (
	tailWindow = 256
	tailWarmup = 32
)

// FlightRecorder implements the tail-sampled ring store. Safe for
// concurrent use; Record takes one mutex and never allocates beyond the
// timeline the caller already built.
type FlightRecorder struct {
	cfg FlightConfig

	mu       sync.Mutex
	errs     ring // error/degraded/deadline
	shed     ring
	ok       ring // slow tail + 1-in-N baseline
	lats     [tailWindow]float64
	latN     int
	thresh   float64 // cached TailQuantile cutoff, seconds
	seen     uint64
	kept     uint64
	errSeen  uint64
	errKept  uint64
	shedSeen uint64
	shedKept uint64
	tailKept uint64
	sampled  uint64
}

// flightActive is the hook registry: nil means recording is disabled and
// Flight() costs one atomic load.
var flightActive atomic.Pointer[FlightRecorder]

// EnableFlightRecorder installs a recorder (replacing any previous one)
// and returns it. The rings are preallocated here, never grown.
func EnableFlightRecorder(cfg FlightConfig) *FlightRecorder {
	cfg.applyDefaults()
	fr := &FlightRecorder{
		cfg:  cfg,
		errs: ring{buf: make([]ReqTimeline, cfg.Capacity)},
		shed: ring{buf: make([]ReqTimeline, cfg.Capacity)},
		ok:   ring{buf: make([]ReqTimeline, cfg.Capacity)},
	}
	flightActive.Store(fr)
	return fr
}

// DisableFlightRecorder removes the installed recorder.
func DisableFlightRecorder() { flightActive.Store(nil) }

// Flight returns the installed recorder, or nil when recording is
// disabled (the common case: one atomic load, no other work).
func Flight() *FlightRecorder { return flightActive.Load() }

// Record applies the tail-sampling policy to one finished timeline and
// reports whether it was kept. Non-ok timelines are always kept (the
// policy invariant the soak tests assert); OK timelines are kept when
// they land in the slow tail or the 1-in-N baseline sample.
func (fr *FlightRecorder) Record(tl ReqTimeline) bool {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.seen++
	switch tl.Status {
	case "shed":
		fr.shedSeen++
		fr.shedKept++
		fr.shed.add(tl)
	case "ok":
		sec := tl.DurNS.Seconds()
		tail := fr.observeLatLocked(sec)
		if tail {
			fr.tailKept++
			fr.ok.add(tl)
		} else if fr.cfg.SampleRate <= 1 || fr.seen%uint64(fr.cfg.SampleRate) == 0 {
			fr.sampled++
			fr.ok.add(tl)
		} else {
			return false
		}
	default: // error, degraded, deadline — and any future non-ok class
		fr.errSeen++
		fr.errKept++
		fr.errs.add(tl)
	}
	fr.kept++
	return true
}

// observeLatLocked feeds one OK latency into the tail estimator and
// reports whether it clears the current cutoff. The cutoff recomputes
// every 16 observations (sort of a 256-sample window), so the estimate
// tracks drifting load without per-record sorting.
func (fr *FlightRecorder) observeLatLocked(sec float64) bool {
	fr.lats[fr.latN%tailWindow] = sec
	fr.latN++
	if fr.latN >= tailWarmup && (fr.latN == tailWarmup || fr.latN%16 == 0) {
		n := fr.latN
		if n > tailWindow {
			n = tailWindow
		}
		buf := make([]float64, n)
		copy(buf, fr.lats[:n])
		sort.Float64s(buf)
		idx := int(fr.cfg.TailQuantile * float64(n))
		if idx >= n {
			idx = n - 1
		}
		fr.thresh = buf[idx]
	}
	return fr.latN > tailWarmup && fr.thresh > 0 && sec >= fr.thresh
}

// Stats snapshots the admission ledger.
func (fr *FlightRecorder) Stats() FlightStats {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return FlightStats{
		Seen:            fr.seen,
		Kept:            fr.kept,
		ErrorsSeen:      fr.errSeen,
		ErrorsKept:      fr.errKept,
		ShedSeen:        fr.shedSeen,
		ShedKept:        fr.shedKept,
		TailKept:        fr.tailKept,
		Sampled:         fr.sampled,
		Capacity:        fr.cfg.Capacity,
		TailThresholdMS: fr.thresh * 1e3,
	}
}

// Snapshot returns up to limit retained timelines, newest first across
// all classes. limit <= 0 returns everything retained.
func (fr *FlightRecorder) Snapshot(limit int) []ReqTimeline {
	fr.mu.Lock()
	out := make([]ReqTimeline, 0, 3*fr.cfg.Capacity)
	out = fr.errs.snapshot(out)
	out = fr.shed.snapshot(out)
	out = fr.ok.snapshot(out)
	fr.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Get finds a retained timeline by request id or trace id.
func (fr *FlightRecorder) Get(id string) (ReqTimeline, bool) {
	for _, tl := range fr.Snapshot(0) {
		if tl.RequestID == id || tl.TraceID == id {
			return tl, true
		}
	}
	return ReqTimeline{}, false
}

// RegisterFlightMetrics bridges the recorder's admission ledger onto reg.
// The closures read the globally installed recorder at scrape time, so
// they are safe to register before EnableFlightRecorder runs (and report
// zero while recording is disabled).
func RegisterFlightMetrics(reg *Registry) {
	sample := func(f func(FlightStats) float64) func() float64 {
		return func() float64 {
			fr := Flight()
			if fr == nil {
				return 0
			}
			return f(fr.Stats())
		}
	}
	reg.CounterFunc("temco_flight_seen_total",
		"Finished request timelines offered to the flight recorder.",
		sample(func(s FlightStats) float64 { return float64(s.Seen) }))
	reg.CounterFunc("temco_flight_kept_total",
		"Timelines retained by the tail-sampling policy.",
		sample(func(s FlightStats) float64 { return float64(s.Kept) }))
	reg.CounterFunc("temco_flight_errors_kept_total",
		"Error/degraded/deadline timelines retained (policy keeps 100%).",
		sample(func(s FlightStats) float64 { return float64(s.ErrorsKept) }))
}

// tierLanes maps a span's stage prefix onto a Chrome trace tid so one
// request's export stacks router, serving, batching, and kernel work on
// separate named lanes of a single timeline.
func tierLane(stage string) (uint64, string) {
	for i := 0; i < len(stage); i++ {
		if stage[i] == '.' {
			stage = stage[:i]
			break
		}
	}
	switch stage {
	case "route":
		return 1, "router"
	case "serve":
		return 2, "serving"
	case "batch":
		return 3, "batching"
	case "engine", "exec":
		return 4, "kernels"
	default:
		return 5, "other"
	}
}

// WriteRequestChromeTrace renders one retained timeline as Chrome
// trace_event JSON (chrome://tracing, Perfetto): spans become complete
// ("X") events on per-tier lanes, with thread_name metadata naming the
// lanes and the request itself as the process name.
func WriteRequestChromeTrace(w io.Writer, tl ReqTimeline) error {
	ct := chromeTrace{DisplayTimeUnit: "ms"}
	ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": tl.RequestID + " (" + tl.Status + ")"},
	})
	named := map[uint64]bool{}
	for _, sp := range tl.Spans {
		tid, laneName := tierLane(sp.Stage)
		if !named[tid] {
			named[tid] = true
			ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]any{"name": laneName},
			})
		}
		name := sp.Stage
		if sp.Step >= 0 && sp.Detail != "" {
			name = sp.Detail
		}
		args := map[string]any{"stage": sp.Stage}
		if sp.Detail != "" {
			args["detail"] = sp.Detail
		}
		if sp.Step >= 0 {
			args["step"] = sp.Step
		}
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: name,
			Cat:  sp.Stage,
			Ph:   "X",
			Ts:   float64(sp.StartNS) / float64(time.Microsecond),
			Dur:  float64(sp.DurNS) / float64(time.Microsecond),
			Pid:  1,
			Tid:  tid,
			Args: args,
		})
	}
	return json.NewEncoder(w).Encode(ct)
}
