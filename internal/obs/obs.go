// Package obs is the unified telemetry layer: a metrics registry rendered
// in Prometheus text format, a per-step span tracer exportable as Chrome
// trace_event JSON, and a measured memory recorder that samples actual
// live-bytes-over-steps from the executors. It is stdlib-only and built so
// the disabled path is free: the tracer and memory recorder hang off
// atomic.Pointer registries (the pattern proven by internal/faultinject),
// so an uninstrumented run pays one atomic load per executor invocation
// and zero heap allocations. Metrics instruments are plain atomics the
// holders update directly; there is no sampling goroutine.
//
// The three pieces answer three operator questions:
//
//   - Registry / Counter / Gauge / Histogram: "what is the service doing
//     right now?" — scrapeable rates and latency distributions
//     (temcod's /metrics, and the same instruments behind /statsz).
//   - Tracer / Span: "where did this run spend its time?" — per-step spans
//     carrying op kind, node name, duration, live bytes, arena offset, and
//     gemm pack-pool hits, loadable in chrome://tracing or Perfetto.
//   - MemRecorder / MemSample: "does the planner's Fig. 4 memory timeline
//     match what the executor actually holds live?" — measured
//     live-bytes-over-steps for predicted-vs-measured comparison
//     (cmd/memprofile -measured).
package obs
