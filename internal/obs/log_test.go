package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func logLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

func TestLoggerEmitsStructuredLines(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "temcod")
	l.Error("infer failed", "status", 500, "err", "engine exploded")
	l.Info("started")

	recs := logLines(t, &buf)
	if len(recs) != 2 {
		t.Fatalf("got %d lines, want 2", len(recs))
	}
	r := recs[0]
	if r["level"] != "error" || r["component"] != "temcod" || r["msg"] != "infer failed" {
		t.Fatalf("core fields wrong: %v", r)
	}
	if r["status"] != float64(500) || r["err"] != "engine exploded" {
		t.Fatalf("kv fields wrong: %v", r)
	}
	if _, ok := r["ts"].(string); !ok {
		t.Fatalf("ts missing: %v", r)
	}
	if recs[1]["level"] != "info" {
		t.Fatalf("second line wrong: %v", recs[1])
	}
}

func TestLoggerCtxCarriesTraceIDs(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "temcor")
	rt := NewReqTrace(NewTraceContext())
	ctx := ContextWithRequest(context.Background(), rt)
	l.ErrorCtx(ctx, "relay failed", "replica", "http://r1")
	l.WarnCtx(context.Background(), "no trace here")

	recs := logLines(t, &buf)
	if recs[0]["trace_id"] != rt.Context().TraceID || recs[0]["request_id"] != rt.Context().RequestID {
		t.Fatalf("trace ids not on line: %v", recs[0])
	}
	if _, ok := recs[1]["trace_id"]; ok {
		t.Fatalf("untraced context grew a trace_id: %v", recs[1])
	}
}

func TestLoggerRateLimitCountsDrops(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "temcod")
	l.SetLimit(0.001, 2) // two-line burst, effectively no refill in-test
	for i := 0; i < 10; i++ {
		l.Error("storm")
	}
	if got := l.Dropped(); got != 8 {
		t.Fatalf("Dropped() = %d, want 8", got)
	}
	if recs := logLines(t, &buf); len(recs) != 2 {
		t.Fatalf("emitted %d lines under a burst of 2", len(recs))
	}
	// The next emitted line carries the suppressed count.
	l.SetLimit(0, 0) // disable the limit
	l.Error("after storm")
	recs := logLines(t, &buf)
	last := recs[len(recs)-1]
	if last["dropped"] != float64(8) {
		t.Fatalf("dropped count not reported on next line: %v", last)
	}
	if l.Dropped() != 0 {
		t.Fatalf("dropped counter not reset after reporting")
	}
}

func TestLoggerMarshalFallback(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "temcod")
	l.Error("bad value", "fn", func() {}) // funcs cannot marshal
	recs := logLines(t, &buf)
	if len(recs) != 1 || recs[0]["msg"] != "bad value" {
		t.Fatalf("fallback line missing: %v", recs)
	}
}
