package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestTraceDisabledByDefault(t *testing.T) {
	DisableTrace()
	if TraceFor("anything") != nil {
		t.Fatal("TraceFor returned a tracer with tracing disabled")
	}
	if MemRecorderFor("anything") != nil {
		t.Fatal("MemRecorderFor returned a recorder with recording disabled")
	}
}

func TestTraceScope(t *testing.T) {
	tr := EnableTrace(TraceConfig{Scope: "optimized"})
	defer DisableTrace()
	if TraceFor("optimized") != tr {
		t.Fatal("scope match did not return the tracer")
	}
	if TraceFor("fallback") != nil {
		t.Fatal("scope mismatch returned the tracer")
	}
	all := EnableTrace(TraceConfig{})
	if TraceFor("anything") != all {
		t.Fatal("empty scope should match everything")
	}
}

func TestTraceRecordAndExport(t *testing.T) {
	tr := EnableTrace(TraceConfig{Capacity: 8})
	defer DisableTrace()
	lane := tr.Lane()
	tr.Record(Span{Name: "conv1", Cat: "engine", Kind: "conv2d", Lane: lane,
		Step: 3, Start: time.Millisecond, Dur: 2 * time.Millisecond,
		LiveBytes: 4096, ArenaOff: 128, PackHits: 2, PackMisses: 1})
	tr.Record(Span{Name: "relu1", Cat: "exec", Kind: "relu", Lane: lane,
		Step: 4, Start: 3 * time.Millisecond, Dur: time.Millisecond,
		LiveBytes: 8192, ArenaOff: -1})

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	if spans[0].Name != "conv1" || spans[0].LiveBytes != 4096 {
		t.Fatalf("span[0] = %+v", spans[0])
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var ct struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(ct.TraceEvents) != 2 {
		t.Fatalf("trace has %d events, want 2", len(ct.TraceEvents))
	}
	ev := ct.TraceEvents[0]
	for _, key := range []string{"name", "cat", "ph", "ts", "dur", "pid", "tid"} {
		if _, ok := ev[key]; !ok {
			t.Errorf("trace event missing %q: %v", key, ev)
		}
	}
	if ev["ph"] != "X" {
		t.Errorf("ph = %v, want X", ev["ph"])
	}
	args, ok := ev["args"].(map[string]any)
	if !ok {
		t.Fatalf("event args missing: %v", ev)
	}
	if args["arena_off"].(float64) != 128 {
		t.Errorf("arena_off = %v, want 128", args["arena_off"])
	}
	// Interpreter span (ArenaOff < 0) must not claim an arena offset.
	if _, ok := ct.TraceEvents[1]["args"].(map[string]any)["arena_off"]; ok {
		t.Error("interpreter span exported an arena_off")
	}
}

func TestTraceCapacityDrops(t *testing.T) {
	tr := EnableTrace(TraceConfig{Capacity: 2})
	defer DisableTrace()
	for i := 0; i < 5; i++ {
		tr.Record(Span{Name: "n", Step: i})
	}
	if len(tr.Spans()) != 2 {
		t.Fatalf("kept %d spans, want 2", len(tr.Spans()))
	}
	if tr.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tr.Dropped())
	}
}

func TestTraceConcurrentRecord(t *testing.T) {
	tr := EnableTrace(TraceConfig{Capacity: 10000})
	defer DisableTrace()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lane := tr.Lane()
			for i := 0; i < 100; i++ {
				tr.Record(Span{Name: "n", Lane: lane, Step: i, Start: tr.Since()})
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 800 {
		t.Fatalf("recorded %d spans, want 800", got)
	}
	lanes := map[uint64]bool{}
	for _, sp := range tr.Spans() {
		lanes[sp.Lane] = true
	}
	if len(lanes) != 8 {
		t.Fatalf("got %d lanes, want 8", len(lanes))
	}
}

func TestTraceRecordNoAllocSteadyState(t *testing.T) {
	tr := EnableTrace(TraceConfig{Capacity: 4})
	defer DisableTrace()
	sp := Span{Name: "n", Cat: "engine", Kind: "conv2d"}
	allocs := testing.AllocsPerRun(100, func() {
		tr.Record(sp)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v per call, want 0", allocs)
	}
}
