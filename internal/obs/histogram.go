package obs

import (
	"bufio"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency buckets, in seconds. They span 500µs
// to 10s, covering both the sub-millisecond compiled-engine path and
// interpreter runs of the large Fig. 11 models under load.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram in the Prometheus style: counts
// per upper bound plus a running sum and total count. Observe is lock-free
// (two atomic adds and one CAS loop for the sum); rendering reads are
// weakly consistent across buckets, which Prometheus scrapes tolerate.
type Histogram struct {
	bounds []float64       // strictly increasing upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
	// ex is the latest trace-carrying observation; rendered as an
	// OpenMetrics-style exemplar on the covering bucket line so a latency
	// spike on /metrics links to a concrete flight-recorded request.
	ex atomic.Pointer[exemplar]
}

// exemplar is one observation annotated with the trace that produced it.
type exemplar struct {
	traceID string
	value   float64
	at      time.Time
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d: %v", i, bounds))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound covers v (le is inclusive); values
	// beyond the last bound land in the +Inf overflow slot.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveWithExemplar records one value and, when traceID is non-empty,
// remembers it as the histogram's exemplar (last writer wins — the point
// is "show me one recent request behind this latency", not a census).
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID != "" {
		h.ex.Store(&exemplar{traceID: traceID, value: v, at: time.Now()})
	}
}

// Exemplar returns the latest trace-carrying observation; ok is false
// when none has been recorded.
func (h *Histogram) Exemplar() (traceID string, value float64, ok bool) {
	e := h.ex.Load()
	if e == nil {
		return "", 0, false
	}
	return e.traceID, e.value, true
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot returns the cumulative bucket counts (one per bound, plus +Inf
// last), the sum, and the count, as one weakly consistent view.
func (h *Histogram) Snapshot() (bounds []float64, cumulative []uint64, sum float64, count uint64) {
	bounds = h.bounds
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return bounds, cumulative, h.Sum(), h.count.Load()
}

// Quantile estimates the q-quantile from the bucket counts: linear
// interpolation inside the covering bucket (Prometheus histogram_quantile
// semantics), with the +Inf overflow reported as the largest finite bound.
// The estimate is upper-bound biased like any fixed-bucket quantile.
// Returns 0 when nothing has been observed.
func (h *Histogram) Quantile(q float64) float64 {
	bounds, cum, _, _ := h.Snapshot()
	total := cum[len(cum)-1]
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var prev uint64
	for i, c := range cum {
		if float64(c) >= rank && c > prev {
			if i >= len(bounds) {
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			frac := (rank - float64(prev)) / float64(c-prev)
			return lo + (bounds[i]-lo)*frac
		}
		prev = c
	}
	return bounds[len(bounds)-1]
}

// write renders the histogram in exposition format under name. The _count
// line repeats the +Inf bucket (not the count atomic) so the exposition
// invariant count == bucket{+Inf} holds even when Observe races a scrape.
// When an exemplar exists, the first bucket covering its value carries it
// as an OpenMetrics-style suffix: ` # {trace_id="..."} value timestamp`.
func (h *Histogram) write(bw *bufio.Writer, name string) {
	bounds, cum, sum, _ := h.Snapshot()
	ex := h.ex.Load()
	exWritten := false
	writeEx := func(covering bool) {
		if ex == nil || exWritten || !covering {
			bw.WriteByte('\n')
			return
		}
		exWritten = true
		fmt.Fprintf(bw, " # {trace_id=%q} %s %s\n",
			ex.traceID, formatFloat(ex.value),
			strconv.FormatFloat(float64(ex.at.UnixNano())/1e9, 'f', 3, 64))
	}
	for i, b := range bounds {
		fmt.Fprintf(bw, "%s_bucket{le=%q} %d", name, formatFloat(b), cum[i])
		writeEx(ex != nil && ex.value <= b)
	}
	inf := cum[len(cum)-1]
	fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d", name, inf)
	writeEx(ex != nil)
	fmt.Fprintf(bw, "%s_sum %s\n", name, strconv.FormatFloat(sum, 'g', -1, 64))
	fmt.Fprintf(bw, "%s_count %d\n", name, inf)
}
