package obs

import "sync/atomic"

// Process-wide copy-accounting counters. The alias-aware memory plan
// (memplan.BuildAliasPlan, DESIGN.md §14) turns concat inputs, flatten
// reshapes, and borrowable graph inputs into views, so the memcpy that
// would have materialized them never runs. These counters make that
// visible: CopyBytes is the data movement both executors still perform
// (concat fallbacks, flatten copies, input copy-in), CopiesEliminated /
// EliminatedBytes is what the plan proved away. A rising copy-bytes rate
// under stable load means requests are falling off the alias fast path
// (e.g. batch buckets where concat aliasing is refused).
var (
	copyBytes        atomic.Uint64
	copiesEliminated atomic.Uint64
	copyElimBytes    atomic.Uint64
)

// CountCopies adds one run's copy accounting: copied bytes actually moved,
// the number of whole-tensor copies the alias plan eliminated, and the
// bytes those would have moved. Executors accumulate locally per run and
// publish once, so the steady-state cost is three atomic adds.
func CountCopies(copied int64, eliminated uint64, eliminatedBytes int64) {
	if copied > 0 {
		copyBytes.Add(uint64(copied))
	}
	if eliminated > 0 {
		copiesEliminated.Add(eliminated)
		copyElimBytes.Add(uint64(eliminatedBytes))
	}
}

// CopyStats is a point-in-time snapshot of the copy-accounting counters,
// surfaced by temcod's /statsz endpoint. Counters are cumulative since
// process start; callers diff snapshots for rates.
type CopyStats struct {
	// CopyBytes totals tensor bytes moved by executor copies (concat
	// inputs, flatten reshapes, graph-input copy-in).
	CopyBytes uint64 `json:"copy_bytes"`
	// CopiesEliminated counts whole-tensor copies the alias plan removed
	// (aliased concat inputs, flatten views, borrowed inputs).
	CopiesEliminated uint64 `json:"copies_eliminated"`
	// EliminatedBytes totals the bytes those eliminated copies would have
	// moved.
	EliminatedBytes uint64 `json:"eliminated_bytes"`
}

// CopyStatsSnapshot reads the copy-accounting counters.
func CopyStatsSnapshot() CopyStats {
	return CopyStats{
		CopyBytes:        copyBytes.Load(),
		CopiesEliminated: copiesEliminated.Load(),
		EliminatedBytes:  copyElimBytes.Load(),
	}
}

// RegisterCopyMetrics exposes the copy-accounting counters on an
// obs.Registry as sampled CounterFuncs: the package atomics stay the
// single source of truth, so /metrics and a CopyStatsSnapshot in the same
// process can never disagree. Register on Default() once at process start
// (registration is idempotent per registry).
func RegisterCopyMetrics(reg *Registry) {
	reg.CounterFunc("temco_copy_bytes_total",
		"Tensor bytes moved by executor copies (concat, flatten, input copy-in).",
		func() float64 { return float64(copyBytes.Load()) })
	reg.CounterFunc("temco_copies_eliminated_total",
		"Whole-tensor copies eliminated by the alias-aware memory plan.",
		func() float64 { return float64(copiesEliminated.Load()) })
	reg.CounterFunc("temco_copy_eliminated_bytes_total",
		"Bytes the alias-eliminated copies would have moved.",
		func() float64 { return float64(copyElimBytes.Load()) })
}
