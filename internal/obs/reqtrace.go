package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// This file is the request-scoped half of the tracing layer (DESIGN.md
// §15). The Tracer in trace.go records process-lifetime executor spans;
// a ReqTrace follows ONE request across tiers — router pick/retry/hedge,
// admission, queue wait, batch coalescing, engine steps, scatter — keyed
// by a W3C traceparent that temcor mints and temcod inherits, so the two
// processes' timelines join on one trace id.

// TraceparentHeader is the W3C trace-context header carrying the trace id
// across tier boundaries (lowercase per the spec; Go's header canonical-
// ization is applied on Set/Get either way).
const TraceparentHeader = "traceparent"

// RequestIDHeader carries the human-greppable request id. It is echoed on
// every response — including sheds, drains, and relay errors — so any
// status code can be correlated with logs and the flight recorder.
const RequestIDHeader = "X-Temco-Request-Id"

// TraceContext identifies one end-to-end request. TraceID spans the whole
// journey; SpanID names the current hop, ParentID the hop that minted it.
type TraceContext struct {
	TraceID   string `json:"trace_id"` // 32 lowercase hex chars
	SpanID    string `json:"span_id"`  // 16 lowercase hex chars
	ParentID  string `json:"parent_id,omitempty"`
	RequestID string `json:"request_id"`
	Sampled   bool   `json:"sampled"`
}

// randHex returns n random bytes as 2n lowercase hex characters.
func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failing means the platform is broken; fall back to
		// an all-zero id rather than taking the serving path down.
		for i := range b {
			b[i] = 0
		}
	}
	return hex.EncodeToString(b)
}

// NewTraceContext mints a fresh root context: new trace id, new span id,
// and a request id derived from the trace id so the two are greppable
// together.
func NewTraceContext() TraceContext {
	tid := randHex(16)
	return TraceContext{
		TraceID:   tid,
		SpanID:    randHex(8),
		RequestID: "req-" + tid[:12],
		Sampled:   true,
	}
}

// Child derives the next hop's context: same trace and request id, a new
// span id, with the current span recorded as the parent.
func (tc TraceContext) Child() TraceContext {
	tc.ParentID = tc.SpanID
	tc.SpanID = randHex(8)
	return tc
}

// Traceparent renders the W3C header value: 00-<trace-id>-<span-id>-<flags>.
func (tc TraceContext) Traceparent() string {
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return "00-" + tc.TraceID + "-" + tc.SpanID + "-" + flags
}

// ParseTraceparent parses a W3C traceparent header. ok is false for a
// missing or malformed value (version, field widths, hex alphabet, and the
// all-zero ids the spec forbids); callers then mint a fresh context.
func ParseTraceparent(h string) (TraceContext, bool) {
	// 00-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx-xxxxxxxxxxxxxxxx-xx
	if len(h) != 55 || h[0] != '0' || h[1] != '0' ||
		h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceContext{}, false
	}
	traceID, spanID, flags := h[3:35], h[36:52], h[53:55]
	if !isHex(traceID) || !isHex(spanID) || !isHex(flags) {
		return TraceContext{}, false
	}
	if allZero(traceID) || allZero(spanID) {
		return TraceContext{}, false
	}
	return TraceContext{
		TraceID:   traceID,
		SpanID:    spanID,
		RequestID: "req-" + traceID[:12],
		Sampled:   flags[1]&1 == 1,
	}, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// ReqSpan is one annotated step of a request timeline. Offsets are on the
// request's own clock (time since the ReqTrace was created), so spans from
// different tiers of one process order naturally.
type ReqSpan struct {
	// Stage names the step ("route.attempt", "serve.queue", "batch.run",
	// "engine.step", ...). Detail carries the stage-specific annotation
	// (replica URL, bucket size, node name).
	Stage  string `json:"stage"`
	Detail string `json:"detail,omitempty"`
	// Step is the schedule slot for engine/exec steps, -1 elsewhere.
	Step    int           `json:"step"`
	StartNS time.Duration `json:"start_ns"`
	DurNS   time.Duration `json:"dur_ns"`
}

// reqTraceSpanCap bounds the per-request span buffer. It is preallocated
// at NewReqTrace; further spans are dropped and counted, so a pathological
// request cannot grow memory. Large enough for every Fig. 11 model's
// per-step engine spans plus the serving-tier annotations.
const reqTraceSpanCap = 192

// ReqTrace accumulates one request's spans while the request is live.
// Safe for concurrent use: the router's hedged attempts and the serving
// tier's workers may annotate the same request from different goroutines.
// After Finish, further records are dropped — a hedge loser that reports
// late cannot corrupt the sealed timeline.
type ReqTrace struct {
	tc    TraceContext
	start time.Time

	mu       sync.Mutex
	spans    []ReqSpan
	dropped  int
	status   string
	errMsg   string
	siblings []string
	done     bool
}

// NewReqTrace starts a request timeline with a preallocated span buffer.
func NewReqTrace(tc TraceContext) *ReqTrace {
	return &ReqTrace{tc: tc, start: time.Now(), spans: make([]ReqSpan, 0, reqTraceSpanCap)}
}

// Context returns the request's trace identifiers.
func (rt *ReqTrace) Context() TraceContext { return rt.tc }

// Since returns the elapsed time on the request's clock.
func (rt *ReqTrace) Since() time.Duration { return time.Since(rt.start) }

// SpanAt records a span positioned by request-clock offsets. Stage and
// detail should be interned or pre-existing strings on hot paths; the
// append itself never reallocates (capacity fixed at NewReqTrace).
func (rt *ReqTrace) SpanAt(stage, detail string, step int, start, dur time.Duration) {
	rt.mu.Lock()
	if !rt.done {
		if len(rt.spans) < cap(rt.spans) {
			rt.spans = append(rt.spans, ReqSpan{Stage: stage, Detail: detail, Step: step, StartNS: start, DurNS: dur})
		} else {
			rt.dropped++
		}
	}
	rt.mu.Unlock()
}

// Span records a wall-clock span (start .. start+dur).
func (rt *ReqTrace) Span(stage, detail string, start time.Time, dur time.Duration) {
	rt.SpanAt(stage, detail, -1, start.Sub(rt.start), dur)
}

// Event records an instantaneous annotation at the current time.
func (rt *ReqTrace) Event(stage, detail string) {
	rt.SpanAt(stage, detail, -1, rt.Since(), 0)
}

// SetStatus classifies the request outcome explicitly ("ok", "error",
// "shed", "degraded", "deadline"). An explicit status wins over the
// HTTP-code derivation in Finish; the flight recorder keeps every non-ok
// timeline.
func (rt *ReqTrace) SetStatus(status string) {
	rt.mu.Lock()
	if !rt.done {
		rt.status = status
	}
	rt.mu.Unlock()
}

// SetError attaches the failure message (and implies an error-class
// status unless one was already set).
func (rt *ReqTrace) SetError(msg string) {
	rt.mu.Lock()
	if !rt.done {
		rt.errMsg = msg
	}
	rt.mu.Unlock()
}

// AddSibling links another request id that rode the same coalesced batch.
func (rt *ReqTrace) AddSibling(id string) {
	rt.mu.Lock()
	if !rt.done {
		rt.siblings = append(rt.siblings, id)
	}
	rt.mu.Unlock()
}

// statusForHTTP derives the timeline status class from an HTTP code when
// no tier set one explicitly.
func statusForHTTP(code int) string {
	switch {
	case code == 429 || code == 503:
		return "shed"
	case code == 504:
		return "deadline"
	case code >= 400:
		return "error"
	default:
		return "ok"
	}
}

// Finish seals the trace into an immutable timeline and drops all later
// records (hedge losers, canceled batch mates). Idempotent in effect:
// a second Finish returns a timeline with the same identity but whatever
// spans remained — callers are expected to Finish exactly once.
func (rt *ReqTrace) Finish(httpStatus int) ReqTimeline {
	rt.mu.Lock()
	rt.done = true
	status := rt.status
	if status == "" {
		status = statusForHTTP(httpStatus)
	}
	tl := ReqTimeline{
		TraceID:      rt.tc.TraceID,
		RequestID:    rt.tc.RequestID,
		ParentID:     rt.tc.ParentID,
		Start:        rt.start,
		DurNS:        time.Since(rt.start),
		Status:       status,
		HTTPStatus:   httpStatus,
		Err:          rt.errMsg,
		DroppedSpans: rt.dropped,
	}
	tl.Spans = make([]ReqSpan, len(rt.spans))
	copy(tl.Spans, rt.spans)
	if len(rt.siblings) > 0 {
		tl.Siblings = append([]string(nil), rt.siblings...)
	}
	rt.mu.Unlock()
	return tl
}

// reqTraceKey keys the context value; a private zero-size type so the
// lookup neither collides nor allocates.
type reqTraceKey struct{}

// ContextWithRequest attaches a request trace to ctx; every tier below
// (serve, engine, exec, the router's outbound attempts) retrieves it with
// RequestFrom and annotates its part of the timeline.
func ContextWithRequest(ctx context.Context, rt *ReqTrace) context.Context {
	return context.WithValue(ctx, reqTraceKey{}, rt)
}

// RequestFrom returns the request trace attached to ctx, or nil. The nil
// path is the disabled path: executors check once per run and skip all
// request-scoped instrumentation.
func RequestFrom(ctx context.Context) *ReqTrace {
	rt, _ := ctx.Value(reqTraceKey{}).(*ReqTrace)
	return rt
}
