package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func okTimeline(id string, dur time.Duration) ReqTimeline {
	return ReqTimeline{
		TraceID:    strings.Repeat("a", 20) + fmt.Sprintf("%012d", len(id)),
		RequestID:  id,
		Start:      time.Now(),
		DurNS:      dur,
		Status:     "ok",
		HTTPStatus: 200,
	}
}

func TestFlightRecorderKeepsAllErrorsAndSheds(t *testing.T) {
	fr := EnableFlightRecorder(FlightConfig{Capacity: 8})
	defer DisableFlightRecorder()
	for i := 0; i < 50; i++ {
		tl := okTimeline(fmt.Sprintf("req-err%04d", i), time.Millisecond)
		if i%2 == 0 {
			tl.Status = "error"
		} else {
			tl.Status = "shed"
		}
		if !fr.Record(tl) {
			t.Fatalf("non-ok timeline %d was not kept", i)
		}
	}
	st := fr.Stats()
	if st.ErrorsKept != st.ErrorsSeen || st.ErrorsSeen != 25 {
		t.Fatalf("errors kept %d / seen %d, want 25/25", st.ErrorsKept, st.ErrorsSeen)
	}
	if st.ShedKept != st.ShedSeen || st.ShedSeen != 25 {
		t.Fatalf("sheds kept %d / seen %d, want 25/25", st.ShedKept, st.ShedSeen)
	}
}

func TestFlightRecorderShedFloodDoesNotEvictErrors(t *testing.T) {
	fr := EnableFlightRecorder(FlightConfig{Capacity: 4})
	defer DisableFlightRecorder()
	errTL := okTimeline("req-the-error", time.Millisecond)
	errTL.Status = "error"
	fr.Record(errTL)
	for i := 0; i < 100; i++ {
		tl := okTimeline(fmt.Sprintf("req-shed%04d", i), time.Millisecond)
		tl.Status = "shed"
		fr.Record(tl)
	}
	if _, found := fr.Get("req-the-error"); !found {
		t.Fatal("shed flood evicted the error timeline from its class ring")
	}
}

func TestFlightRecorderSamplesOK(t *testing.T) {
	fr := EnableFlightRecorder(FlightConfig{Capacity: 64, SampleRate: 4})
	defer DisableFlightRecorder()
	kept := 0
	for i := 0; i < 40; i++ {
		// Zero-duration keeps the tail estimator's threshold at zero, so
		// only the 1-in-N baseline sample can keep these.
		if fr.Record(okTimeline(fmt.Sprintf("req-ok%04d", i), 0)) {
			kept++
		}
	}
	st := fr.Stats()
	if st.TailKept != 0 {
		t.Fatalf("tail kept %d zero-duration timelines", st.TailKept)
	}
	if st.Sampled != 10 || kept != 10 {
		t.Fatalf("sampled %d (kept %d), want 10 of 40 at 1-in-4", st.Sampled, kept)
	}
}

func TestFlightRecorderKeepsSlowTail(t *testing.T) {
	// SampleRate high enough that the baseline sample never fires here, so
	// every OK keep below is a tail keep.
	fr := EnableFlightRecorder(FlightConfig{Capacity: 64, SampleRate: 1 << 20})
	defer DisableFlightRecorder()
	for i := 0; i < 48; i++ {
		d := time.Millisecond
		if i%2 == 1 {
			d = 10 * time.Millisecond
		}
		fr.Record(okTimeline(fmt.Sprintf("req-warm%04d", i), d))
	}
	slow := okTimeline("req-slowpoke", 100*time.Millisecond)
	if !fr.Record(slow) {
		t.Fatal("slow-tail timeline was not kept")
	}
	st := fr.Stats()
	if st.TailKept == 0 {
		t.Fatal("TailKept is zero after a 100ms outlier cleared warmup")
	}
	if st.TailThresholdMS <= 0 {
		t.Fatalf("tail threshold %.3fms not armed after warmup", st.TailThresholdMS)
	}
	if _, found := fr.Get("req-slowpoke"); !found {
		t.Fatal("slow timeline not retrievable by request id")
	}
}

func TestFlightRecorderSnapshotNewestFirst(t *testing.T) {
	fr := EnableFlightRecorder(FlightConfig{Capacity: 8, SampleRate: 1})
	defer DisableFlightRecorder()
	base := time.Now()
	for i := 0; i < 3; i++ {
		tl := okTimeline(fmt.Sprintf("req-order%d", i), time.Millisecond)
		tl.Status = "error"
		tl.Start = base.Add(time.Duration(i) * time.Second)
		fr.Record(tl)
	}
	got := fr.Snapshot(0)
	if len(got) != 3 {
		t.Fatalf("snapshot has %d timelines, want 3", len(got))
	}
	if got[0].RequestID != "req-order2" || got[2].RequestID != "req-order0" {
		t.Fatalf("snapshot not newest-first: %s, %s, %s",
			got[0].RequestID, got[1].RequestID, got[2].RequestID)
	}
	if lim := fr.Snapshot(2); len(lim) != 2 || lim[0].RequestID != "req-order2" {
		t.Fatalf("limit=2 snapshot wrong: %+v", lim)
	}
}

func TestFlightRecorderGetByTraceID(t *testing.T) {
	fr := EnableFlightRecorder(FlightConfig{Capacity: 8})
	defer DisableFlightRecorder()
	tl := okTimeline("req-bytrace", time.Millisecond)
	tl.Status = "error"
	fr.Record(tl)
	if got, found := fr.Get(tl.TraceID); !found || got.RequestID != "req-bytrace" {
		t.Fatalf("lookup by trace id failed: found=%v got=%+v", found, got)
	}
	if _, found := fr.Get("req-nope"); found {
		t.Fatal("Get found a timeline that was never recorded")
	}
}

func TestFlightHandler(t *testing.T) {
	DisableFlightRecorder()
	h := FlightHandler()

	// Disabled: the endpoint documents that recording is off.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", FlightPath, nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("disabled recorder answered %d, want 503", rec.Code)
	}

	fr := EnableFlightRecorder(FlightConfig{Capacity: 8})
	defer DisableFlightRecorder()
	tl := okTimeline("req-handler01", 2*time.Millisecond)
	tl.Status = "error"
	tl.Err = "engine exploded"
	tl.Spans = []ReqSpan{
		{Stage: "serve.queue", Step: -1, DurNS: time.Millisecond},
		{Stage: "engine.step", Detail: "conv1", Step: 0, DurNS: time.Millisecond},
	}
	fr.Record(tl)

	// List view: stats plus summaries.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", FlightPath+"?n=5", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("list answered %d", rec.Code)
	}
	var list struct {
		Stats    FlightStats       `json:"stats"`
		Requests []timelineSummary `json:"requests"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("list is not JSON: %v", err)
	}
	if list.Stats.ErrorsKept != 1 || len(list.Requests) != 1 || list.Requests[0].RequestID != "req-handler01" {
		t.Fatalf("list content wrong: %+v", list)
	}

	// Detail by request id.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", FlightPath+"/req-handler01", nil))
	var got ReqTimeline
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("detail is not JSON: %v", err)
	}
	if got.Err != "engine exploded" || len(got.Spans) != 2 {
		t.Fatalf("detail content wrong: %+v", got)
	}

	// Chrome trace export.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", FlightPath+"/req-handler01?format=chrome", nil))
	body := rec.Body.String()
	if !json.Valid(rec.Body.Bytes()) {
		t.Fatal("chrome export is not valid JSON")
	}
	for _, want := range []string{`"serving"`, `"kernels"`, `"ph":"X"`, "req-handler01 (error)"} {
		if !strings.Contains(body, want) {
			t.Errorf("chrome export missing %s", want)
		}
	}

	// Unknown id.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", FlightPath+"/req-missing", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown id answered %d, want 404", rec.Code)
	}
}

func TestTraceHTTPMintsAndEchoesIDs(t *testing.T) {
	DisableFlightRecorder()
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/infer" && RequestFrom(r.Context()) == nil {
			t.Error("traced path has no ReqTrace in context")
		}
		if r.URL.Path != "/infer" && RequestFrom(r.Context()) != nil {
			t.Error("untraced path carries a ReqTrace")
		}
		w.WriteHeader(http.StatusTeapot)
	})
	h := TraceHTTP(inner, "/infer")

	for _, path := range []string{"/infer", "/statsz"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		rid := rec.Header().Get(RequestIDHeader)
		if !strings.HasPrefix(rid, "req-") {
			t.Fatalf("%s: request id header %q", path, rid)
		}
		if tid := rec.Header().Get("X-Temco-Trace-Id"); len(tid) != 32 {
			t.Fatalf("%s: trace id header %q", path, tid)
		}
	}
}

func TestTraceHTTPInheritsTraceparent(t *testing.T) {
	fr := EnableFlightRecorder(FlightConfig{Capacity: 8, SampleRate: 1})
	defer DisableFlightRecorder()
	var seen TraceContext
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestFrom(r.Context()).Context()
	})
	h := TraceHTTP(inner, "/infer")

	parent := NewTraceContext()
	req := httptest.NewRequest("POST", "/infer", nil)
	req.Header.Set(TraceparentHeader, parent.Traceparent())
	req.Header.Set(RequestIDHeader, "req-upstream01")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	if seen.TraceID != parent.TraceID {
		t.Fatalf("trace id not inherited: %q vs %q", seen.TraceID, parent.TraceID)
	}
	if seen.ParentID != parent.SpanID {
		t.Fatalf("inherited context not a child hop: parent=%q want %q", seen.ParentID, parent.SpanID)
	}
	if seen.RequestID != "req-upstream01" {
		t.Fatalf("upstream request id not honored: %q", seen.RequestID)
	}
	if got := rec.Header().Get(RequestIDHeader); got != "req-upstream01" {
		t.Fatalf("response echoed %q", got)
	}
	// The sealed timeline landed in the recorder under the inherited ids.
	if tl, found := fr.Get("req-upstream01"); !found || tl.TraceID != parent.TraceID {
		t.Fatalf("flight recorder lookup failed: found=%v tl=%+v", found, tl)
	}
}

func TestTraceHTTPRecordsErrorStatus(t *testing.T) {
	fr := EnableFlightRecorder(FlightConfig{Capacity: 8})
	defer DisableFlightRecorder()
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	h := TraceHTTP(inner, "/infer")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/infer", nil))
	rid := rec.Header().Get(RequestIDHeader)
	tl, found := fr.Get(rid)
	if !found {
		t.Fatalf("error timeline for %s not retained", rid)
	}
	if tl.Status != "error" || tl.HTTPStatus != http.StatusInternalServerError {
		t.Fatalf("timeline classed %q/%d, want error/500", tl.Status, tl.HTTPStatus)
	}
}

func TestRegisterFlightMetrics(t *testing.T) {
	DisableFlightRecorder()
	reg := NewRegistry()
	RegisterFlightMetrics(reg)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "temco_flight_seen_total 0") {
		t.Fatalf("disabled recorder should report 0:\n%s", buf.String())
	}

	fr := EnableFlightRecorder(FlightConfig{Capacity: 8})
	defer DisableFlightRecorder()
	tl := okTimeline("req-metrics01", time.Millisecond)
	tl.Status = "error"
	fr.Record(tl)
	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "temco_flight_seen_total 1") ||
		!strings.Contains(out, "temco_flight_errors_kept_total 1") {
		t.Fatalf("enabled recorder counts missing:\n%s", out)
	}
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("flight metrics exposition fails lint: %v", err)
	}
}

func TestHistogramExemplarExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("temco_test_latency_seconds", "Test latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.ObserveWithExemplar(0.05, strings.Repeat("ab", 16))

	tid, v, ok := h.Exemplar()
	if !ok || tid != strings.Repeat("ab", 16) || v != 0.05 {
		t.Fatalf("exemplar = %q/%v/%v", tid, v, ok)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, ` # {trace_id="`+strings.Repeat("ab", 16)+`"} 0.05`) {
		t.Fatalf("exposition missing exemplar:\n%s", out)
	}
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("exemplar-bearing exposition fails lint: %v", err)
	}
}

func TestCheckExemplarRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		// Exemplar on a non-bucket sample.
		"# TYPE temco_x counter\ntemco_x 1 # {trace_id=\"abc\"} 1\n",
		// Bare hash tail that is not an exemplar.
		"# TYPE temco_y histogram\ntemco_y_bucket{le=\"+Inf\"} 1 # junk\ntemco_y_sum 1\ntemco_y_count 1\n",
	} {
		if err := CheckExposition([]byte(line)); err == nil {
			t.Errorf("lint accepted malformed exposition:\n%s", line)
		}
	}
}
