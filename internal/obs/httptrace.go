package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// FlightPath is where both daemons mount the flight-recorder API:
// GET FlightPath           — retained timeline summaries + recorder stats
// GET FlightPath/{id}      — one full timeline (request id or trace id)
// GET FlightPath/{id}?format=chrome — the same as Chrome trace_event JSON
const FlightPath = "/debugz/requests"

// statusWriter captures the handler's status code for the sealed timeline
// while passing the optional interfaces the daemons rely on through
// (Flusher for /quitz, Hijacker for the blackhole fault layer).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	if hj, ok := w.ResponseWriter.(http.Hijacker); ok {
		return hj.Hijack()
	}
	return nil, nil, fmt.Errorf("obs: response writer does not support hijacking")
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// TraceHTTP wraps a daemon's handler with the request-tracing middleware:
//
//   - every request gets a TraceContext — inherited from an incoming W3C
//     traceparent (the temcor→temcod hop) or freshly minted — and every
//     response echoes X-Temco-Request-Id, whatever the status code;
//   - requests to tracePath additionally carry a live ReqTrace in their
//     context for the tiers below to annotate, and the sealed timeline is
//     offered to the flight recorder (when one is enabled) on completion.
//
// With recording disabled the per-request cost is the header work plus
// one atomic load; nothing is retained.
func TraceHTTP(h http.Handler, tracePath string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tc, ok := ParseTraceparent(r.Header.Get(TraceparentHeader))
		if ok {
			tc = tc.Child()
		} else {
			tc = NewTraceContext()
		}
		if rid := r.Header.Get(RequestIDHeader); rid != "" {
			tc.RequestID = rid
		}
		w.Header().Set(RequestIDHeader, tc.RequestID)
		w.Header().Set("X-Temco-Trace-Id", tc.TraceID)
		if r.URL.Path != tracePath {
			h.ServeHTTP(w, r)
			return
		}
		rt := NewReqTrace(tc)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(sw, r.WithContext(ContextWithRequest(r.Context(), rt)))
		tl := rt.Finish(sw.status)
		if fr := Flight(); fr != nil {
			fr.Record(tl)
		}
	})
}

// timelineSummary is the list view of one retained timeline: enough to
// pick a request out of the lineup without shipping every span.
type timelineSummary struct {
	RequestID  string  `json:"request_id"`
	TraceID    string  `json:"trace_id"`
	Status     string  `json:"status"`
	HTTPStatus int     `json:"http_status"`
	Start      string  `json:"start"`
	DurMS      float64 `json:"dur_ms"`
	Spans      int     `json:"spans"`
	Siblings   int     `json:"siblings,omitempty"`
	Err        string  `json:"error,omitempty"`
}

// FlightHandler serves the flight-recorder API (mount at FlightPath and
// FlightPath+"/"). It answers 503 while no recorder is enabled, so the
// endpoint itself documents whether recording is armed.
func FlightHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fr := Flight()
		if fr == nil {
			writeFlightJSON(w, http.StatusServiceUnavailable,
				map[string]any{"error": "flight recorder disabled", "status": http.StatusServiceUnavailable})
			return
		}
		id := strings.Trim(strings.TrimPrefix(r.URL.Path, FlightPath), "/")
		if id == "" {
			limit := 0
			if n := r.URL.Query().Get("n"); n != "" {
				if v, err := strconv.Atoi(n); err == nil && v > 0 {
					limit = v
				}
			}
			tls := fr.Snapshot(limit)
			sums := make([]timelineSummary, len(tls))
			for i, tl := range tls {
				sums[i] = timelineSummary{
					RequestID:  tl.RequestID,
					TraceID:    tl.TraceID,
					Status:     tl.Status,
					HTTPStatus: tl.HTTPStatus,
					Start:      tl.Start.UTC().Format(time.RFC3339Nano),
					DurMS:      float64(tl.DurNS) / float64(time.Millisecond),
					Spans:      len(tl.Spans),
					Siblings:   len(tl.Siblings),
					Err:        tl.Err,
				}
			}
			writeFlightJSON(w, http.StatusOK, map[string]any{
				"stats":    fr.Stats(),
				"requests": sums,
			})
			return
		}
		tl, found := fr.Get(id)
		if !found {
			writeFlightJSON(w, http.StatusNotFound,
				map[string]any{"error": "no retained timeline for " + id, "status": http.StatusNotFound})
			return
		}
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			WriteRequestChromeTrace(w, tl)
			return
		}
		writeFlightJSON(w, http.StatusOK, tl)
	})
}

func writeFlightJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
