package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. Safe for concurrent use;
// Inc/Add are single atomic adds, cheap enough for per-request paths.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down (queue depth, in-flight).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metricKind tags an entry for TYPE lines and idempotent re-registration.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
	kindCounterVecFunc
	kindGaugeVecFunc
)

func (k metricKind) String() string {
	switch k {
	case kindCounter, kindCounterFunc, kindCounterVecFunc:
		return "counter"
	case kindGauge, kindGaugeFunc, kindGaugeVecFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// LabeledValue is one sample of a labeled metric family: ordered label
// key/value pairs plus the value. Label keys must match the metric-name
// grammar; values are escaped at exposition time.
type LabeledValue struct {
	Labels [][2]string
	Value  float64
}

// entry is one registered metric family.
type entry struct {
	name, help string
	kind       metricKind
	c          *Counter
	g          *Gauge
	h          *Histogram
	fn         func() float64
	vfn        func() []LabeledValue
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Registration is expected at setup time; reads
// (WritePrometheus) may run concurrently with instrument updates.
// Registering a name that already exists with the same kind returns the
// existing instrument (so per-process collectors like the gemm pool can be
// registered idempotently); a kind mismatch panics — that is a programming
// error, not an operational condition.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*entry
	ordered []*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

// defaultRegistry collects process-wide instruments (gemm pool, fault
// injection, runtime stats); per-session instruments live in their own
// registries so sessions never collide on names.
var defaultRegistry = NewRegistry()

// Default returns the process-global registry.
func Default() *Registry { return defaultRegistry }

// validName reports whether name matches the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// register inserts or returns the existing entry for name.
func (r *Registry) register(name, help string, kind metricKind, build func() *entry) *entry {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		if e.kind.String() != kind.String() {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, kind, e.kind))
		}
		return e
	}
	e := build()
	e.name, e.help, e.kind = name, help, kind
	r.byName[name] = e
	r.ordered = append(r.ordered, e)
	return e
}

// Counter registers (or returns the existing) counter with this name.
func (r *Registry) Counter(name, help string) *Counter {
	e := r.register(name, help, kindCounter, func() *entry { return &entry{c: &Counter{}} })
	if e.c == nil {
		panic(fmt.Sprintf("obs: metric %q is a counter func, not a counter", name))
	}
	return e.c
}

// Gauge registers (or returns the existing) gauge with this name.
func (r *Registry) Gauge(name, help string) *Gauge {
	e := r.register(name, help, kindGauge, func() *entry { return &entry{g: &Gauge{}} })
	if e.g == nil {
		panic(fmt.Sprintf("obs: metric %q is a gauge func, not a gauge", name))
	}
	return e.g
}

// Histogram registers (or returns the existing) fixed-bucket histogram.
// bounds must be strictly increasing upper bounds; the +Inf bucket is
// implicit. Pass nil for DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	e := r.register(name, help, kindHistogram, func() *entry { return &entry{h: newHistogram(bounds)} })
	return e.h
}

// CounterFunc registers a counter whose value is sampled from fn at scrape
// time — the bridge for counters owned elsewhere (gemm pool atomics, the
// fault-injection registry, breaker trip counts). fn must be safe for
// concurrent use and monotonic.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	e := r.register(name, help, kindCounterFunc, func() *entry { return &entry{} })
	r.mu.Lock()
	e.fn = fn
	r.mu.Unlock()
}

// GaugeFunc registers a gauge sampled from fn at scrape time (queue depth,
// goroutine count, breaker state).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	e := r.register(name, help, kindGaugeFunc, func() *entry { return &entry{} })
	r.mu.Lock()
	e.fn = fn
	r.mu.Unlock()
}

// CounterVecFunc registers a labeled counter family whose samples are
// produced by fn at scrape time — the bridge for per-member counters owned
// elsewhere (e.g. per-replica placement counts in the cluster router). fn
// must be safe for concurrent use and every sample monotonic.
func (r *Registry) CounterVecFunc(name, help string, fn func() []LabeledValue) {
	e := r.register(name, help, kindCounterVecFunc, func() *entry { return &entry{} })
	r.mu.Lock()
	e.vfn = fn
	r.mu.Unlock()
}

// GaugeVecFunc registers a labeled gauge family sampled from fn at scrape
// time (e.g. per-replica health state keyed by a replica label).
func (r *Registry) GaugeVecFunc(name, help string, fn func() []LabeledValue) {
	e := r.register(name, help, kindGaugeVecFunc, func() *entry { return &entry{} })
	r.mu.Lock()
	e.vfn = fn
	r.mu.Unlock()
}

// snapshotEntries copies the entry list so exposition never holds the
// registration lock while formatting.
func (r *Registry) snapshotEntries() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*entry, len(r.ordered))
	copy(out, r.ordered)
	return out
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range r.snapshotEntries() {
		fmt.Fprintf(bw, "# HELP %s %s\n", e.name, e.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", e.name, e.kind)
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s %s\n", e.name, strconv.FormatUint(e.c.Value(), 10))
		case kindGauge:
			fmt.Fprintf(bw, "%s %s\n", e.name, strconv.FormatInt(e.g.Value(), 10))
		case kindCounterFunc, kindGaugeFunc:
			fmt.Fprintf(bw, "%s %s\n", e.name, formatFloat(e.fn()))
		case kindCounterVecFunc, kindGaugeVecFunc:
			for _, lv := range e.vfn() {
				writeLabeledSample(bw, e.name, lv)
			}
		case kindHistogram:
			e.h.write(bw, e.name)
		}
	}
	return bw.Flush()
}

// writeLabeledSample renders one `name{k="v",...} value` exposition line.
// Label values are quote-escaped; a sample with no labels degenerates to a
// bare sample line.
func writeLabeledSample(bw *bufio.Writer, name string, lv LabeledValue) {
	if len(lv.Labels) == 0 {
		fmt.Fprintf(bw, "%s %s\n", name, formatFloat(lv.Value))
		return
	}
	bw.WriteString(name)
	bw.WriteByte('{')
	for i, kv := range lv.Labels {
		if i > 0 {
			bw.WriteByte(',')
		}
		fmt.Fprintf(bw, "%s=%s", kv[0], strconv.Quote(kv[1]))
	}
	bw.WriteByte('}')
	fmt.Fprintf(bw, " %s\n", formatFloat(lv.Value))
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the given registries concatenated as one Prometheus
// scrape, with the standard text-format content type. temcod mounts this
// on /metrics over the session registry plus Default().
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, r := range regs {
			if r == nil {
				continue
			}
			if err := r.WritePrometheus(w); err != nil {
				return // client went away; nothing useful to do
			}
		}
	})
}

// Version identifies the build on temco_build_info and /statsz. "dev"
// unless overridden at link time:
//
//	go build -ldflags "-X temco/internal/obs.Version=v1.2.3" ./...
var Version = "dev"

// processStart anchors the uptime gauge.
var processStart = time.Now()

// Uptime returns how long the process has been up (since obs was
// initialized, which for the daemons is process start).
func Uptime() time.Duration { return time.Since(processStart) }

// BuildInfo labels the temco_build_info gauge and the /statsz build
// section: what is running, with which toolchain, and whether the SIMD
// kernels are live.
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	SIMD      bool   `json:"simd"`
	Workers   int    `json:"workers"`
}

// RegisterBuildInfo registers the conventional build-info gauge: constant
// value 1, with the build identity in labels.
func RegisterBuildInfo(reg *Registry, info BuildInfo) {
	simd := "off"
	if info.SIMD {
		simd = "on"
	}
	labels := [][2]string{
		{"version", info.Version},
		{"go_version", info.GoVersion},
		{"simd", simd},
		{"workers", strconv.Itoa(info.Workers)},
	}
	reg.GaugeVecFunc("temco_build_info",
		"Build identity: constant 1, labeled with version, Go toolchain, SIMD state, and worker count.",
		func() []LabeledValue { return []LabeledValue{{Labels: labels, Value: 1}} })
}

// RegisterProcessMetrics adds Go runtime instruments (goroutines, uptime,
// heap bytes, GC cycles) to reg. Idempotent; heap figures are sampled from
// runtime.ReadMemStats at scrape time.
func RegisterProcessMetrics(reg *Registry) {
	reg.GaugeFunc("temco_process_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("temco_process_uptime_seconds",
		"Seconds since process start.",
		func() float64 { return Uptime().Seconds() })
	reg.GaugeFunc("temco_process_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.HeapAlloc)
		})
	reg.CounterFunc("temco_process_gc_cycles_total",
		"Completed GC cycles (runtime.MemStats.NumGC).",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.NumGC)
		})
}

// sortedNames returns the registered metric names, sorted — used by tests
// and debug output.
func (r *Registry) sortedNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Names lists the registered metric names in sorted order.
func (r *Registry) Names() []string { return r.sortedNames() }
