package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("temco_test_total", "test counter")
	g := r.Gauge("temco_test_depth", "test gauge")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	// Idempotent re-registration returns the same instrument.
	if r.Counter("temco_test_total", "test counter") != c {
		t.Fatal("re-registering a counter returned a new instrument")
	}
	if r.Gauge("temco_test_depth", "test gauge") != g {
		t.Fatal("re-registering a gauge returned a new instrument")
	}
}

func TestRegisterKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("temco_test_total", "c")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("temco_test_total", "g")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.Counter("1bad-name", "x")
}

func TestHistogramObserve(t *testing.T) {
	h := newHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	bounds, cum, sum, count := h.Snapshot()
	if len(bounds) != 3 {
		t.Fatalf("bounds = %v", bounds)
	}
	want := []uint64{1, 3, 4, 5} // cumulative per le=0.1, 1, 10, +Inf
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (%v)", i, cum[i], w, cum)
		}
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if math.Abs(sum-56.05) > 1e-9 {
		t.Fatalf("sum = %v, want 56.05", sum)
	}
}

func TestHistogramBoundary(t *testing.T) {
	// le is inclusive: an observation exactly on a bound lands in it.
	h := newHistogram([]float64{1, 2})
	h.Observe(1)
	_, cum, _, _ := h.Snapshot()
	if cum[0] != 1 {
		t.Fatalf("observation at bound went to bucket %v, want le=1", cum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram(DefBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-8.0) > 1e-6 {
		t.Fatalf("sum = %v, want 8", h.Sum())
	}
}

func TestWritePrometheusAndLint(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("temco_test_requests_total", "Requests handled.")
	c.Add(3)
	r.Gauge("temco_test_queue_depth", "Queued requests.").Set(2)
	h := r.Histogram("temco_test_latency_seconds", "Request latency.", nil)
	h.Observe(0.003)
	h.Observe(0.7)
	r.GaugeFunc("temco_test_workers", "Worker count.", func() float64 { return 4 })
	r.CounterFunc("temco_test_pool_hits_total", "Pool hits.", func() float64 { return 11 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE temco_test_requests_total counter",
		"temco_test_requests_total 3",
		"# TYPE temco_test_queue_depth gauge",
		"temco_test_queue_depth 2",
		"# TYPE temco_test_latency_seconds histogram",
		`temco_test_latency_seconds_bucket{le="+Inf"} 2`,
		"temco_test_latency_seconds_count 2",
		"temco_test_workers 4",
		"temco_test_pool_hits_total 11",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("CheckExposition rejected our own output: %v\n%s", err, out)
	}
}

func TestCheckExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no help":          "temco_x_total 3\n",
		"bad value":        "# HELP temco_x_total x\n# TYPE temco_x_total counter\ntemco_x_total abc\n",
		"double declared":  "# HELP temco_x x\n# TYPE temco_x gauge\ntemco_x 1\n# HELP temco_x x\n# TYPE temco_x gauge\ntemco_x 2\n",
		"non-cumulative":   "# HELP temco_h h\n# TYPE temco_h histogram\ntemco_h_bucket{le=\"1\"} 5\ntemco_h_bucket{le=\"2\"} 3\ntemco_h_bucket{le=\"+Inf\"} 5\ntemco_h_sum 1\ntemco_h_count 5\n",
		"no inf bucket":    "# HELP temco_h h\n# TYPE temco_h histogram\ntemco_h_bucket{le=\"1\"} 5\ntemco_h_sum 1\ntemco_h_count 5\n",
		"count mismatches": "# HELP temco_h h\n# TYPE temco_h histogram\ntemco_h_bucket{le=\"+Inf\"} 5\ntemco_h_sum 1\ntemco_h_count 4\n",
		"empty":            "",
	}
	for name, in := range cases {
		if err := CheckExposition([]byte(in)); err == nil {
			t.Errorf("%s: CheckExposition accepted malformed input", name)
		}
	}
}

func TestRegistryNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("temco_b_total", "b")
	r.Counter("temco_a_total", "a")
	names := r.Names()
	if len(names) != 2 || names[0] != "temco_a_total" || names[1] != "temco_b_total" {
		t.Fatalf("Names() = %v", names)
	}
}

func TestDefaultRegistryProcessMetrics(t *testing.T) {
	// RegisterProcessMetrics must be idempotent on the shared registry.
	RegisterProcessMetrics(Default())
	RegisterProcessMetrics(Default())
	var buf bytes.Buffer
	if err := Default().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "temco_process_goroutines") {
		t.Fatalf("process metrics missing:\n%s", buf.String())
	}
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestVecFuncExposition(t *testing.T) {
	r := NewRegistry()
	r.GaugeVecFunc("temco_test_replica_state", "Per-replica state.", func() []LabeledValue {
		return []LabeledValue{
			{Labels: [][2]string{{"replica", "http://127.0.0.1:8080"}}, Value: 0},
			{Labels: [][2]string{{"replica", `quoted"and\slashed`}}, Value: 3},
		}
	})
	r.CounterVecFunc("temco_test_placements_total", "Per-replica placements.", func() []LabeledValue {
		return []LabeledValue{
			{Labels: [][2]string{{"replica", "a"}, {"shard", "0"}}, Value: 41},
			{Value: 1}, // label-less sample degenerates to a bare line
		}
	})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`temco_test_replica_state{replica="http://127.0.0.1:8080"} 0`,
		`temco_test_replica_state{replica="quoted\"and\\slashed"} 3`,
		`temco_test_placements_total{replica="a",shard="0"} 41`,
		"temco_test_placements_total 1",
		"# TYPE temco_test_replica_state gauge",
		"# TYPE temco_test_placements_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("vec exposition fails lint: %v\n%s", err, out)
	}
}
