package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	if len(tc.TraceID) != 32 || len(tc.SpanID) != 16 {
		t.Fatalf("id widths: trace=%q span=%q", tc.TraceID, tc.SpanID)
	}
	if !strings.HasPrefix(tc.RequestID, "req-") {
		t.Fatalf("request id %q does not carry the req- prefix", tc.RequestID)
	}
	h := tc.Traceparent()
	if len(h) != 55 {
		t.Fatalf("traceparent %q has length %d, want 55", h, len(h))
	}
	got, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent rejected %q", h)
	}
	if got.TraceID != tc.TraceID || got.SpanID != tc.SpanID || !got.Sampled {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, tc)
	}
}

func TestTraceparentChild(t *testing.T) {
	tc := NewTraceContext()
	child := tc.Child()
	if child.TraceID != tc.TraceID {
		t.Fatal("Child must keep the trace id")
	}
	if child.SpanID == tc.SpanID {
		t.Fatal("Child must mint a new span id")
	}
	if child.ParentID != tc.SpanID {
		t.Fatalf("ParentID = %q, want the parent's span id %q", child.ParentID, tc.SpanID)
	}
	if child.RequestID != tc.RequestID {
		t.Fatal("Child must keep the request id")
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"not-a-traceparent",
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("a", 16) + "-01", // all-zero trace id
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("0", 16) + "-01", // all-zero span id
		"00-" + strings.Repeat("G", 32) + "-" + strings.Repeat("a", 16) + "-01", // non-hex
		"00-" + strings.Repeat("a", 31) + "-" + strings.Repeat("a", 16) + "-01", // short
		"ff-" + strings.Repeat("a", 32) + "-" + strings.Repeat("a", 16) + "-01", // bad version
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent accepted %q", h)
		}
	}
}

func TestStatusForHTTP(t *testing.T) {
	cases := map[int]string{
		200: "ok", 204: "ok",
		429: "shed", 503: "shed",
		504: "deadline",
		400: "error", 500: "error", 502: "error",
	}
	for code, want := range cases {
		if got := statusForHTTP(code); got != want {
			t.Errorf("statusForHTTP(%d) = %q, want %q", code, got, want)
		}
	}
}

func TestReqTraceSpansAndFinish(t *testing.T) {
	rt := NewReqTrace(NewTraceContext())
	rt.Event("serve.admit", "")
	rt.SpanAt("engine.step", "conv1", 0, 0, time.Millisecond)
	rt.Span("serve.queue", "", time.Now().Add(-time.Millisecond), time.Millisecond)
	rt.AddSibling("req-aaaa")
	tl := rt.Finish(200)
	if tl.Status != "ok" || tl.HTTPStatus != 200 {
		t.Fatalf("status = %q/%d, want ok/200", tl.Status, tl.HTTPStatus)
	}
	if len(tl.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(tl.Spans))
	}
	if tl.Spans[1].Step != 0 || tl.Spans[0].Step != -1 {
		t.Fatalf("step fields wrong: %+v", tl.Spans)
	}
	if len(tl.Siblings) != 1 || tl.Siblings[0] != "req-aaaa" {
		t.Fatalf("siblings = %v", tl.Siblings)
	}
	// Post-Finish records (a hedge loser reporting late) must be dropped.
	rt.Event("route.cancelled", "late")
	rt.SetStatus("error")
	if tl2 := rt.Finish(200); len(tl2.Spans) != 3 || tl2.Status != "ok" {
		t.Fatalf("post-Finish records leaked: %d spans, status %q", len(tl2.Spans), tl2.Status)
	}
}

func TestReqTraceExplicitStatusWins(t *testing.T) {
	rt := NewReqTrace(NewTraceContext())
	rt.SetStatus("degraded")
	rt.SetError("fallback served")
	tl := rt.Finish(200)
	if tl.Status != "degraded" || tl.Err != "fallback served" {
		t.Fatalf("explicit status lost: %+v", tl)
	}
}

func TestReqTraceSpanCapDropsAndCounts(t *testing.T) {
	rt := NewReqTrace(NewTraceContext())
	for i := 0; i < reqTraceSpanCap+10; i++ {
		rt.SpanAt("engine.step", "n", i, 0, 0)
	}
	tl := rt.Finish(200)
	if len(tl.Spans) != reqTraceSpanCap {
		t.Fatalf("got %d spans, want cap %d", len(tl.Spans), reqTraceSpanCap)
	}
	if tl.DroppedSpans != 10 {
		t.Fatalf("DroppedSpans = %d, want 10", tl.DroppedSpans)
	}
}

func TestReqTraceConcurrent(t *testing.T) {
	rt := NewReqTrace(NewTraceContext())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rt.SpanAt("exec.step", "n", i, 0, 0)
				if i%10 == 0 {
					rt.Event("serve.retry", "")
				}
			}
		}(g)
	}
	wg.Wait()
	tl := rt.Finish(200)
	if len(tl.Spans)+tl.DroppedSpans != 8*55 {
		t.Fatalf("spans %d + dropped %d != %d recorded", len(tl.Spans), tl.DroppedSpans, 8*55)
	}
}

func TestContextWithRequest(t *testing.T) {
	if RequestFrom(context.Background()) != nil {
		t.Fatal("plain context must carry no trace")
	}
	rt := NewReqTrace(NewTraceContext())
	ctx := ContextWithRequest(context.Background(), rt)
	if RequestFrom(ctx) != rt {
		t.Fatal("trace lost in context round trip")
	}
}
