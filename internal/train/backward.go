// Package train implements reverse-mode differentiation and SGD for layer
// graphs, sufficient to train the (decomposed) evaluation models on the
// synthetic datasets. The paper trains its Tucker-decomposed models
// directly (§4.4); this package reproduces that step so the accuracy
// experiment reports real trained numbers rather than random-weight
// outputs.
package train

import (
	"fmt"
	"math"

	"temco/internal/gemm"
	"temco/internal/ir"
	"temco/internal/ops"
	"temco/internal/tensor"
)

// gradConv2D accumulates input, weight, and bias gradients of a direct
// convolution. Any of dx, dw, db may be nil to skip that gradient.
func gradConv2D(dx, dw, db *tensor.Tensor, dy, x, w *tensor.Tensor, a *ir.ConvAttrs) {
	n := x.Dim(0)
	inC, inH, inW := x.Dim(1), x.Dim(2), x.Dim(3)
	outC, outH, outW := dy.Dim(1), dy.Dim(2), dy.Dim(3)
	g := a.Groups
	if g == 0 {
		g = 1
	}
	icg, ocg := inC/g, outC/g
	if db != nil {
		for oc := 0; oc < outC; oc++ {
			var s float32
			for bi := 0; bi < n; bi++ {
				plane := (bi*outC + oc) * outH * outW
				for i := 0; i < outH*outW; i++ {
					s += dy.Data[plane+i]
				}
			}
			db.Data[oc] += s
		}
	}
	if dw != nil {
		// Parallel over output channels: each oc owns its dW rows.
		parallelFor(outC, func(lo, hi int) {
			for oc := lo; oc < hi; oc++ {
				grp := oc / ocg
				for bi := 0; bi < n; bi++ {
					dyPlane := (bi*outC + oc) * outH * outW
					for ic := 0; ic < icg; ic++ {
						xPlane := (bi*inC + grp*icg + ic) * inH * inW
						wOff := (oc*icg + ic) * a.KH * a.KW
						for r := 0; r < a.KH; r++ {
							for q := 0; q < a.KW; q++ {
								var s float32
								for oh := 0; oh < outH; oh++ {
									ih := oh*a.SH - a.PH + r
									if ih < 0 || ih >= inH {
										continue
									}
									for ow := 0; ow < outW; ow++ {
										iw := ow*a.SW - a.PW + q
										if iw < 0 || iw >= inW {
											continue
										}
										s += dy.Data[dyPlane+oh*outW+ow] * x.Data[xPlane+ih*inW+iw]
									}
								}
								dw.Data[wOff+r*a.KW+q] += s
							}
						}
					}
				}
			}
		})
	}
	if dx != nil {
		// Parallel over (batch, input channel): each pair owns its dx plane.
		parallelFor(n*inC, func(lo, hi int) {
			for idx := lo; idx < hi; idx++ {
				bi := idx / inC
				ic := idx % inC
				grp := ic / icg
				icInGrp := ic % icg
				dxPlane := idx * inH * inW
				for oc := grp * ocg; oc < (grp+1)*ocg; oc++ {
					dyPlane := (bi*outC + oc) * outH * outW
					wOff := (oc*icg + icInGrp) * a.KH * a.KW
					for oh := 0; oh < outH; oh++ {
						for ow := 0; ow < outW; ow++ {
							d := dy.Data[dyPlane+oh*outW+ow]
							if d == 0 {
								continue
							}
							for r := 0; r < a.KH; r++ {
								ih := oh*a.SH - a.PH + r
								if ih < 0 || ih >= inH {
									continue
								}
								for q := 0; q < a.KW; q++ {
									iw := ow*a.SW - a.PW + q
									if iw < 0 || iw >= inW {
										continue
									}
									dx.Data[dxPlane+ih*inW+iw] += d * w.Data[wOff+r*a.KW+q]
								}
							}
						}
					}
				}
			}
		})
	}
}

// gradLinear accumulates gradients of out = x·Wᵀ + b as two GEMMs on the
// blocked backbone: dW += dYᵀ·X (A transposed in place) and dX += dY·W.
func gradLinear(dx, dw, db *tensor.Tensor, dy, x, w *tensor.Tensor, a *ir.LinearAttrs) {
	n := x.Dim(0)
	if db != nil {
		for bi := 0; bi < n; bi++ {
			for o, d := range dy.Data[bi*a.Out : (bi+1)*a.Out] {
				db.Data[o] += d
			}
		}
	}
	if dw != nil {
		gemm.GemmAT(a.Out, a.In, n, 1, dy.Data, a.Out, x.Data, a.In, 1, dw.Data, a.In)
	}
	if dx != nil {
		gemm.Gemm(n, a.In, a.Out, 1, dy.Data, a.Out, w.Data, a.In, 1, dx.Data, a.In)
	}
}

func gradReLU(dx, dy, x *tensor.Tensor) {
	for i := range dy.Data {
		if x.Data[i] > 0 {
			dx.Data[i] += dy.Data[i]
		}
	}
}

func gradSigmoid(dx, dy, y *tensor.Tensor) {
	// y = σ(x); dy/dx = y(1-y).
	for i := range dy.Data {
		s := y.Data[i]
		dx.Data[i] += dy.Data[i] * s * (1 - s)
	}
}

func gradSiLU(dx, dy, x *tensor.Tensor) {
	// d/dx x·σ(x) = σ(x)(1 + x(1-σ(x))).
	for i := range dy.Data {
		s := float32(1 / (1 + math.Exp(-float64(x.Data[i]))))
		dx.Data[i] += dy.Data[i] * s * (1 + x.Data[i]*(1-s))
	}
}

func gradBatchNorm(dx, dscale, dshift *tensor.Tensor, dy, x, scale *tensor.Tensor) {
	n, c := x.Dim(0), x.Dim(1)
	hw := x.Dim(2) * x.Dim(3)
	for bi := 0; bi < n; bi++ {
		for ch := 0; ch < c; ch++ {
			base := (bi*c + ch) * hw
			s := scale.Data[ch]
			var ds, dsh float32
			for i := 0; i < hw; i++ {
				d := dy.Data[base+i]
				ds += d * x.Data[base+i]
				dsh += d
				if dx != nil {
					dx.Data[base+i] += d * s
				}
			}
			if dscale != nil {
				dscale.Data[ch] += ds
			}
			if dshift != nil {
				dshift.Data[ch] += dsh
			}
		}
	}
}

func gradMaxPool(dx, dy, x *tensor.Tensor, a *ir.PoolAttrs) {
	n, c := x.Dim(0), x.Dim(1)
	inH, inW := x.Dim(2), x.Dim(3)
	outH, outW := dy.Dim(2), dy.Dim(3)
	parallelFor(n*c, func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			xPlane := idx * inH * inW
			dyPlane := idx * outH * outW
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					// Route the gradient to the window argmax (ties to the
					// first maximum, matching framework behaviour).
					best := float32(math.Inf(-1))
					bestIdx := -1
					for r := 0; r < a.KH; r++ {
						ih := oh*a.SH - a.PH + r
						if ih < 0 || ih >= inH {
							continue
						}
						for q := 0; q < a.KW; q++ {
							iw := ow*a.SW - a.PW + q
							if iw < 0 || iw >= inW {
								continue
							}
							if v := x.Data[xPlane+ih*inW+iw]; v > best {
								best = v
								bestIdx = xPlane + ih*inW + iw
							}
						}
					}
					if bestIdx >= 0 {
						dx.Data[bestIdx] += dy.Data[dyPlane+oh*outW+ow]
					}
				}
			}
		}
	})
}

func gradAvgPool(dx, dy *tensor.Tensor, inH, inW int, a *ir.PoolAttrs) {
	n, c := dx.Dim(0), dx.Dim(1)
	outH, outW := dy.Dim(2), dy.Dim(3)
	inv := 1 / float32(a.KH*a.KW)
	for idx := 0; idx < n*c; idx++ {
		xPlane := idx * inH * inW
		dyPlane := idx * outH * outW
		for oh := 0; oh < outH; oh++ {
			for ow := 0; ow < outW; ow++ {
				d := dy.Data[dyPlane+oh*outW+ow] * inv
				for r := 0; r < a.KH; r++ {
					ih := oh*a.SH - a.PH + r
					if ih < 0 || ih >= inH {
						continue
					}
					for q := 0; q < a.KW; q++ {
						iw := ow*a.SW - a.PW + q
						if iw < 0 || iw >= inW {
							continue
						}
						dx.Data[xPlane+ih*inW+iw] += d
					}
				}
			}
		}
	}
}

func gradGlobalAvgPool(dx, dy *tensor.Tensor) {
	n, c := dx.Dim(0), dx.Dim(1)
	hw := dx.Dim(2) * dx.Dim(3)
	inv := 1 / float32(hw)
	for idx := 0; idx < n*c; idx++ {
		d := dy.Data[idx] * inv
		base := idx * hw
		for i := 0; i < hw; i++ {
			dx.Data[base+i] += d
		}
	}
}

func gradUpsample(dx, dy *tensor.Tensor, scale int) {
	n, c := dx.Dim(0), dx.Dim(1)
	inH, inW := dx.Dim(2), dx.Dim(3)
	outH, outW := dy.Dim(2), dy.Dim(3)
	for idx := 0; idx < n*c; idx++ {
		xPlane := idx * inH * inW
		yPlane := idx * outH * outW
		for oh := 0; oh < outH; oh++ {
			for ow := 0; ow < outW; ow++ {
				dx.Data[xPlane+(oh/scale)*inW+ow/scale] += dy.Data[yPlane+oh*outW+ow]
			}
		}
	}
}

func gradConcat(dxs []*tensor.Tensor, dy *tensor.Tensor) {
	n := dy.Dim(0)
	outC := dy.Dim(1)
	hw := dy.Dim(2) * dy.Dim(3)
	for bi := 0; bi < n; bi++ {
		cOff := 0
		for _, dx := range dxs {
			c := dx.Dim(1)
			src := dy.Data[(bi*outC+cOff)*hw : (bi*outC+cOff+c)*hw]
			dst := dx.Data[bi*c*hw : (bi+1)*c*hw]
			for i, v := range src {
				dst[i] += v
			}
			cOff += c
		}
	}
}

// parallelFor mirrors ops.parallelFor for the gradient kernels.
func parallelFor(n int, fn func(lo, hi int)) {
	opsParallelFor(n, fn)
}

// opsParallelFor delegates to the ops package's worker configuration so
// forward and backward share a parallelism setting.
func opsParallelFor(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := ops.Workers
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	if w == 1 {
		fn(0, n)
		return
	}
	done := make(chan struct{}, w)
	chunk := (n + w - 1) / w
	cnt := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		cnt++
		go func(lo, hi int) {
			fn(lo, hi)
			done <- struct{}{}
		}(lo, hi)
	}
	for i := 0; i < cnt; i++ {
		<-done
	}
}

var errUnsupported = fmt.Errorf("train: unsupported op in backward pass")
