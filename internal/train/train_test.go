package train

import (
	"math"
	"testing"

	"temco/internal/data"
	"temco/internal/ir"
	"temco/internal/tensor"
)

// numericalGrad estimates dLoss/dTheta for one parameter element by
// central differences, where loss is recomputed through the full forward
// pass. Used to validate the analytic backward pass.
func numericalGrad(t *testing.T, g *ir.Graph, x *tensor.Tensor, labels []int, param *tensor.Tensor, idx int) float64 {
	t.Helper()
	const eps = 1e-3
	lossAt := func(v float32) float64 {
		old := param.Data[idx]
		param.Data[idx] = v
		defer func() { param.Data[idx] = old }()
		tr := New(g, 0, 0) // lr 0: forward only via StepCE would update... use Predict
		logits, err := tr.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		n, c := logits.Dim(0), logits.Dim(1)
		var loss float64
		for i := 0; i < n; i++ {
			row := logits.Data[i*c : (i+1)*c]
			maxV := row[0]
			for _, vv := range row {
				if vv > maxV {
					maxV = vv
				}
			}
			var sum float64
			for _, vv := range row {
				sum += math.Exp(float64(vv - maxV))
			}
			loss += math.Log(sum) + float64(maxV) - float64(row[labels[i]])
		}
		return loss / float64(n)
	}
	v := param.Data[idx]
	return (lossAt(v+eps) - lossAt(v-eps)) / (2 * eps)
}

// capture wraps applySGD to record gradients instead of updating.
type gradCapture struct {
	dW map[*ir.Node]*tensor.Tensor
	dB map[*ir.Node]*tensor.Tensor
}

func runBackwardCapture(t *testing.T, g *ir.Graph, x *tensor.Tensor, labels []int) gradCapture {
	t.Helper()
	// Use a trainer with lr=0 so weights do not move, then recover the
	// gradient from the velocity update with momentum=0... velocities get
	// lr*g which is 0. Instead: lr=1, momentum=0 and diff the weights.
	beforeW := map[*ir.Node]*tensor.Tensor{}
	beforeB := map[*ir.Node]*tensor.Tensor{}
	for _, n := range g.Nodes {
		if n.W != nil {
			beforeW[n] = n.W.Clone()
		}
		if n.B != nil {
			beforeB[n] = n.B.Clone()
		}
	}
	tr := New(g, 1.0, 0.0)
	if _, err := tr.StepCE(x, labels); err != nil {
		t.Fatal(err)
	}
	cap := gradCapture{dW: map[*ir.Node]*tensor.Tensor{}, dB: map[*ir.Node]*tensor.Tensor{}}
	for n, w0 := range beforeW {
		d := tensor.New(w0.Shape...)
		for i := range d.Data {
			// w1 = w0 - 1·g  →  g = w0 - w1.
			d.Data[i] = w0.Data[i] - n.W.Data[i]
		}
		cap.dW[n] = d
		n.W = w0 // restore
	}
	// Biases moved too; restore them so numerical checks evaluate the loss
	// at the same point the analytic gradient was taken.
	for n, b0 := range beforeB {
		n.B = b0
	}
	return cap
}

func tinyCNN(seed uint64) *ir.Graph {
	b := ir.NewBuilder("tiny", seed)
	in := b.Input(2, 6, 6)
	c1 := b.Conv(in, 4, 3, 1, 1)
	r1 := b.ReLU(c1)
	p := b.MaxPool(r1, 2, 2)
	c2 := b.Conv(p, 4, 3, 1, 1)
	r2 := b.ReLU(c2)
	f := b.Flatten(r2)
	fc := b.Linear(f, 3)
	b.Output(fc)
	return b.G
}

func TestGradCheckConvAndLinear(t *testing.T) {
	g := tinyCNN(11)
	r := tensor.NewRNG(5)
	x := tensor.New(2, 2, 6, 6)
	x.FillNormal(r, 0, 1)
	labels := []int{0, 2}
	cap := runBackwardCapture(t, g, x, labels)
	checked := 0
	for _, n := range g.Nodes {
		dw, ok := cap.dW[n]
		if !ok {
			continue
		}
		// Spot-check a few elements per parameter tensor.
		for _, idx := range []int{0, dw.Len() / 2, dw.Len() - 1} {
			want := numericalGrad(t, g, x, labels, n.W, idx)
			got := float64(dw.Data[idx])
			if math.Abs(got-want) > 1e-2*(1+math.Abs(want)) {
				t.Errorf("%s W[%d]: analytic %v vs numerical %v", n.Name, idx, got, want)
			}
			checked++
		}
	}
	if checked < 9 {
		t.Fatalf("only %d gradient elements checked", checked)
	}
}

func TestGradCheckSkipAndBN(t *testing.T) {
	b := ir.NewBuilder("skipbn", 13)
	in := b.Input(3, 6, 6)
	c1 := b.Conv(in, 6, 3, 1, 1)
	bn := b.BatchNorm(c1)
	r1 := b.ReLU(bn)
	c2 := b.Conv(r1, 6, 3, 1, 1)
	a := b.Add(c2, r1) // residual
	g2 := b.GlobalAvgPool(a)
	f := b.Flatten(g2)
	fc := b.Linear(f, 2)
	b.Output(fc)
	g := b.G

	r := tensor.NewRNG(7)
	x := tensor.New(1, 3, 6, 6)
	x.FillNormal(r, 0, 1)
	labels := []int{1}
	cap := runBackwardCapture(t, g, x, labels)
	for _, n := range g.Nodes {
		dw, ok := cap.dW[n]
		if !ok {
			continue
		}
		idx := dw.Len() / 3
		want := numericalGrad(t, g, x, labels, n.W, idx)
		got := float64(dw.Data[idx])
		if math.Abs(got-want) > 2e-2*(1+math.Abs(want)) {
			t.Errorf("%s W[%d]: analytic %v vs numerical %v", n.Name, idx, got, want)
		}
	}
}

func TestTrainingReducesCELoss(t *testing.T) {
	g := tinyCNN(21)
	tr := New(g, 0.05, 0.9)
	batch := data.Classification(3, 16, 3, 6, 6)
	// Reduce channels: dataset gives 3-channel images; model takes 2.
	// Rebuild dataset-compatible input by slicing channels.
	x := tensor.New(16, 2, 6, 6)
	for i := 0; i < 16; i++ {
		copy(x.Data[i*2*36:(i+1)*2*36], batch.Images.Data[i*3*36:i*3*36+2*36])
	}
	var first, last float64
	for it := 0; it < 30; it++ {
		loss, err := tr.StepCE(x, batch.Labels)
		if err != nil {
			t.Fatal(err)
		}
		if it == 0 {
			first = loss
		}
		last = loss
	}
	if !(last < first*0.8) {
		t.Fatalf("loss did not drop: %v → %v", first, last)
	}
}

func TestTrainingImprovesAccuracy(t *testing.T) {
	b := ir.NewBuilder("cls", 31)
	in := b.Input(3, 8, 8)
	x := b.ReLU(b.Conv(in, 8, 3, 1, 1))
	x = b.MaxPool(x, 2, 2)
	x = b.ReLU(b.Conv(x, 16, 3, 1, 1))
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Linear(x, 4)
	b.Output(x)
	g := b.G

	trainSet := data.Classification(1, 64, 4, 8, 8)
	testSet := data.Classification(2, 64, 4, 8, 8)
	tr := New(g, 0.05, 0.9)
	pre, err := tr.Predict(testSet.Images)
	if err != nil {
		t.Fatal(err)
	}
	accBefore := data.TopK(pre, testSet.Labels, 1)
	for epoch := 0; epoch < 40; epoch++ {
		if _, err := tr.StepCE(trainSet.Images, trainSet.Labels); err != nil {
			t.Fatal(err)
		}
	}
	post, err := tr.Predict(testSet.Images)
	if err != nil {
		t.Fatal(err)
	}
	accAfter := data.TopK(post, testSet.Labels, 1)
	if accAfter <= accBefore+0.1 {
		t.Fatalf("training did not improve accuracy: %v → %v", accBefore, accAfter)
	}
}

func TestBCETrainingImprovesDice(t *testing.T) {
	b := ir.NewBuilder("seg", 41)
	in := b.Input(3, 16, 16)
	x := b.ReLU(b.Conv(in, 8, 3, 1, 1))
	x = b.ReLU(b.Conv(x, 8, 3, 1, 1))
	x = b.ConvNamed("head", x, 1, 1, 1, 1, 1, 0, 0, 1)
	x = b.Sigmoid(x)
	b.Output(x)
	g := b.G

	set := data.Segmentation(5, 8, 16, 16)
	tr := New(g, 0.5, 0.9)
	pre, err := tr.Predict(set.Images)
	if err != nil {
		t.Fatal(err)
	}
	diceBefore := data.Dice(pre, set.Masks)
	for epoch := 0; epoch < 60; epoch++ {
		if _, err := tr.StepBCE(set.Images, set.Masks); err != nil {
			t.Fatal(err)
		}
	}
	post, err := tr.Predict(set.Images)
	if err != nil {
		t.Fatal(err)
	}
	diceAfter := data.Dice(post, set.Masks)
	if diceAfter <= diceBefore {
		t.Fatalf("dice did not improve: %v → %v", diceBefore, diceAfter)
	}
	if diceAfter < 0.7 {
		t.Fatalf("segmentation failed to fit an easy task: dice %v", diceAfter)
	}
}

func TestTrainerCopiesSharedWeights(t *testing.T) {
	g := tinyCNN(51)
	clone := g.Clone() // shares weight tensors
	var conv *ir.Node
	for _, n := range g.Nodes {
		if n.Kind == ir.KindConv2D {
			conv = n
			break
		}
	}
	wBefore := clone.NodeByName(conv.Name).W
	tr := New(g, 0.1, 0)
	x := tensor.New(1, 2, 6, 6)
	x.FillNormal(tensor.NewRNG(1), 0, 1)
	if _, err := tr.StepCE(x, []int{0}); err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(wBefore, clone.NodeByName(conv.Name).W) != 0 {
		t.Fatal("training mutated weights shared with a clone")
	}
	if conv.W == wBefore {
		t.Fatal("trained graph should have its own weight tensor now")
	}
}

func TestStepBCERequiresSigmoid(t *testing.T) {
	g := tinyCNN(61)
	tr := New(g, 0.1, 0)
	x := tensor.New(1, 2, 6, 6)
	m := tensor.New(1, 3)
	if _, err := tr.StepBCE(x, m); err == nil {
		t.Fatal("expected error for non-sigmoid output")
	}
}

func TestAdamReducesLossFasterOnIllConditioned(t *testing.T) {
	// Same model and data, SGD vs Adam; Adam must also converge, and both
	// must reduce the loss substantially.
	mk := func() *ir.Graph { return tinyCNN(71) }
	batch := data.Classification(9, 16, 3, 6, 6)
	x := tensor.New(16, 2, 6, 6)
	for i := 0; i < 16; i++ {
		copy(x.Data[i*2*36:(i+1)*2*36], batch.Images.Data[i*3*36:i*3*36+2*36])
	}
	run := func(adam bool) float64 {
		tr := New(mk(), 0.01, 0.9)
		if adam {
			tr.UseAdam(0.9, 0.999)
		}
		var last float64
		for it := 0; it < 40; it++ {
			l, err := tr.StepCE(x, batch.Labels)
			if err != nil {
				t.Fatal(err)
			}
			last = l
		}
		return last
	}
	sgd := run(false)
	adam := run(true)
	if adam > 1.0 || sgd > 2.0 {
		t.Fatalf("convergence failed: sgd %v adam %v", sgd, adam)
	}
}

func TestAdamUpdatesAreBiasCorrectedAndCopyOnWrite(t *testing.T) {
	g := tinyCNN(81)
	clone := g.Clone()
	var conv *ir.Node
	for _, n := range g.Nodes {
		if n.Kind == ir.KindConv2D {
			conv = n
			break
		}
	}
	shared := clone.NodeByName(conv.Name).W
	tr := New(g, 0.01, 0)
	tr.UseAdam(0.9, 0.999)
	x := tensor.New(1, 2, 6, 6)
	x.FillNormal(tensor.NewRNG(1), 0, 1)
	if _, err := tr.StepCE(x, []int{1}); err != nil {
		t.Fatal(err)
	}
	if conv.W == shared {
		t.Fatal("Adam must copy-on-write shared weights")
	}
	if tensor.MaxAbsDiff(shared, clone.NodeByName(conv.Name).W) != 0 {
		t.Fatal("Adam mutated weights shared with a clone")
	}
	// First step with bias correction moves each parameter by roughly lr.
	var maxMove float64
	for i := range conv.W.Data {
		d := math.Abs(float64(conv.W.Data[i] - shared.Data[i]))
		if d > maxMove {
			maxMove = d
		}
	}
	if maxMove > 0.02+1e-6 || maxMove == 0 {
		t.Fatalf("first Adam step moved %v, expected ≈ lr (0.01)", maxMove)
	}
}
