package train

import (
	"math"

	"temco/internal/ir"
	"temco/internal/tensor"
)

// Adam augments a Trainer with Adam moment estimation (Kingma & Ba): call
// UseAdam before the first step. The trainer's LR field remains the step
// size; momentum is replaced by the (β1, β2) moments.
type adamState struct {
	beta1, beta2, eps float64
	t                 int
	mW, vW            map[*ir.Node]*tensor.Tensor
	mB, vB            map[*ir.Node]*tensor.Tensor
}

// UseAdam switches the trainer to Adam updates with the given betas.
// Standard values are beta1=0.9, beta2=0.999.
func (t *Trainer) UseAdam(beta1, beta2 float64) {
	t.adam = &adamState{
		beta1: beta1, beta2: beta2, eps: 1e-8,
		mW: map[*ir.Node]*tensor.Tensor{}, vW: map[*ir.Node]*tensor.Tensor{},
		mB: map[*ir.Node]*tensor.Tensor{}, vB: map[*ir.Node]*tensor.Tensor{},
	}
}

// adamTick advances the shared timestep; call once per optimization step.
func (a *adamState) tick() { a.t++ }

// update applies one bias-corrected Adam update to param given grad,
// using (and lazily creating) the moment buffers in m/v keyed by node.
func (a *adamState) update(lr, weightDecay float64, n *ir.Node, param, grad *tensor.Tensor,
	m, v map[*ir.Node]*tensor.Tensor) *tensor.Tensor {
	mm := m[n]
	if mm == nil {
		mm = tensor.New(param.Shape...)
		m[n] = mm
	}
	vv := v[n]
	if vv == nil {
		vv = tensor.New(param.Shape...)
		v[n] = vv
	}
	bc1 := 1 - math.Pow(a.beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.beta2, float64(a.t))
	out := param.Clone()
	for i := range out.Data {
		g := float64(grad.Data[i]) + weightDecay*float64(out.Data[i])
		mNew := a.beta1*float64(mm.Data[i]) + (1-a.beta1)*g
		vNew := a.beta2*float64(vv.Data[i]) + (1-a.beta2)*g*g
		mm.Data[i] = float32(mNew)
		vv.Data[i] = float32(vNew)
		mHat := mNew / bc1
		vHat := vNew / bc2
		out.Data[i] -= float32(lr * mHat / (math.Sqrt(vHat) + a.eps))
	}
	return out
}
