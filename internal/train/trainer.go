package train

import (
	"fmt"
	"math"

	"temco/internal/ir"
	"temco/internal/memplan"
	"temco/internal/ops"
	"temco/internal/tensor"
)

// Trainer performs SGD-with-momentum updates on a layer graph's
// parameters. Graphs must be free of fused kernels (training happens on
// the original or decomposed model, before TeMCO optimization, exactly as
// in the paper).
type Trainer struct {
	G        *ir.Graph
	LR       float64
	Momentum float64
	// WeightDecay applies L2 regularization to conv/linear weights.
	WeightDecay float64

	velW map[*ir.Node]*tensor.Tensor
	velB map[*ir.Node]*tensor.Tensor
	// adam, when non-nil (see UseAdam), replaces momentum SGD.
	adam *adamState
}

// New returns a trainer over g.
func New(g *ir.Graph, lr, momentum float64) *Trainer {
	return &Trainer{
		G: g, LR: lr, Momentum: momentum,
		velW: make(map[*ir.Node]*tensor.Tensor),
		velB: make(map[*ir.Node]*tensor.Tensor),
	}
}

// forward runs the graph keeping every activation (needed by backward).
func (t *Trainer) forward(x *tensor.Tensor) (map[*ir.Node]*tensor.Tensor, error) {
	vals := make(map[*ir.Node]*tensor.Tensor, len(t.G.Nodes))
	if len(t.G.Inputs) != 1 {
		return nil, fmt.Errorf("train: trainer supports single-input graphs")
	}
	vals[t.G.Inputs[0]] = x
	batch := x.Dim(0)
	for _, n := range t.G.Nodes {
		if n.Kind == ir.KindInput {
			continue
		}
		out := tensor.New(append([]int{batch}, n.Shape...)...)
		in := make([]*tensor.Tensor, len(n.Inputs))
		for i, p := range n.Inputs {
			in[i] = vals[p]
		}
		switch n.Kind {
		case ir.KindConv2D:
			ops.ConvAuto(out, in[0], n.W, n.B, n.Conv())
		case ir.KindLinear:
			ops.Linear(out, in[0], n.W, n.B, n.Attrs.(*ir.LinearAttrs))
		case ir.KindReLU:
			ops.ReLU(out, in[0])
		case ir.KindSiLU:
			ops.SiLU(out, in[0])
		case ir.KindSigmoid:
			ops.Sigmoid(out, in[0])
		case ir.KindBatchNorm:
			ops.BatchNorm(out, in[0], n.W, n.B)
		case ir.KindMaxPool:
			ops.MaxPool(out, in[0], n.Pool())
		case ir.KindAvgPool:
			ops.AvgPool(out, in[0], n.Pool())
		case ir.KindGlobalAvgPool:
			ops.GlobalAvgPool(out, in[0])
		case ir.KindUpsample:
			ops.Upsample(out, in[0], n.Attrs.(*ir.UpsampleAttrs).Scale)
		case ir.KindAdd:
			ops.Add(out, in[0], in[1])
		case ir.KindConcat:
			ops.Concat(out, in)
		case ir.KindFlatten:
			out = in[0].Reshape(append([]int{batch}, n.Shape...)...)
		case ir.KindSoftmax:
			ops.Softmax(out, in[0])
		default:
			return nil, fmt.Errorf("%w: %v", errUnsupported, n.Kind)
		}
		vals[n] = out
	}
	return vals, nil
}

// backward propagates dOut (gradient at the single graph output, or at
// `at` when non-nil) and applies SGD updates.
func (t *Trainer) backward(vals map[*ir.Node]*tensor.Tensor, at *ir.Node, dOut *tensor.Tensor) error {
	grads := make(map[*ir.Node]*tensor.Tensor, len(t.G.Nodes))
	grads[at] = dOut
	idx := t.G.Index()
	_ = idx
	for i := len(t.G.Nodes) - 1; i >= 0; i-- {
		n := t.G.Nodes[i]
		dy := grads[n]
		if dy == nil || n.Kind == ir.KindInput {
			continue
		}
		ensure := func(p *ir.Node) *tensor.Tensor {
			if g := grads[p]; g != nil {
				return g
			}
			g := tensor.New(vals[p].Shape...)
			grads[p] = g
			return g
		}
		switch n.Kind {
		case ir.KindConv2D:
			a := n.Conv()
			var dw, db *tensor.Tensor
			dw = tensor.New(n.W.Shape...)
			if n.B != nil {
				db = tensor.New(n.B.Shape...)
			}
			var dx *tensor.Tensor
			if n.Inputs[0].Kind != ir.KindInput {
				dx = ensure(n.Inputs[0])
			}
			gradConv2D(dx, dw, db, dy, vals[n.Inputs[0]], n.W, a)
			t.applySGD(n, dw, db)
		case ir.KindLinear:
			a := n.Attrs.(*ir.LinearAttrs)
			dw := tensor.New(n.W.Shape...)
			var db *tensor.Tensor
			if n.B != nil {
				db = tensor.New(n.B.Shape...)
			}
			var dx *tensor.Tensor
			if n.Inputs[0].Kind != ir.KindInput {
				dx = ensure(n.Inputs[0])
			}
			gradLinear(dx, dw, db, dy, vals[n.Inputs[0]], n.W, a)
			t.applySGD(n, dw, db)
		case ir.KindReLU:
			gradReLU(ensure(n.Inputs[0]), dy, vals[n.Inputs[0]])
		case ir.KindSiLU:
			gradSiLU(ensure(n.Inputs[0]), dy, vals[n.Inputs[0]])
		case ir.KindSigmoid:
			gradSigmoid(ensure(n.Inputs[0]), dy, vals[n])
		case ir.KindBatchNorm:
			dscale := tensor.New(n.W.Shape...)
			dshift := tensor.New(n.B.Shape...)
			var dx *tensor.Tensor
			if n.Inputs[0].Kind != ir.KindInput {
				dx = ensure(n.Inputs[0])
			}
			gradBatchNorm(dx, dscale, dshift, dy, vals[n.Inputs[0]], n.W)
			t.applySGD(n, dscale, dshift)
		case ir.KindMaxPool:
			gradMaxPool(ensure(n.Inputs[0]), dy, vals[n.Inputs[0]], n.Pool())
		case ir.KindAvgPool:
			in := vals[n.Inputs[0]]
			gradAvgPool(ensure(n.Inputs[0]), dy, in.Dim(2), in.Dim(3), n.Pool())
		case ir.KindGlobalAvgPool:
			gradGlobalAvgPool(ensure(n.Inputs[0]), dy)
		case ir.KindUpsample:
			gradUpsample(ensure(n.Inputs[0]), dy, n.Attrs.(*ir.UpsampleAttrs).Scale)
		case ir.KindAdd:
			for _, p := range n.Inputs {
				if p.Kind == ir.KindInput {
					continue
				}
				g := ensure(p)
				for j := range dy.Data {
					g.Data[j] += dy.Data[j]
				}
			}
		case ir.KindConcat:
			dxs := make([]*tensor.Tensor, len(n.Inputs))
			for j, p := range n.Inputs {
				dxs[j] = ensure(p)
			}
			gradConcat(dxs, dy)
		case ir.KindFlatten:
			p := n.Inputs[0]
			if p.Kind == ir.KindInput {
				break
			}
			g := ensure(p)
			for j := range dy.Data {
				g.Data[j] += dy.Data[j]
			}
		default:
			return fmt.Errorf("%w: %v", errUnsupported, n.Kind)
		}
		// Release the gradient once consumed to bound training memory.
		delete(grads, n)
	}
	return nil
}

// applySGD performs one parameter update of node n: momentum SGD by
// default, Adam when UseAdam was called.
func (t *Trainer) applySGD(n *ir.Node, dw, db *tensor.Tensor) {
	if t.adam != nil {
		if dw != nil {
			n.W = t.adam.update(t.LR, t.WeightDecay, n, n.W, dw, t.adam.mW, t.adam.vW)
		}
		if db != nil && n.B != nil {
			n.B = t.adam.update(t.LR, 0, n, n.B, db, t.adam.mB, t.adam.vB)
		}
		return
	}
	if dw != nil {
		v := t.velW[n]
		if v == nil {
			v = tensor.New(n.W.Shape...)
			t.velW[n] = v
		}
		// Parameters may be shared with clones of this graph; copy on
		// first write so training never corrupts other graphs.
		w := n.W.Clone()
		for i := range w.Data {
			g := float64(dw.Data[i]) + t.WeightDecay*float64(w.Data[i])
			v.Data[i] = float32(t.Momentum*float64(v.Data[i]) - t.LR*g)
			w.Data[i] += v.Data[i]
		}
		n.W = w
	}
	if db != nil && n.B != nil {
		v := t.velB[n]
		if v == nil {
			v = tensor.New(n.B.Shape...)
			t.velB[n] = v
		}
		b := n.B.Clone()
		for i := range b.Data {
			v.Data[i] = float32(t.Momentum*float64(v.Data[i]) - t.LR*float64(db.Data[i]))
			b.Data[i] += v.Data[i]
		}
		n.B = b
	}
}

// StepCE runs one SGD step with softmax cross-entropy loss on a
// classification graph whose output is [N,Classes] logits. Returns the
// mean loss.
func (t *Trainer) StepCE(x *tensor.Tensor, labels []int) (float64, error) {
	vals, err := t.forward(x)
	if err != nil {
		return 0, err
	}
	out := t.G.Outputs[0]
	logits := vals[out]
	n, c := logits.Dim(0), logits.Dim(1)
	dOut := tensor.New(n, c)
	var loss float64
	for i := 0; i < n; i++ {
		row := logits.Data[i*c : (i+1)*c]
		maxV := row[0]
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxV))
		}
		logZ := math.Log(sum) + float64(maxV)
		loss += logZ - float64(row[labels[i]])
		for j := 0; j < c; j++ {
			p := math.Exp(float64(row[j])-logZ) / float64(n)
			if j == labels[i] {
				p -= 1.0 / float64(n)
			}
			dOut.Data[i*c+j] = float32(p)
		}
	}
	if t.adam != nil {
		t.adam.tick()
	}
	if err := t.backward(vals, out, dOut); err != nil {
		return 0, err
	}
	return loss / float64(n), nil
}

// StepBCE runs one SGD step with binary cross-entropy on a segmentation
// graph whose output is a sigmoid mask [N,1,H,W]. The gradient is seeded
// at the sigmoid's input (pred − target), the numerically stable form.
func (t *Trainer) StepBCE(x, masks *tensor.Tensor) (float64, error) {
	vals, err := t.forward(x)
	if err != nil {
		return 0, err
	}
	out := t.G.Outputs[0]
	if out.Kind != ir.KindSigmoid {
		return 0, fmt.Errorf("train: StepBCE expects a sigmoid output, got %v", out.Kind)
	}
	pred := vals[out]
	total := float64(pred.Len())
	var loss float64
	dPre := tensor.New(pred.Shape...)
	for i := range pred.Data {
		p := float64(pred.Data[i])
		y := float64(masks.Data[i])
		pc := math.Min(math.Max(p, 1e-7), 1-1e-7)
		loss += -(y*math.Log(pc) + (1-y)*math.Log(1-pc))
		dPre.Data[i] = float32((p - y) / total)
	}
	if t.adam != nil {
		t.adam.tick()
	}
	if err := t.backward(vals, out.Inputs[0], dPre); err != nil {
		return 0, err
	}
	return loss / total, nil
}

// Predict runs a forward pass and returns the output tensor.
func (t *Trainer) Predict(x *tensor.Tensor) (*tensor.Tensor, error) {
	vals, err := t.forward(x)
	if err != nil {
		return nil, err
	}
	return vals[t.G.Outputs[0]], nil
}

// ensure memplan stays linked for documentation references.
var _ = memplan.DefaultSkipThreshold
