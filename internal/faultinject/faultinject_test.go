package faultinject

import (
	"strings"
	"testing"
	"time"
)

func TestDisabledHooksAreNoOps(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("injection must start disabled")
	}
	Kernel("any") // must not panic
	if Budget("any") {
		t.Fatal("disabled Budget must report false")
	}
	Alloc() // must not panic
	if c := CountersSnapshot(); c != (Counters{}) {
		t.Fatalf("disabled counters must be zero: %+v", c)
	}
}

func TestDeterministicStream(t *testing.T) {
	draw := func(seed uint64) []float64 {
		in := &Injector{cfg: Config{Seed: seed}, state: seed}
		out := make([]float64, 16)
		for i := range out {
			out[i] = in.next()
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed must reproduce the stream: %v vs %v at %d", a[i], b[i], i)
		}
		if a[i] < 0 || a[i] >= 1 {
			t.Fatalf("draw %d out of [0,1): %v", i, a[i])
		}
	}
	c := draw(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds must give different streams")
	}
}

func TestKernelPanicAndCounters(t *testing.T) {
	in := Enable(Config{Seed: 1, KernelPanicRate: 1})
	defer Disable()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("rate-1 kernel fault must panic")
		} else if !strings.Contains(r.(string), "faultinject") {
			t.Fatalf("panic value must identify the injector: %v", r)
		}
		if in.Snapshot().KernelPanics != 1 {
			t.Fatalf("counter: %+v", in.Snapshot())
		}
	}()
	Kernel("g")
}

func TestBudgetRateAndDeterminism(t *testing.T) {
	Enable(Config{Seed: 99, BudgetRate: 0.5})
	defer Disable()
	first := make([]bool, 64)
	hits := 0
	for i := range first {
		first[i] = Budget("g")
		if first[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(first) {
		t.Fatalf("rate-0.5 budget faults should mix outcomes, got %d/%d", hits, len(first))
	}
	// Re-enabling with the same seed reproduces the same fault schedule.
	Enable(Config{Seed: 99, BudgetRate: 0.5})
	for i := range first {
		if Budget("g") != first[i] {
			t.Fatalf("fault schedule not reproducible at call %d", i)
		}
	}
}

func TestScopeFiltering(t *testing.T) {
	in := Enable(Config{Seed: 3, Scope: "optimized", KernelPanicRate: 1, BudgetRate: 1, AllocRate: 1})
	defer Disable()
	// Wrong scope: nothing fires.
	Kernel("fallback")
	if Budget("fallback") {
		t.Fatal("scoped injector must not fire for other scopes")
	}
	// Alloc has no scope identity: scoped injectors skip it.
	Alloc()
	if c := in.Snapshot(); c != (Counters{}) {
		t.Fatalf("wrong-scope hooks must inject nothing: %+v", c)
	}
	if !Budget("optimized") {
		t.Fatal("matching scope must fire")
	}
}

func TestSlowNode(t *testing.T) {
	in := Enable(Config{Seed: 5, SlowRate: 1, SlowDelay: 10 * time.Millisecond})
	defer Disable()
	start := time.Now()
	Kernel("g")
	if el := time.Since(start); el < 10*time.Millisecond {
		t.Fatalf("slow node must sleep, took %v", el)
	}
	if in.Snapshot().SlowNodes != 1 {
		t.Fatalf("counter: %+v", in.Snapshot())
	}
}

func TestHTTPFault(t *testing.T) {
	// Disabled: no-op.
	Disable()
	if d, b := HTTPFault(HTTPScope); d != 0 || b {
		t.Fatalf("disabled HTTPFault must be a no-op, got %v %v", d, b)
	}

	// Rate-1 blackhole and delay both fire and count.
	in := Enable(Config{Seed: 3, HTTPBlackholeRate: 1, HTTPDelayRate: 1, HTTPDelay: 7 * time.Millisecond})
	defer Disable()
	d, b := HTTPFault(HTTPScope)
	if d != 7*time.Millisecond || !b {
		t.Fatalf("want delay+blackhole, got %v %v", d, b)
	}
	if c := in.Snapshot(); c.HTTPBlackholes != 1 || c.HTTPDelays != 1 {
		t.Fatalf("counters: %+v", c)
	}

	// A graph-scoped injector never fires on the HTTP surface.
	in = Enable(Config{Seed: 3, Scope: "optimized", HTTPBlackholeRate: 1})
	if _, b := HTTPFault(HTTPScope); b {
		t.Fatal("graph-scoped injector must not fire HTTP faults")
	}
	// An HTTP-scoped injector does.
	in = Enable(Config{Seed: 3, Scope: HTTPScope, HTTPBlackholeRate: 1})
	if _, b := HTTPFault(HTTPScope); !b {
		t.Fatal("http-scoped injector must fire")
	}
	if c := in.Snapshot(); c.HTTPBlackholes != 1 {
		t.Fatalf("counters: %+v", c)
	}
}
