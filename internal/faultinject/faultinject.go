// Package faultinject is a deterministic, seed-driven fault-injection
// registry for exercising the failure paths of the execution and serving
// layers. It is wired into exec's kernel dispatch, exec's budget
// accounting, and the gemm workspace arena via three hooks (Kernel, Budget,
// Alloc) that are a single atomic nil-check when no injector is installed —
// production paths pay one predictable branch and nothing else.
//
// Faults draw from a splitmix64 stream seeded by Config.Seed, so a given
// single-threaded call sequence reproduces the same fault schedule on every
// run. Under concurrency the interleaving of draws is scheduling-dependent,
// but the total fault mix still follows the configured rates, which is what
// the soak tests assert.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Config sets the per-hook fault probabilities. All rates are in [0, 1];
// a zero rate disables that fault class.
type Config struct {
	// Seed seeds the deterministic fault stream.
	Seed uint64
	// Scope restricts injection to hooks reporting this scope label (the
	// executor passes the graph name), so faults can target e.g. only the
	// TeMCO-optimized graph while its fallback stays healthy. Empty
	// matches every scope. The workspace-arena Alloc hook carries no scope
	// and only fires for unscoped injectors.
	Scope string
	// KernelPanicRate is the probability that a kernel dispatch panics
	// (recovered upstream into guard.ErrInternal).
	KernelPanicRate float64
	// SlowRate is the probability that a kernel dispatch sleeps for
	// SlowDelay before running, simulating a slow node.
	SlowRate float64
	// SlowDelay is how long an injected slow node sleeps.
	SlowDelay time.Duration
	// BudgetRate is the probability that the executor reports a spurious
	// memory-budget failure before a node (guard.ErrBudgetExceeded).
	BudgetRate float64
	// AllocRate is the probability that a workspace-arena borrow panics,
	// simulating an allocation failure inside a kernel.
	AllocRate float64
	// HTTPBlackholeRate is the probability that an incoming HTTP request to
	// the daemon is blackholed: the connection is dropped without writing
	// any response, simulating a replica dying or a network partition
	// mid-request. Consumed by the daemon's HTTPFault middleware; routers
	// must see these as connection errors, not responses.
	HTTPBlackholeRate float64
	// HTTPDelayRate is the probability that an incoming HTTP request is
	// delayed by HTTPDelay before handling, simulating an overloaded or
	// network-latent replica.
	HTTPDelayRate float64
	// HTTPDelay is how long an injected HTTP delay sleeps.
	HTTPDelay time.Duration
}

// Counters reports how many faults of each class have been injected.
type Counters struct {
	KernelPanics   uint64
	SlowNodes      uint64
	BudgetFailures uint64
	AllocFailures  uint64
	HTTPBlackholes uint64
	HTTPDelays     uint64
}

// Injector is an installed fault source. Safe for concurrent use.
type Injector struct {
	cfg Config

	mu    sync.Mutex
	state uint64 // splitmix64 state

	kernelPanics   atomic.Uint64
	slowNodes      atomic.Uint64
	budgetFailures atomic.Uint64
	allocFailures  atomic.Uint64
	httpBlackholes atomic.Uint64
	httpDelays     atomic.Uint64
}

// active is the registry: nil means injection is disabled and every hook
// returns after one atomic load.
var active atomic.Pointer[Injector]

// Enable installs an injector with the given config, replacing any previous
// one, and returns it for counter inspection.
func Enable(cfg Config) *Injector {
	in := &Injector{cfg: cfg, state: cfg.Seed}
	active.Store(in)
	return in
}

// Disable removes the installed injector; the hooks become no-ops again.
func Disable() { active.Store(nil) }

// Enabled reports whether an injector is installed.
func Enabled() bool { return active.Load() != nil }

// Snapshot returns the current injected-fault counts.
func (in *Injector) Snapshot() Counters {
	return Counters{
		KernelPanics:   in.kernelPanics.Load(),
		SlowNodes:      in.slowNodes.Load(),
		BudgetFailures: in.budgetFailures.Load(),
		AllocFailures:  in.allocFailures.Load(),
		HTTPBlackholes: in.httpBlackholes.Load(),
		HTTPDelays:     in.httpDelays.Load(),
	}
}

// CountersSnapshot returns the installed injector's counts, or a zero value
// when injection is disabled (for stats endpoints).
func CountersSnapshot() Counters {
	if in := active.Load(); in != nil {
		return in.Snapshot()
	}
	return Counters{}
}

// next draws one uniform float64 in [0, 1) from the seeded stream.
func (in *Injector) next() float64 {
	in.mu.Lock()
	in.state += 0x9e3779b97f4a7c15
	z := in.state
	in.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// Kernel is the dispatch hook: called by the executor immediately before a
// kernel runs, with the graph name as scope. It may sleep (slow node) and
// may panic (kernel fault); the panic is recovered by the guard wrapper
// around dispatch and surfaces as guard.ErrInternal.
func Kernel(scope string) {
	in := active.Load()
	if in == nil || (in.cfg.Scope != "" && in.cfg.Scope != scope) {
		return
	}
	if in.cfg.SlowRate > 0 && in.next() < in.cfg.SlowRate {
		in.slowNodes.Add(1)
		time.Sleep(in.cfg.SlowDelay)
	}
	if in.cfg.KernelPanicRate > 0 && in.next() < in.cfg.KernelPanicRate {
		n := in.kernelPanics.Add(1)
		panic(fmt.Sprintf("faultinject: kernel panic #%d", n))
	}
}

// Budget is the executor's budget hook: it returns true when the executor
// should report a spurious memory-budget failure for the current node.
func Budget(scope string) bool {
	in := active.Load()
	if in == nil || in.cfg.BudgetRate <= 0 || (in.cfg.Scope != "" && in.cfg.Scope != scope) {
		return false
	}
	if in.next() < in.cfg.BudgetRate {
		in.budgetFailures.Add(1)
		return true
	}
	return false
}

// HTTPScope is the scope label the daemon's HTTP middleware reports to
// HTTPFault: replica-level faults target the HTTP surface, not a graph, so
// they use this label instead of a graph name.
const HTTPScope = "http"

// HTTPFault is the replica-level hook: called by the daemon once per
// incoming HTTP request, it returns an injected pre-handling delay
// (zero for none) and whether to blackhole the connection — drop it
// without writing any response, so clients and routers observe a
// connection error exactly as if the replica process had died mid-request.
// Scope matching follows Kernel: an unscoped injector fires everywhere, a
// scoped one only when scope equals its Config.Scope (daemons pass
// HTTPScope).
func HTTPFault(scope string) (delay time.Duration, blackhole bool) {
	in := active.Load()
	if in == nil || (in.cfg.Scope != "" && in.cfg.Scope != scope) {
		return 0, false
	}
	if in.cfg.HTTPDelayRate > 0 && in.next() < in.cfg.HTTPDelayRate {
		in.httpDelays.Add(1)
		delay = in.cfg.HTTPDelay
	}
	if in.cfg.HTTPBlackholeRate > 0 && in.next() < in.cfg.HTTPBlackholeRate {
		in.httpBlackholes.Add(1)
		blackhole = true
	}
	return delay, blackhole
}

// Alloc is the workspace-arena hook: called on every scratch borrow, it may
// panic to simulate an allocation failure inside a kernel. Workers in the
// kernel fan-out re-raise the panic on the dispatching goroutine, where the
// guard wrapper converts it to guard.ErrInternal. The arena has no graph
// identity, so scoped injectors never fire here.
func Alloc() {
	in := active.Load()
	if in == nil || in.cfg.AllocRate <= 0 || in.cfg.Scope != "" {
		return
	}
	if in.next() < in.cfg.AllocRate {
		n := in.allocFailures.Add(1)
		panic(fmt.Sprintf("faultinject: allocation failure #%d", n))
	}
}
