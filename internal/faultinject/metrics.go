package faultinject

import "temco/internal/obs"

// RegisterMetrics exposes the injected-fault counters on an obs.Registry as
// sampled CounterFuncs over CountersSnapshot, so chaos drills show up on
// /metrics next to the serving counters they perturb. With no injector
// installed every sample reads zero. Register on obs.Default() once at
// process start (registration is idempotent per registry).
func RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("temco_fault_kernel_panics_total",
		"Injected kernel panics.",
		func() float64 { return float64(CountersSnapshot().KernelPanics) })
	reg.CounterFunc("temco_fault_slow_nodes_total",
		"Injected slow-node delays.",
		func() float64 { return float64(CountersSnapshot().SlowNodes) })
	reg.CounterFunc("temco_fault_budget_failures_total",
		"Injected spurious memory-budget failures.",
		func() float64 { return float64(CountersSnapshot().BudgetFailures) })
	reg.CounterFunc("temco_fault_alloc_failures_total",
		"Injected workspace allocation failures.",
		func() float64 { return float64(CountersSnapshot().AllocFailures) })
	reg.CounterFunc("temco_fault_http_blackholes_total",
		"Injected HTTP connection blackholes (replica-level).",
		func() float64 { return float64(CountersSnapshot().HTTPBlackholes) })
	reg.CounterFunc("temco_fault_http_delays_total",
		"Injected HTTP pre-handling delays (replica-level).",
		func() float64 { return float64(CountersSnapshot().HTTPDelays) })
}
