package core

import (
	"temco/internal/ir"
)

// restorePlan is the result record of paper Alg. 2 FindReduced: the ordered
// list of restore layers needed to recompute a skip-connection tensor from
// reduced tensors, the tensor size, the peak memory of executing the list,
// and the set of tensors the plan keeps live instead of rematerializing.
//
// The paper's FindReduced terminates only at lconv leaves. This
// implementation adds *keep-live leaves*: a predecessor branch that cannot
// reach an lconv (or would exceed the layer budget) is referenced directly,
// keeping that tensor live across the skip instead of failing the whole
// plan. The Overhead gate then insists the bytes held live after the
// rewrite are strictly below the skip tensor's size, so the fallback never
// degrades memory. This is what lets dense concat chains (DenseNet) be
// optimized layer by layer even though their recursion bottoms out at the
// non-decomposed stem.
type restorePlan struct {
	list []*ir.Node
	size int64
	peak int64
	// held is the total bytes the plan keeps live across the skip: the
	// reduced inputs of lconv leaves plus all keep-live leaves.
	held int64
}

// sizeOf is the paper's SIZE(v): the output bytes of a node at batch 1.
// Only relative comparisons matter here, so batch cancels.
func sizeOf(n *ir.Node) int64 { return n.OutBytes(1) }

// traversable reports whether FindReduced may walk through node kind k on
// its way from a skip connection back to the lconv leaves: elementwise
// layers, pooling, upsampling, and tensor-merge ops preserve the "derived
// from reduced tensors" property.
func traversable(k ir.Kind) bool {
	switch k {
	case ir.KindReLU, ir.KindSiLU, ir.KindSigmoid, ir.KindBatchNorm,
		ir.KindAdd, ir.KindConcat, ir.KindMaxPool, ir.KindAvgPool, ir.KindUpsample:
		return true
	default:
		return false
	}
}

// comparePlans is the paper's Compare(a,b): schedule a before b iff
// a.size + b.peak < b.size + a.peak (executing the plan whose resident
// result is smaller first lowers the combined peak).
func comparePlans(a, b restorePlan) bool {
	return a.size+b.peak < b.size+a.peak
}

// planPeak is the paper's Peak(l, v): the running peak of executing the
// ordered child plans and then materializing v on top of their results.
func planPeak(ordered []restorePlan, v *ir.Node) int64 {
	var peak, resided int64
	for _, e := range ordered {
		if resided+e.peak > peak {
			peak = resided + e.peak
		}
		resided += e.size
	}
	if resided+sizeOf(v) > peak {
		peak = resided + sizeOf(v)
	}
	return peak
}

// findReduced implements paper Alg. 2 with the keep-live extension:
// starting from skip-connection node v, recursively collect the restore
// layers down to lconv leaves (ordering sibling sub-plans with
// comparePlans) within a total budget of maxOps copied layers. It fails
// only when v itself yields no restore layers at all.
func findReduced(v *ir.Node, maxOps int) (restorePlan, bool) {
	budget := maxOps
	plan := findReducedRec(v, &budget, make(map[*ir.Node]bool))
	if len(plan.list) == 0 {
		return restorePlan{}, false
	}
	plan.list = dedupe(plan.list)
	return plan, true
}

// keepLive returns the leaf plan that references v directly.
func keepLive(v *ir.Node) restorePlan {
	return restorePlan{size: sizeOf(v), peak: sizeOf(v), held: sizeOf(v)}
}

func findReducedRec(v *ir.Node, budget *int, onPath map[*ir.Node]bool) restorePlan {
	if onPath[v] {
		// Layer graphs are DAGs; a repeat means a diamond was entered
		// twice. The value is already produced by the earlier visit.
		return restorePlan{size: sizeOf(v)}
	}
	if v.IsLConv() && *budget > 0 {
		*budget--
		return restorePlan{
			list: []*ir.Node{v},
			size: sizeOf(v),
			peak: sizeOf(v) + sizeOf(v.Inputs[0]),
			held: sizeOf(v.Inputs[0]),
		}
	}
	if !traversable(v.Kind) || len(v.Inputs) == 0 || *budget <= len(v.Inputs) {
		return keepLive(v)
	}
	onPath[v] = true
	defer delete(onPath, v)
	*budget-- // the copy of v itself
	var preds []restorePlan
	for _, p := range v.Inputs {
		preds = append(preds, findReducedRec(p, budget, onPath))
	}
	ordered := orderPlans(preds)
	var list []*ir.Node
	var held int64
	for _, e := range ordered {
		list = append(list, e.list...)
		held += e.held
	}
	list = append(list, v)
	return restorePlan{
		list: list,
		size: sizeOf(v),
		peak: planPeak(ordered, v),
		held: held,
	}
}

// orderPlans is the paper's ORDER(Compare, predList): a stable insertion
// sort under the (non-total) Compare relation.
func orderPlans(ps []restorePlan) []restorePlan {
	out := append([]restorePlan(nil), ps...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && comparePlans(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func dedupe(list []*ir.Node) []*ir.Node {
	seen := make(map[*ir.Node]bool, len(list))
	out := list[:0]
	for _, n := range list {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// planFLOPs sums the compute cost of one execution of the restore plan.
func planFLOPs(plan restorePlan) int64 {
	var f int64
	for _, n := range plan.list {
		f += ir.FLOPs(n)
	}
	return f
}

// originalConvFLOPs estimates the FLOPs of the original (non-decomposed)
// convolution an lconv came from, by walking its decomposed sequence back
// through the core conv(s) to the fconv: FLOPs = OutC·H'·W'·InC·ΠK·2.
// This is the paper's COMPUTE_THRESHOLD ("FLOPS of the corresponding parts
// of the original model without decomposition"). When the provenance
// structure is absent it falls back to the lconv's own cost.
func originalConvFLOPs(lconv *ir.Node) int64 {
	outC := lconv.Conv().OutC
	hw := int64(lconv.Shape[1]) * int64(lconv.Shape[2])
	kProd := int64(1)
	cur := lconv.Inputs[0]
	for cur.Kind == ir.KindConv2D && cur.Role == ir.RoleCore {
		a := cur.Conv()
		kProd *= int64(a.KH) * int64(a.KW)
		cur = cur.Inputs[0]
	}
	if cur.Kind == ir.KindConv2D && cur.Role == ir.RoleFConv {
		inC := int64(cur.Conv().InC)
		return int64(outC) * hw * inC * kProd * 2
	}
	return ir.FLOPs(lconv)
}

// planComputeThreshold sums originalConvFLOPs over the plan's lconv leaves
// and the original cost of the copied elementwise layers.
func planComputeThreshold(plan restorePlan) int64 {
	var t int64
	for _, n := range plan.list {
		if n.IsLConv() {
			t += originalConvFLOPs(n)
		} else {
			t += ir.FLOPs(n)
		}
	}
	return t
}
