package core

import (
	"testing"
	"testing/quick"

	"temco/internal/exec"
	"temco/internal/ir"
	"temco/internal/memplan"
	"temco/internal/tensor"
)

func TestScheduleForMemoryReordersBranches(t *testing.T) {
	// Two independent branches off the input: one produces a huge tensor
	// consumed immediately, one a small tensor consumed at the join. A
	// memory-aware schedule runs the big branch first so the big tensor is
	// gone before the small branch's tensors accumulate.
	b := ir.NewBuilder("sched", 1)
	in := b.Input(4, 16, 16)
	small := b.ConvNamed("small", in, 2, 3, 3, 1, 1, 1, 1, 1) // 2ch held
	big := b.ConvNamed("big", in, 64, 3, 3, 1, 1, 1, 1, 1)    // 64ch
	bigR := b.ConvNamed("bigr", big, 2, 3, 3, 1, 1, 1, 1, 1)  // reduce big
	j := b.Add(small, bigR)
	b.Output(j)
	// Force the bad order: small first (it then stays live across big).
	g := b.G
	before, after := ScheduleForMemory(g, DefaultConfig())
	if after > before {
		t.Fatalf("schedule regressed: %d → %d", before, after)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Semantics must be intact.
	x := randIn(3, 1, 4, 16, 16)
	if _, err := exec.Run(g, x); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleNeverRegressesOnPipelineOutput(t *testing.T) {
	g := unetMini(t)
	og, _ := Optimize(g, DefaultConfig())
	before, after := ScheduleForMemory(og, DefaultConfig())
	if after > before {
		t.Fatalf("regressed: %d → %d", before, after)
	}
}

// Property: scheduling preserves semantics and never increases peak on
// random branchy graphs.
func TestQuickSchedulePreservesSemantics(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		b := ir.NewBuilder("qs", seed)
		in := b.Input(2+r.Intn(4), 8, 8)
		nodes := []*ir.Node{in}
		for i := 0; i < 4+r.Intn(8); i++ {
			switch r.Intn(3) {
			case 0:
				nodes = append(nodes, b.ReLU(nodes[r.Intn(len(nodes))]))
			case 1:
				nodes = append(nodes, b.Conv(nodes[r.Intn(len(nodes))], 1+r.Intn(8), 3, 1, 1))
			case 2:
				a := nodes[r.Intn(len(nodes))]
				nodes = append(nodes, b.Sigmoid(a))
			}
		}
		out := nodes[len(nodes)-1]
		b.Output(out)
		g := b.G
		x := tensor.New(1, g.Inputs[0].Shape[0], 8, 8)
		x.FillNormal(r, 0, 1)
		ref, err := exec.Run(g.Clone(), x)
		if err != nil {
			return false
		}
		before, after := ScheduleForMemory(g, DefaultConfig())
		if after > before {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		got, err := exec.Run(g, x)
		if err != nil {
			return false
		}
		if tensor.MaxAbsDiff(ref.Outputs[0], got.Outputs[0]) != 0 {
			return false
		}
		// Re-simulating must agree with the reported after-peak.
		return memplan.Simulate(g, 1, DefaultConfig().DistanceThreshold).PeakInternal == after
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
