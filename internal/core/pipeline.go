package core

import (
	"temco/internal/guard"
	"temco/internal/ir"
)

// testPassHook, when non-nil, runs before the named pass on the working
// clone. Tests install it to simulate a pass that panics or corrupts the
// graph, exercising the isolation/rollback machinery.
var testPassHook func(pass string, g *ir.Graph)

// Optimize runs the TeMCO pass pipeline (paper Fig. 6) on a decomposed
// model graph and returns the optimized clone plus pass statistics. The
// input graph is never modified.
//
// Pipeline order: fold batchnorm → skip-connection optimization → layer
// transformations → activation layer fusion → dead code elimination.
// Skip-opt runs first so the restore-layer copies it inserts before concat
// and add consumers become visible to the transformations, which in turn
// produce the lconv→act→fconv chains the fusion pass consumes — the
// composition the paper describes for DenseNet and UNet (§4.2).
//
// Each pass runs isolated: it executes under a panic-recovery boundary and
// its result is re-validated; a pass that panics or produces an invalid
// graph is rolled back (the pre-pass clone is restored) and recorded in
// Stats.PassFailures, so Optimize degrades gracefully — it always returns
// a valid, runnable graph, at worst the unoptimized clone.
func Optimize(g *ir.Graph, cfg Config) (*ir.Graph, Stats) {
	ng := g.Clone()
	var st Stats
	passes := []struct {
		name    string
		enabled bool
		run     func(*ir.Graph) Stats
	}{
		{"bnfold", true, FoldBatchNorm},
		{"skipopt", cfg.SkipOpt, func(g *ir.Graph) Stats { return SkipOptimize(g, cfg) }},
		{"transform", cfg.Transforms, func(g *ir.Graph) Stats { return Transform(g, cfg) }},
		{"fusion", cfg.Fusion, func(g *ir.Graph) Stats { return FuseActivations(g, cfg) }},
	}
	for _, p := range passes {
		if !p.enabled {
			continue
		}
		backup := ng.Clone()
		var ps Stats
		err := guard.Safe("core."+p.name, func() error {
			if testPassHook != nil {
				testPassHook(p.name, ng)
			}
			ps = p.run(ng)
			return ng.Validate()
		})
		if err != nil {
			ng = backup
			st.PassFailures = append(st.PassFailures, PassFailure{Pass: p.name, Reason: err.Error()})
			continue
		}
		st.Add(ps)
	}
	// DCE only removes unreachable nodes, so the validated graph stays valid.
	st.DeadNodesRemoved += ng.DeadCodeElim()
	return ng, st
}
