package core

import "temco/internal/ir"

// Optimize runs the TeMCO pass pipeline (paper Fig. 6) on a decomposed
// model graph and returns the optimized clone plus pass statistics. The
// input graph is never modified.
//
// Pipeline order: fold batchnorm → skip-connection optimization → layer
// transformations → activation layer fusion → dead code elimination.
// Skip-opt runs first so the restore-layer copies it inserts before concat
// and add consumers become visible to the transformations, which in turn
// produce the lconv→act→fconv chains the fusion pass consumes — the
// composition the paper describes for DenseNet and UNet (§4.2).
func Optimize(g *ir.Graph, cfg Config) (*ir.Graph, Stats) {
	ng := g.Clone()
	var st Stats
	st.Add(FoldBatchNorm(ng))
	if cfg.SkipOpt {
		st.Add(SkipOptimize(ng, cfg))
	}
	if cfg.Transforms {
		st.Add(Transform(ng, cfg))
	}
	if cfg.Fusion {
		st.Add(FuseActivations(ng, cfg))
	}
	st.DeadNodesRemoved += ng.DeadCodeElim()
	if err := ng.Validate(); err != nil {
		panic("core: Optimize produced invalid graph: " + err.Error())
	}
	return ng, st
}
