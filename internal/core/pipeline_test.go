package core

import (
	"testing"

	"temco/internal/decompose"
	"temco/internal/exec"
	"temco/internal/ir"
	"temco/internal/tensor"
)

func isolationModel(t *testing.T) *ir.Graph {
	t.Helper()
	b := ir.NewBuilder("iso", 11)
	in := b.Input(8, 16, 16)
	x := b.ReLU(b.Conv(in, 32, 3, 1, 1))
	x = b.MaxPool(x, 2, 2)
	x = b.ReLU(b.Conv(x, 32, 3, 1, 1))
	b.Output(x)
	dg, _ := decompose.Decompose(b.G, decompose.DefaultOptions())
	return dg
}

// A pass that panics must be rolled back and recorded, and Optimize must
// still return a valid graph that computes the same outputs as the input.
func TestOptimizeIsolatesPanickingPass(t *testing.T) {
	dg := isolationModel(t)
	defer func() { testPassHook = nil }()
	testPassHook = func(pass string, g *ir.Graph) {
		if pass == "fusion" {
			panic("deliberately broken pass")
		}
	}
	og, st := Optimize(dg, FusionOnly())
	if err := og.Validate(); err != nil {
		t.Fatalf("Optimize returned invalid graph: %v", err)
	}
	if len(st.PassFailures) != 1 || st.PassFailures[0].Pass != "fusion" {
		t.Fatalf("want one fusion failure, got %+v", st.PassFailures)
	}
	if st.FusedKernels+st.TailFusedKernels != 0 {
		t.Fatalf("rolled-back pass must not contribute stats: %+v", st)
	}
	x := tensor.New(1, 8, 16, 16)
	x.FillNormal(tensor.NewRNG(5), 0, 1)
	want, err := exec.Run(dg, x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Run(og, x)
	if err != nil {
		t.Fatalf("degraded graph is not runnable: %v", err)
	}
	if d := tensor.MaxAbsDiff(want.Outputs[0], got.Outputs[0]); d > 1e-5 {
		t.Fatalf("degraded graph deviates by %v", d)
	}
}

// A pass that corrupts the graph without panicking must be caught by the
// post-pass validation and rolled back the same way.
func TestOptimizeRollsBackInvalidGraph(t *testing.T) {
	dg := isolationModel(t)
	defer func() { testPassHook = nil }()
	testPassHook = func(pass string, g *ir.Graph) {
		if pass == "bnfold" {
			// Stale shape: Validate must reject this after the pass runs.
			for _, n := range g.Nodes {
				if n.Kind == ir.KindConv2D {
					n.Shape[0]++
					break
				}
			}
		}
	}
	og, st := Optimize(dg, FusionOnly())
	if err := og.Validate(); err != nil {
		t.Fatalf("Optimize returned invalid graph: %v", err)
	}
	if len(st.PassFailures) == 0 || st.PassFailures[0].Pass != "bnfold" {
		t.Fatalf("want bnfold failure record, got %+v", st.PassFailures)
	}
	// Later passes still ran on the rolled-back graph.
	if st.FusedKernels+st.TailFusedKernels == 0 {
		t.Fatal("fusion should still apply after an earlier pass is rolled back")
	}
}

// Without a broken pass the pipeline must record no failures.
func TestOptimizeNoFailuresByDefault(t *testing.T) {
	dg := isolationModel(t)
	_, st := Optimize(dg, DefaultConfig())
	if len(st.PassFailures) != 0 {
		t.Fatalf("unexpected pass failures: %+v", st.PassFailures)
	}
}
