package core

import (
	"fmt"

	"temco/internal/ir"
)

// FuseActivations implements paper §3.2: every
//
//	lconv → activation [→ pool] → fconv
//
// chain whose intermediate values have no other consumers is replaced by a
// single KindFused node that computes the chain from the reduced input
// tensor to the reduced output tensor without materializing the restored
// intermediates. The graph is modified in place.
func FuseActivations(g *ir.Graph, cfg Config) Stats {
	var st Stats
	uses := g.UseCounts()
	snapshot := append([]*ir.Node(nil), g.Nodes...)
	fused := make(map[*ir.Node]bool)
	for _, c := range snapshot {
		// The trailing convolution is usually a channel-reducing fconv, but
		// any 1×1 stride-1 convolution closes the pattern: the memory win
		// comes from never materializing the lconv's restored output.
		if fused[c] || !conv1x1(c) {
			continue
		}
		x := c.Inputs[0]
		var pool *ir.Node
		if (x.Kind == ir.KindMaxPool || x.Kind == ir.KindAvgPool) && uses[x] == 1 && !fused[x] {
			pool = x
			x = x.Inputs[0]
		}
		if !x.Kind.IsActivation() || uses[x] != 1 || fused[x] {
			continue
		}
		a := x.Inputs[0]
		if !a.IsLConv() || uses[a] != 1 || fused[a] {
			continue
		}
		// Build the fused node in place of the fconv.
		la, fa := a.Conv(), c.Conv()
		attrs := &ir.FusedAttrs{
			InC: la.InC, MidC: la.OutC, OutC: fa.OutC,
			Act: x.Kind,
			LW:  a.W, LB: a.B, FW: c.W, FB: c.B,
		}
		if pool != nil {
			p := *pool.Pool()
			attrs.Pool = &p
			attrs.PoolKind = pool.Kind
		}
		in := a.Inputs[0]
		shape, err := ir.InferShape(ir.KindFused, attrs, [][]int{in.Shape})
		if err != nil {
			panic(fmt.Sprintf("core: fusion shape error at %s: %v", c, err))
		}
		fn := &ir.Node{
			ID:     g.NewID(),
			Name:   fuseName(a, x, pool, c),
			Kind:   ir.KindFused,
			Inputs: []*ir.Node{in},
			Attrs:  attrs,
			Shape:  shape,
		}
		replaceInSchedule(g, c, fn)
		g.ReplaceAllUses(c, fn)
		fused[a], fused[x], fused[c] = true, true, true
		if pool != nil {
			fused[pool] = true
		}
		st.FusedKernels++
	}
	// Second scan: tail fusion. Any remaining lconv→act[→pool] chain whose
	// result feeds a non-1×1 consumer (an add, a concat, the graph output)
	// is collapsed into a kernel that emits the restored tensor directly —
	// removing the lconv-output/activation-input double buffering ("the
	// restorations of skip connections can also be hidden in the fused
	// layers", paper §2.3).
	uses = g.UseCounts()
	snapshot = append([]*ir.Node(nil), g.Nodes...)
	for _, x := range snapshot {
		if fused[x] || !x.Kind.IsActivation() {
			continue
		}
		a := x.Inputs[0]
		if !a.IsLConv() || uses[a] != 1 || fused[a] {
			continue
		}
		final := x
		var pool *ir.Node
		// Take an optional trailing single-use pool into the kernel.
		if uses[x] == 1 {
			for _, s := range g.Succs()[x] {
				if (s.Kind == ir.KindMaxPool || s.Kind == ir.KindAvgPool) && !fused[s] {
					pool = s
					final = s
				}
			}
		}
		la := a.Conv()
		attrs := &ir.FusedAttrs{
			InC: la.InC, MidC: la.OutC, OutC: la.OutC,
			Act: x.Kind,
			LW:  a.W, LB: a.B,
		}
		if pool != nil {
			p := *pool.Pool()
			attrs.Pool = &p
			attrs.PoolKind = pool.Kind
		}
		in := a.Inputs[0]
		shape, err := ir.InferShape(ir.KindFused, attrs, [][]int{in.Shape})
		if err != nil {
			panic(fmt.Sprintf("core: tail fusion shape error at %s: %v", x, err))
		}
		fn := &ir.Node{
			ID:     g.NewID(),
			Name:   fuseName(a, x, pool, nil),
			Kind:   ir.KindFused,
			Inputs: []*ir.Node{in},
			Attrs:  attrs,
			Shape:  shape,
		}
		replaceInSchedule(g, final, fn)
		g.ReplaceAllUses(final, fn)
		fused[a], fused[x] = true, true
		if pool != nil {
			fused[pool] = true
		}
		st.TailFusedKernels++
	}
	st.DeadNodesRemoved += g.DeadCodeElim()
	if err := g.Validate(); err != nil {
		panic(fmt.Sprintf("core: FuseActivations produced invalid graph: %v", err))
	}
	return st
}

func fuseName(a, x, pool, c *ir.Node) string {
	tail := "tail"
	if c != nil {
		tail = c.Name
	}
	if pool != nil {
		return fmt.Sprintf("%s_%s_%s_%s", a.Name, x.Kind, pool.Kind, tail)
	}
	return fmt.Sprintf("%s_%s_%s", a.Name, x.Kind, tail)
}

// replaceInSchedule swaps old for new at old's schedule slot.
func replaceInSchedule(g *ir.Graph, old, new *ir.Node) {
	for i, n := range g.Nodes {
		if n == old {
			g.Nodes[i] = new
			return
		}
	}
	panic(fmt.Sprintf("core: node %s not in schedule", old))
}
