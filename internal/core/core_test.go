package core

import (
	"testing"

	"temco/internal/decompose"
	"temco/internal/exec"
	"temco/internal/ir"
	"temco/internal/memplan"
	"temco/internal/tensor"
)

func randIn(seed uint64, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	t.FillNormal(tensor.NewRNG(seed), 0, 1)
	return t
}

// mustMatch runs both graphs on x and fails if outputs deviate.
func mustMatch(t *testing.T, a, b *ir.Graph, x *tensor.Tensor, tol float64, what string) {
	t.Helper()
	ra, err := exec.Run(a, x)
	if err != nil {
		t.Fatalf("%s: run baseline: %v", what, err)
	}
	rb, err := exec.Run(b, x)
	if err != nil {
		t.Fatalf("%s: run optimized: %v", what, err)
	}
	if len(ra.Outputs) != len(rb.Outputs) {
		t.Fatalf("%s: output arity changed", what)
	}
	for i := range ra.Outputs {
		if d := tensor.MaxAbsDiff(ra.Outputs[i], rb.Outputs[i]); d > tol {
			t.Fatalf("%s: output %d deviates by %v (tol %v)", what, i, d, tol)
		}
	}
}

// vggChain builds a small VGG-style linear model and decomposes it.
func vggChain(t *testing.T) (*ir.Graph, *ir.Graph) {
	t.Helper()
	b := ir.NewBuilder("vggchain", 7)
	in := b.Input(16, 16, 16)
	x := b.ReLU(b.Conv(in, 32, 3, 1, 1))
	x = b.MaxPool(x, 2, 2)
	x = b.ReLU(b.Conv(x, 64, 3, 1, 1))
	x = b.MaxPool(x, 2, 2)
	x = b.ReLU(b.Conv(x, 64, 3, 1, 1))
	b.Output(x)
	opts := decompose.DefaultOptions()
	opts.Ratio = 0.25
	dg, _ := decompose.Decompose(b.G, opts)
	return b.G, dg
}

func TestFusionOnVGGChain(t *testing.T) {
	_, dg := vggChain(t)
	og, st := Optimize(dg, FusionOnly())
	// conv1: lconv1-relu-pool-fconv2; conv2: lconv2-relu-pool-fconv3.
	if st.FusedKernels != 2 {
		t.Fatalf("fused kernels = %d, want 2", st.FusedKernels)
	}
	x := randIn(3, 2, 16, 16, 16)
	mustMatch(t, dg, og, x, 1e-3, "fusion")
	// Peak internal memory must drop: the full-size relu intermediates are
	// gone from the middle of the network.
	pd := memplan.Simulate(dg, 4, 0)
	po := memplan.Simulate(og, 4, 0)
	if po.PeakInternal >= pd.PeakInternal {
		t.Fatalf("fusion did not reduce peak: %d → %d", pd.PeakInternal, po.PeakInternal)
	}
}

func TestFusionRequiresSingleUse(t *testing.T) {
	// If the activation output is also consumed elsewhere, fusion must not
	// fire for that chain.
	b := ir.NewBuilder("mu", 1)
	in := b.Input(4, 8, 8)
	l := b.ConvNamed("l", in, 32, 1, 1, 1, 1, 0, 0, 1) // lconv
	r := b.ReLU(l)
	f := b.ConvNamed("f", r, 4, 1, 1, 1, 1, 0, 0, 1) // fconv
	g2 := b.GlobalAvgPool(r)                         // second consumer of r
	b.Output(f)
	b.Output(g2)
	og, st := Optimize(b.G, FusionOnly())
	if st.FusedKernels != 0 {
		t.Fatalf("fused across a multi-use intermediate: %d", st.FusedKernels)
	}
	mustMatch(t, b.G, og, randIn(2, 1, 4, 8, 8), 1e-4, "no-fuse")
}

// unetMini builds a small hourglass with one concat skip connection.
func unetMini(t *testing.T) *ir.Graph {
	t.Helper()
	b := ir.NewBuilder("unetmini", 11)
	in := b.Input(16, 16, 16)
	d1 := b.ReLU(b.Conv(in, 32, 3, 1, 1)) // skip source
	p := b.MaxPool(d1, 2, 2)
	mid := b.ReLU(b.Conv(p, 64, 3, 1, 1))
	up := b.Upsample(mid, 2)
	cat := b.Concat(up, d1) // d1 lives across the bottleneck
	out := b.ReLU(b.Conv(cat, 32, 3, 1, 1))
	b.Output(out)
	return b.G
}

func TestSkipOptOnUNetMini(t *testing.T) {
	g := unetMini(t)
	opts := decompose.DefaultOptions()
	opts.Ratio = 0.2
	dg, _ := decompose.Decompose(g, opts)

	cfg := SkipOptOnly()
	og, st := Optimize(dg, cfg)
	if st.SkipConnectionsFound == 0 {
		t.Fatal("no skip connections found in a UNet-style graph")
	}
	if st.SkipConnectionsOptimized == 0 {
		t.Fatalf("no skip connections optimized: %+v", st)
	}
	if st.RestoreLayersCopied == 0 {
		t.Fatal("no restore layers copied")
	}
	x := randIn(5, 2, 16, 16, 16)
	mustMatch(t, dg, og, x, 1e-3, "skip-opt")

	// Skip-opt alone rematerializes the restored tensor at each use, so the
	// peak (which sits at the concat, where the full tensor must exist
	// either way) cannot grow — and the memory held *across* the bottleneck
	// must shrink: the reduced core output replaces the full restored d1.
	pd := memplan.Simulate(dg, 4, 0)
	po := memplan.Simulate(og, 4, 0)
	if po.PeakInternal > pd.PeakInternal {
		t.Fatalf("skip-opt increased peak: %d → %d", pd.PeakInternal, po.PeakInternal)
	}
	atMid := func(p memplan.Profile) int64 {
		for _, e := range p.Events {
			if e.Name == "relu2" { // the bottleneck activation
				return e.LiveBytes
			}
		}
		t.Fatal("relu2 event not found")
		return 0
	}
	if atMid(po) >= atMid(pd) {
		t.Fatalf("skip-opt did not reduce bottleneck memory: %d → %d", atMid(pd), atMid(po))
	}
}

func TestFullPipelineOnUNetMini(t *testing.T) {
	g := unetMini(t)
	opts := decompose.DefaultOptions()
	opts.Ratio = 0.2
	dg, _ := decompose.Decompose(g, opts)
	og, st := Optimize(dg, DefaultConfig())
	x := randIn(9, 2, 16, 16, 16)
	mustMatch(t, dg, og, x, 1e-2, "full-pipeline")
	pd := memplan.Simulate(dg, 4, 0)
	po := memplan.Simulate(og, 4, 0)
	if po.PeakInternal >= pd.PeakInternal {
		t.Fatalf("pipeline did not reduce peak: %d → %d", pd.PeakInternal, po.PeakInternal)
	}
	if st.FusedKernels == 0 {
		t.Fatalf("pipeline produced no fused kernels: %+v", st)
	}
}

func TestFindReducedFigure7(t *testing.T) {
	// Reproduce the paper's Fig. 7 shape: b = relu(a), a = lconv(a2);
	// FindReduced(b) must return [lconv, relu].
	b := ir.NewBuilder("fig7", 1)
	in := b.Input(4, 8, 8)
	a2 := b.ConvNamed("core", in, 4, 3, 3, 1, 1, 1, 1, 1)
	a := b.ConvNamed("conv1.lconv", a2, 32, 1, 1, 1, 1, 0, 0, 1)
	rl := b.ReLU(a)
	b.Output(rl)
	plan, ok := findReduced(rl, 8)
	if !ok {
		t.Fatal("FindReduced failed on the paper's example")
	}
	if len(plan.list) != 2 || plan.list[0] != a || plan.list[1] != rl {
		t.Fatalf("plan = %v, want [lconv, relu]", plan.list)
	}
	if plan.size != rl.OutBytes(1) {
		t.Fatalf("plan size = %d, want %d", plan.size, rl.OutBytes(1))
	}
	if plan.peak < plan.size {
		t.Fatal("plan peak below its own result size")
	}
}

func TestFindReducedWithoutLConvIsRejected(t *testing.T) {
	b := ir.NewBuilder("nolconv", 1)
	in := b.Input(4, 8, 8)
	c := b.Conv(in, 8, 3, 1, 1) // a 3×3 conv is not an lconv
	r := b.ReLU(c)
	b.Output(r)
	// The keep-live fallback yields a plan (recompute relu, keep the conv
	// output live), but it holds as many bytes as the skip itself — the
	// Overhead gate must reject it as a non-improvement.
	plan, ok := findReduced(r, 8)
	if !ok {
		t.Fatal("keep-live fallback should produce a plan")
	}
	if plan.held < plan.size {
		t.Fatalf("held %d < size %d: plan claims a free lunch", plan.held, plan.size)
	}
	if overheadOK(plan, 1, DefaultConfig()) {
		t.Fatal("gate must reject a plan that keeps as many bytes live as the skip")
	}
}

func TestFindReducedThroughAddAndConcat(t *testing.T) {
	b := ir.NewBuilder("merge", 1)
	in := b.Input(4, 8, 8)
	l1 := b.ConvNamed("l1", in, 16, 1, 1, 1, 1, 0, 0, 1)
	l2 := b.ConvNamed("l2", in, 16, 1, 1, 1, 1, 0, 0, 1)
	a := b.Add(l1, l2)
	r := b.ReLU(a)
	b.Output(r)
	plan, ok := findReduced(r, 8)
	if !ok {
		t.Fatal("FindReduced must traverse add")
	}
	if len(plan.list) != 4 {
		t.Fatalf("plan length = %d, want 4 (two lconvs, add, relu)", len(plan.list))
	}
}

func TestOverheadGateRejectsLongPlans(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxRestoreLayers = 2
	plan := restorePlan{list: make([]*ir.Node, 3)}
	if overheadOK(plan, 1, cfg) {
		t.Fatal("gate must reject plans longer than MaxRestoreLayers")
	}
	cfg.DisableOverheadGate = true
	if !overheadOK(plan, 1, cfg) {
		t.Fatal("disabled gate must accept everything")
	}
}

func TestComparePlansAndPeak(t *testing.T) {
	a := restorePlan{size: 10, peak: 100}
	b := restorePlan{size: 50, peak: 60}
	// a first: 10 + 60 = 70; b first: 50 + 100 = 150 → a before b.
	if !comparePlans(a, b) {
		t.Fatal("Compare should schedule the small-result/large-peak plan first")
	}
	ordered := orderPlans([]restorePlan{b, a})
	if ordered[0].size != 10 {
		t.Fatal("orderPlans did not sort by Compare")
	}
	n := &ir.Node{Shape: []int{1, 1, 5}} // 20 bytes
	p := planPeak(ordered, n)
	// exec a (peak 100), retain 10, exec b (10+60=70), retain 60, +20 = 80.
	if p != 100 {
		t.Fatalf("planPeak = %d, want 100", p)
	}
}

func TestBNFoldEquivalence(t *testing.T) {
	b := ir.NewBuilder("bn", 5)
	in := b.Input(8, 8, 8)
	c := b.Conv(in, 16, 3, 1, 1)
	bn := b.BatchNorm(c)
	r := b.ReLU(bn)
	b.Output(r)
	og := b.G.Clone()
	st := FoldBatchNorm(og)
	if st.BatchNormsFolded != 1 {
		t.Fatalf("folded = %d, want 1", st.BatchNormsFolded)
	}
	for _, n := range og.Nodes {
		if n.Kind == ir.KindBatchNorm {
			t.Fatal("batchnorm survived folding")
		}
	}
	mustMatch(t, b.G, og, randIn(2, 2, 8, 8, 8), 1e-4, "bnfold")
}

func TestBNFoldSkipsMultiUseConv(t *testing.T) {
	b := ir.NewBuilder("bn2", 5)
	in := b.Input(4, 4, 4)
	c := b.Conv(in, 8, 3, 1, 1)
	bn := b.BatchNorm(c)
	b.Output(bn)
	b.Output(c) // conv used twice: folding would corrupt the second use
	og := b.G.Clone()
	st := FoldBatchNorm(og)
	if st.BatchNormsFolded != 0 {
		t.Fatal("must not fold through a multi-use conv")
	}
}

func TestMergeLConvsAtConcat(t *testing.T) {
	b := ir.NewBuilder("mlc", 3)
	in := b.Input(4, 8, 8)
	r1 := b.ConvNamed("red1", in, 3, 3, 3, 1, 1, 1, 1, 1) // small reduced tensor 1
	r2 := b.ConvNamed("red2", in, 5, 3, 3, 1, 1, 1, 1, 1) // small reduced tensor 2
	l1 := b.ConvNamed("l1", r1, 24, 1, 1, 1, 1, 0, 0, 1)
	l2 := b.ConvNamed("l2", r2, 40, 1, 1, 1, 1, 0, 0, 1)
	a1 := b.ReLU(l1)
	a2 := b.ReLU(l2)
	cc := b.Concat(a1, a2)
	f := b.ConvNamed("f", cc, 8, 1, 1, 1, 1, 0, 0, 1) // fconv over 64ch
	b.Output(f)

	og := b.G.Clone()
	st := Transform(og, DefaultConfig())
	if st.MergedLConvs != 1 {
		t.Fatalf("merged lconvs = %d, want 1 (stats %+v)", st.MergedLConvs, st)
	}
	mustMatch(t, b.G, og, randIn(7, 2, 4, 8, 8), 1e-3, "merged-lconv")

	// After merging, fusion should produce a single fused kernel.
	st2 := FuseActivations(og, DefaultConfig())
	if st2.FusedKernels != 1 {
		t.Fatalf("fused kernels after merge = %d, want 1", st2.FusedKernels)
	}
	mustMatch(t, b.G, og, randIn(8, 2, 4, 8, 8), 1e-3, "merged-lconv+fusion")
}

func TestSplitConcatFConv(t *testing.T) {
	// Different activations per branch block the merge; the split must
	// fire instead and produce per-branch fusible chains.
	b := ir.NewBuilder("split", 3)
	in := b.Input(4, 8, 8)
	l1 := b.ConvNamed("l1", in, 24, 1, 1, 1, 1, 0, 0, 1)
	l2 := b.ConvNamed("l2", in, 40, 1, 1, 1, 1, 0, 0, 1)
	a1 := b.ReLU(l1)
	a2 := b.SiLU(l2) // different activation → no lconv merge
	cc := b.Concat(a1, a2)
	f := b.ConvNamed("f", cc, 8, 1, 1, 1, 1, 0, 0, 1)
	b.Output(f)

	og := b.G.Clone()
	st := Transform(og, DefaultConfig())
	if st.MergedLConvs != 0 {
		t.Fatal("must not merge lconvs across different activations")
	}
	if st.ConcatSplits != 1 {
		t.Fatalf("concat splits = %d, want 1", st.ConcatSplits)
	}
	mustMatch(t, b.G, og, randIn(9, 2, 4, 8, 8), 1e-3, "concat-split")

	st2 := FuseActivations(og, DefaultConfig())
	if st2.FusedKernels != 2 {
		t.Fatalf("fused kernels after split = %d, want 2", st2.FusedKernels)
	}
	mustMatch(t, b.G, og, randIn(10, 2, 4, 8, 8), 1e-3, "concat-split+fusion")
}

func TestMergeAddOfConvs(t *testing.T) {
	b := ir.NewBuilder("addm", 3)
	in := b.Input(4, 8, 8)
	u := b.ConvNamed("u", in, 3, 3, 3, 1, 1, 1, 1, 1)
	v := b.ConvNamed("v", in, 5, 3, 3, 1, 1, 1, 1, 1)
	p := b.ConvNamed("p", u, 16, 1, 1, 1, 1, 0, 0, 1)
	q := b.ConvNamed("q", v, 16, 1, 1, 1, 1, 0, 0, 1)
	a := b.Add(p, q)
	b.Output(b.ReLU(a))

	og := b.G.Clone()
	st := Transform(og, DefaultConfig())
	if st.AddMerges != 1 {
		t.Fatalf("add merges = %d, want 1 (stats %+v)", st.AddMerges, st)
	}
	mustMatch(t, b.G, og, randIn(11, 2, 4, 8, 8), 1e-3, "add-merge")
}

func TestOptimizeDoesNotMutateInput(t *testing.T) {
	_, dg := vggChain(t)
	before := len(dg.Nodes)
	Optimize(dg, DefaultConfig())
	if len(dg.Nodes) != before {
		t.Fatal("Optimize mutated its input graph")
	}
	if err := dg.Validate(); err != nil {
		t.Fatalf("input graph invalid after Optimize: %v", err)
	}
}

func TestConfigPresets(t *testing.T) {
	if c := FusionOnly(); c.SkipOpt || !c.Fusion {
		t.Fatal("FusionOnly wrong")
	}
	if c := SkipOptOnly(); !c.SkipOpt || c.Fusion || c.Transforms {
		t.Fatal("SkipOptOnly wrong")
	}
	var s Stats
	s.Add(Stats{FusedKernels: 2, SkipConnectionsFound: 1})
	s.Add(Stats{FusedKernels: 1})
	if s.FusedKernels != 3 || s.SkipConnectionsFound != 1 {
		t.Fatal("Stats.Add wrong")
	}
}
