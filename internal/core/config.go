// Package core implements TeMCO, the tensor memory compiler optimization
// of the paper: skip-connection optimization (Alg. 1 + Alg. 2), activation
// layer fusion (§3.2), and the concat/add layer transformations (§3.3),
// composed into a configurable pass pipeline over the layer-graph IR.
package core

// Config controls which TeMCO passes run and their thresholds.
type Config struct {
	// SkipOpt enables skip-connection optimization (paper §3.1).
	SkipOpt bool
	// Fusion enables activation layer fusion (paper §3.2).
	Fusion bool
	// Transforms enables the concatenation/add layer transformations
	// (paper §3.3) that widen fusion applicability.
	Transforms bool
	// DistanceThreshold is the tensor lifespan (schedule slots) beyond
	// which a tensor is treated as a skip connection (paper Alg. 1
	// DISTANCE_THRESHOLD).
	DistanceThreshold int
	// MaxRestoreLayers rejects restore plans longer than this many layers:
	// "if the length of the restore layer list is long ... the algorithm
	// decides not to copy the layers" (paper §3.1).
	MaxRestoreLayers int
	// ComputeScale scales the FLOPs threshold of the Overhead gate. 1.0
	// reproduces the paper's setting (the FLOPs of the corresponding part
	// of the original, non-decomposed model).
	ComputeScale float64
	// DisableOverheadGate turns the Overhead test off (ablation A1).
	DisableOverheadGate bool
}

// DefaultConfig returns the full TeMCO pipeline with the paper's settings.
func DefaultConfig() Config {
	return Config{
		SkipOpt:           true,
		Fusion:            true,
		Transforms:        true,
		DistanceThreshold: 2,
		MaxRestoreLayers:  8,
		ComputeScale:      1.0,
	}
}

// FusionOnly returns the configuration used for models without skip
// connections (AlexNet, VGG in the paper's evaluation).
func FusionOnly() Config {
	c := DefaultConfig()
	c.SkipOpt = false
	c.Transforms = false
	return c
}

// SkipOptOnly returns the configuration of the paper's "Skip-Opt" bars.
func SkipOptOnly() Config {
	c := DefaultConfig()
	c.Fusion = false
	c.Transforms = false
	return c
}

// PassFailure records a pass that panicked or produced an invalid graph
// and was rolled back by Optimize's isolation boundary.
type PassFailure struct {
	Pass   string
	Reason string
}

// Stats reports what the pipeline did.
type Stats struct {
	SkipConnectionsFound     int
	SkipConnectionsOptimized int
	SkipConnectionsRejected  int
	RestoreLayersCopied      int
	FusedKernels             int
	TailFusedKernels         int
	ConcatSplits             int
	ConcatsFlattened         int
	MergedLConvs             int
	UpsampleSinks            int
	AddMerges                int
	BatchNormsFolded         int
	DeadNodesRemoved         int
	// PassFailures lists passes skipped by the isolation boundary: each
	// panicked or produced an invalid graph and was rolled back.
	PassFailures []PassFailure
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.SkipConnectionsFound += other.SkipConnectionsFound
	s.SkipConnectionsOptimized += other.SkipConnectionsOptimized
	s.SkipConnectionsRejected += other.SkipConnectionsRejected
	s.RestoreLayersCopied += other.RestoreLayersCopied
	s.FusedKernels += other.FusedKernels
	s.TailFusedKernels += other.TailFusedKernels
	s.ConcatSplits += other.ConcatSplits
	s.ConcatsFlattened += other.ConcatsFlattened
	s.MergedLConvs += other.MergedLConvs
	s.UpsampleSinks += other.UpsampleSinks
	s.AddMerges += other.AddMerges
	s.BatchNormsFolded += other.BatchNormsFolded
	s.DeadNodesRemoved += other.DeadNodesRemoved
	s.PassFailures = append(s.PassFailures, other.PassFailures...)
}
