package core

import (
	"fmt"

	"temco/internal/ir"
	"temco/internal/tensor"
)

// Transform applies the layer transformations of paper §3.3 that widen
// activation-layer-fusion applicability around concat and add layers:
//
//  1. merged lconv (Fig. 9b→9a): a concat of same-activation lconv branches
//     feeding an fconv becomes concat-of-reduced → block-diagonal lconv →
//     activation, producing one fusible chain;
//  2. add merge (Fig. 9c→9a): an add of two 1×1 convolutions becomes one
//     1×1 convolution over the concatenation of their (reduced) inputs;
//  3. concat split (Fig. 9b→9c): a remaining concat→fconv becomes per-branch
//     1×1 convolutions joined by adds, each branch fusible on its own.
func Transform(g *ir.Graph, cfg Config) Stats {
	var st Stats
	st.ConcatsFlattened = flattenConcats(g)
	st.UpsampleSinks = sinkUpsamples(g)
	st.MergedLConvs = mergeLConvsAtConcat(g)
	st.AddMerges = mergeAddOfConvs(g)
	st.ConcatSplits = splitConcatFConv(g)
	st.DeadNodesRemoved += g.DeadCodeElim()
	if err := g.Validate(); err != nil {
		panic(fmt.Sprintf("core: Transform produced invalid graph: %v", err))
	}
	return st
}

// flattenConcats rewrites concat(concat(a,b), c) into concat(a, b, c)
// (concatenation is associative). Nested running concatenations — the
// DenseNet pattern — become flat, single-use concats that splitConcatFConv
// can then dissolve entirely (paper Fig. 9b→9c applied blockwide), so the
// doubled concat buffers never materialize. Returns the number of concat
// nodes whose input lists were widened.
func flattenConcats(g *ir.Graph) int {
	count := 0
	for _, cc := range g.Nodes { // schedule order: inner concats first
		if cc.Kind != ir.KindConcat {
			continue
		}
		widened := false
		var flat []*ir.Node
		for _, in := range cc.Inputs {
			if in.Kind == ir.KindConcat {
				flat = append(flat, in.Inputs...)
				widened = true
			} else {
				flat = append(flat, in)
			}
		}
		if widened {
			cc.Inputs = flat
			count++
		}
	}
	if count > 0 {
		g.DeadCodeElim()
	}
	return count
}

// sinkUpsamples rewrites upsample(act(lconv(r))) into act(lconv(upsample(r))):
// nearest-neighbour upsampling commutes with per-channel 1×1 convolutions
// and elementwise activations, so the full-resolution tensor can be
// produced from the *reduced* tensor, leaving an lconv→act chain adjacent
// to its consumer where activation fusion applies. This is what keeps the
// UNet decoder's restored tensors out of memory (paper §4.2).
func sinkUpsamples(g *ir.Graph) int {
	uses := g.UseCounts()
	count := 0
	snapshot := append([]*ir.Node(nil), g.Nodes...)
	for _, u := range snapshot {
		if u.Kind != ir.KindUpsample {
			continue
		}
		a := u.Inputs[0]
		if !a.Kind.IsActivation() || uses[a] != 1 {
			continue
		}
		l := a.Inputs[0]
		if !l.IsLConv() || uses[l] != 1 {
			continue
		}
		r := l.Inputs[0]
		scale := u.Attrs.(*ir.UpsampleAttrs).Scale
		upShape, err := ir.InferShape(ir.KindUpsample, u.Attrs, [][]int{r.Shape})
		if err != nil {
			continue
		}
		newUp := &ir.Node{ID: g.NewID(), Name: u.Name + ".reduced", Kind: ir.KindUpsample,
			Inputs: []*ir.Node{r}, Attrs: &ir.UpsampleAttrs{Scale: scale}, Shape: upShape}
		lAttrs := *l.Conv()
		lShape, err := ir.InferShape(ir.KindConv2D, &lAttrs, [][]int{upShape})
		if err != nil {
			continue
		}
		newL := &ir.Node{ID: g.NewID(), Name: l.Name + ".up", Kind: ir.KindConv2D,
			Inputs: []*ir.Node{newUp}, Attrs: &lAttrs, W: l.W, B: l.B, Shape: lShape, Role: l.Role}
		newA := &ir.Node{ID: g.NewID(), Name: a.Name + ".up", Kind: a.Kind,
			Inputs: []*ir.Node{newL}, Shape: append([]int(nil), lShape...)}
		g.InsertBefore(u, newUp, newL, newA)
		g.ReplaceAllUses(u, newA)
		count++
		uses = g.UseCounts()
	}
	if count > 0 {
		g.DeadCodeElim()
	}
	return count
}

// conv1x1 reports whether n is a plain 1×1 stride-1 unpadded convolution.
func conv1x1(n *ir.Node) bool {
	if n.Kind != ir.KindConv2D {
		return false
	}
	a := n.Conv()
	g := a.Groups
	if g == 0 {
		g = 1
	}
	return a.KH == 1 && a.KW == 1 && a.SH == 1 && a.SW == 1 && a.PH == 0 && a.PW == 0 && g == 1
}

// mergeLConvsAtConcat rewrites concat(act(lconv_1(r_1)), …, act(lconv_k(r_k)))
// feeding an fconv into act(lconvM(concat(r_1, …, r_k))) with block-diagonal
// merged weights (paper Fig. 9a). Returns the number of merges.
func mergeLConvsAtConcat(g *ir.Graph) int {
	uses := g.UseCounts()
	succs := g.Succs()
	count := 0
	snapshot := append([]*ir.Node(nil), g.Nodes...)
	for _, cc := range snapshot {
		if cc.Kind != ir.KindConcat || uses[cc] != 1 || !succs[cc][0].IsFConv() {
			continue
		}
		// Every branch must be act(lconv(r)) with a common activation kind.
		// Branches may have other consumers (the DenseNet running concats
		// share them): the originals stay in place for those consumers and
		// die by DCE once every concat has been merged — only the small
		// reduced tensors r then survive across the block.
		var acts []*ir.Node
		var lconvs []*ir.Node
		ok := true
		var actKind ir.Kind
		for i, br := range cc.Inputs {
			if !br.Kind.IsActivation() {
				ok = false
				break
			}
			if i == 0 {
				actKind = br.Kind
			} else if br.Kind != actKind {
				ok = false
				break
			}
			l := br.Inputs[0]
			if !l.IsLConv() {
				ok = false
				break
			}
			acts = append(acts, br)
			lconvs = append(lconvs, l)
		}
		if !ok {
			continue
		}
		// Build concat of the reduced inputs.
		reduced := make([]*ir.Node, len(lconvs))
		redShapes := make([][]int, len(lconvs))
		for i, l := range lconvs {
			reduced[i] = l.Inputs[0]
			redShapes[i] = l.Inputs[0].Shape
		}
		ccShape, err := ir.InferShape(ir.KindConcat, nil, redShapes)
		if err != nil {
			continue // spatial mismatch between reduced tensors
		}
		newCC := &ir.Node{ID: g.NewID(), Name: cc.Name + ".reduced", Kind: ir.KindConcat,
			Inputs: reduced, Shape: ccShape}
		// Merged block-diagonal lconv: [ΣC_i, ΣR_i].
		var sumC, sumR int
		for _, l := range lconvs {
			sumC += l.Conv().OutC
			sumR += l.Conv().InC
		}
		w := tensor.New(sumC, sumR, 1, 1)
		bias := tensor.New(sumC)
		cOff, rOff := 0, 0
		for _, l := range lconvs {
			la := l.Conv()
			for o := 0; o < la.OutC; o++ {
				for r := 0; r < la.InC; r++ {
					w.Data[(cOff+o)*sumR+(rOff+r)] = l.W.Data[o*la.InC+r]
				}
				if l.B != nil {
					bias.Data[cOff+o] = l.B.Data[o]
				}
			}
			cOff += la.OutC
			rOff += la.InC
		}
		mAttrs := &ir.ConvAttrs{InC: sumR, OutC: sumC, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1}
		mShape, err := ir.InferShape(ir.KindConv2D, mAttrs, [][]int{newCC.Shape})
		if err != nil {
			continue
		}
		merged := &ir.Node{ID: g.NewID(), Name: cc.Name + ".mlconv", Kind: ir.KindConv2D,
			Inputs: []*ir.Node{newCC}, Attrs: mAttrs, W: w, B: bias, Shape: mShape, Role: ir.RoleLConv}
		actNode := &ir.Node{ID: g.NewID(), Name: cc.Name + ".mact", Kind: actKind,
			Inputs: []*ir.Node{merged}, Shape: append([]int(nil), mShape...)}
		g.InsertBefore(cc, newCC, merged, actNode)
		g.ReplaceAllUses(cc, actNode)
		count++
		// Refresh use bookkeeping for subsequent patterns.
		uses = g.UseCounts()
		succs = g.Succs()
	}
	return count
}

// mergeAddOfConvs rewrites add(convA(u), convB(v)) with 1×1 single-use
// convolutions into conv([W_A|W_B])(concat(u,v)) (paper Fig. 9c→9a).
func mergeAddOfConvs(g *ir.Graph) int {
	uses := g.UseCounts()
	count := 0
	snapshot := append([]*ir.Node(nil), g.Nodes...)
	for _, a := range snapshot {
		if a.Kind != ir.KindAdd {
			continue
		}
		p, q := a.Inputs[0], a.Inputs[1]
		if !conv1x1(p) || !conv1x1(q) || uses[p] != 1 || uses[q] != 1 || p == q {
			continue
		}
		u, v := p.Inputs[0], q.Inputs[0]
		if u.Shape[1] != v.Shape[1] || u.Shape[2] != v.Shape[2] {
			continue
		}
		pa, qa := p.Conv(), q.Conv()
		if pa.OutC != qa.OutC {
			continue
		}
		ccShape, err := ir.InferShape(ir.KindConcat, nil, [][]int{u.Shape, v.Shape})
		if err != nil {
			continue
		}
		cc := &ir.Node{ID: g.NewID(), Name: a.Name + ".cat", Kind: ir.KindConcat,
			Inputs: []*ir.Node{u, v}, Shape: ccShape}
		inC := pa.InC + qa.InC
		w := tensor.New(pa.OutC, inC, 1, 1)
		bias := tensor.New(pa.OutC)
		for o := 0; o < pa.OutC; o++ {
			copy(w.Data[o*inC:o*inC+pa.InC], p.W.Data[o*pa.InC:(o+1)*pa.InC])
			copy(w.Data[o*inC+pa.InC:(o+1)*inC], q.W.Data[o*qa.InC:(o+1)*qa.InC])
			if p.B != nil {
				bias.Data[o] += p.B.Data[o]
			}
			if q.B != nil {
				bias.Data[o] += q.B.Data[o]
			}
		}
		mAttrs := &ir.ConvAttrs{InC: inC, OutC: pa.OutC, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1}
		mShape, err := ir.InferShape(ir.KindConv2D, mAttrs, [][]int{cc.Shape})
		if err != nil {
			continue
		}
		role := ir.RoleNone
		if pa.OutC < inC {
			role = ir.RoleFConv
		} else if pa.OutC > inC {
			role = ir.RoleLConv
		}
		merged := &ir.Node{ID: g.NewID(), Name: a.Name + ".mconv", Kind: ir.KindConv2D,
			Inputs: []*ir.Node{cc}, Attrs: mAttrs, W: w, B: bias, Shape: mShape, Role: role}
		g.InsertBefore(a, cc, merged)
		g.ReplaceAllUses(a, merged)
		count++
		uses = g.UseCounts()
	}
	return count
}

// splitConcatFConv rewrites fconv(concat(u_1,…,u_k)) into
// add(conv(u_1,W_1), …) with the fconv weight split along its input
// channels (paper Fig. 9b→9c). Each branch convolution is then fusible
// with the chain producing u_i.
func splitConcatFConv(g *ir.Graph) int {
	uses := g.UseCounts()
	succs := g.Succs()
	count := 0
	snapshot := append([]*ir.Node(nil), g.Nodes...)
	for _, cc := range snapshot {
		if cc.Kind != ir.KindConcat || uses[cc] != 1 {
			continue
		}
		f := succs[cc][0]
		if !f.IsFConv() || f.Inputs[0] != cc {
			continue
		}
		fa := f.Conv()
		// Benefit gate: the split replaces one concat buffer (InC channels)
		// with an add chain whose transients hold up to three OutC-channel
		// tensors. Splitting a wide 1×1 convolution (e.g. a DenseNet
		// transition, OutC = InC/2) would regress peak memory; splitting a
		// true fconv (OutC ≈ rank ≪ InC) wins.
		if 3*fa.OutC >= fa.InC {
			continue
		}
		var newNodes []*ir.Node
		var acc *ir.Node
		chOff := 0
		for i, u := range cc.Inputs {
			c := u.Shape[0]
			w := tensor.New(fa.OutC, c, 1, 1)
			for o := 0; o < fa.OutC; o++ {
				copy(w.Data[o*c:(o+1)*c], f.W.Data[o*fa.InC+chOff:o*fa.InC+chOff+c])
			}
			var bias *tensor.Tensor
			if i == 0 && f.B != nil {
				bias = f.B
			}
			bAttrs := &ir.ConvAttrs{InC: c, OutC: fa.OutC, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1}
			bShape, err := ir.InferShape(ir.KindConv2D, bAttrs, [][]int{u.Shape})
			if err != nil {
				panic(fmt.Sprintf("core: concat split shape error: %v", err))
			}
			role := ir.RoleNone
			if fa.OutC < c {
				role = ir.RoleFConv
			}
			bc := &ir.Node{ID: g.NewID(), Name: fmt.Sprintf("%s.split%d", f.Name, i),
				Kind: ir.KindConv2D, Inputs: []*ir.Node{u}, Attrs: bAttrs, W: w, B: bias,
				Shape: bShape, Role: role}
			newNodes = append(newNodes, bc)
			if acc == nil {
				acc = bc
			} else {
				addShape := append([]int(nil), bShape...)
				an := &ir.Node{ID: g.NewID(), Name: fmt.Sprintf("%s.sadd%d", f.Name, i),
					Kind: ir.KindAdd, Inputs: []*ir.Node{acc, bc}, Shape: addShape}
				newNodes = append(newNodes, an)
				acc = an
			}
			chOff += c
		}
		g.InsertBefore(f, newNodes...)
		g.ReplaceAllUses(f, acc)
		count++
		uses = g.UseCounts()
		succs = g.Succs()
	}
	return count
}
