package core

import (
	"fmt"

	"temco/internal/ir"
	"temco/internal/memplan"
)

// ScheduleForMemory reorders g's schedule to reduce peak internal-tensor
// memory, keeping the data dependences intact. The paper defers execution
// scheduling to prior work ([19, 31, 50] in its references) and notes that
// TeMCO "reorders the execution scheduling of the layers"; this pass
// implements the standard greedy list-scheduling heuristic those works
// build on: at every step, among the ready nodes, run the one whose
// execution minimizes the resulting live-set size (breaking ties by
// freed-bytes-minus-allocated-bytes, then by original order for
// determinism).
//
// It returns the peak before and after. The reordering never changes
// semantics: only the relative order of independent layers moves.
func ScheduleForMemory(g *ir.Graph, cfg Config) (before, after int64) {
	before = memplan.Simulate(g, 1, cfg.DistanceThreshold).PeakInternal

	orig := append([]*ir.Node(nil), g.Nodes...)
	pos := make(map[*ir.Node]int, len(orig))
	for i, n := range orig {
		pos[n] = i
	}
	// Remaining-use counts drive the free decisions.
	remaining := make(map[*ir.Node]int, len(orig))
	for _, n := range orig {
		for _, in := range n.Inputs {
			remaining[in]++
		}
	}
	for _, o := range g.Outputs {
		remaining[o]++
	}
	// Dependency counts drive readiness.
	deps := make(map[*ir.Node]int, len(orig))
	succs := g.Succs()
	for _, n := range orig {
		deps[n] = len(n.Inputs)
	}

	var ready []*ir.Node
	for _, n := range orig {
		if deps[n] == 0 {
			ready = append(ready, n)
		}
	}
	liveBytes := int64(0)
	schedule := make([]*ir.Node, 0, len(orig))
	scheduled := make(map[*ir.Node]bool, len(orig))

	// delta returns the live-set change of executing n: its output is
	// allocated; inputs whose remaining count drops to zero are freed.
	delta := func(n *ir.Node) int64 {
		d := n.OutBytes(1)
		seen := map[*ir.Node]bool{}
		for _, in := range n.Inputs {
			if seen[in] {
				continue
			}
			seen[in] = true
			uses := remaining[in]
			// Count duplicate edges from n.
			dup := 0
			for _, in2 := range n.Inputs {
				if in2 == in {
					dup++
				}
			}
			if uses-dup == 0 {
				d -= in.OutBytes(1)
			}
		}
		if remaining[n] == 0 {
			// Output unused (shouldn't happen post-DCE): freed immediately.
			d -= n.OutBytes(1)
		}
		return d
	}

	for len(schedule) < len(orig) {
		if len(ready) == 0 {
			panic("core: ScheduleForMemory: dependency cycle")
		}
		// Pick the ready node minimizing transient peak, then net delta,
		// then original position (stability/determinism).
		best := 0
		bestPeak := liveBytes + ready[0].OutBytes(1)
		bestDelta := delta(ready[0])
		for i := 1; i < len(ready); i++ {
			p := liveBytes + ready[i].OutBytes(1)
			d := delta(ready[i])
			if p < bestPeak || (p == bestPeak && (d < bestDelta ||
				(d == bestDelta && pos[ready[i]] < pos[ready[best]]))) {
				best, bestPeak, bestDelta = i, p, d
			}
		}
		n := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		schedule = append(schedule, n)
		scheduled[n] = true
		liveBytes += delta(n)
		for _, in := range n.Inputs {
			remaining[in]--
		}
		for _, s := range succs[n] {
			deps[s]--
			if deps[s] == 0 && !scheduled[s] {
				ready = append(ready, s)
			}
		}
	}
	g.Nodes = schedule
	after = memplan.Simulate(g, 1, cfg.DistanceThreshold).PeakInternal
	if after > before {
		// The greedy heuristic is not guaranteed optimal; never regress.
		g.Nodes = orig
		after = before
	}
	if err := g.Validate(); err != nil {
		panic(fmt.Sprintf("core: ScheduleForMemory produced invalid graph: %v", err))
	}
	return before, after
}
