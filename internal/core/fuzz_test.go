package core

import (
	"testing"
	"testing/quick"

	"temco/internal/decompose"
	"temco/internal/exec"
	"temco/internal/ir"
	"temco/internal/memplan"
	"temco/internal/tensor"
)

// randomModel builds a random but well-formed CNN: a chain of conv/act/
// pool stages with occasional residual adds, concat skips, and upsamples —
// the structural vocabulary of the ten evaluation models.
func randomModel(seed uint64) *ir.Graph {
	r := tensor.NewRNG(seed)
	b := ir.NewBuilder("fuzz", seed)
	x := b.Input(2+r.Intn(6), 16, 16)
	// Track candidates for skip connections at each spatial size.
	bySize := map[int][]*ir.Node{16: {x}}
	cur := 16
	depth := 3 + r.Intn(6)
	for i := 0; i < depth; i++ {
		switch r.Intn(6) {
		case 0, 1: // conv + act
			c := b.Conv(x, 4+r.Intn(24), 3, 1, 1)
			if r.Intn(2) == 0 {
				x = b.ReLU(c)
			} else {
				x = b.SiLU(c)
			}
		case 2: // pool (halve) when possible
			if cur >= 8 {
				x = b.MaxPool(x, 2, 2)
				cur /= 2
			} else {
				x = b.ReLU(x)
			}
		case 3: // residual add with a same-shape predecessor
			for _, cand := range bySize[cur] {
				if cand != x && cand.Shape[0] == x.Shape[0] && cand.Shape[1] == x.Shape[1] {
					x = b.Add(x, cand)
					break
				}
			}
		case 4: // concat skip with a same-size predecessor
			for _, cand := range bySize[cur] {
				if cand != x && cand.Shape[1] == x.Shape[1] {
					x = b.Concat(x, cand)
					break
				}
			}
		case 5: // upsample (double) when it will not explode
			if cur <= 8 {
				x = b.Upsample(x, 2)
				cur *= 2
			} else {
				x = b.Sigmoid(x)
			}
		}
		bySize[cur] = append(bySize[cur], x)
	}
	// Head: one more conv so the tail is realistic.
	x = b.Conv(x, 4, 3, 1, 1)
	b.Output(x)
	return b.G
}

// TestQuickPipelineOnRandomModels is the end-to-end fuzz gate: for random
// CNNs, decompose → TeMCO must (a) produce a valid graph, (b) preserve the
// decomposed model's outputs, and (c) never increase the simulated peak.
func TestQuickPipelineOnRandomModels(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz pipeline is slow")
	}
	f := func(seed uint64) bool {
		g := randomModel(seed)
		if g.Validate() != nil {
			return false
		}
		opts := decompose.DefaultOptions()
		opts.Ratio = 0.3
		dg, _ := decompose.Decompose(g, opts)
		og, _ := Optimize(dg, DefaultConfig())
		if og.Validate() != nil {
			return false
		}
		r := tensor.NewRNG(seed ^ 0xfeed)
		x := tensor.New(1, g.Inputs[0].Shape[0], 16, 16)
		x.FillNormal(r, 0, 1)
		want, err := exec.Run(dg, x)
		if err != nil {
			t.Logf("seed %d: run decomposed: %v", seed, err)
			return false
		}
		got, err := exec.Run(og, x)
		if err != nil {
			t.Logf("seed %d: run optimized: %v", seed, err)
			return false
		}
		if d := tensor.MaxAbsDiff(want.Outputs[0], got.Outputs[0]); d > 2e-2 {
			t.Logf("seed %d: outputs deviate by %v", seed, d)
			return false
		}
		pd := memplan.Simulate(dg, 2, 0)
		po := memplan.Simulate(og, 2, 0)
		if po.PeakInternal > pd.PeakInternal {
			t.Logf("seed %d: peak grew %d → %d", seed, pd.PeakInternal, po.PeakInternal)
			return false
		}
		// The arena layout of the optimized graph must stay conflict-free.
		asg := memplan.AssignOffsets(og, 2)
		if asg.Check() != nil {
			t.Logf("seed %d: arena layout conflict", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
