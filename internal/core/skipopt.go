package core

import (
	"fmt"

	"temco/internal/ir"
	"temco/internal/memplan"
)

// SkipOptimize implements paper Algorithm 1: it finds skip connections via
// tensor liveness, computes their restore plans with FindReduced, gates on
// computation overhead, and rematerializes the restored tensor immediately
// before each use so that only the reduced tensors stay live across the
// skip. Dead original chains are removed afterwards.
//
// The paper's memory gate compares the plan's own execution peak against
// the model peak; that local test ignores whatever else is live at the
// insertion points, so this implementation strengthens it: each rewrite is
// trial-applied and the whole-model peak re-simulated — if the measured
// peak grows, the rewrite is reverted and counted as rejected. The graph
// is modified in place; pass a clone if the input must survive.
func SkipOptimize(g *ir.Graph, cfg Config) Stats {
	var st Stats
	live := memplan.Analyze(g)
	currentPeak := measuredPeak(g, cfg)
	succs := g.Succs()
	outputs := make(map[*ir.Node]bool, len(g.Outputs))
	for _, o := range g.Outputs {
		outputs[o] = true
	}

	// Work over a snapshot: rewrites splice into g.Nodes as we go.
	snapshot := append([]*ir.Node(nil), g.Nodes...)
	for _, n := range snapshot {
		if n.Kind == ir.KindInput {
			continue
		}
		d := live.Lifespan(n)
		if d <= cfg.DistanceThreshold {
			continue
		}
		st.SkipConnectionsFound++
		if outputs[n] {
			// Graph outputs must be produced as-is; rematerializing their
			// consumers would still leave the output itself live.
			st.SkipConnectionsRejected++
			continue
		}
		plan, ok := findReduced(n, cfg.MaxRestoreLayers)
		if !ok {
			st.SkipConnectionsRejected++
			continue
		}
		uses := succs[n]
		if len(uses) == 0 {
			st.SkipConnectionsRejected++
			continue
		}
		if !overheadOK(plan, len(uses), cfg) {
			st.SkipConnectionsRejected++
			continue
		}
		// Trial-apply: insert a copy of the restore plan before every use
		// and retarget the use to the copy (paper Alg. 1 lines 22-24).
		type undo struct {
			s      *ir.Node
			inputs []*ir.Node
		}
		var undos []undo
		var inserted []*ir.Node
		copied := 0
		for _, s := range uses {
			undos = append(undos, undo{s, append([]*ir.Node(nil), s.Inputs...)})
			copies := copyPlan(g, plan.list, fmt.Sprintf(".r%d", s.ID))
			g.InsertBefore(s, copies...)
			inserted = append(inserted, copies...)
			ir.ReplaceUsesIn(s, n, copies[len(copies)-1])
			copied += len(copies)
		}
		// Measure the true effect (paper Alg. 1's l.peak ≤ m, made global).
		newPeak := measuredPeak(g, cfg)
		if !cfg.DisableOverheadGate && newPeak > currentPeak {
			for _, u := range undos {
				u.s.Inputs = u.inputs
			}
			removeNodes(g, inserted)
			st.SkipConnectionsRejected++
			continue
		}
		currentPeak = newPeak
		st.RestoreLayersCopied += copied
		st.SkipConnectionsOptimized++
	}
	st.DeadNodesRemoved += g.DeadCodeElim()
	if err := g.Validate(); err != nil {
		panic(fmt.Sprintf("core: SkipOptimize produced invalid graph: %v", err))
	}
	return st
}

// measuredPeak simulates g's schedule after dead-code elimination on a
// throwaway clone (rewrites leave the replaced chains in place until the
// final DCE; counting them would bias the gate).
func measuredPeak(g *ir.Graph, cfg Config) int64 {
	trial := g.Clone()
	trial.DeadCodeElim()
	return memplan.Simulate(trial, 1, cfg.DistanceThreshold).PeakInternal
}

// removeNodes deletes the given nodes from g's schedule.
func removeNodes(g *ir.Graph, nodes []*ir.Node) {
	drop := make(map[*ir.Node]bool, len(nodes))
	for _, n := range nodes {
		drop[n] = true
	}
	kept := g.Nodes[:0]
	for _, n := range g.Nodes {
		if !drop[n] {
			kept = append(kept, n)
		}
	}
	g.Nodes = kept
}

// overheadOK is the computational half of the paper's Overhead(n, l) gate:
// the copied computation must not exceed the FLOPs of the corresponding
// original convolutions, the plan must not be too long, and the bytes the
// plan keeps live across the skip must be strictly below the skip tensor's
// own size. (The memory half is measured globally by SkipOptimize.)
func overheadOK(plan restorePlan, nUses int, cfg Config) bool {
	if cfg.DisableOverheadGate {
		return true
	}
	if cfg.MaxRestoreLayers > 0 && len(plan.list) > cfg.MaxRestoreLayers {
		return false
	}
	if plan.held >= plan.size {
		return false
	}
	cost := planFLOPs(plan) * int64(nUses)
	threshold := int64(float64(planComputeThreshold(plan)) * cfg.ComputeScale)
	return cost <= threshold
}

// copyPlan duplicates the restore layers (weights shared, attrs deep-copied)
// in plan order, rewiring intra-plan edges to the copies and leaving edges
// to nodes outside the plan (the reduced tensors and keep-live leaves)
// pointing at the originals.
func copyPlan(g *ir.Graph, plan []*ir.Node, suffix string) []*ir.Node {
	m := make(map[*ir.Node]*ir.Node, len(plan))
	out := make([]*ir.Node, 0, len(plan))
	for _, n := range plan {
		c := &ir.Node{
			ID:    g.NewID(),
			Name:  n.Name + suffix,
			Kind:  n.Kind,
			Attrs: ir.CloneAttrs(n.Attrs),
			W:     n.W,
			B:     n.B,
			Shape: append([]int(nil), n.Shape...),
			Role:  n.Role,
		}
		c.Inputs = make([]*ir.Node, len(n.Inputs))
		for i, in := range n.Inputs {
			if cp, ok := m[in]; ok {
				c.Inputs[i] = cp
			} else {
				c.Inputs[i] = in
			}
		}
		m[n] = c
		out = append(out, c)
	}
	return out
}
