package core

import (
	"testing"

	"temco/internal/ir"
	"temco/internal/memplan"
)

func TestFlattenConcats(t *testing.T) {
	b := ir.NewBuilder("flat", 1)
	in := b.Input(4, 8, 8)
	a := b.ReLU(in)
	c1 := b.Concat(in, a) // 8ch
	bb := b.Sigmoid(in)
	c2 := b.Concat(c1, bb) // nested → should become concat(in, a, bb)
	b.Output(b.ReLU(c2))
	og := b.G.Clone()
	n := flattenConcats(og)
	if n != 1 {
		t.Fatalf("flattened = %d, want 1", n)
	}
	var outer *ir.Node
	for _, nd := range og.Nodes {
		if nd.Kind == ir.KindConcat && nd.Shape[0] == 12 {
			outer = nd
		}
	}
	if outer == nil || len(outer.Inputs) != 3 {
		t.Fatalf("outer concat not widened: %v", outer)
	}
	if err := og.Validate(); err != nil {
		t.Fatal(err)
	}
	mustMatch(t, b.G, og, randIn(3, 2, 4, 8, 8), 0, "flatten")
}

func TestTailFusion(t *testing.T) {
	// lconv→relu→add(x, …): no trailing fconv, so the main pattern cannot
	// fire — tail fusion must collapse the chain and halve the transient.
	b := ir.NewBuilder("tail", 1)
	in := b.Input(4, 8, 8)
	l := b.ConvNamed("l", in, 32, 1, 1, 1, 1, 0, 0, 1)
	r := b.ReLU(l)
	other := b.ConvNamed("o", in, 32, 3, 3, 1, 1, 1, 1, 1)
	a := b.Add(r, other)
	b.Output(a)
	og := b.G.Clone()
	st := FuseActivations(og, DefaultConfig())
	if st.TailFusedKernels != 1 {
		t.Fatalf("tail fused = %d, want 1 (stats %+v)", st.TailFusedKernels, st)
	}
	mustMatch(t, b.G, og, randIn(5, 2, 4, 8, 8), 1e-3, "tail-fusion")
	// Peak sits at the add here (three 32-channel tensors) either way, but
	// tail fusion must never increase it.
	pd := memplan.Simulate(b.G, 4, 0)
	po := memplan.Simulate(og, 4, 0)
	if po.PeakInternal > pd.PeakInternal {
		t.Fatalf("tail fusion increased peak: %d → %d", pd.PeakInternal, po.PeakInternal)
	}
}

func TestTailFusionWithPool(t *testing.T) {
	b := ir.NewBuilder("tailp", 1)
	in := b.Input(4, 16, 16)
	l := b.ConvNamed("l", in, 32, 1, 1, 1, 1, 0, 0, 1)
	r := b.ReLU(l)
	p := b.MaxPool(r, 2, 2)
	g2 := b.GlobalAvgPool(p) // consumer is not a 1×1 conv
	b.Output(g2)
	og := b.G.Clone()
	st := FuseActivations(og, DefaultConfig())
	if st.TailFusedKernels != 1 {
		t.Fatalf("tail fused = %d, want 1", st.TailFusedKernels)
	}
	mustMatch(t, b.G, og, randIn(7, 1, 4, 16, 16), 1e-3, "tail-fusion-pool")
	// Here the peak is the lconv-out/relu-in pair at full resolution; the
	// pooled tail kernel eliminates both, so the peak must strictly drop.
	pd := memplan.Simulate(b.G, 4, 0)
	po := memplan.Simulate(og, 4, 0)
	if po.PeakInternal >= pd.PeakInternal {
		t.Fatalf("pooled tail fusion did not reduce peak: %d → %d", pd.PeakInternal, po.PeakInternal)
	}
}

func TestMergedLConvWithSharedBranches(t *testing.T) {
	// DenseNet shape: branches feed both the concat under merge and another
	// consumer. The merge must fire and preserve semantics, with the old
	// chain kept for the other consumer.
	b := ir.NewBuilder("mshare", 3)
	in := b.Input(4, 8, 8)
	r1 := b.ConvNamed("red1", in, 3, 3, 3, 1, 1, 1, 1, 1)
	r2 := b.ConvNamed("red2", in, 5, 3, 3, 1, 1, 1, 1, 1)
	l1 := b.ConvNamed("l1", r1, 24, 1, 1, 1, 1, 0, 0, 1)
	l2 := b.ConvNamed("l2", r2, 40, 1, 1, 1, 1, 0, 0, 1)
	a1 := b.ReLU(l1)
	a2 := b.ReLU(l2)
	cc := b.Concat(a1, a2)
	f := b.ConvNamed("f", cc, 8, 1, 1, 1, 1, 0, 0, 1)
	side := b.GlobalAvgPool(a1) // a1 has a second consumer
	b.Output(f)
	b.Output(side)

	og := b.G.Clone()
	st := Transform(og, DefaultConfig())
	if st.MergedLConvs != 1 {
		t.Fatalf("merged lconvs = %d, want 1 (stats %+v)", st.MergedLConvs, st)
	}
	mustMatch(t, b.G, og, randIn(9, 2, 4, 8, 8), 1e-3, "merged-shared")
}

func TestSplitGateRejectsWideConvs(t *testing.T) {
	// A 1×1 conv whose output is half its input (DenseNet transition) must
	// not be split: the add-chain transients would exceed the concat.
	b := ir.NewBuilder("wide", 3)
	in := b.Input(8, 8, 8)
	x := b.ReLU(in)
	y := b.Sigmoid(in)
	cc := b.Concat(x, y)                              // 16ch
	f := b.ConvNamed("t", cc, 8, 1, 1, 1, 1, 0, 0, 1) // 16→8: "transition"
	b.Output(f)
	og := b.G.Clone()
	st := Transform(og, DefaultConfig())
	if st.ConcatSplits != 0 {
		t.Fatalf("split fired on a wide conv: %+v", st)
	}
}

func TestDenseChainEndToEnd(t *testing.T) {
	// A miniature dense block: running concats, per-layer decomposed-style
	// chains. The full pipeline must flatten, merge, fuse, and cut the peak.
	b := ir.NewBuilder("dense", 5)
	in := b.Input(8, 16, 16)
	stemR := b.ConvNamed("stemr", in, 2, 3, 3, 1, 1, 1, 1, 1)
	stem := b.ReLU(b.ConvNamed("steml", stemR, 16, 1, 1, 1, 1, 0, 0, 1))
	x := stem
	for i := 0; i < 3; i++ {
		f := b.ConvNamed("f", x, 2, 1, 1, 1, 1, 0, 0, 1) // fconv
		k := b.Conv(f, 2, 3, 1, 1)                       // core
		l := b.ConvNamed("l", k, 8, 1, 1, 1, 1, 0, 0, 1) // lconv
		y := b.ReLU(l)
		x = b.Concat(x, y)
	}
	out := b.ConvNamed("head", x, 4, 1, 1, 1, 1, 0, 0, 1)
	b.Output(out)

	dg := b.G
	og, st := Optimize(dg, DefaultConfig())
	if st.ConcatsFlattened == 0 {
		t.Fatalf("no concats flattened: %+v", st)
	}
	if st.MergedLConvs == 0 {
		t.Fatalf("no lconvs merged: %+v", st)
	}
	mustMatch(t, dg, og, randIn(11, 2, 8, 16, 16), 1e-2, "dense-chain")
	pd := memplan.Simulate(dg, 4, 0)
	po := memplan.Simulate(og, 4, 0)
	if po.PeakInternal >= pd.PeakInternal {
		t.Fatalf("dense pipeline did not reduce peak: %d → %d", pd.PeakInternal, po.PeakInternal)
	}
}

func TestSinkUpsamples(t *testing.T) {
	// upsample(relu(lconv(r))) must become relu(lconv(upsample(r))).
	b := ir.NewBuilder("sink", 1)
	in := b.Input(4, 8, 8)
	core := b.ConvNamed("core", in, 3, 3, 3, 1, 1, 1, 1, 1)
	l := b.ConvNamed("l", core, 32, 1, 1, 1, 1, 0, 0, 1)
	r := b.ReLU(l)
	u := b.Upsample(r, 2)
	f := b.ConvNamed("f", u, 4, 1, 1, 1, 1, 0, 0, 1) // fconv consumer
	b.Output(f)
	og := b.G.Clone()
	st := Transform(og, DefaultConfig())
	if st.UpsampleSinks != 1 {
		t.Fatalf("upsample sinks = %d, want 1 (stats %+v)", st.UpsampleSinks, st)
	}
	// The upsample must now consume the reduced (3-channel) tensor.
	for _, n := range og.Nodes {
		if n.Kind == ir.KindUpsample && n.Inputs[0].Shape[0] != 3 {
			t.Fatalf("upsample still consumes %d channels", n.Inputs[0].Shape[0])
		}
	}
	mustMatch(t, b.G, og, randIn(13, 2, 4, 8, 8), 1e-3, "sink-upsample")
	// Sinking is an enabler: the peak drops once fusion folds the now
	// adjacent lconv→act chain into a tail kernel.
	FuseActivations(og, DefaultConfig())
	mustMatch(t, b.G, og, randIn(14, 2, 4, 8, 8), 1e-3, "sink-upsample+fusion")
	pd := memplan.Simulate(b.G, 4, 0)
	po := memplan.Simulate(og, 4, 0)
	if po.PeakInternal >= pd.PeakInternal {
		t.Fatalf("sinking+fusion did not reduce peak: %d → %d", pd.PeakInternal, po.PeakInternal)
	}
}
