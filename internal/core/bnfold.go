package core

import (
	"fmt"

	"temco/internal/ir"
	"temco/internal/tensor"
)

// FoldBatchNorm folds inference batch normalization into the preceding
// convolution: conv(W,B) → bn(scale,shift) becomes conv(scale·W,
// scale·B+shift). This standard inference optimization leaves the graphs
// in conv→activation form, which is what both the decomposition rewrite
// and the fusion pattern matcher expect. Folding only applies when the
// convolution's sole consumer is the batchnorm; weights are copied, never
// mutated in place (they may be shared with other graph clones).
func FoldBatchNorm(g *ir.Graph) Stats {
	var st Stats
	uses := g.UseCounts()
	snapshot := append([]*ir.Node(nil), g.Nodes...)
	for _, bn := range snapshot {
		if bn.Kind != ir.KindBatchNorm {
			continue
		}
		c := bn.Inputs[0]
		if c.Kind != ir.KindConv2D || uses[c] != 1 {
			continue
		}
		a := c.Conv()
		g2 := a.Groups
		if g2 == 0 {
			g2 = 1
		}
		perOut := (a.InC / g2) * a.KH * a.KW
		w := tensor.New(c.W.Shape...)
		b := tensor.New(a.OutC)
		for o := 0; o < a.OutC; o++ {
			s := bn.W.Data[o]
			copy(w.Data[o*perOut:(o+1)*perOut], c.W.Data[o*perOut:(o+1)*perOut])
			for k := o * perOut; k < (o+1)*perOut; k++ {
				w.Data[k] *= s
			}
			if c.B != nil {
				b.Data[o] = s * c.B.Data[o]
			}
			b.Data[o] += bn.B.Data[o]
		}
		c.W, c.B = w, b
		g.ReplaceAllUses(bn, c)
		st.BatchNormsFolded++
		uses = g.UseCounts()
	}
	st.DeadNodesRemoved += g.DeadCodeElim()
	if err := g.Validate(); err != nil {
		panic(fmt.Sprintf("core: FoldBatchNorm produced invalid graph: %v", err))
	}
	return st
}
