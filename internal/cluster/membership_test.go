package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"temco/internal/guard"
)

// drainableStub is a fake temcod with the full drain surface: scriptable
// /readyz plus a /drainz hook that records hits and flips the health.
type drainableStub struct {
	srv *httptest.Server

	mu       sync.Mutex
	health   Health
	status   int
	drainsTo *Health // health after /drainz, nil = keep reporting ready

	drainz atomic.Int64
}

func newDrainableStub() *drainableStub {
	s := &drainableStub{health: Health{Ready: true, BreakerState: "closed"}, status: http.StatusOK}
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		h, st := s.health, s.status
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(st)
		json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/drainz", func(w http.ResponseWriter, r *http.Request) {
		s.drainz.Add(1)
		s.mu.Lock()
		if s.drainsTo != nil {
			s.health, s.status = *s.drainsTo, http.StatusServiceUnavailable
		}
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"draining":true}`)
	})
	s.srv = httptest.NewServer(mux)
	return s
}

func (s *drainableStub) set(h Health, status int) {
	s.mu.Lock()
	s.health, s.status = h, status
	s.mu.Unlock()
}

func TestAddJoinsOnProbationAndPromotes(t *testing.T) {
	seed := newDrainableStub()
	joiner := newDrainableStub()
	defer seed.srv.Close()
	defer joiner.srv.Close()

	clk := &fakeClock{t: time.Unix(1000, 0)}
	tab, err := NewTable([]string{seed.srv.URL}, Config{ProbeInterval: 100 * time.Millisecond, ProbationProbes: 2})
	if err != nil {
		t.Fatal(err)
	}
	tab.now = clk.now
	tab.ProbeOnce()
	if st := tab.Replicas()[0].State(); st != StateHealthy {
		t.Fatalf("seed: want healthy, got %v", st)
	}

	// Add: the replica appears in StateJoining and is invisible to pick.
	r, err := tab.Add(joiner.srv.URL + "/") // trailing slash must normalize away
	if err != nil {
		t.Fatal(err)
	}
	if r.URL() != joiner.srv.URL {
		t.Fatalf("Add normalization: %q", r.URL())
	}
	if st := r.State(); st != StateJoining {
		t.Fatalf("added replica: want joining, got %v", st)
	}
	if _, err := tab.Add(joiner.srv.URL); err == nil {
		t.Fatal("duplicate Add must fail")
	}
	if ms := tab.Membership(); ms.Replicas != 2 || ms.Joining != 1 || ms.Adds != 1 {
		t.Fatalf("membership after Add: %+v", ms)
	}
	for _, key := range []string{"", "a", "b", "c", "d", "e"} {
		if got := tab.pick(key, nil); got == r {
			t.Fatal("joining replica must not take traffic")
		}
	}

	// Probation: one successful probe is not enough.
	tab.ProbeOnce() // nextProbe was zero, so the joiner is due immediately
	if st := r.State(); st != StateJoining {
		t.Fatalf("after 1/2 probation probes: want joining, got %v", st)
	}
	if got := tab.pick("k", nil); got == r {
		t.Fatal("mid-probation replica must not take traffic")
	}
	clk.advance(100 * time.Millisecond)
	tab.ProbeOnce()
	if st := r.State(); st != StateHealthy {
		t.Fatalf("after 2/2 probation probes: want healthy, got %v", st)
	}
	if r.snapshot().Probation {
		t.Fatal("promotion must clear the probation flag")
	}

	// Remove: immediate, and idempotent only in the error.
	if err := tab.Remove(joiner.srv.URL); err != nil {
		t.Fatal(err)
	}
	if len(tab.Replicas()) != 1 {
		t.Fatalf("replicas after Remove: %d", len(tab.Replicas()))
	}
	if err := tab.Remove(joiner.srv.URL); err == nil {
		t.Fatal("removing an absent replica must fail")
	}
	if ms := tab.Membership(); ms.Removes != 1 {
		t.Fatalf("membership after Remove: %+v", ms)
	}
}

func TestProbationFailureResetsStreak(t *testing.T) {
	seed := newDrainableStub()
	joiner := newDrainableStub()
	defer seed.srv.Close()
	defer joiner.srv.Close()

	clk := &fakeClock{t: time.Unix(1000, 0)}
	tab, err := NewTable([]string{seed.srv.URL}, Config{ProbeInterval: 100 * time.Millisecond, ProbationProbes: 2, FailThreshold: 5})
	if err != nil {
		t.Fatal(err)
	}
	tab.now = clk.now
	r, err := tab.Add(joiner.srv.URL)
	if err != nil {
		t.Fatal(err)
	}

	tab.ProbeOnce() // streak 1/2
	// A failure mid-probation: the replica stays joining (never
	// degraded-suspect, which could take traffic) and the streak resets.
	joiner.set(Health{}, http.StatusTeapot)
	clk.advance(100 * time.Millisecond)
	tab.ProbeOnce()
	if st := r.State(); st != StateJoining {
		t.Fatalf("failed probation probe: want joining, got %v", st)
	}
	joiner.set(Health{Ready: true, BreakerState: "closed"}, http.StatusOK)
	clk.advance(100 * time.Millisecond)
	tab.ProbeOnce() // streak 1/2 again — the earlier success no longer counts
	if st := r.State(); st != StateJoining {
		t.Fatalf("probation streak must reset on failure: got %v", st)
	}
	clk.advance(100 * time.Millisecond)
	tab.ProbeOnce()
	if st := r.State(); st != StateHealthy {
		t.Fatalf("want healthy after two consecutive successes, got %v", st)
	}
}

func TestDrainProtocol(t *testing.T) {
	stub := newDrainableStub()
	other := newDrainableStub()
	defer stub.srv.Close()
	defer other.srv.Close()

	tab, err := NewTable([]string{stub.srv.URL, other.srv.URL}, Config{ProbeInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	tab.ProbeOnce()
	r := tab.lookup(stub.srv.URL)
	if r == nil || r.State() != StateHealthy {
		t.Fatalf("precondition: %v", r)
	}

	// One router-observed request is still on the replica: Drain must wait.
	r.inFlight.Add(1)
	done := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go func() { done <- tab.Drain(ctx, stub.srv.URL) }()

	// The mark is immediate: placements stop before the wait completes.
	deadline := time.Now().Add(2 * time.Second)
	for r.State() != StateDraining {
		if time.Now().After(deadline) {
			t.Fatal("drain mark never applied")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		if got := tab.pick("k", nil); got == r {
			t.Fatal("draining replica took a placement")
		}
	}
	// Sticky: a clean ready=true probe must not resurrect it.
	tab.probe(r)
	if st := r.State(); st != StateDraining {
		t.Fatalf("probe resurrected a draining replica: %v", st)
	}
	// The replica itself was told to shed.
	for stub.drainz.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("/drainz never hit")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-done:
		t.Fatalf("Drain returned with in-flight work: %v", err)
	default:
	}

	// Last request completes: Drain finishes and removes the replica.
	r.inFlight.Add(-1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if tab.lookup(stub.srv.URL) != nil {
		t.Fatal("drained replica still in the table")
	}
	if ms := tab.Membership(); ms.Drains != 1 || ms.Removes != 1 {
		t.Fatalf("membership after Drain: %+v", ms)
	}
}

func TestDrainTimeoutLeavesReplicaDraining(t *testing.T) {
	stub := newDrainableStub()
	defer stub.srv.Close()
	tab, err := NewTable([]string{stub.srv.URL}, Config{ProbeInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	tab.ProbeOnce()
	r := tab.lookup(stub.srv.URL)
	r.inFlight.Add(1) // never drains

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err = tab.Drain(ctx, stub.srv.URL)
	if err == nil || !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("want guard.ErrCanceled, got %v", err)
	}
	// The replica stays in the table, still draining and still sticky, so
	// the operator can retry or force-remove.
	if tab.lookup(stub.srv.URL) == nil {
		t.Fatal("timed-out drain must not remove the replica")
	}
	snap := r.snapshot()
	if snap.State != "draining" || !snap.DrainRequested {
		t.Fatalf("after timeout: %+v", snap)
	}
	// Retrying after the work completes succeeds.
	r.inFlight.Add(-1)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	if err := tab.Drain(ctx2, stub.srv.URL); err != nil {
		t.Fatal(err)
	}
	if tab.lookup(stub.srv.URL) != nil {
		t.Fatal("retried drain must remove the replica")
	}
}

func TestDrainUnknownReplica(t *testing.T) {
	tab, err := NewTable([]string{"http://127.0.0.1:1"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Drain(context.Background(), "http://127.0.0.1:2"); err == nil {
		t.Fatal("draining an unknown replica must fail")
	}
}

// TestMembershipChurnRace drives Add/Remove/Drain concurrently against
// pick, ProbeOnce, the prober loop, and the metrics closures — the -race
// regression for the live table. Includes remove-while-probing and
// add-then-immediate-drain interleavings.
func TestMembershipChurnRace(t *testing.T) {
	seedA := newDrainableStub()
	seedB := newDrainableStub()
	defer seedA.srv.Close()
	defer seedB.srv.Close()

	tab, err := NewTable([]string{seedA.srv.URL, seedB.srv.URL}, Config{
		ProbeInterval:   2 * time.Millisecond,
		ProbeTimeout:    100 * time.Millisecond,
		ProbationProbes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tab.Start()
	defer tab.Close()

	churn := newDrainableStub()
	defer churn.srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Router-side traffic: pick + in-flight bumps.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if r := tab.pick(fmt.Sprintf("key-%d", i), nil); r != nil {
					r.inFlight.Add(1)
					r.placements.Add(1)
					r.inFlight.Add(-1)
				}
			}
		}(i)
	}
	// Stats/metrics scrapes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tab.Status()
			tab.Routable()
			tab.Membership()
		}
	}()
	// Membership churn: add-then-immediate-drain on a live URL.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := tab.Add(churn.srv.URL); err == nil {
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				_ = tab.Drain(ctx, churn.srv.URL)
				cancel()
				_ = tab.Remove(churn.srv.URL) // in case the drain timed out
			}
		}
	}()
	// Remove-while-probing on an unreachable URL (probes fail fast).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := tab.Add("http://127.0.0.1:1"); err == nil {
				go tab.ProbeOnce()
				_ = tab.Remove("http://127.0.0.1:1")
			}
		}
	}()
	// Extra probe rounds racing the prober loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tab.ProbeOnce()
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The seeds must have survived the churn untouched.
	if tab.lookup(seedA.srv.URL) == nil || tab.lookup(seedB.srv.URL) == nil {
		t.Fatal("seed replicas lost during churn")
	}
}
