package cluster

import (
	"temco/internal/obs"
)

// metrics is the cluster tier's instrument set on its own obs.Registry:
// per-replica families are labeled vec samples over the live table, so the
// /metrics and /statsz views read the same state. temcor serves this
// registry next to obs.Default().
type metrics struct {
	reg *obs.Registry

	probes, probeFailures *obs.Counter
	ejections, revivals   *obs.Counter

	// Membership counters: live Add/Remove/Drain operations on the table.
	adds, removes, drains *obs.Counter

	// Router counters, registered here so the whole tier scrapes as one.
	placements, retries     *obs.Counter
	hedges, hedgeWins       *obs.Counter
	noReplica, partialAbort *obs.Counter
	proxyLatency            *obs.Histogram
}

func newMetrics(t *Table) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{reg: reg}
	m.probes = reg.Counter("temco_cluster_probes_total",
		"Health probes issued across all replicas.")
	m.probeFailures = reg.Counter("temco_cluster_probe_failures_total",
		"Health probes that failed (connection error, timeout, bad body).")
	m.ejections = reg.Counter("temco_cluster_ejections_total",
		"Replicas ejected to the dead state after consecutive probe failures.")
	m.revivals = reg.Counter("temco_cluster_revivals_total",
		"Dead replicas revived by a successful re-probe.")
	m.adds = reg.Counter("temco_cluster_adds_total",
		"Replicas added to the live table (they join on probation).")
	m.removes = reg.Counter("temco_cluster_removes_total",
		"Replicas removed from the live table (including drain completions).")
	m.drains = reg.Counter("temco_cluster_drains_total",
		"Graceful drains requested on the live table.")
	m.placements = reg.Counter("temco_cluster_placements_total",
		"Proxied attempts placed on a replica (including retries and hedges).")
	m.retries = reg.Counter("temco_cluster_retries_total",
		"Attempts retried on another replica after a connection error or a complete 429/503.")
	m.hedges = reg.Counter("temco_cluster_hedges_total",
		"Hedged attempts fired after the latency-percentile delay.")
	m.hedgeWins = reg.Counter("temco_cluster_hedge_wins_total",
		"Requests won by the hedged attempt rather than the primary.")
	m.noReplica = reg.Counter("temco_cluster_no_replica_total",
		"Requests failed because no routable replica remained.")
	m.partialAbort = reg.Counter("temco_cluster_partial_aborts_total",
		"Requests aborted without retry because a replica died mid-response.")
	m.proxyLatency = reg.Histogram("temco_cluster_proxy_seconds",
		"End-to-end proxied request latency, including retries and hedges.", nil)

	reg.GaugeFunc("temco_cluster_replicas",
		"Replicas currently in the table (all states).",
		func() float64 { return float64(len(t.snapshot())) })
	reg.GaugeFunc("temco_cluster_routable_replicas",
		"Replicas currently able to take traffic (healthy or degraded).",
		func() float64 { return float64(t.Routable()) })
	reg.GaugeFunc("temco_cluster_joining_replicas",
		"Replicas in the joining state, waiting out probation probes.",
		func() float64 { return float64(t.Membership().Joining) })
	reg.GaugeFunc("temco_cluster_draining_replicas",
		"Replicas in the draining state (graceful decommission in progress).",
		func() float64 { return float64(t.Membership().Draining) })
	reg.GaugeVecFunc("temco_cluster_replica_state",
		"Per-replica health state: 0 healthy, 1 degraded, 2 draining, 3 dead, 4 joining.",
		func() []obs.LabeledValue {
			reps := t.snapshot()
			out := make([]obs.LabeledValue, len(reps))
			for i, r := range reps {
				out[i] = obs.LabeledValue{
					Labels: [][2]string{{"replica", r.url}},
					Value:  float64(r.State()),
				}
			}
			return out
		})
	reg.GaugeVecFunc("temco_cluster_replica_queue_depth",
		"Per-replica admission queue depth from the last successful probe.",
		func() []obs.LabeledValue {
			reps := t.snapshot()
			out := make([]obs.LabeledValue, len(reps))
			for i, r := range reps {
				r.mu.Lock()
				depth := r.health.QueueDepth
				r.mu.Unlock()
				out[i] = obs.LabeledValue{
					Labels: [][2]string{{"replica", r.url}},
					Value:  float64(depth),
				}
			}
			return out
		})
	reg.GaugeVecFunc("temco_cluster_replica_batch_pending",
		"Per-replica requests waiting in the batch-accumulation window, from the last successful probe.",
		func() []obs.LabeledValue {
			reps := t.snapshot()
			out := make([]obs.LabeledValue, len(reps))
			for i, r := range reps {
				r.mu.Lock()
				pending := r.health.BatchPending
				r.mu.Unlock()
				out[i] = obs.LabeledValue{
					Labels: [][2]string{{"replica", r.url}},
					Value:  float64(pending),
				}
			}
			return out
		})
	reg.GaugeVecFunc("temco_cluster_replica_in_flight",
		"Per-replica requests currently proxied by this router.",
		func() []obs.LabeledValue {
			reps := t.snapshot()
			out := make([]obs.LabeledValue, len(reps))
			for i, r := range reps {
				out[i] = obs.LabeledValue{
					Labels: [][2]string{{"replica", r.url}},
					Value:  float64(r.inFlight.Load()),
				}
			}
			return out
		})
	reg.CounterVecFunc("temco_cluster_replica_placements_total",
		"Per-replica proxied attempt placements.",
		func() []obs.LabeledValue {
			reps := t.snapshot()
			out := make([]obs.LabeledValue, len(reps))
			for i, r := range reps {
				out[i] = obs.LabeledValue{
					Labels: [][2]string{{"replica", r.url}},
					Value:  float64(r.placements.Load()),
				}
			}
			return out
		})
	return m
}
