package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// waitInFlightZero polls until every replica's router-observed in-flight
// count returns to zero — the invariant the drain-until-idle wait and
// least-loaded placement both depend on.
func waitInFlightZero(t *testing.T, tab *Table) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		total := int64(0)
		for _, r := range tab.Replicas() {
			total += r.inFlight.Load()
		}
		if total == 0 {
			return
		}
		if time.Now().After(deadline) {
			for _, r := range tab.Replicas() {
				t.Logf("%s: in-flight %d", r.URL(), r.inFlight.Load())
			}
			t.Fatal("router in-flight counters never returned to zero")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRouterInFlightHedgedLosers: every hedged round leaves both the
// winner's and the loser's in-flight counter at zero once the canceled
// loser unwinds. A decrement leak here would permanently skew placement
// and wedge Table.Drain's wait.
func TestRouterInFlightHedgedLosers(t *testing.T) {
	slow := newInferStub(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(300 * time.Millisecond):
		case <-r.Context().Done():
			return
		}
		fmt.Fprint(w, `{"argmax":[1]}`)
	})
	fast := newInferStub(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"argmax":[2]}`)
	})
	defer slow.srv.Close()
	defer fast.srv.Close()

	rt, front, tab := routerUnderTest(t,
		RouterConfig{Hedge: true, MinHedgeDelay: time.Millisecond, MaxRetries: 0},
		[]int{0, 5}, slow, fast) // primary = slow (lower depth), hedge = fast
	for i := 0; i < digestWarmup; i++ {
		rt.lat.observe(time.Millisecond)
	}

	for i := 0; i < 10; i++ {
		resp := postJSON(t, front.URL, `{"batch":1}`, nil)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status %d", i, resp.StatusCode)
		}
	}
	if tab.met.hedges.Value() == 0 {
		t.Fatal("precondition: no hedges fired")
	}
	waitInFlightZero(t, tab)
}

// TestRouterInFlightClientCancel: a client that disconnects mid-attempt
// must not strand the in-flight count.
func TestRouterInFlightClientCancel(t *testing.T) {
	stall := newInferStub(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(2 * time.Second):
		case <-r.Context().Done():
			return
		}
		fmt.Fprint(w, `{"argmax":[1]}`)
	})
	defer stall.srv.Close()
	_, front, tab := routerUnderTest(t, RouterConfig{MaxRetries: 0}, nil, stall)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, front.URL, nil)
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	waitInFlightZero(t, tab)
}

// TestRouterInFlightMixedChurn interleaves hedged wins, client cancels,
// connection errors, and shed responses, then asserts the counters land on
// zero — the composite regression for least-loaded placement drift.
func TestRouterInFlightMixedChurn(t *testing.T) {
	shed := newInferStub(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		writeRouterError(w, http.StatusTooManyRequests, "shed", true)
	})
	jittery := newInferStub(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(5 * time.Millisecond):
		case <-r.Context().Done():
			return
		}
		fmt.Fprint(w, `{"argmax":[3]}`)
	})
	defer shed.srv.Close()
	defer jittery.srv.Close()

	rt, front, tab := routerUnderTest(t,
		RouterConfig{Hedge: true, MinHedgeDelay: time.Millisecond, MaxRetries: 2},
		nil, shed, jittery)
	for i := 0; i < digestWarmup; i++ {
		rt.lat.observe(time.Millisecond)
	}

	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(3+i%7)*time.Millisecond)
			defer cancel()
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost, front.URL, nil)
			if resp, err := http.DefaultClient.Do(req); err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	waitInFlightZero(t, tab)
}
