package cluster

import (
	"math"
	"sync"
	"time"
)

// AutoscaleConfig tunes the desired-replicas signal. Zero values take the
// documented defaults.
type AutoscaleConfig struct {
	// TargetUtilization is the worker-busy fraction the fleet should run
	// at; desired capacity is sized so busy+queued work fits under it.
	// Default 0.7.
	TargetUtilization float64
	// Min and Max clamp the published signal. Defaults 1 and 16.
	Min, Max int
	// UpStreak is how many consecutive evaluations must propose a higher
	// count before the signal scales up (then it jumps straight to the
	// proposal — overload is answered fast). Default 2.
	UpStreak int
	// DownStreak is how many consecutive evaluations must propose a lower
	// count before the signal steps DOWN BY ONE (scale-down is
	// deliberately slow and stepped). Default 5.
	DownStreak int
	// QueueWaitTarget is the per-replica p95 queue wait above which the
	// fleet counts as overloaded regardless of utilization. Default 100ms.
	QueueWaitTarget time.Duration
	// Interval is the evaluation period of the Start loop. Default 1s.
	Interval time.Duration
}

func (c *AutoscaleConfig) applyDefaults() {
	if c.TargetUtilization <= 0 || c.TargetUtilization > 1 {
		c.TargetUtilization = 0.7
	}
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max < c.Min {
		c.Max = c.Min
		if c.Max < 16 {
			c.Max = 16
		}
	}
	if c.UpStreak <= 0 {
		c.UpStreak = 2
	}
	if c.DownStreak <= 0 {
		c.DownStreak = 5
	}
	if c.QueueWaitTarget <= 0 {
		c.QueueWaitTarget = 100 * time.Millisecond
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
}

// AutoscaleStats is the /statsz view of the signal.
type AutoscaleStats struct {
	// DesiredReplicas is the published, hysteresis-smoothed signal.
	DesiredReplicas int `json:"desired_replicas"`
	// LastRaw is the unsmoothed proposal from the latest evaluation.
	LastRaw int `json:"last_raw"`
	// BusyWorkers estimates fleet-wide busy workers from run-seconds
	// deltas at the latest evaluation.
	BusyWorkers float64 `json:"busy_workers"`
	// QueuedRequests is queue depth + batch-pending summed over routable
	// replicas at the latest evaluation.
	QueuedRequests int `json:"queued_requests"`
	// MaxQueueWaitP95MS is the worst per-replica estimated p95 queue wait.
	MaxQueueWaitP95MS float64 `json:"max_queue_wait_p95_ms"`
	// Evals counts evaluations; ScaleUps/ScaleDowns count published moves.
	Evals      uint64 `json:"evals_total"`
	ScaleUps   uint64 `json:"scale_ups_total"`
	ScaleDowns uint64 `json:"scale_downs_total"`
}

// autosample is the per-replica cumulative state differenced between
// evaluations.
type autosample struct {
	runSeconds  float64
	transitions uint64
}

// Autoscaler derives a desired-replicas signal from the health the prober
// already collects: run-seconds utilization, queue depth + BatchPending,
// p95 queue wait, and breaker transitions. The signal is advisory — temcor
// publishes it on /statsz and /metrics for an external operator or
// controller; nothing in-process acts on it. Hysteresis (UpStreak /
// DownStreak) keeps it from flapping at steady load.
type Autoscaler struct {
	t   *Table
	cfg AutoscaleConfig

	mu      sync.Mutex
	prev    map[string]autosample
	prevAt  time.Time
	desired int
	upRun   int
	downRun int
	stats   AutoscaleStats

	startOnce sync.Once
	closeOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewAutoscaler builds the signal over a table and registers its gauges on
// the table's metrics registry. The initial desired count is the current
// table size clamped to [Min, Max].
func NewAutoscaler(t *Table, cfg AutoscaleConfig) *Autoscaler {
	cfg.applyDefaults()
	a := &Autoscaler{
		t:    t,
		cfg:  cfg,
		prev: map[string]autosample{},
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	a.desired = a.clamp(len(t.snapshot()))
	a.stats.DesiredReplicas = a.desired
	a.stats.LastRaw = a.desired
	reg := t.Metrics()
	reg.GaugeFunc("temco_cluster_desired_replicas",
		"Autoscale signal: replicas the fleet should have (hysteresis-smoothed, advisory).",
		func() float64 { return float64(a.Desired()) })
	reg.CounterFunc("temco_cluster_autoscale_evals_total",
		"Autoscale signal evaluations.",
		func() float64 { return float64(a.Stats().Evals) })
	return a
}

func (a *Autoscaler) clamp(n int) int {
	if n < a.cfg.Min {
		return a.cfg.Min
	}
	if n > a.cfg.Max {
		return a.cfg.Max
	}
	return n
}

// Desired returns the published signal.
func (a *Autoscaler) Desired() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.desired
}

// Stats returns the /statsz view.
func (a *Autoscaler) Stats() AutoscaleStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Evaluate runs one evaluation at the given instant and returns the
// published desired count. The Start loop calls this on its ticker; tests
// call it directly with scripted clocks and health.
//
// The raw proposal sizes capacity so current work fits under
// TargetUtilization: busy workers (run-seconds delta per elapsed second)
// plus queued requests (queue depth + batch pending, each wanting a worker
// slot), divided by target × average-workers-per-replica. Two overload
// overrides lift the proposal to at least current+1: any routable
// replica's breaker transitioned since the last evaluation, or the worst
// p95 queue wait exceeds QueueWaitTarget. Hysteresis then publishes: up
// only after UpStreak consecutive higher proposals (jumping to the
// proposal), down one step after DownStreak consecutive lower ones.
func (a *Autoscaler) Evaluate(now time.Time) int {
	a.mu.Lock()
	defer a.mu.Unlock()

	elapsed := now.Sub(a.prevAt).Seconds()
	first := a.prevAt.IsZero()

	var (
		busy         float64
		queued       int
		totalWorkers int
		routable     int
		maxP95MS     float64
		flap         bool
	)
	next := map[string]autosample{}
	for _, r := range a.t.snapshot() {
		r.mu.Lock()
		st, h := r.state, r.health
		r.mu.Unlock()
		if st != StateHealthy && st != StateDegraded {
			continue
		}
		routable++
		w := h.Workers
		if w <= 0 {
			w = 1
		}
		totalWorkers += w
		queued += h.QueueDepth + int(h.BatchPending)
		if h.QueueWaitP95MS > maxP95MS {
			maxP95MS = h.QueueWaitP95MS
		}
		next[r.url] = autosample{runSeconds: h.RunSecondsTotal, transitions: h.BreakerTransitions}
		if p, ok := a.prev[r.url]; ok && elapsed > 0 {
			d := (h.RunSecondsTotal - p.runSeconds) / elapsed
			if d < 0 {
				d = 0
			}
			if d > float64(w) {
				d = float64(w)
			}
			busy += d
			if h.BreakerTransitions > p.transitions {
				flap = true
			}
		}
	}
	a.prev = next
	a.prevAt = now

	if first || routable == 0 {
		// No baseline to difference against (or nothing routable to
		// measure): hold the signal.
		return a.desired
	}

	perReplica := float64(totalWorkers) / float64(routable)
	need := busy + float64(queued)
	raw := int(math.Ceil(need / (a.cfg.TargetUtilization * perReplica)))
	if flap || maxP95MS > float64(a.cfg.QueueWaitTarget)/float64(time.Millisecond) {
		if raw <= routable {
			raw = routable + 1
		}
	}
	raw = a.clamp(raw)

	a.stats.Evals++
	a.stats.LastRaw = raw
	a.stats.BusyWorkers = busy
	a.stats.QueuedRequests = queued
	a.stats.MaxQueueWaitP95MS = maxP95MS

	switch {
	case raw > a.desired:
		a.upRun++
		a.downRun = 0
		if a.upRun >= a.cfg.UpStreak {
			a.desired = raw
			a.upRun = 0
			a.stats.ScaleUps++
		}
	case raw < a.desired:
		a.downRun++
		a.upRun = 0
		if a.downRun >= a.cfg.DownStreak {
			a.desired--
			a.downRun = 0
			a.stats.ScaleDowns++
		}
	default:
		a.upRun, a.downRun = 0, 0
	}
	a.stats.DesiredReplicas = a.desired
	return a.desired
}

// Start launches the evaluation loop at cfg.Interval. Idempotent.
func (a *Autoscaler) Start() {
	a.startOnce.Do(func() {
		go func() {
			defer close(a.done)
			tick := time.NewTicker(a.cfg.Interval)
			defer tick.Stop()
			for {
				select {
				case <-a.stop:
					return
				case <-tick.C:
					a.Evaluate(time.Now())
				}
			}
		}()
	})
}

// Close stops the evaluation loop and waits for it to exit. Idempotent;
// safe to call even when Start never ran.
func (a *Autoscaler) Close() {
	a.closeOnce.Do(func() { close(a.stop) })
	a.startOnce.Do(func() { close(a.done) })
	<-a.done
}
