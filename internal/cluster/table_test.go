package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeClock is an adjustable clock for deterministic prober tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// replicaStub is a scriptable fake temcod replica.
type replicaStub struct {
	srv *httptest.Server

	mu     sync.Mutex
	health Health
	status int
	down   bool // reject with a hijacked close, simulating a dead process
}

func newReplicaStub() *replicaStub {
	s := &replicaStub{health: Health{Ready: true, BreakerState: "closed"}, status: http.StatusOK}
	s.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		h, st, down := s.health, s.status, s.down
		s.mu.Unlock()
		if down {
			hj, _ := w.(http.Hijacker)
			conn, _, err := hj.Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(st)
		json.NewEncoder(w).Encode(h)
	}))
	return s
}

func (s *replicaStub) set(h Health, status int) {
	s.mu.Lock()
	s.health, s.status, s.down = h, status, false
	s.mu.Unlock()
}

func (s *replicaStub) kill() {
	s.mu.Lock()
	s.down = true
	s.mu.Unlock()
}

func TestNewTableValidation(t *testing.T) {
	for _, bad := range [][]string{
		nil,
		{""},
		{"127.0.0.1:8080"}, // missing scheme
		{"http://a", "http://a"},
	} {
		if _, err := NewTable(bad, Config{}); err == nil {
			t.Errorf("NewTable(%v) must fail", bad)
		}
	}
	tab, err := NewTable([]string{"http://a:1/", " http://b:2 "}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Replicas()[0].URL() != "http://a:1" || tab.Replicas()[1].URL() != "http://b:2" {
		t.Fatalf("URL normalization: %v, %v", tab.Replicas()[0].URL(), tab.Replicas()[1].URL())
	}
}

func TestProbeClassification(t *testing.T) {
	stub := newReplicaStub()
	defer stub.srv.Close()
	tab, err := NewTable([]string{stub.srv.URL}, Config{ProbeInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	r := tab.Replicas()[0]

	// Healthy replica.
	tab.ProbeOnce()
	if st := r.State(); st != StateHealthy {
		t.Fatalf("ready replica: want healthy, got %v", st)
	}
	if h := r.snapshot().Health; !h.Ready || h.BreakerState != "closed" {
		t.Fatalf("health snapshot: %+v", h)
	}

	// Tripped breaker reports degraded: the fleet must route around it.
	stub.set(Health{Ready: true, Degraded: true, BreakerState: "open", QueueDepth: 3}, http.StatusOK)
	time.Sleep(15 * time.Millisecond) // let nextProbe arrive
	tab.ProbeOnce()
	if st := r.State(); st != StateDegraded {
		t.Fatalf("breaker-open replica: want degraded, got %v", st)
	}
	if d := r.snapshot().Health.QueueDepth; d != 3 {
		t.Fatalf("queue depth not captured: %d", d)
	}

	// Draining: alive, but takes no traffic and is not a probe failure.
	stub.set(Health{Ready: false, Reason: "draining"}, http.StatusServiceUnavailable)
	time.Sleep(15 * time.Millisecond)
	tab.ProbeOnce()
	if st := r.State(); st != StateDraining {
		t.Fatalf("draining replica: want draining, got %v", st)
	}
	if r.snapshot().ConsecutiveFailures != 0 {
		t.Fatal("draining must not count as a probe failure")
	}
}

func TestProbeEjectionBackoffAndRevival(t *testing.T) {
	stub := newReplicaStub()
	defer stub.srv.Close()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	cfg := Config{ProbeInterval: 100 * time.Millisecond, FailThreshold: 3, MaxProbeBackoff: 800 * time.Millisecond}
	tab, err := NewTable([]string{stub.srv.URL}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab.now = clk.now
	r := tab.Replicas()[0]

	tab.ProbeOnce()
	if st := r.State(); st != StateHealthy {
		t.Fatalf("want healthy, got %v", st)
	}

	// Kill the process: below the threshold the replica is suspect
	// (degraded), at the threshold it is ejected dead.
	stub.kill()
	for i := 1; i < cfg.FailThreshold; i++ {
		clk.advance(cfg.ProbeInterval)
		tab.ProbeOnce()
		if st := r.State(); st != StateDegraded {
			t.Fatalf("fail %d/%d: want degraded-suspect, got %v", i, cfg.FailThreshold, st)
		}
	}
	clk.advance(cfg.ProbeInterval)
	tab.ProbeOnce()
	if st := r.State(); st != StateDead {
		t.Fatalf("want dead at threshold, got %v", st)
	}
	if tab.met.ejections.Value() != 1 {
		t.Fatalf("ejections: %d", tab.met.ejections.Value())
	}

	// Exponential re-probe: each further failure doubles the wait, capped.
	wantGaps := []time.Duration{
		100 * time.Millisecond, // shift 0 right at ejection
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		800 * time.Millisecond, // capped
	}
	for i, want := range wantGaps {
		r.mu.Lock()
		gap := r.nextProbe.Sub(clk.now())
		r.mu.Unlock()
		if gap != want {
			t.Fatalf("backoff step %d: want %v, got %v", i, want, gap)
		}
		clk.advance(gap)
		tab.ProbeOnce()
	}

	// A probe before nextProbe must be skipped entirely.
	probes := tab.met.probes.Value()
	tab.ProbeOnce()
	if tab.met.probes.Value() != probes {
		t.Fatal("backed-off replica must not be probed early")
	}

	// Revival: the process comes back, one successful probe restores it.
	stub.set(Health{Ready: true, BreakerState: "closed"}, http.StatusOK)
	clk.advance(cfg.MaxProbeBackoff)
	tab.ProbeOnce()
	if st := r.State(); st != StateHealthy {
		t.Fatalf("revived replica: want healthy, got %v", st)
	}
	if tab.met.revivals.Value() != 1 {
		t.Fatalf("revivals: %d", tab.met.revivals.Value())
	}
	if r.snapshot().ConsecutiveFailures != 0 {
		t.Fatal("revival must reset the failure streak")
	}
}

// setReplica forces a replica into a state with fresh health, bypassing
// the prober — placement tests script the table directly.
func setReplica(tab *Table, r *Replica, st State, h Health) {
	r.mu.Lock()
	r.state = st
	r.health = h
	r.lastOK = tab.now()
	r.mu.Unlock()
}

func TestPickPlacement(t *testing.T) {
	tab, err := NewTable([]string{"http://r1:1", "http://r2:1", "http://r3:1"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r1, r2, r3 := tab.Replicas()[0], tab.Replicas()[1], tab.Replicas()[2]

	// Least queue depth wins among healthy replicas.
	setReplica(tab, r1, StateHealthy, Health{Ready: true, QueueDepth: 5})
	setReplica(tab, r2, StateHealthy, Health{Ready: true, QueueDepth: 1})
	setReplica(tab, r3, StateDegraded, Health{Ready: true, Degraded: true})
	if got := tab.pick("", nil); got != r2 {
		t.Fatalf("least-depth: want r2, got %v", got.URL())
	}

	// Router-side in-flight sharpens the signal between probes.
	r2.inFlight.Add(10)
	if got := tab.pick("", nil); got != r1 {
		t.Fatalf("in-flight-adjusted: want r1, got %v", got.URL())
	}
	r2.inFlight.Add(-10)

	// Healthy replicas are preferred over degraded ones even at higher
	// depth; degraded serves only when nothing healthy remains.
	setReplica(tab, r3, StateDegraded, Health{Ready: true, QueueDepth: 0})
	if got := tab.pick("", nil); got == r3 {
		t.Fatal("degraded replica must not serve while healthy ones exist")
	}
	setReplica(tab, r1, StateDead, Health{})
	setReplica(tab, r2, StateDraining, Health{})
	if got := tab.pick("", nil); got != r3 {
		t.Fatalf("degraded fallback: want r3, got %v", got)
	}

	// Dead and draining never serve; full exclusion returns nil.
	if got := tab.pick("", map[string]bool{r3.url: true}); got != nil {
		t.Fatalf("want nil with everything excluded/dead, got %v", got.URL())
	}

	// Ties rendezvous on the key: stable per key, spread across keys.
	setReplica(tab, r1, StateHealthy, Health{Ready: true, QueueDepth: 2})
	setReplica(tab, r2, StateHealthy, Health{Ready: true, QueueDepth: 2})
	setReplica(tab, r3, StateHealthy, Health{Ready: true, QueueDepth: 2})
	first := tab.pick("model-a", nil)
	for i := 0; i < 10; i++ {
		if got := tab.pick("model-a", nil); got != first {
			t.Fatal("rendezvous must be stable for one key")
		}
	}
	spread := map[*Replica]bool{}
	for _, k := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		spread[tab.pick(k, nil)] = true
	}
	if len(spread) < 2 {
		t.Fatal("rendezvous must spread distinct keys across replicas")
	}

	// Stale health reports: depth numbers are noise, placement falls back
	// to pure rendezvous (still stable).
	for _, r := range tab.Replicas() {
		r.mu.Lock()
		r.lastOK = tab.now().Add(-time.Hour)
		r.health.QueueDepth = 0
		r.mu.Unlock()
	}
	stale := tab.pick("model-a", nil)
	for i := 0; i < 5; i++ {
		if got := tab.pick("model-a", nil); got != stale {
			t.Fatal("stale-health rendezvous must be stable")
		}
	}
}

func TestTableCloseWithoutStart(t *testing.T) {
	tab, err := NewTable([]string{"http://r1:1"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tab.Close() // must not hang or panic
}

func TestProberLoopRuns(t *testing.T) {
	stub := newReplicaStub()
	defer stub.srv.Close()
	tab, err := NewTable([]string{stub.srv.URL}, Config{ProbeInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	tab.Start()
	defer tab.Close()
	deadline := time.Now().Add(2 * time.Second)
	for tab.Replicas()[0].State() != StateHealthy {
		if time.Now().After(deadline) {
			t.Fatal("prober never classified the replica healthy")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if tab.met.probes.Value() == 0 {
		t.Fatal("probe counter untouched")
	}
}

// TestPickBatchPending: requests sitting in a replica's batch-accumulation
// window are load the admission queue no longer shows; placement must see
// them through Health.BatchPending.
func TestPickBatchPending(t *testing.T) {
	tab, err := NewTable([]string{"http://r1:1", "http://r2:1"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := tab.Replicas()[0], tab.Replicas()[1]

	// Equal queue depth, but r1 holds 6 requests in its coalescer window:
	// r2 must win.
	setReplica(tab, r1, StateHealthy, Health{Ready: true, QueueDepth: 1, BatchPending: 6})
	setReplica(tab, r2, StateHealthy, Health{Ready: true, QueueDepth: 1})
	if got := tab.pick("", nil); got != r2 {
		t.Fatalf("batch-pending-adjusted: want r2, got %v", got.URL())
	}

	// The signal composes with queue depth: a deep queue with an empty
	// window loses to a shallow queue with a small window.
	setReplica(tab, r1, StateHealthy, Health{Ready: true, QueueDepth: 0, BatchPending: 2})
	setReplica(tab, r2, StateHealthy, Health{Ready: true, QueueDepth: 7})
	if got := tab.pick("", nil); got != r1 {
		t.Fatalf("composed score: want r1, got %v", got.URL())
	}
}
