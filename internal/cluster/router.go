package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"temco/internal/obs"
)

// ShardKeyHeader carries an optional client affinity key: requests with
// the same key rendezvous onto the same replica whenever load allows.
const ShardKeyHeader = "X-Temco-Shard-Key"

// ReplicaHeader names the replica that served a proxied response.
const ReplicaHeader = "X-Temco-Replica"

// RouterConfig tunes a Router. Zero values take the documented defaults.
type RouterConfig struct {
	// MaxRetries is how many additional replicas an attempt may move to
	// after a connection error or a complete 429/503 response. Default 2;
	// negative disables retries.
	MaxRetries int
	// AttemptTimeout bounds one proxied attempt. Default 30s.
	AttemptTimeout time.Duration
	// Hedge enables hedged requests: when an attempt outlives the observed
	// HedgeQuantile latency, one backup attempt fires on another replica
	// and the first complete response wins. Hedging re-executes the
	// inference, so it presumes idempotent requests (inference is a pure
	// function of its input). Off by default.
	Hedge bool
	// HedgeQuantile is the latency quantile that arms the hedge timer.
	// Default 0.95.
	HedgeQuantile float64
	// MinHedgeDelay floors the hedge delay so cold or noisy latency
	// estimates cannot hedge instantly. Default 10ms.
	MinHedgeDelay time.Duration
	// MaxBodyBytes caps the buffered request body (the body must be held
	// for replay across retries and hedges). Default 64MiB.
	MaxBodyBytes int64
}

func (c *RouterConfig) applyDefaults() {
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 30 * time.Second
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.95
	}
	if c.MinHedgeDelay <= 0 {
		c.MinHedgeDelay = 10 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
}

// RouterStats is the router section of temcor's /statsz.
type RouterStats struct {
	Placements    uint64 `json:"placements"`
	Retries       uint64 `json:"retries"`
	Hedges        uint64 `json:"hedges"`
	HedgeWins     uint64 `json:"hedge_wins"`
	NoReplica     uint64 `json:"no_replica"`
	PartialAborts uint64 `json:"partial_aborts"`
	Ejections     uint64 `json:"ejections"`
	Revivals      uint64 `json:"revivals"`
	Probes        uint64 `json:"probes"`
	ProbeFailures uint64 `json:"probe_failures"`
}

// Router proxies inference requests onto a Table with health-aware
// placement, cross-replica retries, and optional hedging. Safe for
// concurrent use.
type Router struct {
	table *Table
	cfg   RouterConfig
	lat   latencyDigest
}

// NewRouter builds a router over table. The table's registry carries the
// router's counters too, so the whole tier scrapes as one.
func NewRouter(table *Table, cfg RouterConfig) *Router {
	cfg.applyDefaults()
	return &Router{table: table, cfg: cfg}
}

// Stats snapshots the router-and-prober counters.
func (rt *Router) Stats() RouterStats {
	m := rt.table.met
	return RouterStats{
		Placements:    m.placements.Value(),
		Retries:       m.retries.Value(),
		Hedges:        m.hedges.Value(),
		HedgeWins:     m.hedgeWins.Value(),
		NoReplica:     m.noReplica.Value(),
		PartialAborts: m.partialAbort.Value(),
		Ejections:     m.ejections.Value(),
		Revivals:      m.revivals.Value(),
		Probes:        m.probes.Value(),
		ProbeFailures: m.probeFailures.Value(),
	}
}

// attemptResult is one proxied attempt's outcome.
type attemptResult struct {
	rep         *Replica
	status      int
	body        []byte
	contentType string
	retryAfter  string
	connErr     error // no response received: connection refused/reset/timeout
	partial     bool  // response started, body died: the replica executed
	dur         time.Duration
}

// final reports whether the attempt produced a response the client should
// receive as-is: any complete response that is not a retryable shed/drain
// status. 429 and 503 are complete responses too, but the router prefers
// trying another replica first.
func (a *attemptResult) final() bool {
	return a.connErr == nil && !a.partial &&
		a.status != http.StatusTooManyRequests && a.status != http.StatusServiceUnavailable
}

// ServeInfer proxies one inference request. The decision ladder per
// attempt: connection errors and complete 429/503 responses move to
// another replica (bounded by MaxRetries); a partial response — status
// received, body truncated — is never retried, because the replica already
// executed the request and died mid-answer; any other complete response is
// relayed verbatim with the serving replica named in ReplicaHeader.
func (rt *Router) ServeInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeRouterError(w, http.StatusMethodNotAllowed, "POST only", false)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		writeRouterError(w, http.StatusBadRequest, "reading body: "+err.Error(), false)
		return
	}
	start := time.Now()
	// reqRT is the request's trace (attached by temcor's HTTP middleware);
	// nil when untraced, which skips every annotation below.
	reqRT := obs.RequestFrom(r.Context())
	observeProxy := func() {
		sec := time.Since(start).Seconds()
		if reqRT != nil {
			rt.table.met.proxyLatency.ObserveWithExemplar(sec, reqRT.Context().TraceID)
		} else {
			rt.table.met.proxyLatency.Observe(sec)
		}
	}
	key := r.Header.Get(ShardKeyHeader)
	tried := map[string]bool{}
	var lastShed *attemptResult
	connErrs := 0
	for attempt := 0; attempt <= rt.cfg.MaxRetries; attempt++ {
		primary := rt.table.pick(key, tried)
		if primary == nil {
			break
		}
		tried[primary.url] = true
		if reqRT != nil {
			reqRT.Event("route.pick", primary.url)
		}
		results := rt.launch(r.Context(), primary, key, tried, body)
		partial := false
		for _, res := range results {
			if res.final() {
				rt.lat.observe(res.dur)
				observeProxy()
				if res.rep != primary {
					rt.table.met.hedgeWins.Inc()
				}
				if reqRT != nil {
					reqRT.Event("route.winner", res.rep.url)
				}
				relay(w, res)
				return
			}
		}
		for _, res := range results {
			switch {
			case res.partial:
				partial = true
			case res.connErr != nil:
				connErrs++
			default: // complete 429/503
				lastShed = res
			}
		}
		if partial {
			// The replica executed the request and the answer was lost;
			// re-executing is not the router's call to make.
			rt.table.met.partialAbort.Inc()
			if reqRT != nil {
				reqRT.Event("route.partial_abort", "")
				reqRT.SetError("replica died mid-response; not retried")
			}
			writeRouterError(w, http.StatusBadGateway,
				"replica died mid-response; not retried", true)
			return
		}
		if attempt < rt.cfg.MaxRetries {
			rt.table.met.retries.Inc()
			if reqRT != nil {
				reqRT.Event("route.retry", "")
			}
		}
	}
	observeProxy()
	if lastShed != nil {
		// Every attempt was shed or hit a draining replica: relay the last
		// complete backpressure response, Retry-After included.
		if reqRT != nil {
			reqRT.Event("route.shed_relay", lastShed.rep.url)
			reqRT.SetStatus("shed")
		}
		relay(w, lastShed)
		return
	}
	rt.table.met.noReplica.Inc()
	if reqRT != nil {
		reqRT.Event("route.no_replica", "")
	}
	status := http.StatusServiceUnavailable
	msg := "no replica available"
	if connErrs > 0 {
		status = http.StatusBadGateway
		msg = "all replica attempts failed with connection errors"
	}
	w.Header().Set("Retry-After", "1")
	writeRouterError(w, status, msg, true)
}

// launch runs one placement round: the primary attempt, plus — when
// hedging is armed and the latency digest has warmed up — a single backup
// attempt on another replica after the hedge delay. It returns the results
// collected until the first relayable response (or until every launched
// attempt finished); the shared context cancels the losing attempt.
func (rt *Router) launch(ctx context.Context, primary *Replica, key string, tried map[string]bool, body []byte) []*attemptResult {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	reqRT := obs.RequestFrom(ctx)
	resc := make(chan *attemptResult, 2)
	launched := 1
	go rt.attempt(actx, primary, body, resc)

	var hedgeC <-chan time.Time
	var hedgeRep *Replica
	if rt.cfg.Hedge {
		if d, ok := rt.hedgeDelay(); ok {
			if hedgeRep = rt.table.pick(key, tried); hedgeRep != nil {
				timer := time.NewTimer(d)
				defer timer.Stop()
				hedgeC = timer.C
			}
		}
	}

	var out []*attemptResult
	for {
		select {
		case res := <-resc:
			out = append(out, res)
			if res.final() {
				// The loser is recorded here, synchronously, before the
				// timeline can be sealed: once this function returns the
				// handler relays and Finishes, and a late record from the
				// canceled attempt would be dropped.
				if reqRT != nil && len(out) < launched {
					loser := primary
					if res.rep == primary {
						loser = hedgeRep
					}
					reqRT.Event("route.cancelled", loser.url)
				}
				return out
			}
			if len(out) == launched {
				return out
			}
		case <-hedgeC:
			hedgeC = nil
			tried[hedgeRep.url] = true
			launched++
			rt.table.met.hedges.Inc()
			if reqRT != nil {
				reqRT.Event("route.hedge", hedgeRep.url)
			}
			go rt.attempt(actx, hedgeRep, body, resc)
		}
	}
}

// attempt proxies the buffered body to one replica and classifies the
// outcome. The result channel is buffered, so a canceled loser never
// blocks.
func (rt *Router) attempt(ctx context.Context, rep *Replica, body []byte, resc chan<- *attemptResult) {
	rt.table.met.placements.Inc()
	rep.placements.Add(1)
	rep.inFlight.Add(1)
	defer rep.inFlight.Add(-1)
	reqRT := obs.RequestFrom(ctx)
	start := time.Now()
	actx, cancel := context.WithTimeout(ctx, rt.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, rep.url+"/infer", bytes.NewReader(body))
	if err != nil {
		resc <- &attemptResult{rep: rep, connErr: err}
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if reqRT != nil {
		// Each attempt is its own hop: a child span id on the same trace,
		// and the shared request id, so the replica's flight-recorder entry
		// joins this trace on both keys.
		child := reqRT.Context().Child()
		req.Header.Set(obs.TraceparentHeader, child.Traceparent())
		req.Header.Set(obs.RequestIDHeader, child.RequestID)
	}
	resp, err := rt.table.cfg.Client.Do(req)
	if err != nil {
		if reqRT != nil {
			reqRT.Span("route.attempt", rep.url+" conn_error", start, time.Since(start))
		}
		resc <- &attemptResult{rep: rep, connErr: err}
		return
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		if reqRT != nil {
			reqRT.Span("route.attempt", rep.url+" partial", start, time.Since(start))
		}
		resc <- &attemptResult{rep: rep, status: resp.StatusCode, partial: true}
		return
	}
	if reqRT != nil {
		reqRT.Span("route.attempt", rep.url+" status="+strconv.Itoa(resp.StatusCode), start, time.Since(start))
	}
	resc <- &attemptResult{
		rep:         rep,
		status:      resp.StatusCode,
		body:        b,
		contentType: resp.Header.Get("Content-Type"),
		retryAfter:  resp.Header.Get("Retry-After"),
		dur:         time.Since(start),
	}
}

// hedgeDelay returns the armed hedge delay: the observed HedgeQuantile
// latency floored at MinHedgeDelay. ok is false until the digest has seen
// enough samples to estimate a percentile — hedging stays off cold rather
// than firing on noise.
func (rt *Router) hedgeDelay() (time.Duration, bool) {
	q, ok := rt.lat.quantile(rt.cfg.HedgeQuantile)
	if !ok {
		return 0, false
	}
	if q < rt.cfg.MinHedgeDelay {
		q = rt.cfg.MinHedgeDelay
	}
	return q, true
}

// relay writes a buffered replica response to the client verbatim.
func relay(w http.ResponseWriter, res *attemptResult) {
	if res.contentType != "" {
		w.Header().Set("Content-Type", res.contentType)
	}
	if res.retryAfter != "" {
		w.Header().Set("Retry-After", res.retryAfter)
	}
	w.Header().Set(ReplicaHeader, res.rep.url)
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// writeRouterError emits the router's own JSON error body. retryable tells
// well-behaved clients whether trying again later can help (shed load,
// dead fleet) or not (bad request, lost partial response — the caller must
// decide whether re-executing is safe).
func writeRouterError(w http.ResponseWriter, status int, msg string, retryable bool) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{
		"error":     msg,
		"status":    status,
		"retryable": retryable,
	})
}

// latencyDigest estimates latency quantiles from a sliding window of
// successful proxied attempts: a fixed ring of samples, with the quantile
// recomputed every few observations and cached atomically so the hot path
// reads one atomic load.
type latencyDigest struct {
	mu      sync.Mutex
	samples [256]float64 // seconds
	n       int          // total observations
	cached  atomic.Uint64
	cachedQ atomic.Uint64 // float bits of the quantile the cache was built for
}

// digestWarmup is how many samples the digest needs before it reports a
// quantile.
const digestWarmup = 16

func (d *latencyDigest) observe(dur time.Duration) {
	sec := dur.Seconds()
	d.mu.Lock()
	d.samples[d.n%len(d.samples)] = sec
	d.n++
	recompute := d.n%8 == 0 || d.n == digestWarmup
	d.mu.Unlock()
	if recompute {
		d.recompute()
	}
}

func (d *latencyDigest) recompute() {
	q := math.Float64frombits(d.cachedQ.Load())
	if q <= 0 || q >= 1 {
		return // quantile() not called yet; first call recomputes
	}
	d.cached.Store(math.Float64bits(d.quantileLocked(q)))
}

func (d *latencyDigest) quantileLocked(q float64) float64 {
	d.mu.Lock()
	n := d.n
	if n > len(d.samples) {
		n = len(d.samples)
	}
	buf := make([]float64, n)
	copy(buf, d.samples[:n])
	d.mu.Unlock()
	sort.Float64s(buf)
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return buf[idx]
}

// quantile returns the cached q-quantile in time.Duration form; ok is
// false until digestWarmup samples have been observed.
func (d *latencyDigest) quantile(q float64) (time.Duration, bool) {
	d.mu.Lock()
	warm := d.n >= digestWarmup
	d.mu.Unlock()
	if !warm {
		return 0, false
	}
	if math.Float64frombits(d.cachedQ.Load()) != q {
		d.cachedQ.Store(math.Float64bits(q))
		d.cached.Store(math.Float64bits(d.quantileLocked(q)))
	}
	v := math.Float64frombits(d.cached.Load())
	return time.Duration(v * float64(time.Second)), true
}
