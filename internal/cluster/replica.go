// Package cluster is the temcor routing tier: the pieces that turn N
// independent temcod replicas into one fault-tolerant fleet. A Table holds
// the replica set and actively probes each replica's /readyz, classifying
// it healthy / degraded / draining / dead, ejecting replicas that stop
// answering and re-probing ejected ones on an exponential backoff. A
// Router places requests on the table — least reported queue depth with a
// rendezvous-hash fallback — retries connection errors and complete
// 429/503 responses on another replica, and optionally hedges slow
// requests after an observed latency percentile.
//
// The tier integrates with the single-process breaker semantics from
// internal/serve: a replica whose local circuit breaker is not closed
// reports itself degraded on /readyz, and the table routes around it while
// anything healthy remains — a replica tripping its breaker sheds traffic
// cluster-wide instead of melting its own fallback path.
package cluster

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Health is the enriched /readyz body a temcod replica reports. The daemon
// serializes this exact struct, so the router's probe decoder and the
// replica's encoder cannot drift.
type Health struct {
	// Ready is false while the replica drains (it then answers 503).
	Ready bool `json:"ready"`
	// Reason explains a not-ready state ("draining").
	Reason string `json:"reason,omitempty"`
	// Degraded reports that the replica's circuit breaker is not closed:
	// requests are or may be served by the fallback graph.
	Degraded bool `json:"degraded"`
	// QueueDepth / QueueCap describe the replica's admission queue, the
	// router's least-loaded placement signal.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// InFlight is the number of requests executing on the replica's workers.
	InFlight int64 `json:"in_flight"`
	// BatchPending is the number of requests sitting in the replica's
	// open batch-accumulation window: load the admission queue no longer
	// shows but a worker has not yet picked up. Zero when the replica
	// serves without batching.
	BatchPending int64 `json:"batch_pending,omitempty"`
	// BreakerState is the replica's breaker position: closed, open,
	// half-open.
	BreakerState string `json:"breaker_state"`
	// Workers is the replica's executor pool size, the denominator of the
	// autoscaler's utilization estimate.
	Workers int `json:"workers,omitempty"`
	// RunSecondsTotal is the replica's cumulative worker execution time;
	// the autoscaler differences consecutive probes to estimate busy
	// workers per second.
	RunSecondsTotal float64 `json:"run_seconds_total,omitempty"`
	// QueueWaitP95MS is the replica's estimated p95 queue wait in
	// milliseconds (from its fixed-bucket histogram, so upper-bound
	// biased).
	QueueWaitP95MS float64 `json:"queue_wait_p95_ms,omitempty"`
	// BreakerTransitions counts the replica's breaker state changes; a
	// rising value between probes means the replica is faulting under
	// pressure.
	BreakerTransitions uint64 `json:"breaker_transitions,omitempty"`
}

// State classifies a replica from the router's point of view.
type State int32

const (
	// StateHealthy: the replica answers /readyz ready with a closed breaker.
	StateHealthy State = iota
	// StateDegraded: the replica answers but reports a tripped breaker (it
	// serves through its fallback graph), or a probe just failed and the
	// replica is suspect but not yet ejected. Degraded replicas receive
	// traffic only when nothing healthy remains.
	StateDegraded
	// StateDraining: the replica answered 503 ready=false; it is shutting
	// down gracefully and must receive no new traffic.
	StateDraining
	// StateDead: probes failed FailThreshold times in a row; the replica is
	// ejected and re-probed on an exponential backoff.
	StateDead
	// StateJoining: the replica was added to a live table and has not yet
	// passed its probation probes. It receives no traffic until
	// ProbationProbes consecutive successful probes promote it.
	StateJoining
)

// String renders the state for stats endpoints and metrics.
func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateDraining:
		return "draining"
	case StateDead:
		return "dead"
	case StateJoining:
		return "joining"
	default:
		return "unknown"
	}
}

// Replica is one temcod backend tracked by the table. Safe for concurrent
// use; the prober writes the probed fields, the router reads them.
type Replica struct {
	url string

	mu          sync.Mutex
	state       State
	health      Health    // last successfully decoded /readyz body
	lastOK      time.Time // when health was last refreshed
	consecFails int       // consecutive failed probes
	nextProbe   time.Time // ejected replicas re-probe no earlier than this
	probation   bool      // added live: must pass probation probes first
	probeStreak int       // consecutive successful probes while on probation
	// drainRequested is the sticky decommission flag: once Drain marks a
	// replica, no probe outcome may return it to service.
	drainRequested bool

	// inFlight counts router-side requests currently proxied to this
	// replica; it sharpens the queue-depth signal between probe rounds.
	inFlight atomic.Int64
	// placements counts requests the router placed here.
	placements atomic.Uint64
}

// URL returns the replica's base URL.
func (r *Replica) URL() string { return r.url }

// State returns the replica's current classification.
func (r *Replica) State() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// ReplicaStatus is one replica's row in the router's /statsz table.
type ReplicaStatus struct {
	URL                 string `json:"url"`
	State               string `json:"state"`
	Health              Health `json:"health"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	InFlight            int64  `json:"in_flight"`
	Placements          uint64 `json:"placements_total"`
	// Probation: the replica joined live and has not yet passed its
	// probation probes.
	Probation bool `json:"probation,omitempty"`
	// DrainRequested: a Drain is in progress (or timed out); the replica
	// can never take traffic again.
	DrainRequested bool `json:"drain_requested,omitempty"`
}

// snapshot returns a consistent view of the replica for stats and metrics.
func (r *Replica) snapshot() ReplicaStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReplicaStatus{
		URL:                 r.url,
		State:               r.state.String(),
		Health:              r.health,
		ConsecutiveFailures: r.consecFails,
		InFlight:            r.inFlight.Load(),
		Placements:          r.placements.Load(),
		Probation:           r.probation,
		DrainRequested:      r.drainRequested,
	}
}

// Config tunes a Table. Zero values take the documented defaults.
type Config struct {
	// ProbeInterval is the health-probe period per replica. Default 250ms.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /readyz round trip. Default 1s.
	ProbeTimeout time.Duration
	// FailThreshold is how many consecutive probe failures eject a replica
	// to StateDead. Default 3.
	FailThreshold int
	// MaxProbeBackoff caps the exponential re-probe backoff for dead
	// replicas. Default 8s.
	MaxProbeBackoff time.Duration
	// ProbationProbes is how many consecutive successful probes a replica
	// added to a live table needs before it may take traffic. Default 2.
	ProbationProbes int
	// Client performs probes and proxied requests. Default: a dedicated
	// client with pooled connections and no global timeout (per-request
	// contexts bound every call).
	Client *http.Client
}

func (c *Config) applyDefaults() {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.MaxProbeBackoff <= 0 {
		c.MaxProbeBackoff = 8 * time.Second
	}
	if c.ProbationProbes <= 0 {
		c.ProbationProbes = 2
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 32,
			IdleConnTimeout:     30 * time.Second,
		}}
	}
}
