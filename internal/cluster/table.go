package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"temco/internal/guard"
	"temco/internal/obs"
)

// Table is the probed replica set. Start launches the prober loop; Close
// stops it. Safe for concurrent use by the prober, the router, and stats
// scrapes.
type Table struct {
	cfg      Config
	replicas []*Replica
	met      *metrics
	now      func() time.Time // injectable clock for deterministic tests

	startOnce sync.Once
	closeOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewTable builds a table over the given replica base URLs (scheme://host:port,
// no trailing slash required). The prober does not run until Start.
func NewTable(urls []string, cfg Config) (*Table, error) {
	if len(urls) == 0 {
		return nil, guard.Errorf(guard.ErrInvalidModel, "cluster.NewTable", "no replicas")
	}
	cfg.applyDefaults()
	t := &Table{
		cfg:  cfg,
		now:  time.Now,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, u := range urls {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, guard.Errorf(guard.ErrInvalidModel, "cluster.NewTable", "empty replica URL")
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return nil, guard.Errorf(guard.ErrInvalidModel, "cluster.NewTable", "replica %q: want an http(s) URL", u)
		}
		if seen[u] {
			return nil, guard.Errorf(guard.ErrInvalidModel, "cluster.NewTable", "duplicate replica %q", u)
		}
		seen[u] = true
		// Until the first probe answers, a replica is degraded-suspect: the
		// router may use it if nothing healthy exists yet, and the first
		// probe round resolves the real state within ProbeInterval.
		t.replicas = append(t.replicas, &Replica{url: u, state: StateDegraded})
	}
	t.met = newMetrics(t)
	return t, nil
}

// Replicas returns the fixed replica set.
func (t *Table) Replicas() []*Replica { return t.replicas }

// Status snapshots every replica for the /statsz table.
func (t *Table) Status() []ReplicaStatus {
	out := make([]ReplicaStatus, len(t.replicas))
	for i, r := range t.replicas {
		out[i] = r.snapshot()
	}
	return out
}

// Routable reports how many replicas can take traffic (healthy or
// degraded): the router's readiness signal.
func (t *Table) Routable() int {
	n := 0
	for _, r := range t.replicas {
		if st := r.State(); st == StateHealthy || st == StateDegraded {
			n++
		}
	}
	return n
}

// Metrics returns the cluster registry (replica states, placements,
// retries, hedges, ejections), ready for obs.Handler.
func (t *Table) Metrics() *obs.Registry { return t.met.reg }

// Start launches the prober loop: one immediate round, then a round every
// ProbeInterval. Idempotent.
func (t *Table) Start() {
	t.startOnce.Do(func() {
		go func() {
			defer close(t.done)
			t.ProbeOnce()
			tick := time.NewTicker(t.cfg.ProbeInterval)
			defer tick.Stop()
			for {
				select {
				case <-t.stop:
					return
				case <-tick.C:
					t.ProbeOnce()
				}
			}
		}()
	})
}

// Close stops the prober and waits for it to exit. Idempotent; safe to
// call even when Start never ran.
func (t *Table) Close() {
	t.closeOnce.Do(func() { close(t.stop) })
	t.startOnce.Do(func() { close(t.done) }) // Start never ran: nothing to wait for
	<-t.done
}

// ProbeOnce runs one probe round: every replica whose re-probe time has
// arrived is probed concurrently, and the round returns when all answers
// are in. The prober calls this on its ticker; tests call it directly for
// deterministic state transitions.
func (t *Table) ProbeOnce() {
	now := t.now()
	var wg sync.WaitGroup
	for _, r := range t.replicas {
		r.mu.Lock()
		due := !r.nextProbe.After(now)
		r.mu.Unlock()
		if !due {
			continue
		}
		wg.Add(1)
		go func(r *Replica) {
			defer wg.Done()
			t.probe(r)
		}(r)
	}
	wg.Wait()
}

// probe performs one /readyz round trip and reclassifies the replica.
func (t *Table) probe(r *Replica) {
	t.met.probes.Inc()
	ctx, cancel := context.WithTimeout(context.Background(), t.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url+"/readyz", nil)
	if err != nil {
		t.probeFailed(r)
		return
	}
	resp, err := t.cfg.Client.Do(req)
	if err != nil {
		t.probeFailed(r)
		return
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&h); err != nil {
		t.probeFailed(r)
		return
	}
	switch {
	case resp.StatusCode == http.StatusOK && h.Ready:
		st := StateHealthy
		// A tripped breaker (the replica serves through its fallback) marks
		// the replica degraded: the fleet routes around it while anything
		// healthy remains, instead of piling load on its fallback path.
		if h.Degraded || (h.BreakerState != "" && h.BreakerState != "closed") {
			st = StateDegraded
		}
		t.probeOK(r, st, h)
	case resp.StatusCode == http.StatusServiceUnavailable && !h.Ready:
		// The process is alive and draining: not a failure, but no traffic.
		t.probeOK(r, StateDraining, h)
	default:
		t.probeFailed(r)
	}
}

// probeOK records a successful probe: the replica answered coherently, so
// the failure streak resets and the next probe is one interval out.
func (t *Table) probeOK(r *Replica, st State, h Health) {
	now := t.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state == StateDead {
		t.met.revivals.Inc()
	}
	r.state = st
	r.health = h
	r.lastOK = now
	r.consecFails = 0
	r.nextProbe = now.Add(t.cfg.ProbeInterval)
}

// probeFailed records a failed probe (connection error, timeout, garbage
// body). Below the threshold the replica turns degraded-suspect; at the
// threshold it is ejected to StateDead and re-probed on an exponential
// backoff capped at MaxProbeBackoff.
func (t *Table) probeFailed(r *Replica) {
	t.met.probeFailures.Inc()
	now := t.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.consecFails++
	if r.consecFails < t.cfg.FailThreshold {
		if r.state != StateDead {
			r.state = StateDegraded
		}
		r.nextProbe = now.Add(t.cfg.ProbeInterval)
		return
	}
	if r.state != StateDead {
		r.state = StateDead
		t.met.ejections.Inc()
	}
	shift := r.consecFails - t.cfg.FailThreshold
	if shift > 16 {
		shift = 16
	}
	backoff := t.cfg.ProbeInterval << uint(shift)
	if backoff > t.cfg.MaxProbeBackoff {
		backoff = t.cfg.MaxProbeBackoff
	}
	r.nextProbe = now.Add(backoff)
}

// pick chooses a replica for one attempt, excluding already-tried ones.
// Healthy replicas are preferred; degraded ones serve only when nothing
// healthy remains; draining and dead replicas never serve. Among the
// candidates, placement is least-loaded (last reported queue depth plus
// in-flight, sharpened by the router's own in-flight count); ties — and
// the whole decision when every candidate's health report has gone stale —
// fall back to rendezvous hashing on key, so a keyed workload keeps
// landing on the same replica as long as the fleet membership holds.
// Returns nil when no replica is available.
func (t *Table) pick(key string, exclude map[string]bool) *Replica {
	now := t.now()
	stale := now.Add(-3 * t.cfg.ProbeInterval)
	var candidates []*Replica
	fresh := 0
	for pass := 0; pass < 2 && len(candidates) == 0; pass++ {
		want := StateHealthy
		if pass == 1 {
			want = StateDegraded
		}
		for _, r := range t.replicas {
			if exclude[r.url] {
				continue
			}
			r.mu.Lock()
			ok := r.state == want
			if ok && r.lastOK.After(stale) {
				fresh++
			}
			r.mu.Unlock()
			if ok {
				candidates = append(candidates, r)
			}
		}
	}
	switch len(candidates) {
	case 0:
		return nil
	case 1:
		return candidates[0]
	}
	if fresh == 0 {
		// Every load report is stale: depth numbers would be noise, so fall
		// back to pure rendezvous hashing for stable placement.
		return rendezvous(key, candidates)
	}
	best := candidates[:0:0]
	bestScore := int64(1<<63 - 1)
	for _, r := range candidates {
		r.mu.Lock()
		// BatchPending is load the replica holds in its coalescer window —
		// invisible to QueueDepth but a worker slot away from executing.
		score := int64(r.health.QueueDepth) + r.health.InFlight + r.health.BatchPending
		r.mu.Unlock()
		score += r.inFlight.Load()
		if score < bestScore {
			bestScore = score
			best = append(best[:0], r)
		} else if score == bestScore {
			best = append(best, r)
		}
	}
	if len(best) == 1 {
		return best[0]
	}
	return rendezvous(key, best)
}

// rendezvous picks the highest-random-weight replica for key: every
// observer with the same candidate set and key agrees on the winner, and
// removing a replica only moves the keys that lived on it.
func rendezvous(key string, candidates []*Replica) *Replica {
	var best *Replica
	var bestW uint64
	for _, r := range candidates {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s\x00%s", key, r.url)
		if w := h.Sum64(); best == nil || w > bestW {
			best, bestW = r, w
		}
	}
	return best
}
